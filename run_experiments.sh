#!/bin/sh
# Regenerates every experiment artifact into results/ (see EXPERIMENTS.md).
set -x
dune exec bin/modelcheck_run.exe -- --json results/modelcheck.json > results/modelcheck.txt 2>&1
dune exec bin/space.exe > results/space.txt 2>&1
dune exec bin/overhead.exe -- --runs 5 --scale 0.1 > results/overhead.txt 2>&1
dune exec bin/shann_vs_cas.exe -- --runs 3 --scale 0.1 > results/shann_vs_cas.txt 2>&1
dune exec bin/fig6.exe -- --figure a --runs 3 --scale 0.1 --plot --metrics > results/fig6a.txt 2>&1
dune exec bin/fig6.exe -- --figure b --runs 3 --scale 0.1 --plot > results/fig6b.txt 2>&1
dune exec bin/fig6.exe -- --figure c --runs 3 --scale 0.1 > results/fig6c.txt 2>&1
dune exec bin/fig6.exe -- --figure d --runs 3 --scale 0.1 > results/fig6d.txt 2>&1
dune exec bin/latency.exe -- --threads 8 --ops 20000 > results/latency.txt 2>&1
dune exec bin/ablation.exe -- --runs 2 --scale 0.02 --threads 8 > results/ablation.txt 2>&1
dune exec bin/contend.exe -- --queue evequoz-cas --threads 1,2,4,8 --runs 2 --scale 0.1 --plot > results/contend.txt 2>&1
dune exec bin/obs_overhead.exe -- --runs 3 --scale 0.5 > results/obs_overhead.txt 2>&1
dune exec bin/torture.exe -- --seed 42 --ops 10000 --crash > results/torture.txt 2>&1
dune exec bin/torture.exe -- --wait --wait-iters 2000 > results/wait_torture.txt 2>&1
dune exec bin/park_sweep.exe -- --seconds 2 --out results/park_sweep.csv > results/park_sweep.txt 2>&1
echo DONE > results/STATUS
