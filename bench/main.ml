(* The benchmark entry point: `dune exec bench/main.exe`.

   Two layers:

   1. Bechamel micro-benchmarks — one Test per reproduced artifact:
      - per-queue single-operation cost (the paper's in-text single-thread
        overhead table, E5), and
      - per-figure grouped tests (E1/E2: one element per series of Figure
        6(a)/(b), each element timing one multi-domain paper-workload
        round).
   2. The harness-based tables: the exact rows/series the paper reports
      for Figure 6(a)-(d), the single-thread overhead table and the
      Shann-vs-CAS comparison, at an environment-configurable scale.

   Environment knobs (all optional):
     NBQ_BENCH_SCALE       fraction of the paper's 100k iterations (0.01)
     NBQ_BENCH_RUNS        runs per configuration                  (2)
     NBQ_BENCH_MAXTHREADS  clamp on the thread sweeps              (16)  *)

open Bechamel
open Toolkit
open Nbq_harness

let env_float name default =
  match Sys.getenv_opt name with Some s -> float_of_string s | None -> default

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let scale = env_float "NBQ_BENCH_SCALE" 0.01
let runs = env_int "NBQ_BENCH_RUNS" 2
let max_threads = env_int "NBQ_BENCH_MAXTHREADS" 16

let metrics_enabled =
  Array.exists (fun a -> a = "--metrics") Sys.argv
  || (match Sys.getenv_opt "NBQ_BENCH_METRICS" with
     | Some ("1" | "true" | "yes") -> true
     | _ -> false)

(* --- Layer 1: bechamel tests --- *)

(* Single-op cost: one enqueue + one dequeue on a pre-filled queue. *)
let op_cost_test (impl : Registry.impl) =
  Test.make ~name:impl.Registry.name
    (Staged.stage
       (let q = impl.Registry.create ~capacity:128 in
        for i = 1 to 64 do
          ignore (q.Registry.enqueue { Registry.tag = i })
        done;
        fun () ->
          ignore (q.Registry.enqueue { Registry.tag = 0 });
          ignore (q.Registry.dequeue ())))

(* One multi-domain paper-workload round, as a benchmarkable unit. *)
let round_test ~threads name =
  let impl = Registry.find name in
  let workload =
    { Workload.iterations = 50; enqueue_batch = 5; dequeue_batch = 5 }
  in
  let capacity = Workload.min_capacity workload ~threads in
  Test.make ~name
    (Staged.stage (fun () ->
         let q = impl.Registry.create ~capacity in
         let barrier = Nbq_primitives.Barrier.create ~parties:threads in
         let domains =
           List.init threads (fun thread ->
               Domain.spawn (fun () ->
                   Nbq_primitives.Barrier.await barrier;
                   Workload.run_thread workload ~thread q))
         in
         List.iter (fun d -> ignore (Domain.join d)) domains))

let series_a =
  [ "ms-doherty"; "evequoz-cas"; "ms-hp-unsorted"; "ms-hp-sorted"; "evequoz-llsc" ]

let series_b =
  [ "ms-doherty"; "ms-hp-unsorted"; "ms-hp-sorted"; "evequoz-cas"; "shann" ]

(* The scaling story past the paper: the same ring behind the sharded
   front-end (DESIGN.md §8). *)
let sharded_series =
  [ "evequoz-cas"; "evequoz-cas-shard4"; "evequoz-cas-shard8" ]

let bechamel_tests =
  Test.make_grouped ~name:"nbq"
    [
      Test.make_grouped ~name:"op-cost (E5)"
        (List.map op_cost_test Registry.all);
      Test.make_grouped ~name:"fig6a-round-4t (E1)"
        (List.map (round_test ~threads:4) series_a);
      Test.make_grouped ~name:"fig6b-round-4t (E2)"
        (List.map (round_test ~threads:4) series_b);
    ]

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances bechamel_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  print_endline "== Bechamel estimates (monotonic clock, ns per run) ==";
  Hashtbl.iter
    (fun measure tbl ->
      if measure = "monotonic-clock" then begin
        let rows =
          Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
          |> List.sort compare
        in
        List.iter
          (fun (name, ols) ->
            match Analyze.OLS.estimates ols with
            | Some (est :: _) -> Printf.printf "%-45s %12.1f ns\n" name est
            | Some [] | None -> Printf.printf "%-45s (no estimate)\n" name)
          rows
      end)
    merged;
  print_newline ()

(* --- Layer 2: harness tables (the paper's artifacts) --- *)

let clamp threads = List.filter (fun t -> t <= max_threads) threads

let measure_series ?(batched = false) ~series ~threads ~workload () =
  List.map
    (fun threads ->
      ( threads,
        List.map
          (fun name ->
            let impl = Registry.find name in
            let cfg = { Runner.threads; runs; workload; capacity = None } in
            (name, (Runner.measure ~batched impl cfg).Runner.summary.Stats.mean))
          series ))
    threads

let figure ?batched ~title ~series ~threads ~normalized ~workload () =
  let results = measure_series ?batched ~series ~threads ~workload () in
  let t = Table.create ~title ~columns:("threads" :: series) in
  List.iter
    (fun (threads, cells) ->
      let base =
        match List.assoc_opt "evequoz-cas" cells with
        | Some m -> m
        | None -> 1.0
      in
      Table.add_row t
        (string_of_int threads
        :: List.map
             (fun (_, mean) ->
               Table.cell_float (if normalized then mean /. base else mean))
             cells))
    results;
  print_string (Table.render t);
  print_newline ()

let overhead_table ~workload =
  let cfg = { Runner.threads = 1; runs; workload; capacity = Some 64 } in
  let t =
    Table.create ~title:"E5: single-thread overhead vs seq-ring"
      ~columns:[ "queue"; "seconds"; "overhead" ]
  in
  let base =
    (Runner.measure (Registry.find "seq-ring") cfg).Runner.summary.Stats.mean
  in
  List.iter
    (fun (impl : Registry.impl) ->
      let mean = (Runner.measure impl cfg).Runner.summary.Stats.mean in
      let overhead =
        if impl.Registry.name = "seq-ring" then "(base)"
        else Printf.sprintf "+%.0f%%" (((mean /. base) -. 1.0) *. 100.0)
      in
      Table.add_row t [ impl.Registry.name; Table.cell_float mean; overhead ])
    Registry.all;
  print_string (Table.render t);
  print_newline ()

let shann_table ~workload =
  let threads = clamp [ 1; 2; 4; 8; 16 ] in
  let results =
    measure_series ~series:[ "shann"; "evequoz-cas" ] ~threads ~workload ()
  in
  let t =
    Table.create ~title:"E6: Shann (simulated CAS64) vs evequoz-cas"
      ~columns:[ "threads"; "shann"; "evequoz-cas"; "ratio" ]
  in
  List.iter
    (fun (threads, cells) ->
      match cells with
      | [ (_, s); (_, c) ] ->
          Table.add_row t
            [
              string_of_int threads;
              Table.cell_float s;
              Table.cell_float c;
              Table.cell_float (c /. s);
            ]
      | _ -> assert false)
    results;
  print_string (Table.render t);
  print_newline ()

(* E7 / observability: re-run the Evequoz queues at 4 domains with the
   metrics hub attached.  The iteration count has a floor so the pass
   produces a usable contention signal (SC failures, tag re-registrations)
   even at the tiny default bench scale. *)
let metrics_pass ~workload =
  let threads = min 4 (max 1 max_threads) in
  let workload =
    (* Floor high enough that scheduler preemption produces a visible
       contention signal (SC failures) even at the tiny default scale. *)
    { workload with Workload.iterations = max 50_000 workload.Workload.iterations }
  in
  let open Nbq_obs in
  let sink = Sink.open_jsonl (Sink.default_path ~prefix:"bench" ()) in
  List.iter
    (fun name ->
      let metrics = Metrics.create () in
      let cfg = { Runner.threads; runs = 1; workload; capacity = None } in
      let m = Runner.measure ~metrics (Registry.find name) cfg in
      let snap =
        Option.value ~default:Metrics.empty_snapshot m.Runner.metrics
      in
      Printf.printf "\n== metrics: %s @ %d threads ==\n%s\n" name threads
        (Metrics_report.render snap);
      Sink.write_snapshot sink
        ~meta:
          [
            ("queue", Sink.String name);
            ("threads", Sink.Int threads);
            ("iterations", Sink.Int workload.Workload.iterations);
            ("runs", Sink.Int 1);
            ("mean_seconds", Sink.Float m.Runner.summary.Stats.mean);
          ]
        snap)
    [ "evequoz-cas"; "evequoz-llsc" ];
  (match Sink.path sink with
  | Some p -> Printf.printf "\nmetrics written to %s\n" p
  | None -> ());
  Sink.close sink

let () =
  Printf.printf
    "nbq bench: scale=%.3f runs=%d max-threads=%d (override via \
     NBQ_BENCH_SCALE / NBQ_BENCH_RUNS / NBQ_BENCH_MAXTHREADS; --metrics or \
     NBQ_BENCH_METRICS=1 adds the observability pass)\n\n%!"
    scale runs max_threads;
  run_bechamel ();
  let workload = Workload.scaled_config ~scale in
  figure
    ~title:"E1 / Figure 6(a): actual time, LL/SC suite [s]"
    ~series:series_a
    ~threads:(clamp [ 1; 2; 4; 8; 12; 16; 20; 24; 28; 32 ])
    ~normalized:false ~workload ();
  figure
    ~title:"E2 / Figure 6(b): actual time, CAS suite [s]"
    ~series:series_b
    ~threads:(clamp [ 1; 4; 8; 16; 24; 32; 48; 64 ])
    ~normalized:false ~workload ();
  figure
    ~title:"E3 / Figure 6(c): normalized time, LL/SC suite"
    ~series:series_a
    ~threads:(clamp [ 1; 2; 4; 8; 12; 16; 20; 24; 28; 32 ])
    ~normalized:true ~workload ();
  figure
    ~title:"E4 / Figure 6(d): normalized time, CAS suite"
    ~series:series_b
    ~threads:(clamp [ 1; 4; 8; 16; 24; 32; 48; 64 ])
    ~normalized:true ~workload ();
  overhead_table ~workload;
  shann_table ~workload;
  figure
    ~title:"E8a: sharded front-end vs single ring, actual time [s]"
    ~series:sharded_series
    ~threads:(clamp [ 1; 2; 4; 8; 16 ])
    ~normalized:false ~workload ();
  figure ~batched:true
    ~title:"E8b: sharded front-end vs single ring, batched ops [s]"
    ~series:sharded_series
    ~threads:(clamp [ 1; 2; 4; 8; 16 ])
    ~normalized:false ~workload ();
  if metrics_enabled then metrics_pass ~workload
