(* Cache-line padding for hot atomics (OCaml 5.1 has no
   [Atomic.make_contended]; this is the multicore-magic idiom).  A value's
   block is copied into a block of [cache_line_words] words, so two padded
   blocks can never share a 64-byte line — false sharing between two
   domains' counter shards becomes impossible.  128 bytes also defeats the
   adjacent-line prefetcher pairing found on x86. *)

let cache_line_words = 16

let copy_padded (x : 'a) : 'a =
  let src = Obj.repr x in
  if Obj.is_int src || Obj.size src >= cache_line_words then x
  else begin
    let dst = Obj.new_block (Obj.tag src) cache_line_words in
    for i = 0 to Obj.size src - 1 do
      Obj.set_field dst i (Obj.field src i)
    done;
    (* The extra fields stay [()] (caml_obj_block initializes them), so the
       GC scans the block safely; Atomic primitives only touch field 0. *)
    Obj.magic dst
  end

let atomic n : int Atomic.t = copy_padded (Atomic.make n)
