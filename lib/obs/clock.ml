(* Nanosecond monotonic clock.  bechamel's monotonic_clock stub reads
   CLOCK_MONOTONIC directly; Unix.gettimeofday only gives microseconds. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())
