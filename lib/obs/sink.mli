(** Metric sinks: a minimal JSON value type, a JSON-lines file writer, and
    a [Null_sink] that swallows everything (so call sites need no
    conditionals). *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN/infinity serialize as [null] *)
  | String of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string

val parse : string -> (json, string) result
(** Inverse of {!json_to_string} for standard JSON text: integers without
    a fraction/exponent parse as [Int], other numerics as [Float].  The
    error carries a byte offset. *)

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val histogram_json : Histogram.snapshot -> json
(** [{total, mean_ns, p50_ns, p95_ns, p99_ns, p999_ns, buckets: [[lower_ns,
    count], ...]}]; percentiles are [null] when the histogram is empty. *)

val snapshot_fields : Metrics.snapshot -> (string * json) list
(** [events] object (wire names from {!Event.to_string}) plus
    [enq_latency]/[deq_latency] histogram objects. *)

type t

val null : t

val default_path : ?dir:string -> prefix:string -> unit -> string
(** [results/metrics-<prefix>-<pid>-<epoch>.jsonl]. *)

val open_jsonl : string -> t
(** Creates the parent directory (one level) when missing. *)

val path : t -> string option

val write : t -> fields:(string * json) list -> unit
(** Write one JSON object as a line and flush.  No-op on {!null}. *)

val write_snapshot : t -> meta:(string * json) list -> Metrics.snapshot -> unit
(** [write] of [meta @ snapshot_fields s]. *)

val close : t -> unit
