(* Each domain owns a private padded cell reached through [Domain.DLS], so
   the hot-path increment is a domain-local load ([%dls_get] — a plain
   read off the domain state, no C call, unlike [Domain.self]) plus a
   non-atomic add on a word no other domain writes.  Cells are published
   to a lock-free list the moment a domain first touches the counter, so
   readers can sum them without stopping writers.  Exactness relies on
   cell exclusivity plus the happens-before edge of [Domain.join]: the
   harness always reads after joining its workers. *)

type t = {
  key : int ref Domain.DLS.key;
  cells : int ref list Atomic.t;  (* every domain's cell, for [read] *)
}

let create () =
  let cells = Atomic.make [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let c = Padding.copy_padded (ref 0) in
        let rec publish () =
          let l = Atomic.get cells in
          if not (Atomic.compare_and_set cells l (c :: l)) then publish ()
        in
        publish ();
        c)
  in
  { key; cells }

let incr t =
  let c = Domain.DLS.get t.key in
  c := !c + 1

let add t n =
  if n <> 0 then begin
    let c = Domain.DLS.get t.key in
    c := !c + n
  end

let read t = List.fold_left (fun acc c -> acc + !c) 0 (Atomic.get t.cells)

let reset t = List.iter (fun c -> c := 0) (Atomic.get t.cells)
