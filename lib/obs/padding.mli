(** Cache-line padding for contended heap blocks.

    OCaml 5.1 lacks [Atomic.make_contended]; {!copy_padded} re-allocates a
    block with trailing padding words so that two padded blocks never share
    a cache line.  Used for counter shards, where cross-domain false
    sharing would reintroduce exactly the coherence traffic the sharding
    exists to avoid. *)

val cache_line_words : int
(** Padded block size in words (16 words = 128 bytes: a cache line plus the
    adjacent prefetched line). *)

val copy_padded : 'a -> 'a
(** [copy_padded x] is [x] for immediates and already-large blocks,
    otherwise a shallow copy of [x]'s block padded to {!cache_line_words}
    words.  Only safe for values whose primitive operations address fields
    by index (records, [Atomic.t]); the copy is a distinct physical value. *)

val atomic : int -> int Atomic.t
(** A padded atomic counter cell. *)
