(** The per-run metrics hub: one per-domain-sharded counter per {!Event.t}
    plus enqueue/dequeue latency histograms.  All recording paths are
    wait-free and allocation-free; snapshots are taken by the harness once
    workers are quiescent. *)

type t

val create : ?shards:int -> unit -> t
(** [shards] is forwarded to {!Histogram.create} (counters shard per
    domain id and need no sizing hint). *)

val emit : t -> Event.t -> unit
val add : t -> Event.t -> int -> unit
val count : t -> Event.t -> int
val record_enq_ns : t -> int -> unit
val record_deq_ns : t -> int -> unit

val record_enq_batch_ns : t -> items:int -> int -> unit
(** [record_enq_batch_ns t ~items ns]: one batch enqueue call moved
    [items] items in [ns] nanoseconds total; records [items] histogram
    samples of [ns / items] each, so totals keep counting items.  No-op
    when [items <= 0]. *)

val record_deq_batch_ns : t -> items:int -> int -> unit
(** Dequeue-side counterpart of {!record_enq_batch_ns}. *)

val reset : t -> unit
(** Zero the counters (histograms are left as-is; create a fresh [t] for a
    fresh run). *)

val probe : t -> (module Nbq_primitives.Probe.S)
(** A first-class probe module whose callbacks bump this hub's counters —
    plug it into [Llsc_cas.Make_probed] / [Evequoz_cas.Make_probed] etc.

    The two events that fire once per queue operation by construction
    ([Ll_reserve] and [Tag_reregister]) are sampled 1-in-64 with weight
    64, so their counts are statistical (±64 per domain); all other
    events are recorded exactly. *)

(** {2 Snapshots} *)

type snapshot = {
  counts : int array;  (** indexed by {!Event.index} *)
  enq : Histogram.snapshot;
  deq : Histogram.snapshot;
}

val snapshot : t -> snapshot
val empty_snapshot : snapshot
val merge : snapshot -> snapshot -> snapshot
val get : snapshot -> Event.t -> int
