module Queue_intf = Nbq_core.Queue_intf

module type METRICS = sig
  val metrics : Metrics.t
end

(* Latency is sampled 1-in-64 so the two clock reads (the dominant cost)
   stay off most operations; the tick counters are plain refs shared
   across domains — lost updates merely perturb the sampling rate, never
   correctness. *)
let sample_mask = 63

module Make (M : METRICS) (Q : Queue_intf.CONC) :
  Queue_intf.CONC with type 'a t = 'a Q.t = struct
  type 'a t = 'a Q.t

  let name = Q.name
  let caps = Q.caps
  let bounded = Q.bounded
  let create = Q.create
  let m = M.metrics
  let enq_tick = ref 0
  let deq_tick = ref 0

  let try_enqueue t x =
    let n = !enq_tick + 1 in
    enq_tick := n;
    let ok =
      if n land sample_mask = 0 then begin
        let t0 = Clock.now_ns () in
        let ok = Q.try_enqueue t x in
        Metrics.record_enq_ns m (Clock.now_ns () - t0);
        ok
      end
      else Q.try_enqueue t x
    in
    if not ok then Metrics.emit m Event.Full_retry;
    ok

  let try_dequeue t =
    let n = !deq_tick + 1 in
    deq_tick := n;
    let r =
      if n land sample_mask = 0 then begin
        let t0 = Clock.now_ns () in
        let r = Q.try_dequeue t in
        Metrics.record_deq_ns m (Clock.now_ns () - t0);
        r
      end
      else Q.try_dequeue t
    in
    if r = None then Metrics.emit m Event.Empty_retry;
    r

  (* Batches are always timed (one timed call already amortizes the two
     clock reads over k items) and account k histogram samples per call,
     so item totals stay comparable with single-op runs.  A short batch
     means the underlying queue reported full/empty exactly once — count
     one retry, like the single-op wrappers do. *)
  let try_enqueue_batch t items =
    let t0 = Clock.now_ns () in
    let accepted = Q.try_enqueue_batch t items in
    Metrics.record_enq_batch_ns m ~items:accepted (Clock.now_ns () - t0);
    if accepted < Array.length items then Metrics.emit m Event.Full_retry;
    accepted

  let try_dequeue_batch t k =
    let t0 = Clock.now_ns () in
    let got = Q.try_dequeue_batch t k in
    let n = List.length got in
    Metrics.record_deq_batch_ns m ~items:n (Clock.now_ns () - t0);
    if n < k then Metrics.emit m Event.Empty_retry;
    got

  let length = Q.length
end

(* --- Deep instrumentation ------------------------------------------------
   The wrapper above sees only the public queue interface; the evequoz
   queues additionally accept a probe functor argument, letting the hub
   count SC failures, helping, and tag-registry traffic from inside the
   algorithm.  These rebuild the queue with [Metrics.probe] plugged in and
   then add the shallow wrapper for retries/latency. *)

module Deep_evequoz_cas (M : METRICS) : Queue_intf.CONC = struct
  module P = (val Metrics.probe M.metrics)
  module Core =
    Nbq_core.Evequoz_cas.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
  module Q = Nbq_core.Evequoz_cas.With_implicit_handles (Core)
  module C = Queue_intf.Make (Queue_intf.Capability.Bounded_batch (Q))
  include Make (M) (C)
end

module Deep_evequoz_bw (M : METRICS) : Queue_intf.CONC = struct
  module P = (val Metrics.probe M.metrics)
  module Core =
    Nbq_core.Evequoz_bw.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
  module Q = struct
    include Nbq_core.Evequoz_cas.With_implicit_handles (Core)

    let name = "evequoz-bw"
  end
  module C = Queue_intf.Make (Queue_intf.Capability.Bounded_batch (Q))
  include Make (M) (C)
end

module Deep_evequoz_llsc (M : METRICS) : Queue_intf.CONC = struct
  module P = (val Metrics.probe M.metrics)
  module Cell =
    Nbq_primitives.Llsc.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
  module Q = Nbq_core.Evequoz_llsc.Make_probed (Cell) (P)
  module C = Queue_intf.Make (Queue_intf.Capability.Bounded (Q))
  include Make (M) (C)
end

let instrument (m : Metrics.t) (module Q : Queue_intf.CONC) :
    (module Queue_intf.CONC) =
  (module Make
            (struct
              let metrics = m
            end)
            (Q))

let evequoz_cas (m : Metrics.t) : (module Queue_intf.CONC) =
  (module Deep_evequoz_cas (struct
    let metrics = m
  end))

let evequoz_llsc (m : Metrics.t) : (module Queue_intf.CONC) =
  (module Deep_evequoz_llsc (struct
    let metrics = m
  end))

let evequoz_bw (m : Metrics.t) : (module Queue_intf.CONC) =
  (module Deep_evequoz_bw (struct
    let metrics = m
  end))

let deep (m : Metrics.t) ~name (q : (module Queue_intf.CONC)) :
    (module Queue_intf.CONC) =
  match name with
  | "evequoz-cas" -> evequoz_cas m
  | "evequoz-llsc" -> evequoz_llsc m
  | "evequoz-bw" -> evequoz_bw m
  | _ -> instrument m q
