(** A monotonically growing counter with one exclusive cell per domain.

    Each domain increments a private cache-line-padded cell reached
    through [Domain.DLS], so the hot path is a domain-local load plus a
    plain (non-atomic) add — no C call, no lock-prefixed instruction, no
    coherence traffic.  Cells are published to a lock-free list on a
    domain's first increment, letting {!read} sum them without stopping
    writers.

    {!read} is a benignly racy snapshot, exact once writers are quiescent
    — e.g. after [Domain.join], whose happens-before edge publishes every
    plain write.  Each [create] allocates a [Domain.DLS] key, which OCaml
    never reclaims: create counters per run or per subsystem, not per
    operation. *)

type t

val create : unit -> t

val incr : t -> unit
(** Add one to the calling domain's private cell: a plain increment. *)

val add : t -> int -> unit
(** Add [n] (no-op when [n = 0]). *)

val read : t -> int
(** Sum over all domains' cells. *)

val reset : t -> unit
(** Zero every cell.  Only sensible while writers are quiescent. *)
