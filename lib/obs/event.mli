(** The event taxonomy: every countable thing the queue stack can do on its
    failure/helping paths.

    The first four events come from the paper's two synchronization cores
    (LL/SC reservations and their races, counter helping); [Full_retry] /
    [Empty_retry] are the workload-visible outcomes; the [Tag_*] events
    trace the CAS-simulated LL/SC tag-variable registry ([Register] /
    [ReRegister] / [Deregister] and recycling) whose churn the paper's
    space experiment measures; [Shard_steal] counts work-stealing
    fallbacks in the sharded front-end ([Nbq_scale.Sharded]); the
    [Wait_*] events trace the parking layer ([Nbq_wait]) — how often
    blocked operations actually slept, how many wakes were delivered, and
    how many published waiters withdrew unconsumed. *)

type t =
  | Sc_fail        (** update-path store-conditional failed *)
  | Ll_reserve     (** load-linked reservation taken *)
  | Tail_help      (** helped advance a lagging [Tail] *)
  | Head_help      (** helped advance a lagging [Head] *)
  | Full_retry     (** operation observed a full queue *)
  | Empty_retry    (** operation observed an empty queue *)
  | Tag_register   (** tag variable acquired *)
  | Tag_reregister (** [ReRegister] had to swap tag variables *)
  | Tag_deregister (** tag variable released *)
  | Tag_recycle    (** registration recycled a free tag variable *)
  | Shard_steal    (** sharded front-end completed an op on a foreign shard *)
  | Wait_park      (** blocked operation parked its domain *)
  | Wait_wake      (** wake path delivered a signal to a parked waiter *)
  | Wait_cancel    (** published waiter withdrew without consuming a wake *)

val count : int
(** Number of distinct events. *)

val index : t -> int
(** Dense index in [0, count); stable across runs, used as array index and
    JSON field order. *)

val all : t list
(** Every event, in [index] order. *)

val to_string : t -> string
(** Snake-case wire name, e.g. ["sc_fail"]; the JSON-lines field name. *)

val of_string : string -> t option

val describe : t -> string
(** One-line human description for reports. *)
