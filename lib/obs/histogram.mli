(** Lock-free log-bucketed latency histogram (HDR-style).

    Values are nanoseconds.  Buckets [0..7] are exact; beyond that every
    power-of-two octave splits into 8 sub-buckets, bounding the relative
    bucket width by 12.5% across the whole 63-bit range — percentiles are
    read with at most that error, regardless of the latency scale.

    Recording is wait-free: one [fetch_and_add] on the calling domain's
    shard of the bucket array plus one on the shard's running sum; no
    allocation, no locks.  Use {!snapshot} (quiescent, or accept a slightly
    torn view) and the pure accessors for reporting. *)

type t

val default_shards : int

val create : ?shards:int -> unit -> t
(** [shards] is rounded up to a power of two; default {!default_shards}. *)

val record : t -> int -> unit
(** [record t ns] counts one sample of [ns] nanoseconds (negative values
    clamp to 0).  Wait-free, allocation-free. *)

val record_n : t -> int -> int -> unit
(** [record_n t ns n] counts [n] samples of [ns] nanoseconds each — the
    batched-operation accounting path, where one timed call covers [n]
    items and each is attributed the per-item share.  No-op when
    [n <= 0]. *)

(** {2 Bucket geometry (exposed for tests and renderers)} *)

val bucket_count : int
val bucket_of_ns : int -> int
val bucket_lower_ns : int -> int
(** Smallest ns value mapping to the bucket. *)

val bucket_upper_ns : int -> int
(** Largest ns value mapping to the bucket ([max_int] for the last). *)

(** {2 Snapshots} *)

type snapshot = {
  counts : int array;  (** per-bucket counts, length {!bucket_count} *)
  total : int;
  sum : int;           (** total recorded nanoseconds *)
}

val snapshot : t -> snapshot
val empty : snapshot
val merge : snapshot -> snapshot -> snapshot
val total : snapshot -> int

val mean_ns : snapshot -> float
(** [nan] when empty. *)

val percentile_ns : snapshot -> float -> float
(** [percentile_ns s q] for [q] in [0,1]: nearest-rank percentile, reported
    as the containing bucket's upper bound.  [nan] when empty; raises
    [Invalid_argument] when [q] is outside [0,1]. *)

val max_ns : snapshot -> float
(** Upper bound of the highest non-empty bucket; [nan] when empty. *)

val nonempty : snapshot -> (int * int * int) list
(** [(lower_ns, upper_ns, count)] for each non-empty bucket, ascending. *)

val pp : Format.formatter -> snapshot -> unit
(** One-line "n= mean= p50= p95= p99= p99.9=" rendering. *)
