(* Hand-rolled JSON — the toolchain has no JSON library and the schema is
   flat enough that pulling one in would be all cost. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN/inf; emit null so every line stays parseable. *)
    if Float.is_nan f || Float.abs f = Float.infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add_json buf x)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        add_json buf v)
      fields;
    Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  add_json buf j;
  Buffer.contents buf

(* --- JSON parser --------------------------------------------------------- *)

(* Recursive-descent reader for the same value type, so bench_compare and
   the trace validator can round-trip what this module writes without a
   JSON dependency.  Accepts standard JSON; integers without '.'/exponent
   parse as [Int], everything else numeric as [Float]. *)
let parse (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "%s at byte %d" msg !pos) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then incr pos
    else fail (Printf.sprintf "expected '%c', found '%c'" c (peek ()))
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let add_utf8 buf code =
    (* Enough for \uXXXX escapes (BMP); surrogate pairs are not paired —
       the writer never emits them. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let pstring () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; incr pos
         | '\\' -> Buffer.add_char buf '\\'; incr pos
         | '/' -> Buffer.add_char buf '/'; incr pos
         | 'n' -> Buffer.add_char buf '\n'; incr pos
         | 'r' -> Buffer.add_char buf '\r'; incr pos
         | 't' -> Buffer.add_char buf '\t'; incr pos
         | 'b' -> Buffer.add_char buf '\b'; incr pos
         | 'f' -> Buffer.add_char buf '\012'; incr pos
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           (match int_of_string_opt ("0x" ^ hex) with
           | Some code ->
             add_utf8 buf code;
             pos := !pos + 5
           | None -> fail "bad \\u escape")
         | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | '0' .. '9' | '-' | '+' ->
        incr pos;
        go ()
      | '.' | 'e' | 'E' ->
        is_float := true;
        incr pos;
        go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> String (pstring ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> number ()
    | c -> fail (Printf.sprintf "unexpected '%c'" c)
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      incr pos;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws ();
        let k = pstring () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
          incr pos;
          fields ((k, v) :: acc)
        | '}' ->
          incr pos;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      fields []
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then begin
      incr pos;
      List []
    end
    else begin
      let rec elts acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
          incr pos;
          elts (v :: acc)
        | ']' ->
          incr pos;
          List (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elts []
    end
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Failure msg -> Error msg

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let pct s q =
  let v = Histogram.percentile_ns s q in
  if Float.is_nan v then Null else Float v

let histogram_json (s : Histogram.snapshot) =
  Obj
    [
      ("total", Int s.total);
      ("mean_ns", if s.total = 0 then Null else Float (Histogram.mean_ns s));
      ("p50_ns", pct s 0.5);
      ("p95_ns", pct s 0.95);
      ("p99_ns", pct s 0.99);
      ("p999_ns", pct s 0.999);
      ( "buckets",
        List
          (List.map
             (fun (lo, _hi, n) -> List [ Int lo; Int n ])
             (Histogram.nonempty s)) );
    ]

let snapshot_fields (s : Metrics.snapshot) =
  let events =
    List.map (fun ev -> (Event.to_string ev, Int (Metrics.get s ev))) Event.all
  in
  [ ("events", Obj events); ("enq_latency", histogram_json s.enq); ("deq_latency", histogram_json s.deq) ]

(* --- JSON-lines file sink ------------------------------------------------ *)

type t = Null_sink | Jsonl of { path : string; oc : out_channel }

let null = Null_sink

let default_path ?(dir = "results") ~prefix () =
  Printf.sprintf "%s/metrics-%s-%d-%d.jsonl" dir prefix (Unix.getpid ())
    (int_of_float (Unix.gettimeofday ()))

let open_jsonl path =
  (match Filename.dirname path with
  | "" | "." -> ()
  | dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755);
  Jsonl { path; oc = open_out path }

let path = function Null_sink -> None | Jsonl { path; _ } -> Some path

let write t ~fields =
  match t with
  | Null_sink -> ()
  | Jsonl { oc; _ } ->
    output_string oc (json_to_string (Obj fields));
    output_char oc '\n';
    flush oc

let write_snapshot t ~meta (s : Metrics.snapshot) =
  write t ~fields:(meta @ snapshot_fields s)

let close = function Null_sink -> () | Jsonl { oc; _ } -> close_out oc
