(* Hand-rolled JSON — the toolchain has no JSON library and the schema is
   flat enough that pulling one in would be all cost. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN/inf; emit null so every line stays parseable. *)
    if Float.is_nan f || Float.abs f = Float.infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        add_json buf x)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        add_json buf v)
      fields;
    Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  add_json buf j;
  Buffer.contents buf

let pct s q =
  let v = Histogram.percentile_ns s q in
  if Float.is_nan v then Null else Float v

let histogram_json (s : Histogram.snapshot) =
  Obj
    [
      ("total", Int s.total);
      ("mean_ns", if s.total = 0 then Null else Float (Histogram.mean_ns s));
      ("p50_ns", pct s 0.5);
      ("p95_ns", pct s 0.95);
      ("p99_ns", pct s 0.99);
      ("p999_ns", pct s 0.999);
      ( "buckets",
        List
          (List.map
             (fun (lo, _hi, n) -> List [ Int lo; Int n ])
             (Histogram.nonempty s)) );
    ]

let snapshot_fields (s : Metrics.snapshot) =
  let events =
    List.map (fun ev -> (Event.to_string ev, Int (Metrics.get s ev))) Event.all
  in
  [ ("events", Obj events); ("enq_latency", histogram_json s.enq); ("deq_latency", histogram_json s.deq) ]

(* --- JSON-lines file sink ------------------------------------------------ *)

type t = Null_sink | Jsonl of { path : string; oc : out_channel }

let null = Null_sink

let default_path ?(dir = "results") ~prefix () =
  Printf.sprintf "%s/metrics-%s-%d-%d.jsonl" dir prefix (Unix.getpid ())
    (int_of_float (Unix.gettimeofday ()))

let open_jsonl path =
  (match Filename.dirname path with
  | "" | "." -> ()
  | dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755);
  Jsonl { path; oc = open_out path }

let path = function Null_sink -> None | Jsonl { path; _ } -> Some path

let write t ~fields =
  match t with
  | Null_sink -> ()
  | Jsonl { oc; _ } ->
    output_string oc (json_to_string (Obj fields));
    output_char oc '\n';
    flush oc

let write_snapshot t ~meta (s : Metrics.snapshot) =
  write t ~fields:(meta @ snapshot_fields s)

let close = function Null_sink -> () | Jsonl { oc; _ } -> close_out oc
