(* Log-bucketed (HDR-style) latency histogram.  Buckets 0..7 hold exact
   nanosecond values 0..7; from 8 on, each power-of-two octave is split
   into 8 sub-buckets, giving <= 12.5% relative bucket width everywhere.
   The bucket array is sharded per domain like Sharded_counter; recording
   is one fetch_and_add on the bucket plus one on the shard's running sum. *)

let sub_bits = 3
let sub_count = 1 lsl sub_bits  (* 8 *)

(* Highest msb for a 63-bit positive int is 61: index 479. *)
let bucket_count = ((61 - sub_bits + 1) * sub_count) + sub_count

let msb v =
  (* v > 0 *)
  let r = ref 0 and x = ref v in
  while !x > 1 do
    incr r;
    x := !x lsr 1
  done;
  !r

let bucket_of_ns v =
  if v <= 0 then 0
  else if v < sub_count then v
  else begin
    let m = msb v in
    let sub = (v lsr (m - sub_bits)) land (sub_count - 1) in
    let i = ((m - sub_bits + 1) * sub_count) + sub in
    if i >= bucket_count then bucket_count - 1 else i
  end

let bucket_lower_ns i =
  if i < sub_count then i
  else
    let g = i lsr sub_bits and sub = i land (sub_count - 1) in
    (sub_count + sub) lsl (g - 1)

let bucket_upper_ns i =
  if i >= bucket_count - 1 then max_int else bucket_lower_ns (i + 1) - 1

type t = {
  mask : int;
  buckets : int Atomic.t array array;  (* shard -> bucket -> count *)
  sums : int Atomic.t array;           (* shard -> total recorded ns *)
}

let default_shards = 8

let rec round_pow2 n k = if k >= n then k else round_pow2 n (k * 2)

let create ?(shards = default_shards) () =
  let n = round_pow2 (max 1 shards) 1 in
  {
    mask = n - 1;
    (* Only the shard's first bucket line matters for cross-shard false
       sharing; padding every bucket would cost 64x the space for counters
       that are rarely contended (two domains on one shard and one
       bucket).  Pad the per-shard sum cells instead — those are hit on
       every record. *)
    buckets = Array.init n (fun _ -> Array.init bucket_count (fun _ -> Atomic.make 0));
    sums = Array.init n (fun _ -> Padding.atomic 0);
  }

let record t ns =
  let ns = if ns < 0 then 0 else ns in
  let s = (Domain.self () :> int) land t.mask in
  ignore (Atomic.fetch_and_add t.buckets.(s).(bucket_of_ns ns) 1);
  ignore (Atomic.fetch_and_add t.sums.(s) ns)

let record_n t ns n =
  if n > 0 then begin
    let ns = if ns < 0 then 0 else ns in
    let s = (Domain.self () :> int) land t.mask in
    ignore (Atomic.fetch_and_add t.buckets.(s).(bucket_of_ns ns) n);
    ignore (Atomic.fetch_and_add t.sums.(s) (ns * n))
  end

type snapshot = {
  counts : int array;  (* length bucket_count *)
  total : int;
  sum : int;
}

let snapshot t =
  let counts = Array.make bucket_count 0 in
  Array.iter
    (fun shard ->
      Array.iteri (fun i a -> counts.(i) <- counts.(i) + Atomic.get a) shard)
    t.buckets;
  let total = Array.fold_left ( + ) 0 counts in
  let sum = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.sums in
  { counts; total; sum }

let empty = { counts = Array.make bucket_count 0; total = 0; sum = 0 }

let merge a b =
  {
    counts = Array.init bucket_count (fun i -> a.counts.(i) + b.counts.(i));
    total = a.total + b.total;
    sum = a.sum + b.sum;
  }

let total s = s.total

let mean_ns s = if s.total = 0 then nan else float_of_int s.sum /. float_of_int s.total

let percentile_ns s q =
  if s.total = 0 then nan
  else if q < 0.0 || q > 1.0 then invalid_arg "Histogram.percentile_ns: q outside [0,1]"
  else begin
    (* Nearest-rank over the cumulative distribution; report the bucket's
       upper bound, so the true percentile is never under-stated by more
       than the bucket width (<= 12.5%). *)
    let rank = max 1 (int_of_float (ceil (q *. float_of_int s.total))) in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < bucket_count do
      cum := !cum + s.counts.(!i);
      incr i
    done;
    float_of_int (bucket_upper_ns (!i - 1))
  end

let max_ns s =
  let top = ref (-1) in
  Array.iteri (fun i c -> if c > 0 then top := i) s.counts;
  if !top < 0 then nan else float_of_int (bucket_upper_ns !top)

let nonempty s =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if s.counts.(i) > 0 then
      acc := (bucket_lower_ns i, bucket_upper_ns i, s.counts.(i)) :: !acc
  done;
  !acc

let pp fmt s =
  if s.total = 0 then Format.fprintf fmt "(no samples)"
  else
    Format.fprintf fmt "n=%d mean=%.0fns p50=%.0fns p95=%.0fns p99=%.0fns p99.9=%.0fns"
      s.total (mean_ns s) (percentile_ns s 0.5) (percentile_ns s 0.95)
      (percentile_ns s 0.99) (percentile_ns s 0.999)
