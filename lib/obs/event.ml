type t =
  | Sc_fail
  | Ll_reserve
  | Tail_help
  | Head_help
  | Full_retry
  | Empty_retry
  | Tag_register
  | Tag_reregister
  | Tag_deregister
  | Tag_recycle
  | Shard_steal

let count = 11

let index = function
  | Sc_fail -> 0
  | Ll_reserve -> 1
  | Tail_help -> 2
  | Head_help -> 3
  | Full_retry -> 4
  | Empty_retry -> 5
  | Tag_register -> 6
  | Tag_reregister -> 7
  | Tag_deregister -> 8
  | Tag_recycle -> 9
  | Shard_steal -> 10

let all =
  [
    Sc_fail; Ll_reserve; Tail_help; Head_help; Full_retry; Empty_retry;
    Tag_register; Tag_reregister; Tag_deregister; Tag_recycle; Shard_steal;
  ]

let to_string = function
  | Sc_fail -> "sc_fail"
  | Ll_reserve -> "ll_reserve"
  | Tail_help -> "tail_help"
  | Head_help -> "head_help"
  | Full_retry -> "full_retry"
  | Empty_retry -> "empty_retry"
  | Tag_register -> "tag_register"
  | Tag_reregister -> "tag_reregister"
  | Tag_deregister -> "tag_deregister"
  | Tag_recycle -> "tag_recycle"
  | Shard_steal -> "shard_steal"

let of_string = function
  | "sc_fail" -> Some Sc_fail
  | "ll_reserve" -> Some Ll_reserve
  | "tail_help" -> Some Tail_help
  | "head_help" -> Some Head_help
  | "full_retry" -> Some Full_retry
  | "empty_retry" -> Some Empty_retry
  | "tag_register" -> Some Tag_register
  | "tag_reregister" -> Some Tag_reregister
  | "tag_deregister" -> Some Tag_deregister
  | "tag_recycle" -> Some Tag_recycle
  | "shard_steal" -> Some Shard_steal
  | _ -> None

let describe = function
  | Sc_fail -> "store-conditional failed on the update path (reservation stolen)"
  | Ll_reserve -> "load-linked reservation taken on a cell"
  | Tail_help -> "helped advance a lagging Tail for a delayed enqueuer"
  | Head_help -> "helped advance a lagging Head for a delayed dequeuer"
  | Full_retry -> "operation observed a full queue"
  | Empty_retry -> "operation observed an empty queue"
  | Tag_register -> "tag variable acquired (Register)"
  | Tag_reregister -> "per-operation ReRegister step (swaps the tag variable if a foreign reference is held)"
  | Tag_deregister -> "tag variable released (Deregister)"
  | Tag_recycle -> "registration recycled a free tag variable"
  | Shard_steal -> "sharded front-end completed an operation on a foreign shard"
