type t =
  | Sc_fail
  | Ll_reserve
  | Tail_help
  | Head_help
  | Full_retry
  | Empty_retry
  | Tag_register
  | Tag_reregister
  | Tag_deregister
  | Tag_recycle
  | Shard_steal
  | Wait_park
  | Wait_wake
  | Wait_cancel

let count = 14

let index = function
  | Sc_fail -> 0
  | Ll_reserve -> 1
  | Tail_help -> 2
  | Head_help -> 3
  | Full_retry -> 4
  | Empty_retry -> 5
  | Tag_register -> 6
  | Tag_reregister -> 7
  | Tag_deregister -> 8
  | Tag_recycle -> 9
  | Shard_steal -> 10
  | Wait_park -> 11
  | Wait_wake -> 12
  | Wait_cancel -> 13

let all =
  [
    Sc_fail; Ll_reserve; Tail_help; Head_help; Full_retry; Empty_retry;
    Tag_register; Tag_reregister; Tag_deregister; Tag_recycle; Shard_steal;
    Wait_park; Wait_wake; Wait_cancel;
  ]

let to_string = function
  | Sc_fail -> "sc_fail"
  | Ll_reserve -> "ll_reserve"
  | Tail_help -> "tail_help"
  | Head_help -> "head_help"
  | Full_retry -> "full_retry"
  | Empty_retry -> "empty_retry"
  | Tag_register -> "tag_register"
  | Tag_reregister -> "tag_reregister"
  | Tag_deregister -> "tag_deregister"
  | Tag_recycle -> "tag_recycle"
  | Shard_steal -> "shard_steal"
  | Wait_park -> "wait_park"
  | Wait_wake -> "wait_wake"
  | Wait_cancel -> "wait_cancel"

let of_string = function
  | "sc_fail" -> Some Sc_fail
  | "ll_reserve" -> Some Ll_reserve
  | "tail_help" -> Some Tail_help
  | "head_help" -> Some Head_help
  | "full_retry" -> Some Full_retry
  | "empty_retry" -> Some Empty_retry
  | "tag_register" -> Some Tag_register
  | "tag_reregister" -> Some Tag_reregister
  | "tag_deregister" -> Some Tag_deregister
  | "tag_recycle" -> Some Tag_recycle
  | "shard_steal" -> Some Shard_steal
  | "wait_park" -> Some Wait_park
  | "wait_wake" -> Some Wait_wake
  | "wait_cancel" -> Some Wait_cancel
  | _ -> None

let describe = function
  | Sc_fail -> "store-conditional failed on the update path (reservation stolen)"
  | Ll_reserve -> "load-linked reservation taken on a cell"
  | Tail_help -> "helped advance a lagging Tail for a delayed enqueuer"
  | Head_help -> "helped advance a lagging Head for a delayed dequeuer"
  | Full_retry -> "operation observed a full queue"
  | Empty_retry -> "operation observed an empty queue"
  | Tag_register -> "tag variable acquired (Register)"
  | Tag_reregister -> "per-operation ReRegister step (swaps the tag variable if a foreign reference is held)"
  | Tag_deregister -> "tag variable released (Deregister)"
  | Tag_recycle -> "registration recycled a free tag variable"
  | Shard_steal -> "sharded front-end completed an operation on a foreign shard"
  | Wait_park -> "blocked operation parked its domain on an eventcount"
  | Wait_wake -> "wake path delivered a signal to a parked waiter"
  | Wait_cancel -> "published waiter withdrew without consuming a wake"
