type t = {
  counters : Sharded_counter.t array;  (* indexed by Event.index *)
  enq_latency : Histogram.t;
  deq_latency : Histogram.t;
}

let create ?shards () =
  {
    counters = Array.init Event.count (fun _ -> Sharded_counter.create ());
    enq_latency = Histogram.create ?shards ();
    deq_latency = Histogram.create ?shards ();
  }

let emit t ev = Sharded_counter.incr t.counters.(Event.index ev)
let add t ev n = Sharded_counter.add t.counters.(Event.index ev) n
let count t ev = Sharded_counter.read t.counters.(Event.index ev)
let record_enq_ns t ns = Histogram.record t.enq_latency ns
let record_deq_ns t ns = Histogram.record t.deq_latency ns

(* Batched operations attribute the per-item share of the call's elapsed
   time to each item, so histogram totals keep counting items (not calls)
   and throughput math stays uniform across batched and single-op runs. *)
let record_enq_batch_ns t ~items ns =
  if items > 0 then Histogram.record_n t.enq_latency (ns / items) items

let record_deq_batch_ns t ~items ns =
  if items > 0 then Histogram.record_n t.deq_latency (ns / items) items

let reset t =
  Array.iter Sharded_counter.reset t.counters

type snapshot = {
  counts : int array;  (* indexed by Event.index *)
  enq : Histogram.snapshot;
  deq : Histogram.snapshot;
}

let snapshot t =
  {
    counts = Array.map Sharded_counter.read t.counters;
    enq = Histogram.snapshot t.enq_latency;
    deq = Histogram.snapshot t.deq_latency;
  }

let empty_snapshot =
  { counts = Array.make Event.count 0; enq = Histogram.empty; deq = Histogram.empty }

let merge a b =
  {
    counts = Array.init Event.count (fun i -> a.counts.(i) + b.counts.(i));
    enq = Histogram.merge a.enq b.enq;
    deq = Histogram.merge a.deq b.deq;
  }

let get s ev = s.counts.(Event.index ev)

(* [ll_reserve] and [tag_reregister] fire once per queue operation by
   construction, so paying a domain-local counter lookup on each would
   dominate the cost of the operations being observed.  They are recorded
   1-in-64 with weight 64 instead; the rare events — the diagnostically
   interesting ones — stay exact.  The sampling ticks are plain refs
   shared across domains, as in {!Instrumented}: lost updates merely
   perturb the sampling rate, never correctness. *)
let sample_mask = 63

let probe (t : t) : (module Nbq_primitives.Probe.S) =
  (module struct
    (* One tick for both hot events: only [ll_reserve] advances it (every
       operation reserves), while [tag_reregister] samples whenever it
       runs inside an [ll_reserve] sampling window — re-registrations are
       uniformly spread over operations, so the estimator stays fair
       without a second per-operation tick update. *)
    let tick = ref 0

    let ll_reserve () =
      let n = !tick + 1 in
      tick := n;
      if n land sample_mask = 0 then add t Event.Ll_reserve (sample_mask + 1)

    let sc_fail () = emit t Event.Sc_fail
    let tail_help () = emit t Event.Tail_help
    let head_help () = emit t Event.Head_help
    let tag_register () = emit t Event.Tag_register

    let tag_reregister () =
      if !tick land sample_mask = 0 then
        add t Event.Tag_reregister (sample_mask + 1)

    let tag_deregister () = emit t Event.Tag_deregister
    let tag_recycle () = emit t Event.Tag_recycle
    let shard_steal () = emit t Event.Shard_steal

    (* Parks, wakes and cancels happen at most once per blocked wait, not
       per operation — exact counts, like the other rare events. *)
    let wait_park () = emit t Event.Wait_park
    let wait_wake () = emit t Event.Wait_wake
    let wait_cancel () = emit t Event.Wait_cancel
  end)
