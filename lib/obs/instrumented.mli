(** Instrumentation wrappers around any {!Nbq_core.Queue_intf.CONC} queue.

    The shallow {!Make} wrapper emits [Full_retry] / [Empty_retry] on
    failed operations and samples operation latency 1-in-64 into the hub's
    histograms, so the uninstrumented hot path is untouched and the
    instrumented one stays within a few percent.

    The deep variants rebuild the Evéquoz queues with the hub's probe
    ({!Metrics.probe}) threaded through [Make_probed], additionally
    counting SC failures, Tail/Head helping, LL reservations and tag
    registry traffic from inside the algorithm. *)

module type METRICS = sig
  val metrics : Metrics.t
end

val sample_mask : int
(** Latency is recorded when [tick land sample_mask = 0] (1 in 64). *)

module Make (M : METRICS) (Q : Nbq_core.Queue_intf.CONC) :
  Nbq_core.Queue_intf.CONC with type 'a t = 'a Q.t

module Deep_evequoz_cas (M : METRICS) : Nbq_core.Queue_intf.CONC
module Deep_evequoz_bw (M : METRICS) : Nbq_core.Queue_intf.CONC
module Deep_evequoz_llsc (M : METRICS) : Nbq_core.Queue_intf.CONC

val instrument :
  Metrics.t -> (module Nbq_core.Queue_intf.CONC) -> (module Nbq_core.Queue_intf.CONC)
(** Shallow wrap (retries + latency only). *)

val evequoz_cas : Metrics.t -> (module Nbq_core.Queue_intf.CONC)
val evequoz_bw : Metrics.t -> (module Nbq_core.Queue_intf.CONC)
val evequoz_llsc : Metrics.t -> (module Nbq_core.Queue_intf.CONC)

val deep :
  Metrics.t ->
  name:string ->
  (module Nbq_core.Queue_intf.CONC) ->
  (module Nbq_core.Queue_intf.CONC)
(** Deep-instrument when [name] is an Evéquoz queue (rebuilding it with
    probes inside), otherwise fall back to {!instrument} on the given
    module. *)
