val now_ns : unit -> int
(** Monotonic time in nanoseconds (CLOCK_MONOTONIC via bechamel's stub).
    Fits an OCaml int for ~292 years of uptime. *)
