type verdict = Ok | Violation of string

(* --- Sequential bounded-queue specification --- *)

module Spec = struct
  (* Functional queue: [front] head-first, [back] reversed. *)
  type t = { front : int list; back : int list; size : int }

  let empty = { front = []; back = []; size = 0 }

  let push q v = { q with back = v :: q.back; size = q.size + 1 }

  let pop q =
    match q.front with
    | x :: front -> Some (x, { q with front; size = q.size - 1 })
    | [] -> (
        match List.rev q.back with
        | [] -> None
        | x :: front -> Some (x, { front; back = []; size = q.size - 1 }))

  let to_list q = q.front @ List.rev q.back

  (* Replay one operation+outcome; None if the spec can't produce it. *)
  let apply capacity q (e : History.event) =
    match (e.op, e.outcome) with
    | Enqueue v, Accepted -> if q.size < capacity then Some (push q v) else None
    | Enqueue _, Rejected -> if q.size >= capacity then Some q else None
    | Dequeue, Got v -> (
        match pop q with
        | Some (x, q') when x = v -> Some q'
        | Some _ | None -> None)
    | Dequeue, Observed_empty -> if q.size = 0 then Some q else None
    | Peek, Got v -> (
        match pop q with Some (x, _) when x = v -> Some q | Some _ | None -> None)
    | Peek, Observed_empty -> if q.size = 0 then Some q else None
    | Enqueue _, (Got _ | Observed_empty)
    | (Dequeue | Peek), (Accepted | Rejected) ->
        None
end

(* --- Complete search (Wing–Gong style, memoized) --- *)

let check_linearizable ?(capacity = max_int) history =
  let events = Array.of_list history in
  let n = Array.length events in
  if n > 62 then
    invalid_arg "check_linearizable: history longer than 62 events";
  if n = 0 then Ok
  else begin
    (* visited: (mask of linearized events, queue content) pairs already
       explored without success. *)
    let visited : (int * int list, unit) Hashtbl.t = Hashtbl.create 1024 in
    let full = (1 lsl n) - 1 in
    (* [e] is a candidate if every event that wholly precedes it is already
       linearized. *)
    let candidate mask i =
      let e = events.(i) in
      let rec ok j =
        j >= n
        || ((j = i || mask land (1 lsl j) <> 0
            || not (History.precedes events.(j) e))
           && ok (j + 1))
      in
      ok 0
    in
    let rec search mask state =
      if mask = full then true
      else begin
        let key = (mask, Spec.to_list state) in
        if Hashtbl.mem visited key then false
        else begin
          let found = ref false in
          let i = ref 0 in
          while (not !found) && !i < n do
            let idx = !i in
            incr i;
            if mask land (1 lsl idx) = 0 && candidate mask idx then
              match Spec.apply capacity state events.(idx) with
              | Some state' ->
                  if search (mask lor (1 lsl idx)) state' then found := true
              | None -> ()
          done;
          if not !found then Hashtbl.add visited key ();
          !found
        end
      end
    in
    if search 0 Spec.empty then Ok
    else
      Violation
        (Format.asprintf
           "no linearization of %d events respects the FIFO spec@.%a" n
           History.pp history)
  end

(* --- Scalable necessary conditions --- *)

let check_fifo_properties ?(check_inversion = true) ?expected_final_length
    history =
  let exception Bad of string in
  try
    (* Index enqueues and dequeues by value. *)
    let enq : (int, History.event) Hashtbl.t = Hashtbl.create 1024 in
    let deq : (int, History.event) Hashtbl.t = Hashtbl.create 1024 in
    let accepted = ref 0 and got = ref 0 in
    List.iter
      (fun (e : History.event) ->
        match (e.op, e.outcome) with
        | Enqueue v, Accepted ->
            incr accepted;
            if Hashtbl.mem enq v then
              raise (Bad (Printf.sprintf "value %d enqueued twice" v));
            Hashtbl.add enq v e
        | Dequeue, Got v ->
            incr got;
            if Hashtbl.mem deq v then
              raise (Bad (Printf.sprintf "value %d dequeued twice" v));
            Hashtbl.add deq v e
        | _ -> ())
      history;
    (* Every dequeued value was enqueued, and not wholly after its dequeue. *)
    Hashtbl.iter
      (fun v (d : History.event) ->
        match Hashtbl.find_opt enq v with
        | None -> raise (Bad (Printf.sprintf "value %d invented by dequeue" v))
        | Some e ->
            if History.precedes d e then
              raise
                (Bad
                   (Printf.sprintf
                      "value %d dequeued wholly before its enqueue" v)))
      deq;
    (* Conservation. *)
    (match expected_final_length with
    | Some len ->
        if !accepted - !got <> len then
          raise
            (Bad
               (Printf.sprintf
                  "conservation: %d accepted - %d dequeued <> final length %d"
                  !accepted !got len))
    | None ->
        if !accepted < !got then
          raise
            (Bad
               (Printf.sprintf "conservation: %d dequeued > %d accepted" !got
                  !accepted)));
    (* Real-time FIFO order: sort dequeues by invocation and walk enqueue
       completion times.  For any two dequeued values a, b:
       enq(a) wholly before enq(b)  =>  not (deq(b) wholly before deq(a)).
       Equivalent check: walking dequeues in real-time order (by response,
       then only comparing non-overlapping pairs), the enqueue-response
       times must not strictly dominate. O(n log n) via a running minimum. *)
    if check_inversion then begin
    let all_deqs = Hashtbl.fold (fun v d acc -> (v, d) :: acc) deq [] in
    let by_returned =
      List.sort
        (fun (_, (a : History.event)) (_, (b : History.event)) ->
          compare a.returned b.returned)
        all_deqs
      |> Array.of_list
    in
    let by_invoked =
      List.sort
        (fun (_, (a : History.event)) (_, (b : History.event)) ->
          compare a.invoked b.invoked)
        all_deqs
      |> Array.of_list
    in
    (* Two-pointer sweep: for each dequeue d (by invocation time), consider
       all dequeues d' that responded before d was invoked (wholly earlier).
       A violation exists iff some such d' returned a value v' whose enqueue
       was invoked after v's enqueue responded (enq(v) wholly before
       enq(v')).  Only the running maximum of enq-invocation times matters. *)
    let max_enq_inv = ref min_int and max_v = ref 0 and j = ref 0 in
    Array.iter
      (fun (v, (d : History.event)) ->
        while
          !j < Array.length by_returned
          && (snd by_returned.(!j)).History.returned < d.invoked
        do
          let v', _ = by_returned.(!j) in
          let e' = Hashtbl.find enq v' in
          if e'.History.invoked > !max_enq_inv then begin
            max_enq_inv := e'.History.invoked;
            max_v := v'
          end;
          incr j
        done;
        let e = Hashtbl.find enq v in
        if e.History.returned < !max_enq_inv then
          raise
            (Bad
               (Printf.sprintf
                  "FIFO inversion: %d enqueued wholly before %d but dequeued \
                   wholly after it"
                  v !max_v)))
      by_invoked
    end;
    Ok
  with Bad msg -> Violation msg
