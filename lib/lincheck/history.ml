type op =
  | Enqueue of int
  | Dequeue
  | Peek

type outcome =
  | Accepted
  | Rejected
  | Got of int
  | Observed_empty

type event = {
  thread : int;
  op : op;
  outcome : outcome;
  invoked : int;
  returned : int;
  call : int;
  rank : int;
}

type t = event list

type recorder = {
  clock : int Atomic.t;
  sinks : event list ref array;
}

let recorder ~threads =
  { clock = Atomic.make 0; sinks = Array.init threads (fun _ -> ref []) }

let record r ~thread op run =
  let invoked = Atomic.fetch_and_add r.clock 1 in
  let outcome = run () in
  let returned = Atomic.fetch_and_add r.clock 1 in
  let sink = r.sinks.(thread) in
  sink := { thread; op; outcome; invoked; returned; call = invoked; rank = 0 }
          :: !sink;
  outcome

let record_call r ~thread run =
  let invoked = Atomic.fetch_and_add r.clock 1 in
  let results = run () in
  let returned = Atomic.fetch_and_add r.clock 1 in
  let sink = r.sinks.(thread) in
  List.iteri
    (fun rank (op, outcome) ->
      sink :=
        { thread; op; outcome; invoked; returned; call = invoked; rank }
        :: !sink)
    results;
  results

let events r =
  Array.to_list r.sinks
  |> List.concat_map (fun sink -> List.rev !sink)
  |> List.sort (fun a b ->
         compare (a.invoked, a.thread, a.rank) (b.invoked, b.thread, b.rank))

let precedes a b =
  a.returned < b.invoked
  || (a.thread = b.thread && a.call = b.call && a.rank < b.rank)

let pp_op fmt = function
  | Enqueue v -> Format.fprintf fmt "enq(%d)" v
  | Dequeue -> Format.fprintf fmt "deq()"
  | Peek -> Format.fprintf fmt "peek()"

let pp_outcome fmt = function
  | Accepted -> Format.fprintf fmt "ok"
  | Rejected -> Format.fprintf fmt "full"
  | Got v -> Format.fprintf fmt "-> %d" v
  | Observed_empty -> Format.fprintf fmt "-> empty"

let pp_event fmt e =
  if e.rank = 0 then
    Format.fprintf fmt "[T%d %d..%d] %a %a" e.thread e.invoked e.returned
      pp_op e.op pp_outcome e.outcome
  else
    Format.fprintf fmt "[T%d %d..%d #%d] %a %a" e.thread e.invoked e.returned
      e.rank pp_op e.op pp_outcome e.outcome

let pp fmt h =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_event e) h
