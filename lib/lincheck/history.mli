(** Recording concurrent queue histories.

    Linearizability (Herlihy & Wing [3], the correctness condition the paper
    claims) is a property of {e histories}: sequences of operation
    invocations and responses.  This module timestamps both ends of every
    operation with a shared atomic tick counter, giving the real-time
    precedence order the checker must respect: operation [a] precedes [b]
    iff [a] responded before [b] was invoked.

    {b Batch operations} linearize as their items in order: one batch call
    is recorded ({!record_call}) as several item-level sub-events sharing
    the call's tick window, distinguished by [rank].  {!precedes} orders
    same-call sub-events by rank, so the exact checker is forced to
    linearize a batch's items in batch order (interleaved arbitrarily
    with other threads' events) without any change to the sequential
    spec. *)

type op =
  | Enqueue of int
  | Dequeue
  | Peek  (** observe the front without removing (extension feature) *)

type outcome =
  | Accepted      (** enqueue returned [true] *)
  | Rejected      (** enqueue returned [false] — queue full *)
  | Got of int    (** dequeue returned an item *)
  | Observed_empty  (** dequeue returned [None] *)

type event = {
  thread : int;
  op : op;
  outcome : outcome;
  invoked : int;  (** tick at invocation *)
  returned : int; (** tick at response *)
  call : int;
      (** invocation tick of the API call this event belongs to; equals
          [invoked] (single ops share no call, batch sub-events share
          their batch's window) *)
  rank : int;     (** position within the call; [0] for single ops *)
}

type t = event list
(** A complete history (all operations responded). *)

type recorder
(** Shared timestamp source plus per-thread event sinks. *)

val recorder : threads:int -> recorder

val record :
  recorder -> thread:int -> op -> (unit -> outcome) -> outcome
(** [record r ~thread op run] stamps the invocation, runs [run] (which
    performs the real queue operation), stamps the response, logs the event
    in [thread]'s sink and returns the outcome.  [thread] sinks are
    single-owner: each thread id must be used by one domain only. *)

val record_call :
  recorder ->
  thread:int ->
  (unit -> (op * outcome) list) ->
  (op * outcome) list
(** [record_call r ~thread run] stamps one invocation/response window
    around [run] (which performs a real {e batch} operation) and logs
    every returned [(op, outcome)] as a sub-event of that window, ranked
    in list order.  Convention for short batches: a partial batch enqueue
    logs its accepted items ([Accepted]) followed by {e one} [Rejected]
    for the first refused item (the rest were never attempted); a partial
    batch dequeue logs its items ([Got]) followed by one
    [Observed_empty]. *)

val events : recorder -> t
(** Merge all sinks (call after every worker has joined). *)

val precedes : event -> event -> bool
(** Real-time order: [a] responded before [b] was invoked — extended to
    same-call batch sub-events, which are ordered by [rank]. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
