(** Concurrent stress drivers that produce checkable histories.

    [small_rounds] runs many short multi-domain episodes and feeds each
    complete history to the exact checker — the workhorse correctness test
    for every queue implementation.  [big_run] produces one large history
    and applies the scalable necessary-condition checks.

    Enqueue values are made globally unique ([thread * 2^20 + sequence]) so
    that loss, duplication and reordering are directly attributable.

    With [~with_batches:true] the drivers mix in batch operations
    (2–3-item [enqueue_batch]/[dequeue_batch] calls, ~30% of operations):
    each batch call is recorded through {!History.record_call} as its
    items in order, so the exact checker verifies the documented batch
    linearization (a batch = its items, in order, as one call window). *)

type ops = {
  enqueue : int -> bool;
  dequeue : unit -> int option;
  enqueue_batch : int array -> int;
  dequeue_batch : int -> int list;
}
(** The queue under test, seen from one worker thread.  The harness builds
    these from any {!Nbq_core.Queue_intf.CONC} implementation; use
    {!ops_of_singles} when the queue has no native batches. *)

val ops_of_singles :
  enqueue:(int -> bool) -> dequeue:(unit -> int option) -> ops
(** Fill the batch fields with loops over the single operations. *)

val value : thread:int -> seq:int -> int
(** The unique-value encoding used by both drivers. *)

val run_once :
  ?with_batches:bool ->
  threads:int ->
  ops_per_thread:int ->
  seed:int ->
  (int -> ops) ->
  History.t
(** One episode: [threads] domains each perform [ops_per_thread] randomized
    operations (enqueue-biased while its own backlog is small) against
    [ops thread], behind a common start barrier.  Returns the merged
    history.  A batch call counts as one operation but contributes up to
    [k + 1] events. *)

val check_small_rounds :
  ?rounds:int ->
  ?threads:int ->
  ?ops_per_thread:int ->
  ?capacity:int ->
  ?seed:int ->
  ?with_batches:bool ->
  (unit -> int -> ops) ->
  Checker.verdict
(** Run [rounds] (default 100) episodes of [threads] (default 3) domains ×
    [ops_per_thread] (default 4) operations, exact-checking each history
    against the bounded spec (with [capacity], default unbounded); stops at
    the first violation.  The callback is invoked once per round and must
    return per-thread ops over a {e fresh} queue.  [with_batches] defaults
    to [false], leaving historical seeds and event counts untouched. *)

val check_big_run :
  ?threads:int ->
  ?ops_per_thread:int ->
  ?seed:int ->
  ?with_batches:bool ->
  ?relaxed_order:bool ->
  final_length:(unit -> int) ->
  (int -> ops) ->
  Checker.verdict
(** One big episode (defaults: 4 domains × 20_000 ops) checked with the
    scalable property checks; [final_length] is read after all domains
    joined, for exact conservation.  [relaxed_order] (default [false])
    disables the real-time FIFO inversion check, for queues that only
    promise per-shard order. *)
