module Prng = Nbq_primitives.Prng
module Barrier = Nbq_primitives.Barrier

type ops = {
  enqueue : int -> bool;
  dequeue : unit -> int option;
  enqueue_batch : int array -> int;
  dequeue_batch : int -> int list;
}

let ops_of_singles ~enqueue ~dequeue =
  {
    enqueue;
    dequeue;
    enqueue_batch =
      (fun items ->
        let n = Array.length items in
        let i = ref 0 in
        while !i < n && enqueue items.(!i) do incr i done;
        !i);
    dequeue_batch =
      (fun k ->
        let rec go acc left =
          if left <= 0 then List.rev acc
          else
            match dequeue () with
            | Some x -> go (x :: acc) (left - 1)
            | None -> List.rev acc
        in
        go [] k);
  }

let value ~thread ~seq = (thread lsl 20) lor seq

let record_enqueue_batch ~recorder ~thread (ops : ops) vs =
  ignore
    (History.record_call recorder ~thread (fun () ->
         let accepted = ops.enqueue_batch vs in
         let n = Array.length vs in
         List.init
           (min n (accepted + 1))
           (fun i ->
             if i < accepted then (History.Enqueue vs.(i), History.Accepted)
             else
               (* The first refused item; later ones were never attempted. *)
               (History.Enqueue vs.(i), History.Rejected))))

let record_dequeue_batch ~recorder ~thread (ops : ops) k =
  ignore
    (History.record_call recorder ~thread (fun () ->
         let got = ops.dequeue_batch k in
         let m = List.length got in
         List.map (fun v -> (History.Dequeue, History.Got v)) got
         @
         (* A short batch observed empty exactly once, at its cut-off. *)
         if m < k then [ (History.Dequeue, History.Observed_empty) ] else []))

let worker_loop ?(with_batches = false) ~recorder ~thread ~ops_per_thread ~rng
    (ops : ops) =
  (* Track own backlog to bias toward enqueues early and drain late, so
     histories exercise both empty and populated regimes. *)
  let seq = ref 0 in
  for _ = 1 to ops_per_thread do
    let do_enqueue = Prng.int rng 10 < 6 in
    let do_batch = with_batches && Prng.int rng 10 < 3 in
    if do_enqueue then
      if do_batch then begin
        let k = 2 + Prng.int rng 2 in
        let vs =
          Array.init k (fun _ ->
              let v = value ~thread ~seq:!seq in
              incr seq;
              v)
        in
        record_enqueue_batch ~recorder ~thread ops vs
      end
      else begin
        let v = value ~thread ~seq:!seq in
        incr seq;
        ignore
          (History.record recorder ~thread (History.Enqueue v) (fun () ->
               if ops.enqueue v then History.Accepted else History.Rejected))
      end
    else if do_batch then
      record_dequeue_batch ~recorder ~thread ops (2 + Prng.int rng 2)
    else
      ignore
        (History.record recorder ~thread History.Dequeue (fun () ->
             match ops.dequeue () with
             | Some v -> History.Got v
             | None -> History.Observed_empty))
  done

let run_once ?with_batches ~threads ~ops_per_thread ~seed make_ops =
  let recorder = History.recorder ~threads in
  let barrier = Barrier.create ~parties:threads in
  let domains =
    List.init threads (fun thread ->
        let ops = make_ops thread in
        Domain.spawn (fun () ->
            let rng = Prng.create ~seed:(seed + (thread * 7919)) in
            Barrier.await barrier;
            worker_loop ?with_batches ~recorder ~thread ~ops_per_thread ~rng
              ops))
  in
  List.iter Domain.join domains;
  History.events recorder

let check_small_rounds ?(rounds = 100) ?(threads = 3) ?(ops_per_thread = 4)
    ?capacity ?(seed = 42) ?with_batches make_round =
  let rec go round =
    if round >= rounds then Checker.Ok
    else begin
      let make_ops = make_round () in
      let history =
        run_once ?with_batches ~threads ~ops_per_thread
          ~seed:(seed + (round * 131)) make_ops
      in
      match Checker.check_linearizable ?capacity history with
      | Checker.Ok -> go (round + 1)
      | Checker.Violation msg ->
          Checker.Violation (Printf.sprintf "round %d: %s" round msg)
    end
  in
  go 0

let check_big_run ?(threads = 4) ?(ops_per_thread = 20_000) ?(seed = 42)
    ?with_batches ?(relaxed_order = false) ~final_length make_ops =
  let history = run_once ?with_batches ~threads ~ops_per_thread ~seed make_ops in
  Checker.check_fifo_properties ~check_inversion:(not relaxed_order)
    ~expected_final_length:(final_length ())
    history
