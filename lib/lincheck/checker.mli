(** Linearizability checking for bounded-FIFO histories.

    Two strengths:

    - {!check_linearizable} — the complete decision procedure in the style
      of Wing & Gong [16]: a memoized search over all orderings of the
      history that respect real-time precedence, replayed against a
      sequential bounded-queue specification.  Exponential in the worst
      case; intended for histories up to a few dozen events (the stress
      tests run {e many} small histories instead of one big one).

    - {!check_fifo_properties} — a set of necessary conditions that scale
      to millions of events: no value invented, none lost (conservation),
      none duplicated, and no real-time FIFO inversion (if [enq a] wholly
      precedes [enq b] then [deq b] must not wholly precede [deq a]).
      Requires all-distinct enqueue values.  A history that fails any of
      these is certainly not linearizable; passing is strong evidence but
      not proof. *)

type verdict = Ok | Violation of string

val check_linearizable : ?capacity:int -> History.t -> verdict
(** [capacity] is the bound of the sequential specification (default: no
    bound).  Histories longer than 62 events are rejected with
    [Invalid_argument] (the search mask is an [int]). *)

val check_fifo_properties :
  ?check_inversion:bool -> ?expected_final_length:int -> History.t -> verdict
(** Scalable necessary-condition checks (see above).  When
    [expected_final_length] is given, conservation is checked exactly:
    [#accepted enqueues - #successful dequeues] must equal it.
    [check_inversion] (default [true]) enables the real-time FIFO
    inversion check; pass [false] for queues that deliberately relax
    global order (e.g. the sharded front-end, which only keeps FIFO per
    shard) — conservation, no-invention and no-duplication still hold
    for them. *)
