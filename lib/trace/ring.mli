(** A single domain's SPSC flight-recorder ring.

    Only the owning domain calls {!write}; readers ({!snapshot}) may run
    concurrently and rely on the cursor's release publish: every record
    older than the observed cursor and not yet overwritten is fully
    written.  While the writer is live the {e oldest} retained slots can
    be torn (overwritten mid-read); post-mortem reads are exact. *)

type t = {
  dom : int;
  mask : int;
  buf : int array;
  cursor : int Atomic.t;
  mutable span : int;
  mutable next_span : int;
  mutable tick : int;
}
(** Exposed concretely so the recorder's hot path can touch the sampling
    scratch fields ([span]/[next_span]/[tick]) without a call. *)

type record = { tag : int; ts : int; span : int; arg : int }

val create : dom:int -> bits:int -> t
(** [2 lsl bits] ... a ring of [2^bits] records.  Raises
    [Invalid_argument] outside 2..24. *)

val dom : t -> int
val capacity : t -> int

val written : t -> int
(** Records ever written (not capped by capacity). *)

val write : t -> tag:int -> ts:int -> span:int -> arg:int -> unit
(** Owner only: plain stores + one release publish of the cursor. *)

val snapshot : ?last:int -> t -> record array
(** The retained records, oldest first, optionally truncated to the last
    [last]. *)
