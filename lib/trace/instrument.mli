(** Attaching a {!Recorder} to queues: shallow operation spans over the
    unified [CONC] interface, and deep rebuilds of the evequoz queues with
    the recorder's probe threaded through their functor seams. *)

module type TRACER = sig
  val tracer : Recorder.t
end

module Wrap (_ : TRACER) (Q : Nbq_core.Queue_intf.CONC) :
  Nbq_core.Queue_intf.CONC with type 'a t = 'a Q.t
(** Operation spans (sampled by the recorder) around every public
    operation; batch spans carry attempted size and items moved. *)

val conc :
  Recorder.t -> (module Nbq_core.Queue_intf.CONC) ->
  (module Nbq_core.Queue_intf.CONC)
(** First-class {!Wrap}. *)

val probe :
  ?metrics:Nbq_obs.Metrics.t -> Recorder.t ->
  (module Nbq_primitives.Probe.S)
(** The probe to thread into an algorithm under tracing: the recorder's
    hooks, composed to the right of [Metrics.probe m] when [metrics] is
    given, so counters keep ticking outside sampled spans. *)

val deep :
  ?metrics:Nbq_obs.Metrics.t -> Recorder.t -> name:string ->
  (module Nbq_core.Queue_intf.CONC) -> (module Nbq_core.Queue_intf.CONC)
(** ["evequoz-cas"] / ["evequoz-bw"] / ["evequoz-llsc"] are rebuilt with the composed probe
    inside the algorithm (mirroring [Instrumented.deep]); other names get
    {!conc} over the given fallback, plus the shallow metrics wrapper when
    [metrics] is given. *)
