(** The flight recorder: per-domain SPSC rings behind one armed flag.

    Always compiled, off by default.  Disarmed, every hook is a single
    atomic flag read; armed, operation spans are sampled 1-in-[sample] and
    the deep probe events record only inside a sampled span, keeping armed
    overhead under the bin/check.sh gate.  [~sample:1] ("full" mode)
    records every operation and every event — the torture/exploration
    setting, where the dump matters and throughput does not. *)

type t

val create : ?ring_bits:int -> ?sample:int -> unit -> t
(** [ring_bits] (default 12) sizes each per-domain ring at [2^ring_bits]
    records.  [sample] (default 64, rounded up to a power of two) is the
    span sampling period; [<= 1] selects full mode. *)

val arm : t -> unit
(** Start recording.  Resets span/sampling state on the existing rings —
    call between operations, not while domains are mid-operation. *)

val disarm : t -> unit
val armed : t -> bool

val full : t -> bool
(** [sample <= 1]: every operation spanned, every event recorded.  The
    instrument layer keys on this: deep in-algorithm probe events are
    attached only in full mode (torture/exploration), so the sampled
    armed mode — the one the overhead gate measures — pays per-hook cost
    nowhere and per-op cost once. *)

val epoch_ns : t -> int
(** Monotonic-ns origin; record timestamps are relative to this. *)

val rings : t -> Ring.t list
(** All rings born so far, sorted by domain id. *)

val my_ring : t -> Ring.t
(** The calling domain's ring (created on first use). *)

(** {2 Recording} — each is a no-op unless {!armed} *)

val event : t -> Nbq_obs.Event.t -> unit
(** Deep probe event; recorded only in full mode or inside the calling
    domain's active sampled span. *)

val fault : t -> Nbq_primitives.Fault.point -> unit
(** Fault-window hit; never sampled away. *)

val span_begin : t -> Record.op -> arg:int -> unit
(** Open this domain's operation span (subject to sampling); [arg] is the
    operand word (batch size, or 0). *)

val span_end : t -> Record.op -> arg:int -> unit
(** Close the open span, if any; [arg] carries the result (1 = success /
    items moved, 0 = full/empty). Runs even if disarmed mid-operation. *)

val sample_mask : t -> int
(** [sample - 1]; wrappers keep their own (racy, shared — lost updates
    only perturb the rate) tick and call {!span_open} when
    [tick land sample_mask = 0], so a non-sampled operation — armed or
    not — costs one plain increment and a mask test; even the armed
    read hides behind the sampled branch. *)

val span_open : t -> Record.op -> arg:int -> Ring.t option
(** Unconditionally open a span on the calling domain's ring ([None] iff
    disarmed) and hand the ring back so {!span_close} needs no second
    lookup.  Callers do the sampling (see {!sample_mask}). *)

val span_close : t -> Ring.t -> Record.op -> arg:int -> unit
(** Close the span opened by a [Some]-returning {!span_open} on the same
    domain. *)

(** {2 Hook adapters} *)

val probe : t -> (module Nbq_primitives.Probe.S)
(** All 12 probe hooks routed to {!event}; compose with a metrics probe
    via [Probe.compose] to keep counters and trace from one seam. *)

val fault_hook : t -> (module Nbq_primitives.Fault.S)
(** Routes [hit] to {!fault}; compose LEFT of an injector so the window
    entry is recorded before the stall/crash fires. *)
