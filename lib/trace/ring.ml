(* One domain's flight-recorder ring: a flat int buffer of
   [capacity * Record.words] words plus a padded cursor counting records
   ever written.

   SPSC by construction — only the owning domain writes.  A write is
   Record.words plain stores into the slot followed by one [Atomic.set] of
   the cursor: the release publish.  A reader that observes cursor = c is
   therefore guaranteed fully-written records for every seq < c that has
   not yet been overwritten; only the oldest slots can be torn, and only
   while the writer is still running (post-mortem dumps and quiescent
   exports are exact).

   The mutable span/tick/next_span fields are scratch state for the
   recorder's sampling and span tracking; they are touched only by the
   owning domain. *)

type t = {
  dom : int;  (* Domain.self of the owner, the export track id *)
  mask : int;
  buf : int array;
  cursor : int Atomic.t;  (* padded: the wake-side reader polls it *)
  mutable span : int;      (* active sampled span id; 0 = none *)
  mutable next_span : int;
  mutable tick : int;      (* operation counter driving span sampling *)
}

type record = { tag : int; ts : int; span : int; arg : int }

let create ~dom ~bits =
  if bits < 2 || bits > 24 then invalid_arg "Ring.create: bits outside 2..24";
  let n = 1 lsl bits in
  {
    dom;
    mask = n - 1;
    buf = Array.make (n * Record.words) 0;
    cursor = Nbq_obs.Padding.atomic 0;
    span = 0;
    next_span = 1;
    tick = 0;
  }

let dom t = t.dom
let capacity t = t.mask + 1
let written t = Atomic.get t.cursor

let write t ~tag ~ts ~span ~arg =
  let seq = Atomic.get t.cursor in
  let base = (seq land t.mask) * Record.words in
  Array.unsafe_set t.buf base tag;
  Array.unsafe_set t.buf (base + 1) ts;
  Array.unsafe_set t.buf (base + 2) span;
  Array.unsafe_set t.buf (base + 3) arg;
  Atomic.set t.cursor (seq + 1)

(* Oldest-to-newest view of the (at most) last [last] retained records. *)
let snapshot ?last t =
  let c = Atomic.get t.cursor in
  let n = min c (t.mask + 1) in
  let n = match last with Some k -> min n (max 0 k) | None -> n in
  Array.init n (fun i ->
      let seq = c - n + i in
      let base = (seq land t.mask) * Record.words in
      {
        tag = t.buf.(base);
        ts = t.buf.(base + 1);
        span = t.buf.(base + 2);
        arg = t.buf.(base + 3);
      })
