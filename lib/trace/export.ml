(* Turning flight-recorder rings into things a human can open.

   Three surfaces:
   - Chrome trace-event JSON (Perfetto / chrome://tracing loadable): one
     track per domain (tid = domain id, pid = 0), sampled operation spans
     as "X" complete events, probe/fault records as "i" instants.
   - A merged text timeline, for terminals and test assertions.
   - [dump]: the per-domain last-N listing printed next to a torture
     failure's NBQ-FAULT-REPRO line. *)

module Sink = Nbq_obs.Sink

type entry = { dom : int; r : Ring.record }

let entries ?last t =
  Recorder.rings t
  |> List.concat_map (fun ring ->
         Ring.snapshot ?last ring
         |> Array.to_list
         |> List.map (fun r -> { dom = Ring.dom ring; r }))

(* --- Chrome trace-event JSON --------------------------------------------- *)

let us_of_ns ns = float_of_int ns /. 1000.

let base_fields ~name ~cat ~ph ~ts ~dom =
  [
    ("name", Sink.String name);
    ("cat", Sink.String cat);
    ("ph", Sink.String ph);
    ("ts", Sink.Float (us_of_ns ts));
    ("pid", Sink.Int 0);
    ("tid", Sink.Int dom);
  ]

let instant ~name ~cat ~ts ~dom ~span =
  Sink.Obj
    (base_fields ~name ~cat ~ph:"i" ~ts ~dom
    @ [ ("s", Sink.String "t"); ("args", Sink.Obj [ ("span", Sink.Int span) ]) ]
    )

let complete ~name ~ts ~dur ~dom ~span ~arg ~result =
  Sink.Obj
    (base_fields ~name ~cat:"op" ~ph:"X" ~ts ~dom
    @ [
        ("dur", Sink.Float (us_of_ns (max 0 dur)));
        ( "args",
          Sink.Obj
            [
              ("span", Sink.Int span);
              ("arg", Sink.Int arg);
              ("result", Sink.Int result);
            ] );
      ])

let thread_meta ~dom =
  Sink.Obj
    [
      ("name", Sink.String "thread_name");
      ("ph", Sink.String "M");
      ("pid", Sink.Int 0);
      ("tid", Sink.Int dom);
      ("args", Sink.Obj [ ("name", Sink.String (Printf.sprintf "domain %d" dom)) ]);
    ]

(* One ring's records, span begins paired with their ends by span id into
   "X" complete events.  An unpaired begin (ring wrapped, or the run
   stopped mid-operation) degrades to an instant, never a parse error. *)
let ring_events ring =
  let dom = Ring.dom ring in
  let open_spans : (int, int * Record.op * int) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  let emit e = out := e :: !out in
  Array.iter
    (fun ({ Ring.tag; ts; span; arg } : Ring.record) ->
      match Record.kind_of_tag tag with
      | None -> () (* torn oldest slot of a live writer: drop *)
      | Some (Record.Span_begin op) -> Hashtbl.replace open_spans span (ts, op, arg)
      | Some (Record.Span_end op) -> (
        match Hashtbl.find_opt open_spans span with
        | Some (ts0, op0, arg0) when op0 = op ->
          Hashtbl.remove open_spans span;
          emit
            (complete ~name:(Record.op_name op) ~ts:ts0 ~dur:(ts - ts0) ~dom
               ~span ~arg:arg0 ~result:arg)
        | _ ->
          emit
            (instant
               ~name:(Record.kind_name (Record.Span_end op))
               ~cat:"op" ~ts ~dom ~span))
      | Some kind ->
        emit
          (instant ~name:(Record.kind_name kind) ~cat:(Record.category kind)
             ~ts ~dom ~span))
    (Ring.snapshot ring);
  (* Begins whose end fell outside the ring render as zero-length marks. *)
  Hashtbl.iter
    (fun span (ts, op, _arg) ->
      emit
        (instant
           ~name:(Record.kind_name (Record.Span_begin op))
           ~cat:"op" ~ts ~dom ~span))
    open_spans;
  List.rev !out

let chrome_json ?(process_name = "nbq") t =
  let rings = Recorder.rings t in
  let process_meta =
    Sink.Obj
      [
        ("name", Sink.String "process_name");
        ("ph", Sink.String "M");
        ("pid", Sink.Int 0);
        ("args", Sink.Obj [ ("name", Sink.String process_name) ]);
      ]
  in
  let metas = List.map (fun ring -> thread_meta ~dom:(Ring.dom ring)) rings in
  let events = List.concat_map ring_events rings in
  Sink.Obj
    [
      ("displayTimeUnit", Sink.String "ns");
      ("traceEvents", Sink.List ((process_meta :: metas) @ events));
    ]

let write_chrome ?process_name ~path t =
  (match Filename.dirname path with
  | "" | "." -> ()
  | dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755);
  let oc = open_out path in
  output_string oc (Sink.json_to_string (chrome_json ?process_name t));
  output_char oc '\n';
  close_out oc

(* --- Validation (check.sh smoke, tests) ---------------------------------- *)

type chrome_stats = { tracks : int; spans : int; instants : int }

let field_string name j =
  match Sink.member name j with Some (Sink.String s) -> Some s | _ -> None

let validate_chrome_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Sink.parse text with
  | Error e -> Error (Printf.sprintf "%s: JSON parse failed: %s" path e)
  | Ok j -> (
    match (Sink.member "displayTimeUnit" j, Sink.member "traceEvents" j) with
    | Some (Sink.String "ns"), Some (Sink.List evs) ->
      let tracks = Hashtbl.create 8 in
      let spans = ref 0 and instants = ref 0 in
      let bad = ref None in
      List.iteri
        (fun i ev ->
          match field_string "ph" ev with
          | Some "M" ->
            if field_string "name" ev = Some "thread_name" then
              (match Sink.member "tid" ev with
              | Some (Sink.Int tid) -> Hashtbl.replace tracks tid ()
              | _ -> if !bad = None then bad := Some (i, "M without int tid"))
          | Some "X" ->
            incr spans;
            if Sink.member "dur" ev = None && !bad = None then
              bad := Some (i, "X without dur")
          | Some "i" -> incr instants
          | Some ph ->
            if !bad = None then bad := Some (i, "unknown ph " ^ ph)
          | None -> if !bad = None then bad := Some (i, "event without ph"))
        evs;
      (match !bad with
      | Some (i, why) -> Error (Printf.sprintf "%s: event %d: %s" path i why)
      | None ->
        Ok { tracks = Hashtbl.length tracks; spans = !spans; instants = !instants })
    | _ -> Error (path ^ ": missing displayTimeUnit/traceEvents"))

(* --- Text surfaces ------------------------------------------------------- *)

let pp_record ?(time_unit = "ns") buf dom
    ({ Ring.tag; ts; span; arg } : Ring.record) =
  let name =
    match Record.kind_of_tag tag with
    | Some k -> Record.kind_name k
    | None -> Printf.sprintf "?tag=%#x" tag
  in
  Buffer.add_string buf
    (Printf.sprintf "%12d %-4sdom %-3d span %-6d %-22s arg=%d\n" ts time_unit
       dom span name arg)

(* The merged timeline over explicit (domain, record) pairs — shared by
   the recorder-backed [timeline] below and the model checker's
   interleaving dumps, where "domain" is a simulated task index and [ts]
   is a schedule step number rather than nanoseconds. *)
let timeline_of ?time_unit pairs =
  let pairs =
    List.stable_sort (fun (_, a) (_, b) -> compare a.Ring.ts b.Ring.ts) pairs
  in
  let buf = Buffer.create 1024 in
  List.iter (fun (dom, r) -> pp_record ?time_unit buf dom r) pairs;
  Buffer.contents buf

let timeline ?last t =
  let es = entries ?last t in
  timeline_of (List.map (fun { dom; r } -> (dom, r)) es)

(* The post-mortem surface: last [last] records of each domain's ring,
   grouped per domain, oldest first — printed by torture next to the
   NBQ-FAULT-REPRO line so a failure report carries the schedule that
   produced it. *)
let dump ?(last = 64) t oc =
  List.iter
    (fun ring ->
      let recs = Ring.snapshot ~last ring in
      Printf.fprintf oc
        "--- trace: domain %d (last %d of %d records) ---\n" (Ring.dom ring)
        (Array.length recs) (Ring.written ring);
      let buf = Buffer.create 256 in
      Array.iter (pp_record buf (Ring.dom ring)) recs;
      output_string oc (Buffer.contents buf))
    (Recorder.rings t);
  flush oc
