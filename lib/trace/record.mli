(** Flight-recorder record layout: {!words} ints per record, every field an
    immediate, so ring writers can use plain stores (see [Ring]). *)

val words : int
(** Ints per record (4): tag, ts, span, arg. *)

type op = Enq | Deq | Enq_batch | Deq_batch

type kind =
  | Obs of Nbq_obs.Event.t
  | Fault_hit of Nbq_primitives.Fault.point
  | Span_begin of op
  | Span_end of op

val op_name : op -> string

val obs_tag : Nbq_obs.Event.t -> int
val fault_tag : Nbq_primitives.Fault.point -> int
val span_begin_tag : op -> int
val span_end_tag : op -> int

val kind_of_tag : int -> kind option
(** Inverse of the [*_tag] encoders; [None] on a torn/garbage word. *)

val kind_name : kind -> string
(** Stable display name, e.g. ["sc_fail"], ["slot-swap"],
    ["enqueue:begin"]. *)

val category : kind -> string
(** Perfetto category: ["op"] for spans, ["obs"] for probe events,
    ["fault"] for injection-window hits. *)
