(* The process-wide flight recorder: one SPSC {!Ring} per domain, created
   lazily through DLS the first time a domain records, plus a single armed
   flag every hook checks first.

   Cost model.  Disarmed, every hook is one [Atomic.get] on a cache-stable
   flag and a conditional — the "always compiled, off by default" promise.
   Armed, the recorder samples operation *spans* (1 in [sample]); the deep
   probe events only record while their domain is inside a sampled span, so
   the armed steady-state cost stays a small fraction of an operation (the
   bin/trace_overhead gate holds it under 10%).  Torture and schedule
   exploration arm with [sample:1] ("full" mode) where fidelity matters and
   throughput does not. *)

module Clock = Nbq_obs.Clock

type t = {
  armed : bool Atomic.t;
  full : bool;            (* sample <= 1: record everything, span every op *)
  sample_mask : int;      (* pow2 - 1; op spans sampled when tick matches *)
  ring_bits : int;
  epoch : int;            (* ns origin, so record timestamps stay small *)
  rings : Ring.t list Atomic.t;
  dls : Ring.t Domain.DLS.key;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(ring_bits = 12) ?(sample = 64) () =
  if ring_bits < 2 || ring_bits > 24 then
    invalid_arg "Recorder.create: ring_bits outside 2..24";
  let sample = next_pow2 (max 1 sample) in
  (* The rings list exists before the DLS key so the init closure can
     publish each new ring as it is born (the key cannot capture itself). *)
  let rings = Atomic.make [] in
  let dls =
    Domain.DLS.new_key (fun () ->
        let r = Ring.create ~dom:(Domain.self () :> int) ~bits:ring_bits in
        let rec push () =
          let cur = Atomic.get rings in
          if not (Atomic.compare_and_set rings cur (r :: cur)) then push ()
        in
        push ();
        r)
  in
  {
    armed = Atomic.make false;
    full = sample <= 1;
    sample_mask = sample - 1;
    ring_bits;
    epoch = Clock.now_ns ();
    rings;
    dls;
  }

let armed t = Atomic.get t.armed
let epoch_ns t = t.epoch

let rings t =
  List.sort (fun a b -> compare (Ring.dom a) (Ring.dom b)) (Atomic.get t.rings)

let my_ring t = Domain.DLS.get t.dls

(* Arming resets span state so a span id from a previous armed window can
   never pair with a fresh end record.  Only disarm/arm between operations
   (the harness does): a domain mid-operation while spans reset could write
   an end whose begin was discarded — harmless for export (unpaired ends
   render as instants) but noisy. *)
let arm t =
  List.iter
    (fun (r : Ring.t) ->
      r.Ring.span <- 0;
      r.Ring.tick <- 0)
    (Atomic.get t.rings);
  Atomic.set t.armed true

let disarm t = Atomic.set t.armed false

let[@inline] now t = Clock.now_ns () - t.epoch

(* Deep events: recorded only in full mode or inside this domain's active
   sampled span, so the armed fast path outside a span is flag + DLS get +
   one int compare. *)
let event t ev =
  if Atomic.get t.armed then begin
    let r = Domain.DLS.get t.dls in
    if t.full || r.Ring.span <> 0 then
      Ring.write r ~tag:(Record.obs_tag ev) ~ts:(now t) ~span:r.Ring.span
        ~arg:0
  end

(* Fault-window hits are never sampled away: they are the records a
   post-mortem dump exists for, and injection runs are not throughput
   runs. *)
let fault t p =
  if Atomic.get t.armed then begin
    let r = Domain.DLS.get t.dls in
    Ring.write r ~tag:(Record.fault_tag p) ~ts:(now t) ~span:r.Ring.span
      ~arg:0
  end

let span_begin t op ~arg =
  if Atomic.get t.armed then begin
    let r = Domain.DLS.get t.dls in
    let n = r.Ring.tick + 1 in
    r.Ring.tick <- n;
    if t.full || n land t.sample_mask = 0 then begin
      let s = r.Ring.next_span in
      r.Ring.next_span <- s + 1;
      r.Ring.span <- s;
      Ring.write r ~tag:(Record.span_begin_tag op) ~ts:(now t) ~span:s ~arg
    end
    else r.Ring.span <- 0
  end

(* Close whatever span is open even if the recorder was disarmed mid-
   operation; an extra end record is cheaper than a span that never
   terminates. *)
let span_end t op ~arg =
  let r = Domain.DLS.get t.dls in
  if r.Ring.span <> 0 then begin
    Ring.write r ~tag:(Record.span_end_tag op) ~ts:(now t) ~span:r.Ring.span
      ~arg;
    r.Ring.span <- 0
  end

(* The shape the hot wrappers use.  The wrapper keeps the sampling tick
   itself (a plain shared ref, like the metrics layer's: lost updates
   only perturb the rate) and checks it before anything else, so a
   non-sampled operation — armed or not — costs one tick store and a
   mask test: no flag, no DLS, no clock.  Only a sampled operation
   reaches [span_open], which checks the armed flag, unconditionally
   opens a span on the caller's ring and hands it back so the close side
   needs no second lookup. *)
let span_open t op ~arg =
  if not (Atomic.get t.armed) then None
  else begin
    let r = Domain.DLS.get t.dls in
    let s = r.Ring.next_span in
    r.Ring.next_span <- s + 1;
    r.Ring.span <- s;
    Ring.write r ~tag:(Record.span_begin_tag op) ~ts:(now t) ~span:s ~arg;
    Some r
  end

let span_close t (r : Ring.t) op ~arg =
  Ring.write r ~tag:(Record.span_end_tag op) ~ts:(now t) ~span:r.Ring.span
    ~arg;
  r.Ring.span <- 0

let full t = t.full
let sample_mask t = t.sample_mask

module Event = Nbq_obs.Event

let probe (t : t) : (module Nbq_primitives.Probe.S) =
  (module struct
    let ll_reserve () = event t Event.Ll_reserve
    let sc_fail () = event t Event.Sc_fail
    let tail_help () = event t Event.Tail_help
    let head_help () = event t Event.Head_help
    let tag_register () = event t Event.Tag_register
    let tag_reregister () = event t Event.Tag_reregister
    let tag_deregister () = event t Event.Tag_deregister
    let tag_recycle () = event t Event.Tag_recycle
    let shard_steal () = event t Event.Shard_steal
    let wait_park () = event t Event.Wait_park
    let wait_wake () = event t Event.Wait_wake
    let wait_cancel () = event t Event.Wait_cancel
  end)

let fault_hook (t : t) : (module Nbq_primitives.Fault.S) =
  (module struct
    let hit p = fault t p
  end)
