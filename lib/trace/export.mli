(** Exporters over a {!Recorder}: Chrome trace-event JSON (Perfetto /
    chrome://tracing loadable), a merged text timeline, and the per-domain
    post-mortem dump printed on torture failures. *)

val chrome_json : ?process_name:string -> Recorder.t -> Nbq_obs.Sink.json
(** [{displayTimeUnit: "ns", traceEvents: [...]}] with one track per
    domain (tid = domain id, pid = 0): thread_name metadata per track,
    sampled operation spans as "X" complete events (begin/end paired by
    span id; unpaired records degrade to instants), probe and fault
    records as "i" instants. *)

val write_chrome : ?process_name:string -> path:string -> Recorder.t -> unit
(** {!chrome_json} serialized to [path] (parent dir created, one level). *)

type chrome_stats = { tracks : int; spans : int; instants : int }

val validate_chrome_file : string -> (chrome_stats, string) result
(** Parse a written trace back and check the Chrome trace-event shape:
    top-level keys, every event carries a known [ph], "X" events carry
    [dur], thread metadata carries an int [tid].  Used by the check.sh
    smoke gate and tests. *)

val timeline : ?last:int -> Recorder.t -> string
(** All domains' records merged and sorted by timestamp, one line each. *)

val timeline_of : ?time_unit:string -> (int * Ring.record) list -> string
(** The same merged-timeline rendering over explicit (domain, record)
    pairs.  Reused by the model checker's counterexample dumps, where the
    "domain" is a simulated task index and [ts] a schedule step number
    ([~time_unit:"st"]). *)

val dump : ?last:int -> Recorder.t -> out_channel -> unit
(** Last [last] (default 64) records of each domain's ring, grouped per
    domain, oldest first — the flight-recorder dump torture prints next to
    its NBQ-FAULT-REPRO line. *)
