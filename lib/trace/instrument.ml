(* Attaching the recorder to a queue.

   [Wrap] is the shallow layer: operation spans around the public queue
   interface (sampled inside the recorder).  [deep] rebuilds the evequoz
   queues with the recorder's probe threaded through their functor seams —
   composed LEFT-of-nothing with a metrics probe when one is given, so a
   single run can feed both the counter hub and the flight recorder from
   the same hooks. *)

module Queue_intf = Nbq_core.Queue_intf
module Metrics = Nbq_obs.Metrics
module Probe = Nbq_primitives.Probe

module type TRACER = sig
  val tracer : Recorder.t
end

module Wrap (T : TRACER) (Q : Queue_intf.CONC) :
  Queue_intf.CONC with type 'a t = 'a Q.t = struct
  type 'a t = 'a Q.t

  let name = Q.name
  let caps = Q.caps
  let bounded = Q.bounded
  let create = Q.create
  let tr = T.tracer
  let mask = Recorder.sample_mask tr

  (* Sampling ticks are plain refs shared across domains, exactly like
     the metrics layer's: lost updates merely perturb the sampling rate.
     The tick is checked BEFORE the armed flag, so the common path — any
     non-sampled operation, armed or not — is one ref increment and a
     mask test; the atomic armed read, DLS lookup, clock reads and ring
     stores all hide behind the 1-in-[sample] branch. *)
  let enq_tick = ref 0
  let deq_tick = ref 0

  let try_enqueue t x =
    let n = !enq_tick + 1 in
    enq_tick := n;
    if n land mask <> 0 then Q.try_enqueue t x
    else
      match Recorder.span_open tr Record.Enq ~arg:0 with
      | None -> Q.try_enqueue t x
      | Some r ->
        let ok = Q.try_enqueue t x in
        Recorder.span_close tr r Record.Enq ~arg:(Bool.to_int ok);
        ok

  let try_dequeue t =
    let n = !deq_tick + 1 in
    deq_tick := n;
    if n land mask <> 0 then Q.try_dequeue t
    else
      match Recorder.span_open tr Record.Deq ~arg:0 with
      | None -> Q.try_dequeue t
      | Some r ->
        let x = Q.try_dequeue t in
        Recorder.span_close tr r Record.Deq ~arg:(Bool.to_int (x <> None));
        x

  (* Batch spans carry the attempted size in [arg] and items moved in the
     end record's result word. *)
  let try_enqueue_batch t items =
    let n = !enq_tick + 1 in
    enq_tick := n;
    if n land mask <> 0 then Q.try_enqueue_batch t items
    else
      match
        Recorder.span_open tr Record.Enq_batch ~arg:(Array.length items)
      with
      | None -> Q.try_enqueue_batch t items
      | Some r ->
        let accepted = Q.try_enqueue_batch t items in
        Recorder.span_close tr r Record.Enq_batch ~arg:accepted;
        accepted

  let try_dequeue_batch t k =
    let n = !deq_tick + 1 in
    deq_tick := n;
    if n land mask <> 0 then Q.try_dequeue_batch t k
    else
      match Recorder.span_open tr Record.Deq_batch ~arg:k with
      | None -> Q.try_dequeue_batch t k
      | Some r ->
        let got = Q.try_dequeue_batch t k in
        Recorder.span_close tr r Record.Deq_batch ~arg:(List.length got);
        got

  let length = Q.length
end

let conc (tr : Recorder.t) (module Q : Queue_intf.CONC) :
    (module Queue_intf.CONC) =
  (module Wrap
            (struct
              let tracer = tr
            end)
            (Q))

(* The probe an algorithm functor should receive under tracing.  Deep
   in-algorithm events are a full-mode feature: in sampled mode every
   probe hook would pay an armed-check + DLS access on the hottest paths
   of the algorithm (several hooks per operation), which alone blows the
   <=10% armed-overhead budget — so sampled tracing records operation
   spans only, and the probe reduces to the metrics hooks (or nothing).
   Full mode composes the trace hooks to the right of the metrics probe:
   counters tick and events record from the same seams. *)
let probe ?metrics (tr : Recorder.t) : (module Probe.S) =
  match (Recorder.full tr, metrics) with
  | false, None -> (module Probe.Noop)
  | false, Some m -> Metrics.probe m
  | true, None -> Recorder.probe tr
  | true, Some m -> Probe.compose (Metrics.probe m) (Recorder.probe tr)

let with_metrics ?metrics q =
  match metrics with
  | None -> q
  | Some m -> Nbq_obs.Instrumented.instrument m q

(* Deep tracing mirrors [Instrumented.deep]: in full mode the two evequoz
   queues are rebuilt with the composed probe inside their functor seams;
   everything else — and every queue in sampled mode, where the deep
   hooks are disabled (see [probe]) — gets the shallow span wrapper over
   [fallback], keeping the statically-inlined Noop probes of the original
   build on the algorithm's hot paths. *)
let deep ?metrics (tr : Recorder.t) ~name (fallback : (module Queue_intf.CONC))
    : (module Queue_intf.CONC) =
  if not (Recorder.full tr) then
    match metrics with
    | Some m -> conc tr (Nbq_obs.Instrumented.deep m ~name fallback)
    | None -> conc tr fallback
  else
  match name with
  | "evequoz-cas" ->
    let module P = (val probe ?metrics tr) in
    let module Core =
      Nbq_core.Evequoz_cas.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
    in
    let module Q = Nbq_core.Evequoz_cas.With_implicit_handles (Core) in
    let module C = Queue_intf.Make (Queue_intf.Capability.Bounded_batch (Q)) in
    conc tr (with_metrics ?metrics (module C : Queue_intf.CONC))
  | "evequoz-bw" ->
    let module P = (val probe ?metrics tr) in
    let module Core =
      Nbq_core.Evequoz_bw.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
    in
    let module Q = struct
      include Nbq_core.Evequoz_cas.With_implicit_handles (Core)

      let name = "evequoz-bw"
    end in
    let module C = Queue_intf.Make (Queue_intf.Capability.Bounded_batch (Q)) in
    conc tr (with_metrics ?metrics (module C : Queue_intf.CONC))
  | "evequoz-llsc" ->
    let module P = (val probe ?metrics tr) in
    let module Cell =
      Nbq_primitives.Llsc.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
    in
    let module Q = Nbq_core.Evequoz_llsc.Make_probed (Cell) (P) in
    let module C = Queue_intf.Make (Queue_intf.Capability.Bounded (Q)) in
    conc tr (with_metrics ?metrics (module C : Queue_intf.CONC))
  | _ -> conc tr (with_metrics ?metrics fallback)
