(* Fixed-size flight-recorder records.  One record is {!words} consecutive
   ints in a ring's flat buffer:

     word 0  tag      — (kind lsl 8) lor code, see below
     word 1  ts       — monotonic ns relative to the recorder's epoch
     word 2  span     — per-domain operation span id (0 = outside any span)
     word 3  arg      — operand word (result bit, batch size, 0)

   Keeping every field an immediate int is what lets the writer use plain
   stores: the GC never scans a live pointer out of a half-written slot. *)

module Event = Nbq_obs.Event
module Fault = Nbq_primitives.Fault

let words = 4

type op = Enq | Deq | Enq_batch | Deq_batch

type kind =
  | Obs of Event.t        (** a probe event from inside an algorithm *)
  | Fault_hit of Fault.point  (** execution entered an injection window *)
  | Span_begin of op      (** a sampled queue operation started *)
  | Span_end of op        (** ... and finished; [arg] carries the result *)

let op_index = function Enq -> 0 | Deq -> 1 | Enq_batch -> 2 | Deq_batch -> 3

let op_of_index = function
  | 0 -> Some Enq
  | 1 -> Some Deq
  | 2 -> Some Enq_batch
  | 3 -> Some Deq_batch
  | _ -> None

let op_name = function
  | Enq -> "enqueue"
  | Deq -> "dequeue"
  | Enq_batch -> "enqueue_batch"
  | Deq_batch -> "dequeue_batch"

let events = Array.of_list Event.all
let fault_points = Array.of_list Fault.all

let fault_index p =
  let rec go i = function
    | [] -> invalid_arg "Record.fault_index"
    | q :: tl -> if q = p then i else go (i + 1) tl
  in
  go 0 Fault.all

let obs_tag ev = Event.index ev
let fault_tag p = (1 lsl 8) lor fault_index p
let span_begin_tag o = (2 lsl 8) lor op_index o
let span_end_tag o = (3 lsl 8) lor op_index o

let kind_of_tag tag =
  let code = tag land 0xff in
  match tag lsr 8 with
  | 0 -> if code < Array.length events then Some (Obs events.(code)) else None
  | 1 ->
      if code < Array.length fault_points then
        Some (Fault_hit fault_points.(code))
      else None
  | 2 -> Option.map (fun o -> Span_begin o) (op_of_index code)
  | 3 -> Option.map (fun o -> Span_end o) (op_of_index code)
  | _ -> None

let kind_name = function
  | Obs ev -> Event.to_string ev
  | Fault_hit p -> Fault.to_string p
  | Span_begin o -> op_name o ^ ":begin"
  | Span_end o -> op_name o ^ ":end"

(* Perfetto category: spans get their own track phase; the rest render as
   instant markers on the domain's track. *)
let category = function
  | Obs _ -> "obs"
  | Fault_hit _ -> "fault"
  | Span_begin _ | Span_end _ -> "op"
