(* Hazard pointers over the ATOMIC seam.

   [Hazard_pointer] is tied to the real runtime: its records live in
   [Domain.DLS] and its slots are real [Atomic.t]s, so it cannot run
   under the model checker's cooperative scheduler (DLS is shared by
   every simulated thread, and real atomics are invisible to DPOR's
   dependency analysis).  This module is the same single-hazard protocol
   functorized over [Atomic_intf.ATOMIC] with records handed out
   explicitly — the caller owns the acquire/release lifecycle instead of
   a thread-local cache — which is exactly the shape the segmented
   queue's per-thread handles need: instantiate with [Atomic_intf.Real]
   in production and with [Sim.Atomic] under the model checker, where
   every protect/validate/scan step becomes a scheduling point.

   Membership is physical ([memq]): the protected values are mutable
   structures (ring segments) for which structural comparison is both
   meaningless and unsafe. *)

module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) = struct
  type 'a record = {
    hazard : 'a option A.t;
    active : bool A.t;
    (* Private to the owning thread: *)
    mutable retired : 'a list;
    mutable retired_len : int;
    (* Registry chain; write-once before publication. *)
    mutable next : 'a record option;
  }

  type 'a t = {
    head : 'a record option A.t;
    threshold : int;
    free : 'a -> unit;
    scans : int A.t;
    freed : int A.t;
    retired_total : int A.t;
  }

  let create ?(threshold = 2) ~free () =
    {
      head = A.make None;
      threshold = max 1 threshold;
      free;
      scans = A.make 0;
      freed = A.make 0;
      retired_total = A.make 0;
    }

  let rec find_inactive = function
    | None -> None
    | Some r ->
        if (not (A.get r.active)) && A.compare_and_set r.active false true
        then Some r
        else find_inactive r.next

  let acquire t =
    match find_inactive (A.get t.head) with
    | Some r -> r
    | None ->
        let r =
          {
            hazard = A.make None;
            active = A.make true;
            retired = [];
            retired_len = 0;
            next = None;
          }
        in
        let rec push () =
          let cur = A.get t.head in
          r.next <- cur;
          if not (A.compare_and_set t.head cur (Some r)) then push ()
        in
        push ();
        r

  let protect r x = A.set r.hazard (Some x)
  let clear r = A.set r.hazard None

  (* Only the owning thread writes [r.hazard], so a positive answer means
     the slot has held [x] continuously since the owner last published
     it — the caller's continuous-protection fast path. *)
  let holds r x = match A.get r.hazard with Some y -> y == x | None -> false

  let collect_hazards t =
    let acc = ref [] in
    let rec go = function
      | None -> ()
      | Some r ->
          (match A.get r.hazard with
          | Some x -> acc := x :: !acc
          | None -> ());
          go r.next
    in
    go (A.get t.head);
    !acc

  let protected t x = List.memq x (collect_hazards t)

  let scan t r =
    ignore (A.fetch_and_add t.scans 1);
    let hazards = collect_hazards t in
    let kept = ref [] and kept_len = ref 0 and freed = ref 0 in
    List.iter
      (fun x ->
        if List.memq x hazards then begin
          kept := x :: !kept;
          incr kept_len
        end
        else begin
          t.free x;
          incr freed
        end)
      r.retired;
    r.retired <- !kept;
    r.retired_len <- !kept_len;
    ignore (A.fetch_and_add t.freed !freed)

  let retire t r x =
    r.retired <- x :: r.retired;
    r.retired_len <- r.retired_len + 1;
    ignore (A.fetch_and_add t.retired_total 1);
    if r.retired_len >= t.threshold then scan t r

  (* Releasing a record flushes its retired list first (scanning until it
     can shrink no further), then parks what is still pinned on the
     record for the next owner to inherit — nothing is leaked, nothing
     pinned is freed. *)
  let release t r =
    clear r;
    if r.retired_len > 0 then scan t r;
    A.set r.active false

  let total_scans t = A.get t.scans
  let total_freed t = A.get t.freed
  let total_retired t = A.get t.retired_total

  let pending t =
    let rec go n = function
      | None -> n
      | Some r -> go (n + r.retired_len) r.next
    in
    go 0 (A.get t.head)
end
