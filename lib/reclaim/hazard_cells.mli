(** Hazard pointers functorized over the {!Nbq_primitives.Atomic_intf}
    seam, with explicit record hand-out (no [Domain.DLS]).

    {!Hazard_pointer} protects linked-list nodes for real domains; this
    module protects {e any} physically-identified structure under {e any}
    atomic implementation, which is what the segmented queue needs: the
    same retire/scan protocol must run both in production (real atomics,
    one record per domain handle) and inside the model checker's
    cooperative scheduler (where [Domain.DLS] is shared by all simulated
    threads and real atomics escape DPOR's dependency analysis).

    One hazard slot per record: a thread protects at most one segment at
    a time.  Membership checks are physical equality. *)

module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a record
  (** Per-thread participation: one hazard slot plus a private retired
      list.  Records are recycled through an acquire/release lifecycle
      and never removed from the registry. *)

  type 'a t

  val create : ?threshold:int -> free:('a -> unit) -> unit -> 'a t
  (** [threshold] (default 2, clamped to >= 1) is the retired-list length
      that triggers a scan; [free] receives each value proven
      unprotected. *)

  val acquire : 'a t -> 'a record
  (** Claim an inactive record or link a fresh one. *)

  val release : 'a t -> 'a record -> unit
  (** Clear the hazard, flush the retired list (still-pinned values stay
      parked on the record for the next owner), mark the record
      reusable. *)

  val protect : 'a record -> 'a -> unit
  (** Publish [x] in the record's hazard slot.  The caller must re-read
      the source pointer afterwards and retry if it moved (the standard
      protect/validate handshake). *)

  val clear : 'a record -> unit

  val holds : 'a record -> 'a -> bool
  (** Does the record's hazard slot currently hold [x] (physically)?
      Only the owning thread writes the slot, so a positive answer means
      protection has been continuous since the owner last published [x]
      — letting the owner skip the publish-and-revalidate handshake when
      it re-reads a source pointer that still equals [x]. *)

  val retire : 'a t -> 'a record -> 'a -> unit
  (** Hand [x] to reclamation: freed by a later scan once no record's
      hazard slot holds it. *)

  val scan : 'a t -> 'a record -> unit
  (** Force a scan of [record]'s retired list. *)

  val protected : 'a t -> 'a -> bool
  (** One racy snapshot: is [x] currently published in any hazard slot? *)

  val total_scans : 'a t -> int
  val total_freed : 'a t -> int
  val total_retired : 'a t -> int

  val pending : 'a t -> int
  (** Values retired but not yet freed, summed over all records. *)
end
