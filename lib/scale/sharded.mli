(** A sharded multi-ring front-end: N independent FIFO rings behind one
    queue facade, with per-domain shard affinity and work-stealing
    fallback.

    Scaling rationale (ROADMAP "production-scale" direction): every
    operation on a single Evéquoz ring contends on one [Head]/[Tail]
    counter pair, so throughput flattens past a few domains.  Sharding
    gives each domain a {e home} ring — its domain id modulo the shard
    count — so with [shards >= domains] the common case touches state no
    other domain writes.  Only when the home shard reports full (enqueue)
    or empty (dequeue) does the operation sweep the other shards in
    cyclic order, completing on the first that accepts; each such
    foreign-shard completion counts as one {e steal}
    ({!Nbq_primitives.Probe.S.shard_steal},
    {!Nbq_obs.Event.Shard_steal}).

    {b What is kept and what is relaxed.}  Each shard is FIFO (it is an
    unmodified inner queue), items are conserved, and every operation is
    non-blocking as long as the inner queue is.  {e Global} FIFO order is
    relaxed: two items enqueued to different shards can dequeue in either
    order, and a sweep can report "empty" while another domain's home
    shard momentarily holds items ([false empty]); the facade is
    therefore {e not} linearizable to a single FIFO — see DESIGN.md §8.
    Progress does not depend on steals completing: a thread stalled
    mid-sweep (the {!Nbq_primitives.Fault.Shard_steal} window) holds no
    reservation on any ring.

    Batched operations ([try_enqueue_batch] / [try_dequeue_batch]) move k
    items per call, landing whole batches on the home shard and spilling
    only remainders to foreign shards — amortizing affinity lookups,
    counter traffic and steal sweeps across the batch. *)

(** One shard's operations as closures — the value-level core, usable over
    CONC modules, [Registry] instances, or fault-injected rings alike. *)
type 'a shard_ops = {
  enq : 'a -> bool;
  deq : unit -> 'a option;
  len : unit -> int;
  enq_batch : 'a array -> int;
  deq_batch : int -> 'a list;
}

type 'a t

val ops :
  enq:('a -> bool) ->
  deq:(unit -> 'a option) ->
  len:(unit -> int) ->
  enq_batch:('a array -> int) ->
  deq_batch:(int -> 'a list) ->
  'a shard_ops

val ops_of_singles :
  enq:('a -> bool) ->
  deq:(unit -> 'a option) ->
  len:(unit -> int) ->
  'a shard_ops
(** Build the record from single-item operations; the batch fields loop. *)

val create :
  ?note_steal:(unit -> unit) ->
  ?steal_window:(unit -> unit) ->
  ?home:(unit -> int) ->
  shards:int ->
  (int -> 'a shard_ops) ->
  'a t
(** [create ~shards mk] builds a facade over [mk 0 .. mk (shards-1)].
    Each record is cache-line padded ({!Nbq_obs.Padding}).  [note_steal]
    fires once per foreign-shard completion (after the internal steal
    counter bump); [steal_window] fires after a home-shard failure,
    {e before} the first foreign shard is probed — the
    {!Nbq_primitives.Fault.Shard_steal} window.

    [home] overrides the affinity function (default: calling domain's id
    modulo [shards]; results are clamped into range).  Under the default,
    a paired enqueue-then-dequeue workload never steals — each caller's
    own item sits in its home shard — so tests and adversarial torture
    schedules use [home] (e.g. a round-robin counter) to force traffic
    across shard boundaries and open the steal window on demand.  Raises
    [Invalid_argument] when [shards < 1]. *)

val shard_count : 'a t -> int

val steal_count : 'a t -> int
(** Foreign-shard completions so far (exact when quiescent; sharded
    per-domain counter). *)

val try_enqueue : 'a t -> 'a -> bool
(** Home shard first, then sweep.  [false] means {e every} shard reported
    full at some instant during the sweep (not necessarily the same
    instant). *)

val try_dequeue : 'a t -> 'a option
(** Home shard first, then sweep.  [None] is a {e false-empty}-prone
    verdict: each shard was empty at its own probe instant. *)

val try_dequeue_with_source : 'a t -> (int * 'a) option
(** [try_dequeue] plus the index of the shard that served the item, so
    tests can assert per-shard FIFO order. *)

val try_enqueue_batch : 'a t -> 'a array -> int
(** Items in array order: home shard takes the longest prefix it can, each
    foreign shard the next remainder.  Returns the number accepted.  The
    accepted prefix lands contiguously per shard, so per-producer order is
    preserved {e within} every shard. *)

val try_dequeue_batch : 'a t -> int -> 'a list
(** Up to [k] items: home shard first, remainders swept from foreign
    shards.  The result concatenates per-shard FIFO runs; cross-shard
    order is unspecified. *)

val length : 'a t -> int
(** Sum of per-shard lengths, each read at a different instant — a
    {e non-linearizable} snapshot.  With [d] operations in flight the
    result is within [d] of any linearized length; exact when
    quiescent. *)

val shard_length : 'a t -> int -> int
(** One shard's own (inner-queue) length. *)

(** {2 Functor veneer over any CONC implementation} *)

module type SHARDS = sig
  val shards : int
end

(** Sharded facade as a {!Nbq_core.Queue_intf.CONC} module, with probe and
    fault hooks wired to the sharding layer (the inner queue keeps its own
    hooks, if any).  [name] is [Q.name ^ "-shard" ^ N]; [create ~capacity]
    splits the capacity evenly across shards (rounded up, then to each
    ring's power of two), so aggregate capacity is at least [capacity]. *)
module Make_injected
    (N : SHARDS)
    (P : Nbq_primitives.Probe.S)
    (F : Nbq_primitives.Fault.S)
    (Q : Nbq_core.Queue_intf.CONC) :
  Nbq_core.Queue_intf.CONC with type 'a t = 'a t

module Make_probed
    (N : SHARDS)
    (P : Nbq_primitives.Probe.S)
    (Q : Nbq_core.Queue_intf.CONC) :
  Nbq_core.Queue_intf.CONC with type 'a t = 'a t

module Make (N : SHARDS) (Q : Nbq_core.Queue_intf.CONC) :
  Nbq_core.Queue_intf.CONC with type 'a t = 'a t
(** The plain composition: no probes, no faults.  The result's ['a t] is
    the value-level {!t}, so {!steal_count}, {!try_dequeue_with_source}
    and {!shard_length} work on functor-made queues too. *)

module Evequoz_cas (N : SHARDS) :
  Nbq_core.Queue_intf.CONC with type 'a t = 'a t
(** [Make (N)] over the paper's CAS queue — the default composition. *)

(** {2 Parked blocking over the facade}

    The facade's analogue of [Nbq_core.Queue_intf.Blocking]: eventcounts
    shard like the rings do.  A consumer parks on its {e home} shard's
    "became non-empty" eventcount; a producer's wake {e sweeps} the
    eventcount array in the same cyclic home-first order as the steal
    sweep, stopping at the first delivered wake.  In the
    affinity-respecting common case a wake touches only the home
    eventcount (one atomic load when nobody waits); cross-shard traffic
    finds parked waiters exactly where stealing finds their items.  A
    parked waiter's re-checked condition is the {e full} facade operation
    (home probe plus steal sweep), so a wake on any shard can satisfy an
    item landed on any other; the wait layer's bounded-park backstop
    covers the remaining races, as everywhere else (DESIGN.md §10). *)

type 'a waitable

val waitable :
  ?on_park:(unit -> unit) ->
  ?on_wake:(unit -> unit) ->
  ?on_cancel:(unit -> unit) ->
  ?park_window:(unit -> unit) ->
  ?wake_window:(unit -> unit) ->
  'a t ->
  'a waitable
(** Attach per-shard eventcount pairs to a facade.  The optional hooks are
    passed to every [Nbq_wait.Eventcount.create] (probe and
    fault-injection wiring; see that module).  Operations issued directly
    on the underlying {!t} bypass the wakes — parked peers then rely on
    the backstop, waking within tens of milliseconds rather than
    promptly. *)

val base : 'a waitable -> 'a t
(** The underlying facade (shared, not copied). *)

val enqueue : 'a waitable -> 'a -> unit
(** Spin briefly, then park on the home shard's not-full eventcount until
    some shard accepts; wakes one not-empty waiter (sweeping) on
    success. *)

val dequeue : 'a waitable -> 'a
(** Spin briefly, then park on the home shard's not-empty eventcount until
    some shard yields an item; wakes one not-full waiter on success. *)

val enqueue_until : 'a waitable -> deadline:float -> 'a -> [ `Ok | `Timeout ]
(** {!enqueue} with an absolute [Unix.gettimeofday] deadline (resolution:
    the wait layer's ~1ms tick).  Always makes at least one attempt; never
    parks once the deadline has passed. *)

val dequeue_until : 'a waitable -> deadline:float -> [ `Ok of 'a | `Timeout ]
