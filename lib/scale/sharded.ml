module Queue_intf = Nbq_core.Queue_intf
module Probe = Nbq_primitives.Probe
module Fault = Nbq_primitives.Fault
module Padding = Nbq_obs.Padding
module Sharded_counter = Nbq_obs.Sharded_counter

(* One shard's operations, as closures over whatever backs it (a CONC
   module's queue, a Registry instance, an injected-fault ring).  The
   record is copied through [Padding.copy_padded] at construction so
   adjacent shards' closure blocks never share a cache line. *)
type 'a shard_ops = {
  enq : 'a -> bool;
  deq : unit -> 'a option;
  len : unit -> int;
  enq_batch : 'a array -> int;
  deq_batch : int -> 'a list;
}

type 'a t = {
  shards : 'a shard_ops array;
  home : unit -> int;          (* affinity; result always in [0, shards) *)
  steals : Sharded_counter.t;
  note_steal : unit -> unit;   (* probe hook, fired per foreign-shard success *)
  steal_window : unit -> unit; (* fault hook, fired before the first foreign probe *)
}

let ops ~enq ~deq ~len ~enq_batch ~deq_batch =
  { enq; deq; len; enq_batch; deq_batch }

let ops_of_singles ~enq ~deq ~len =
  {
    enq;
    deq;
    len;
    enq_batch =
      (fun items ->
        let n = Array.length items in
        let i = ref 0 in
        while !i < n && enq (Array.unsafe_get items !i) do incr i done;
        !i);
    deq_batch =
      (fun k ->
        let rec go acc left =
          if left <= 0 then List.rev acc
          else
            match deq () with
            | Some x -> go (x :: acc) (left - 1)
            | None -> List.rev acc
        in
        go [] k);
  }

let create ?(note_steal = fun () -> ()) ?(steal_window = fun () -> ())
    ?home ~shards mk =
  if shards < 1 then invalid_arg "Sharded.create: shards < 1";
  let home =
    match home with
    (* Domain affinity: a domain's home shard is its id modulo the shard
       count, so with [shards >= domains] every domain owns a private
       ring and only crosses over when stealing. *)
    | None -> fun () -> (Domain.self () :> int) mod shards
    (* Custom affinity (tests, adversarial torture schedules): clamp into
       range so a wild function cannot index out of bounds. *)
    | Some f -> fun () -> ((f () mod shards) + shards) mod shards
  in
  {
    shards = Array.init shards (fun i -> Padding.copy_padded (mk i));
    home;
    steals = Sharded_counter.create ();
    note_steal;
    steal_window;
  }

let shard_count t = Array.length t.shards
let steal_count t = Sharded_counter.read t.steals

let stole t =
  Sharded_counter.incr t.steals;
  t.note_steal ()

let home t = t.home ()

let try_enqueue t x =
  let n = Array.length t.shards in
  let h = home t in
  if (Array.unsafe_get t.shards h).enq x then true
  else if n = 1 then false
  else begin
    t.steal_window ();
    let rec sweep i =
      if i >= n then false
      else
        let s = if h + i >= n then h + i - n else h + i in
        if (Array.unsafe_get t.shards s).enq x then begin
          stole t;
          true
        end
        else sweep (i + 1)
    in
    sweep 1
  end

let try_dequeue t =
  let n = Array.length t.shards in
  let h = home t in
  match (Array.unsafe_get t.shards h).deq () with
  | Some _ as r -> r
  | None ->
      if n = 1 then None
      else begin
        t.steal_window ();
        let rec sweep i =
          if i >= n then None
          else
            let s = if h + i >= n then h + i - n else h + i in
            match (Array.unsafe_get t.shards s).deq () with
            | Some _ as r ->
                stole t;
                r
            | None -> sweep (i + 1)
        in
        sweep 1
      end

(* Like [try_dequeue] but reports which shard served the item, so tests
   can assert per-shard FIFO order without trusting the facade. *)
let try_dequeue_with_source t =
  let n = Array.length t.shards in
  let h = home t in
  match (Array.unsafe_get t.shards h).deq () with
  | Some x -> Some (h, x)
  | None ->
      if n = 1 then None
      else begin
        t.steal_window ();
        let rec sweep i =
          if i >= n then None
          else
            let s = if h + i >= n then h + i - n else h + i in
            match (Array.unsafe_get t.shards s).deq () with
            | Some x ->
                stole t;
                Some (s, x)
            | None -> sweep (i + 1)
        in
        sweep 1
      end

let try_enqueue_batch t items =
  let total = Array.length items in
  if total = 0 then 0
  else begin
    let n = Array.length t.shards in
    let h = home t in
    let accepted = ref ((Array.unsafe_get t.shards h).enq_batch items) in
    if !accepted < total && n > 1 then begin
      t.steal_window ();
      let i = ref 1 in
      while !accepted < total && !i < n do
        let s = if h + !i >= n then h + !i - n else h + !i in
        let rest = Array.sub items !accepted (total - !accepted) in
        let k = (Array.unsafe_get t.shards s).enq_batch rest in
        if k > 0 then begin
          stole t;
          accepted := !accepted + k
        end;
        incr i
      done
    end;
    !accepted
  end

let try_dequeue_batch t k =
  if k <= 0 then []
  else begin
    let n = Array.length t.shards in
    let h = home t in
    let got = (Array.unsafe_get t.shards h).deq_batch k in
    let m = List.length got in
    if m >= k || n = 1 then got
    else begin
      t.steal_window ();
      let rec sweep i chunks m =
        if m >= k || i >= n then List.concat (List.rev chunks)
        else
          let s = if h + i >= n then h + i - n else h + i in
          let more = (Array.unsafe_get t.shards s).deq_batch (k - m) in
          match more with
          | [] -> sweep (i + 1) chunks m
          | _ ->
              stole t;
              sweep (i + 1) (more :: chunks) (m + List.length more)
      in
      sweep 1 [ got ] m
    end
  end

(* Sum of per-shard lengths, each read at a different instant: a
   non-linearizable snapshot.  With [d] operations in flight the result is
   within [d] of any linearized length, which is the bound the battery
   test pins down. *)
let length t =
  Array.fold_left (fun acc s -> acc + s.len ()) 0 t.shards

let shard_length t i = t.shards.(i).len ()

(* --- Functor veneer over any CONC implementation ----------------------- *)

module type SHARDS = sig
  val shards : int
end

module Make_injected
    (N : SHARDS)
    (P : Probe.S)
    (F : Fault.S)
    (Q : Queue_intf.CONC) =
struct
  type nonrec 'a t = 'a t

  let name = Q.name ^ "-shard" ^ string_of_int N.shards

  (* The facade keeps the shards' boundedness but loses single-lap /
     resettable guarantees (shards fill unevenly, steals reorder), and
     its batch sweep is native. *)
  let caps =
    Queue_intf.Caps.(with_batch (if Q.caps.bounded then bounded else unbounded))

  let bounded = Q.bounded

  (* Capacity splits evenly across shards (rounded up, then up again to
     each ring's power of two), so the facade holds at least [capacity]
     items in aggregate — but a single shard can fill while others have
     room, which is why enqueue steals before reporting full. *)
  let create ~capacity =
    let per = max 1 ((capacity + N.shards - 1) / N.shards) in
    create ~shards:N.shards ~note_steal:P.shard_steal
      ~steal_window:(fun () -> F.hit Fault.Shard_steal)
      (fun _ ->
        let q = Q.create ~capacity:per in
        ops
          ~enq:(fun x -> Q.try_enqueue q x)
          ~deq:(fun () -> Q.try_dequeue q)
          ~len:(fun () -> Q.length q)
          ~enq_batch:(fun items -> Q.try_enqueue_batch q items)
          ~deq_batch:(fun k -> Q.try_dequeue_batch q k))

  let try_enqueue = try_enqueue
  let try_dequeue = try_dequeue
  let try_enqueue_batch = try_enqueue_batch
  let try_dequeue_batch = try_dequeue_batch
  let length = length
end

module Make_probed (N : SHARDS) (P : Probe.S) (Q : Queue_intf.CONC) =
  Make_injected (N) (P) (Fault.Noop) (Q)

module Make (N : SHARDS) (Q : Queue_intf.CONC) =
  Make_probed (N) (Probe.Noop) (Q)

(* The default composition the ISSUE names: N rings of the paper's
   CAS-based queue, with the ring's amortized batch runs (one ReRegister
   and one counter CAS per clean run) — the spurious whole-run "full" a
   lagging counter can cause is exactly what the steal sweep absorbs. *)
module Evequoz_cas (N : SHARDS) =
  Make
    (N)
    (Queue_intf.Make
       (Queue_intf.Capability.Bounded_batch (Nbq_core.Evequoz_cas.Batched)))

(* --- Parked blocking over the facade ----------------------------------- *)

module Eventcount = Nbq_wait.Eventcount

(* Eventcounts shard like the rings do: a consumer parks on its HOME
   shard's not_empty eventcount, and a producer's wake sweeps the
   eventcount array in the same cyclic home-first order the steal sweep
   uses — so in the common (affinity-respecting) case a wake touches only
   the home eventcount, and waiters parked anywhere are found exactly when
   stealing would find their items.  A wake delivered to shard s's
   eventcount can satisfy an item enqueued on any shard because a parked
   waiter's condition is the full facade operation (home probe + steal
   sweep). *)
type 'a waitable = {
  base : 'a t;
  not_empty : Eventcount.t array;
  not_full : Eventcount.t array;
}

let waitable ?on_park ?on_wake ?on_cancel ?park_window ?wake_window base =
  let mk _ =
    Eventcount.create ?on_park ?on_wake ?on_cancel ?park_window ?wake_window
      ()
  in
  let n = shard_count base in
  {
    base;
    not_empty = Array.init n mk;
    not_full = Array.init n mk;
  }

let base w = w.base

(* Mirror of the steal sweep: try the home eventcount, then the others in
   cyclic order, stopping at the first delivered wake.  Stopping early is
   what keeps one enqueue from waking the whole fleet; sweeping at all is
   what keeps a waiter parked on a foreign shard from being invisible. *)
let wake_sweep ecs h =
  let n = Array.length ecs in
  let rec go i =
    if i < n then
      let s = if h + i >= n then h + i - n else h + i in
      if not (Eventcount.wake_one (Array.unsafe_get ecs s)) then go (i + 1)
  in
  go 0

let enq_cond w x () = if try_enqueue w.base x then Some () else None

let enqueue w x =
  let h = home w.base in
  match Eventcount.await w.not_full.(h) (enq_cond w x) with
  | `Ok () -> wake_sweep w.not_empty h
  | `Timeout -> assert false (* no deadline *)

let dequeue w =
  let h = home w.base in
  match Eventcount.await w.not_empty.(h) (fun () -> try_dequeue w.base) with
  | `Ok x ->
      wake_sweep w.not_full h;
      x
  | `Timeout -> assert false

let enqueue_until w ~deadline x =
  let h = home w.base in
  match Eventcount.await ~deadline w.not_full.(h) (enq_cond w x) with
  | `Ok () ->
      wake_sweep w.not_empty h;
      `Ok
  | `Timeout -> `Timeout

let dequeue_until w ~deadline =
  let h = home w.base in
  match
    Eventcount.await ~deadline w.not_empty.(h) (fun () -> try_dequeue w.base)
  with
  | `Ok x ->
      wake_sweep w.not_full h;
      `Ok x
  | `Timeout -> `Timeout
