type recorder = {
  buffer : float array;
  mutable used : int;
  mutable dropped : int;
}

let recorder ~capacity =
  if capacity < 1 then invalid_arg "Latency.recorder: capacity < 1";
  { buffer = Array.make capacity 0.0; used = 0; dropped = 0 }

let record r x =
  if r.used < Array.length r.buffer then begin
    r.buffer.(r.used) <- x;
    r.used <- r.used + 1
  end
  else r.dropped <- r.dropped + 1

let time r f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  record r (Unix.gettimeofday () -. t0);
  result

let dropped r = r.dropped

type summary = {
  samples : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Latency.percentile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Latency.percentile: q outside [0,1]";
  (* Nearest-rank. *)
  let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  sorted.(max 0 (min (n - 1) rank))

let summarize recorders =
  let total = List.fold_left (fun acc r -> acc + r.used) 0 recorders in
  if total = 0 then invalid_arg "Latency.summarize: no samples";
  let all = Array.make total 0.0 in
  let pos = ref 0 in
  List.iter
    (fun r ->
      Array.blit r.buffer 0 all !pos r.used;
      pos := !pos + r.used)
    recorders;
  Array.sort Float.compare all;
  let sum = Array.fold_left ( +. ) 0.0 all in
  {
    samples = total;
    mean = sum /. float_of_int total;
    p50 = percentile all 0.5;
    p90 = percentile all 0.9;
    p99 = percentile all 0.99;
    p999 = percentile all 0.999;
    max = all.(total - 1);
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.2fus p50=%.2fus p90=%.2fus p99=%.2fus p99.9=%.2fus max=%.2fus"
    s.samples (s.mean *. 1e6) (s.p50 *. 1e6) (s.p90 *. 1e6) (s.p99 *. 1e6)
    (s.p999 *. 1e6) (s.max *. 1e6)
