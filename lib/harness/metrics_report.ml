module Metrics = Nbq_obs.Metrics
module Event = Nbq_obs.Event
module Histogram = Nbq_obs.Histogram

let event_table ?(title = "events") (s : Metrics.snapshot) =
  let ops =
    (* Successful operations = total enq+deq attempts minus retries is not
       recoverable from the snapshot alone; rate columns are therefore per
       1000 LL reservations when available, else raw counts only. *)
    Metrics.get s Event.Ll_reserve
  in
  let t = Table.create ~title ~columns:[ "event"; "count"; "per-1k-ll" ] in
  List.iter
    (fun ev ->
      let c = Metrics.get s ev in
      let rate =
        if ops = 0 then "-"
        else Printf.sprintf "%.2f" (1000.0 *. float_of_int c /. float_of_int ops)
      in
      Table.add_row t [ Event.to_string ev; string_of_int c; rate ])
    Event.all;
  Table.render t

(* The tail triple the summary file and the latency table both report. *)
let percentiles (h : Histogram.snapshot) =
  ( Histogram.percentile_ns h 0.5,
    Histogram.percentile_ns h 0.99,
    Histogram.percentile_ns h 0.999 )

let latency_row label (h : Histogram.snapshot) =
  let p q =
    let v = Histogram.percentile_ns h q in
    if Float.is_nan v then "-" else Printf.sprintf "%.0f" v
  in
  [
    label;
    string_of_int (Histogram.total h);
    (if Histogram.total h = 0 then "-"
     else Printf.sprintf "%.0f" (Histogram.mean_ns h));
    p 0.5;
    p 0.95;
    p 0.99;
    p 0.999;
  ]

let latency_table ?(title = "sampled operation latency [ns]")
    (s : Metrics.snapshot) =
  let t =
    Table.create ~title
      ~columns:[ "op"; "samples"; "mean"; "p50"; "p95"; "p99"; "p99.9" ]
  in
  Table.add_row t (latency_row "enqueue" s.Metrics.enq);
  Table.add_row t (latency_row "dequeue" s.Metrics.deq);
  Table.render t

let histogram_plot ?(title = "latency distribution") (s : Metrics.snapshot) =
  let series_of label (h : Histogram.snapshot) =
    (* x = log10(bucket lower bound), y = share of samples, so wildly
       different latency scales stay on one readable axis. *)
    let total = float_of_int (Histogram.total h) in
    if total = 0.0 then { Ascii_plot.label; points = [] }
    else
      {
        Ascii_plot.label;
        points =
          List.map
            (fun (lo, _hi, n) ->
              (log10 (float_of_int (max 1 lo)), float_of_int n /. total))
            (Histogram.nonempty h);
      }
  in
  Ascii_plot.render ~title ~x_label:"log10(ns)" ~y_label:"share"
    [ series_of "enq" s.Metrics.enq; series_of "deq" s.Metrics.deq ]

let render ?(label = "") (s : Metrics.snapshot) =
  let title suffix = if label = "" then suffix else label ^ ": " ^ suffix in
  String.concat "\n"
    [
      event_table ~title:(title "events") s;
      "";
      latency_table ~title:(title "sampled operation latency [ns]") s;
      "";
      histogram_plot ~title:(title "latency distribution") s;
    ]
