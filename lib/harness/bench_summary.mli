(** The machine-readable bench trajectory ([results/bench_summary.json]):
    one row per bench x queue x variant x domain count, carrying
    throughput and sampled latency percentiles.  The bench binaries
    merge-append rows; [bin/bench_compare] diffs two files. *)

val schema : string
(** ["nbq-bench-summary"]. *)

val version : int
val default_path : string

type row = {
  bench : string;  (** emitting binary: "fig6", "contend", "shard_sweep" *)
  queue : string;
  variant : string;  (** bench-specific sub-configuration; [""] when none *)
  domains : int;
  runs : int;
  items : int;  (** items moved, summed over runs and domains *)
  mitems_per_s : float;
  p50_ns : float;  (** sampled op latency (enq+deq merged); nan = not measured *)
  p99_ns : float;
  p999_ns : float;
}

val key : row -> string * string * string * int
(** The merge identity: (bench, queue, variant, domains). *)

val row_of_measurement :
  bench:string -> ?variant:string -> Runner.measurement -> row
(** Throughput from items over summed per-run seconds; percentiles from
    the measurement's metrics snapshot (enq and deq histograms merged),
    nan when the run was unmetered. *)

val to_json : row list -> Nbq_obs.Sink.json
val of_json : Nbq_obs.Sink.json -> (row list, string) result

val read : string -> (row list, string) result

val fresh_env : string
(** ["NBQ_BENCH_FRESH"].  When this environment variable names a file,
    {!write} additionally merge-mirrors the batch being written (not the
    pre-existing trajectory rows) into it.  CI points it at a scratch
    file wiped before the bench smoke, then hands it to
    [bench_compare --gate --fresh] so a family that produced zero fresh
    rows cannot hide behind the trajectory file's merge semantics. *)

val write : ?path:string -> row list -> int
(** Merge the rows into the file (existing rows with a matching {!key} are
    replaced, others kept), creating the parent directory if needed;
    returns the total row count written.  See {!fresh_env} for the
    fresh-rows mirror. *)
