(** Multi-domain benchmark execution, following the paper's §6 methodology:
    spawn N workers, synchronize them behind a barrier, run the workload,
    report the mean per-thread completion time; repeat for R runs and
    average. *)

type run_config = {
  threads : int;
  runs : int;                 (** paper: 50 *)
  workload : Workload.config;
  capacity : int option;      (** default: {!Workload.min_capacity} *)
}

type measurement = {
  impl_name : string;
  threads_used : int;
  per_run_seconds : float list;  (** each entry: mean over threads of one run *)
  summary : Stats.summary;
  full_retries : int;   (** summed over all runs and threads *)
  empty_retries : int;
  items : int;
      (** Items moved, summed over all runs and threads
          ({!Workload.thread_result.items}): a batch call moving k items
          contributes k.  Divide by total seconds for throughput. *)
  metrics : Nbq_obs.Metrics.snapshot option;
      (** Present iff [measure] was given a metrics hub; accumulated over
          all runs of this measurement. *)
}

val default_config : ?threads:int -> ?runs:int -> Workload.config -> run_config

val measure :
  ?metrics:Nbq_obs.Metrics.t ->
  ?tracer:Nbq_trace.Recorder.t ->
  ?batched:bool ->
  Registry.impl ->
  run_config ->
  measurement
(** Runs [runs] independent rounds: each round creates a fresh queue,
    spawns [threads] domains, releases them together, and records every
    thread's completion time.  The round's score is the mean thread time
    (the paper's metric).

    With [?metrics] the queue is built via [create_probed] so events and
    sampled latencies land in the hub; [full_retries]/[empty_retries] are
    then read from the snapshot (the workload's spin counters observe the
    same failed operations, so the two agree).

    With [?tracer] the queue is built via [create_traced] instead (the
    hub, if also given, rides along through the composed probe); the
    caller arms/disarms the recorder and exports — the runner only wires
    the hooks.

    With [~batched:true] workers run {!Workload.run_thread_batched} —
    the same item ledger through the batch entry points. *)

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()]; sweeps beyond this oversubscribe
    (which is part of what the paper studies — preemption tolerance). *)
