type config = {
  iterations : int;
  enqueue_batch : int;
  dequeue_batch : int;
}

let paper_config = { iterations = 100_000; enqueue_batch = 5; dequeue_batch = 5 }

let scaled_config ~scale =
  {
    paper_config with
    iterations = max 1 (int_of_float (float_of_int paper_config.iterations *. scale));
  }

type thread_result = {
  seconds : float;
  full_retries : int;
  empty_retries : int;
  items : int;
}

let items_per_thread config =
  config.iterations * (config.enqueue_batch + config.dequeue_batch)

(* Deadlock-freedom of the spin loops: threads alternate batches, so a
   thread blocked on dequeue has completed its current enqueue batch.  If
   all threads were blocked on an empty queue, summing
   (enqueued_by_t - dequeued_by_t) over threads gives queue length = 0,
   yet each term is >= 1 (a thread never dequeues more than it has
   enqueued before its current blocked batch finishes) — contradiction.
   Symmetrically for full-queue blocking with adequate capacity. *)
let run_thread config ~thread (q : Registry.instance) =
  let full_retries = ref 0 in
  let empty_retries = ref 0 in
  let tag_base = thread lsl 40 in
  let tag = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to config.iterations do
    for _ = 1 to config.enqueue_batch do
      (* Fresh allocation per enqueue, as in the paper. *)
      let payload = { Registry.tag = tag_base lor !tag } in
      incr tag;
      while not (q.Registry.enqueue payload) do
        incr full_retries;
        Domain.cpu_relax ()
      done
    done;
    for _ = 1 to config.dequeue_batch do
      let rec drain () =
        match q.Registry.dequeue () with
        | Some _ -> () (* "freed": dropped, collected by the GC / pool *)
        | None ->
            incr empty_retries;
            Domain.cpu_relax ();
            drain ()
      in
      drain ()
    done
  done;
  let t1 = Unix.gettimeofday () in
  {
    seconds = t1 -. t0;
    full_retries = !full_retries;
    empty_retries = !empty_retries;
    items = items_per_thread config;
  }

(* The same workload through the batch entry points: each round issues the
   enqueue half as ONE k-item batch (retrying the unaccepted suffix) and
   the dequeue half as batch calls for the remaining demand.  The item
   ledger is identical to [run_thread] — [items_per_thread] either way —
   which is what makes batched and single-op throughputs comparable. *)
let run_thread_batched config ~thread (q : Registry.instance) =
  let full_retries = ref 0 in
  let empty_retries = ref 0 in
  let tag_base = thread lsl 40 in
  let tag = ref 0 in
  let eb = config.enqueue_batch in
  let db = config.dequeue_batch in
  (* The batch array is reused across rounds (the callee consumes it
     synchronously); the payloads themselves are freshly allocated per
     enqueue, as in the paper. *)
  let batch = Array.make (max 1 eb) { Registry.tag = 0 } in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to config.iterations do
    for i = 0 to eb - 1 do
      batch.(i) <- { Registry.tag = tag_base lor !tag };
      incr tag
    done;
    let sent = ref 0 in
    while !sent < eb do
      let rest =
        if !sent = 0 then batch else Array.sub batch !sent (eb - !sent)
      in
      let k = q.Registry.enqueue_batch rest in
      sent := !sent + k;
      if !sent < eb then begin
        incr full_retries;
        Domain.cpu_relax ()
      end
    done;
    let got = ref 0 in
    while !got < db do
      let xs = q.Registry.dequeue_batch (db - !got) in
      got := !got + List.length xs;
      if !got < db then begin
        incr empty_retries;
        Domain.cpu_relax ()
      end
    done
  done;
  let t1 = Unix.gettimeofday () in
  {
    seconds = t1 -. t0;
    full_retries = !full_retries;
    empty_retries = !empty_retries;
    items = items_per_thread config;
  }

let min_capacity config ~threads =
  (* At most [threads * enqueue_batch] items are in flight; double it and
     round up so array queues never report full in the steady state. *)
  Nbq_core.Queue_intf.round_capacity (2 * threads * config.enqueue_batch)
