module Barrier = Nbq_primitives.Barrier

type run_config = {
  threads : int;
  runs : int;
  workload : Workload.config;
  capacity : int option;
}

type measurement = {
  impl_name : string;
  threads_used : int;
  per_run_seconds : float list;
  summary : Stats.summary;
  full_retries : int;
  empty_retries : int;
  items : int;
  metrics : Nbq_obs.Metrics.snapshot option;
}

let default_config ?(threads = 4) ?(runs = 5) workload =
  { threads; runs; workload; capacity = None }

let available_domains () = Domain.recommended_domain_count ()

let one_run ?metrics ?tracer ?(batched = false) (impl : Registry.impl) cfg =
  let capacity =
    match cfg.capacity with
    | Some c -> c
    | None -> Workload.min_capacity cfg.workload ~threads:cfg.threads
  in
  let q =
    match (tracer, metrics) with
    | Some tr, _ -> impl.Registry.create_traced ~metrics ~tracer:tr ~capacity
    | None, Some m -> impl.Registry.create_probed ~metrics:m ~capacity
    | None, None -> impl.Registry.create ~capacity
  in
  let run_thread =
    if batched then Workload.run_thread_batched else Workload.run_thread
  in
  let barrier = Barrier.create ~parties:cfg.threads in
  let domains =
    List.init cfg.threads (fun thread ->
        Domain.spawn (fun () ->
            Barrier.await barrier;
            run_thread cfg.workload ~thread q))
  in
  List.map Domain.join domains

let measure ?metrics ?tracer ?batched impl cfg =
  if cfg.threads < 1 then invalid_arg "Runner.measure: threads < 1";
  let full = ref 0 and empty = ref 0 and items = ref 0 in
  let per_run =
    List.init cfg.runs (fun _ ->
        let results = one_run ?metrics ?tracer ?batched impl cfg in
        List.iter
          (fun (r : Workload.thread_result) ->
            full := !full + r.full_retries;
            empty := !empty + r.empty_retries;
            items := !items + r.items)
          results;
        Stats.mean
          (List.map (fun (r : Workload.thread_result) -> r.seconds) results))
  in
  let snapshot = Option.map Nbq_obs.Metrics.snapshot metrics in
  (* An instrumented queue counts its own failed operations; the workload's
     spin-loop counters see exactly the same [false]/[None] returns, so
     under instrumentation the snapshot is authoritative and the workload
     refs are the (equal) derived view.  Keep the snapshot values to make
     the two reporting paths consistent. *)
  let full_retries, empty_retries =
    match snapshot with
    | Some s ->
        ( Nbq_obs.Metrics.get s Nbq_obs.Event.Full_retry,
          Nbq_obs.Metrics.get s Nbq_obs.Event.Empty_retry )
    | None -> (!full, !empty)
  in
  {
    impl_name = impl.Registry.name;
    threads_used = cfg.threads;
    per_run_seconds = per_run;
    summary = Stats.summarize per_run;
    full_retries;
    empty_retries;
    items = !items;
    metrics = snapshot;
  }
