type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Nearest-rank on a sorted array, same convention as Latency.percentile. *)
let percentile_sorted a q =
  let n = Array.length a in
  let rank = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  a.(max 0 (min (n - 1) rank))

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
      let n = List.length xs in
      let m = mean xs in
      let var =
        if n < 2 then 0.0
        else
          List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
          /. float_of_int (n - 1)
      in
      (* Float.compare, not polymorphic compare: the latter is both slower
         and orders nan inconsistently with the IEEE predicates. *)
      let sorted = Array.of_list (List.sort Float.compare xs) in
      let median =
        if n mod 2 = 1 then sorted.(n / 2)
        else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0
      in
      {
        n;
        mean = m;
        stddev = sqrt var;
        min = sorted.(0);
        max = sorted.(n - 1);
        median;
        p95 = percentile_sorted sorted 0.95;
        p99 = percentile_sorted sorted 0.99;
        p999 = percentile_sorted sorted 0.999;
      }

let normalize ~base x =
  if base = 0.0 then nan else x /. base

let pp_summary fmt s =
  Format.fprintf fmt
    "mean=%.6f sd=%.6f min=%.6f med=%.6f p95=%.6f p99=%.6f p999=%.6f \
     max=%.6f (n=%d)"
    s.mean s.stddev s.min s.median s.p95 s.p99 s.p999 s.max s.n
