(** Terminal rendering of {!Nbq_obs.Metrics.snapshot}: an event-count
    table (with per-1000-LL-reservation rates), a latency percentile table,
    and an {!Ascii_plot} of the latency distribution on a log10 axis. *)

val percentiles : Nbq_obs.Histogram.snapshot -> float * float * float
(** (p50, p99, p999) in ns; nan components on an empty histogram. *)

val event_table : ?title:string -> Nbq_obs.Metrics.snapshot -> string
val latency_table : ?title:string -> Nbq_obs.Metrics.snapshot -> string
val histogram_plot : ?title:string -> Nbq_obs.Metrics.snapshot -> string

val render : ?label:string -> Nbq_obs.Metrics.snapshot -> string
(** All three, blank-line separated; [label] prefixes each title. *)
