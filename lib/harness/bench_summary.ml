(* The machine-readable bench trajectory: results/bench_summary.json.

   One file, one schema, every bench binary appends its rows (keyed by
   bench x queue x variant x domains, newest run wins), so successive
   working-tree states leave a comparable record — bin/bench_compare diffs
   two such files and flags throughput regressions. *)

module Sink = Nbq_obs.Sink
module Histogram = Nbq_obs.Histogram

let schema = "nbq-bench-summary"
let version = 1
let default_path = "results/bench_summary.json"

type row = {
  bench : string;  (* emitting binary: "fig6", "contend", "shard_sweep" *)
  queue : string;
  variant : string;  (* bench-specific sub-configuration; "" when none *)
  domains : int;
  runs : int;
  items : int;  (* items moved, summed over runs and domains *)
  mitems_per_s : float;
  p50_ns : float;  (* sampled op latency; nan = not measured *)
  p99_ns : float;
  p999_ns : float;
}

let key r = (r.bench, r.queue, r.variant, r.domains)

let row_of_measurement ~bench ?(variant = "") (m : Runner.measurement) =
  let total_s = List.fold_left ( +. ) 0.0 m.Runner.per_run_seconds in
  let p50, p99, p999 =
    match m.Runner.metrics with
    | None -> (nan, nan, nan)
    | Some s ->
      let h = Histogram.merge s.Nbq_obs.Metrics.enq s.Nbq_obs.Metrics.deq in
      ( Histogram.percentile_ns h 0.5,
        Histogram.percentile_ns h 0.99,
        Histogram.percentile_ns h 0.999 )
  in
  {
    bench;
    queue = m.Runner.impl_name;
    variant;
    domains = m.Runner.threads_used;
    runs = List.length m.Runner.per_run_seconds;
    items = m.Runner.items;
    mitems_per_s =
      (if total_s > 0.0 then float_of_int m.Runner.items /. total_s /. 1e6
       else nan);
    p50_ns = p50;
    p99_ns = p99;
    p999_ns = p999;
  }

(* --- JSON round-trip ----------------------------------------------------- *)

let row_json r =
  Sink.Obj
    [
      ("bench", Sink.String r.bench);
      ("queue", Sink.String r.queue);
      ("variant", Sink.String r.variant);
      ("domains", Sink.Int r.domains);
      ("runs", Sink.Int r.runs);
      ("items", Sink.Int r.items);
      ("mitems_per_s", Sink.Float r.mitems_per_s);
      ("p50_ns", Sink.Float r.p50_ns);
      ("p99_ns", Sink.Float r.p99_ns);
      ("p999_ns", Sink.Float r.p999_ns);
    ]

let to_json rows =
  Sink.Obj
    [
      ("schema", Sink.String schema);
      ("version", Sink.Int version);
      ("rows", Sink.List (List.map row_json rows));
    ]

let str name j =
  match Sink.member name j with
  | Some (Sink.String s) -> Ok s
  | _ -> Error (Printf.sprintf "missing string field %S" name)

let int_field name j =
  match Sink.member name j with
  | Some (Sink.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "missing int field %S" name)

(* Float fields come back as Null when the writer had nan (no latency
   sampling on that row) — that is data, not an error. *)
let fnum name j =
  match Sink.member name j with
  | Some (Sink.Float f) -> f
  | Some (Sink.Int i) -> float_of_int i
  | _ -> nan

let ( let* ) = Result.bind

let row_of_json j =
  let* bench = str "bench" j in
  let* queue = str "queue" j in
  let* variant = str "variant" j in
  let* domains = int_field "domains" j in
  let* runs = int_field "runs" j in
  let* items = int_field "items" j in
  Ok
    {
      bench;
      queue;
      variant;
      domains;
      runs;
      items;
      mitems_per_s = fnum "mitems_per_s" j;
      p50_ns = fnum "p50_ns" j;
      p99_ns = fnum "p99_ns" j;
      p999_ns = fnum "p999_ns" j;
    }

let of_json j =
  let* s = str "schema" j in
  if s <> schema then Error (Printf.sprintf "unexpected schema %S" s)
  else
    match Sink.member "rows" j with
    | Some (Sink.List rows) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | r :: tl ->
          let* row = row_of_json r in
          go (row :: acc) tl
      in
      go [] rows
    | _ -> Error "missing rows array"

let read path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let* j = Sink.parse text in
    Result.map_error (fun e -> path ^ ": " ^ e) (of_json j)

(* Merge-write: rows already in [path] survive unless superseded by a new
   row with the same key, so fig6, contend and shard_sweep can all feed
   one trajectory file. *)
let merge_into ~path rows =
  let existing =
    if Sys.file_exists path then
      match read path with Ok rs -> rs | Error _ -> []
    else []
  in
  let keys = List.map key rows in
  let kept = List.filter (fun r -> not (List.mem (key r) keys)) existing in
  let all = kept @ rows in
  (match Filename.dirname path with
  | "" | "." -> ()
  | dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755);
  let oc = open_out path in
  output_string oc (Sink.json_to_string (to_json all));
  output_char oc '\n';
  close_out oc;
  List.length all

let fresh_env = "NBQ_BENCH_FRESH"

let write ?(path = default_path) rows =
  (* Within one batch, keep the last row per key (e.g. fig6's normalized
     sub-figures re-measure the same cells). *)
  let rows =
    List.rev
      (fst
         (List.fold_left
            (fun (acc, seen) r ->
              if List.mem (key r) seen then (acc, seen)
              else (r :: acc, key r :: seen))
            ([], []) (List.rev rows)))
  in
  let n = merge_into ~path rows in
  (* The trajectory file merges, so a sweep that silently measured nothing
     leaves yesterday's rows looking current.  When NBQ_BENCH_FRESH names
     a side file, mirror just this process tree's rows there — that file
     holds only what the current runs actually produced, and
     bench_compare --gate --fresh uses it to catch families that went
     dark. *)
  (match Sys.getenv_opt fresh_env with
  | Some fresh when fresh <> "" && fresh <> path ->
      ignore (merge_into ~path:fresh rows : int)
  | _ -> ());
  n
