(** Every queue implementation in the repository as a first-class value.

    The experiments iterate over algorithms; this registry erases the
    per-implementation type ['a t] by fixing the payload to a freshly
    allocated record per enqueue — mirroring the paper's workload, where "a
    node allocation immediately precedes each enqueue operation". *)

type payload = { tag : int }
(** One queued item; always heap-allocated fresh by the workload. *)

type instance = {
  enqueue : payload -> bool;
  dequeue : unit -> payload option;
  length : unit -> int;
}
(** A live queue, usable from any domain. *)

type family =
  | Array_based  (** circular-array queues *)
  | Link_based   (** Michael–Scott family *)
  | Lock_based
  | Sequential   (** no synchronization; single-domain only *)

type impl = {
  name : string;
  family : family;
  bounded : bool;
  bounded_delay_assumption : bool;
      (** The algorithm is only correct if no operation is delayed across
          two full ring wraps (Tsigas–Zhang's published assumption — the
          very §3 limitation the paper's algorithms remove).  Harnesses
          honour it by sizing rings generously; see DESIGN.md §7a. *)
  create : capacity:int -> instance;
  create_probed : metrics:Nbq_obs.Metrics.t -> capacity:int -> instance;
      (** Like [create] but with operations feeding the metrics hub:
          Evéquoz queues are rebuilt with probes inside the algorithm
          ({!Nbq_obs.Instrumented.deep}); other queues get the shallow
          retry/latency wrapper; {!custom} impls fall back to [create]. *)
}

val all : impl list
(** Every registered implementation (concurrent ones first). *)

val concurrent : impl list
(** [all] minus the sequential ring. *)

val find : string -> impl
(** Lookup by [name]; raises [Invalid_argument] with a message listing the
    valid names. *)

val names : unit -> string list

val of_conc :
  name:string ->
  family:family ->
  ?bounded_delay_assumption:bool ->
  (module Nbq_core.Queue_intf.CONC) ->
  impl
(** Wrap any {!Nbq_core.Queue_intf.CONC} implementation.
    [bounded_delay_assumption] defaults to [false]. *)

val custom :
  name:string ->
  family:family ->
  ?bounded_delay_assumption:bool ->
  ?bounded:bool ->
  (capacity:int -> instance) ->
  impl
(** Build an impl from a bare instance constructor (ad-hoc experiment
    queues, e.g. the ablation binaries).  [create_probed] degrades to the
    uninstrumented [create]. *)
