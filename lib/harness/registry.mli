(** Every queue implementation in the repository as a first-class value.

    The experiments iterate over algorithms; this registry erases the
    per-implementation type ['a t] by fixing the payload to a freshly
    allocated record per enqueue — mirroring the paper's workload, where "a
    node allocation immediately precedes each enqueue operation". *)

type payload = { tag : int }
(** One queued item; always heap-allocated fresh by the workload. *)

type instance = {
  enqueue : payload -> bool;
  dequeue : unit -> payload option;
  enqueue_batch : payload array -> int;
      (** Items in array order, stopping at the first full; returns the
          accepted-prefix length. *)
  dequeue_batch : int -> payload list;
      (** Up to [k] items, stopping at the first empty. *)
  length : unit -> int;
      (** Number of queued items.  On a sharded instance this is a
          {e non-linearizable} sum-of-shards snapshot: each shard is read
          at a different instant, so with [d] operations in flight the
          result can differ from any linearized length by up to [d]
          (exact when quiescent).  Single-ring instances report their
          implementation's own (linearizable-ish) length. *)
  enqueue_until : deadline:float -> payload -> bool;
      (** Blocking (parked, via [Nbq_wait]) enqueue with an absolute
          [Unix.gettimeofday] deadline; [false] means timeout.  Always
          makes at least one attempt; never parks once the deadline has
          passed; resolution ~1ms.  Sharded instances park on their home
          shard's eventcount and wake with the home-first sweep
          ({!Nbq_scale.Sharded.waitable}); all others use a generic
          eventcount pair.  Wakes flow between [*_until] callers only —
          the plain closures above stay on the unwrapped hot path, so
          mixing plain and [*_until] callers falls back on the wait
          layer's bounded-park backstop (tens of ms, never a hang). *)
  dequeue_until : deadline:float -> payload option;
      (** Blocking dequeue with an absolute deadline; [None] means
          timeout. *)
}
(** A live queue, usable from any domain. *)

type family =
  | Array_based  (** circular-array queues *)
  | Link_based   (** Michael–Scott family *)
  | Lock_based
  | Sequential   (** no synchronization; single-domain only *)

type impl = {
  name : string;
  family : family;
  bounded : bool;
  bounded_delay_assumption : bool;
      (** The algorithm is only correct if no operation is delayed across
          two full ring wraps (Tsigas–Zhang's published assumption — the
          very §3 limitation the paper's algorithms remove).  Harnesses
          honour it by sizing rings generously; see DESIGN.md §7a. *)
  relaxed_fifo : bool;
      (** The implementation keeps items conserved and each shard FIFO but
          relaxes {e global} FIFO order and single-queue linearizability
          (the sharded front-ends).  The battery runs its relaxed suite
          instead of the exact FIFO/linearizability cases; see
          DESIGN.md §8. *)
  create : capacity:int -> instance;
  create_probed : metrics:Nbq_obs.Metrics.t -> capacity:int -> instance;
      (** Like [create] but with operations feeding the metrics hub:
          Evéquoz queues are rebuilt with probes inside the algorithm
          ({!Nbq_obs.Instrumented.deep}); other queues get the shallow
          retry/latency wrapper; {!custom} impls fall back to [create]. *)
  create_traced :
    metrics:Nbq_obs.Metrics.t option ->
    tracer:Nbq_trace.Recorder.t ->
    capacity:int ->
    instance;
      (** Like [create_probed] but additionally feeding the flight
          recorder ([Nbq_trace]): sampled operation spans around every
          public operation, and — for the Evéquoz queues and the native
          sharded rows — the recorder's probe composed with the metrics
          probe inside the algorithm's functor seams.  Omitting [metrics]
          trades the counter hub away for a pure trace. *)
}

(** One descriptor per algorithm family; {!register_family} derives every
    registry row it publishes.  Adding an algorithm is one {!Family.v}
    entry in the internal family list — the derived rows (base, shards,
    blocking) come for free. *)
module Family : sig
  type probed_builder =
    (module Nbq_primitives.Probe.S) -> (module Nbq_core.Queue_intf.CONC)
  (** Rebuild the queue with a probe threaded through its functor seams
      (deep instrumentation: sc_fail, helping, tag traffic, faa cycles). *)

  type t = {
    name : string;
    classification : family;
    bounded_delay_assumption : bool;
    relaxed_fifo : bool;
    conc : (module Nbq_core.Queue_intf.CONC);
    probed : probed_builder option;
        (** [None]: probed/traced creation degrades to the shallow
            retry/latency wrapper. *)
    shards : int list;
        (** Derived ["<name>-shard<N>"] rows, one per element. *)
    shard_impl : (int -> impl) option;
        (** Native sharded composition overriding the generic facade. *)
    blocking : bool;
        (** Derive a ["<name>-blocking"] row: plain ops are
            [Queue_intf.Blocking_hooked]'s budget-0 (wake-issuing)
            attempts, [*_until] ops its park-based paths. *)
  }

  val v :
    ?classification:family ->
    ?bounded_delay_assumption:bool ->
    ?relaxed_fifo:bool ->
    ?probed:probed_builder ->
    ?shards:int list ->
    ?shard_impl:(int -> impl) ->
    ?blocking:bool ->
    string ->
    (module Nbq_core.Queue_intf.CONC) ->
    t
  (** [v name conc] with [classification] defaulting to [Array_based],
      the flags to [false], and no derived rows. *)
end

val register_family : Family.t -> impl list
(** The rows a family publishes: base, then one per [shards] entry, then
    the blocking row if requested.  Row names follow the registry's
    conventions (["<name>"], ["<name>-shard<N>"], ["<name>-blocking"]). *)

val all : impl list
(** Every registered implementation (concurrent ones first). *)

val concurrent : impl list
(** [all] minus the sequential ring. *)

val find : string -> impl
(** Lookup by [name]; raises [Invalid_argument] with a message listing the
    valid names. *)

val names : unit -> string list

val of_conc :
  name:string ->
  family:family ->
  ?bounded_delay_assumption:bool ->
  ?relaxed_fifo:bool ->
  (module Nbq_core.Queue_intf.CONC) ->
  impl
(** Wrap any {!Nbq_core.Queue_intf.CONC} implementation.
    [bounded_delay_assumption] and [relaxed_fifo] default to [false]. *)

val custom :
  name:string ->
  family:family ->
  ?bounded_delay_assumption:bool ->
  ?bounded:bool ->
  (capacity:int -> instance) ->
  impl
(** Build an impl from a bare instance constructor (ad-hoc experiment
    queues, e.g. the ablation binaries).  [create_probed] degrades to the
    uninstrumented [create]. *)

val basic_instance :
  ?probe:(module Nbq_primitives.Probe.S) ->
  enqueue:(payload -> bool) ->
  dequeue:(unit -> payload option) ->
  length:(unit -> int) ->
  unit ->
  instance
(** Build an {!instance} from single-item operations; the batch fields
    loop over them, the [*_until] fields park on a fresh eventcount pair.
    [probe] wires the wait-layer events ([wait_park] / [wait_wake] /
    [wait_cancel]) of those eventcounts, e.g. [Nbq_obs.Metrics.probe]. *)

val sharded_evequoz_cas : shards:int -> impl
(** The native sharded composition over the paper's CAS ring with its
    amortized batch runs — the same construction as the registered
    ["evequoz-cas-shard4"/"evequoz-cas-shard8"] rows, at any shard count.
    One closure layer cheaper than {!sharded} applied to the
    ["evequoz-cas"] row, so sweeps should prefer it. *)

val sharded : shards:int -> impl -> impl
(** [sharded ~shards impl] is [impl] behind an [Nbq_scale.Sharded]
    facade: [shards] independent instances of [impl] (each sized
    [capacity / shards], rounded up) with per-domain affinity and
    work-stealing.  The result is named ["<name>-shard<N>"] and marked
    [relaxed_fifo].  Probed creation shards probed inner instances, so
    inner-queue events still reach the hub (steals are only counted for
    the registered [evequoz-cas-shard*] rows, whose probe is wired into
    the sharding layer itself). *)
