module Queue_intf = Nbq_core.Queue_intf
module EC = Nbq_wait.Eventcount

type payload = { tag : int }

type instance = {
  enqueue : payload -> bool;
  dequeue : unit -> payload option;
  enqueue_batch : payload array -> int;
  dequeue_batch : int -> payload list;
  length : unit -> int;
  enqueue_until : deadline:float -> payload -> bool;
  dequeue_until : deadline:float -> payload option;
}

type family =
  | Array_based
  | Link_based
  | Lock_based
  | Sequential

type impl = {
  name : string;
  family : family;
  bounded : bool;
  bounded_delay_assumption : bool;
  relaxed_fifo : bool;
  create : capacity:int -> instance;
  create_probed : metrics:Nbq_obs.Metrics.t -> capacity:int -> instance;
      (** Like [create], but with the queue's operations feeding the given
          metrics hub; Evéquoz queues are rebuilt with probes inside the
          algorithm ({!Nbq_obs.Instrumented.deep}), everything else gets
          the shallow retry/latency wrapper. *)
  create_traced :
    metrics:Nbq_obs.Metrics.t option ->
    tracer:Nbq_trace.Recorder.t ->
    capacity:int ->
    instance;
      (** Like [create_probed] but additionally feeding the flight
          recorder: sampled operation spans around every public op, and —
          for the Evéquoz queues and the native sharded rows — the
          recorder's probe composed with the metrics probe inside the
          algorithm's functor seams, so one run produces counters and a
          trace from the same hooks. *)
}

(* Deadline-based blocking (the [*_until] fields) rides on a pair of
   eventcounts per instance: block on one, wake the other on success.  The
   plain [enqueue]/[dequeue] closures are left un-wrapped — they stay on
   the zero-overhead hot path the benchmarks measure — so wakes flow only
   between [*_until] callers; a parked [*_until] racing a plain-op peer is
   covered by the wait layer's bounded-park backstop instead of a prompt
   wake (DESIGN.md §10). *)
let until_ops ?probe ~enqueue ~dequeue () =
  let mk () =
    match probe with
    | None -> EC.create ()
    | Some (module P : Nbq_primitives.Probe.S) ->
        EC.create ~on_park:P.wait_park ~on_wake:P.wait_wake
          ~on_cancel:P.wait_cancel ()
  in
  let not_empty = mk () and not_full = mk () in
  let enqueue_until ~deadline p =
    match
      EC.await ~deadline not_full (fun () ->
          if enqueue p then Some () else None)
    with
    | `Ok () ->
        ignore (EC.wake_one not_empty : bool);
        true
    | `Timeout -> false
  and dequeue_until ~deadline =
    match EC.await ~deadline not_empty dequeue with
    | `Ok x ->
        ignore (EC.wake_one not_full : bool);
        Some x
    | `Timeout -> None
  in
  (enqueue_until, dequeue_until)

let basic_instance ?probe ~enqueue ~dequeue ~length () =
  let enqueue_until, dequeue_until = until_ops ?probe ~enqueue ~dequeue () in
  {
    enqueue;
    dequeue;
    length;
    enqueue_batch =
      (fun items ->
        let n = Array.length items in
        let i = ref 0 in
        while !i < n && enqueue items.(!i) do incr i done;
        !i);
    dequeue_batch =
      (fun k ->
        let rec go acc left =
          if left <= 0 then List.rev acc
          else
            match dequeue () with
            | Some x -> go (x :: acc) (left - 1)
            | None -> List.rev acc
        in
        go [] k);
    enqueue_until;
    dequeue_until;
  }

(* Facade-level tracing for instances with no CONC module to wrap (custom
   impls, sharded facades): spans around the plain-operation closures.
   The [*_until] closures stay unwrapped — their wait-layer events arrive
   through the composed probe instead, and a parked span would dwarf the
   operations around it. *)
let traced_instance tr (inst : instance) =
  let module R = Nbq_trace.Recorder in
  let mask = R.sample_mask tr in
  (* Same racy shared sampling ticks as the functor wrapper (lost updates
     only perturb the rate), checked before anything else so a non-sampled
     operation — the common case — pays one ref increment and a mask test;
     even the armed read waits for the 1-in-[sample] branch. *)
  let enq_tick = ref 0 and deq_tick = ref 0 in
  let sampled tick =
    let n = !tick + 1 in
    tick := n;
    n land mask = 0
  in
  {
    inst with
    enqueue =
      (fun p ->
        if not (sampled enq_tick) then inst.enqueue p
        else
          match R.span_open tr Nbq_trace.Record.Enq ~arg:0 with
          | None -> inst.enqueue p
          | Some ring ->
              let ok = inst.enqueue p in
              R.span_close tr ring Nbq_trace.Record.Enq ~arg:(Bool.to_int ok);
              ok);
    dequeue =
      (fun () ->
        if not (sampled deq_tick) then inst.dequeue ()
        else
          match R.span_open tr Nbq_trace.Record.Deq ~arg:0 with
          | None -> inst.dequeue ()
          | Some ring ->
              let r = inst.dequeue () in
              R.span_close tr ring Nbq_trace.Record.Deq
                ~arg:(Bool.to_int (r <> None));
              r);
    enqueue_batch =
      (fun items ->
        if not (sampled enq_tick) then inst.enqueue_batch items
        else
          match
            R.span_open tr Nbq_trace.Record.Enq_batch
              ~arg:(Array.length items)
          with
          | None -> inst.enqueue_batch items
          | Some ring ->
              let n = inst.enqueue_batch items in
              R.span_close tr ring Nbq_trace.Record.Enq_batch ~arg:n;
              n);
    dequeue_batch =
      (fun k ->
        if not (sampled deq_tick) then inst.dequeue_batch k
        else
          match R.span_open tr Nbq_trace.Record.Deq_batch ~arg:k with
          | None -> inst.dequeue_batch k
          | Some ring ->
              let got = inst.dequeue_batch k in
              R.span_close tr ring Nbq_trace.Record.Deq_batch
                ~arg:(List.length got);
              got);
  }

let instance_of ?probe (module Q : Queue_intf.CONC) ~capacity =
  let q = Q.create ~capacity in
  let enqueue p = Q.try_enqueue q p and dequeue () = Q.try_dequeue q in
  let enqueue_until, dequeue_until = until_ops ?probe ~enqueue ~dequeue () in
  {
    enqueue;
    dequeue;
    enqueue_batch = (fun items -> Q.try_enqueue_batch q items);
    dequeue_batch = (fun k -> Q.try_dequeue_batch q k);
    length = (fun () -> Q.length q);
    enqueue_until;
    dequeue_until;
  }

let of_conc ~name ~family ?(bounded_delay_assumption = false)
    ?(relaxed_fifo = false) (module Q : Queue_intf.CONC) =
  {
    name;
    family;
    bounded = Q.bounded;
    bounded_delay_assumption;
    relaxed_fifo;
    create = (fun ~capacity -> instance_of (module Q) ~capacity);
    create_probed =
      (fun ~metrics ~capacity ->
        instance_of
          ~probe:(Nbq_obs.Metrics.probe metrics)
          (Nbq_obs.Instrumented.deep metrics ~name (module Q))
          ~capacity);
    create_traced =
      (fun ~metrics ~tracer ~capacity ->
        instance_of
          ~probe:(Nbq_trace.Instrument.probe ?metrics tracer)
          (Nbq_trace.Instrument.deep ?metrics tracer ~name (module Q))
          ~capacity);
  }

let custom ~name ~family ?(bounded_delay_assumption = false) ?(bounded = false)
    create =
  {
    name;
    family;
    bounded;
    bounded_delay_assumption;
    relaxed_fifo = false;
    create;
    (* No CONC module to wrap: probed creation falls back to the plain
       instance — callers still get workload-level retry counts.  Tracing
       wraps the bare closures, so custom impls still get op spans. *)
    create_probed = (fun ~metrics:_ -> create);
    create_traced =
      (fun ~metrics:_ ~tracer ~capacity ->
        traced_instance tracer (create ~capacity));
  }

module Cap = Queue_intf.Capability
module Evequoz_llsc_conc = Queue_intf.Make (Cap.Bounded (Nbq_core.Evequoz_llsc))
module Evequoz_llsc_weak_conc =
  Queue_intf.Make (Cap.Bounded (Nbq_core.Evequoz_llsc.On_weak_cells))
module Evequoz_cas_conc =
  Queue_intf.Make (Cap.Bounded_batch (Nbq_core.Evequoz_cas))
module Evequoz_bw_conc =
  Queue_intf.Make (Cap.Bounded_batch (Nbq_core.Evequoz_bw))
module Shann_conc = Queue_intf.Make (Cap.Bounded (Nbq_baselines.Shann))
module Tz_conc = Queue_intf.Make (Cap.Bounded (Nbq_baselines.Tsigas_zhang))
module Valois_conc = Queue_intf.Make (Cap.Bounded (Nbq_baselines.Valois))
module Lock_conc = Queue_intf.Make (Cap.Bounded (Nbq_baselines.Lock_queue))
module Seq_conc = Queue_intf.Make (Cap.Bounded (Nbq_baselines.Seq_ring))
module Ms_gc_conc =
  Queue_intf.Make (Cap.Unbounded (Nbq_baselines.Michael_scott))
module Ms_hp_sorted_conc =
  Queue_intf.Make (Cap.Unbounded (Nbq_baselines.Ms_hazard.Sorted))
module Ms_hp_unsorted_conc =
  Queue_intf.Make (Cap.Unbounded (Nbq_baselines.Ms_hazard.Unsorted))
module Ms_ebr_conc = Queue_intf.Make (Cap.Unbounded (Nbq_baselines.Ms_epoch.Conc))
module Ms_doherty_conc =
  Queue_intf.Make (Cap.Unbounded (Nbq_baselines.Ms_doherty.Conc))
module Two_lock_conc =
  Queue_intf.Make (Cap.Unbounded (Nbq_baselines.Two_lock_queue))
module Hw_conc = Queue_intf.Make (Cap.Unbounded (Nbq_baselines.Herlihy_wing))
module Lms_conc =
  Queue_intf.Make (Cap.Unbounded (Nbq_baselines.Ladan_mozes_shavit))

(* --- Sharded front-ends (Nbq_scale.Sharded) ----------------------------

   The facade relaxes global FIFO to per-shard FIFO ([relaxed_fifo]), so
   the battery skips its exact-linearizability cases for these rows and
   runs the relaxed suite (conservation, per-shard order, length bounds)
   instead. *)

(* Sharded instances block through the facade's own waitable layer (per-
   shard eventcounts, home-first wake sweep) rather than the generic
   single-pair [until_ops], so a wake goes to the shard where the steal
   sweep would look for the waiter's item. *)
let sharded_instance ?probe ~(q : payload Nbq_scale.Sharded.t) ~enqueue
    ~dequeue ~enqueue_batch ~dequeue_batch ~length () =
  let w =
    match probe with
    | None -> Nbq_scale.Sharded.waitable q
    | Some (module P : Nbq_primitives.Probe.S) ->
        Nbq_scale.Sharded.waitable ~on_park:P.wait_park ~on_wake:P.wait_wake
          ~on_cancel:P.wait_cancel q
  in
  {
    enqueue;
    dequeue;
    enqueue_batch;
    dequeue_batch;
    length;
    enqueue_until =
      (fun ~deadline p ->
        match Nbq_scale.Sharded.enqueue_until w ~deadline p with
        | `Ok -> true
        | `Timeout -> false);
    dequeue_until =
      (fun ~deadline ->
        match Nbq_scale.Sharded.dequeue_until w ~deadline with
        | `Ok x -> Some x
        | `Timeout -> None);
  }

(* Shared tail for the native sharded compositions below: build the
   instance from any CONC whose queue type is the sharded facade's (the
   equation lets [sharded_instance] reach the facade's waitable layer). *)
module Sharded_tail
    (S : Queue_intf.CONC with type 'a t = 'a Nbq_scale.Sharded.t) =
struct
  let make ?probe ~capacity () =
    let q = S.create ~capacity in
    sharded_instance ?probe ~q
      ~enqueue:(fun p -> S.try_enqueue q p)
      ~dequeue:(fun () -> S.try_dequeue q)
      ~enqueue_batch:(fun items -> S.try_enqueue_batch q items)
      ~dequeue_batch:(fun k -> S.try_dequeue_batch q k)
      ~length:(fun () -> S.length q)
      ()
end

let sharded_evequoz_cas ~shards =
  let name = "evequoz-cas-shard" ^ string_of_int shards in
  let module N = struct
    let shards = shards
  end in
  let create ~capacity =
    let module S = Nbq_scale.Sharded.Evequoz_cas (N) in
    let q = S.create ~capacity in
    sharded_instance ~q
      ~enqueue:(fun p -> S.try_enqueue q p)
      ~dequeue:(fun () -> S.try_dequeue q)
      ~enqueue_batch:(fun items -> S.try_enqueue_batch q items)
      ~dequeue_batch:(fun k -> S.try_dequeue_batch q k)
      ~length:(fun () -> S.length q)
      ()
  in
  (* Deep-probed sharded composition: the hub's probe is plugged into the
     inner CAS rings (sc_fail, helping, tag traffic), the sharding layer
     (shard_steal) and the waitable layer (wait_park/wake/cancel), then
     the shallow wrapper adds retries/latency.  Lives here, not in
     nbq_obs, because nbq_scale sits above nbq_obs. *)
  let create_probed ~metrics ~capacity =
    let probe = Nbq_obs.Metrics.probe metrics in
    let module P = (val probe) in
    let module Core =
      Nbq_core.Evequoz_cas.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
    in
    let module R = Nbq_core.Evequoz_cas.With_implicit_handles (Core) in
    let module Ring =
      Queue_intf.Make
        (Queue_intf.Capability.Bounded_batch (struct
          include R

          (* Match the unprobed composition: the ring's amortized batch
             runs. *)
          let try_enqueue_batch = R.try_enqueue_batch_runs
          let try_dequeue_batch = R.try_dequeue_batch_runs
        end))
    in
    let module S0 = Nbq_scale.Sharded.Make_probed (N) (P) (Ring) in
    let module M = struct
      let metrics = metrics
    end in
    let module S = Nbq_obs.Instrumented.Make (M) (S0) in
    let module T = Sharded_tail (S) in
    T.make ~probe ~capacity ()
  in
  (* Traced creation mirrors the probed composition with the recorder's
     probe composed in (counters too, when a hub is given), then adds the
     span wrapper over the whole facade. *)
  let create_traced ~metrics ~tracer ~capacity =
    let probe = Nbq_trace.Instrument.probe ?metrics tracer in
    let module P = (val probe) in
    let module Core =
      Nbq_core.Evequoz_cas.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
    in
    let module R = Nbq_core.Evequoz_cas.With_implicit_handles (Core) in
    let module Ring =
      Queue_intf.Make
        (Queue_intf.Capability.Bounded_batch (struct
          include R

          let try_enqueue_batch = R.try_enqueue_batch_runs
          let try_dequeue_batch = R.try_dequeue_batch_runs
        end))
    in
    let module S0 = Nbq_scale.Sharded.Make_probed (N) (P) (Ring) in
    let module T = struct
      let tracer = tracer
    end in
    match metrics with
    | Some m ->
      let module M = struct
        let metrics = m
      end in
      let module S1 = Nbq_obs.Instrumented.Make (M) (S0) in
      let module S = Nbq_trace.Instrument.Wrap (T) (S1) in
      let module Tail = Sharded_tail (S) in
      Tail.make ~probe ~capacity ()
    | None ->
      let module S = Nbq_trace.Instrument.Wrap (T) (S0) in
      let module Tail = Sharded_tail (S) in
      Tail.make ~probe ~capacity ()
  in
  {
    name;
    family = Array_based;
    bounded = true;
    bounded_delay_assumption = false;
    relaxed_fifo = true;
    create;
    create_probed;
    create_traced;
  }

let sharded ~shards (base : impl) : impl =
  if shards < 1 then invalid_arg "Registry.sharded: shards < 1";
  let wrap ?probe create_inner ~capacity =
    let per = max 1 ((capacity + shards - 1) / shards) in
    let t =
      Nbq_scale.Sharded.create ~shards (fun _ ->
          let inst = create_inner ~capacity:per in
          Nbq_scale.Sharded.ops ~enq:inst.enqueue ~deq:inst.dequeue
            ~len:inst.length ~enq_batch:inst.enqueue_batch
            ~deq_batch:inst.dequeue_batch)
    in
    sharded_instance ?probe ~q:t
      ~enqueue:(fun p -> Nbq_scale.Sharded.try_enqueue t p)
      ~dequeue:(fun () -> Nbq_scale.Sharded.try_dequeue t)
      ~enqueue_batch:(fun items -> Nbq_scale.Sharded.try_enqueue_batch t items)
      ~dequeue_batch:(fun k -> Nbq_scale.Sharded.try_dequeue_batch t k)
      ~length:(fun () -> Nbq_scale.Sharded.length t)
      ()
  in
  {
    base with
    name = base.name ^ "-shard" ^ string_of_int shards;
    relaxed_fifo = true;
    create = (fun ~capacity -> wrap base.create ~capacity);
    create_probed =
      (fun ~metrics ->
        wrap
          ~probe:(Nbq_obs.Metrics.probe metrics)
          (base.create_probed ~metrics));
    (* Shard probed (not traced) inner instances and put the span wrapper
       on the facade: one span per facade operation, not one per shard
       probe, with wait events arriving through the composed probe. *)
    create_traced =
      (fun ~metrics ~tracer ~capacity ->
        let inner =
          match metrics with
          | Some m -> base.create_probed ~metrics:m
          | None -> base.create
        in
        traced_instance tracer
          (wrap ~probe:(Nbq_trace.Instrument.probe ?metrics tracer) inner
             ~capacity));
  }

(* --- Family descriptors --------------------------------------------------

   One record per algorithm family; [register_family] derives every row
   the registry publishes for it — base (with deep probed/traced creation
   when a [probed] builder is given), "-shardN" facades, and a
   "-blocking" row over [Queue_intf.Blocking_hooked].  Adding an
   algorithm is one [Family.v] entry; the old hand-built row list (and
   its name-dispatched [Instrumented.deep] plumbing) is gone, but every
   previously registered row name is preserved. *)

module Family = struct
  type probed_builder =
    (module Nbq_primitives.Probe.S) -> (module Queue_intf.CONC)

  type t = {
    name : string;
    classification : family;
    bounded_delay_assumption : bool;
    relaxed_fifo : bool;
    conc : (module Queue_intf.CONC);
    probed : probed_builder option;
        (** Rebuild the queue with a probe threaded through its functor
            seams (deep instrumentation); [None] means only the shallow
            retry/latency wrapper is available. *)
    shards : int list;
        (** Derived ["<name>-shard<N>"] rows, one per element. *)
    shard_impl : (int -> impl) option;
        (** Native sharded composition overriding the generic facade for
            the [shards] rows (e.g. the evequoz-cas ring-with-batch-runs
            build). *)
    blocking : bool;
        (** Derive a ["<name>-blocking"] row whose [*_until] operations
            park through [Queue_intf.Blocking_hooked] and whose plain
            operations are its budget-0 (wake-issuing) attempts. *)
  }

  let v ?(classification = Array_based) ?(bounded_delay_assumption = false)
      ?(relaxed_fifo = false) ?probed ?(shards = []) ?shard_impl
      ?(blocking = false) name conc =
    {
      name;
      classification;
      bounded_delay_assumption;
      relaxed_fifo;
      conc;
      probed;
      shards;
      shard_impl;
      blocking;
    }
end

(* The base row.  With a [probed] builder, probed/traced creation rebuilds
   the functor stack with the metrics/trace probe plugged into the inner
   algorithm (sc_fail, helping, tag traffic, faa cycles) and then wraps
   the shallow retry/latency (and span) layers — the shape the segmented
   rows pioneered, now shared by every deep-instrumented family. *)
let base_row (f : Family.t) : impl =
  let base_impl =
    of_conc ~name:f.name ~family:f.classification
      ~bounded_delay_assumption:f.bounded_delay_assumption
      ~relaxed_fifo:f.relaxed_fifo f.conc
  in
  match f.probed with
  | None -> base_impl
  | Some probed_conc ->
      let create_probed ~metrics ~capacity =
        let probe = Nbq_obs.Metrics.probe metrics in
        let module W = (val probed_conc probe : Queue_intf.CONC) in
        let module M = struct
          let metrics = metrics
        end in
        let module I = Nbq_obs.Instrumented.Make (M) (W) in
        instance_of ~probe (module I) ~capacity
      in
      let create_traced ~metrics ~tracer ~capacity =
        let probe = Nbq_trace.Instrument.probe ?metrics tracer in
        let module W = (val probed_conc probe : Queue_intf.CONC) in
        let module T = struct
          let tracer = tracer
        end in
        match metrics with
        | Some m ->
            let module M = struct
              let metrics = m
            end in
            let module I1 = Nbq_obs.Instrumented.Make (M) (W) in
            let module I = Nbq_trace.Instrument.Wrap (T) (I1) in
            instance_of ~probe (module I) ~capacity
        | None ->
            let module I = Nbq_trace.Instrument.Wrap (T) (W) in
            instance_of ~probe (module I) ~capacity
      in
      { base_impl with create_probed; create_traced }

(* The "-blocking" row: plain operations are the blocking wrapper's
   budget-0 attempts (same full/empty semantics as the try ops, but every
   success issues a wake), and the [*_until] operations are its real
   park-based paths — so the row exercises [Blocking_hooked]'s
   eventcounts end to end while staying battery-compatible. *)
let blocking_row (f : Family.t) : impl =
  let name = f.name ^ "-blocking" in
  let instance_of_blocking ?probe (module Q : Queue_intf.CONC) ~capacity =
    let module P =
      (val match probe with
           | Some p -> p
           | None -> (module Nbq_primitives.Probe.Noop : Nbq_primitives.Probe.S))
    in
    let module B =
      Queue_intf.Blocking_hooked (P) (Nbq_primitives.Fault.Noop) (Q)
    in
    let b = B.create ~capacity in
    let enqueue p =
      match B.enqueue_budget b ~retries:0 p with
      | `Ok -> true
      | `Timeout -> false
    in
    let dequeue () =
      match B.dequeue_budget b ~retries:0 with
      | `Ok x -> Some x
      | `Timeout -> None
    in
    {
      enqueue;
      dequeue;
      enqueue_batch =
        (fun items ->
          let n = Array.length items in
          let i = ref 0 in
          while !i < n && enqueue items.(!i) do incr i done;
          !i);
      dequeue_batch =
        (fun k ->
          let rec go acc left =
            if left <= 0 then List.rev acc
            else
              match dequeue () with
              | Some x -> go (x :: acc) (left - 1)
              | None -> List.rev acc
          in
          go [] k);
      length = (fun () -> Q.length (B.queue b));
      enqueue_until =
        (fun ~deadline p ->
          match B.enqueue_until b ~deadline p with
          | `Ok -> true
          | `Timeout -> false);
      dequeue_until =
        (fun ~deadline ->
          match B.dequeue_until b ~deadline with
          | `Ok x -> Some x
          | `Timeout -> None);
    }
  in
  let create ~capacity = instance_of_blocking f.conc ~capacity in
  let create_probed ~metrics ~capacity =
    let probe = Nbq_obs.Metrics.probe metrics in
    let conc =
      match f.probed with Some pb -> pb probe | None -> f.conc
    in
    let module W = (val conc) in
    let module M = struct
      let metrics = metrics
    end in
    let module I = Nbq_obs.Instrumented.Make (M) (W) in
    instance_of_blocking ~probe (module I) ~capacity
  in
  let create_traced ~metrics ~tracer ~capacity =
    let inner =
      match metrics with
      | Some m -> create_probed ~metrics:m
      | None -> create
    in
    traced_instance tracer (inner ~capacity)
  in
  let module Q = (val f.conc : Queue_intf.CONC) in
  {
    name;
    family = f.classification;
    bounded = Q.bounded;
    bounded_delay_assumption = f.bounded_delay_assumption;
    relaxed_fifo = f.relaxed_fifo;
    create;
    create_probed;
    create_traced;
  }

let register_family (f : Family.t) : impl list =
  let base = base_row f in
  let shard_rows =
    List.map
      (fun n ->
        match f.shard_impl with
        | Some mk -> mk n
        | None -> sharded ~shards:n base)
      f.shards
  in
  let blocking_rows = if f.blocking then [ blocking_row f ] else [] in
  (base :: shard_rows) @ blocking_rows

(* --- Deep-probe builders for the instrumentable families --------------- *)

let probed_evequoz_cas probe =
  let module P = (val probe : Nbq_primitives.Probe.S) in
  let module Core =
    Nbq_core.Evequoz_cas.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
  in
  let module Q = Nbq_core.Evequoz_cas.With_implicit_handles (Core) in
  let module C = Queue_intf.Make (Cap.Bounded_batch (Q)) in
  (module C : Queue_intf.CONC)

let probed_evequoz_bw probe =
  let module P = (val probe : Nbq_primitives.Probe.S) in
  let module Core =
    Nbq_core.Evequoz_bw.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
  in
  let module Q = struct
    include Nbq_core.Evequoz_cas.With_implicit_handles (Core)

    let name = "evequoz-bw"
  end in
  let module C = Queue_intf.Make (Cap.Bounded_batch (Q)) in
  (module C : Queue_intf.CONC)

let probed_evequoz_llsc probe =
  let module P = (val probe : Nbq_primitives.Probe.S) in
  let module Cell =
    Nbq_primitives.Llsc.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
  in
  let module Q = Nbq_core.Evequoz_llsc.Make_probed (Cell) (P) in
  let module C = Queue_intf.Make (Cap.Bounded (Q)) in
  (module C : Queue_intf.CONC)

(* Segmented rows: [capacity] becomes the *segment* capacity; the queue
   itself never rejects (Link_based, unbounded). *)
let probed_evequoz_seg probe =
  let module P = (val probe : Nbq_primitives.Probe.S) in
  let module Core =
    Nbq_segmented.Segmented.Make_probed_cas (Nbq_primitives.Atomic_intf.Real) (P)
  in
  let module W =
    Nbq_segmented.Segmented.Conc
      (struct
        let name = "evequoz-seg"
      end)
      (Core)
  in
  (module W : Queue_intf.CONC)

let probed_evequoz_seg_bw probe =
  let module P = (val probe : Nbq_primitives.Probe.S) in
  let module Core =
    Nbq_segmented.Segmented.Make_probed_bw (Nbq_primitives.Atomic_intf.Real) (P)
  in
  let module W =
    Nbq_segmented.Segmented.Conc
      (struct
        let name = "evequoz-seg-bw"
      end)
      (Core)
  in
  (module W : Queue_intf.CONC)

(* --- SCQ (Nikolaev, arXiv:1908.04511) ----------------------------------- *)

module Scq_default = Nbq_scq.Scq.Make (Nbq_primitives.Atomic_intf.Real)
module Scq_wcq_default = Nbq_scq.Scq.Make_wcq (Nbq_primitives.Atomic_intf.Real)
module Scq_conc = Queue_intf.Make (Cap.Bounded (Scq_default.Scq))
module Scqd_conc = Queue_intf.Make (Cap.Bounded (Scq_default.Scqd))
module Scq_wcq_conc = Queue_intf.Make (Cap.Bounded (Scq_wcq_default.Scq))

let probed_scq probe =
  let module P = (val probe : Nbq_primitives.Probe.S) in
  let module S = Nbq_scq.Scq.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
  in
  let module C = Queue_intf.Make (Cap.Bounded (S.Scq)) in
  (module C : Queue_intf.CONC)

let probed_scqd probe =
  let module P = (val probe : Nbq_primitives.Probe.S) in
  let module S = Nbq_scq.Scq.Make_probed (Nbq_primitives.Atomic_intf.Real) (P)
  in
  let module C = Queue_intf.Make (Cap.Bounded (S.Scqd)) in
  (module C : Queue_intf.CONC)

let probed_scq_wcq probe =
  let module P = (val probe : Nbq_primitives.Probe.S) in
  let module S =
    Nbq_scq.Scq.Make_wcq_probed (Nbq_primitives.Atomic_intf.Real) (P)
  in
  let module C = Queue_intf.Make (Cap.Bounded (S.Scq)) in
  (module C : Queue_intf.CONC)

(* --- The registered families -------------------------------------------- *)

let families : Family.t list =
  [
    Family.v "evequoz-llsc" ~probed:probed_evequoz_llsc
      (module Evequoz_llsc_conc);
    (* Native sharded composition (ring with amortized batch runs, probe
       wired into the sharding layer itself) overrides the generic facade
       for the shard4/shard8 rows. *)
    Family.v "evequoz-cas" ~probed:probed_evequoz_cas ~shards:[ 4; 8 ]
      ~shard_impl:(fun shards -> sharded_evequoz_cas ~shards)
      (module Evequoz_cas_conc);
    (* Blelloch-Wei behind the generic sharded facade: deep-probed inner
       rings via the row's own create_probed. *)
    Family.v "evequoz-bw" ~probed:probed_evequoz_bw ~shards:[ 4 ]
      (module Evequoz_bw_conc);
    Family.v "evequoz-llsc-weak" (module Evequoz_llsc_weak_conc);
    Family.v "shann" (module Shann_conc);
    Family.v "tsigas-zhang" (module Tz_conc);
    Family.v "valois-dcas" (module Valois_conc);
    Family.v "ms-gc" ~classification:Link_based (module Ms_gc_conc);
    Family.v "ms-hp-sorted" ~classification:Link_based
      (module Ms_hp_sorted_conc);
    Family.v "ms-hp-unsorted" ~classification:Link_based
      (module Ms_hp_unsorted_conc);
    Family.v "ms-ebr" ~classification:Link_based (module Ms_ebr_conc);
    Family.v "ms-doherty" ~classification:Link_based (module Ms_doherty_conc);
    Family.v "herlihy-wing" (module Hw_conc);
    Family.v "lms-optimistic" ~classification:Link_based (module Lms_conc);
    Family.v "two-lock" ~classification:Lock_based (module Two_lock_conc);
    Family.v "lock-ring" ~classification:Lock_based (module Lock_conc);
    (* Segmented shards grow instead of shedding: the facade keeps its
       relaxed-FIFO contract but [try_enqueue] never sheds to a steal
       sweep on "full" — a shard's ring chain just grows.  The 1-shard
       row is the facade-overhead control: same code path, no relaxation
       benefit. *)
    Family.v "evequoz-seg" ~classification:Link_based
      ~probed:probed_evequoz_seg ~shards:[ 1; 4 ]
      (module Nbq_segmented.Segmented.Cas);
    Family.v "evequoz-seg-bw" ~classification:Link_based
      ~probed:probed_evequoz_seg_bw
      (module Nbq_segmented.Segmented.Bw);
    (* SCQ: plain, SCQD index-queue pairing, and the wCQ-style helping
       variant; the base row also derives a shard facade and a blocking
       row (ROADMAP item on parking integration rides on the latter). *)
    Family.v "scq" ~probed:probed_scq ~shards:[ 4 ] ~blocking:true
      (module Scq_conc);
    Family.v "scq-d" ~probed:probed_scqd (module Scqd_conc);
    Family.v "scq-wcq" ~probed:probed_scq_wcq (module Scq_wcq_conc);
    Family.v "seq-ring" ~classification:Sequential (module Seq_conc);
  ]

let all = List.concat_map register_family families

let concurrent =
  List.filter (fun i -> i.family <> Sequential) all

let names () = List.map (fun i -> i.name) all

let find name =
  match List.find_opt (fun i -> i.name = name) all with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "unknown queue %S; valid names: %s" name
           (String.concat ", " (names ())))
