module Queue_intf = Nbq_core.Queue_intf

type payload = { tag : int }

type instance = {
  enqueue : payload -> bool;
  dequeue : unit -> payload option;
  length : unit -> int;
}

type family =
  | Array_based
  | Link_based
  | Lock_based
  | Sequential

type impl = {
  name : string;
  family : family;
  bounded : bool;
  bounded_delay_assumption : bool;
  create : capacity:int -> instance;
  create_probed : metrics:Nbq_obs.Metrics.t -> capacity:int -> instance;
      (** Like [create], but with the queue's operations feeding the given
          metrics hub; Evéquoz queues are rebuilt with probes inside the
          algorithm ({!Nbq_obs.Instrumented.deep}), everything else gets
          the shallow retry/latency wrapper. *)
}

let instance_of (module Q : Queue_intf.CONC) ~capacity =
  let q = Q.create ~capacity in
  {
    enqueue = (fun p -> Q.try_enqueue q p);
    dequeue = (fun () -> Q.try_dequeue q);
    length = (fun () -> Q.length q);
  }

let of_conc ~name ~family ?(bounded_delay_assumption = false)
    (module Q : Queue_intf.CONC) =
  {
    name;
    family;
    bounded = Q.bounded;
    bounded_delay_assumption;
    create = (fun ~capacity -> instance_of (module Q) ~capacity);
    create_probed =
      (fun ~metrics ~capacity ->
        instance_of (Nbq_obs.Instrumented.deep metrics ~name (module Q)) ~capacity);
  }

let custom ~name ~family ?(bounded_delay_assumption = false) ?(bounded = false)
    create =
  {
    name;
    family;
    bounded;
    bounded_delay_assumption;
    create;
    (* No CONC module to wrap: probed creation falls back to the plain
       instance — callers still get workload-level retry counts. *)
    create_probed = (fun ~metrics:_ -> create);
  }

module Evequoz_llsc_conc = Queue_intf.Of_bounded (Nbq_core.Evequoz_llsc)
module Evequoz_llsc_weak_conc =
  Queue_intf.Of_bounded (Nbq_core.Evequoz_llsc.On_weak_cells)
module Evequoz_cas_conc = Queue_intf.Of_bounded (Nbq_core.Evequoz_cas)
module Shann_conc = Queue_intf.Of_bounded (Nbq_baselines.Shann)
module Tz_conc = Queue_intf.Of_bounded (Nbq_baselines.Tsigas_zhang)
module Valois_conc = Queue_intf.Of_bounded (Nbq_baselines.Valois)
module Lock_conc = Queue_intf.Of_bounded (Nbq_baselines.Lock_queue)
module Seq_conc = Queue_intf.Of_bounded (Nbq_baselines.Seq_ring)
module Ms_gc_conc = Queue_intf.Of_unbounded (Nbq_baselines.Michael_scott)
module Ms_hp_sorted_conc =
  Queue_intf.Of_unbounded (Nbq_baselines.Ms_hazard.Sorted)
module Ms_hp_unsorted_conc =
  Queue_intf.Of_unbounded (Nbq_baselines.Ms_hazard.Unsorted)
module Ms_ebr_conc = Queue_intf.Of_unbounded (Nbq_baselines.Ms_epoch.Conc)
module Ms_doherty_conc = Queue_intf.Of_unbounded (Nbq_baselines.Ms_doherty.Conc)
module Two_lock_conc = Queue_intf.Of_unbounded (Nbq_baselines.Two_lock_queue)
module Hw_conc = Queue_intf.Of_unbounded (Nbq_baselines.Herlihy_wing)
module Lms_conc = Queue_intf.Of_unbounded (Nbq_baselines.Ladan_mozes_shavit)

let concurrent =
  [
    of_conc ~name:"evequoz-llsc" ~family:Array_based (module Evequoz_llsc_conc);
    of_conc ~name:"evequoz-cas" ~family:Array_based (module Evequoz_cas_conc);
    of_conc ~name:"evequoz-llsc-weak" ~family:Array_based
      (module Evequoz_llsc_weak_conc);
    of_conc ~name:"shann" ~family:Array_based (module Shann_conc);
    of_conc ~name:"tsigas-zhang" ~family:Array_based (module Tz_conc);
    of_conc ~name:"valois-dcas" ~family:Array_based (module Valois_conc);
    of_conc ~name:"ms-gc" ~family:Link_based (module Ms_gc_conc);
    of_conc ~name:"ms-hp-sorted" ~family:Link_based (module Ms_hp_sorted_conc);
    of_conc ~name:"ms-hp-unsorted" ~family:Link_based
      (module Ms_hp_unsorted_conc);
    of_conc ~name:"ms-ebr" ~family:Link_based (module Ms_ebr_conc);
    of_conc ~name:"ms-doherty" ~family:Link_based (module Ms_doherty_conc);
    of_conc ~name:"herlihy-wing" ~family:Array_based (module Hw_conc);
    of_conc ~name:"lms-optimistic" ~family:Link_based (module Lms_conc);
    of_conc ~name:"two-lock" ~family:Lock_based (module Two_lock_conc);
    of_conc ~name:"lock-ring" ~family:Lock_based (module Lock_conc);
  ]

let all = concurrent @ [ of_conc ~name:"seq-ring" ~family:Sequential (module Seq_conc) ]

let names () = List.map (fun i -> i.name) all

let find name =
  match List.find_opt (fun i -> i.name = name) all with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "unknown queue %S; valid names: %s" name
           (String.concat ", " (names ())))
