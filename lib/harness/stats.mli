(** Summary statistics over repeated benchmark runs.

    The paper reports "the average of 50 runs where each run is the mean
    time needed to complete the thread's iterations"; {!summarize} computes
    that mean plus dispersion measures so EXPERIMENTS.md can report
    stability. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1) *)
  min : float;
  max : float;
  median : float;
  p95 : float;  (** nearest-rank 95th percentile *)
  p99 : float;  (** nearest-rank 99th percentile *)
  p999 : float;  (** nearest-rank 99.9th percentile (= [max] for n < ~1000) *)
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on an empty list. *)

val mean : float list -> float

val normalize : base:float -> float -> float
(** [normalize ~base x] is [x /. base] — the Figure 6(c)/(d) transform. *)

val pp_summary : Format.formatter -> summary -> unit
