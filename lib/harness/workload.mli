(** The paper's synthetic benchmark workload (§6).

    Each thread performs [iterations] rounds of [enqueue_batch] enqueue
    operations followed by [dequeue_batch] dequeue operations; "a node
    allocation immediately precedes each enqueue operation, and each
    dequeued node is freed" — here a fresh {!Registry.payload} per enqueue,
    dropped on dequeue (link-based queues additionally recycle their
    internal nodes through their reclamation scheme, which is the cost
    under study).

    Enqueues that find the queue full spin-retry, as do dequeues that find
    it empty; with the batched pattern both are transient (every demanded
    item is eventually produced — the demand/production ledger can't
    deadlock, see the inline proof).  Retry counts are reported for the
    contention analysis. *)

type config = {
  iterations : int;      (** rounds per thread; paper: 100_000 *)
  enqueue_batch : int;   (** paper: 5 *)
  dequeue_batch : int;   (** paper: 5 *)
}

val paper_config : config
(** 100_000 × (5 enq + 5 deq) — the exact paper setting. *)

val scaled_config : scale:float -> config
(** [paper_config] with [iterations] scaled down for quick runs. *)

type thread_result = {
  seconds : float;       (** this thread's completion time *)
  full_retries : int;    (** enqueue attempts that hit a full queue *)
  empty_retries : int;   (** dequeue attempts that hit an empty queue *)
  items : int;
      (** Items moved: [iterations * (enqueue_batch + dequeue_batch)],
          counting every item exactly once per direction — a batch call
          that moves k items contributes k, never 1.  The numerator of
          every throughput figure. *)
}

val items_per_thread : config -> int
(** The [items] value either run function reports; exposed so tests can
    pin the accounting. *)

val run_thread :
  config -> thread:int -> Registry.instance -> thread_result
(** Execute the per-thread workload (call after the start barrier). *)

val run_thread_batched :
  config -> thread:int -> Registry.instance -> thread_result
(** The same item ledger issued through [enqueue_batch]/[dequeue_batch]:
    each round enqueues its [enqueue_batch] items as one batch call
    (retrying the unaccepted suffix) and dequeues its [dequeue_batch]
    demand in batch calls.  [items] equals {!run_thread}'s, so batched and
    single-op throughputs compare directly. *)

val min_capacity : config -> threads:int -> int
(** A capacity that the pattern can never overflow:
    [threads * enqueue_batch] outstanding items at most, padded. *)
