(** Lock-free eventcount: the bridge between the non-blocking queues and
    actually sleeping domains.

    An eventcount lets a thread wait for "the world changed" without
    spinning and without a lock around the condition.  It is two words of
    shared state — a {e sequence counter} that wakers bump, and a
    CAS-linked {e waiter stack} of published sleepers — plus the
    per-domain {!Parker} cells the waiters sleep on.  The protocol is the
    classic three-step one:

    + {!prepare_wait} publishes a waiter on the stack (and snapshots the
      sequence counter);
    + the caller {b re-checks its condition} — if it now holds, it
      {!cancel_wait}s and proceeds;
    + {!commit_wait} parks the domain until a waker signals the waiter,
      the sequence counter moves, or the deadline passes.

    {b Why no wakeup is ever lost} (DESIGN.md §10): the waiter's publish
    (step 1) and the waker's read of the waiter stack are both
    sequentially-consistent atomics, and each side writes before it reads
    — the waiter publishes {e then} re-checks the condition, the waker
    makes the condition true {e then} reads the stack.  Interleave them
    any way you like: either the waker sees the published waiter and
    signals it, or the waiter's re-check sees the condition already true
    and never sleeps.

    {b Why a crashed waker cannot strand a sleeper}: wakers bump the
    sequence counter {e before} touching the waiter stack, and parked
    waiters sleep in bounded slices (the {!Parker} ticker wakes them every
    millisecond) re-checking the counter each time.  A waker that dies
    inside the [Wake_lost] window has already moved the counter, so every
    published waiter notices within one tick, withdraws, and re-checks its
    condition — a crash converts a wakeup into (at most) a one-tick delay,
    never a hang. *)

type t

val create :
  ?on_park:(unit -> unit) ->
  ?on_wake:(unit -> unit) ->
  ?on_cancel:(unit -> unit) ->
  ?park_window:(unit -> unit) ->
  ?wake_window:(unit -> unit) ->
  unit ->
  t
(** A fresh eventcount with no waiters.

    The [on_*] hooks are observability probes (see
    [Nbq_primitives.Probe.S]): [on_park] fires each time a domain actually
    goes to sleep (one wait can park several times), [on_wake] each time a
    wake path delivers a signal to a parked waiter, [on_cancel] each time
    a published waiter withdraws without consuming a wake.

    The [*_window] hooks are fault-injection points: [park_window] runs
    after a waiter is published and committed, immediately before the
    first sleep ([Nbq_primitives.Fault]'s [Park_window]); [wake_window]
    runs inside {!wake_one}/{!wake_all} after the sequence-counter bump
    and before any waiter is popped or signalled ([Wake_lost]).  All hooks
    default to no-ops. *)

type waiter
(** A published wait-in-progress, owned by the domain that prepared it.
    Exactly one of {!commit_wait} or {!cancel_wait} must follow each
    {!prepare_wait} (commit cancels internally on timeout, so the usual
    pairing is prepare → re-check → commit-or-cancel). *)

val prepare_wait : t -> waiter
(** Snapshot the sequence counter and push a waiter onto the stack.  After
    this returns, any {!wake_one} may pick this waiter, so the caller must
    promptly re-check its condition and either commit or cancel. *)

val commit_wait :
  ?deadline:float -> ?max_park:int -> t -> waiter -> [ `Woken | `Timeout ]
(** Park until one of: a waker signals this waiter; the sequence counter
    moves past the {!prepare_wait} snapshot (a wake happened somewhere —
    possibly one whose sender crashed mid-delivery — so the condition must
    be re-checked); [max_park] park slices (ticks) elapse (default 32 — a
    paranoia cap that bounds even wakeups lost {e outside} the wait layer,
    e.g. a producer dying between its enqueue and its wake call, to a
    ~[max_park]-millisecond delay); or [deadline] (absolute
    [Unix.gettimeofday] time) passes.  Returns [`Timeout] only for the
    deadline; in every case the waiter is consumed (withdrawn or
    signalled) — do not [cancel_wait] it afterwards.  [`Woken] does
    {b not} mean the caller's condition holds; re-check and re-prepare in
    a loop (or use {!await}).  Deadline resolution is
    {!Parker.tick_interval}. *)

val cancel_wait : t -> waiter -> unit
(** Withdraw a prepared waiter without parking (the condition came true
    between prepare and commit, or the caller gave up).  If the waiter had
    {e already} been claimed by a waker, the signal is passed on to
    another waiter via {!wake_one} so no wakeup is swallowed. *)

val wake_one : t -> bool
(** Pop waiters until one is successfully claimed and its domain notified;
    returns [false] iff no claimable waiter was found.  The sequence
    counter is bumped {e before} the stack is touched (crash tolerance);
    an empty stack is detected with a single read and skips the bump —
    safe because the caller's condition write precedes the read while a
    waiter's publish precedes its condition re-check.  Non-blocking;
    [O(1)] amortized. *)

val wake_all : t -> int
(** Bump the sequence counter and signal every published waiter; returns
    how many were claimed.  Same empty-stack fast path as {!wake_one}.
    Non-blocking. *)

val await :
  ?spin:int ->
  ?deadline:float ->
  ?max_park:int ->
  t ->
  (unit -> 'a option) ->
  [ `Ok of 'a | `Timeout ]
(** [await t cond] — the full wait loop: try [cond] once; spin through a
    bounded jittered backoff (re-trying [cond]) for [spin] rounds (default
    30); then repeat \{prepare; re-check; commit\} until [cond] yields
    [Some v] or [deadline] passes.  A deadline already in the past still
    tries [cond] (at least once) but never parks.  [max_park] is passed
    through to {!commit_wait}.  [cond] must be safe to call repeatedly
    from the waiting domain. *)

(** {2 Hygiene}

    Cancelled waiters are unlinked lazily: wakers discard them while
    popping, {!cancel_wait} pops its own node when it is still the head,
    and once enough cancels have accumulated the whole stack is detached
    and the still-live waiters re-pushed.  {!audit} exposes the stack
    composition so tests can assert no dangling waiters survive a
    cancellation storm. *)

val audit : t -> int * int
(** [(waiting, cancelled)] — waiters currently linked in the stack, split
    by state.  O(stack length); takes a snapshot, racy by nature (for
    tests and diagnostics on quiescent eventcounts). *)

val seq : t -> int
(** Current sequence-counter value (diagnostics). *)
