(** Per-domain parking cell: the only place in the repository where a
    domain actually sleeps.

    A parker is a [Mutex] + [Condition] + one-shot notification flag,
    cache-line padded and stored in domain-local state — one cell per
    domain, reused across every wait the domain ever performs.  The
    higher-level {!Eventcount} publishes a reference to the current
    domain's parker in its waiter stack; wakers {!notify} it.

    {b The ticker backstop.}  The stdlib's [Condition] has no timed wait,
    so bounded parks are provided by a single shared {e ticker} domain
    (spawned lazily on the first park, one per process): every parked
    parker registers itself for the duration of its sleep, and the ticker
    broadcasts to all registered parkers every millisecond.  {!park}
    therefore returns on notification {e or} on the next tick, whichever
    comes first — it never sleeps unboundedly.  Callers re-validate their
    condition and re-park in a loop.  This is what makes the wait layer
    robust against lost wakeups by construction: even a waker that crashes
    mid-wake (the [Wake_lost] fault window) can delay a parked domain only
    until its next tick, never strand it (DESIGN.md §10). *)

type t

val current : unit -> t
(** The calling domain's parker (allocated in domain-local state on first
    use, padded). *)

val park : t -> [ `Notified | `Tick ]
(** Sleep until {!notify} or the next ticker broadcast.  [`Notified]
    consumes the notification; [`Tick] means the caller should re-validate
    whatever it is waiting for and decide to re-park or give up.  If a
    notification is already pending, returns [`Notified] without
    sleeping. *)

val notify : t -> unit
(** Post the one-shot notification and wake the parker if it sleeps.
    Idempotent while a notification is pending; safe from any domain,
    including for a parker whose domain is not currently parked (the flag
    is consumed by the next {!park}). *)

val drain : t -> unit
(** Clear any pending notification without sleeping (used when a waiter is
    abandoned so a stale notification cannot satisfy the domain's next,
    unrelated wait). *)

val tick_interval : float
(** The ticker period in seconds while at least one parker sleeps — the
    upper bound on how long a lost wakeup can delay a parked domain, and
    the resolution of every deadline in the wait layer. *)

val ticks : unit -> int
(** Ticker broadcasts so far (diagnostics; 0 until the first park). *)
