(* Per-domain parking cell.  See parker.mli for the protocol; the subtle
   parts here are (a) the cache-line padding of the DLS cell and (b) the
   lock ordering between a parking domain and the shared ticker. *)

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable notified : bool;  (* one-shot flag, guarded by [mutex] *)
  mutable parked : bool;  (* domain is inside [park], guarded by [mutex] *)
}

(* Same trick as Nbq_obs.Padding.copy_padded (replicated here because the
   wait layer sits below the observability library): rebuild the record
   inside a block padded to two cache lines so two domains' parkers never
   share a line. *)
let cache_line_words = 16

let copy_padded : t -> t =
 fun v ->
  let orig = Obj.repr v in
  let size = Obj.size orig in
  let padded = Obj.new_block 0 (size + (2 * cache_line_words)) in
  for i = 0 to size - 1 do
    Obj.set_field padded i (Obj.field orig i)
  done;
  for i = size to size + (2 * cache_line_words) - 1 do
    Obj.set_field padded i (Obj.repr 0)
  done;
  Obj.obj padded

let make () =
  copy_padded
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      notified = false;
      parked = false;
    }

let key = Domain.DLS.new_key make
let current () = Domain.DLS.get key

(* ---- the ticker ----------------------------------------------------- *)

(* One background domain per process, spawned lazily on the first park.  It
   broadcasts to every registered (i.e. currently parked) parker once per
   [tick_interval], so no park ever sleeps longer than one tick without
   re-validating its condition.  The domain is a daemon in spirit: it loops
   forever, but sleeps via [Unix.sleepf] and holds no locks across the
   sleep, so process exit is not impeded (runtime terminates it).

   Lock ordering: a parking domain takes [registry_lock] (to register)
   strictly BEFORE its own [t.mutex]; the ticker takes [registry_lock],
   snapshots the list, RELEASES it, and only then takes each parker's
   mutex.  Neither path ever holds both a parker mutex and the registry
   lock, so there is no lock-order cycle. *)

let tick_interval = 0.001
let registry_lock = Mutex.create ()
let registered : t list ref = ref []
let ticker_started = Atomic.make false
let tick_count = Atomic.make 0
let ticks () = Atomic.get tick_count

let ticker_loop () =
  while true do
    Unix.sleepf tick_interval;
    let snapshot =
      Mutex.lock registry_lock;
      let l = !registered in
      Mutex.unlock registry_lock;
      l
    in
    if snapshot <> [] then begin
      Atomic.incr tick_count;
      List.iter
        (fun t ->
          Mutex.lock t.mutex;
          Condition.broadcast t.cond;
          Mutex.unlock t.mutex)
        snapshot
    end
  done

let ensure_ticker () =
  if not (Atomic.get ticker_started) then
    if Atomic.compare_and_set ticker_started false true then
      ignore (Domain.spawn ticker_loop : unit Domain.t)

let register t =
  Mutex.lock registry_lock;
  registered := t :: !registered;
  Mutex.unlock registry_lock

let deregister t =
  Mutex.lock registry_lock;
  (* Physical equality: each domain has exactly one cell. *)
  registered := List.filter (fun p -> p != t) !registered;
  Mutex.unlock registry_lock

(* ---- the parker proper ---------------------------------------------- *)

let park t =
  ensure_ticker ();
  register t;
  Mutex.lock t.mutex;
  let result =
    if t.notified then begin
      t.notified <- false;
      `Notified
    end
    else begin
      t.parked <- true;
      Condition.wait t.cond t.mutex;
      t.parked <- false;
      if t.notified then begin
        t.notified <- false;
        `Notified
      end
      else `Tick
    end
  in
  Mutex.unlock t.mutex;
  deregister t;
  result

let notify t =
  Mutex.lock t.mutex;
  if not t.notified then begin
    t.notified <- true;
    if t.parked then Condition.signal t.cond
  end;
  Mutex.unlock t.mutex

let drain t =
  Mutex.lock t.mutex;
  t.notified <- false;
  Mutex.unlock t.mutex
