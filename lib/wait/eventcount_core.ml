(* The eventcount protocol, abstracted over its environment.

   The algorithm (see eventcount.mli and DESIGN.md §10) only needs three
   things from the world: single-word atomics, a per-thread parker, and a
   clock.  Functorizing over them lets the exact production protocol run
   under the model checker's simulated atomics and cooperative parker
   (Nbq_modelcheck.Sim_wait), where the no-lost-wakeup property is checked
   exhaustively — any divergence between what is verified and what ships
   would have to live in this file's ENV instantiation, which is four
   lines.

   Eventcount.{ml,mli} is the production instantiation and keeps its
   interface unchanged.

   Invariants maintained below:

   - wakers bump [seq] BEFORE touching the waiter stack, so a waker that
     dies mid-wake has already made its visit observable;
   - a waiter node's [state] moves 0 -> 1 (claimed by a waker) or
     0 -> 2 (withdrawn by its owner) exactly once, by CAS, and only the
     transition winner acts on it — the waker notifies the parker iff its
     0 -> 1 won, the owner counts a cancel iff its 0 -> 2 won;
   - nodes are unlinked lazily (wakers discard cancelled nodes while
     popping; cancellation pops its own node only when it is still the
     head; a threshold reap rebuilds the stack) so no path ever needs to
     excise from the middle of the list. *)

module type PARKER = sig
  type t

  val current : unit -> t
  val park : t -> [ `Notified | `Tick ]
  val notify : t -> unit
  val drain : t -> unit
end

module type ENV = sig
  module Atomic : Nbq_primitives.Atomic_intf.ATOMIC
  module Parker : PARKER

  val now : unit -> float
  (** Wall clock for deadlines (the simulated env freezes it at 0). *)

  val default_spin : int
  (** [await]'s pre-park spin budget.  0 under simulation: the spin phase
      is pure scheduling noise there, and skipping it keeps the choice
      tree at its real protocol states. *)
end

module Make (E : ENV) = struct
  module Atomic = E.Atomic
  module Parker = E.Parker

  (* ATOMIC deliberately carries only the single-word primitives the paper
     assumes; exchange and increment are derived. *)
  let rec atomic_exchange a v =
    let cur = Atomic.get a in
    if Atomic.compare_and_set a cur v then cur else atomic_exchange a v

  let atomic_incr a = ignore (Atomic.fetch_and_add a 1 : int)

  type node = {
    parker : Parker.t;
    state : int Atomic.t; (* 0 waiting | 1 signaled | 2 cancelled *)
    mutable next : node option; (* written by owner before publish only *)
    born : int; (* [seq] snapshot at prepare *)
  }

  type waiter = node

  type t = {
    seq : int Atomic.t;
    head : node option Atomic.t;
    cancels : int Atomic.t; (* cancels since the last reap *)
    on_park : unit -> unit;
    on_wake : unit -> unit;
    on_cancel : unit -> unit;
    park_window : unit -> unit;
    wake_window : unit -> unit;
  }

  let nop () = ()

  let create ?(on_park = nop) ?(on_wake = nop) ?(on_cancel = nop)
      ?(park_window = nop) ?(wake_window = nop) () =
    {
      seq = Atomic.make 0;
      head = Atomic.make None;
      cancels = Atomic.make 0;
      on_park;
      on_wake;
      on_cancel;
      park_window;
      wake_window;
    }

  let seq t = Atomic.get t.seq

  (* ---- stack ---------------------------------------------------------- *)

  let rec push t n =
    let cur = Atomic.get t.head in
    n.next <- cur;
    if not (Atomic.compare_and_set t.head cur (Some n)) then push t n

  (* Best-effort physical removal on cancellation: only when our node is
     still the top of the stack (the common case — LIFO order means the
     most recent waiter cancels first). *)
  let pop_if_head t w =
    match Atomic.get t.head with
    | Some n as cur when n == w ->
        ignore (Atomic.compare_and_set t.head cur n.next : bool)
    | _ -> ()

  let reap_threshold = 64

  (* Once enough cancelled nodes may have accumulated mid-stack, detach the
     whole stack and re-push the still-waiting nodes.  While the stack is
     detached a concurrent [wake_one] can find it empty and return [false];
     that is safe because the wake bumped [seq] first, so every detached
     waiter notices the epoch change within one parker tick and re-checks
     its condition (the same backstop that covers crashed wakers). *)
  let maybe_reap t =
    if Atomic.get t.cancels >= reap_threshold then begin
      Atomic.set t.cancels 0;
      let rec repush = function
        | None -> ()
        | Some n ->
            let rest = n.next in
            if Atomic.get n.state = 0 then push t n;
            repush rest
      in
      match atomic_exchange t.head None with
      | None -> ()
      | detached ->
          repush detached;
          (* A waker that raced the detach window saw an empty stack and
             skipped its bump; this bump makes every repushed waiter
             withdraw and re-check within a tick, closing that hole. *)
          atomic_incr t.seq
    end

  let audit t =
    let rec walk waiting cancelled = function
      | None -> (waiting, cancelled)
      | Some n ->
          let s = Atomic.get n.state in
          walk
            (if s = 0 then waiting + 1 else waiting)
            (if s = 2 then cancelled + 1 else cancelled)
            n.next
    in
    walk 0 0 (Atomic.get t.head)

  (* ---- waiter side ---------------------------------------------------- *)

  let prepare_wait t =
    (* Snapshot [seq] before publishing: a wake landing between the read
       and the push is then guaranteed to look like an epoch change to
       [commit_wait], which errs toward an extra condition re-check. *)
    let born = Atomic.get t.seq in
    let w =
      { parker = Parker.current (); state = Atomic.make 0; next = None; born }
    in
    push t w;
    w

  (* Withdraw [w] (owner side).  Returns [true] if we won the 0 -> 2 race,
     [false] if a waker claimed the node first. *)
  let withdraw t w =
    if Atomic.compare_and_set w.state 0 2 then begin
      t.on_cancel ();
      atomic_incr t.cancels;
      pop_if_head t w;
      maybe_reap t;
      true
    end
    else false

  let rec wake_one t =
    (* Empty-stack fast path, safe by the Dekker handshake: the caller made
       its condition true before this read, and a waiter publishes before
       re-checking the condition — so a waiter missing from the stack here
       will see the condition on its re-check and never sleep on it. *)
    if Atomic.get t.head = None then false
    else begin
      atomic_incr t.seq;
      t.wake_window ();
      pop_and_signal t
    end

  and pop_and_signal t =
    match Atomic.get t.head with
    | None -> false
    | Some n as cur ->
        if Atomic.compare_and_set t.head cur n.next then
          if Atomic.compare_and_set n.state 0 1 then begin
            t.on_wake ();
            Parker.notify n.parker;
            true
          end
          else pop_and_signal t (* cancelled node: discard, keep looking *)
        else pop_and_signal t

  and cancel_wait t w =
    if not (withdraw t w) then begin
      (* A waker claimed us concurrently: its signal must not be swallowed
         — pass it on to another waiter.  The waker may also have notified
         our parker; clear the flag so it cannot satisfy this domain's
         next, unrelated wait.  (If the notify is still in flight the flag
         can be re-set after the drain; a stale notification only causes
         one spurious early tick on the next park, which is benign.) *)
      Parker.drain w.parker;
      ignore (wake_one t : bool)
    end

  let default_max_park = 32

  let commit_wait ?deadline ?(max_park = default_max_park) t w =
    t.park_window ();
    let rec sleep_loop slices =
      if Atomic.get w.state = 1 then `Woken
      else if Atomic.get t.seq <> w.born then begin
        (* The epoch moved under us: some wake happened (possibly one whose
           sender crashed before delivering a signal).  Withdraw and report
           [`Woken] so the caller re-checks its condition. *)
        ignore (withdraw t w : bool);
        `Woken
      end
      else if slices >= max_park then begin
        (* Slice cap: even a wakeup lost entirely outside the wait layer (a
           producer dying between its successful operation and its wake
           call) costs the sleeper at most [max_park] ticks before it
           re-checks its condition from scratch. *)
        ignore (withdraw t w : bool);
        `Woken
      end
      else
        match deadline with
        | Some d when E.now () >= d ->
            if withdraw t w then `Timeout else `Woken
        | _ ->
            t.on_park ();
            (match Parker.park w.parker with `Notified | `Tick -> ());
            sleep_loop (slices + 1)
    in
    let r = sleep_loop 0 in
    Parker.drain w.parker;
    r

  let wake_all t =
    if Atomic.get t.head = None then 0
    else begin
      atomic_incr t.seq;
      t.wake_window ();
      let rec drain count = function
        | None -> count
        | Some n ->
            let count =
              if Atomic.compare_and_set n.state 0 1 then begin
                t.on_wake ();
                Parker.notify n.parker;
                count + 1
              end
              else count
            in
            drain count n.next
      in
      drain 0 (atomic_exchange t.head None)
    end

  (* ---- the full wait loop --------------------------------------------- *)

  let default_spin = E.default_spin

  let await ?(spin = default_spin) ?deadline ?max_park t cond =
    match cond () with
    | Some v -> `Ok v
    | None -> (
        let past () =
          match deadline with Some d -> E.now () >= d | None -> false
        in
        if past () then `Timeout
        else
          let b = Nbq_primitives.Backoff.create ~jitter:true () in
          let rec spin_phase n =
            if n <= 0 then `Spin_done
            else begin
              Nbq_primitives.Backoff.once b;
              match cond () with
              | Some v -> `Ok v
              | None -> if past () then `Timeout else spin_phase (n - 1)
            end
          in
          let rec park_loop () =
            match cond () with
            | Some v -> `Ok v
            | None ->
                if past () then `Timeout
                else
                  let w = prepare_wait t in
                  (* The publish above and this re-check are the two halves
                     of the Dekker handshake with the enqueuing side. *)
                  (match cond () with
                  | Some v ->
                      cancel_wait t w;
                      `Ok v
                  | None -> (
                      match commit_wait ?deadline ?max_park t w with
                      | `Woken -> park_loop ()
                      | `Timeout -> (
                          (* One last try: the condition may have come true
                             in the same instant the deadline expired. *)
                          match cond () with
                          | Some v -> `Ok v
                          | None -> `Timeout)))
          in
          match spin_phase spin with
          | (`Ok _ | `Timeout) as r -> r
          | `Spin_done -> park_loop ())
end
