(* The production instantiation of the eventcount protocol: real atomics,
   the futex-style per-domain Parker (with its 1 ms ticker backstop), the
   real clock, and a pre-park spin tuned for cross-core wake latency.  The
   protocol itself lives in Eventcount_core so the model checker can run
   the identical code under simulated atomics and a cooperative parker. *)

include Eventcount_core.Make (struct
  module Atomic = Nbq_primitives.Atomic_intf.Real
  module Parker = Parker

  let now = Unix.gettimeofday
  let default_spin = 30
end)
