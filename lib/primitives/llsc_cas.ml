(* Paper Fig. 5: LL / Register / ReRegister / Deregister, generalized to a
   reusable cell type.  See the .mli for the pointer-tagging substitution. *)

type audit = Llsc_backend.audit = { registered : int; owned : int; free : int }

module type S = sig
  type 'a t
  type 'a registry
  type 'a handle

  val create_registry : unit -> 'a registry
  val make : 'a -> 'a t
  val register : 'a registry -> 'a handle
  val reregister : 'a handle -> unit
  val deregister : 'a handle -> unit
  val ll : 'a t -> 'a handle -> 'a
  val sc : 'a t -> 'a handle -> 'a -> bool

  type 'a observation

  val observe : 'a t -> 'a observation
  val observed_value : 'a observation -> 'a option
  val observed_holds : 'a observation -> 'a -> bool
  val observed_get : 'a observation -> 'a
  val commit : 'a t -> 'a observation -> 'a -> bool

  val peek : 'a t -> 'a
  val unsafe_set : 'a t -> 'a -> unit
  val registered_count : 'a registry -> int
  val owned_count : 'a registry -> int
  val audit : 'a registry -> audit
end

module Make_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
struct
  type 'a content =
    | Unset  (* initial placeholder only; never stored in a cell *)
    | Value of 'a
    | Mark of 'a tagvar

  and 'a tagvar = {
    (* The paper's LLSCvar.  [placeholder] is var->node: the logical value
       the owning thread observed when it reserved a cell.  Plain mutable
       field: the reference-count protocol below makes the cross-thread
       reads of it well-defined (the owner only rewrites it while no reader
       holds a count, or while the readers' subsequent CAS is doomed to
       fail). *)
    mutable placeholder : 'a content;
    refcount : int A.t;
    (* Registry chain link; written once before publication. *)
    mutable next : 'a tagvar option;
  }

  type 'a t = 'a content A.t

  type 'a registry = { first : 'a tagvar option A.t }

  type 'a handle = {
    registry : 'a registry;
    mutable var : 'a tagvar;
    (* The marker block [Mark var], allocated once per (re)registration and
       reused across operations — the analogue of the paper's [var ^ 1]. *)
    mutable mark : 'a content;
  }

  let create_registry () = { first = A.make None }

  let make v : 'a t = A.make (Value v)

  (* --- Registration protocol (paper R1-R16, RR1-RR5, DR1-DR3) --- *)

  let rec find_free = function
    | None -> None
    | Some v ->
        if A.get v.refcount = 0 && A.compare_and_set v.refcount 0 1 then Some v
        else find_free v.next

  let register_var reg =
    match find_free (A.get reg.first) with
    | Some v ->
        P.tag_recycle ();
        v
    | None ->
        let v = { placeholder = Unset; refcount = A.make 1; next = None } in
        let rec push () =
          let cur = A.get reg.first in
          v.next <- cur;
          if not (A.compare_and_set reg.first cur (Some v)) then push ()
        in
        push ();
        v

  let register reg =
    let var = register_var reg in
    (* Past this point the variable is owned; a crash here abandons it — the
       bounded leak the paper accepts for a thread dying mid-[Register]. *)
    F.hit Fault.Tag_register;
    P.tag_register ();
    { registry = reg; var; mark = Mark var }

  let reregister h =
    F.hit Fault.Tag_reregister;
    P.tag_reregister ();
    (* Keep the variable only if we are its sole referent; otherwise a
       reader could later validate a stale marker observation against our
       reused marker block (the ABA of paper §5).  The swap shows up as a
       [tag_recycle] (or registry growth) on top of this event. *)
    if A.get h.var.refcount <> 1 then begin
      ignore (A.fetch_and_add h.var.refcount (-1));
      let var = register_var h.registry in
      h.var <- var;
      h.mark <- Mark var
    end

  let deregister h =
    F.hit Fault.Tag_deregister;
    P.tag_deregister ();
    ignore (A.fetch_and_add h.var.refcount (-1))

  (* --- Simulated LL / SC (paper L1-L17) --- *)

  let rec ll (cell : 'a t) (h : 'a handle) =
    F.hit Fault.Ll_reserve;
    let cur = A.get cell in
    (match cur with
    | Value _ ->
        (* Reuse the block we read: no allocation on the uncontended path. *)
        h.var.placeholder <- cur
    | Mark other ->
        (* Paper L7-L8: pin the foreign tag variable with a reference count,
           then read the logical value through it. *)
        ignore (A.fetch_and_add other.refcount 1);
        h.var.placeholder <- other.placeholder
    | Unset -> assert false);
    let installed = A.compare_and_set cell cur h.mark in
    (match cur with
    | Mark other -> ignore (A.fetch_and_add other.refcount (-1))
    | Value _ | Unset -> ());
    if installed then begin
      (* Our tag is now published in the cell.  A victim frozen (or killed)
         here is the paper's §5 adversary: everyone else must be able to
         read and steal through the abandoned marker. *)
      F.hit Fault.Slot_swap;
      P.ll_reserve ();
      match h.var.placeholder with
      | Value v -> v
      | Mark _ | Unset -> assert false
    end
    else ll cell h

  let sc (cell : 'a t) (h : 'a handle) v =
    F.hit Fault.Sc_attempt;
    A.compare_and_set cell h.mark (Value v)

  (* --- One-shot observe / commit (extension, not in the paper) ---------

     A physical-equality CAS against the exact block read earlier.  Sound
     without tags because every mutation of a cell installs a {e freshly
     allocated} [Value] block ([sc], [commit], [unsafe_set] all allocate;
     marker blocks are never re-installed as values), so observing the same
     block at commit time proves the cell was never touched in between —
     the allocation itself plays the role of the paper's tag.  Only valid
     for this boxed representation; the batch-run extension uses it to
     spend one CAS per slot instead of the ll/sc pair's two. *)

  type 'a observation = 'a content

  let observe (cell : 'a t) : 'a observation = A.get cell

  let observed_value (obs : 'a observation) =
    match obs with Value v -> Some v | Mark _ -> None | Unset -> assert false

  (* Allocation-free variant of [observed_value] for hot loops that only
     test against a known (immediate or interned) value. *)
  let observed_holds (obs : 'a observation) v =
    match obs with Value w -> w == v | Mark _ | Unset -> false

  (* Allocation-free extraction: the [Not_found] raise only happens on the
     rare marker observation, the value path returns the block already in
     hand. *)
  let observed_get (obs : 'a observation) =
    match obs with Value v -> v | Mark _ | Unset -> raise Not_found

  let commit (cell : 'a t) (obs : 'a observation) v =
    F.hit Fault.Sc_attempt;
    A.compare_and_set cell obs (Value v)

  let rec peek (cell : 'a t) =
    match A.get cell with
    | Value v -> v
    | Mark other -> (
        match other.placeholder with
        | Value v -> v
        | Mark _ | Unset ->
            (* The owner is between registration and its first ll; or we
               lost a race with a recycling.  Heuristic read: retry. *)
            peek cell)
    | Unset -> assert false

  let unsafe_set (cell : 'a t) v = A.set cell (Value v)

  (* --- Introspection --- *)

  let fold_vars reg f acc =
    let rec go acc = function
      | None -> acc
      | Some v -> go (f acc v) v.next
    in
    go acc (A.get reg.first)

  let registered_count reg = fold_vars reg (fun n _ -> n + 1) 0

  let owned_count reg =
    fold_vars reg (fun n v -> if A.get v.refcount > 0 then n + 1 else n) 0

  let audit reg =
    let registered, owned =
      fold_vars reg
        (fun (r, o) v -> (r + 1, if A.get v.refcount > 0 then o + 1 else o))
        (0, 0)
    in
    { registered; owned; free = registered - owned }
end

module Make_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) =
  Make_injected (A) (P) (Fault.Noop)

module Make (A : Atomic_intf.ATOMIC) = Make_probed (A) (Probe.Noop)

(* The same protocol behind the unified backend seam (Llsc_backend.S).  A
   reservation token is just the value read — rolling back is an sc that
   restores it; counters are plain atomics with single-CAS helping, exactly
   what the queue's Fig. 5 column does. *)
module Backend_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
struct
  module L = Make_injected (A) (P) (F)

  type 'a t = 'a L.t
  type 'a registry = 'a L.registry
  type 'a handle = 'a L.handle
  type 'a res = 'a
  type 'a observation = 'a L.observation

  let create_registry = L.create_registry
  let make = L.make
  let register = L.register
  let reregister = L.reregister
  let deregister = L.deregister

  let ll = L.ll
  let res_value (v : 'a res) = v
  let sc cell h (_res : 'a res) v = L.sc cell h v
  let release cell h (res : 'a res) = ignore (L.sc cell h res)

  let read cell h =
    let v = L.ll cell h in
    ignore (L.sc cell h v);
    v

  (* [unsafe_set] installs a fresh [Value] block, so a stale observe/commit
     pair racing a misused reset still fails on block identity. *)
  let reset cell v = L.unsafe_set cell v

  let observe cell _h = L.observe cell
  let observed_holds = L.observed_holds
  let observed_get = L.observed_get
  let commit cell _h obs v = L.commit cell obs v

  include Llsc_backend.Cas_counter (A)

  let registered_count = L.registered_count
  let owned_count = L.owned_count
  let audit = L.audit
end

include Make (Atomic_intf.Real)
