type t = {
  min_wait : int;
  max_wait : int;
  jitter : bool;
  mutable wait : int;
  mutable last : int;
}

let create ?(min_wait = 1) ?(max_wait = 4096) ?(jitter = false) () =
  if min_wait < 1 then invalid_arg "Backoff.create: min_wait < 1";
  if max_wait < min_wait then invalid_arg "Backoff.create: max_wait < min_wait";
  { min_wait; max_wait; jitter; wait = min_wait; last = 0 }

let once t =
  let spins =
    if t.jitter then
      (* Uniform in [min_wait, wait]: decorrelates convoys of retriers that
         entered the loop together, while keeping the envelope exponential. *)
      t.min_wait + Prng.int (Prng.domain_local ()) (t.wait - t.min_wait + 1)
    else t.wait
  in
  t.last <- spins;
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done;
  t.wait <- min (t.wait * 2) t.max_wait

let reset t =
  t.wait <- t.min_wait;
  t.last <- 0

let current t = t.wait

let last_wait t = t.last
