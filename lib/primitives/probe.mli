(** Instrumentation hooks threaded through the lock-free algorithms.

    Each function marks one occurrence of the event it is named after; the
    algorithms call them from their hot paths, so implementations must be
    cheap, non-blocking and allocation-free.  The algorithm functors take a
    probe module as a parameter and are instantiated with {!Noop} by
    default, so uninstrumented builds pay nothing beyond a direct call to an
    empty function.  The observability library ([Nbq_obs]) supplies probes
    that increment sharded per-domain counters.

    Event meanings (see the paper, Fig. 5, and DESIGN.md):
    - [ll_reserve] — a simulated (or ideal) load-linked reservation was
      taken on a cell;
    - [sc_fail] — a store-conditional on the {e update} path failed (the
      reservation was stolen between LL and SC);
    - [tail_help] / [head_help] — the operation found a filled/emptied slot
      with a lagging counter and helped advance [Tail]/[Head] on behalf of
      the delayed thread;
    - [tag_register] — a tag variable was acquired ([Register]);
    - [tag_reregister] — the per-operation [ReRegister] step ran (it swaps
      tag variables when a foreign reader holds a reference count on the
      current one; a swap additionally shows up as [tag_recycle] or
      registry growth);
    - [tag_deregister] — a tag variable was released ([Deregister]);
    - [tag_recycle] — a registration was satisfied by recycling a free
      variable from the registry instead of appending a fresh one;
    - [shard_steal] — a sharded front-end completed an operation on a
      {e foreign} shard after its home shard reported full/empty (the
      work-stealing fallback of [Nbq_scale.Sharded]);
    - [wait_park] — a blocked operation actually put its domain to sleep on
      an eventcount ([Nbq_wait.Eventcount]); one blocking call can park
      several times;
    - [wait_wake] — a wake path delivered a signal to a parked waiter;
    - [wait_cancel] — a published waiter withdrew without consuming a wake
      (its deadline passed, or the condition came true between publish and
      park). *)

module type S = sig
  val ll_reserve : unit -> unit
  val sc_fail : unit -> unit
  val tail_help : unit -> unit
  val head_help : unit -> unit
  val tag_register : unit -> unit
  val tag_reregister : unit -> unit
  val tag_deregister : unit -> unit
  val tag_recycle : unit -> unit
  val shard_steal : unit -> unit
  val wait_park : unit -> unit
  val wait_wake : unit -> unit
  val wait_cancel : unit -> unit
end

val compose : (module S) -> (module S) -> (module S)
(** [compose a b] calls [a]'s hook then [b]'s on every event — e.g. the
    metrics probe and the flight-recorder probe on one queue. *)

module Noop : S
(** Every hook does nothing; the default instantiation. *)
