module type S = sig
  val ll_reserve : unit -> unit
  val sc_fail : unit -> unit
  val tail_help : unit -> unit
  val head_help : unit -> unit
  val tag_register : unit -> unit
  val tag_reregister : unit -> unit
  val tag_deregister : unit -> unit
  val tag_recycle : unit -> unit
  val shard_steal : unit -> unit
end

module Noop : S = struct
  let ll_reserve () = ()
  let sc_fail () = ()
  let tail_help () = ()
  let head_help () = ()
  let tag_register () = ()
  let tag_reregister () = ()
  let tag_deregister () = ()
  let tag_recycle () = ()
  let shard_steal () = ()
end
