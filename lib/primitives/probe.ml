module type S = sig
  val ll_reserve : unit -> unit
  val sc_fail : unit -> unit
  val tail_help : unit -> unit
  val head_help : unit -> unit
  val tag_register : unit -> unit
  val tag_reregister : unit -> unit
  val tag_deregister : unit -> unit
  val tag_recycle : unit -> unit
  val shard_steal : unit -> unit

  val wait_park : unit -> unit
  (** A waiter went to sleep on an eventcount (one hit per actual park, not
      per blocking operation — a single wait can park several times). *)

  val wait_wake : unit -> unit
  (** A waker delivered a signal to a parked (or parking) waiter. *)

  val wait_cancel : unit -> unit
  (** A published waiter withdrew without consuming a wake (deadline or
      condition satisfied between publish and park). *)
end

(* Fan one hook call out to two probe modules (metrics + trace, in that
   order).  Kept here rather than in a consumer library so any layer that
   owns a probe seam can compose without new dependencies. *)
let compose (module A : S) (module B : S) : (module S) =
  (module struct
    let ll_reserve () = A.ll_reserve (); B.ll_reserve ()
    let sc_fail () = A.sc_fail (); B.sc_fail ()
    let tail_help () = A.tail_help (); B.tail_help ()
    let head_help () = A.head_help (); B.head_help ()
    let tag_register () = A.tag_register (); B.tag_register ()
    let tag_reregister () = A.tag_reregister (); B.tag_reregister ()
    let tag_deregister () = A.tag_deregister (); B.tag_deregister ()
    let tag_recycle () = A.tag_recycle (); B.tag_recycle ()
    let shard_steal () = A.shard_steal (); B.shard_steal ()
    let wait_park () = A.wait_park (); B.wait_park ()
    let wait_wake () = A.wait_wake (); B.wait_wake ()
    let wait_cancel () = A.wait_cancel (); B.wait_cancel ()
  end)

module Noop : S = struct
  let ll_reserve () = ()
  let sc_fail () = ()
  let tail_help () = ()
  let head_help () = ()
  let tag_register () = ()
  let tag_reregister () = ()
  let tag_deregister () = ()
  let tag_recycle () = ()
  let shard_steal () = ()
  let wait_park () = ()
  let wait_wake () = ()
  let wait_cancel () = ()
end
