module type S = sig
  type 'a t
  type 'a link

  val make : 'a -> 'a t
  val ll : 'a t -> 'a link
  val value : 'a link -> 'a
  val sc : 'a t -> 'a link -> 'a -> bool
  val vl : 'a t -> 'a link -> bool
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
end

module Make_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
struct
  type 'a box = { contents : 'a }

  type 'a t = 'a box A.t

  type 'a link = 'a box

  let make v = A.make { contents = v }

  let ll t =
    F.hit Fault.Ll_reserve;
    P.ll_reserve ();
    A.get t

  let value (link : 'a link) = link.contents

  (* A fresh box per store means box identity = "unwritten since read". *)
  let sc t link v =
    F.hit Fault.Sc_attempt;
    A.compare_and_set t link { contents = v }

  let vl t link = A.get t == link

  let get t = (A.get t).contents

  let set t v = A.set t { contents = v }
end

module Make_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) =
  Make_injected (A) (P) (Fault.Noop)

module Make (A : Atomic_intf.ATOMIC) = Make_probed (A) (Probe.Noop)

include Make (Atomic_intf.Real)

module Weak = struct
  type 'a cell = {
    inner : 'a t;
    failure_rate : float;
  }

  let make ~failure_rate v =
    let failure_rate = Float.max 0.0 (Float.min 1.0 failure_rate) in
    { inner = make v; failure_rate }

  let ll c = ll c.inner

  let value = value

  let spurious c =
    c.failure_rate > 0.0 && Prng.float (Prng.domain_local ()) < c.failure_rate

  let sc c link v = if spurious c then false else sc c.inner link v

  let vl c link = vl c.inner link

  let get c = get c.inner

  let set c v = set c.inner v
end
