(** Named fault-injection points at the linearization-critical windows of
    the paper's algorithms.

    The paper's progress and space claims are {e adversarial} claims: a
    thread may stall — or die — at the worst possible instant, and the
    remaining threads must still complete operations while the tag-variable
    registry stays bounded.  Each {!point} names one such worst instant.  An
    algorithm functor takes an {!S} alongside its {!Probe.S}; the default
    {!Noop} compiles to nothing, while [Nbq_fault.Injector] supplies hooks
    that freeze ({e stall}) or unwind ({e crash}) the first thread to reach
    an armed point, so torture tests can park a victim inside the window and
    prove the rest of the system keeps going.

    Where each point sits (see DESIGN.md §7c for the paper mapping):
    - [Ll_reserve] — on entry to a load-linked, before the cell is read.
      The victim holds nothing yet.
    - [Slot_swap] — in the CAS-simulated LL/SC, {e just after} the handle's
      tag marker was swapped into the cell.  A victim frozen here has
      published its tag and never returns: the paper's §5 window, which
      other threads must resolve by reading through the tag variable.
    - [Sc_attempt] — before the store-conditional's CAS.  In the simulated
      LL/SC the victim still owns an installed marker that others must be
      able to steal.
    - [Tag_register] — after a tag variable was acquired (refcount 0→1) but
      before the handle is returned.  A crash here abandons one owned
      variable (the paper accepts this bounded leak).
    - [Tag_reregister] / [Tag_deregister] — on entry to the corresponding
      registry protocol calls.
    - [Counter_bump] — after a slot update succeeded but before the lagging
      [Head]/[Tail] counter is CASed forward; other threads must help
      (paper E11-E13 / D11-D13).
    - [Shard_steal] — in a sharded front-end ([Nbq_scale.Sharded]), after
      the home shard reported full/empty but before any foreign shard is
      probed.  A victim frozen here holds no reservation on any ring, yet
      sits mid-operation on the steal path; the other domains' progress
      must not depend on it finishing its sweep.
    - [Op_gap] — between two queue operations, holding nothing.  This point
      is hit by harness-level wrappers only, and is meaningful for {e
      every} queue in the registry (even the lock-based baselines survive a
      stall at an operation boundary). *)

type point =
  | Ll_reserve
  | Slot_swap
  | Sc_attempt
  | Tag_register
  | Tag_reregister
  | Tag_deregister
  | Counter_bump
  | Shard_steal
  | Op_gap

val all : point list
(** Every point, in declaration order. *)

val to_string : point -> string
(** Stable kebab-case name, e.g. ["slot-swap"] (used by [torture --point]
    and in reports). *)

val of_string : string -> point option
(** Inverse of {!to_string}. *)

(** The hook interface threaded through the algorithm functors.  [hit p] is
    called every time execution reaches point [p]; an implementation may
    return (no fault), block (stall the calling thread inside the window),
    raise (crash the operation mid-window), or add a scheduling point (the
    model-checker integration). *)
module type S = sig
  val hit : point -> unit
end

(** No faults: every [hit] is a no-op the compiler can erase.  All
    production instantiations use this. *)
module Noop : S
