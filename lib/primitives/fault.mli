(** Named fault-injection points at the linearization-critical windows of
    the paper's algorithms.

    The paper's progress and space claims are {e adversarial} claims: a
    thread may stall — or die — at the worst possible instant, and the
    remaining threads must still complete operations while the tag-variable
    registry stays bounded.  Each {!point} names one such worst instant.  An
    algorithm functor takes an {!S} alongside its {!Probe.S}; the default
    {!Noop} compiles to nothing, while [Nbq_fault.Injector] supplies hooks
    that freeze ({e stall}) or unwind ({e crash}) the first thread to reach
    an armed point, so torture tests can park a victim inside the window and
    prove the rest of the system keeps going.

    Where each point sits (see DESIGN.md §7c for the paper mapping):
    - [Ll_reserve] — on entry to a load-linked, before the cell is read.
      The victim holds nothing yet.
    - [Slot_swap] — in the CAS-simulated LL/SC, {e just after} the handle's
      tag marker was swapped into the cell.  A victim frozen here has
      published its tag and never returns: the paper's §5 window, which
      other threads must resolve by reading through the tag variable.
    - [Sc_attempt] — before the store-conditional's CAS.  In the simulated
      LL/SC the victim still owns an installed marker that others must be
      able to steal.
    - [Tag_register] — after a tag variable was acquired (refcount 0→1) but
      before the handle is returned.  A crash here abandons one owned
      variable (the paper accepts this bounded leak).
    - [Tag_reregister] / [Tag_deregister] — on entry to the corresponding
      registry protocol calls.
    - [Counter_bump] — after a slot update succeeded but before the lagging
      [Head]/[Tail] counter is CASed forward; other threads must help
      (paper E11-E13 / D11-D13).
    - [Seg_append] — in the segmented unbounded queue
      ([Nbq_segmented.Segmented]), after the tail segment was observed
      full but before the fresh segment is linked/published.  A victim
      frozen here may hold an allocated-but-unlinked segment; other
      enqueuers must be able to append their own.
    - [Seg_retire] — after a drained segment's successor was observed but
      before the head pointer swings and the old segment is handed to
      reclamation.  A victim frozen here pins the retire hand-off; other
      dequeuers must complete it themselves.
    - [Shard_steal] — in a sharded front-end ([Nbq_scale.Sharded]), after
      the home shard reported full/empty but before any foreign shard is
      probed.  A victim frozen here holds no reservation on any ring, yet
      sits mid-operation on the steal path; the other domains' progress
      must not depend on it finishing its sweep.
    - [Op_gap] — between two queue operations, holding nothing.  This point
      is hit by harness-level wrappers only, and is meaningful for {e
      every} queue in the registry (even the lock-based baselines survive a
      stall at an operation boundary).
    - [Park_window] — in the wait layer ([Nbq_wait.Eventcount]), after a
      waiter has been published on the waiter stack and the condition
      re-checked, immediately before the domain actually sleeps.  This is
      the classic lost-wakeup window: a victim frozen here owns a visible
      waiter that wakers will pop and signal, and a victim that {e dies}
      here leaves a dangling waiter the stack hygiene must reap.
    - [Wake_lost] — in a wake path, after the eventcount's sequence counter
      was bumped but before any popped waiter has been signalled.  A waker
      crashing here has "consumed" waiters without delivering their
      signals; parked domains must still be woken by the bounded-park
      backstop (DESIGN.md §10).
    - [Faa_cycle] — in the SCQ family ([Nbq_scq.Scq]), just after a
      fetch-and-add handed out a head/tail ticket but before the slot the
      ticket names is read.  A victim frozen here owns a cycle the other
      threads must be able to invalidate (dequeuers unsafe-mark or bump the
      slot past it); its later arrival must fail cleanly and retry.
    - [Threshold_reset] — after an SCQ enqueue installed its entry but
      before the threshold counter is restored to [3n-1].  A victim frozen
      here leaves dequeuers racing a stale (decremented) threshold; the
      empty-detection claim must not lose the freshly installed item.
    - [Catchup] — inside SCQ's dequeue-side [catchup] loop, before the CAS
      that drags [tail] up to [head + 1].  A victim frozen mid-catchup must
      not block other dequeuers from finishing the same repair. *)

type point =
  | Ll_reserve
  | Slot_swap
  | Sc_attempt
  | Tag_register
  | Tag_reregister
  | Tag_deregister
  | Counter_bump
  | Seg_append
  | Seg_retire
  | Shard_steal
  | Op_gap
  | Park_window
  | Wake_lost
  | Faa_cycle
  | Threshold_reset
  | Catchup

val all : point list
(** Every point, in declaration order. *)

val to_string : point -> string
(** Stable kebab-case name, e.g. ["slot-swap"] (used by [torture --point]
    and in reports). *)

val of_string : string -> point option
(** Inverse of {!to_string}. *)

(** The hook interface threaded through the algorithm functors.  [hit p] is
    called every time execution reaches point [p]; an implementation may
    return (no fault), block (stall the calling thread inside the window),
    raise (crash the operation mid-window), or add a scheduling point (the
    model-checker integration). *)
module type S = sig
  val hit : point -> unit
end

(** No faults: every [hit] is a no-op the compiler can erase.  All
    production instantiations use this. *)
module Noop : S

val compose : (module S) -> (module S) -> (module S)
(** [compose a b] calls [a.hit p] then [b.hit p].  Put the hook that must
    observe the window {e before} the fault fires (the flight recorder) on
    the left and the one that stalls/crashes (the injector) on the
    right. *)
