(** The unified LL/SC cell seam.

    Algorithm 1 and Algorithm 2 of the paper are the same ring algorithm
    over different cell primitives; historically the repo kept two
    near-copies of the queue, one per cell contract.  {!S} is the single
    handle-aware contract the merged queue functor
    ([Nbq_core.Evequoz_ring]) is written against; every backend supplies:

    - {b cells} — [ll] reserves and reads, [sc] conditionally stores,
      [release] rolls an unused reservation back, [read] is a linearizable
      unreserved read (the peek path);
    - {b observe/commit} — the one-CAS batch-run extension (PR 3): a
      reservation-free snapshot that [commit] validates by block identity;
    - {b counters} — monotonic Head/Tail with a helping [counter_advance]
      (paper E11-E13/D11-D13) and a batch [counter_publish];
    - {b handles} — per-thread state with the paper's
      register/reregister/deregister lifecycle.  Backends without
      per-operation registry traffic (ideal cells, Blelloch-Wei) make
      [reregister] a literal no-op.

    Implementations: {!Of_cell} (ideal or weak {!CELL}s, trivial unit
    handles), [Nbq_primitives.Llsc_cas.Backend_injected] (the paper's
    Fig. 5 tag-variable protocol), and
    [Nbq_primitives.Llsc_bw.Make_injected] (Blelloch-Wei constant-time
    LL/SC, arXiv:1911.09671). *)

type audit = { registered : int; owned : int; free : int }
(** One racy registry snapshot: handles ever allocated, currently owned
    (including ones abandoned by crashed threads), and recyclable. *)

(** What Algorithm 1 requires of a handle-free LL/SC cell: exactly the
    interface of {!Nbq_primitives.Llsc}, minus [vl] (unused). *)
module type CELL = sig
  type 'a t
  type 'a link

  val make : 'a -> 'a t
  val ll : 'a t -> 'a link
  val value : 'a link -> 'a
  val sc : 'a t -> 'a link -> 'a -> bool
  val get : 'a t -> 'a
end

module type S = sig
  type 'a t
  type 'a registry
  type 'a handle
  type 'a res
  (** A live reservation, from {!ll}; consumed by {!sc} or {!release}. *)

  type 'a observation
  (** A reservation-free snapshot, from {!observe}; consumed by {!commit}. *)

  type counter

  val create_registry : unit -> 'a registry
  val make : 'a -> 'a t
  val register : 'a registry -> 'a handle
  val reregister : 'a handle -> unit
  (** Per-operation prologue (paper RR1-RR5).  No-op on backends without
      per-operation registry traffic. *)

  val deregister : 'a handle -> unit

  val ll : 'a t -> 'a handle -> 'a res
  val res_value : 'a res -> 'a
  val sc : 'a t -> 'a handle -> 'a res -> 'a -> bool
  val release : 'a t -> 'a handle -> 'a res -> unit
  (** Roll back a reservation that will not be [sc]'d (help/retry paths). *)

  val read : 'a t -> 'a handle -> 'a
  (** Linearizable read without leaving a reservation behind. *)

  val reset : 'a t -> 'a -> unit
  (** Exclusive-owner store, no handle needed: the caller guarantees no
      thread holds (or will take) a reservation or observation on the
      cell for the duration — the segment-recycle case, where hazard
      reclamation has proven the ring unreachable.  Implementations must
      keep the backend's identity discipline (a fresh block per mutation
      where observe/commit relies on it) so a stale [commit] from a
      protocol violation still fails rather than corrupting the cell. *)

  val observe : 'a t -> 'a handle -> 'a observation
  val observed_holds : 'a observation -> 'a -> bool
  val observed_get : 'a observation -> 'a
  (** @raise Not_found when the observation caught a competing
      reservation rather than a value. *)

  val commit : 'a t -> 'a handle -> 'a observation -> 'a -> bool

  val make_counter : int -> counter
  val counter_get : counter -> int

  val counter_advance : counter -> int -> unit
  (** Help the counter from [expected] to [expected + 1]; must be a no-op
      if the counter is already past [expected]. *)

  val counter_publish : counter -> from:int -> target:int -> unit
  (** Advance to [target] tolerating helpers: one-shot CAS, then a +1
      walk.  Callers only request targets whose slots they have already
      filled/emptied. *)

  val registered_count : 'a registry -> int
  val owned_count : 'a registry -> int
  val audit : 'a registry -> audit
end

(** Plain-atomic monotonic counters (single-CAS advance), shared by the
    CAS-family backends. *)
module Cas_counter (A : Atomic_intf.ATOMIC) : sig
  type counter = int A.t

  val make_counter : int -> counter
  val counter_get : counter -> int
  val counter_advance : counter -> int -> unit
  val counter_publish : counter -> from:int -> target:int -> unit
end

(** The trivial backend over a handle-free cell: unit handles, empty
    registry, counters as [int Cell.t] ll/sc variables (the advance
    retries until the counter is observed past the expected value, so
    spuriously failing weak cells cannot drop a bump). *)
module Of_cell (Cell : CELL) :
  S
    with type 'a t = 'a Cell.t
     and type 'a handle = unit
     and type 'a registry = unit
     and type counter = int Cell.t
