(* The one cell contract every ring-queue backend satisfies.  See the .mli
   for how the three implementations (ideal cells, the paper's tag-variable
   CAS simulation, Blelloch-Wei announcements) map onto it. *)

type audit = { registered : int; owned : int; free : int }

module type CELL = sig
  type 'a t
  type 'a link

  val make : 'a -> 'a t
  val ll : 'a t -> 'a link
  val value : 'a link -> 'a
  val sc : 'a t -> 'a link -> 'a -> bool
  val get : 'a t -> 'a
end

module type S = sig
  type 'a t
  type 'a registry
  type 'a handle
  type 'a res
  type 'a observation
  type counter

  val create_registry : unit -> 'a registry
  val make : 'a -> 'a t
  val register : 'a registry -> 'a handle
  val reregister : 'a handle -> unit
  val deregister : 'a handle -> unit

  val ll : 'a t -> 'a handle -> 'a res
  val res_value : 'a res -> 'a
  val sc : 'a t -> 'a handle -> 'a res -> 'a -> bool
  val release : 'a t -> 'a handle -> 'a res -> unit
  val read : 'a t -> 'a handle -> 'a
  val reset : 'a t -> 'a -> unit

  val observe : 'a t -> 'a handle -> 'a observation
  val observed_holds : 'a observation -> 'a -> bool
  val observed_get : 'a observation -> 'a
  val commit : 'a t -> 'a handle -> 'a observation -> 'a -> bool

  val make_counter : int -> counter
  val counter_get : counter -> int
  val counter_advance : counter -> int -> unit
  val counter_publish : counter -> from:int -> target:int -> unit

  val registered_count : 'a registry -> int
  val owned_count : 'a registry -> int
  val audit : 'a registry -> audit
end

(* Monotonic counters over plain atomics: the helping advance is a single
   CAS (its failure proves another thread performed the bump), publication
   is a one-shot CAS with a +1 helper-tolerant walk.  Shared by the CAS
   and Blelloch-Wei backends. *)
module Cas_counter (A : Atomic_intf.ATOMIC) = struct
  type counter = int A.t

  let make_counter = A.make
  let counter_get = A.get

  let counter_advance c expected = ignore (A.compare_and_set c expected (expected + 1))

  let counter_publish c ~from ~target =
    if not (A.compare_and_set c from target) then begin
      let rec walk () =
        let cur = A.get c in
        if cur - target < 0 then begin
          ignore (A.compare_and_set c cur (cur + 1));
          walk ()
        end
      in
      walk ()
    end
end

module Of_cell (Cell : CELL) = struct
  type 'a t = 'a Cell.t
  type 'a registry = unit
  type 'a handle = unit
  type 'a res = 'a Cell.link
  type 'a observation = 'a Cell.link

  let create_registry () = ()
  let make = Cell.make
  let register () = ()
  let reregister () = ()
  let deregister () = ()

  let ll cell () = Cell.ll cell
  let res_value = Cell.value
  let sc cell () link v = Cell.sc cell link v
  let release _cell () _link = ()
  let read cell () = Cell.get cell

  (* Exclusive-owner store: with no reservation outstanding the sc can
     only fail spuriously (weak cells), so the loop is bounded in
     practice and single-shot on ideal cells. *)
  let reset cell v =
    let rec go () =
      let link = Cell.ll cell in
      if not (Cell.sc cell link v) then go ()
    in
    go ()

  (* Ideal LL always succeeds, so an observation is just a reservation the
     backend never has to publish; [commit] is the matching sc. *)
  let observe cell () = Cell.ll cell
  let observed_holds obs v = Cell.value obs == v
  let observed_get = Cell.value
  let commit cell () obs v = Cell.sc cell obs v

  type counter = int Cell.t

  let make_counter = Cell.make
  let counter_get = Cell.get

  (* Retry until the counter is observed past [expected]: a spuriously
     failing sc (weak cells, paper section 5) must not drop the bump and
     let a lagging counter fool the empty/full tests.  On ideal cells the
     retry never triggers more than once. *)
  let counter_advance c expected =
    let rec go () =
      let link = Cell.ll c in
      if Cell.value link = expected then
        if not (Cell.sc c link (expected + 1)) then go ()
    in
    go ()

  let counter_publish c ~from ~target =
    let rec walk () =
      let link = Cell.ll c in
      let cur = Cell.value link in
      if cur - target < 0 then begin
        ignore (Cell.sc c link (cur + 1));
        walk ()
      end
    in
    let link = Cell.ll c in
    if Cell.value link = from then begin
      if not (Cell.sc c link target) then walk ()
    end
    else walk ()

  let registered_count () = 0
  let owned_count () = 0
  let audit () = { registered = 0; owned = 0; free = 0 }
end
