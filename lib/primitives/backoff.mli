(** Truncated exponential backoff for contended retry loops.

    Every lock-free retry loop in this repository may optionally spin through
    one of these between attempts.  The paper's algorithms do not prescribe a
    contention manager; backoff is an orthogonal knob that the ablation
    benchmark ({!section-"E8"} in DESIGN.md) switches on and off. *)

type t
(** Mutable per-call-site backoff state.  Not thread-safe; allocate one per
    domain and per loop (they are two words, this is cheap). *)

val create : ?min_wait:int -> ?max_wait:int -> ?jitter:bool -> unit -> t
(** [create ~min_wait ~max_wait ()] bounds the spin count between
    [min_wait] (default 1) and [max_wait] (default 4096) iterations of
    [Domain.cpu_relax].  With [~jitter:true] (default [false]) each {!once}
    spins for a uniformly random count in [\[min_wait, envelope\]] drawn from
    the calling domain's {!Prng.domain_local} stream — decorrelating convoys
    of threads that hit contention together — while the envelope itself still
    doubles deterministically.  Raises [Invalid_argument] if
    [min_wait < 1 || max_wait < min_wait]. *)

val once : t -> unit
(** Spin for the current wait amount (exact, or jittered below the envelope),
    then double the envelope (saturating at [max_wait]). *)

val reset : t -> unit
(** Forget accumulated contention; the next {!once} waits [min_wait]. *)

val current : t -> int
(** The current envelope: the spin count the next non-jittered {!once} would
    use, and the inclusive upper bound on a jittered one.  Always within
    [\[min_wait, max_wait\]]; exposed for tests. *)

val last_wait : t -> int
(** The spin count actually used by the most recent {!once} (0 before the
    first, and after {!reset}).  With jitter it lies in
    [\[min_wait, current-before-that-once\]]; exposed for tests. *)
