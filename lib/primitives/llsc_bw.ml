(* Blelloch-Wei constant-time LL/SC from pointer-width CAS
   (arXiv:1911.09671), behind the unified backend seam.

   A cell is a single atomic word holding a pointer to a value buffer.  LL
   announces the buffer it read in a per-thread single-writer announcement
   slot and revalidates the cell; from that point the buffer cannot be
   recycled, so reading through it is safe.  SC installs a freshly drawn
   buffer with one CAS and retires the old one to the thread's local pile;
   when the pile reaches the amortization threshold, one scan over all
   announcement slots recycles every retired buffer nobody is protecting.
   There is no per-operation registry traffic at all: [reregister] is a
   literal no-op — the announcement plays the tag variable's role and is
   reclaimed implicitly by being overwritten. *)

type space = {
  handles : int;
  owned_handles : int;
  free_bufs : int;
  retired_bufs : int;
  announced : int;
}

module type CONFIG = sig
  val scan_announcements : bool
  (** When [false], reclamation ignores announcements — the seeded bug the
      model checker must convict (a reader's buffer is recycled under it,
      resurrecting the pointer ABA the announcement exists to close). *)

  val retire_threshold : int
  (** Retired buffers a thread piles up before paying one announcement
      scan; the constant-time amortization knob. *)
end

module Default_config = struct
  let scan_announcements = true
  let retire_threshold = 4
end

module Make_config
    (C : CONFIG)
    (A : Atomic_intf.ATOMIC)
    (P : Probe.S)
    (F : Fault.S) =
struct
  type 'a buf = { mutable v : 'a }

  type 'a t = 'a buf A.t

  (* One record per registered thread: the announcement slot (single
     writer, scanned by everyone) plus owner-private buffer piles.  The
     chain is append-only, recycled through [active] exactly like the tag
     registry — but walked only on registration and on the amortized
     reclamation scan, never per operation. *)
  type 'a thread = {
    announce : 'a buf option A.t;
    active : int A.t;
    mutable free : 'a buf list;
    mutable retired : 'a buf list;
    mutable retired_n : int;
    registry : 'a registry;
    mutable next : 'a thread option;
  }

  and 'a registry = { first : 'a thread option A.t }

  type 'a handle = 'a thread
  type 'a res = 'a buf
  type 'a observation = 'a buf

  let create_registry () = { first = A.make None }

  let make v : 'a t = A.make { v }

  (* --- Registration: amortized-only registry traffic --- *)

  let rec find_free = function
    | None -> None
    | Some th ->
        if A.get th.active = 0 && A.compare_and_set th.active 0 1 then Some th
        else find_free th.next

  let register reg =
    let th =
      match find_free (A.get reg.first) with
      | Some th ->
          P.tag_recycle ();
          th
      | None ->
          let th =
            {
              announce = A.make None;
              active = A.make 1;
              free = [];
              retired = [];
              retired_n = 0;
              registry = reg;
              next = None;
            }
          in
          let rec push () =
            let cur = A.get reg.first in
            th.next <- cur;
            if not (A.compare_and_set reg.first cur (Some th)) then push ()
          in
          push ();
          th
    in
    (* Past this point the record is owned; a crash here abandons it — the
       same bounded leak the tag registry accepts. *)
    F.hit Fault.Tag_register;
    P.tag_register ();
    th

  (* The whole point: no per-operation protocol, no probe, no window. *)
  let reregister (_ : 'a handle) = ()

  let deregister h =
    F.hit Fault.Tag_deregister;
    P.tag_deregister ();
    A.set h.announce None;
    A.set h.active 0

  (* --- Buffer pool with help-based (scan) reclamation --- *)

  let scan h =
    let announced =
      let rec go acc = function
        | None -> acc
        | Some th -> (
            match A.get th.announce with
            | Some b -> go (b :: acc) th.next
            | None -> go acc th.next)
      in
      go [] (A.get h.registry.first)
    in
    let keep, recycled =
      List.partition (fun b -> List.memq b announced) h.retired
    in
    h.free <- recycled @ h.free;
    h.retired <- keep;
    h.retired_n <- List.length keep

  let alloc h v =
    (match h.free with
    | [] ->
        if h.retired_n >= C.retire_threshold then
          if C.scan_announcements then scan h
          else begin
            h.free <- h.retired;
            h.retired <- [];
            h.retired_n <- 0
          end
    | _ :: _ -> ());
    match h.free with
    | b :: rest ->
        h.free <- rest;
        b.v <- v;
        b
    | [] -> { v }

  let retire h b =
    h.retired <- b :: h.retired;
    h.retired_n <- h.retired_n + 1

  (* --- LL / SC --- *)

  let ll cell h =
    F.hit Fault.Ll_reserve;
    let rec go () =
      let b = A.get cell in
      A.set h.announce (Some b);
      (* A victim frozen (or killed) here holds a published announcement:
         everyone else keeps going, paying at most one unreclaimed buffer
         per frozen thread — the Blelloch-Wei analogue of the abandoned
         tag-variable window. *)
      F.hit Fault.Slot_swap;
      if A.get cell == b then begin
        P.ll_reserve ();
        b
      end
      else go ()
    in
    go ()

  let res_value (b : 'a res) = b.v

  let sc cell h (b : 'a res) v =
    F.hit Fault.Sc_attempt;
    let nb = alloc h v in
    if A.compare_and_set cell b nb then begin
      A.set h.announce None;
      retire h b;
      true
    end
    else begin
      h.free <- nb :: h.free;
      A.set h.announce None;
      false
    end

  (* A reservation is only an announcement; releasing it is overwriting
     the slot — no cell traffic, nothing to roll back. *)
  let release _cell h (_ : 'a res) = A.set h.announce None

  (* Exclusive-owner store.  A fresh buffer (not an in-place [b.v <-])
     keeps the invariant that every cell mutation installs a new block, so
     a reservation or observation leaked across a reset can never commit.
     The abandoned buffer is unreachable and simply collected. *)
  let reset cell v = A.set cell { v }

  let read cell h =
    F.hit Fault.Ll_reserve;
    let rec go () =
      let b = A.get cell in
      A.set h.announce (Some b);
      F.hit Fault.Slot_swap;
      if A.get cell == b then begin
        P.ll_reserve ();
        let v = b.v in
        A.set h.announce None;
        v
      end
      else go ()
    in
    go ()

  (* --- Observe / commit: an announced read the commit CASes against --- *)

  let observe cell h =
    let rec go () =
      let b = A.get cell in
      A.set h.announce (Some b);
      if A.get cell == b then b else go ()
    in
    go ()

  let observed_holds (obs : 'a observation) v = obs.v == v

  (* No foreign reservation is ever visible in a cell, so an observation
     always carries a value (never raises, unlike the tag protocol's). *)
  let observed_get (obs : 'a observation) = obs.v

  let commit cell h (obs : 'a observation) v =
    F.hit Fault.Sc_attempt;
    let nb = alloc h v in
    if A.compare_and_set cell obs nb then begin
      A.set h.announce None;
      retire h obs;
      true
    end
    else begin
      h.free <- nb :: h.free;
      A.set h.announce None;
      false
    end

  include Llsc_backend.Cas_counter (A)

  (* --- Introspection --- *)

  let fold_threads reg f acc =
    let rec go acc = function
      | None -> acc
      | Some th -> go (f acc th) th.next
    in
    go acc (A.get reg.first)

  let registered_count reg = fold_threads reg (fun n _ -> n + 1) 0

  let owned_count reg =
    fold_threads reg (fun n th -> if A.get th.active > 0 then n + 1 else n) 0

  let audit reg : Llsc_backend.audit =
    let registered, owned =
      fold_threads reg
        (fun (r, o) th -> (r + 1, if A.get th.active > 0 then o + 1 else o))
        (0, 0)
    in
    { registered; owned; free = registered - owned }

  (* Racy bounded-space snapshot: buffer piles are owner-private lists,
     but list cells are immutable, so a stale read is a valid recent
     state. *)
  let space reg =
    fold_threads reg
      (fun s th ->
        {
          handles = s.handles + 1;
          owned_handles =
            s.owned_handles + (if A.get th.active > 0 then 1 else 0);
          free_bufs = s.free_bufs + List.length th.free;
          retired_bufs = s.retired_bufs + List.length th.retired;
          announced =
            s.announced
            + (match A.get th.announce with Some _ -> 1 | None -> 0);
        })
      {
        handles = 0;
        owned_handles = 0;
        free_bufs = 0;
        retired_bufs = 0;
        announced = 0;
      }
end

module Make_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
  Make_config (Default_config) (A) (P) (F)

module Make_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) =
  Make_injected (A) (P) (Fault.Noop)

module Make (A : Atomic_intf.ATOMIC) = Make_probed (A) (Probe.Noop)

include Make (Atomic_intf.Real)
