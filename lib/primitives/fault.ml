type point =
  | Ll_reserve
  | Slot_swap
  | Sc_attempt
  | Tag_register
  | Tag_reregister
  | Tag_deregister
  | Counter_bump
  | Seg_append
  | Seg_retire
  | Shard_steal
  | Op_gap
  | Park_window
  | Wake_lost
  | Faa_cycle
  | Threshold_reset
  | Catchup

let all =
  [
    Ll_reserve; Slot_swap; Sc_attempt; Tag_register; Tag_reregister;
    Tag_deregister; Counter_bump; Seg_append; Seg_retire; Shard_steal;
    Op_gap; Park_window; Wake_lost; Faa_cycle; Threshold_reset; Catchup;
  ]

let to_string = function
  | Ll_reserve -> "ll-reserve"
  | Slot_swap -> "slot-swap"
  | Sc_attempt -> "sc-attempt"
  | Tag_register -> "tag-register"
  | Tag_reregister -> "tag-reregister"
  | Tag_deregister -> "tag-deregister"
  | Counter_bump -> "counter-bump"
  | Seg_append -> "seg-append"
  | Seg_retire -> "seg-retire"
  | Shard_steal -> "shard-steal"
  | Op_gap -> "op-gap"
  | Park_window -> "park-window"
  | Wake_lost -> "wake-lost"
  | Faa_cycle -> "faa-cycle"
  | Threshold_reset -> "threshold-reset"
  | Catchup -> "catchup"

let of_string s = List.find_opt (fun p -> to_string p = s) all

module type S = sig
  val hit : point -> unit
end

module Noop : S = struct
  let hit _ = ()
end

(* [compose a b] runs [a]'s hook first, then [b]'s.  Order matters when
   [b] stalls or raises: a flight recorder composed on the left has
   already written its "entered the window" record by the time the
   injector freezes or kills the thread inside it. *)
let compose (module A : S) (module B : S) : (module S) =
  (module struct
    let hit p =
      A.hit p;
      B.hit p
  end)
