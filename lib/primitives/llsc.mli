(** Ideal load-linked / store-conditional cells (paper, Fig. 2).

    A cell supports [ll] (load-linked: read the value and acquire a
    reservation), [sc] (store-conditional: write a new value iff no successful
    [sc] and no {!S.set} intervened since the reservation was taken) and [vl]
    (validate: check the reservation still holds).  These are the {e
    theoretical} semantics assumed by the paper's first algorithm: any number
    of threads may hold simultaneous reservations on the same cell, a
    successful [sc] invalidates all of them, and [sc] never fails spuriously.

    {b Implementation.}  The cell is an atomic word holding a pointer to an
    immutable one-field box; every store installs a freshly allocated box, and
    [sc] is a compare-and-set on the {e box identity}.  Because box identities
    are never reused (the GC guarantees a live box's address is unique), "the
    box I read is still installed" is exactly "no write happened since my
    read" — reservation semantics with no ABA, which is what hardware LL/SC
    provides.  This substitutes for [lwarx/stwcx]-style instructions that
    OCaml cannot emit directly (DESIGN.md §2).

    The implementation is a functor over {!Atomic_intf.ATOMIC} so the model
    checker can drive it on instrumented atomics; the toplevel interface is
    the instantiation on real atomics.  The {!Weak} submodule injects
    spurious [sc] failures to model the real-architecture limitations listed
    in §5 of the paper. *)

module type S = sig
  type 'a t
  (** A shared LL/SC variable holding values of type ['a]. *)

  type 'a link
  (** A reservation witness returned by {!ll}: remembers both the value read
      and the reservation it came from. *)

  val make : 'a -> 'a t
  (** [make v] allocates a cell initially holding [v]. *)

  val ll : 'a t -> 'a link
  (** Load-linked: read the current value and take a reservation. *)

  val value : 'a link -> 'a
  (** The value observed by the {!ll} that produced this link. *)

  val sc : 'a t -> 'a link -> 'a -> bool
  (** [sc cell link v] stores [v] iff the cell has not been successfully
      written since [link] was obtained.  Returns whether the store
      happened. *)

  val vl : 'a t -> 'a link -> bool
  (** [vl cell link] is [true] iff an [sc cell link _] would currently
      succeed. *)

  val get : 'a t -> 'a
  (** Plain read without taking a reservation. *)

  val set : 'a t -> 'a -> unit
  (** Unconditional store.  Invalidates all outstanding reservations. *)
end

module Make_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) : S
(** Fully instrumented cell: besides the probe, [F.hit] fires at the
    fault-injection windows — {!Fault.Ll_reserve} on entry to [ll] and
    {!Fault.Sc_attempt} just before [sc]'s compare-and-set — so torture
    harnesses can stall or crash a thread inside them. *)

module Make_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) : S
(** [Make_injected] with {!Fault.Noop}: instrumentation hook only —
    [P.ll_reserve] fires on every load-linked.  [sc] failures are probed by
    callers, which can tell update-path failures from benign helping
    races. *)

module Make (A : Atomic_intf.ATOMIC) : S
(** [Make_probed] with {!Probe.Noop}: the uninstrumented default. *)

include S

(** LL/SC with injected spurious failures.

    Real architectures allow [sc] to fail even when the cell is untouched
    (cache-line replacement, preemption, nearby writes — §5 of the paper).
    [Weak] wraps the ideal cell and makes [sc] fail with a configurable
    probability, drawing from the calling domain's {!Prng.domain_local}
    stream.  Algorithms that are correct under ideal LL/SC remain correct
    under weak LL/SC iff they treat [sc] failure as "retry", which the
    paper's Algorithm 1 does; the ablation benchmark measures the throughput
    cost. *)
module Weak : sig
  type 'a cell

  val make : failure_rate:float -> 'a -> 'a cell
  (** [make ~failure_rate v] creates a cell whose [sc] spuriously fails with
      probability [failure_rate] (clamped to [\[0, 1\]]) even when it would
      succeed. *)

  val ll : 'a cell -> 'a link
  val value : 'a link -> 'a
  val sc : 'a cell -> 'a link -> 'a -> bool
  val vl : 'a cell -> 'a link -> bool
  val get : 'a cell -> 'a
  val set : 'a cell -> 'a -> unit
end
