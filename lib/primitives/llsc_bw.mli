(** Blelloch-Wei constant-time LL/SC from pointer-width CAS
    (arXiv:1911.09671), as an {!Llsc_backend.S} backend.

    Where the paper's Fig. 5 protocol simulates LL/SC by swapping a
    thread-owned {e marker} into the cell (paying the
    Register/ReRegister/Deregister tag-variable protocol on every
    operation), Blelloch-Wei leaves the cell alone: a cell permanently
    holds a pointer to a {e value buffer}, LL protects the buffer it read
    by publishing it in the thread's single-writer announcement slot and
    revalidating the cell, and SC replaces the buffer with one CAS.
    Replaced buffers go to the owner's retired pile; once the pile reaches
    [retire_threshold], one scan over all announcement slots recycles every
    buffer nobody is protecting — O(threads) work amortized over
    [retire_threshold] operations, so LL and SC are constant-time and the
    hot path generates {b zero registry traffic} ([reregister] is a literal
    no-op and fires no probe).

    {b Tagged-pointer substitution.}  The original distinguishes buffer
    versions with packed tag bits; OCaml cannot tag native pointers, so
    buffer {e identity} (a fresh or provably unprotected heap block per
    install) plays the tag's role: a CAS succeeds only against the exact
    block previously read, and the announcement guarantees a protected
    block is never recycled — closing the recycled-buffer ABA.  Disabling
    the scan ({!CONFIG.scan_announcements}[ = false]) reopens exactly that
    ABA; the model checker convicts it on a two-thread capacity-2 queue.

    Fault windows map onto the existing points: [Ll_reserve] on LL entry,
    [Slot_swap] between announcement publication and cell revalidation
    (the window a frozen thread blocks one buffer's reclamation),
    [Sc_attempt] before the install CAS, [Tag_register]/[Tag_deregister]
    around the (amortized-only) registration; [Tag_reregister] never
    fires. *)

type space = {
  handles : int;  (** thread records ever allocated *)
  owned_handles : int;  (** currently registered (or abandoned) *)
  free_bufs : int;  (** pooled buffers ready for reuse *)
  retired_bufs : int;  (** awaiting a reclamation scan *)
  announced : int;  (** buffers currently protected by a reader *)
}
(** One racy snapshot of the whole backing store — the bounded-space
    companion to {!Llsc_backend.audit}. *)

module type CONFIG = sig
  val scan_announcements : bool
  (** When [false], reclamation ignores announcements: the seeded
      recycled-buffer ABA bug for the model checker. *)

  val retire_threshold : int
  (** Retired buffers piled up before one announcement scan is paid. *)
end

module Default_config : CONFIG

module Make_config
    (C : CONFIG)
    (A : Atomic_intf.ATOMIC)
    (P : Probe.S)
    (F : Fault.S) : sig
  include Llsc_backend.S

  val space : 'a registry -> space
end

module Make_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) :
sig
  include Llsc_backend.S

  val space : 'a registry -> space
end

module Make_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) : sig
  include Llsc_backend.S

  val space : 'a registry -> space
end

module Make (A : Atomic_intf.ATOMIC) : sig
  include Llsc_backend.S

  val space : 'a registry -> space
end

include Llsc_backend.S

val space : 'a registry -> space
