(** CAS-simulated LL/SC with thread-owned tag variables (paper, Fig. 5).

    This is the paper's second core mechanism, factored out of the queue so
    that it can also drive the MS-Doherty baseline (DESIGN.md §2, S2).  A
    cell is a single pointer-wide atomic word that contains either an
    application value or a {e reservation marker} identifying the tag
    variable ([LLSCvar] in the paper) of the thread that currently holds a
    simulated load-linked reservation:

    - [ll cell handle] reads the cell's logical value into the handle's tag
      variable and atomically swaps the cell's content for the handle's
      marker.  If the cell already holds another thread's marker, the logical
      value is fetched through that thread's tag variable under a
      fetch-and-add reference-count protocol that closes the marker-reuse ABA
      window described in §5 of the paper.
    - [sc cell handle v] is a plain CAS expecting the handle's own marker;
      it succeeds iff the reservation was not stolen in the meantime.
      Restoring the previously read value ("rollback", the paper's
      [CAS(&Q[i], var^1, slot)]) is just [sc] with the old value.

    Tag variables are recycled through a population-oblivious registry (the
    paper's [Register] / [ReRegister] / [Deregister], a simplification of
    Herlihy–Luchangco–Moir's collect protocol): registration scans a lock-free
    list for a variable whose reference count CASes 0→1, else appends a fresh
    one; re-registration between two structure operations keeps the variable
    only when no other thread is reading through it.

    {b Pointer-tagging substitution.}  The paper distinguishes data from
    markers by the low bit of an aligned pointer ([var^1]).  OCaml cannot tag
    native pointers, so the word holds a one-constructor-deep variant
    ([Value v] / a marker block) and CAS compares the identity of the block
    read.  A handle's marker block is allocated {e once per registration} and
    reused across operations — exactly like the paper's tagged address — so
    the ABA hazard the reference counts guard against is preserved, not
    defined away.

    Functorized over {!Atomic_intf.ATOMIC} for the model checker; the
    toplevel interface is the real-atomics instantiation. *)

type audit = Llsc_backend.audit = { registered : int; owned : int; free : int }
(** One racy snapshot of a registry: variables ever allocated, variables
    with a non-zero reference count (owned by a handle or pinned by a
    reader — including variables abandoned by a crashed thread), and the
    recyclable remainder.  For tests and the torture harness's
    no-unbounded-growth assertions. *)

module type S = sig
  type 'a t
  (** A simulated LL/SC cell holding logical values of type ['a]. *)

  type 'a registry
  (** The shared list of tag variables for one family of cells (one registry
      per concurrent object instance). *)

  type 'a handle
  (** A thread's registered tag variable plus its reusable marker block.  A
      handle must not be used by two domains at once. *)

  val create_registry : unit -> 'a registry
  (** A fresh, empty registry. *)

  val make : 'a -> 'a t
  (** [make v] allocates a cell with logical value [v]. *)

  val register : 'a registry -> 'a handle
  (** Acquire a tag variable: recycle an unowned one from the registry or
      append a fresh one (paper's [Register]).  Lock-free; time and space are
      O(maximum number of simultaneously registered threads). *)

  val reregister : 'a handle -> unit
  (** Must be called between two consecutive operations on cells (paper's
      [ReRegister]).  Keeps the current tag variable if no other thread holds
      a reference to it, otherwise releases it and acquires another. *)

  val deregister : 'a handle -> unit
  (** Release the handle's tag variable for recycling (paper's [Deregister]).
      The variable itself is never freed — later registrations may reuse it.
      Using the handle after [deregister] is a programming error. *)

  val ll : 'a t -> 'a handle -> 'a
  (** Simulated load-linked: returns the cell's logical value and installs
      the handle's marker.  Always succeeds (lock-free; retries on marker
      races). *)

  val sc : 'a t -> 'a handle -> 'a -> bool
  (** Simulated store-conditional: CAS the handle's own marker to [Value v].
      Fails iff another thread's [ll] stole the reservation since ours. *)

  type 'a observation
  (** The exact block read from a cell by {!observe}: the capability to
      {!commit} against it once. *)

  val observe : 'a t -> 'a observation
  (** One plain atomic read of the cell, remembering the physical block. *)

  val observed_value : 'a observation -> 'a option
  (** The logical value behind an observation, or [None] when the cell held
      a thread's reservation marker at read time (callers should fall back
      to the ll/sc protocol). *)

  val observed_holds : 'a observation -> 'a -> bool
  (** [observed_holds obs v] is true iff the observation saw exactly the
      logical value [v] (physical equality).  Allocation-free counterpart
      of {!observed_value} for hot loops testing against an immediate
      sentinel such as a queue's [Empty]. *)

  val observed_get : 'a observation -> 'a
  (** The logical value behind an observation; raises [Not_found] when the
      cell held a reservation marker at read time.  Allocation-free
      counterpart of {!observed_value} for hot loops (the raise only fires
      on the rare marker observation). *)

  val commit : 'a t -> 'a observation -> 'a -> bool
  (** [commit cell obs v] installs [v] iff the cell still holds the exact
      block {!observe} returned — a single physical-equality CAS playing
      the role of an ll/sc pair (extension, not in the paper).  Sound
      without tags because every cell mutation ([sc], [commit],
      [unsafe_set]) installs a freshly allocated block and no old value
      block is ever re-installed, so physical equality proves the cell was
      untouched since the observation; the allocation itself is the tag.
      This is a property of this boxed OCaml representation, not of the
      paper's raw-word cells.  Used by the batch-run extension to spend one
      CAS per slot instead of two. *)

  val peek : 'a t -> 'a
  (** Read the logical value without reserving: reads through a foreign
      marker via its tag variable's placeholder.  Safe for heuristic checks
      (e.g. the queue's [t == Tail] revalidations); not a reservation. *)

  val unsafe_set : 'a t -> 'a -> unit
  (** Unconditional store, destroying any outstanding reservation.  Only for
      (re)initialization of a cell that the caller owns exclusively, e.g. a
      recycled queue node before publication. *)

  val registered_count : 'a registry -> int
  (** Number of tag variables ever allocated into the registry — the paper's
      space-adaptivity metric (grows with the maximum number of concurrent
      threads, not with traffic).  O(n) scan; for tests and experiments. *)

  val owned_count : 'a registry -> int
  (** Number of tag variables whose reference count is non-zero right now.
      O(n) scan; racy by nature, for tests and experiments. *)

  val audit : 'a registry -> audit
  (** {!registered_count} and {!owned_count} in one scan. *)
end

module Make_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) : S
(** Like {!Make_probed}, additionally firing [F.hit] at the protocol's
    fault-injection windows: {!Fault.Ll_reserve} on entry to [ll],
    {!Fault.Slot_swap} just {e after} the handle's marker was swapped into
    the cell (the §5 abandonment window), {!Fault.Sc_attempt} before [sc]'s
    CAS, and {!Fault.Tag_register} / {!Fault.Tag_reregister} /
    {!Fault.Tag_deregister} inside the registry protocol ([Tag_register]
    fires after the variable is owned, so a crash there abandons it). *)

module Make_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) : S
(** Like {!Make}, with instrumentation hooks: [P.ll_reserve] fires on every
    successful reservation, [P.tag_register] / [P.tag_reregister] /
    [P.tag_deregister] on the corresponding protocol calls and
    [P.tag_recycle] when a registration reuses a free variable.  [sc]
    failures are {e not} probed here — rollbacks use [sc] too and their
    failures are benign; callers probe the update path. *)

module Make (A : Atomic_intf.ATOMIC) : S
(** [Make_probed] with {!Probe.Noop}: the uninstrumented default. *)

module Backend_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) :
  Llsc_backend.S
(** The protocol behind the unified {!Llsc_backend.S} seam: reservation
    tokens are the values read (rollback = [sc] restoring the old value),
    Head/Tail counters are plain atomics with a single helping CAS
    (paper Fig. 5, right column), observe/commit as in {!S.commit}.
    [reregister] stays the paper-mandated per-operation protocol — this is
    the backend the Blelloch-Wei port is ablated against. *)

include S
