module Atomic_intf = Nbq_primitives.Atomic_intf
module Probe = Nbq_primitives.Probe
module Fault = Nbq_primitives.Fault

(* The unified ring over the Blelloch-Wei constant-time LL/SC backend
   (arXiv:1911.09671): same Algorithm-1 structure as the paper rows, but
   the per-operation ReRegister is a literal no-op — the hot path touches
   no registry at all.  See Nbq_primitives.Llsc_bw. *)
module Make_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
struct
  module Backend = Nbq_primitives.Llsc_bw.Make_injected (A) (P) (F)
  include Evequoz_ring.Make_injected (Backend) (P) (F)

  let space t = Backend.space t.registry
end

module Make_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) =
  Make_injected (A) (P) (Fault.Noop)

module Make (A : Atomic_intf.ATOMIC) = Make_probed (A) (Probe.Noop)

module Core = Make (Atomic_intf.Real)

module Impl = struct
  include Evequoz_cas.With_implicit_handles (Core)

  let name = "evequoz-bw"
end

include Impl

module Batched = struct
  include Impl

  let try_enqueue_batch = try_enqueue_batch_runs
  let try_dequeue_batch = try_dequeue_batch_runs
end
