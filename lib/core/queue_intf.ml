(** Module types shared by every queue in the repository.

    Two families exist: the paper's queues (and the array-based baselines)
    are {e bounded} — enqueue can fail with "full" — while the Michael–Scott
    family is {e unbounded}.  {!CONC} unifies them so tests, the
    linearizability checker and the benchmark harness can treat any
    implementation as a first-class value; {!Of_bounded} / {!Of_unbounded}
    build the unified view, and {!Blocking} layers spinning (with
    exponential backoff) on top for applications that want blocking
    semantics. *)

(** A multi-producer multi-consumer bounded FIFO. *)
module type BOUNDED = sig
  type 'a t

  val name : string
  (** Short algorithm name used in reports, e.g. ["evequoz-llsc"]. *)

  val create : capacity:int -> 'a t
  (** [create ~capacity] makes an empty queue able to hold at least
      [capacity] items (implementations round up to a power of two).
      Raises [Invalid_argument] if [capacity < 1]. *)

  val capacity : 'a t -> int
  (** The actual (rounded) capacity. *)

  val try_enqueue : 'a t -> 'a -> bool
  (** Insert at the tail; [false] means the queue was full at some point
      during the call (linearizable "full"). Lock-free. *)

  val try_dequeue : 'a t -> 'a option
  (** Remove from the head; [None] means the queue was empty at some point
      during the call (linearizable "empty"). Lock-free. *)

  val length : 'a t -> int
  (** Number of queued items.  Exact when quiescent; a linearizable-ish
      snapshot under concurrency (may be transiently stale). *)
end

(** A multi-producer multi-consumer unbounded FIFO. *)
module type UNBOUNDED = sig
  type 'a t

  val name : string
  val create : unit -> 'a t

  val enqueue : 'a t -> 'a -> unit
  (** Always succeeds. Lock-free (for the non-blocking implementations). *)

  val try_dequeue : 'a t -> 'a option
  val length : 'a t -> int
end

(** The unified view used by the harness and the conformance battery. *)
module type CONC = sig
  type 'a t

  val name : string

  val bounded : bool
  (** Whether [try_enqueue] can ever return [false]. *)

  val create : capacity:int -> 'a t
  (** [capacity] is ignored by unbounded implementations. *)

  val try_enqueue : 'a t -> 'a -> bool
  val try_dequeue : 'a t -> 'a option

  val try_enqueue_batch : 'a t -> 'a array -> int
  (** Insert the items {e in array order}, stopping at the first "full";
      returns the number accepted (a prefix of the array).  Equivalent to
      a loop of {!try_enqueue} — implementations override it only to
      amortize per-operation overhead, never to change semantics. *)

  val try_dequeue_batch : 'a t -> int -> 'a list
  (** Remove up to [k] items in FIFO order, stopping at the first "empty";
      the result (length [<= k]) preserves queue order.  Equivalent to a
      loop of {!try_dequeue}. *)

  val length : 'a t -> int
end

(* Batch fallbacks shared by the adapters below: a batch is exactly a loop
   of single operations, so the default-batched implementations inherit
   the singles' linearization points item by item. *)
let enqueue_batch_of_singles try_enqueue t items =
  let n = Array.length items in
  let i = ref 0 in
  while !i < n && try_enqueue t (Array.unsafe_get items !i) do incr i done;
  !i

let dequeue_batch_of_singles try_dequeue t k =
  let rec go acc left =
    if left <= 0 then List.rev acc
    else
      match try_dequeue t with
      | Some x -> go (x :: acc) (left - 1)
      | None -> List.rev acc
  in
  go [] k

(** A bounded queue that additionally ships native batch operations —
    implementations where fetching per-operation state once per batch (a
    domain-local handle, a head snapshot) is measurably profitable. *)
module type BOUNDED_BATCH = sig
  include BOUNDED

  val try_enqueue_batch : 'a t -> 'a array -> int
  val try_dequeue_batch : 'a t -> int -> 'a list
end

module Of_bounded (Q : BOUNDED) : CONC with type 'a t = 'a Q.t = struct
  type 'a t = 'a Q.t

  let name = Q.name
  let bounded = true
  let create = Q.create
  let try_enqueue = Q.try_enqueue
  let try_dequeue = Q.try_dequeue
  let try_enqueue_batch t items = enqueue_batch_of_singles Q.try_enqueue t items
  let try_dequeue_batch t k = dequeue_batch_of_singles Q.try_dequeue t k
  let length = Q.length
end

module Of_bounded_batch (Q : BOUNDED_BATCH) : CONC with type 'a t = 'a Q.t =
struct
  type 'a t = 'a Q.t

  let name = Q.name
  let bounded = true
  let create = Q.create
  let try_enqueue = Q.try_enqueue
  let try_dequeue = Q.try_dequeue
  let try_enqueue_batch = Q.try_enqueue_batch
  let try_dequeue_batch = Q.try_dequeue_batch
  let length = Q.length
end

module Of_unbounded (Q : UNBOUNDED) : CONC with type 'a t = 'a Q.t = struct
  type 'a t = 'a Q.t

  let name = Q.name
  let bounded = false
  let create ~capacity:_ = Q.create ()
  let try_enqueue t x = Q.enqueue t x; true
  let try_dequeue = Q.try_dequeue

  let try_enqueue_batch t items =
    Array.iter (Q.enqueue t) items;
    Array.length items

  let try_dequeue_batch t k = dequeue_batch_of_singles Q.try_dequeue t k
  let length = Q.length
end

(** Spinning blocking operations over any {!CONC} queue, with graceful
    degradation: besides the spin-forever entry points, each operation has a
    deadline-aware variant (absolute wall-clock deadline) and a retry-budget
    variant (bounded number of attempts), both returning [`Timeout] instead
    of spinning unboundedly.  All variants back off exponentially with
    jitter between attempts, so a convoy of blocked threads does not retry
    in lockstep against a stalled peer. *)
module Blocking (Q : CONC) : sig
  val enqueue : 'a Q.t -> 'a -> unit
  (** Spin (with exponential backoff) until the item is accepted. *)

  val dequeue : 'a Q.t -> 'a
  (** Spin (with exponential backoff) until an item is available. *)

  val enqueue_until : 'a Q.t -> deadline:float -> 'a -> [ `Ok | `Timeout ]
  (** Retry until accepted or until [Unix.gettimeofday () >= deadline]
      (absolute seconds, as returned by [Unix.gettimeofday]).  Always makes
      at least one attempt, so a past deadline still succeeds on an
      uncontended queue. *)

  val dequeue_until : 'a Q.t -> deadline:float -> [ `Ok of 'a | `Timeout ]
  (** Retry until an item arrives or the absolute deadline passes. *)

  val enqueue_budget : 'a Q.t -> retries:int -> 'a -> [ `Ok | `Timeout ]
  (** Make [1 + max retries 0] attempts, backing off between them.  A
      budget instead of a clock: deterministic under simulation and immune
      to wall-time stalls of the caller itself. *)

  val dequeue_budget : 'a Q.t -> retries:int -> [ `Ok of 'a | `Timeout ]
  (** Make [1 + max retries 0] attempts, backing off between them. *)
end = struct
  let enqueue t x =
    if not (Q.try_enqueue t x) then begin
      let b = Nbq_primitives.Backoff.create () in
      while not (Q.try_enqueue t x) do
        Nbq_primitives.Backoff.once b
      done
    end

  let dequeue t =
    match Q.try_dequeue t with
    | Some x -> x
    | None ->
        let b = Nbq_primitives.Backoff.create () in
        let rec spin () =
          match Q.try_dequeue t with
          | Some x -> x
          | None ->
              Nbq_primitives.Backoff.once b;
              spin ()
        in
        spin ()

  let jittered () = Nbq_primitives.Backoff.create ~jitter:true ()

  let enqueue_until t ~deadline x =
    if Q.try_enqueue t x then `Ok
    else begin
      let b = jittered () in
      let rec spin () =
        if Unix.gettimeofday () >= deadline then `Timeout
        else begin
          Nbq_primitives.Backoff.once b;
          if Q.try_enqueue t x then `Ok else spin ()
        end
      in
      spin ()
    end

  let dequeue_until t ~deadline =
    match Q.try_dequeue t with
    | Some x -> `Ok x
    | None ->
        let b = jittered () in
        let rec spin () =
          if Unix.gettimeofday () >= deadline then `Timeout
          else begin
            Nbq_primitives.Backoff.once b;
            match Q.try_dequeue t with Some x -> `Ok x | None -> spin ()
          end
        in
        spin ()

  let enqueue_budget t ~retries x =
    if Q.try_enqueue t x then `Ok
    else begin
      let b = jittered () in
      let rec spin left =
        if left <= 0 then `Timeout
        else begin
          Nbq_primitives.Backoff.once b;
          if Q.try_enqueue t x then `Ok else spin (left - 1)
        end
      in
      spin (max retries 0)
    end

  let dequeue_budget t ~retries =
    match Q.try_dequeue t with
    | Some x -> `Ok x
    | None ->
        let b = jittered () in
        let rec spin left =
          if left <= 0 then `Timeout
          else begin
            Nbq_primitives.Backoff.once b;
            match Q.try_dequeue t with
            | Some x -> `Ok x
            | None -> spin (left - 1)
          end
        in
        spin (max retries 0)
end

(** The largest capacity {!round_capacity} accepts: the biggest power of two
    representable in OCaml's native [int] (2{^61} on 64-bit platforms).
    Anything above would make the doubling loop overflow into negative
    numbers and spin forever. *)
let max_capacity = (max_int / 2) + 1

(** [round_capacity c] is the smallest power of two [>= max c 2].  Shared by
    every array-based implementation so that head/tail counters can wrap
    without skipping slots (paper §4: "Q_LENGTH is a power of 2").  Raises
    [Invalid_argument] when [c < 1] or [c > max_capacity]. *)
let round_capacity capacity =
  if capacity < 1 then invalid_arg "Queue.create: capacity < 1";
  if capacity > max_capacity then
    invalid_arg "Queue.create: capacity exceeds max_capacity";
  let rec go n = if n >= capacity then n else go (n * 2) in
  go 2
