(** Module types shared by every queue in the repository.

    Two families exist: the paper's queues (and the array-based baselines)
    are {e bounded} — enqueue can fail with "full" — while the Michael–Scott
    family is {e unbounded}.  {!CONC} unifies them so tests, the
    linearizability checker and the benchmark harness can treat any
    implementation as a first-class value.  The single {!Make} functor
    builds the unified view from a {!SOURCE} capability description (use
    the {!Capability} constructors to describe a bounded, batched or
    unbounded implementation); {!Blocking} layers parked blocking
    semantics on top via the eventcounts of [Nbq_wait], and
    {!Blocking_spin} is the spin-only baseline it replaced. *)

(** A multi-producer multi-consumer bounded FIFO. *)
module type BOUNDED = sig
  type 'a t

  val name : string
  (** Short algorithm name used in reports, e.g. ["evequoz-llsc"]. *)

  val create : capacity:int -> 'a t
  (** [create ~capacity] makes an empty queue able to hold at least
      [capacity] items (implementations round up to a power of two).
      Raises [Invalid_argument] if [capacity < 1]. *)

  val capacity : 'a t -> int
  (** The actual (rounded) capacity. *)

  val try_enqueue : 'a t -> 'a -> bool
  (** Insert at the tail; [false] means the queue was full at some point
      during the call (linearizable "full"). Lock-free. *)

  val try_dequeue : 'a t -> 'a option
  (** Remove from the head; [None] means the queue was empty at some point
      during the call (linearizable "empty"). Lock-free. *)

  val length : 'a t -> int
  (** Number of queued items.  Exact when quiescent; a linearizable-ish
      snapshot under concurrency (may be transiently stale). *)
end

(** A multi-producer multi-consumer unbounded FIFO. *)
module type UNBOUNDED = sig
  type 'a t

  val name : string
  val create : unit -> 'a t

  val enqueue : 'a t -> 'a -> unit
  (** Always succeeds. Lock-free (for the non-blocking implementations). *)

  val try_dequeue : 'a t -> 'a option
  val length : 'a t -> int
end

(** The capability record: one coherent description of what a queue
    implementation can do, replacing the post-PR-9 sprawl of
    per-capability booleans and module-type variants ([BOUNDED_BATCH]
    plus the cell seam's single-lap and reset extensions).  {!Make}
    consumes it and derives whatever is absent; the registry's family
    descriptors read it to decide which derived rows make sense. *)
module Caps = struct
  type t = {
    bounded : bool;
        (** [try_enqueue] can return [false] (a linearizable "full") *)
    native_batch : bool;
        (** ships at least one native batch path worth dispatching to
            (amortized per-operation state), rather than deriving batches
            from the singles *)
    single_lap : bool;
        (** the underlying ring supports single-lap (fill-once/take-once)
            operation — the mode the segmented queue runs its segments in
            (PR 9) *)
    resettable : bool;
        (** an exclusive owner may recycle the structure in O(capacity)
            plain stores (the cell seam's [reset]), enabling cheap segment
            reuse *)
  }

  let bounded =
    { bounded = true; native_batch = false; single_lap = false;
      resettable = false }

  let unbounded = { bounded with bounded = false }
  let with_batch c = { c with native_batch = true }

  (** The Evequoz-ring rows: bounded, and their cell seam carries the PR-9
      single-lap + exclusive-reset extensions. *)
  let ring = { bounded with single_lap = true; resettable = true }
end

(** The unified view used by the harness and the conformance battery. *)
module type CONC = sig
  type 'a t

  val name : string

  val caps : Caps.t
  (** What this implementation can do (see {!Caps}). *)

  val bounded : bool
  (** [caps.bounded], kept as a field because nearly every consumer reads
      only this bit. *)

  val create : capacity:int -> 'a t
  (** [capacity] is ignored by unbounded implementations. *)

  val try_enqueue : 'a t -> 'a -> bool
  val try_dequeue : 'a t -> 'a option

  val try_enqueue_batch : 'a t -> 'a array -> int
  (** Insert the items {e in array order}, stopping at the first "full";
      returns the number accepted (a prefix of the array).  Equivalent to
      a loop of {!try_enqueue} — implementations override it only to
      amortize per-operation overhead, never to change semantics. *)

  val try_dequeue_batch : 'a t -> int -> 'a list
  (** Remove up to [k] items in FIFO order, stopping at the first "empty";
      the result (length [<= k]) preserves queue order.  Equivalent to a
      loop of {!try_dequeue}. *)

  val length : 'a t -> int
end

(* Batch fallbacks shared by the adapters below: a batch is exactly a loop
   of single operations, so the default-batched implementations inherit
   the singles' linearization points item by item. *)
let enqueue_batch_of_singles try_enqueue t items =
  let n = Array.length items in
  let i = ref 0 in
  while !i < n && try_enqueue t (Array.unsafe_get items !i) do incr i done;
  !i

let dequeue_batch_of_singles try_dequeue t k =
  let rec go acc left =
    if left <= 0 then List.rev acc
    else
      match try_dequeue t with
      | Some x -> go (x :: acc) (left - 1)
      | None -> List.rev acc
  in
  go [] k

(** A bounded queue that additionally ships native batch operations —
    implementations where fetching per-operation state once per batch (a
    domain-local handle, a head snapshot) is measurably profitable. *)
module type BOUNDED_BATCH = sig
  include BOUNDED

  val try_enqueue_batch : 'a t -> 'a array -> int
  val try_dequeue_batch : 'a t -> int -> 'a list
end

(** A capability description: everything {!Make} needs to build the
    unified {!CONC} view of one implementation.  The two batch fields are
    [option]s — [None] means "derive from the singles", [Some f] means the
    implementation ships a native batch worth using.  Obtain instances
    from the {!Capability} constructors rather than writing one by
    hand. *)
module type SOURCE = sig
  type 'a t

  val name : string
  val caps : Caps.t
  val create : capacity:int -> 'a t
  val try_enqueue : 'a t -> 'a -> bool
  val try_dequeue : 'a t -> 'a option
  val length : 'a t -> int
  val try_enqueue_batch : ('a t -> 'a array -> int) option
  val try_dequeue_batch : ('a t -> int -> 'a list) option
end

(** Capability constructors: wrap an implementation of one of the three
    base signatures into the {!SOURCE} that {!Make} consumes, e.g.
    [Make (Capability.Bounded (Evequoz_llsc))]. *)
module Capability = struct
  module Bounded (Q : BOUNDED) : SOURCE with type 'a t = 'a Q.t = struct
    type 'a t = 'a Q.t

    let name = Q.name
    let caps = Caps.bounded
    let create = Q.create
    let try_enqueue = Q.try_enqueue
    let try_dequeue = Q.try_dequeue
    let length = Q.length
    let try_enqueue_batch = None
    let try_dequeue_batch = None
  end

  module Bounded_batch (Q : BOUNDED_BATCH) : SOURCE with type 'a t = 'a Q.t =
  struct
    type 'a t = 'a Q.t

    let name = Q.name
    let caps = Caps.(with_batch bounded)
    let create = Q.create
    let try_enqueue = Q.try_enqueue
    let try_dequeue = Q.try_dequeue
    let length = Q.length
    let try_enqueue_batch = Some Q.try_enqueue_batch
    let try_dequeue_batch = Some Q.try_dequeue_batch
  end

  (** The Evequoz cell-seam rings: like {!Bounded}/{!Bounded_batch} but the
      capability record additionally advertises the PR-9 single-lap and
      exclusive-reset extensions of the seam ([Llsc_backend.S]), which the
      segmented queue builds on. *)
  module Ring (Q : BOUNDED) : SOURCE with type 'a t = 'a Q.t = struct
    include Bounded (Q)

    let caps = Caps.ring
  end

  module Ring_batch (Q : BOUNDED_BATCH) : SOURCE with type 'a t = 'a Q.t =
  struct
    include Bounded_batch (Q)

    let caps = Caps.(with_batch ring)
  end

  module Unbounded (Q : UNBOUNDED) : SOURCE with type 'a t = 'a Q.t = struct
    type 'a t = 'a Q.t

    let name = Q.name
    let caps = Caps.(with_batch unbounded)
    let create ~capacity:_ = Q.create ()

    let try_enqueue t x =
      Q.enqueue t x;
      true

    let try_dequeue = Q.try_dequeue
    let length = Q.length

    let try_enqueue_batch =
      Some
        (fun t items ->
          Array.iter (Q.enqueue t) items;
          Array.length items)

    let try_dequeue_batch = None
  end
end

(** The one adapter functor: build the unified {!CONC} view from any
    {!SOURCE}, deriving whichever batch operation the capability does not
    provide from the single-item operations (so derived batches inherit
    the singles' linearization points item by item). *)
module Make (S : SOURCE) : CONC with type 'a t = 'a S.t = struct
  type 'a t = 'a S.t

  let name = S.name

  let caps =
    (* Coherence: the capability record must agree with what the source
       actually ships — [native_batch] iff some native batch path exists. *)
    let native =
      S.try_enqueue_batch <> None || S.try_dequeue_batch <> None
    in
    assert (S.caps.Caps.native_batch = native);
    S.caps

  let bounded = caps.Caps.bounded
  let create = S.create
  let try_enqueue = S.try_enqueue
  let try_dequeue = S.try_dequeue

  (* Eta-expanded so the [match] on the capability happens per call but the
     functions stay fully polymorphic (a module-level partial application
     would be weakly typed). *)
  let try_enqueue_batch t items =
    match S.try_enqueue_batch with
    | Some f -> f t items
    | None -> enqueue_batch_of_singles S.try_enqueue t items

  let try_dequeue_batch t k =
    match S.try_dequeue_batch with
    | Some f -> f t k
    | None -> dequeue_batch_of_singles S.try_dequeue t k

  let length = S.length
end

(** Spin-only blocking operations over any {!CONC} queue: the baseline
    {!Blocking} replaced, kept because it is the right tool when waits are
    known to be short (sub-microsecond hand-offs between pinned domains)
    and as the "spin" arm of the oversubscription benchmark
    ([bin/park_sweep.exe]).  Every variant burns CPU for its whole wait;
    under oversubscription (more runnable domains than cores) that CPU is
    stolen from the very producers being waited on — prefer {!Blocking}.

    All loops attempt first and back off (exponentially, with jitter)
    {e between} attempts, so a call never sleeps once its deadline has
    passed or its budget is exhausted — the [`Timeout] return is prompt. *)
module Blocking_spin (Q : CONC) : sig
  val enqueue : 'a Q.t -> 'a -> unit
  (** Spin (with exponential backoff) until the item is accepted. *)

  val dequeue : 'a Q.t -> 'a
  (** Spin (with exponential backoff) until an item is available. *)

  val enqueue_until : 'a Q.t -> deadline:float -> 'a -> [ `Ok | `Timeout ]
  (** Retry until accepted or until [Unix.gettimeofday () >= deadline]
      (absolute seconds, as returned by [Unix.gettimeofday]).  Always makes
      at least one attempt, so a past deadline still succeeds on an
      uncontended queue. *)

  val dequeue_until : 'a Q.t -> deadline:float -> [ `Ok of 'a | `Timeout ]
  (** Retry until an item arrives or the absolute deadline passes. *)

  val enqueue_budget : 'a Q.t -> retries:int -> 'a -> [ `Ok | `Timeout ]
  (** Make at most [1 + max retries 0] attempts, backing off between them.
      A budget instead of a clock: deterministic under simulation and
      immune to wall-time stalls of the caller itself. *)

  val dequeue_budget : 'a Q.t -> retries:int -> [ `Ok of 'a | `Timeout ]
  (** Make at most [1 + max retries 0] attempts, backing off between
      them. *)
end = struct
  let enqueue t x =
    if not (Q.try_enqueue t x) then begin
      let b = Nbq_primitives.Backoff.create () in
      while not (Q.try_enqueue t x) do
        Nbq_primitives.Backoff.once b
      done
    end

  let dequeue t =
    match Q.try_dequeue t with
    | Some x -> x
    | None ->
        let b = Nbq_primitives.Backoff.create () in
        let rec spin () =
          match Q.try_dequeue t with
          | Some x -> x
          | None ->
              Nbq_primitives.Backoff.once b;
              spin ()
        in
        spin ()

  let jittered () = Nbq_primitives.Backoff.create ~jitter:true ()

  (* Attempt-first loops: the deadline/budget check sits between the failed
     attempt and the backoff, so exhaustion returns without a parting
     sleep, and a backoff that straddles the deadline is followed only by
     one (cheap, lock-free) attempt before the `Timeout. *)

  let enqueue_until t ~deadline x =
    let b = jittered () in
    let rec spin () =
      if Q.try_enqueue t x then `Ok
      else if Unix.gettimeofday () >= deadline then `Timeout
      else begin
        Nbq_primitives.Backoff.once b;
        spin ()
      end
    in
    spin ()

  let dequeue_until t ~deadline =
    let b = jittered () in
    let rec spin () =
      match Q.try_dequeue t with
      | Some x -> `Ok x
      | None ->
          if Unix.gettimeofday () >= deadline then `Timeout
          else begin
            Nbq_primitives.Backoff.once b;
            spin ()
          end
    in
    spin ()

  let enqueue_budget t ~retries x =
    let b = jittered () in
    let rec spin left =
      if Q.try_enqueue t x then `Ok
      else if left <= 0 then `Timeout
      else begin
        Nbq_primitives.Backoff.once b;
        spin (left - 1)
      end
    in
    spin (max retries 0)

  let dequeue_budget t ~retries =
    let b = jittered () in
    let rec spin left =
      match Q.try_dequeue t with
      | Some x -> `Ok x
      | None ->
          if left <= 0 then `Timeout
          else begin
            Nbq_primitives.Backoff.once b;
            spin (left - 1)
          end
    in
    spin (max retries 0)
end

(** What the blocking wrapper needs from a wait layer: exactly the
    eventcount surface it uses.  [Nbq_wait.Eventcount] matches it; so does
    the model checker's simulated instantiation
    ([Nbq_modelcheck.Sim_wait]), which is how the park/wake paths of
    {!Blocking_ec} run under exhaustive schedule exploration. *)
module type EVENTCOUNT = sig
  type t

  val create :
    ?on_park:(unit -> unit) ->
    ?on_wake:(unit -> unit) ->
    ?on_cancel:(unit -> unit) ->
    ?park_window:(unit -> unit) ->
    ?wake_window:(unit -> unit) ->
    unit ->
    t

  val await :
    ?spin:int ->
    ?deadline:float ->
    ?max_park:int ->
    t ->
    (unit -> 'a option) ->
    [ `Ok of 'a | `Timeout ]

  val wake_one : t -> bool
end

(** Parked blocking operations over any {!CONC} queue, with the wait layer
    and the probe and fault-injection hooks exposed as functor parameters —
    {!Blocking_hooked} fixes the wait layer to the production
    [Nbq_wait.Eventcount], and {!Blocking} additionally fixes the hooks to
    no-ops.

    Unlike {!Blocking_spin}, a blocked operation here spins only briefly
    and then {e parks its domain} on an eventcount (one for "became
    non-empty", one for "became non-full"), so waiting costs no CPU and —
    crucially under oversubscription — no scheduler slices that the
    producers being waited for could have used.  Each successful
    enqueue/dequeue through this wrapper issues the corresponding wake;
    raw [Q] operations on the same underlying queue (via {!queue} or
    {!of_queue}) are permitted but issue no wakes, so parked peers then
    wake only via the wait layer's bounded-park backstop (~tens of
    milliseconds), never hang. *)
module Blocking_ec
    (EC : EVENTCOUNT)
    (P : Nbq_primitives.Probe.S)
    (F : Nbq_primitives.Fault.S)
    (Q : CONC) : sig
  type 'a t
  (** A queue plus its two eventcounts. *)

  val create : capacity:int -> 'a t
  val of_queue : 'a Q.t -> 'a t
  (** Wrap an existing queue (fresh eventcounts; see the note above about
      mixing with raw operations). *)

  val queue : 'a t -> 'a Q.t
  (** The underlying queue, for non-blocking [try_*] access. *)

  val enqueue : 'a t -> 'a -> unit
  (** Spin briefly, then park until the item is accepted. *)

  val dequeue : 'a t -> 'a
  (** Spin briefly, then park until an item is available. *)

  val enqueue_until : 'a t -> deadline:float -> 'a -> [ `Ok | `Timeout ]
  (** Like {!enqueue} with an absolute [Unix.gettimeofday] deadline.
      Always makes at least one attempt (a past deadline still succeeds on
      an uncontended queue) but never parks once the deadline has passed;
      timeout resolution is the wait layer's tick (~1ms). *)

  val dequeue_until : 'a t -> deadline:float -> [ `Ok of 'a | `Timeout ]

  val enqueue_budget : 'a t -> retries:int -> 'a -> [ `Ok | `Timeout ]
  (** At most [1 + max retries 0] attempts with backoff between them —
      deterministic, clock-free, and therefore {e spinning}: a budget
      bounds attempts, not time, so parking (whose wakes are time-driven)
      would change its meaning. *)

  val dequeue_budget : 'a t -> retries:int -> [ `Ok of 'a | `Timeout ]
end = struct
  type 'a t = { q : 'a Q.t; not_empty : EC.t; not_full : EC.t }

  let mk_ec () =
    EC.create ~on_park:P.wait_park ~on_wake:P.wait_wake
      ~on_cancel:P.wait_cancel
      ~park_window:(fun () -> F.hit Nbq_primitives.Fault.Park_window)
      ~wake_window:(fun () -> F.hit Nbq_primitives.Fault.Wake_lost)
      ()

  let of_queue q = { q; not_empty = mk_ec (); not_full = mk_ec () }
  let create ~capacity = of_queue (Q.create ~capacity)
  let queue t = t.q

  (* Every successful enqueue may have turned "empty" into "non-empty", so
     it wakes one not_empty waiter (and dually for dequeue/not_full).
     Waking unconditionally-on-success rather than only on an observed
     empty->non-empty transition is deliberate: observing the transition
     atomically with the operation is impossible from outside the queue,
     and wake_one's empty-stack fast path makes the uncontended cost a
     single atomic load. *)

  let enq_cond t x () = if Q.try_enqueue t.q x then Some () else None

  let enqueue t x =
    match EC.await t.not_full (enq_cond t x) with
    | `Ok () -> ignore (EC.wake_one t.not_empty : bool)
    | `Timeout -> assert false (* no deadline *)

  let dequeue t =
    match EC.await t.not_empty (fun () -> Q.try_dequeue t.q) with
    | `Ok x ->
        ignore (EC.wake_one t.not_full : bool);
        x
    | `Timeout -> assert false

  let enqueue_until t ~deadline x =
    match EC.await ~deadline t.not_full (enq_cond t x) with
    | `Ok () ->
        ignore (EC.wake_one t.not_empty : bool);
        `Ok
    | `Timeout -> `Timeout

  let dequeue_until t ~deadline =
    match EC.await ~deadline t.not_empty (fun () -> Q.try_dequeue t.q) with
    | `Ok x ->
        ignore (EC.wake_one t.not_full : bool);
        `Ok x
    | `Timeout -> `Timeout

  (* Budget variants stay spin-based (see the signature), but still issue
     wakes on success so parked peers benefit. *)

  let jittered () = Nbq_primitives.Backoff.create ~jitter:true ()

  let enqueue_budget t ~retries x =
    let b = jittered () in
    let rec spin left =
      if Q.try_enqueue t.q x then begin
        ignore (EC.wake_one t.not_empty : bool);
        `Ok
      end
      else if left <= 0 then `Timeout
      else begin
        Nbq_primitives.Backoff.once b;
        spin (left - 1)
      end
    in
    spin (max retries 0)

  let dequeue_budget t ~retries =
    let b = jittered () in
    let rec spin left =
      match Q.try_dequeue t.q with
      | Some x ->
          ignore (EC.wake_one t.not_full : bool);
          `Ok x
      | None ->
          if left <= 0 then `Timeout
          else begin
            Nbq_primitives.Backoff.once b;
            spin (left - 1)
          end
    in
    spin (max retries 0)
end

(** {!Blocking_ec} over the production wait layer. *)
module Blocking_hooked = Blocking_ec (Nbq_wait.Eventcount)

(** {!Blocking_hooked} with no-op probe and fault hooks: the default
    parked blocking wrapper.  See DESIGN.md §10 for why a parked waiter
    can neither miss a wakeup nor be stranded by a crashed waker. *)
module Blocking (Q : CONC) =
  Blocking_hooked (Nbq_primitives.Probe.Noop) (Nbq_primitives.Fault.Noop) (Q)

(** The largest capacity {!round_capacity} accepts: the biggest power of two
    representable in OCaml's native [int] (2{^61} on 64-bit platforms).
    Anything above would make the doubling loop overflow into negative
    numbers and spin forever. *)
let max_capacity = (max_int / 2) + 1

(** [round_capacity c] is the smallest power of two [>= max c 2].  Shared by
    every array-based implementation so that head/tail counters can wrap
    without skipping slots (paper §4: "Q_LENGTH is a power of 2").  Raises
    [Invalid_argument] when [c < 1] or [c > max_capacity]. *)
let round_capacity capacity =
  if capacity < 1 then invalid_arg "Queue.create: capacity < 1";
  if capacity > max_capacity then
    invalid_arg "Queue.create: capacity exceeds max_capacity";
  let rec go n = if n >= capacity then n else go (n * 2) in
  go 2
