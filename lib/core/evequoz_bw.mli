(** The unified ring (Algorithm 1/Fig. 5 structure) over the Blelloch-Wei
    constant-time LL/SC backend ({!Nbq_primitives.Llsc_bw},
    arXiv:1911.09671).

    Same API surface as {!Evequoz_cas} — explicit-handle core, implicit
    domain-local handles, opt-in batched runs — but the per-operation
    [ReRegister] of the paper's tag-variable protocol is a literal no-op:
    a registered thread's announcement slot protects whatever buffer it is
    reading, and reclamation is an amortized scan.  On the hot path the
    [tag_reregister] probe never fires; registry traffic is zero.

    Space: O(capacity + threads·retire_threshold) buffers; the
    {!Core.space} snapshot exposes the pools for the bounded-space
    tests. *)

(** The algorithm core with fault injection: [Ll_reserve] on LL entry,
    [Slot_swap] between announcement publication and cell revalidation,
    [Sc_attempt] before install CASes, [Tag_register]/[Tag_deregister]
    around (amortized-only) registration, [Counter_bump] at the
    slot-update/counter-bump windows.  [Tag_reregister] never fires. *)
module Make_injected
    (A : Nbq_primitives.Atomic_intf.ATOMIC)
    (P : Nbq_primitives.Probe.S)
    (F : Nbq_primitives.Fault.S) : sig
  include Evequoz_cas.CORE

  val space : 'a t -> Nbq_primitives.Llsc_bw.space
end

module Make_probed
    (A : Nbq_primitives.Atomic_intf.ATOMIC)
    (P : Nbq_primitives.Probe.S) : sig
  include Evequoz_cas.CORE

  val space : 'a t -> Nbq_primitives.Llsc_bw.space
end

module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) : sig
  include Evequoz_cas.CORE

  val space : 'a t -> Nbq_primitives.Llsc_bw.space
end

(** The real-atomics core, for explicit-handle use and the space tests. *)
module Core : sig
  include Evequoz_cas.CORE

  val space : 'a t -> Nbq_primitives.Llsc_bw.space
end

include Queue_intf.BOUNDED_BATCH

type 'a handle

val register : 'a t -> 'a handle
val deregister : 'a handle -> unit
val enqueue_with : 'a t -> 'a handle -> 'a -> bool
val dequeue_with : 'a t -> 'a handle -> 'a option
val try_peek : 'a t -> 'a option
val peek_with : 'a t -> 'a handle -> 'a option
val deregister_domain : 'a t -> unit
val registry_size : 'a t -> int
val owned_count : 'a t -> int
val audit : 'a t -> Nbq_primitives.Llsc_cas.audit
val head_index : 'a t -> int
val tail_index : 'a t -> int
val try_enqueue_batch_runs : 'a t -> 'a array -> int
val try_dequeue_batch_runs : 'a t -> int -> 'a list

(** The default queue with the run-based batches as its batch entry
    points (what the sharded front-end composes). *)
module Batched : sig
  include Queue_intf.BOUNDED_BATCH with type 'a t = 'a t
end
