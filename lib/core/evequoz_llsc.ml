module type CELL = sig
  type 'a t
  type 'a link

  val make : 'a -> 'a t
  val ll : 'a t -> 'a link
  val value : 'a link -> 'a
  val sc : 'a t -> 'a link -> 'a -> bool
  val get : 'a t -> 'a
end

module type QUEUE = sig
  include Queue_intf.BOUNDED

  val try_peek : 'a t -> 'a option
  val head_index : 'a t -> int
  val tail_index : 'a t -> int
end

(* Algorithm 1 is the unified ring over the trivial cell backend: unit
   handles, empty registry, counters as ll/sc variables.  [Of_cell] keeps
   the handle plumbing monomorphic to [unit], so the handle-free QUEUE
   surface costs nothing. *)
module Make_injected
    (Cell : CELL)
    (P : Nbq_primitives.Probe.S)
    (F : Nbq_primitives.Fault.S) =
struct
  module Ring =
    Evequoz_ring.Make_injected (Nbq_primitives.Llsc_backend.Of_cell (Cell))
      (P)
      (F)

  let name = "evequoz-llsc"

  type 'a t = 'a Ring.t

  let create = Ring.create
  let capacity = Ring.capacity
  let try_enqueue t x = Ring.enqueue_with t () x
  let try_dequeue t = Ring.dequeue_with t ()
  let try_peek t = Ring.peek_with t ()
  let length = Ring.length
  let head_index = Ring.head_index
  let tail_index = Ring.tail_index
end

module Make_probed (Cell : CELL) (P : Nbq_primitives.Probe.S) =
  Make_injected (Cell) (P) (Nbq_primitives.Fault.Noop)

module Make (Cell : CELL) = Make_probed (Cell) (Nbq_primitives.Probe.Noop)

include Make (Nbq_primitives.Llsc)

module On_weak_cells = struct
  let failure_rate = Atomic.make 0.05

  module Cell = struct
    type 'a t = 'a Nbq_primitives.Llsc.Weak.cell
    type 'a link = 'a Nbq_primitives.Llsc.link

    let make v =
      Nbq_primitives.Llsc.Weak.make ~failure_rate:(Atomic.get failure_rate) v

    let ll = Nbq_primitives.Llsc.Weak.ll
    let value = Nbq_primitives.Llsc.Weak.value
    let sc = Nbq_primitives.Llsc.Weak.sc
    let get = Nbq_primitives.Llsc.Weak.get
  end

  include Make (Cell)

  let name = "evequoz-llsc-weak"
end
