module type CELL = sig
  type 'a t
  type 'a link

  val make : 'a -> 'a t
  val ll : 'a t -> 'a link
  val value : 'a link -> 'a
  val sc : 'a t -> 'a link -> 'a -> bool
  val get : 'a t -> 'a
end

module type QUEUE = sig
  include Queue_intf.BOUNDED

  val try_peek : 'a t -> 'a option
  val head_index : 'a t -> int
  val tail_index : 'a t -> int
end

module Make_injected
    (Cell : CELL)
    (P : Nbq_primitives.Probe.S)
    (F : Nbq_primitives.Fault.S) =
struct
  module Fault = Nbq_primitives.Fault

  let name = "evequoz-llsc"

  type 'a slot = Empty | Item of 'a

  type 'a t = {
    mask : int;
    slots : 'a slot Cell.t array;
    head : int Cell.t;
    tail : int Cell.t;
  }

  let create ~capacity =
    let capacity = Queue_intf.round_capacity capacity in
    {
      mask = capacity - 1;
      slots = Array.init capacity (fun _ -> Cell.make Empty);
      head = Cell.make 0;
      tail = Cell.make 0;
    }

  let capacity t = t.mask + 1

  let head_index t = Cell.get t.head
  let tail_index t = Cell.get t.tail

  (* Paper E12-E13 / D12-D17: advance a counter on behalf of a delayed
     thread.  Under ideal LL/SC a single attempt suffices (an SC failure
     proves another thread performed the advance), but a spuriously failing
     SC (weak cells, paper §5) would silently drop the increment and let a
     lagging counter fool the empty/full tests — so retry until the counter
     is observed past [expected].  On ideal cells the retry never triggers
     more than once. *)
  let help_advance counter expected =
    (* A thread frozen here has updated (or decided to help on) a slot but
       not yet bumped the counter — the window that forces every other
       thread through the helping path (paper E11-E13 / D11-D13). *)
    F.hit Fault.Counter_bump;
    let rec go () =
      let link = Cell.ll counter in
      if Cell.value link = expected then
        if not (Cell.sc counter link (expected + 1)) then go ()
    in
    go ()

  let rec try_enqueue t x =
    let tl = Cell.get t.tail in
    (* E6: full test.  Tail is monotonic, so at the instant Head is read the
       distance can only be >= the one computed — "full" is linearizable. *)
    if tl = Cell.get t.head + t.mask + 1 then false
    else begin
      let cell = t.slots.(tl land t.mask) in
      let link = Cell.ll cell in
      if Cell.get t.tail = tl then
        (* E10 held: the reserved slot is still the one Tail designates. *)
        match Cell.value link with
        | Item _ ->
            (* E11-E13: a delayed enqueuer filled the slot but has not yet
               advanced Tail; help it and retry. *)
            P.tail_help ();
            help_advance t.tail tl;
            try_enqueue t x
        | Empty ->
            if Cell.sc cell link (Item x) then begin
              help_advance t.tail tl;
              true
            end
            else begin
              P.sc_fail ();
              try_enqueue t x
            end
      else try_enqueue t x
    end

  let rec try_dequeue t =
    let hd = Cell.get t.head in
    (* D6: empty test; same monotonicity argument as the full test. *)
    if hd = Cell.get t.tail then None
    else begin
      let cell = t.slots.(hd land t.mask) in
      let link = Cell.ll cell in
      if Cell.get t.head = hd then
        match Cell.value link with
        | Empty ->
            (* D11-D13: the item was removed but Head lags; help. *)
            P.head_help ();
            help_advance t.head hd;
            try_dequeue t
        | Item x ->
            if Cell.sc cell link Empty then begin
              help_advance t.head hd;
              Some x
            end
            else begin
              P.sc_fail ();
              try_dequeue t
            end
      else try_dequeue t
    end

  (* Extension (not in the paper): observe the front item.  Linearizes at
     the slot read — Head is monotonic, so "Head = hd before and after"
     pins Head to hd at the read instant, making the slot's item the front
     element then. *)
  let rec try_peek t =
    let hd = Cell.get t.head in
    if hd = Cell.get t.tail then None
    else
      match Cell.get t.slots.(hd land t.mask) with
      | Item x -> if Cell.get t.head = hd then Some x else try_peek t
      | Empty ->
          (* Removed but Head lagging: help and retry. *)
          P.head_help ();
          help_advance t.head hd;
          try_peek t

  let length t =
    let n = Cell.get t.tail - Cell.get t.head in
    if n < 0 then 0 else if n > t.mask + 1 then t.mask + 1 else n
end

module Make_probed (Cell : CELL) (P : Nbq_primitives.Probe.S) =
  Make_injected (Cell) (P) (Nbq_primitives.Fault.Noop)

module Make (Cell : CELL) = Make_probed (Cell) (Nbq_primitives.Probe.Noop)

include Make (Nbq_primitives.Llsc)

module On_weak_cells = struct
  let failure_rate = Atomic.make 0.05

  module Cell = struct
    type 'a t = 'a Nbq_primitives.Llsc.Weak.cell
    type 'a link = 'a Nbq_primitives.Llsc.link

    let make v =
      Nbq_primitives.Llsc.Weak.make ~failure_rate:(Atomic.get failure_rate) v

    let ll = Nbq_primitives.Llsc.Weak.ll
    let value = Nbq_primitives.Llsc.Weak.value
    let sc = Nbq_primitives.Llsc.Weak.sc
    let get = Nbq_primitives.Llsc.Weak.get
  end

  include Make (Cell)

  let name = "evequoz-llsc-weak"
end
