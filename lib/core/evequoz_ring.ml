(* The one ring algorithm (paper Fig. 3 = Fig. 5 modulo the cell
   primitive), over any Llsc_backend.  Historically Evequoz_llsc and
   Evequoz_cas were two near-copies specialized per cell contract; both
   are now thin instantiations of this functor, as is the Blelloch-Wei
   row. *)

module Fault = Nbq_primitives.Fault

module Make_injected
    (B : Nbq_primitives.Llsc_backend.S)
    (P : Nbq_primitives.Probe.S)
    (F : Nbq_primitives.Fault.S) =
struct
  (* [Consumed] only ever appears in single-lap (segment) mode, where a
     dequeue retires its slot instead of emptying it; the classic ring
     mode never produces it. *)
  type 'a slot = Empty | Item of 'a | Consumed

  type 'a handle = 'a slot B.handle

  type 'a t = {
    mask : int;
    slots : 'a slot B.t array;
    head : B.counter;
    tail : B.counter;
    registry : 'a slot B.registry;
    (* Single-lap mode: the counter value at which the current lap began.
       Plain mutable on purpose — it is written only by [recycle] under
       exclusive ownership (no concurrent reader can hold the ring), and
       its publication to the next lap's users happens-before through the
       atomic pointer CAS that re-attaches the segment. *)
    mutable lap_base : int;
  }

  let create ~capacity =
    let capacity = Queue_intf.round_capacity capacity in
    {
      mask = capacity - 1;
      slots = Array.init capacity (fun _ -> B.make Empty);
      head = B.make_counter 0;
      tail = B.make_counter 0;
      registry = B.create_registry ();
      lap_base = 0;
    }

  let capacity t = t.mask + 1

  let register t = B.register t.registry

  let deregister h = B.deregister h

  let registry_size t = B.registered_count t.registry

  let owned_count t = B.owned_count t.registry

  let audit t = B.audit t.registry

  let head_index t = B.counter_get t.head
  let tail_index t = B.counter_get t.tail

  (* Paper E12-E13 / D12-D17: advance a counter on behalf of a delayed
     thread.  A thread frozen at the [Counter_bump] window has updated (or
     decided to help on) a slot but not yet bumped the counter — the window
     that forces every other thread through the helping path. *)
  let help counter expected =
    F.hit Fault.Counter_bump;
    B.counter_advance counter expected

  (* Paper Fig. 3/Fig. 5 Enqueue.  [h] must have been re-registered for
     this operation already. *)
  let rec enqueue_loop t h x =
    let tl = B.counter_get t.tail in
    (* E6: full test.  Tail is monotonic, so at the instant Head is read
       the distance can only be >= the one computed — "full" is
       linearizable. *)
    if tl = B.counter_get t.head + t.mask + 1 then false
    else begin
      let cell = t.slots.(tl land t.mask) in
      let res = B.ll cell h in
      if B.counter_get t.tail = tl then
        (* E10 held: the reserved slot is still the one Tail designates. *)
        match B.res_value res with
        | Item _ | Consumed ->
            (* E11-E13: a delayed enqueuer filled the slot but has not yet
               advanced Tail; undo the reservation, help, retry. *)
            B.release cell h res;
            P.tail_help ();
            help t.tail tl;
            enqueue_loop t h x
        | Empty ->
            if B.sc cell h res (Item x) then begin
              (* The item is in the slot; a thread frozen here leaves Tail
                 lagging and everyone else must help (paper E11-E13). *)
              help t.tail tl;
              true
            end
            else begin
              P.sc_fail ();
              enqueue_loop t h x
            end
      else begin
        (* Tail moved under us: release the reservation and retry. *)
        B.release cell h res;
        enqueue_loop t h x
      end
    end

  let rec dequeue_loop t h =
    let hd = B.counter_get t.head in
    (* D6: empty test; same monotonicity argument as the full test. *)
    if hd = B.counter_get t.tail then None
    else begin
      let cell = t.slots.(hd land t.mask) in
      let res = B.ll cell h in
      if B.counter_get t.head = hd then
        match B.res_value res with
        | Empty | Consumed ->
            (* D11-D13: the item was removed but Head lags; help. *)
            B.release cell h res;
            P.head_help ();
            help t.head hd;
            dequeue_loop t h
        | Item x ->
            if B.sc cell h res Empty then begin
              help t.head hd;
              Some x
            end
            else begin
              P.sc_fail ();
              dequeue_loop t h
            end
      else begin
        B.release cell h res;
        dequeue_loop t h
      end
    end

  (* Extension (not in the paper): observe the front item.  The slot is
     read through the backend's linearizable unreserved read; Head
     monotonicity pins the linearization to the read instant. *)
  let rec peek_loop t h =
    let hd = B.counter_get t.head in
    if hd = B.counter_get t.tail then None
    else begin
      let v = B.read t.slots.(hd land t.mask) h in
      if B.counter_get t.head = hd then
        match v with
        | Item x -> Some x
        | Empty | Consumed ->
            (* Removed but Head lagging: help and retry. *)
            P.head_help ();
            help t.head hd;
            peek_loop t h
      else peek_loop t h
    end

  let enqueue_with t h x =
    B.reregister h;
    enqueue_loop t h x

  let dequeue_with t h =
    B.reregister h;
    dequeue_loop t h

  let peek_with t h =
    B.reregister h;
    peek_loop t h

  (* --- Single-lap (segment) mode (extension, not in the paper) ----------

     The segmented unbounded queue (lib/segmented) uses each ring as a
     use-once segment: every slot carries at most one item per lap
     ([Empty] -> [Item] -> [Consumed]) and the ring never wraps within a
     lap.  The payoff is that "full" becomes {e sticky} — once Tail has
     walked [capacity] slots past [lap_base], no Empty slot ever reappears
     in this incarnation, so a stale enqueuer retrying against a drained
     segment can never slip an item into it.  That stickiness is
     what makes the segment hand-off linearizable: an appended successor
     segment can only receive items after its predecessor took its full
     complement, and the predecessor can never take another.

     Because a lap never wraps, [fill_loop] needs no Head read at all (no
     full-vs-wrap ambiguity) and [take_loop]'s empty test keeps the
     paper's monotonicity argument unchanged. *)

  let lap_capacity t = t.mask + 1
  let lap_base t = t.lap_base

  (* Sticky full: Tail has passed every slot of this lap. *)
  let lap_filled t = B.counter_get t.tail - t.lap_base >= t.mask + 1

  (* All slots of this lap were filled and consumed; Head can only reach
     [lap_base + capacity] by passing [capacity] consumed slots. *)
  let lap_exhausted t = B.counter_get t.head - t.lap_base >= t.mask + 1

  let rec fill_loop t h x =
    let tl = B.counter_get t.tail in
    if tl - t.lap_base >= t.mask + 1 then false (* sticky full *)
    else begin
      let cell = t.slots.(tl land t.mask) in
      let res = B.ll cell h in
      if B.counter_get t.tail = tl then
        match B.res_value res with
        | Item _ | Consumed ->
            (* The slot Tail designates was already filled this lap (and
               possibly consumed since); Tail lags — help (E11-E13). *)
            B.release cell h res;
            P.tail_help ();
            help t.tail tl;
            fill_loop t h x
        | Empty ->
            if B.sc cell h res (Item x) then begin
              help t.tail tl;
              true
            end
            else begin
              P.sc_fail ();
              fill_loop t h x
            end
      else begin
        B.release cell h res;
        fill_loop t h x
      end
    end

  let rec take_loop t h =
    let hd = B.counter_get t.head in
    if hd = B.counter_get t.tail then None (* empty at the read instant *)
    else if hd - t.lap_base >= t.mask + 1 then None (* lap exhausted *)
    else begin
      let cell = t.slots.(hd land t.mask) in
      let res = B.ll cell h in
      if B.counter_get t.head = hd then
        match B.res_value res with
        | Empty | Consumed ->
            (* Consumed: taken but Head lags (D11-D13); help.  Empty is
               unreachable in a well-formed lap (Tail only passes filled
               slots), kept as the same helping arm defensively. *)
            B.release cell h res;
            P.head_help ();
            help t.head hd;
            take_loop t h
        | Item x ->
            if B.sc cell h res Consumed then begin
              help t.head hd;
              Some x
            end
            else begin
              P.sc_fail ();
              take_loop t h
            end
      else begin
        B.release cell h res;
        take_loop t h
      end
    end

  let fill_with t h x =
    B.reregister h;
    fill_loop t h x

  let take_with t h =
    B.reregister h;
    take_loop t h

  (* Reset a fully consumed segment for its next lap.  The caller must
     hold the ring exclusively (reclamation has proven no reader is left;
     any thread mid-operation here would still be publishing the segment
     in its hazard slot, so no reservation can be outstanding either);
     Head = Tail = lap_base + capacity at this point, so bumping the base
     by one capacity re-opens all slots without touching the monotonic
     counters.  Slots go back to [Empty] through the backend's
     exclusive-owner [reset] — the full ll/sc walk this replaced cost one
     reservation round-trip per slot, which amortized to a constant (and
     dominant) per-operation tax on the segmented queue's steady state. *)
  let recycle t =
    t.lap_base <- t.lap_base + t.mask + 1;
    Array.iter (fun cell -> B.reset cell Empty) t.slots

  (* --- Batch runs (extension, not in the paper) -------------------------

     A k-item batch is ONE operation: it re-registers once, then fills (or
     drains) a run of consecutive slots with one observe/commit CAS per
     slot, and publishes the whole run with a single counter CAS.  The
     guard re-read of the counter after each observe rejects slots the
     counter has already passed (the re-validation step of E5/D5, widened
     from "equal" to "not yet past this slot" because helpers may
     legitimately publish our own prefix while we are still filling); a
     commit can then only succeed while the slot is untouched since the
     observation, which pins each item's slot transition exactly as the
     paper's sc does.  Any interference — a foreign item or reservation in
     the run, a lost commit — publishes the clean prefix and falls back to
     the paper's per-item loop, so the batch degrades to a loop of singles
     under contention. *)

  (* Advance [counter] to [target], tolerating helpers: first try the
     one-shot CAS, then walk +1 like the helping paths do.  Callers only
     request targets whose slots they have already filled/emptied, so
     every intermediate bump is one the paper's helping rule would
     perform. *)
  let publish counter from target =
    F.hit Fault.Counter_bump;
    B.counter_publish counter ~from ~target

  let enqueue_batch_with t h items =
    B.reregister h;
    let total = Array.length items in
    let cap = t.mask + 1 in
    (* Paper path for whatever the fast path could not place. *)
    let rec slow i =
      if i >= total then total
      else if enqueue_loop t h (Array.unsafe_get items i) then slow (i + 1)
      else i
    in
    let rec fast accepted =
      if accepted >= total then total
      else begin
        let tl = B.counter_get t.tail in
        let hd = B.counter_get t.head in
        let free = cap - (tl - hd) in
        if free <= 0 then accepted (* full (conservative under head lag) *)
        else begin
          let n = min (total - accepted) free in
          let rec fill j =
            if j >= n then j
            else begin
              (* [land mask] keeps the index in bounds by construction. *)
              let cell = Array.unsafe_get t.slots ((tl + j) land t.mask) in
              let obs = B.observe cell h in
              (* Foreign item, a competing reservation, or the counter
                 already past this slot (a long preemption could hand us a
                 freed next-lap cell): reconcile via the paper path. *)
              if
                B.observed_holds obs Empty
                && B.counter_get t.tail - (tl + j) <= 0
              then
                if
                  B.commit cell h obs
                    (Item (Array.unsafe_get items (accepted + j)))
                then fill (j + 1)
                else begin
                  P.sc_fail ();
                  j
                end
              else j
            end
          in
          let filled = fill 0 in
          if filled > 0 then publish t.tail tl (tl + filled);
          if filled = n then fast (accepted + filled)
          else slow (accepted + filled)
        end
      end
    in
    fast 0

  let dequeue_batch_with t h k =
    B.reregister h;
    let rec slow left =
      if left <= 0 then []
      else
        match dequeue_loop t h with
        | Some x -> x :: slow (left - 1)
        | None -> []
    in
    (* Lists are built in queue order on the unwind (one cons per item, no
       final reverse); runs are bounded by [k], so the recursion depth is
       the caller's batch size. *)
    let rec fast got =
      if got >= k then []
      else begin
        let hd = B.counter_get t.head in
        let tl = B.counter_get t.tail in
        let n = min (k - got) (tl - hd) in
        if n <= 0 then [] (* empty (conservative under tail lag) *)
        else begin
          let taken = ref 0 in
          let clean = ref true in
          let rec fill j =
            if j >= n then []
            else begin
              let cell = Array.unsafe_get t.slots ((hd + j) land t.mask) in
              let obs = B.observe cell h in
              match B.observed_get obs with
              | Item x when B.counter_get t.head - (hd + j) <= 0 ->
                  if B.commit cell h obs Empty then begin
                    incr taken;
                    x :: fill (j + 1)
                  end
                  else begin
                    P.sc_fail ();
                    clean := false;
                    []
                  end
              | Empty | Item _ | Consumed ->
                  clean := false;
                  []
              | exception Not_found ->
                  (* A competing reservation in the run. *)
                  clean := false;
                  []
            end
          in
          let run = fill 0 in
          if !taken > 0 then publish t.head hd (hd + !taken);
          (* The common case — one clean run covering the whole demand —
             returns the run as built; list appends only happen when a run
             was cut short (interference or a momentarily short queue). *)
          if !clean && !taken >= k - got then run
          else if !clean then run @ fast (got + !taken)
          else run @ slow (k - got - !taken)
        end
      end
    in
    fast 0

  let length t =
    let n = B.counter_get t.tail - B.counter_get t.head in
    if n < 0 then 0 else if n > t.mask + 1 then t.mask + 1 else n
end

module Make_probed
    (B : Nbq_primitives.Llsc_backend.S)
    (P : Nbq_primitives.Probe.S) =
  Make_injected (B) (P) (Nbq_primitives.Fault.Noop)

module Make (B : Nbq_primitives.Llsc_backend.S) =
  Make_probed (B) (Nbq_primitives.Probe.Noop)
