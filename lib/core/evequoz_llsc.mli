(** Algorithm 1: the LL/SC-based non-blocking circular-array FIFO
    (paper, Fig. 3).

    Array slots and the [Head]/[Tail] counters are LL/SC variables.  The
    counters increase monotonically over the whole 63-bit word and are mapped
    to slots with a power-of-two mask, which makes the index-ABA problem
    (paper Fig. 1) practically impossible; the LL/SC reservation discipline
    eliminates the data-ABA and null-ABA problems outright.  The queue is
    population-oblivious and its space consumption depends only on the
    capacity.

    The implementation is a functor over the cell type so that the same code
    runs on the ideal cells ({!module:Nbq_primitives.Llsc}) and on
    failure-injecting weak cells (ablation E8).  [Evequoz_llsc] itself — the
    default instantiation — satisfies {!Queue_intf.BOUNDED}. *)

(** What Algorithm 1 requires of an LL/SC cell: exactly the interface of
    {!Nbq_primitives.Llsc}, minus [vl] (unused by the algorithm). *)
module type CELL = sig
  type 'a t
  type 'a link

  val make : 'a -> 'a t
  val ll : 'a t -> 'a link
  val value : 'a link -> 'a
  val sc : 'a t -> 'a link -> 'a -> bool
  val get : 'a t -> 'a
end

(** What the functors produce: the bounded queue plus introspection. *)
module type QUEUE = sig
  include Queue_intf.BOUNDED

  val try_peek : 'a t -> 'a option
  (** Observe the front item without removing it ([None] when empty).
      Linearizable; an extension beyond the paper's API. *)

  val head_index : 'a t -> int
  val tail_index : 'a t -> int
  (** Raw monotonic counters, for tests and scenario replays. *)
end

(** The algorithm with fault injection on top of instrumentation:
    [F.hit Counter_bump] fires on entry to the counter-advance helper —
    between a slot update and the Head/Tail bump it mandates, the window
    where a frozen thread forces everyone else into the helping path
    (paper E11-E13 / D11-D13).  The [Ll_reserve]/[Sc_attempt] windows live
    in the cell; inject there via {!Nbq_primitives.Llsc.Make_injected}. *)
module Make_injected
    (Cell : CELL)
    (P : Nbq_primitives.Probe.S)
    (F : Nbq_primitives.Fault.S) : QUEUE

(** The algorithm over any cell type and instrumentation probe.  Probe
    events: [sc_fail] on failed update-path store-conditionals,
    [tail_help]/[head_help] when the operation helps a lagging counter on
    behalf of a delayed thread ([ll_reserve] is fired by the cell itself —
    see {!Nbq_primitives.Llsc.Make_probed}). *)
module Make_probed (Cell : CELL) (P : Nbq_primitives.Probe.S) : QUEUE

(** [Make_probed] with {!Nbq_primitives.Probe.Noop}: uninstrumented. *)
module Make (Cell : CELL) : QUEUE

include module type of Make (Nbq_primitives.Llsc)

(** The same algorithm running on spurious-failure-injecting cells; used by
    the E8 ablation to measure the §5 caveats.  [create] draws the failure
    rate from {!failure_rate}, settable before queue creation. *)
module On_weak_cells : sig
  val failure_rate : float Atomic.t

  include Queue_intf.BOUNDED

  val head_index : 'a t -> int
  val tail_index : 'a t -> int
end
