module Atomic_intf = Nbq_primitives.Atomic_intf
module Probe = Nbq_primitives.Probe
module Fault = Nbq_primitives.Fault

(* The algorithm core (paper Fig. 5, right column), over any atomics, any
   instrumentation probe (Noop by default; the observability layer supplies
   counting probes) and any fault hook (Noop by default; the torture
   harness supplies stalling/crashing ones). *)
module Make_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
struct
  module Llsc_cas = Nbq_primitives.Llsc_cas.Make_injected (A) (P) (F)

  type 'a slot = Empty | Item of 'a

  type 'a handle = 'a slot Llsc_cas.handle

  type 'a t = {
    mask : int;
    slots : 'a slot Llsc_cas.t array;
    head : int A.t;
    tail : int A.t;
    registry : 'a slot Llsc_cas.registry;
  }

  let create ~capacity =
    let capacity = Queue_intf.round_capacity capacity in
    {
      mask = capacity - 1;
      slots = Array.init capacity (fun _ -> Llsc_cas.make Empty);
      head = A.make 0;
      tail = A.make 0;
      registry = Llsc_cas.create_registry ();
    }

  let capacity t = t.mask + 1

  let register t = Llsc_cas.register t.registry

  let deregister h = Llsc_cas.deregister h

  let registry_size t = Llsc_cas.registered_count t.registry

  let owned_count t = Llsc_cas.owned_count t.registry

  let audit t = Llsc_cas.audit t.registry

  let head_index t = A.get t.head
  let tail_index t = A.get t.tail

  (* Paper Fig. 5, Enqueue.  [h] must have been re-registered for this
     operation already. *)
  let rec enqueue_loop t h x =
    let tl = A.get t.tail in
    if tl = A.get t.head + t.mask + 1 then false
    else begin
      let cell = t.slots.(tl land t.mask) in
      let slot = Llsc_cas.ll cell h in
      if A.get t.tail = tl then
        match slot with
        | Item _ ->
            (* Slot filled but Tail lagging: undo the reservation, help. *)
            ignore (Llsc_cas.sc cell h slot);
            P.tail_help ();
            F.hit Fault.Counter_bump;
            ignore (A.compare_and_set t.tail tl (tl + 1));
            enqueue_loop t h x
        | Empty ->
            if Llsc_cas.sc cell h (Item x) then begin
              (* The item is in the slot; a thread frozen here leaves Tail
                 lagging and everyone else must help (paper E11-E13). *)
              F.hit Fault.Counter_bump;
              ignore (A.compare_and_set t.tail tl (tl + 1));
              true
            end
            else begin
              P.sc_fail ();
              enqueue_loop t h x
            end
      else begin
        (* Tail moved under us: release the reservation and retry. *)
        ignore (Llsc_cas.sc cell h slot);
        enqueue_loop t h x
      end
    end

  let rec dequeue_loop t h =
    let hd = A.get t.head in
    if hd = A.get t.tail then None
    else begin
      let cell = t.slots.(hd land t.mask) in
      let slot = Llsc_cas.ll cell h in
      if A.get t.head = hd then
        match slot with
        | Empty ->
            (* Item removed but Head lagging: undo, help. *)
            ignore (Llsc_cas.sc cell h slot);
            P.head_help ();
            F.hit Fault.Counter_bump;
            ignore (A.compare_and_set t.head hd (hd + 1));
            dequeue_loop t h
        | Item x ->
            if Llsc_cas.sc cell h Empty then begin
              F.hit Fault.Counter_bump;
              ignore (A.compare_and_set t.head hd (hd + 1));
              Some x
            end
            else begin
              P.sc_fail ();
              dequeue_loop t h
            end
      else begin
        ignore (Llsc_cas.sc cell h slot);
        dequeue_loop t h
      end
    end

  (* Extension (not in the paper): observe the front item.  The slot must
     be read through a reservation (a heuristic peek could return a stale
     placeholder), which is immediately rolled back; Head monotonicity
     pins the linearization to the ll instant. *)
  let rec peek_loop t h =
    let hd = A.get t.head in
    if hd = A.get t.tail then None
    else begin
      let cell = t.slots.(hd land t.mask) in
      let slot = Llsc_cas.ll cell h in
      ignore (Llsc_cas.sc cell h slot);
      if A.get t.head = hd then
        match slot with
        | Item x -> Some x
        | Empty ->
            P.head_help ();
            F.hit Fault.Counter_bump;
            ignore (A.compare_and_set t.head hd (hd + 1));
            peek_loop t h
      else peek_loop t h
    end

  let enqueue_with t h x =
    Llsc_cas.reregister h;
    enqueue_loop t h x

  let dequeue_with t h =
    Llsc_cas.reregister h;
    dequeue_loop t h

  let peek_with t h =
    Llsc_cas.reregister h;
    peek_loop t h

  let length t =
    let n = A.get t.tail - A.get t.head in
    if n < 0 then 0 else if n > t.mask + 1 then t.mask + 1 else n
end

module Make_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) =
  Make_injected (A) (P) (Fault.Noop)

module Make (A : Atomic_intf.ATOMIC) = Make_probed (A) (Probe.Noop)

(* --- The domain-local implicit-handle layer, over any core --- *)

module type CORE = sig
  type 'a t
  type 'a handle

  val create : capacity:int -> 'a t
  val capacity : 'a t -> int
  val register : 'a t -> 'a handle
  val deregister : 'a handle -> unit
  val enqueue_with : 'a t -> 'a handle -> 'a -> bool
  val dequeue_with : 'a t -> 'a handle -> 'a option
  val peek_with : 'a t -> 'a handle -> 'a option
  val length : 'a t -> int
  val registry_size : 'a t -> int
  val owned_count : 'a t -> int
  val audit : 'a t -> Nbq_primitives.Llsc_cas.audit
  val head_index : 'a t -> int
  val tail_index : 'a t -> int
end

module With_implicit_handles (Core : CORE) = struct
  let name = "evequoz-cas"

  type 'a handle = 'a Core.handle

  type 'a t = {
    core : 'a Core.t;
    (* Implicit per-domain handle cache.  [option ref] so that
       [deregister_domain] can drop it. *)
    implicit : 'a handle option ref Domain.DLS.key;
  }

  let create ~capacity =
    {
      core = Core.create ~capacity;
      implicit = Domain.DLS.new_key (fun () -> ref None);
    }

  let capacity t = Core.capacity t.core
  let register t = Core.register t.core
  let deregister = Core.deregister
  let enqueue_with t h x = Core.enqueue_with t.core h x
  let dequeue_with t h = Core.dequeue_with t.core h
  let registry_size t = Core.registry_size t.core
  let owned_count t = Core.owned_count t.core
  let audit t = Core.audit t.core
  let head_index t = Core.head_index t.core
  let tail_index t = Core.tail_index t.core
  let length t = Core.length t.core

  let implicit_handle t =
    let cache = Domain.DLS.get t.implicit in
    match !cache with
    | Some h -> h
    | None ->
        let h = register t in
        cache := Some h;
        h

  let deregister_domain t =
    let cache = Domain.DLS.get t.implicit in
    match !cache with
    | Some h ->
        deregister h;
        cache := None
    | None -> ()

  let peek_with t h = Core.peek_with t.core h

  let try_enqueue t x = enqueue_with t (implicit_handle t) x

  let try_dequeue t = dequeue_with t (implicit_handle t)

  let try_peek t = peek_with t (implicit_handle t)
end

(* --- Default instantiation with real atomics and no-op probes --- *)

module Core = Make (Atomic_intf.Real)

include With_implicit_handles (Core)
