module Atomic_intf = Nbq_primitives.Atomic_intf
module Probe = Nbq_primitives.Probe
module Fault = Nbq_primitives.Fault

(* The algorithm core (paper Fig. 5, right column), over any atomics, any
   instrumentation probe (Noop by default; the observability layer supplies
   counting probes) and any fault hook (Noop by default; the torture
   harness supplies stalling/crashing ones). *)
module Make_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
struct
  module Llsc_cas = Nbq_primitives.Llsc_cas.Make_injected (A) (P) (F)

  type 'a slot = Empty | Item of 'a

  type 'a handle = 'a slot Llsc_cas.handle

  type 'a t = {
    mask : int;
    slots : 'a slot Llsc_cas.t array;
    head : int A.t;
    tail : int A.t;
    registry : 'a slot Llsc_cas.registry;
  }

  let create ~capacity =
    let capacity = Queue_intf.round_capacity capacity in
    {
      mask = capacity - 1;
      slots = Array.init capacity (fun _ -> Llsc_cas.make Empty);
      head = A.make 0;
      tail = A.make 0;
      registry = Llsc_cas.create_registry ();
    }

  let capacity t = t.mask + 1

  let register t = Llsc_cas.register t.registry

  let deregister h = Llsc_cas.deregister h

  let registry_size t = Llsc_cas.registered_count t.registry

  let owned_count t = Llsc_cas.owned_count t.registry

  let audit t = Llsc_cas.audit t.registry

  let head_index t = A.get t.head
  let tail_index t = A.get t.tail

  (* Paper Fig. 5, Enqueue.  [h] must have been re-registered for this
     operation already. *)
  let rec enqueue_loop t h x =
    let tl = A.get t.tail in
    if tl = A.get t.head + t.mask + 1 then false
    else begin
      let cell = t.slots.(tl land t.mask) in
      let slot = Llsc_cas.ll cell h in
      if A.get t.tail = tl then
        match slot with
        | Item _ ->
            (* Slot filled but Tail lagging: undo the reservation, help. *)
            ignore (Llsc_cas.sc cell h slot);
            P.tail_help ();
            F.hit Fault.Counter_bump;
            ignore (A.compare_and_set t.tail tl (tl + 1));
            enqueue_loop t h x
        | Empty ->
            if Llsc_cas.sc cell h (Item x) then begin
              (* The item is in the slot; a thread frozen here leaves Tail
                 lagging and everyone else must help (paper E11-E13). *)
              F.hit Fault.Counter_bump;
              ignore (A.compare_and_set t.tail tl (tl + 1));
              true
            end
            else begin
              P.sc_fail ();
              enqueue_loop t h x
            end
      else begin
        (* Tail moved under us: release the reservation and retry. *)
        ignore (Llsc_cas.sc cell h slot);
        enqueue_loop t h x
      end
    end

  let rec dequeue_loop t h =
    let hd = A.get t.head in
    if hd = A.get t.tail then None
    else begin
      let cell = t.slots.(hd land t.mask) in
      let slot = Llsc_cas.ll cell h in
      if A.get t.head = hd then
        match slot with
        | Empty ->
            (* Item removed but Head lagging: undo, help. *)
            ignore (Llsc_cas.sc cell h slot);
            P.head_help ();
            F.hit Fault.Counter_bump;
            ignore (A.compare_and_set t.head hd (hd + 1));
            dequeue_loop t h
        | Item x ->
            if Llsc_cas.sc cell h Empty then begin
              F.hit Fault.Counter_bump;
              ignore (A.compare_and_set t.head hd (hd + 1));
              Some x
            end
            else begin
              P.sc_fail ();
              dequeue_loop t h
            end
      else begin
        ignore (Llsc_cas.sc cell h slot);
        dequeue_loop t h
      end
    end

  (* Extension (not in the paper): observe the front item.  The slot must
     be read through a reservation (a heuristic peek could return a stale
     placeholder), which is immediately rolled back; Head monotonicity
     pins the linearization to the ll instant. *)
  let rec peek_loop t h =
    let hd = A.get t.head in
    if hd = A.get t.tail then None
    else begin
      let cell = t.slots.(hd land t.mask) in
      let slot = Llsc_cas.ll cell h in
      ignore (Llsc_cas.sc cell h slot);
      if A.get t.head = hd then
        match slot with
        | Item x -> Some x
        | Empty ->
            P.head_help ();
            F.hit Fault.Counter_bump;
            ignore (A.compare_and_set t.head hd (hd + 1));
            peek_loop t h
      else peek_loop t h
    end

  let enqueue_with t h x =
    Llsc_cas.reregister h;
    enqueue_loop t h x

  let dequeue_with t h =
    Llsc_cas.reregister h;
    dequeue_loop t h

  let peek_with t h =
    Llsc_cas.reregister h;
    peek_loop t h

  (* --- Batch runs (extension, not in the paper) ---------------------------

     A k-item batch is ONE operation: it re-registers once, then fills (or
     drains) a run of consecutive slots with one observe/commit CAS per
     slot ({!Llsc_cas.commit} — block freshness stands in for the tag),
     and publishes the whole run with a single counter CAS.  The guard
     re-read of the counter after each observe rejects slots the counter
     has already passed (the re-validation step of E5/D5, widened from
     "equal" to "not yet past this slot" because helpers may legitimately
     publish our own prefix while we are still filling); a commit can then
     only succeed while the slot is untouched since the observation, which
     pins each item's slot transition exactly as the paper's sc does.  Any
     interference — a foreign item or reservation in the run, a lost
     commit — publishes the clean prefix and falls back to the paper's
     per-item loop for the rest, so the batch degrades to a loop of
     singles under contention.

     The amortization is real only when the batch runs uncontended (the
     sharded front-end's home-shard case): one ReRegister, one counter CAS,
     one head/tail re-read and one CAS per slot instead of the single-op
     path's three CASes per item. *)

  (* Advance [counter] to [target], tolerating helpers: first try the
     one-shot CAS, then walk +1 like the helping paths do.  Callers only
     request targets whose slots they have already filled/emptied, so every
     intermediate bump is one the paper's helping rule would perform. *)
  let publish counter from target =
    F.hit Fault.Counter_bump;
    if not (A.compare_and_set counter from target) then begin
      let rec walk () =
        let cur = A.get counter in
        if cur - target < 0 then begin
          ignore (A.compare_and_set counter cur (cur + 1));
          walk ()
        end
      in
      walk ()
    end

  let enqueue_batch_with t h items =
    Llsc_cas.reregister h;
    let total = Array.length items in
    let cap = t.mask + 1 in
    (* Paper path for whatever the fast path could not place. *)
    let rec slow i =
      if i >= total then total
      else if enqueue_loop t h (Array.unsafe_get items i) then slow (i + 1)
      else i
    in
    let rec fast accepted =
      if accepted >= total then total
      else begin
        let tl = A.get t.tail in
        let hd = A.get t.head in
        let free = cap - (tl - hd) in
        if free <= 0 then accepted (* full (conservative under head lag) *)
        else begin
          let n = min (total - accepted) free in
          let rec fill j =
            if j >= n then j
            else begin
              (* [land mask] keeps the index in bounds by construction. *)
              let cell = Array.unsafe_get t.slots ((tl + j) land t.mask) in
              let obs = Llsc_cas.observe cell in
              (* Foreign item, a competing reservation, or the counter
                 already past this slot (a long preemption could hand us a
                 freed next-lap cell): reconcile via the paper path. *)
              if
                Llsc_cas.observed_holds obs Empty
                && A.get t.tail - (tl + j) <= 0
              then
                if
                  Llsc_cas.commit cell obs
                    (Item (Array.unsafe_get items (accepted + j)))
                then fill (j + 1)
                else begin
                  P.sc_fail ();
                  j
                end
              else j
            end
          in
          let filled = fill 0 in
          if filled > 0 then publish t.tail tl (tl + filled);
          if filled = n then fast (accepted + filled)
          else slow (accepted + filled)
        end
      end
    in
    fast 0

  let dequeue_batch_with t h k =
    Llsc_cas.reregister h;
    let rec slow left =
      if left <= 0 then []
      else
        match dequeue_loop t h with
        | Some x -> x :: slow (left - 1)
        | None -> []
    in
    (* Lists are built in queue order on the unwind (one cons per item, no
       final reverse); runs are bounded by [k], so the recursion depth is
       the caller's batch size. *)
    let rec fast got =
      if got >= k then []
      else begin
        let hd = A.get t.head in
        let tl = A.get t.tail in
        let n = min (k - got) (tl - hd) in
        if n <= 0 then [] (* empty (conservative under tail lag) *)
        else begin
          let taken = ref 0 in
          let clean = ref true in
          let rec fill j =
            if j >= n then []
            else begin
              let cell = Array.unsafe_get t.slots ((hd + j) land t.mask) in
              let obs = Llsc_cas.observe cell in
              match Llsc_cas.observed_get obs with
              | Item x when A.get t.head - (hd + j) <= 0 ->
                  if Llsc_cas.commit cell obs Empty then begin
                    incr taken;
                    x :: fill (j + 1)
                  end
                  else begin
                    P.sc_fail ();
                    clean := false;
                    []
                  end
              | Empty | Item _ ->
                  clean := false;
                  []
              | exception Not_found ->
                  (* A competing reservation in the run. *)
                  clean := false;
                  []
            end
          in
          let run = fill 0 in
          if !taken > 0 then publish t.head hd (hd + !taken);
          (* The common case — one clean run covering the whole demand —
             returns the run as built; list appends only happen when a run
             was cut short (interference or a momentarily short queue). *)
          if !clean && !taken >= k - got then run
          else if !clean then run @ fast (got + !taken)
          else run @ slow (k - got - !taken)
        end
      end
    in
    fast 0

  let length t =
    let n = A.get t.tail - A.get t.head in
    if n < 0 then 0 else if n > t.mask + 1 then t.mask + 1 else n
end

module Make_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) =
  Make_injected (A) (P) (Fault.Noop)

module Make (A : Atomic_intf.ATOMIC) = Make_probed (A) (Probe.Noop)

(* --- The domain-local implicit-handle layer, over any core --- *)

module type CORE = sig
  type 'a t
  type 'a handle

  val create : capacity:int -> 'a t
  val capacity : 'a t -> int
  val register : 'a t -> 'a handle
  val deregister : 'a handle -> unit
  val enqueue_with : 'a t -> 'a handle -> 'a -> bool
  val dequeue_with : 'a t -> 'a handle -> 'a option
  val peek_with : 'a t -> 'a handle -> 'a option
  val enqueue_batch_with : 'a t -> 'a handle -> 'a array -> int
  val dequeue_batch_with : 'a t -> 'a handle -> int -> 'a list
  val length : 'a t -> int
  val registry_size : 'a t -> int
  val owned_count : 'a t -> int
  val audit : 'a t -> Nbq_primitives.Llsc_cas.audit
  val head_index : 'a t -> int
  val tail_index : 'a t -> int
end

module With_implicit_handles (Core : CORE) = struct
  let name = "evequoz-cas"

  type 'a handle = 'a Core.handle

  type 'a t = {
    core : 'a Core.t;
    (* Implicit per-domain handle cache.  [option ref] so that
       [deregister_domain] can drop it. *)
    implicit : 'a handle option ref Domain.DLS.key;
  }

  let create ~capacity =
    {
      core = Core.create ~capacity;
      implicit = Domain.DLS.new_key (fun () -> ref None);
    }

  let capacity t = Core.capacity t.core
  let register t = Core.register t.core
  let deregister = Core.deregister
  let enqueue_with t h x = Core.enqueue_with t.core h x
  let dequeue_with t h = Core.dequeue_with t.core h
  let registry_size t = Core.registry_size t.core
  let owned_count t = Core.owned_count t.core
  let audit t = Core.audit t.core
  let head_index t = Core.head_index t.core
  let tail_index t = Core.tail_index t.core
  let length t = Core.length t.core

  let implicit_handle t =
    let cache = Domain.DLS.get t.implicit in
    match !cache with
    | Some h -> h
    | None ->
        let h = register t in
        cache := Some h;
        h

  let deregister_domain t =
    let cache = Domain.DLS.get t.implicit in
    match !cache with
    | Some h ->
        deregister h;
        cache := None
    | None -> ()

  let peek_with t h = Core.peek_with t.core h

  let try_enqueue t x = enqueue_with t (implicit_handle t) x

  let try_dequeue t = dequeue_with t (implicit_handle t)

  let try_peek t = peek_with t (implicit_handle t)

  (* Native batches: resolve the DLS handle cache once for the whole batch
     instead of once per item.  Each item still goes through [enqueue_with]
     / [dequeue_with] (including the per-operation ReRegister the paper
     mandates), so linearization and the registry space bound are exactly
     those of a loop of singles. *)
  let try_enqueue_batch t items =
    let n = Array.length items in
    if n = 0 then 0
    else begin
      let h = implicit_handle t in
      let i = ref 0 in
      while !i < n && enqueue_with t h (Array.unsafe_get items !i) do
        incr i
      done;
      !i
    end

  let try_dequeue_batch t k =
    if k <= 0 then []
    else begin
      let h = implicit_handle t in
      let rec go acc left =
        if left <= 0 then List.rev acc
        else
          match dequeue_with t h with
          | Some x -> go (x :: acc) (left - 1)
          | None -> List.rev acc
      in
      go [] k
    end

  (* The run-based batches (one ReRegister and one counter CAS per run,
     paper path on interference).  Kept off [try_enqueue_batch] /
     [try_dequeue_batch] so the default rows stay a literal loop of
     singles; the sharded front-end opts in via [Batched]. *)
  let try_enqueue_batch_runs t items =
    if Array.length items = 0 then 0
    else Core.enqueue_batch_with t.core (implicit_handle t) items

  let try_dequeue_batch_runs t k =
    if k <= 0 then [] else Core.dequeue_batch_with t.core (implicit_handle t) k
end

(* --- Default instantiation with real atomics and no-op probes --- *)

module Core = Make (Atomic_intf.Real)

module Impl = With_implicit_handles (Core)
include Impl

(* The same queue with the amortized run-based batches swapped in.  Shares
   ['a t] with the plain entry points, so singles and batch runs can be
   mixed on one queue. *)
module Batched = struct
  include Impl

  let try_enqueue_batch = try_enqueue_batch_runs
  let try_dequeue_batch = try_dequeue_batch_runs
end
