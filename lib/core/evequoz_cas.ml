module Atomic_intf = Nbq_primitives.Atomic_intf
module Probe = Nbq_primitives.Probe
module Fault = Nbq_primitives.Fault

(* The algorithm core (paper Fig. 5, right column): the unified ring
   functor over the tag-variable CAS backend, over any atomics, any
   instrumentation probe (Noop by default; the observability layer supplies
   counting probes) and any fault hook (Noop by default; the torture
   harness supplies stalling/crashing ones). *)
module Make_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
struct
  module Backend = Nbq_primitives.Llsc_cas.Backend_injected (A) (P) (F)
  include Evequoz_ring.Make_injected (Backend) (P) (F)
end

module Make_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) =
  Make_injected (A) (P) (Fault.Noop)

module Make (A : Atomic_intf.ATOMIC) = Make_probed (A) (Probe.Noop)

(* --- The domain-local implicit-handle layer, over any core --- *)

module type CORE = sig
  type 'a t
  type 'a handle

  val create : capacity:int -> 'a t
  val capacity : 'a t -> int
  val register : 'a t -> 'a handle
  val deregister : 'a handle -> unit
  val enqueue_with : 'a t -> 'a handle -> 'a -> bool
  val dequeue_with : 'a t -> 'a handle -> 'a option
  val peek_with : 'a t -> 'a handle -> 'a option
  val enqueue_batch_with : 'a t -> 'a handle -> 'a array -> int
  val dequeue_batch_with : 'a t -> 'a handle -> int -> 'a list
  val length : 'a t -> int
  val registry_size : 'a t -> int
  val owned_count : 'a t -> int
  val audit : 'a t -> Nbq_primitives.Llsc_cas.audit
  val head_index : 'a t -> int
  val tail_index : 'a t -> int
end

module With_implicit_handles (Core : CORE) = struct
  let name = "evequoz-cas"

  type 'a handle = 'a Core.handle

  type 'a t = {
    core : 'a Core.t;
    (* Implicit per-domain handle cache.  [option ref] so that
       [deregister_domain] can drop it. *)
    implicit : 'a handle option ref Domain.DLS.key;
  }

  let create ~capacity =
    {
      core = Core.create ~capacity;
      implicit = Domain.DLS.new_key (fun () -> ref None);
    }

  let capacity t = Core.capacity t.core
  let register t = Core.register t.core
  let deregister = Core.deregister
  let enqueue_with t h x = Core.enqueue_with t.core h x
  let dequeue_with t h = Core.dequeue_with t.core h
  let registry_size t = Core.registry_size t.core
  let owned_count t = Core.owned_count t.core
  let audit t = Core.audit t.core
  let head_index t = Core.head_index t.core
  let tail_index t = Core.tail_index t.core
  let length t = Core.length t.core

  let implicit_handle t =
    let cache = Domain.DLS.get t.implicit in
    match !cache with
    | Some h -> h
    | None ->
        let h = register t in
        cache := Some h;
        h

  let deregister_domain t =
    let cache = Domain.DLS.get t.implicit in
    match !cache with
    | Some h ->
        deregister h;
        cache := None
    | None -> ()

  let peek_with t h = Core.peek_with t.core h

  let try_enqueue t x = enqueue_with t (implicit_handle t) x

  let try_dequeue t = dequeue_with t (implicit_handle t)

  let try_peek t = peek_with t (implicit_handle t)

  (* Native batches: resolve the DLS handle cache once for the whole batch
     instead of once per item.  Each item still goes through [enqueue_with]
     / [dequeue_with] (including the per-operation ReRegister the paper
     mandates), so linearization and the registry space bound are exactly
     those of a loop of singles. *)
  let try_enqueue_batch t items =
    let n = Array.length items in
    if n = 0 then 0
    else begin
      let h = implicit_handle t in
      let i = ref 0 in
      while !i < n && enqueue_with t h (Array.unsafe_get items !i) do
        incr i
      done;
      !i
    end

  let try_dequeue_batch t k =
    if k <= 0 then []
    else begin
      let h = implicit_handle t in
      let rec go acc left =
        if left <= 0 then List.rev acc
        else
          match dequeue_with t h with
          | Some x -> go (x :: acc) (left - 1)
          | None -> List.rev acc
      in
      go [] k
    end

  (* The run-based batches (one ReRegister and one counter CAS per run,
     paper path on interference).  Kept off [try_enqueue_batch] /
     [try_dequeue_batch] so the default rows stay a literal loop of
     singles; the sharded front-end opts in via [Batched]. *)
  let try_enqueue_batch_runs t items =
    if Array.length items = 0 then 0
    else Core.enqueue_batch_with t.core (implicit_handle t) items

  let try_dequeue_batch_runs t k =
    if k <= 0 then [] else Core.dequeue_batch_with t.core (implicit_handle t) k
end

(* --- Default instantiation with real atomics and no-op probes --- *)

module Core = Make (Atomic_intf.Real)

module Impl = With_implicit_handles (Core)
include Impl

(* The same queue with the amortized run-based batches swapped in.  Shares
   ['a t] with the plain entry points, so singles and batch runs can be
   mixed on one queue. *)
module Batched = struct
  include Impl

  let try_enqueue_batch = try_enqueue_batch_runs
  let try_dequeue_batch = try_dequeue_batch_runs
end
