(** Algorithm 2: the pointer-wide-CAS non-blocking circular-array FIFO
    (paper, Fig. 5).

    Array slots are {!Nbq_primitives.Llsc_cas} cells — single atomic words
    holding either an item, the empty marker, or a reserving thread's tag —
    while [Head] and [Tail] are plain monotonic atomic counters advanced with
    CAS.  Each operation (paper): read the counter, simulated-LL the slot it
    designates, revalidate the counter, then either store-conditional the new
    content and advance the counter, or roll the reservation back and help
    the lagging counter.

    The queue is population-oblivious; space consumption is
    O(capacity + maximum number of threads that ever accessed the queue
    simultaneously) — the tag-variable registry grows to the high-water mark
    of concurrency and is recycled, never freed.

    Two ways to use it:
    - {b implicit handles} — the plain {!Queue_intf.BOUNDED} interface;
      each domain's tag handle is created on first use and cached
      domain-locally.  A domain that stops using the queue without
      {!deregister_domain} keeps its tag variable owned (the paper accepts
      the same leak when a thread dies before [Deregister]).
    - {b explicit handles} — {!register} / {!enqueue} / {!dequeue} /
      {!deregister}, mirroring the paper's signatures; useful when a domain
      multiplexes many logical threads.

    Both entry points perform the paper-mandated [ReRegister] at the start of
    every operation. *)

(** What the algorithm core provides: the explicit-handle API.  The
    domain-local convenience layer ({!With_implicit_handles}) builds the
    {!Queue_intf.BOUNDED} view on top of any core. *)
module type CORE = sig
  type 'a t
  type 'a handle

  val create : capacity:int -> 'a t
  val capacity : 'a t -> int
  val register : 'a t -> 'a handle
  val deregister : 'a handle -> unit
  val enqueue_with : 'a t -> 'a handle -> 'a -> bool
  val dequeue_with : 'a t -> 'a handle -> 'a option
  val peek_with : 'a t -> 'a handle -> 'a option

  val enqueue_batch_with : 'a t -> 'a handle -> 'a array -> int
  (** Batch run (extension, not in the paper): insert a prefix of the array
      as {e one} operation — one [ReRegister], then consecutive slots filled
      with the usual ll/sc reservation protocol and published with a single
      [Tail] CAS per clean run.  Any interference (a competing enqueuer's
      item landing inside the run, a lost store-conditional) publishes the
      clean prefix and falls back to the paper's per-item loop, so under
      contention this degrades to exactly a loop of singles.  Returns the
      number of items accepted (stops at the first "full"). *)

  val dequeue_batch_with : 'a t -> 'a handle -> int -> 'a list
  (** Batch run: remove up to [k] items as one operation — consecutive
      slots drained through ll/sc and a single [Head] CAS per clean run,
      with the same paper-path fallback.  Result preserves queue order. *)

  val length : 'a t -> int
  val registry_size : 'a t -> int

  val owned_count : 'a t -> int
  (** Tag variables whose reference count is currently non-zero — the
      live-reservation footprint.  Racy O(registry) scan, for tests. *)

  val audit : 'a t -> Nbq_primitives.Llsc_cas.audit
  (** One racy snapshot of the tag registry: ever-allocated, currently
      owned (including variables abandoned by crashed threads) and
      recyclable counts.  The torture harness's no-unbounded-growth
      oracle. *)

  val head_index : 'a t -> int
  val tail_index : 'a t -> int
end

(** The algorithm core with fault injection on top of instrumentation:
    [F.hit] fires at every linearization-critical window —
    {!Nbq_primitives.Fault.Counter_bump} between a slot update (or the
    decision to help) and the Head/Tail CAS it mandates (paper E11-E13 /
    D11-D13: a thread frozen there forces everyone else into the helping
    path), plus the [Ll_reserve] / [Slot_swap] / [Sc_attempt] /
    [Tag_register] / [Tag_reregister] / [Tag_deregister] windows fired
    inside {!Nbq_primitives.Llsc_cas.Make_injected}. *)
module Make_injected
    (A : Nbq_primitives.Atomic_intf.ATOMIC)
    (P : Nbq_primitives.Probe.S)
    (F : Nbq_primitives.Fault.S) : CORE

(** The algorithm core, parameterized over the atomics (for the model
    checker) and an instrumentation probe (for the observability layer).
    Probe events: [sc_fail] on failed update-path store-conditionals,
    [tail_help]/[head_help] when helping a lagging counter, plus the tag
    registry events fired by {!Nbq_primitives.Llsc_cas.Make_probed}. *)
module Make_probed
    (A : Nbq_primitives.Atomic_intf.ATOMIC)
    (P : Nbq_primitives.Probe.S) : CORE

(** [Make_probed] with {!Nbq_primitives.Probe.Noop}: the uninstrumented
    core. *)
module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) : CORE

(** The domain-local implicit-handle layer over any core: caches one handle
    per domain in DLS and exposes the plain bounded-queue interface. *)
module With_implicit_handles (Core : CORE) : sig
  include Queue_intf.BOUNDED_BATCH

  type 'a handle = 'a Core.handle

  val register : 'a t -> 'a handle
  val deregister : 'a handle -> unit
  val enqueue_with : 'a t -> 'a handle -> 'a -> bool
  val dequeue_with : 'a t -> 'a handle -> 'a option
  val try_peek : 'a t -> 'a option
  val peek_with : 'a t -> 'a handle -> 'a option
  val deregister_domain : 'a t -> unit
  val registry_size : 'a t -> int
  val owned_count : 'a t -> int
  val audit : 'a t -> Nbq_primitives.Llsc_cas.audit
  val head_index : 'a t -> int
  val tail_index : 'a t -> int

  val try_enqueue_batch_runs : 'a t -> 'a array -> int
  val try_dequeue_batch_runs : 'a t -> int -> 'a list
  (** {!CORE.enqueue_batch_with} / {!CORE.dequeue_batch_with} through the
      calling domain's cached handle.  Same conservation and per-queue FIFO
      guarantees as the default loop-of-singles batches, but full/empty
      reports may be conservative for the whole run while a counter lags —
      which is why the default [try_enqueue_batch]/[try_dequeue_batch]
      remain literal loops of singles and only opt-in compositions (the
      sharded front-end, where a spurious "full" just spills to the next
      shard) use these. *)
end

include Queue_intf.BOUNDED_BATCH
(** The batch entry points resolve the calling domain's cached handle once
    per batch instead of once per item; each item still performs the
    paper-mandated [ReRegister], so semantics and the registry space bound
    are those of a loop of singles. *)

type 'a handle
(** A registered tag variable for one logical thread (paper's [LLSCvar *]). *)

val register : 'a t -> 'a handle
(** Acquire a handle: recycle a free tag variable or extend the registry. *)

val deregister : 'a handle -> unit
(** Return the handle's tag variable to the registry.  The handle must not
    be used afterwards. *)

val enqueue_with : 'a t -> 'a handle -> 'a -> bool
(** [try_enqueue] through an explicit handle. *)

val dequeue_with : 'a t -> 'a handle -> 'a option
(** [try_dequeue] through an explicit handle. *)

val try_peek : 'a t -> 'a option
(** Observe the front item without removing it ([None] when empty).
    Linearizable; an extension beyond the paper's API. *)

val peek_with : 'a t -> 'a handle -> 'a option
(** [try_peek] through an explicit handle. *)

val deregister_domain : 'a t -> unit
(** Release the calling domain's implicit handle, if any was created. *)

val registry_size : 'a t -> int
(** Number of tag variables ever allocated for this queue — the space
    adaptivity metric of the paper (tracks the high-water mark of concurrent
    threads, not operation count). *)

val owned_count : 'a t -> int
(** Number of tag variables with a non-zero reference count right now; a
    rolled-back reservation (e.g. {!try_peek}) must leave this at the number
    of registered handles.  Racy O(registry) scan, for tests. *)

val audit : 'a t -> Nbq_primitives.Llsc_cas.audit
(** {!registry_size} and {!owned_count} in one scan, plus the recyclable
    remainder.  For registry-leak assertions in tests and torture runs. *)

val head_index : 'a t -> int
val tail_index : 'a t -> int
(** Raw monotonic counters, for tests and scenario replays. *)

val try_enqueue_batch_runs : 'a t -> 'a array -> int
val try_dequeue_batch_runs : 'a t -> int -> 'a list
(** The amortized batch runs on the default queue (see
    {!With_implicit_handles.try_enqueue_batch_runs}). *)

(** The default queue with the run-based batches as its
    [try_enqueue_batch] / [try_dequeue_batch].  Shares ['a t] with the
    top-level entry points, so singles and batch runs mix freely on one
    queue.  This is what the sharded front-end composes. *)
module Batched : sig
  include Queue_intf.BOUNDED_BATCH with type 'a t = 'a t
end
