(* Torture rounds for the parking layer: arm Park_window / Wake_lost and
   check that no live parked domain is ever stranded.  See the .mli for
   the oracles; the rounds below are deliberately small and fresh —
   eventcount, injector, and domains are all per-round, so 10k rounds
   probe 10k independent first-fault schedules rather than one long
   history. *)

module Fault = Nbq_primitives.Fault
module EC = Nbq_wait.Eventcount

type outcome = {
  point : Fault.point;
  action : Injector.action;
  iterations : int;
  triggered : int;
  completed : int;
  max_wait : float;
}

let points = [ Fault.Park_window; Fault.Wake_lost ]

let now = Unix.gettimeofday

(* Take one item (a positive int) out of [slot], compare-and-swap so a
   victim and a live consumer can race for it safely. *)
let take slot () =
  let rec go () =
    let v = Atomic.get slot in
    if v <= 0 then None
    else if Atomic.compare_and_set slot v (v - 1) then Some v
    else go ()
  in
  go ()

(* Spin until [pred] holds or [deadline] passes.  Used to sequence the
   adversarial schedule: Wake_lost needs a published waiter before the
   wake (to get past wake_one's empty-stack fast path); Park_window needs
   the victim to have claimed the armed window before any other domain
   reaches it. *)
let wait_for ~deadline pred =
  let rec go () =
    if pred () then ()
    else if now () > deadline then ()
    else (
      Domain.cpu_relax ();
      go ())
  in
  go ()

let published ?(n = 1) ec () = fst (EC.audit ec) >= n

(* One Wake_lost round: a consumer parks on an empty slot; the producer
   fills the slot and crashes/stalls inside wake_one, after the seq bump
   but before signalling.  The consumer must still return [`Ok]. *)
let wake_lost_round ~action ~slack () =
  let inj = Injector.create () in
  Injector.arm inj ~point:Fault.Wake_lost ~action ~after:1;
  let ec = EC.create ~wake_window:(fun () -> Injector.hit inj Fault.Wake_lost) () in
  let slot = Atomic.make 0 in
  let deadline = now () +. slack in
  let consumer =
    Domain.spawn (fun () ->
        let t0 = now () in
        let r = EC.await ~deadline ec (take slot) in
        (r, now () -. t0))
  in
  wait_for ~deadline (published ec);
  Atomic.set slot 1;
  let wake () = try ignore (EC.wake_one ec) with Injector.Crashed -> () in
  let waker =
    match action with
    | Injector.Crash ->
        wake ();
        None
    | Injector.Stall ->
        (* A stalled waker blocks until release, so it needs its own
           domain; the consumer must complete while it is still stuck. *)
        Some (Domain.spawn wake)
  in
  let result, waited = Domain.join consumer in
  Injector.release inj;
  Option.iter Domain.join waker;
  let ok = match result with `Ok 1 -> true | `Ok _ | `Timeout -> false in
  (Injector.triggered inj, ok, waited)

(* One Park_window round: a victim consumer crashes/stalls between
   publishing its waiter node and sleeping, leaving a claimable node on
   the stack.  The producer then supplies two items with two wakes —
   one wake may be swallowed by the victim's node — and a second, live
   consumer must still get an item. *)
let park_window_round ~action ~slack () =
  let inj = Injector.create () in
  Injector.arm inj ~point:Fault.Park_window ~action ~after:1;
  let ec = EC.create ~park_window:(fun () -> Injector.hit inj Fault.Park_window) () in
  let slot = Atomic.make 0 in
  let deadline = now () +. slack in
  let victim =
    Domain.spawn (fun () ->
        try ignore (EC.await ~deadline ec (take slot))
        with Injector.Crashed -> ())
  in
  (* The live consumer passes through the same hook, so it must not be
     spawned until the victim has claimed the armed window — otherwise
     the "live" domain could become the one stalled/crashed. *)
  wait_for ~deadline (fun () -> Injector.triggered inj);
  let live =
    Domain.spawn (fun () ->
        let t0 = now () in
        let r = EC.await ~deadline ec (take slot) in
        (r, now () -. t0))
  in
  (* The victim's node stays published (state: waiting) whether it
     crashed or is stalled pre-park, so the live waiter makes two. *)
  wait_for ~deadline (published ~n:2 ec);
  Atomic.set slot 2;
  ignore (EC.wake_one ec);
  ignore (EC.wake_one ec);
  let result, waited = Domain.join live in
  Injector.release inj;
  Domain.join victim;
  let ok = match result with `Ok _ -> true | `Timeout -> false in
  (Injector.triggered inj, ok, waited)

let run ?(iterations = 300) ?(deadline_slack = 2.0) ~point ~action () =
  let round =
    match point with
    | Fault.Wake_lost -> wake_lost_round ~action ~slack:deadline_slack
    | Fault.Park_window -> park_window_round ~action ~slack:deadline_slack
    | p ->
        invalid_arg
          (Printf.sprintf "Wait_torture.run: %s is not a wait-layer point"
             (Fault.to_string p))
  in
  let triggered = ref 0 and completed = ref 0 and max_wait = ref 0.0 in
  for _ = 1 to iterations do
    let t, ok, waited = round () in
    if t then incr triggered;
    if ok then incr completed;
    if waited > !max_wait then max_wait := waited
  done;
  { point; action; iterations; triggered = !triggered; completed = !completed;
    max_wait = !max_wait }
