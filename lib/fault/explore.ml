module Sim = Nbq_modelcheck.Sim
module Prng = Nbq_primitives.Prng

(* A fault schedule is stored sparsely: only the scheduling points where
   the run deviated from the default policy (keep running the last task;
   else the lowest enabled one).  This keeps schedules short, makes
   delta-debugging meaningful (dropping a decision = removing one
   preemption) and lets a shrunk schedule replay leniently: a decision
   whose task is not enabled at its step simply falls back to the
   default. *)
type decision = { step : int; task : int }

type failure = {
  seed : int;
  trials : int;
  decisions : decision list;
  message : string;
}

module Yield_at_faults : Nbq_primitives.Fault.S = struct
  (* Turn every fault-injection window into a scheduling point, so the
     explorer can preempt a simulated thread exactly where a real one
     could be stalled or killed. *)
  let hit _ = Sim.yield ()
end

let default_choose () =
  let last = ref (-1) in
  fun ~enabled ->
    let pick = if List.mem !last enabled then !last else List.hd enabled in
    last := pick;
    pick

let choose_of decisions =
  let default = default_choose () in
  fun ~step ~enabled ->
    match List.find_opt (fun d -> d.step = step) decisions with
    | Some d when List.mem d.task enabled ->
        (* Replay the recorded preemption and resync the default policy's
           notion of the running task. *)
        ignore (default ~enabled:[ d.task ]);
        d.task
    | Some _ | None -> default ~enabled

type verdict = Passed | Diverged | Failed of exn

let run_decisions ?(max_steps = 100_000) scenario decisions =
  match Sim.run_guided ~max_steps ~choose:(choose_of decisions) scenario with
  | `Completed, _ -> Passed
  | `Diverged, _ -> Diverged
  | exception e -> Failed e

(* One seeded random run: at each scheduling point, preempt to a uniformly
   random other task with probability 1/preempt_bias, recording only the
   deviations. *)
let random_run ~prng ~max_steps ~preempt_bias scenario =
  let decisions = ref [] in
  let default = default_choose () in
  let choose ~step ~enabled =
    let d = default ~enabled in
    match List.filter (fun t -> t <> d) enabled with
    | [] -> d
    | others ->
        if Prng.int prng preempt_bias = 0 then begin
          let t = List.nth others (Prng.int prng (List.length others)) in
          decisions := { step; task = t } :: !decisions;
          ignore (default ~enabled:[ t ]);
          t
        end
        else d
  in
  let verdict =
    match Sim.run_guided ~max_steps ~choose scenario with
    | `Completed, _ -> Passed
    | `Diverged, _ -> Diverged
    | exception e -> Failed e
  in
  (verdict, List.rev !decisions)

let fails ?max_steps scenario decisions =
  match run_decisions ?max_steps scenario decisions with
  | Failed _ -> true
  | Passed | Diverged -> false

(* Greedy delta debugging (ddmin): repeatedly try to drop chunks of the
   decision list while the failure persists, halving chunk size when
   nothing can be dropped.  Deterministic, so the shrunk schedule is as
   reproducible as the original. *)
let shrink ?max_steps scenario decisions =
  if not (fails ?max_steps scenario decisions) then decisions
  else begin
    let drop_range l lo hi =
      List.filteri (fun i _ -> i < lo || i >= hi) l
    in
    let rec go current chunk =
      let len = List.length current in
      if len <= 1 then current
      else begin
        let chunk = min chunk len in
        let rec try_from lo =
          if lo >= len then None
          else
            let cand = drop_range current lo (min len (lo + chunk)) in
            if fails ?max_steps scenario cand then Some cand
            else try_from (lo + chunk)
        in
        match try_from 0 with
        | Some cand -> go cand chunk
        | None -> if chunk = 1 then current else go current (chunk / 2)
      end
    in
    go decisions (max 1 (List.length decisions / 2))
  end

let search ?(trials = 500) ?(max_steps = 50_000) ?(preempt_bias = 4) ~seed
    scenario =
  let prng = Prng.create ~seed in
  let rec go i =
    if i >= trials then None
    else
      let verdict, decisions =
        random_run ~prng ~max_steps ~preempt_bias scenario
      in
      match verdict with
      | Failed e ->
          let shrunk = shrink ~max_steps scenario decisions in
          let message =
            match run_decisions ~max_steps scenario shrunk with
            | Failed e' -> Printexc.to_string e'
            | Passed | Diverged -> Printexc.to_string e
          in
          Some { seed; trials = i + 1; decisions = shrunk; message }
      | Passed | Diverged -> go (i + 1)
  in
  go 0

(* --- Repro lines --- *)

let repro_line f =
  let ds =
    match f.decisions with
    | [] -> "-"
    | ds ->
        String.concat ","
          (List.map (fun d -> Printf.sprintf "%d:%d" d.step d.task) ds)
  in
  Printf.sprintf "NBQ-FAULT-REPRO v1 seed=%d decisions=%s" f.seed ds

let parse_repro line =
  let ( let* ) = Option.bind in
  match String.split_on_char ' ' (String.trim line) with
  | [ "NBQ-FAULT-REPRO"; "v1"; seed_kv; dec_kv ] ->
      let* seed =
        match String.split_on_char '=' seed_kv with
        | [ "seed"; s ] -> int_of_string_opt s
        | _ -> None
      in
      let* decisions =
        match String.split_on_char '=' dec_kv with
        | [ "decisions"; "-" ] -> Some []
        | [ "decisions"; ds ] ->
            List.fold_right
              (fun part acc ->
                let* acc = acc in
                match String.split_on_char ':' part with
                | [ s; t ] -> (
                    match (int_of_string_opt s, int_of_string_opt t) with
                    | Some step, Some task -> Some ({ step; task } :: acc)
                    | _ -> None)
                | _ -> None)
              (String.split_on_char ',' ds)
              (Some [])
        | _ -> None
      in
      Some (seed, decisions)
  | _ -> None
