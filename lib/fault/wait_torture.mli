(** Stall/crash torture for the parking layer ([Nbq_wait]).

    The wait layer's robustness claim (DESIGN.md §10) is sharper than
    lock-freedom: a domain parked on an eventcount must be woken —
    promptly by a signal, or within a bounded number of ~1ms ticks by the
    backstop — {e no matter what happens to the waker}.  Each torture
    round arms one of the two wait-layer injection points and checks that
    claim with real parked domains:

    - {!Nbq_primitives.Fault.Wake_lost} — the victim is a {e waker} that
      stalls or dies after bumping the eventcount's sequence counter but
      before delivering any signal.  The parked consumer must still
      obtain its item and return [`Ok] before a generous deadline: the
      seq-bump-first discipline plus bounded park slices convert the lost
      signal into a one-tick delay.
    - {!Nbq_primitives.Fault.Park_window} — the victim is a {e waiter}
      that stalls or dies between publishing its waiter node and going to
      sleep, leaving a claimable node on the stack.  A {e second}, live
      consumer must still obtain an item even when a wake is swallowed by
      the dead/stalled victim's node.

    Rounds are cheap (~1–2ms: one tick of backstop latency plus domain
    spawn/join), so the lost-wakeup acceptance gate runs 10k of them. *)

type outcome = {
  point : Nbq_primitives.Fault.point;
  action : Injector.action;
  iterations : int;  (** rounds executed *)
  triggered : int;  (** rounds in which the armed point actually fired *)
  completed : int;
      (** rounds in which the live waiter got its item before the
          deadline — the no-strand oracle; anything below [iterations]
          is a lost-wakeup hang caught by the round deadline *)
  max_wait : float;
      (** worst wall-clock seconds any live waiter spent blocked — how
          close the backstop came to the deadline *)
}

val run :
  ?iterations:int ->
  ?deadline_slack:float ->
  point:Nbq_primitives.Fault.point ->
  action:Injector.action ->
  unit ->
  outcome
(** [run ~point ~action ()] executes [iterations] (default 300)
    independent rounds against a fresh eventcount and injector each time.
    [deadline_slack] (default 2s) bounds one round: a live waiter still
    blocked past it counts as not-[completed] instead of hanging the
    suite.  Raises [Invalid_argument] unless [point] is [Park_window] or
    [Wake_lost]. *)

val points : Nbq_primitives.Fault.point list
(** [[Park_window; Wake_lost]] — what {!run} accepts. *)
