(** Runtime fault controller behind a {!Nbq_primitives.Fault.S} hook.

    An injector is armed for one {e injection point} and fires exactly once,
    on the [after]-th hit of that point (counted across all domains with a
    fetch-and-add, so the victim is unique even under races).  What firing
    does is the {!action}:

    - {!Stall} — the victim spins inside the injection point until
      {!release}, modelling a thread preempted (or paused by the OS) at the
      worst possible instant.  The paper's lock-freedom claim is exactly
      that everyone else keeps completing operations meanwhile.
    - {!Crash} — the victim raises {!Crashed}, unwinding out of the
      protocol mid-flight: reservations stay installed, tag variables stay
      owned, counters stay lagging.  This models a thread dying inside an
      operation (paper §5's abandoned-marker adversary).

    One injector may be shared by any number of domains; all operations are
    lock-free.  Re-{!arm} only while no thread can be inside a hooked
    operation (between torture rounds). *)

exception Crashed
(** Raised inside the armed injection point by a {!Crash} action.  The
    torture harness's workers treat it as thread death: they stop without
    any cleanup, abandoning whatever the protocol had acquired. *)

type action = Stall | Crash

val action_to_string : action -> string

type t
(** Shared controller state. *)

val create : unit -> t
(** A fresh, disarmed injector: every {!hit} is a no-op. *)

val arm : t -> point:Nbq_primitives.Fault.point -> action:action -> after:int -> unit
(** [arm t ~point ~action ~after] resets all counters and arms the [after]-th
    ([>= 1], across all domains) hit of [point] to perform [action].  Raises
    [Invalid_argument] if [after < 1]. *)

val disarm : t -> unit
(** Back to no-op.  Does not release an already-stalled victim. *)

val release : t -> unit
(** Let a {!Stall}ed victim resume.  Idempotent; harmless when nothing is
    stalled. *)

val hit : t -> Nbq_primitives.Fault.point -> unit
(** The hook body: count the hit and act if it is the armed one.  Exposed
    directly (besides {!hook}) so harness-level points like
    {!Nbq_primitives.Fault.Op_gap} can be fired from plain code. *)

val hook : t -> (module Nbq_primitives.Fault.S)
(** First-class fault module for instantiating [Make_injected] functors:
    [let (module F) = Injector.hook t in ...]. *)

val hits : t -> int
(** Hits of the armed point since {!arm} (including the triggering one). *)

val triggered : t -> bool
(** Whether the armed hit has happened. *)

val victim : t -> int option
(** The domain id (as [int]) that triggered, once {!triggered}. *)
