(** Randomized fault-schedule exploration with delta-debugging shrinking.

    Complements the exhaustive checker ({!Nbq_modelcheck.Sim.explore}):
    instead of enumerating every interleaving of a tiny scenario, this
    drives {!Nbq_modelcheck.Sim.run_guided} with a seeded random scheduler
    over bigger scenarios, and when a check fails it shrinks the schedule
    to a minimal set of preemptions and prints a one-line repro.

    A schedule is stored {e sparsely} as the list of {!decision}s — the
    scheduling points where the run deviated from the default policy (keep
    running the current task, else the lowest enabled).  Replay is lenient:
    a decision whose task is not enabled at its step falls back to the
    default, which is what makes delta-debugging sound (dropping one
    preemption still yields a valid schedule). *)

type decision = { step : int; task : int }
(** "At scheduling point [step], preempt to task [task]." *)

type failure = {
  seed : int;  (** the search seed that found it *)
  trials : int;  (** random runs executed up to and including the failing one *)
  decisions : decision list;  (** shrunk preemption list *)
  message : string;  (** the check's exception, printed *)
}

(** A {!Nbq_primitives.Fault.S} whose [hit] performs a simulation yield:
    instantiate a [Make_injected] functor over {!Nbq_modelcheck.Sim.Atomic}
    with this to make every fault-injection window a scheduling point, so
    the explorer preempts simulated threads exactly where real ones could
    be stalled or killed. *)
module Yield_at_faults : Nbq_primitives.Fault.S

type verdict = Passed | Diverged | Failed of exn

val run_decisions :
  ?max_steps:int ->
  (unit -> (unit -> unit) array * (unit -> unit)) ->
  decision list ->
  verdict
(** Deterministically replay a sparse schedule.  [Failed e] carries the
    exception raised by the scenario's check (or a task). *)

val shrink :
  ?max_steps:int ->
  (unit -> (unit -> unit) array * (unit -> unit)) ->
  decision list ->
  decision list
(** Greedy ddmin: drop chunks of decisions while the replay still fails.
    Returns the input unchanged if it does not fail.  Deterministic. *)

val search :
  ?trials:int ->
  ?max_steps:int ->
  ?preempt_bias:int ->
  seed:int ->
  (unit -> (unit -> unit) array * (unit -> unit)) ->
  failure option
(** [search ~seed scenario] runs up to [trials] (default 500) seeded random
    schedules, preempting with probability [1/preempt_bias] (default 4) at
    each scheduling point.  Equal seeds explore equal schedule sequences.
    On the first failing run the schedule is shrunk and returned; [None]
    means no failure was found (not a proof of correctness). *)

val repro_line : failure -> string
(** One greppable line, e.g.
    ["NBQ-FAULT-REPRO v1 seed=42 decisions=12:1,57:0"]. *)

val parse_repro : string -> (int * decision list) option
(** Inverse of {!repro_line}: the seed and the decision list, ready for
    {!run_decisions}. *)
