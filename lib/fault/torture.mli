(** Stall/crash torture for the queue stack.

    One torture round freezes (or kills) exactly one domain inside a chosen
    injection point while the other domains keep hammering the queue, and
    then checks the paper's robustness claims concretely:

    - {b progress} — every non-victim worker completes at least
      [target_ops] operations while the victim is held in the window
      (lock-freedom: no thread's delay blocks the others);
    - {b conservation} — after release/join, successful enqueues equal
      successful dequeues plus a full drain (exactly for a stall; a crashed
      thread's single in-flight item may be present or lost, so ±1);
    - {b registry hygiene} — for the CAS queue, the tag-variable registry
      stays bounded even when a crash abandons a registered variable
      mid-protocol (the paper-§5 adversary);
    - {b recovery} — a post-fault enqueue/dequeue roundtrip succeeds.

    Deep targets (the two Evéquoz queues) are rebuilt through their
    [Make_injected] functors so faults fire {e inside} the algorithm; every
    other registry queue is a generic target supporting only the
    harness-level {!Nbq_primitives.Fault.Op_gap} point (stalling between
    operations — the strongest fault one can inject without instrumenting
    the implementation, and the only one lock-based queues survive). *)

type built = {
  enqueue : int -> bool;
  dequeue : unit -> int option;
  audit : unit -> Nbq_primitives.Llsc_cas.audit option;
      (** Tag-registry snapshot; [None] for queues without a registry. *)
}
(** A queue instance wired to an injector, reduced to what the torture
    loop needs.  For the CAS queue, [enqueue]/[dequeue] register and
    deregister a fresh handle around every call, so all tag-protocol
    windows fire each operation and a crash abandons the handle. *)

type target
(** A queue that can be tortured: a name, its injectable points, and a
    builder. *)

val name : target -> string

val points : target -> Nbq_primitives.Fault.point list
(** The target's deep points plus {!Nbq_primitives.Fault.Op_gap} (always
    last). *)

val evequoz_cas : target
(** All seven deep points: the LL/SC-simulation windows, the tag-registry
    protocol and the counter-bump helping window. *)

val evequoz_bw : target
(** ["evequoz-bw"]: the Blelloch–Wei constant-time backend under the same
    per-op register/deregister adversary as {!evequoz_cas}.  Six deep
    points — [Tag_reregister] is deliberately absent because the protocol
    has no revalidation step to arm.  [audit] reports the announcement
    registry (bounded even when a crash abandons a registered slot). *)

val evequoz_llsc : target
(** [Ll_reserve], [Sc_attempt] (fired by the injected ideal cells) and
    [Counter_bump]. *)

val evequoz_cas_sharded : target
(** ["evequoz-cas-shard4"]: four fault-injected CAS rings behind an
    [Nbq_scale.Sharded] facade with adversarial round-robin affinity (the
    default domain-affine placement never opens the steal window under
    the paired torture workload).  All of {!evequoz_cas}'s points fire on
    whichever ring an operation lands, plus
    {!Nbq_primitives.Fault.Shard_steal} — a victim frozen there holds no
    reservation on any ring.  [audit] sums the per-ring tag registries. *)

val evequoz_seg : target
(** ["evequoz-seg"]: the segmented unbounded queue over fault-injected
    CAS cells, small segments so the chain churns constantly.  All of
    {!evequoz_cas}'s points fire inside whichever segment an operation
    lands, plus {!Nbq_primitives.Fault.Seg_append} (tail observed full,
    successor not yet linked) and {!Nbq_primitives.Fault.Seg_retire}
    (successor observed, head not yet swung).  A crash abandons the
    per-op hazard record, so reclamation runs against a permanently
    published hazard. *)

val scq : target
(** ["scq"]: the SCQ value/credit pairing over fault-injected rings.
    [Faa_cycle] (a ticket taken by FAA, slot untouched — the abandoned
    ticket must be recovered by the unsafe-bit/bump machinery, at worst
    stranding one credit), [Threshold_reset] (item installed, threshold
    not restored — other installs must keep re-arming dequeuers), and
    [Catchup] (inside the tail-repair loop).  No registry, so no
    [audit]. *)

val scq_wcq : target
(** ["scq-wcq"]: {!scq} with the helping (announcement-driven) enqueue
    slow path armed, so a victim can die or stall while announced or
    while helping. *)

val targets : unit -> target list
(** The deep targets plus a generic (Op_gap-only) target for every other
    queue in {!Nbq_harness.Registry.concurrent}. *)

val find : string -> target option

type outcome = {
  target : string;
  point : Nbq_primitives.Fault.point;
  action : Injector.action;
  triggered : bool;  (** the armed point actually fired *)
  survivors : int;  (** workers not selected as the victim *)
  min_survivor_ops : int;
      (** least operations any survivor completed while the victim was held
          in the window *)
  balance : int;  (** drained + dequeued - enqueued; 0 = exact *)
  conserved : bool;  (** balance within the action's tolerance *)
  audit : Nbq_primitives.Llsc_cas.audit option;
      (** registry snapshot after drain and recovery, when applicable *)
  recovered : bool;  (** post-fault roundtrip succeeded *)
}

val run :
  ?workers:int ->
  ?target_ops:int ->
  ?capacity:int ->
  ?trigger_after:int ->
  ?timeout:float ->
  ?tracer:Nbq_trace.Recorder.t ->
  target ->
  point:Nbq_primitives.Fault.point ->
  action:Injector.action ->
  outcome
(** [run t ~point ~action] executes one torture round: build a fresh
    instance of [t] wired to a fresh injector, arm the [trigger_after]-th
    (default 50) hit of [point] with [action], spawn [workers] (default 4,
    minimum 2) domains looping enqueue/dequeue pairs, wait for the trigger,
    require every survivor to advance [target_ops] (default 10_000)
    operations, then stop, release, join and evaluate the oracles above.
    [timeout] (default 30s) bounds the whole round; a round that times out
    reports [triggered = false] or a small [min_survivor_ops] rather than
    hanging.  Raises [Invalid_argument] if [point] is not one of
    [points t] or [workers < 2].

    With [?tracer] (use a full-mode recorder, [~sample:1]) the instance is
    built with the recorder's hooks composed into the same seams as the
    injector — fault-window records land {e before} the stall/crash fires —
    and the recorder is armed before workers spawn, so a failing round can
    be explained by [Nbq_trace.Export.dump] next to its repro line. *)
