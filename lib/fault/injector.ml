module Fault = Nbq_primitives.Fault

exception Crashed

type action = Stall | Crash

let action_to_string = function Stall -> "stall" | Crash -> "crash"

type t = {
  point : Fault.point option Atomic.t;
  action : action Atomic.t;
  trigger_at : int Atomic.t;
  hits : int Atomic.t;
  triggered : bool Atomic.t;
  released : bool Atomic.t;
  victim : int Atomic.t;
}

let create () =
  {
    point = Atomic.make None;
    action = Atomic.make Stall;
    trigger_at = Atomic.make 1;
    hits = Atomic.make 0;
    triggered = Atomic.make false;
    released = Atomic.make false;
    victim = Atomic.make (-1);
  }

let arm t ~point ~action ~after =
  if after < 1 then invalid_arg "Injector.arm: after < 1";
  (* Disarm first so a concurrent hit cannot fire against half-reset
     state; the point is published last. *)
  Atomic.set t.point None;
  Atomic.set t.action action;
  Atomic.set t.trigger_at after;
  Atomic.set t.hits 0;
  Atomic.set t.triggered false;
  Atomic.set t.released false;
  Atomic.set t.victim (-1);
  Atomic.set t.point (Some point)

let disarm t = Atomic.set t.point None

let release t = Atomic.set t.released true

let hits t = Atomic.get t.hits

let triggered t = Atomic.get t.triggered

let victim t =
  match Atomic.get t.victim with -1 -> None | id -> Some id

let hit t p =
  match Atomic.get t.point with
  | Some point when p = point ->
      let n = Atomic.fetch_and_add t.hits 1 in
      (* Exactly one caller sees the trigger count: fetch-and-add makes
         the Nth hit unique even under races. *)
      if n + 1 = Atomic.get t.trigger_at then begin
        Atomic.set t.victim (Domain.self () :> int);
        Atomic.set t.triggered true;
        match Atomic.get t.action with
        | Stall ->
            while not (Atomic.get t.released) do
              Domain.cpu_relax ()
            done
        | Crash -> raise Crashed
      end
  | Some _ | None -> ()

let hook t : (module Fault.S) =
  (module struct
    let hit p = hit t p
  end)
