module Fault = Nbq_primitives.Fault
module Registry = Nbq_harness.Registry

type built = {
  enqueue : int -> bool;
  dequeue : unit -> int option;
  audit : unit -> Nbq_primitives.Llsc_cas.audit option;
}

type target = {
  name : string;
  deep_points : Fault.point list;
  build : ?tracer:Nbq_trace.Recorder.t -> Injector.t -> capacity:int -> built;
}

(* With a tracer, the flight recorder rides the same seams the injector
   uses: its fault hook is composed LEFT of the injector (the "entered the
   window" record must land before the stall/crash fires) and its probe
   replaces [Probe.Noop] inside the algorithm, so a post-mortem dump shows
   the protocol steps leading into the armed window. *)
let hook ?tracer inj =
  let h = Injector.hook inj in
  match tracer with
  | None -> h
  | Some tr -> Fault.compose (Nbq_trace.Recorder.fault_hook tr) h

let probe ?tracer () =
  match tracer with
  | None -> (module Nbq_primitives.Probe.Noop : Nbq_primitives.Probe.S)
  | Some tr -> Nbq_trace.Recorder.probe tr

let name t = t.name

(* Every target additionally supports the harness-level between-operations
   stall; it is the only point available on uninstrumented (including
   lock-based) queues. *)
let points t = t.deep_points @ [ Fault.Op_gap ]

let build_cas ?tracer inj ~capacity =
  let module F = (val hook ?tracer inj) in
  let module P = (val probe ?tracer ()) in
  let module Q =
    Nbq_core.Evequoz_cas.Make_injected (Nbq_primitives.Atomic_intf.Real) (P)
      (F)
  in
  let q = Q.create ~capacity in
  (* Register and deregister around every operation so all three
     tag-protocol windows fire on each call — and so a crash anywhere
     inside abandons the handle acquired at entry, which is exactly the
     paper-§5 adversary the registry must tolerate. *)
  {
    enqueue =
      (fun v ->
        let h = Q.register q in
        let r = Q.enqueue_with q h v in
        Q.deregister h;
        r);
    dequeue =
      (fun () ->
        let h = Q.register q in
        let r = Q.dequeue_with q h in
        Q.deregister h;
        r);
    audit = (fun () -> Some (Q.audit q));
  }

(* The Blelloch–Wei backend under the same per-op register/deregister
   adversary as [build_cas].  [Tag_reregister] is deliberately absent from
   its point list: the constant-time protocol has no revalidation step, so
   there is no window to arm — that absence IS the claim under test. *)
let build_bw ?tracer inj ~capacity =
  let module F = (val hook ?tracer inj) in
  let module P = (val probe ?tracer ()) in
  let module Q =
    Nbq_core.Evequoz_bw.Make_injected (Nbq_primitives.Atomic_intf.Real) (P)
      (F)
  in
  let q = Q.create ~capacity in
  {
    enqueue =
      (fun v ->
        let h = Q.register q in
        let r = Q.enqueue_with q h v in
        Q.deregister h;
        r);
    dequeue =
      (fun () ->
        let h = Q.register q in
        let r = Q.dequeue_with q h in
        Q.deregister h;
        r);
    audit = (fun () -> Some (Q.audit q));
  }

let build_llsc ?tracer inj ~capacity =
  let module F = (val hook ?tracer inj) in
  let module P = (val probe ?tracer ()) in
  let module Cell =
    Nbq_primitives.Llsc.Make_injected (Nbq_primitives.Atomic_intf.Real) (P)
      (F)
  in
  let module Q = Nbq_core.Evequoz_llsc.Make_injected (Cell) (P) (F) in
  let q = Q.create ~capacity in
  {
    enqueue = (fun v -> Q.try_enqueue q v);
    dequeue = (fun () -> Q.try_dequeue q);
    audit = (fun () -> None);
  }

let evequoz_cas =
  {
    name = "evequoz-cas";
    deep_points =
      [
        Fault.Ll_reserve;
        Fault.Slot_swap;
        Fault.Sc_attempt;
        Fault.Tag_register;
        Fault.Tag_reregister;
        Fault.Tag_deregister;
        Fault.Counter_bump;
      ];
    build = build_cas;
  }

let evequoz_bw =
  {
    name = "evequoz-bw";
    deep_points =
      [
        Fault.Ll_reserve;
        Fault.Slot_swap;
        Fault.Sc_attempt;
        Fault.Tag_register;
        Fault.Tag_deregister;
        Fault.Counter_bump;
      ];
    build = build_bw;
  }

let evequoz_llsc =
  {
    name = "evequoz-llsc";
    deep_points = [ Fault.Ll_reserve; Fault.Sc_attempt; Fault.Counter_bump ];
    build = build_llsc;
  }

(* The sharded facade over fault-injected CAS rings: every per-ring window
   of [build_cas] still fires (on whichever shard the operation lands),
   plus [Shard_steal] — the instant between a home-shard failure and the
   first foreign probe, where the victim holds no reservation on any ring
   and the steal-path progress claim is on trial. *)
let build_sharded_cas ~shards ?tracer inj ~capacity =
  let module F = (val hook ?tracer inj) in
  let module P = (val probe ?tracer ()) in
  let module Q =
    Nbq_core.Evequoz_cas.Make_injected (Nbq_primitives.Atomic_intf.Real) (P)
      (F)
  in
  let per = max 1 ((capacity + shards - 1) / shards) in
  let rings = Array.init shards (fun _ -> Q.create ~capacity:per) in
  (* Adversarial affinity: under the default domain-affine placement a
     paired enqueue/dequeue worker never leaves its home shard (its own
     item is always there), so the steal window would never open.  A
     shared round-robin home sends successive operations to successive
     shards, making cross-shard dequeues — and hence [Shard_steal] hits —
     the common case. *)
  let rr = Atomic.make 0 in
  let t =
    Nbq_scale.Sharded.create ~shards
      ~home:(fun () -> Atomic.fetch_and_add rr 1)
      ~steal_window:(fun () -> F.hit Fault.Shard_steal)
      (fun i ->
        let q = rings.(i) in
        (* Register/deregister per op, as in [build_cas]: all tag windows
           fire and a crash abandons the handle on the shard it hit. *)
        Nbq_scale.Sharded.ops_of_singles
          ~enq:(fun v ->
            let h = Q.register q in
            let r = Q.enqueue_with q h v in
            Q.deregister h;
            r)
          ~deq:(fun () ->
            let h = Q.register q in
            let r = Q.dequeue_with q h in
            Q.deregister h;
            r)
          ~len:(fun () -> Q.length q))
  in
  {
    enqueue = (fun v -> Nbq_scale.Sharded.try_enqueue t v);
    dequeue = (fun () -> Nbq_scale.Sharded.try_dequeue t);
    audit =
      (fun () ->
        (* Sum the per-ring registries: the leak bound is aggregate. *)
        Some
          (Array.fold_left
             (fun (acc : Nbq_primitives.Llsc_cas.audit) q ->
               let a = Q.audit q in
               {
                 Nbq_primitives.Llsc_cas.registered =
                   acc.registered + a.Nbq_primitives.Llsc_cas.registered;
                 owned = acc.owned + a.owned;
                 free = acc.free + a.free;
               })
             { Nbq_primitives.Llsc_cas.registered = 0; owned = 0; free = 0 }
             rings));
  }

let evequoz_cas_sharded =
  {
    name = "evequoz-cas-shard4";
    deep_points =
      [
        Fault.Ll_reserve;
        Fault.Slot_swap;
        Fault.Sc_attempt;
        Fault.Tag_register;
        Fault.Tag_reregister;
        Fault.Tag_deregister;
        Fault.Counter_bump;
        Fault.Shard_steal;
      ];
    build = build_sharded_cas ~shards:4;
  }

(* The segmented unbounded queue over fault-injected CAS cells: every ring
   window fires inside whichever segment the operation lands on, plus the
   two chain windows — [Seg_append] (tail segment observed full, fresh
   segment not yet linked) and [Seg_retire] (successor observed, head not
   yet swung).  Per-op register/deregister as in [build_cas]; a crash
   additionally abandons the hazard record acquired at entry, so
   reclamation must tolerate a permanently published hazard.  The leak is
   bounded and item-free: segments pinned by dead readers are exhausted,
   so no enqueued item is ever stranded in one.  Segments are kept small
   so the chain appends and retires every few operations regardless of
   the harness capacity. *)
let build_seg ?tracer inj ~capacity =
  let module F = (val hook ?tracer inj) in
  let module P = (val probe ?tracer ()) in
  let module Q =
    Nbq_segmented.Segmented.Make_cas (Nbq_primitives.Atomic_intf.Real) (P) (F)
  in
  let q = Q.create ~capacity:(min capacity 8) () in
  {
    enqueue =
      (fun v ->
        let h = Q.register q in
        let r = Q.enqueue_with q h v in
        Q.deregister q h;
        r);
    dequeue =
      (fun () ->
        let h = Q.register q in
        let r = Q.dequeue_with q h in
        Q.deregister q h;
        r);
    audit = (fun () -> None);
  }

let evequoz_seg =
  {
    name = "evequoz-seg";
    deep_points =
      [
        Fault.Ll_reserve;
        Fault.Slot_swap;
        Fault.Sc_attempt;
        Fault.Tag_register;
        Fault.Tag_reregister;
        Fault.Tag_deregister;
        Fault.Counter_bump;
        Fault.Seg_append;
        Fault.Seg_retire;
      ];
    build = build_seg;
  }

(* SCQ under injection: [Faa_cycle] freezes/kills a thread between taking
   its FAA ticket and touching the slot (the abandoned-ticket adversary —
   a dead enqueuer's ticket must be recoverable by the unsafe-bit/bump
   machinery, at worst costing one credit), [Threshold_reset] between a
   successful install and the threshold restore (other installs must keep
   re-arming the dequeuers' retry budget), and [Catchup] inside the tail-
   repair loop.  No registry: the ring is index-based, so [audit] is
   [None]; a crashed enqueuer can strand one credit, which the ±1 crash
   tolerance and the recovery roundtrip both absorb.

   Capacity is clamped to 2: the catchup window only opens when a dequeue
   ticket misses with the ring near-empty (head about to overrun tail),
   and threshold churn peaks at the full boundary — at the harness's
   default 64 the paired workload opens neither often enough to arm a
   trigger, at 2 both fire hundreds of times per second. *)
let build_scq ?tracer inj ~capacity =
  let module F = (val hook ?tracer inj) in
  let module P = (val probe ?tracer ()) in
  let module S =
    Nbq_scq.Scq.Make_injected (Nbq_primitives.Atomic_intf.Real) (P) (F)
  in
  let q = S.Scq.create ~capacity:(min capacity 2) in
  {
    enqueue = (fun v -> S.Scq.try_enqueue q v);
    dequeue = (fun () -> S.Scq.try_dequeue q);
    audit = (fun () -> None);
  }

(* Same windows with the wCQ-style helping enqueue armed: a victim frozen
   inside its slow-path announcement must not block helpers, and a helper
   frozen mid-help must not block the announcer. *)
let build_scq_wcq ?tracer inj ~capacity =
  let module F = (val hook ?tracer inj) in
  let module P = (val probe ?tracer ()) in
  let module S =
    Nbq_scq.Scq.Make_wcq_injected (Nbq_primitives.Atomic_intf.Real) (P) (F)
  in
  let q = S.Scq.create ~capacity:(min capacity 2) in
  {
    enqueue = (fun v -> S.Scq.try_enqueue q v);
    dequeue = (fun () -> S.Scq.try_dequeue q);
    audit = (fun () -> None);
  }

let scq_points = [ Fault.Faa_cycle; Fault.Threshold_reset; Fault.Catchup ]
let scq = { name = "scq"; deep_points = scq_points; build = build_scq }

let scq_wcq =
  { name = "scq-wcq"; deep_points = scq_points; build = build_scq_wcq }

let deep_targets =
  [
    evequoz_llsc;
    evequoz_cas;
    evequoz_bw;
    evequoz_cas_sharded;
    evequoz_seg;
    scq;
    scq_wcq;
  ]

let generic_of_impl (impl : Registry.impl) =
  {
    name = impl.Registry.name;
    deep_points = [];
    build =
      (fun ?tracer _inj ~capacity ->
        let inst =
          match tracer with
          | None -> impl.Registry.create ~capacity
          | Some tracer ->
            impl.Registry.create_traced ~metrics:None ~tracer ~capacity
        in
        {
          enqueue = (fun v -> inst.Registry.enqueue { Registry.tag = v });
          dequeue =
            (fun () ->
              Option.map (fun p -> p.Registry.tag) (inst.Registry.dequeue ()));
          audit = (fun () -> None);
        });
  }

let targets () =
  let deep_names = List.map (fun t -> t.name) deep_targets in
  deep_targets
  @ List.filter_map
      (fun impl ->
        if List.mem impl.Registry.name deep_names then None
        else Some (generic_of_impl impl))
      Registry.concurrent

let find name' =
  List.find_opt (fun t -> t.name = name') (targets ())

(* --- One torture round --- *)

type outcome = {
  target : string;
  point : Fault.point;
  action : Injector.action;
  triggered : bool;
  survivors : int;
  min_survivor_ops : int;
  balance : int;
  conserved : bool;
  audit : Nbq_primitives.Llsc_cas.audit option;
  recovered : bool;
}

type worker = {
  ops : int Atomic.t;
  enq : int Atomic.t;
  deq : int Atomic.t;
  crashed : bool Atomic.t;
  dom : int Atomic.t;
}

let now () = Unix.gettimeofday ()

let run ?(workers = 4) ?(target_ops = 10_000) ?(capacity = 64)
    ?(trigger_after = 50) ?(timeout = 30.) ?tracer t ~point ~action =
  if workers < 2 then invalid_arg "Torture.run: workers < 2";
  if not (List.mem point (points t)) then
    invalid_arg
      (Printf.sprintf "Torture.run: %s has no %s point" t.name
         (Fault.to_string point));
  let inj = Injector.create () in
  let b = t.build ?tracer inj ~capacity in
  Option.iter Nbq_trace.Recorder.arm tracer;
  let stop = Atomic.make false in
  let ws =
    Array.init workers (fun _ ->
        {
          ops = Atomic.make 0;
          enq = Atomic.make 0;
          deq = Atomic.make 0;
          crashed = Atomic.make false;
          dom = Atomic.make (-1);
        })
  in
  Injector.arm inj ~point ~action ~after:trigger_after;
  let body i w () =
    Atomic.set w.dom (Domain.self () :> int);
    let v = ref i in
    try
      while not (Atomic.get stop) do
        (* Op_gap is harness-level: fired here, between operations, rather
           than inside the queue's protocol.  Record it before hitting the
           injector — same order the composed deep hooks guarantee. *)
        if point = Fault.Op_gap then begin
          Option.iter
            (fun tr -> Nbq_trace.Recorder.fault tr Fault.Op_gap)
            tracer;
          Injector.hit inj Fault.Op_gap
        end;
        v := !v + workers;
        if b.enqueue !v then Atomic.incr w.enq;
        Atomic.incr w.ops;
        (match b.dequeue () with
        | Some _ -> Atomic.incr w.deq
        | None -> ());
        Atomic.incr w.ops
      done
    with Injector.Crashed ->
      (* Thread death mid-protocol: no cleanup, no deregistration. *)
      Atomic.set w.crashed true
  in
  let doms = Array.mapi (fun i w -> Domain.spawn (body i w)) ws in
  let deadline = now () +. timeout in
  while (not (Injector.triggered inj)) && now () < deadline do
    Domain.cpu_relax ()
  done;
  let fired = Injector.triggered inj in
  let vict = Injector.victim inj in
  let is_victim w =
    match vict with Some id -> Atomic.get w.dom = id | None -> false
  in
  (* The progress oracle: with the victim frozen (or dead) inside the armed
     window, every other worker must still advance by [target_ops]
     operations — the lock-freedom claim made concrete. *)
  let snapshot = Array.map (fun w -> Atomic.get w.ops) ws in
  let survivors_done () =
    let ok = ref true in
    Array.iteri
      (fun i w ->
        if (not (is_victim w)) && Atomic.get w.ops - snapshot.(i) < target_ops
        then ok := false)
      ws;
    !ok
  in
  if fired then
    while (not (survivors_done ())) && now () < deadline do
      Domain.cpu_relax ()
    done;
  let min_survivor_ops =
    let m = ref max_int and any = ref false in
    Array.iteri
      (fun i w ->
        if not (is_victim w) then begin
          any := true;
          m := min !m (Atomic.get w.ops - snapshot.(i))
        end)
      ws;
    if !any then !m else 0
  in
  let survivors =
    Array.fold_left (fun n w -> if is_victim w then n else n + 1) 0 ws
  in
  Atomic.set stop true;
  Injector.release inj;
  Array.iter Domain.join doms;
  Injector.disarm inj;
  (* Conservation: everything successfully enqueued is either already
     dequeued or still drainable.  Exact after a stall (the released victim
     finishes its operation normally); a crashed thread's in-flight item
     may be silently present or lost, so the crash tolerance is +-1. *)
  let drained = ref 0 in
  let rec drain () =
    match b.dequeue () with
    | Some _ ->
        incr drained;
        drain ()
    | None -> ()
  in
  drain ();
  let total f = Array.fold_left (fun n w -> n + Atomic.get (f w)) 0 ws in
  let balance = !drained + total (fun w -> w.deq) - total (fun w -> w.enq) in
  let conserved =
    match action with
    | Injector.Stall -> balance = 0
    | Injector.Crash -> abs balance <= 1
  in
  (* Recovery: the structure must remain fully usable after the fault. *)
  let recovered =
    b.enqueue 424242
    && (match b.dequeue () with Some 424242 -> true | _ -> false)
  in
  {
    target = t.name;
    point;
    action;
    triggered = fired;
    survivors;
    min_survivor_ops;
    balance;
    conserved;
    audit = b.audit ();
    recovered;
  }
