open Effect
open Effect.Deep

(* Every scheduling point announces the shared-memory access the resuming
   task is about to perform (None for plain [yield]s): the footprint DPOR
   needs to decide which schedule reorderings can matter.  The yield fires
   *before* the access, so a paused task's next footprint is known to the
   scheduler at choice time. *)
type access = { loc : int; kind : [ `Read | `Write ] }

type _ Effect.t +=
  | Yield : access option -> unit Effect.t
  | Progress : unit Effect.t        (* a queue operation completed *)
  | Task_id : int Effect.t          (* identity for per-task sim state *)
  | Parked : bool -> unit Effect.t  (* waiting-layer metadata for liveness *)

let yield () = perform (Yield None)
let op_completed () = perform Progress
let current_task () = perform Task_id
let mark_parked b = perform (Parked b)

(* Location ids must be deterministic across re-executions (DPOR compares
   footprints recorded in one run against accesses replayed in another), so
   explorers reset this counter before each scenario build.  Locations
   allocated lazily mid-run are still sound: any state reached through a
   shared replayed prefix allocates them in the same order. *)
let loc_counter = ref 0
let reset_locations () = loc_counter := 0

let fresh_loc () =
  incr loc_counter;
  !loc_counter

module Atomic : Nbq_primitives.Atomic_intf.ATOMIC = struct
  (* Plain refs: the simulated threads are cooperatively scheduled in one
     domain, so each access is already atomic; the Yield before it makes
     it a scheduling point. *)
  type 'a t = { cell : 'a ref; loc : int }

  let make v = { cell = ref v; loc = fresh_loc () }

  let get r =
    perform (Yield (Some { loc = r.loc; kind = `Read }));
    !(r.cell)

  let set r v =
    perform (Yield (Some { loc = r.loc; kind = `Write }));
    r.cell := v

  let compare_and_set r old v =
    (* A failed CAS writes nothing, but announcing it as a write keeps the
       dependency relation static (the outcome is unknown at choice time)
       — conservative, never unsound. *)
    perform (Yield (Some { loc = r.loc; kind = `Write }));
    if !(r.cell) == old then begin
      r.cell := v;
      true
    end
    else false

  let fetch_and_add r n =
    perform (Yield (Some { loc = r.loc; kind = `Write }));
    let v = !(r.cell) in
    r.cell := v + n;
    v
end

(* --- The stepping core: one controlled execution --- *)

module Exec = struct
  type footprint =
    | Access of access  (* paused immediately before this atomic access *)
    | Pure  (* paused at a plain [yield]; the next step touches nothing *)
    | Unstarted  (* never ran; its first step runs up to its first yield,
                    performing no shared access on the way *)

  type task =
    | Pending of (unit -> unit)
    | Paused of (unit, unit) continuation * access option
    | Finished

  type t = {
    st : task array;
    parked : bool array;
    mutable progress_hit : bool;
  }

  type step_info = { performed : access option; progressed : bool }

  let start thunks =
    {
      st = Array.map (fun f -> Pending f) thunks;
      parked = Array.make (Array.length thunks) false;
      progress_hit = false;
    }

  let ntasks t = Array.length t.st

  let enabled t =
    let acc = ref [] in
    Array.iteri
      (fun i task -> match task with Finished -> () | _ -> acc := i :: !acc)
      t.st;
    List.rev !acc

  let pending t i =
    match t.st.(i) with
    | Pending _ -> Unstarted
    | Paused (_, Some a) -> Access a
    | Paused (_, None) -> Pure
    | Finished -> invalid_arg "Sim.Exec.pending: task already finished"

  let parked t i = t.parked.(i)

  (* Run task [i] until its next scheduling point (or completion). *)
  let step t i =
    let handler =
      {
        retc = (fun () -> t.st.(i) <- Finished);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Yield acc ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    t.st.(i) <- Paused (k, acc))
            | Progress ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    t.progress_hit <- true;
                    continue k ())
            | Task_id -> Some (fun (k : (a, unit) continuation) -> continue k i)
            | Parked b ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    t.parked.(i) <- b;
                    continue k ())
            | _ -> None);
      }
    in
    t.progress_hit <- false;
    let performed =
      match t.st.(i) with
      | Pending _ -> None
      | Paused (_, a) -> a
      | Finished -> invalid_arg "Sim.step: task already finished"
    in
    (match t.st.(i) with
    | Pending thunk -> match_with thunk () handler
    | Paused (k, _) ->
        (* Mark running so a re-entrant step is impossible; the handler
           attached at [match_with] time still intercepts the next Yield. *)
        t.st.(i) <- Finished;
        continue k ()
    | Finished -> invalid_arg "Sim.step: task already finished");
    { performed; progressed = t.progress_hit }
end

(* --- Legacy DFS explorer (rebuilt on Exec, behavior unchanged) --- *)

(* Execute one schedule.  [choices] pins the first decisions; beyond it the
   schedule continues non-preemptively (keep running the current task).
   Returns the status and the full decision trace (reversed): per
   scheduling point, the set of choices the explorer may branch over and
   the one taken.

   [preemption_bound] caps the number of *preemptions* — switching away
   from a still-enabled task.  Lock-free retry loops only rerun when
   another thread interferes, so with finitely many preemptions every
   schedule terminates, and the exploration is complete for all schedules
   with at most that many preemptions (the CHESS insight: almost all
   concurrency bugs need very few).  [None] = unbounded. *)
let run_once tasks ~choices ~max_steps ~preemption_bound =
  let ex = Exec.start tasks in
  let rec loop steps choices rev_trace last preemptions =
    match Exec.enabled ex with
    | [] -> (`Completed, rev_trace)
    | en ->
        if steps >= max_steps then (`Diverged, rev_trace)
        else begin
          let may_preempt =
            match preemption_bound with
            | None -> true
            | Some b -> preemptions < b
          in
          let allowed =
            match last with
            | Some l when List.mem l en -> if may_preempt then en else [ l ]
            | Some _ | None -> en
          in
          let chosen, rest =
            match choices with
            | c :: cs ->
                if List.mem c allowed then (c, cs)
                else invalid_arg "Sim: schedule disagrees with allowed set"
            | [] -> (List.hd allowed, [])
          in
          let preempted =
            match last with
            | Some l -> chosen <> l && List.mem l en
            | None -> false
          in
          ignore (Exec.step ex chosen : Exec.step_info);
          loop (steps + 1) rest
            ((allowed, chosen) :: rev_trace)
            (Some chosen)
            (if preempted then preemptions + 1 else preemptions)
        end
  in
  loop 0 choices [] None 0

type stats = {
  schedules : int;
  completed : int;
  diverged : int;
  exhaustive : bool;
}

exception Violation of { schedule : int list; message : string }

(* Next unexplored prefix after a run with decision trace [rev_trace]
   (deepest decision first): backtrack to the deepest point with an
   untried alternative. *)
let next_prefix rev_trace =
  let rec go = function
    | [] -> None
    | (en, chosen) :: shallower -> (
        match List.find_opt (fun e -> e > chosen) en with
        | Some alt -> Some (List.rev_append (List.map snd shallower) [ alt ])
        | None -> go shallower)
  in
  go rev_trace

let explore ?(max_steps = 10_000) ?(max_schedules = 1_000_000)
    ?(preemption_bound = Some 4) scenario =
  let schedules = ref 0 and completed = ref 0 and diverged = ref 0 in
  let rec go prefix =
    if !schedules >= max_schedules then false
    else begin
      incr schedules;
      reset_locations ();
      let tasks, check = scenario () in
      let status, rev_trace =
        run_once tasks ~choices:prefix ~max_steps ~preemption_bound
      in
      (match status with
      | `Completed -> (
          incr completed;
          try check ()
          with e ->
            let schedule = List.rev_map snd rev_trace in
            raise (Violation { schedule; message = Printexc.to_string e }))
      | `Diverged -> incr diverged);
      match next_prefix rev_trace with
      | None -> true
      | Some prefix' -> go prefix'
    end
  in
  let exhaustive = go [] in
  {
    schedules = !schedules;
    completed = !completed;
    diverged = !diverged;
    exhaustive;
  }

let run_sequential f =
  match_with f ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield _ -> Some (fun (k : (a, _) continuation) -> continue k ())
          | Progress -> Some (fun (k : (a, _) continuation) -> continue k ())
          | Task_id -> Some (fun (k : (a, _) continuation) -> continue k (-1))
          | Parked _ -> Some (fun (k : (a, _) continuation) -> continue k ())
          | _ -> None);
    }

(* Externally guided execution: the caller's [choose] picks the next task
   at every scheduling point, with full freedom over the enabled set (no
   preemption bound).  This is the entry point for randomized fault-schedule
   exploration: a seeded chooser gives a reproducible run, and the returned
   trace is the exact schedule for replay/shrinking. *)
let run_guided ?(max_steps = 100_000) ~choose scenario =
  reset_locations ();
  let tasks, check = scenario () in
  let ex = Exec.start tasks in
  let rec loop steps rev_trace =
    match Exec.enabled ex with
    | [] ->
        check ();
        (`Completed, List.rev rev_trace)
    | en ->
        if steps >= max_steps then (`Diverged, List.rev rev_trace)
        else begin
          let chosen = choose ~step:steps ~enabled:en in
          if not (List.mem chosen en) then
            invalid_arg "Sim.run_guided: choose picked a disabled task";
          ignore (Exec.step ex chosen : Exec.step_info);
          loop (steps + 1) (chosen :: rev_trace)
        end
  in
  loop 0 []

let run_schedule ?(max_steps = max_int) scenario schedule =
  reset_locations ();
  let tasks, check = scenario () in
  let status, _ =
    run_once tasks ~choices:schedule ~max_steps ~preemption_bound:None
  in
  (match status with `Completed -> check () | `Diverged -> ());
  status
