open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

let yield () = perform Yield

module Atomic : Nbq_primitives.Atomic_intf.ATOMIC = struct
  (* Plain refs: the simulated threads are cooperatively scheduled in one
     domain, so each access is already atomic; the Yield before it makes
     it a scheduling point. *)
  type 'a t = 'a ref

  let make v = ref v

  let get r =
    yield ();
    !r

  let set r v =
    yield ();
    r := v

  let compare_and_set r old v =
    yield ();
    (* Same semantics as Stdlib.Atomic: physical comparison (which is value
       comparison for immediates). *)
    if !r == old then begin
      r := v;
      true
    end
    else false

  let fetch_and_add r n =
    yield ();
    let v = !r in
    r := v + n;
    v
end

(* --- One controlled execution --- *)

type task =
  | Pending of (unit -> unit)
  | Paused of (unit, unit) continuation
  | Finished

(* Run task [i] until its next scheduling point (or completion). *)
let step st i =
  let handler =
    {
      retc = (fun () -> st.(i) <- Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) continuation) -> st.(i) <- Paused k)
          | _ -> None);
    }
  in
  match st.(i) with
  | Pending thunk -> match_with thunk () handler
  | Paused k ->
      (* Mark running so a re-entrant step is impossible; the handler
         attached at [match_with] time still intercepts the next Yield. *)
      st.(i) <- Finished;
      continue k ()
  | Finished -> invalid_arg "Sim.step: task already finished"

let enabled st =
  let acc = ref [] in
  Array.iteri (fun i t -> if t <> Finished then acc := i :: !acc) st;
  List.rev !acc

(* Execute one schedule.  [choices] pins the first decisions; beyond it the
   schedule continues non-preemptively (keep running the current task).
   Returns the status and the full decision trace (reversed): per
   scheduling point, the set of choices the explorer may branch over and
   the one taken.

   [preemption_bound] caps the number of *preemptions* — switching away
   from a still-enabled task.  Lock-free retry loops only rerun when
   another thread interferes, so with finitely many preemptions every
   schedule terminates, and the exploration is complete for all schedules
   with at most that many preemptions (the CHESS insight: almost all
   concurrency bugs need very few).  [None] = unbounded. *)
let run_once tasks ~choices ~max_steps ~preemption_bound =
  let st = Array.map (fun f -> Pending f) tasks in
  let rec loop steps choices rev_trace last preemptions =
    match enabled st with
    | [] -> (`Completed, rev_trace)
    | en ->
        if steps >= max_steps then (`Diverged, rev_trace)
        else begin
          let may_preempt =
            match preemption_bound with
            | None -> true
            | Some b -> preemptions < b
          in
          let allowed =
            match last with
            | Some l when List.mem l en ->
                if may_preempt then en else [ l ]
            | Some _ | None -> en
          in
          let chosen, rest =
            match choices with
            | c :: cs ->
                if List.mem c allowed then (c, cs)
                else invalid_arg "Sim: schedule disagrees with allowed set"
            | [] -> (List.hd allowed, [])
          in
          let preempted =
            match last with
            | Some l -> chosen <> l && List.mem l en
            | None -> false
          in
          step st chosen;
          loop (steps + 1) rest
            ((allowed, chosen) :: rev_trace)
            (Some chosen)
            (if preempted then preemptions + 1 else preemptions)
        end
  in
  loop 0 choices [] None 0

type stats = {
  schedules : int;
  completed : int;
  diverged : int;
  exhaustive : bool;
}

exception Violation of { schedule : int list; message : string }

(* Next unexplored prefix after a run with decision trace [rev_trace]
   (deepest decision first): backtrack to the deepest point with an
   untried alternative. *)
let next_prefix rev_trace =
  let rec go = function
    | [] -> None
    | (en, chosen) :: shallower -> (
        match List.find_opt (fun e -> e > chosen) en with
        | Some alt ->
            Some (List.rev_append (List.map snd shallower) [ alt ])
        | None -> go shallower)
  in
  go rev_trace

let explore ?(max_steps = 10_000) ?(max_schedules = 1_000_000)
    ?(preemption_bound = Some 4) scenario =
  let schedules = ref 0 and completed = ref 0 and diverged = ref 0 in
  let rec go prefix =
    if !schedules >= max_schedules then false
    else begin
      incr schedules;
      let tasks, check = scenario () in
      let status, rev_trace =
        run_once tasks ~choices:prefix ~max_steps ~preemption_bound
      in
      (match status with
      | `Completed -> (
          incr completed;
          try check ()
          with e ->
            let schedule = List.rev_map snd rev_trace in
            raise
              (Violation { schedule; message = Printexc.to_string e }))
      | `Diverged -> incr diverged);
      match next_prefix rev_trace with
      | None -> true
      | Some prefix' -> go prefix'
    end
  in
  let exhaustive = go [] in
  {
    schedules = !schedules;
    completed = !completed;
    diverged = !diverged;
    exhaustive;
  }

let run_sequential f =
  match_with f ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield -> Some (fun (k : (a, _) continuation) -> continue k ())
          | _ -> None);
    }

(* Externally guided execution: the caller's [choose] picks the next task
   at every scheduling point, with full freedom over the enabled set (no
   preemption bound).  This is the entry point for randomized fault-schedule
   exploration: a seeded chooser gives a reproducible run, and the returned
   trace is the exact schedule for replay/shrinking. *)
let run_guided ?(max_steps = 100_000) ~choose scenario =
  let tasks, check = scenario () in
  let st = Array.map (fun f -> Pending f) tasks in
  let rec loop steps rev_trace =
    match enabled st with
    | [] ->
        check ();
        (`Completed, List.rev rev_trace)
    | en ->
        if steps >= max_steps then (`Diverged, List.rev rev_trace)
        else begin
          let chosen = choose ~step:steps ~enabled:en in
          if not (List.mem chosen en) then
            invalid_arg "Sim.run_guided: choose picked a disabled task";
          step st chosen;
          loop (steps + 1) (chosen :: rev_trace)
        end
  in
  loop 0 []

let run_schedule scenario schedule =
  let tasks, check = scenario () in
  let status, _ =
    run_once tasks ~choices:schedule ~max_steps:max_int
      ~preemption_bound:None
  in
  (match status with `Completed -> check () | `Diverged -> ());
  status
