(** NBQ-FAULT-REPRO [v2-mc] lines: the model checker's counterexample
    format, consumable by [bin/torture.exe --replay] and, in code, by
    {!Dpor.replay} / {!Sim.run_schedule} via {!Scenarios.find}. *)

type t = {
  algorithm : string;
  scenario : string;  (** together with [algorithm]: the {!Scenarios.find} key *)
  kind : [ `Safety | `Liveness ];
  schedule : int list;  (** per-step task choices; [[]] prints as ["-"] *)
}

val of_violation :
  algorithm:string -> scenario:string -> message:string -> int list -> t
(** [kind] is derived from the violation message
    ({!Props.is_liveness_message}). *)

val to_line : t -> string
(** One line: [NBQ-FAULT-REPRO v2-mc algorithm=… scenario=… kind=…
    schedule=0,0,1,…]. *)

val parse : string -> t option
(** Inverse of {!to_line}; tolerant of surrounding text (a pasted log
    line) and unknown extra [key=value] fields.  [None] when the line is
    not a [v2-mc] line or a required field is missing or malformed. *)
