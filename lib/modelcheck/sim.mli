(** Stateless model checking of lock-free algorithms (in the style of
    dscheck / CHESS).

    The algorithms in this repository are functors over
    {!Nbq_primitives.Atomic_intf.ATOMIC}.  {!Atomic} is an instrumented
    instantiation in which every atomic access is a {e scheduling point}:
    it performs an effect that suspends the simulated thread and returns
    control to the explorer.  {!explore} then enumerates — by depth-first
    search over the choice tree, re-executing the scenario once per
    schedule — {b every} interleaving of the scenario's threads, invoking a
    user check after each completed execution.

    Because the simulated threads run cooperatively inside one domain,
    plain [ref]s implement the atomics and the exploration is fully
    deterministic and reproducible.

    Retry loops of lock-free algorithms can produce {e unboundedly long}
    schedules under an adversarial scheduler (e.g. two threads endlessly
    stealing each other's LL reservations in the paper's Algorithm 2 — a
    livelock that is measure-zero in wall-clock time but real in the
    schedule tree).  Schedules longer than [max_steps] are cut off and
    counted as {e diverged} rather than explored further; the checker
    therefore verifies every {e terminating} schedule and reports how many
    divergent branches were pruned.  {!Dpor} refines both sides of this
    picture: partial-order reduction over the access footprints exposed by
    {!Exec}, and a fairness probe that classifies diverged branches.

    {!explore} here remains the plain unreduced DFS — the baseline the
    DPOR engine is measured against, and the engine behind the original
    matrix tests. *)

type access = { loc : int; kind : [ `Read | `Write ] }
(** The shared-memory footprint of one scheduling point: which atomic
    location the resuming task is about to touch, and whether it may write
    it.  CAS and fetch-and-add announce themselves as writes even when
    they end up failing — conservative for DPOR, never unsound. *)

module Atomic : Nbq_primitives.Atomic_intf.ATOMIC
(** Instrumented atomics.  Only meaningful inside a thread run by
    {!explore}; calling them elsewhere raises [Effect.Unhandled]. *)

val yield : unit -> unit
(** An explicit scheduling point, for modelling non-atomic interleaving
    inside scenario threads. *)

val op_completed : unit -> unit
(** Scenario threads call this when a queue operation completes.  It is
    {e not} a scheduling point (the handler resumes immediately); it feeds
    the liveness checker's notion of progress: a diverged branch in which
    no thread ever reaches [op_completed] again is a livelock witness. *)

val current_task : unit -> int
(** Index of the simulated task performing the call ([-1] under
    {!run_sequential}).  Lets simulated per-thread state (e.g. the parker
    of the simulated wait layer) be keyed without domains. *)

val mark_parked : bool -> unit
(** Waiting-layer metadata: the calling task declares itself parked (or
    unparked).  Not a scheduling point.  Used by divergence classification
    to tell a lost wakeup (parked forever) from a plain spin. *)

val reset_locations : unit -> unit
(** Reset the global location-id counter.  Explorers call this before each
    scenario build so location ids are deterministic across the
    re-executions DPOR compares. *)

(** The stepping core: one controlled execution of a task array, exposing
    exactly what a scheduler needs — who is runnable, what each runnable
    task will touch next, and single-stepping.  {!explore}, {!run_guided}
    and {!Dpor} are all built on it. *)
module Exec : sig
  type footprint =
    | Access of access
        (** paused immediately before this atomic access *)
    | Pure  (** paused at a plain {!yield}; the next step touches nothing *)
    | Unstarted
        (** never ran; its first step runs up to its first scheduling
            point, performing no shared access on the way *)

  type t

  type step_info = {
    performed : access option;
        (** the access the step performed on resumption, if any *)
    progressed : bool;  (** did the step pass an {!op_completed}? *)
  }

  val start : (unit -> unit) array -> t
  val ntasks : t -> int

  val enabled : t -> int list
  (** Unfinished task indices, ascending. *)

  val pending : t -> int -> footprint
  (** What the task will do when next scheduled.  The yield fires before
      the access, so this is known without running it. *)

  val parked : t -> int -> bool
  (** Whether the task last declared itself parked via {!mark_parked}. *)

  val step : t -> int -> step_info
  (** Run one task until its next scheduling point (or completion).
      Raises [Invalid_argument] on a finished task. *)
end

type stats = {
  schedules : int;      (** schedules executed (completed + diverged) *)
  completed : int;      (** schedules in which every thread finished *)
  diverged : int;       (** schedules cut off at [max_steps] *)
  exhaustive : bool;    (** whether the whole tree was explored within
                            [max_schedules] *)
}

exception Violation of { schedule : int list; message : string }
(** Raised by {!explore} when the user check fails after some schedule;
    [schedule] is the choice sequence that reproduces it. *)

val explore :
  ?max_steps:int ->
  ?max_schedules:int ->
  ?preemption_bound:int option ->
  (unit -> (unit -> unit) array * (unit -> unit)) ->
  stats
(** [explore scenario] enumerates interleavings.  [scenario ()] must build
    {e fresh} state and return [(threads, check)]: the simulated threads to
    interleave and a check run after every completed schedule (raise to
    signal a violation — it is re-raised as {!Violation} with the
    reproducing schedule).

    [preemption_bound] (default [Some 4]) caps context switches away from a
    still-runnable thread, CHESS-style: coverage is then complete for all
    schedules with at most that many preemptions, and — because a lock-free
    retry loop only re-runs when another thread interferes — every schedule
    terminates, so nothing diverges.  [None] explores the unbounded tree
    (then livelock branches are cut at [max_steps] and counted in
    [diverged]).

    [max_steps] (default 10_000) bounds one schedule's length;
    [max_schedules] (default 1_000_000) bounds the exploration. *)

val run_guided :
  ?max_steps:int ->
  choose:(step:int -> enabled:int list -> int) ->
  (unit -> (unit -> unit) array * (unit -> unit)) ->
  [ `Completed | `Diverged ] * int list
(** [run_guided ~choose scenario] executes one schedule driven by an
    external chooser: at every scheduling point [choose ~step ~enabled] must
    return one of the [enabled] task indices (anything else raises
    [Invalid_argument]).  No preemption bound — the chooser has full
    adversarial freedom.  Runs the scenario check on completion (its
    exceptions propagate) and returns the status together with the exact
    task trace taken, suitable for {!run_schedule}-style replay or
    shrinking.  [max_steps] (default 100_000) cuts off divergent runs.
    The entry point for randomized fault-schedule exploration
    ([Nbq_fault.Explore]). *)

val run_schedule :
  ?max_steps:int ->
  (unit -> (unit -> unit) array * (unit -> unit)) -> int list ->
  [ `Completed | `Diverged ]
(** Re-execute one specific schedule (e.g. a {!Violation.schedule}) for
    debugging; runs the check if the schedule completes.  Choices beyond
    the list fall back to the lowest enabled thread.  [max_steps] (default
    unbounded) cuts the run off as [`Diverged] — pass the schedule length
    to replay a liveness counterexample without running its infinite
    suffix. *)

val run_sequential : (unit -> 'a) -> 'a
(** Run code that uses {!Atomic} outside the explorer, ignoring the
    scheduling points (each Yield resumes immediately).  For building
    scenario pre-state, e.g. pre-filling a simulated queue. *)
