(* Dynamic partial-order reduction (Flanagan–Godefroid persistent sets plus
   sleep sets) over Sim's choice tree.

   Two schedules that differ only in the order of *independent* steps —
   steps touching different atomic locations, or both merely reading the
   same one — reach the same state, so exploring one of each Mazurkiewicz
   trace suffices.  The engine runs schedules by re-execution (Sim state
   cannot be snapshotted), keeping a frame per depth of the current path:

   - each executed step records the access it performed (Sim yields
     *before* the access, so a paused task's next footprint is also known
     without running it);
   - after each run, every pair of steps (j < i) by different threads with
     dependent accesses adds thread i to the *backtrack set* of the frame
     where j was taken — the persistent-set rule: the alternative order
     must be explored from that state;
   - *sleep sets* prune the other side: a thread already explored from a
     state stays asleep in sibling branches until some dependent step wakes
     it, so the same commutation is never explored twice.

   Dependence is judged conservatively: CAS/fetch-and-add announce
   themselves as writes even when they fail, and no happens-before vector
   clocks are kept (every dependent pair backtracks, not just racing
   reversible ones).  That costs some extra schedules but is sound, and on
   this repository's scenarios still cuts the tree by an order of
   magnitude.

   A task that never started is independent of everything: its first step
   only runs up to its first scheduling point, touching no shared state.

   Divergence: a run cut at max_steps is continued under a fair round-robin
   scheduler (the probe) and classified per Props.divergence; the scenario's
   claimed progress guarantee decides whether that is a violation. *)

type instance = {
  tasks : (unit -> unit) array;
  check : unit -> unit;  (* completion check; raise = safety violation *)
  invariant : (unit -> unit) option;  (* checked after every step *)
}

type stats = {
  schedules : int;
  completed : int;  (* ran to quiescence (including via the fair probe) *)
  resolved : int;  (* subset of completed: cut at max_steps, finished fair *)
  benign : int;
  livelock : int;
  stuck : int;
  pruned : int;  (* branches abandoned because every runnable task slept *)
  exhaustive : bool;
}

let diverged s = s.benign + s.livelock + s.stuck

(* --- dependence ---------------------------------------------------------- *)

let dep_access (a : Sim.access) (b : Sim.access) =
  a.loc = b.loc && (a.kind = `Write || b.kind = `Write)

let dep_foot (f : Sim.Exec.footprint) (g : Sim.Exec.footprint) =
  match (f, g) with
  | Sim.Exec.Access a, Sim.Exec.Access b -> dep_access a b
  | _ -> false

(* --- the fair probe ------------------------------------------------------ *)

(* Continue a cut execution round-robin and watch for progress.  [window]
   steps without an op completing classifies the branch; a branch that
   keeps completing ops is benign and abandoned at [window * 16] total
   steps (it would re-fill any window forever). *)
let probe ex ~window =
  let hard_cap = window * 16 in
  let since = ref 0 and total = ref 0 and progressed_once = ref false in
  let writers = ref [] in
  let cursor = ref 0 in
  let classify en =
    if !writers <> [] then
      Props.Livelock_witness { writers = List.sort compare !writers }
    else begin
      let parked, spinning = List.partition (Sim.Exec.parked ex) en in
      Props.Stuck { spinning; parked }
    end
  in
  let rec loop () =
    match Sim.Exec.enabled ex with
    | [] -> `Quiesced
    | en ->
        if !since >= window then `Diverged (classify en)
        else if !total >= hard_cap then
          `Diverged (if !progressed_once then Props.Benign_retry else classify en)
        else begin
          let t =
            match List.find_opt (fun i -> i >= !cursor) en with
            | Some t -> t
            | None -> List.hd en
          in
          cursor := t + 1;
          let info = Sim.Exec.step ex t in
          incr total;
          if info.progressed then begin
            since := 0;
            writers := [];
            progressed_once := true
          end
          else incr since;
          (match info.performed with
          | Some { Sim.kind = `Write; _ } ->
              if not (List.mem t !writers) then writers := t :: !writers
          | _ -> ());
          loop ()
        end
  in
  loop ()

(* --- the explorer -------------------------------------------------------- *)

type frame = {
  enabled : int list;  (* runnable tasks at this state *)
  mutable chosen : int;  (* child currently being explored *)
  mutable foot : Sim.Exec.footprint;  (* chosen's footprint here *)
  mutable access : Sim.access option;  (* what chosen's step performed *)
  mutable backtrack : int list;  (* persistent set: children to explore *)
  mutable done_ : int list;  (* children fully explored *)
  sleep_entry : (int * Sim.Exec.footprint) list;  (* sleep set on entry *)
  mutable explored : (int * Sim.Exec.footprint) list;
      (* finished children with their footprints — they join siblings'
         sleep sets until a dependent step wakes them *)
  mutable divergent_below : bool;
      (* some schedule under the current child was cut at max_steps while
         starving a task entirely: the sleep-set coverage argument (every
         task eventually runs) does not hold for that subtree, so its
         child must NOT suppress siblings *)
}

exception Internal_violation of { depth : int; message : string }

let explore ?(dpor = true) ?(preemption_bound = None) ?(max_steps = 150)
    ?(max_schedules = 2_000_000) ?(probe_window = 200) ~progress build =
  let stack : frame option array = Array.make (max_steps + 1) None in
  let depth = ref 0 in
  (* Replay state: frames 0..replay_to-1 are a fixed prefix; [forced]
     overrides the choice at depth replay_to (the frame there is reused —
     its backtrack/done/explored knowledge persists across re-executions). *)
  let replay_to = ref 0 in
  let forced = ref None in
  let frame d = Option.get stack.(d) in
  let schedule_to d = List.init d (fun i -> (frame i).chosen) in
  let schedules = ref 0
  and completed = ref 0
  and resolved = ref 0
  and benign = ref 0
  and livelock = ref 0
  and stuck = ref 0
  and pruned = ref 0 in

  let run_one () =
    Sim.reset_locations ();
    let { tasks; check; invariant } = build () in
    let ex = Sim.Exec.start tasks in
    let sleep = ref [] in
    let last = ref (-1) in
    let preemptions = ref 0 in
    let check_invariant d =
      match invariant with
      | None -> ()
      | Some f -> (
          try f ()
          with e ->
            raise
              (Internal_violation
                 { depth = d; message = "invariant: " ^ Printexc.to_string e }))
    in
    let rec loop d =
      match Sim.Exec.enabled ex with
      | [] -> `Completed
      | _ when d >= max_steps -> `Cutoff
      | en -> (
          let pick_free () =
            let sleeping = List.map fst !sleep in
            let allowed =
              if dpor then List.filter (fun t -> not (List.mem t sleeping)) en
              else
                match preemption_bound with
                | Some b
                  when !last >= 0 && List.mem !last en && !preemptions >= b ->
                    [ !last ]
                | _ -> en
            in
            match allowed with
            | [] -> None  (* every runnable task sleeps: covered elsewhere *)
            | _ ->
                let chosen =
                  if List.mem !last allowed then !last else List.hd allowed
                in
                let f =
                  {
                    enabled = en;
                    chosen;
                    foot = Sim.Exec.Pure;
                    access = None;
                    (* In DPOR mode the backtrack set starts with just the
                       chosen child and grows by the race rule; in plain
                       DFS mode every allowed child must be explored. *)
                    backtrack = (if dpor then [ chosen ] else allowed);
                    done_ = [];
                    sleep_entry = !sleep;
                    explored = [];
                    divergent_below = false;
                  }
                in
                stack.(d) <- Some f;
                depth := d + 1;
                Some f
          in
          let f =
            if d < !replay_to then begin
              let f = frame d in
              if f.enabled <> en then
                invalid_arg "Dpor: scenario is not deterministic";
              Some f
            end
            else if d = !replay_to && !forced <> None then begin
              let f = frame d in
              let p = Option.get !forced in
              forced := None;
              if not (List.mem p en) then
                invalid_arg "Dpor: scenario is not deterministic";
              f.chosen <- p;
              depth := d + 1;
              Some f
            end
            else pick_free ()
          in
          match f with
          | None -> `Pruned
          | Some f ->
              let chosen = f.chosen in
              f.foot <- Sim.Exec.pending ex chosen;
              let info = Sim.Exec.step ex chosen in
              f.access <- info.performed;
              check_invariant (d + 1);
              (* Sleep set for the child state: everything asleep here or
                 already explored from here stays asleep unless the chosen
                 step is dependent on it. *)
              if dpor then
                sleep :=
                  List.filter
                    (fun (_, fq) -> not (dep_foot fq f.foot))
                    (f.sleep_entry @ f.explored);
              if !last >= 0 && chosen <> !last && List.mem !last en then
                incr preemptions;
              last := chosen;
              loop (d + 1))
    in
    let outcome = loop 0 in
    incr schedules;
    match outcome with
    | `Completed -> (
        incr completed;
        try check ()
        with e ->
          raise
            (Internal_violation
               { depth = !depth; message = Printexc.to_string e }))
    | `Pruned -> incr pruned
    | `Cutoff -> (
        (* A task that never stepped inside the bounded horizon left no
           accesses for the race rule to find — its interactions with the
           divergent prefix are invisible (a spinning task starves
           everything behind it under the keep-last heuristic), and the
           sleep-set argument that would justify pruning its orderings
           only covers traces where every task eventually runs.  Reopen
           the branch conservatively: try each starved task at every state
           along the cut path, and stop this path's children from entering
           siblings' sleep sets (divergent_below).  As soon as one of the
           reopened runs shows the starved task's accesses, the ordinary
           race rule takes over.  Cutoffs that starved nobody need neither
           repair: every task's accesses are on the path for the race rule,
           and the probe has already classified the tail. *)
        if dpor && !depth > 0 then begin
          let stepped = List.init !depth (fun i -> (frame i).chosen) in
          let starved =
            List.filter
              (fun t -> not (List.mem t stepped))
              (frame 0).enabled
          in
          if starved <> [] then
            for d = 0 to !depth - 1 do
              let f = frame d in
              List.iter
                (fun t ->
                  if
                    List.mem t f.enabled
                    && (not (List.mem t f.backtrack))
                    && not (List.mem t f.done_)
                  then f.backtrack <- t :: f.backtrack)
                starved;
              f.divergent_below <- true
            done
        end;
        match probe ex ~window:probe_window with
        | `Quiesced -> (
            incr completed;
            incr resolved;
            try check ()
            with e ->
              raise
                (Internal_violation
                   {
                     depth = !depth;
                     message =
                       "(completed under fair continuation) "
                       ^ Printexc.to_string e;
                   }))
        | `Diverged dv -> (
            (match dv with
            | Props.Benign_retry -> incr benign
            | Props.Livelock_witness _ -> incr livelock
            | Props.Stuck _ -> incr stuck);
            match Props.violation_of progress dv with
            | Some message ->
                raise (Internal_violation { depth = !depth; message })
            | None -> ()))
  in

  (* Persistent-set rule, applied to the whole just-run path: for each pair
     of dependent steps by different threads, the later thread must also be
     tried where the earlier step was taken. *)
  let add_backtracks () =
    for i = 1 to !depth - 1 do
      let fi = frame i in
      match fi.access with
      | None -> ()
      | Some ai ->
          let ti = fi.chosen in
          for j = 0 to i - 1 do
            let fj = frame j in
            if fj.chosen <> ti then
              match fj.access with
              | Some aj when dep_access aj ai ->
                  if
                    (not (List.mem ti fj.backtrack))
                    && not (List.mem ti fj.done_)
                  then fj.backtrack <- ti :: fj.backtrack
              | _ -> ()
          done
    done
  in

  (* Pop finished subtrees; stop at the deepest frame with an unexplored
     backtrack candidate that is not asleep there. *)
  let rec next () =
    if !depth = 0 then `Done
    else begin
      let d = !depth - 1 in
      let f = frame d in
      f.done_ <- f.chosen :: f.done_;
      if not f.divergent_below then
        f.explored <- (f.chosen, f.foot) :: f.explored;
      let sleeping = List.map fst f.sleep_entry in
      let cands =
        List.filter
          (fun p -> (not (List.mem p f.done_)) && not (List.mem p sleeping))
          f.backtrack
      in
      match cands with
      | [] ->
          stack.(d) <- None;
          depth := d;
          next ()
      | p :: ps ->
          forced := Some (List.fold_left min p ps);
          replay_to := d;
          (* The new child's subtree starts clean; divergence under it will
             re-mark this frame before it is next popped. *)
          f.divergent_below <- false;
          `More
    end
  in

  let exhaustive = ref true in
  (try
     let continue_ = ref true in
     while !continue_ do
       if !schedules >= max_schedules then begin
         exhaustive := false;
         continue_ := false
       end
       else begin
         run_one ();
         if dpor then add_backtracks ();
         match next () with `Done -> continue_ := false | `More -> ()
       end
     done
   with Internal_violation { depth = d; message } ->
     raise (Sim.Violation { schedule = schedule_to d; message }));
  {
    schedules = !schedules;
    completed = !completed;
    resolved = !resolved;
    benign = !benign;
    livelock = !livelock;
    stuck = !stuck;
    pruned = !pruned;
    exhaustive = !exhaustive;
  }

(* --- replay -------------------------------------------------------------- *)

type replay_outcome = {
  status : [ `Completed | `Fair_completed | `Diverged of Props.divergence ];
  violation : string option;
}

(* Deterministically re-execute one schedule (a Violation.schedule) and
   re-derive its verdict: follow the choices, then — if the schedule ends
   with tasks still runnable — hand the state to the fair probe exactly as
   the explorer would have.  Never raises on a mismatched verdict; the
   caller (tests, torture --replay) compares. *)
let replay ?(probe_window = 200) ~progress build schedule =
  Sim.reset_locations ();
  let { tasks; check; invariant } = build () in
  let ex = Sim.Exec.start tasks in
  let exception Stop of replay_outcome in
  let finish status violation = raise (Stop { status; violation }) in
  try
    let rec follow = function
      | [] -> ()
      | c :: rest ->
          (match Sim.Exec.enabled ex with
          | [] -> invalid_arg "Dpor.replay: schedule longer than execution"
          | en when not (List.mem c en) ->
              invalid_arg "Dpor.replay: schedule disagrees with scenario"
          | _ -> ());
          ignore (Sim.Exec.step ex c : Sim.Exec.step_info);
          (match invariant with
          | Some f -> (
              try f ()
              with e ->
                finish `Completed
                  (Some ("invariant: " ^ Printexc.to_string e)))
          | None -> ());
          follow rest
    in
    follow schedule;
    match Sim.Exec.enabled ex with
    | [] ->
        let violation =
          try
            check ();
            None
          with e -> Some (Printexc.to_string e)
        in
        { status = `Completed; violation }
    | _ -> (
        match probe ex ~window:probe_window with
        | `Quiesced ->
            let violation =
              try
                check ();
                None
              with e ->
                Some
                  ("(completed under fair continuation) "
                  ^ Printexc.to_string e)
            in
            { status = `Fair_completed; violation }
        | `Diverged dv ->
            { status = `Diverged dv; violation = Props.violation_of progress dv })
  with Stop o -> o
