(* The wait layer under simulation: the *identical* eventcount protocol
   (Nbq_wait.Eventcount_core), instantiated over Sim's instrumented atomics
   and a cooperative parker, so every park/wake interleaving becomes a
   branch of the explored schedule tree.

   The simulated parker is deliberately *weaker* than the production one:
   it has no 1 ms ticker backstop — park is a pure spin on the notify flag,
   each read of which is a scheduling point.  The production Parker's tick
   would eventually rescue any stranded waiter, masking exactly the class
   of bug (a lost wakeup in the Dekker handshake) this simulation exists to
   rule out.  What the checker proves is therefore the stronger statement:
   the protocol never NEEDS the backstop — on every schedule, a committed
   waiter is either signalled or observes the epoch change.

   A spinning parked task is still an enabled task to the explorer; the
   fairness probe distinguishes a parked spinner (marked via
   Sim.mark_parked) from a protocol-level spinner, so a stranded waiter
   classifies as Props.Stuck { parked } — the lost-wakeup verdict.

   The functor is generative: each application owns a fresh task->parker
   table, so one scenario's parker locations cannot leak into another's. *)

module Make () = struct
  module Env = struct
    module Atomic = Sim.Atomic

    module Parker = struct
      type t = { notified : bool Sim.Atomic.t }

      (* One parker per simulated task, keyed by task index the way the
         production layer keys per-domain parkers by domain. *)
      let table : (int, t) Hashtbl.t = Hashtbl.create 8

      let current () =
        let id = Sim.current_task () in
        match Hashtbl.find_opt table id with
        | Some p -> p
        | None ->
            let p = { notified = Sim.Atomic.make false } in
            Hashtbl.add table id p;
            p

      let park p =
        Sim.mark_parked true;
        let rec wait () =
          if Sim.Atomic.get p.notified then begin
            Sim.Atomic.set p.notified false;
            Sim.mark_parked false;
            `Notified
          end
          else wait ()
        in
        wait ()

      let notify p = Sim.Atomic.set p.notified true
      let drain p = Sim.Atomic.set p.notified false
    end

    let now () = 0.
    let default_spin = 0
    (* No pre-park spin: under simulation the spin phase only multiplies
       schedule states without reaching different protocol states. *)
  end

  module EC = Nbq_wait.Eventcount_core.Make (Env)
end
