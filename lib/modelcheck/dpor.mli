(** Dynamic partial-order reduction over {!Sim}'s choice tree.

    Two schedules that differ only in the order of independent steps (steps
    touching different atomic locations, or both merely reading the same
    one) reach the same state; the engine explores one representative per
    such equivalence class using Flanagan–Godefroid persistent sets grown
    by a dynamic race rule, plus sleep sets to prune the already-covered
    side.  Dependence is judged conservatively from the access footprints
    {!Sim.Exec} exposes (CAS counts as a write even when it fails) — never
    unsound, and exhaustive whenever the run reports [exhaustive = true]
    with nothing diverged.

    Schedules cut at [max_steps] are continued under a fair round-robin
    scheduler and classified per {!Props.divergence}; a classification that
    contradicts the scenario's claimed {!Props.progress} raises
    {!Sim.Violation} with the reproducing schedule, exactly like a safety
    failure. *)

type instance = {
  tasks : (unit -> unit) array;
  check : unit -> unit;
      (** completion check — raise to signal a safety violation *)
  invariant : (unit -> unit) option;
      (** checked after {e every} step of every explored schedule *)
}

type stats = {
  schedules : int;
  completed : int;
      (** ran to quiescence, including via the fair continuation *)
  resolved : int;
      (** subset of [completed]: cut at [max_steps] but quiesced fair *)
  benign : int;  (** diverged, still completing ops under fairness *)
  livelock : int;  (** diverged with writes but no completions *)
  stuck : int;  (** diverged with neither writes nor completions *)
  pruned : int;  (** branches whose every runnable task slept *)
  exhaustive : bool;
}

val diverged : stats -> int
(** [benign + livelock + stuck]. *)

val explore :
  ?dpor:bool ->
  ?preemption_bound:int option ->
  ?max_steps:int ->
  ?max_schedules:int ->
  ?probe_window:int ->
  progress:Props.progress ->
  (unit -> instance) ->
  stats
(** Explore every Mazurkiewicz trace of the instance's threads.  [dpor]
    (default true) enables the reduction; with [~dpor:false] the engine
    degenerates to unreduced DFS — the baseline reduction factors are
    measured against — and only then does [preemption_bound] (default
    [None]) apply, CHESS-style.  [max_steps] (default 150) cuts a single
    schedule; [probe_window] (default 200) is how many progress-free fair
    steps classify a cut branch as diverged.  Raises {!Sim.Violation} on
    any safety or liveness violation. *)

type replay_outcome = {
  status : [ `Completed | `Fair_completed | `Diverged of Props.divergence ];
  violation : string option;
}

val replay :
  ?probe_window:int ->
  progress:Props.progress ->
  (unit -> instance) ->
  int list ->
  replay_outcome
(** Deterministically re-execute one schedule (e.g. a
    {!Sim.Violation}[.schedule]) and re-derive its verdict, fair probe
    included.  Never raises on a reproduced violation — it is returned —
    but raises [Invalid_argument] if the schedule does not match the
    scenario. *)
