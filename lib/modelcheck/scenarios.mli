(** Ready-made model-checking scenarios for the repository's queues.

    A scenario interleaves a few threads' worth of queue operations on a
    simulated-atomics instantiation of an algorithm and checks every
    completed schedule's history for linearizability against the bounded
    FIFO specification.  Used by the test suite and by
    [bin/modelcheck_run.exe].

    Two surfaces:
    - the legacy {!scenario} builder ({!build}), what {!Sim.explore}
      consumes — a task array plus one end-of-schedule check;
    - the {!spec} catalog ({!specs}), what the DPOR pass
      ({!Dpor.explore}) consumes — the same scenarios as data, each with
      a stable slug for NBQ-FAULT-REPRO lines, its algorithm's declared
      progress class for the liveness layer, and strengthened checks
      (conservation by drain, tag-registry hygiene, per-step index
      invariants) on top of linearizability. *)

type op =
  | Enq of int
  | Deq
  | Peek
  | Enq_batch of int list  (** one batch-run enqueue call (Algorithm 2) *)
  | Deq_batch of int  (** one batch-run dequeue call (Algorithm 2) *)

type scenario = unit -> (unit -> unit) array * (unit -> unit)
(** What {!Sim.explore} consumes. *)

val build :
  algorithm:string ->
  capacity:int ->
  prefill:int list ->
  op list list ->
  scenario
(** [build ~algorithm ~capacity ~prefill threads] — [algorithm] is one of
    {!algorithms}; [threads] is one op-list per simulated thread; the
    prefilled items are folded into the checked history as a prologue.
    Raises [Invalid_argument] on an unknown algorithm name. *)

val algorithms : string list
(** The functorized implementations that can run on simulated atomics:
    both of the paper's algorithms, the Blelloch–Wei constant-time backend
    ([evequoz-bw]), the segmented unbounded queue ([evequoz-seg], for
    which [capacity] means the {e segment} capacity and the FIFO spec is
    unbounded), plus Shann, Tsigas–Zhang, Michael–Scott, Herlihy–Wing and
    Ladan-Mozes–Shavit. *)

val standard_matrix : (string * int * int list * op list list) list
(** The (name, capacity, prefill, threads) tuples every algorithm is
    checked against: concurrent enqueues, enqueue/dequeue races on empty
    and non-empty queues, competing dequeues, the full boundary, and a
    two-ops-each crossing. *)

(** {1 The spec catalog (DPOR pass)} *)

type spec = {
  algorithm : string;
  scenario : string;
      (** slug of the scenario name — stable across sessions; together
          with [algorithm] this is the NBQ-FAULT-REPRO replay key *)
  descr : string;
  progress : Props.progress;  (** the algorithm's declared guarantee *)
  expect : [ `Pass | `Violation ];
      (** [`Violation] marks the seeded-bug scenarios that exist to prove
          the checker convicts — the runner fails if they {e pass} *)
  build_instance : unit -> Dpor.instance;
}

val specs : unit -> spec list
(** The full catalog: {!standard_matrix} × {!algorithms} with
    strengthened checks, plus the post-paper scenarios (PR 3's sharded
    facade steal-sweep race, the batch-run commit and drain races on both
    the tag-protocol and Blelloch–Wei cells, the segmented queue's
    grow-during-drain race), the wait-layer scenarios (the production
    eventcount under simulation: park/wake with no lost wakeup), and the
    seeded-bug scenarios ([expect = `Violation]): a deliberately blocking
    toy claimed lock-free, the eventcount handshake with its Dekker
    re-check removed, Blelloch–Wei reclamation with the announcement scan
    disabled (a recycled reserved buffer loses an item to pointer ABA),
    and the segmented queue's retire with the hazard hand-off skipped (a
    stalled dequeuer reads a recycled segment). *)

val spec_algorithms : string list
(** {!algorithms} plus the catalog-only pseudo-algorithms
    ([sharded-llsc], [evequoz-bw-noscan], [evequoz-seg-noretire],
    [sim-wait], [toy-blocking]). *)

val find : algorithm:string -> scenario:string -> spec option
(** Look a spec up by its NBQ-FAULT-REPRO key. *)

val scenario_of_spec : spec -> scenario
(** Downgrade a spec to the legacy {!Sim.explore} surface (tasks +
    end-of-schedule check; the per-step invariant is dropped). *)

val progress_of_algorithm : string -> Props.progress
(** [evequoz-cas] is {!Props.Obstruction_free} (a CAS-simulated LL/SC
    reservation can be stolen and retaken forever under mutual
    interference), [herlihy-wing] is {!Props.Blocking} (its dequeue waits
    for an enqueuer), everything else — including [evequoz-bw], whose SC
    fails only when a competing SC succeeded — claims
    {!Props.Lock_free}. *)

val dump_schedule : spec -> int list -> out_channel -> unit
(** Re-execute [schedule] on a fresh instance of [spec], printing every
    step's task and atomic-location access, a short fair continuation
    (so liveness counterexamples show the loop they are stuck in), and
    the merged timeline of protocol events (probe hooks) rendered by
    {!Nbq_trace.Export.timeline_of} — the interleaving dump printed next
    to a violation's NBQ-FAULT-REPRO line. *)
