(* Temporal properties over explored schedule trees.

   Safety (FIFO order, conservation, registry hygiene) is a predicate on
   states, checked by scenario checks and per-step invariants.  Liveness is
   a predicate on *branches*: when the explorer cuts a schedule at its step
   bound, the question is what kind of infinity it was heading for.  The
   explorer answers by continuing the cut state under a fair round-robin
   scheduler and watching for progress (completed operations); the outcome
   is classified here against the progress guarantee the algorithm claims. *)

type progress =
  | Lock_free
      (* some thread completes in finitely many steps under ANY scheduler;
         livelock and lost wakeups are both violations *)
  | Obstruction_free
      (* a thread running in isolation completes; mutual interference may
         livelock forever (the paper's CAS-simulated LL/SC does), but no
         thread may get irrecoverably stuck *)
  | Blocking
      (* waiting for another thread is part of the contract (e.g. a total
         dequeue on an empty queue); only safety is checked *)

type divergence =
  | Benign_retry
      (* the adversarial prefix was cut, but operations kept completing
         under the fair continuation: an unbounded-but-productive branch *)
  | Livelock_witness of { writers : int list }
      (* fair continuation, no operation ever completes, yet these threads
         keep writing shared state: the classic CAS-retry livelock shape *)
  | Stuck of { spinning : int list; parked : int list }
      (* fair continuation, no completions, and nobody even writes: every
         remaining thread re-reads state no one will change.  A parked
         member means a lost wakeup. *)

let progress_to_string = function
  | Lock_free -> "lock-free"
  | Obstruction_free -> "obstruction-free"
  | Blocking -> "blocking"

let progress_of_string = function
  | "lock-free" -> Some Lock_free
  | "obstruction-free" -> Some Obstruction_free
  | "blocking" -> Some Blocking
  | _ -> None

let ints l = String.concat "," (List.map string_of_int l)

let describe_divergence = function
  | Benign_retry -> "benign retry (progress under fair continuation)"
  | Livelock_witness { writers } ->
      Printf.sprintf "livelock witness (threads %s keep writing, no op completes)"
        (ints writers)
  | Stuck { spinning; parked } ->
      Printf.sprintf "stuck (spinning=%s parked=%s)" (ints spinning)
        (ints parked)

(* Is this divergence a liveness violation for an algorithm claiming this
   progress guarantee?  Messages are prefixed "liveness:" — the repro layer
   keys the counterexample kind off that. *)
let violation_of progress divergence =
  match (divergence, progress) with
  | Benign_retry, _ -> None
  | Livelock_witness { writers }, Lock_free ->
      Some
        (Printf.sprintf
           "liveness: livelock — under a fair scheduler threads [%s] keep \
            writing shared state but no operation ever completes, \
            contradicting the lock-freedom claim"
           (ints writers))
  | Livelock_witness _, (Obstruction_free | Blocking) -> None
  | Stuck { spinning; parked }, (Lock_free | Obstruction_free) ->
      let what =
        if parked <> [] then
          Printf.sprintf
            "lost wakeup — threads [%s] are parked with no pending wake%s"
            (ints parked)
            (if spinning = [] then ""
             else Printf.sprintf " (and [%s] spin on state no one will change)"
                    (ints spinning))
        else
          Printf.sprintf
            "threads [%s] spin forever on state no one will ever change"
            (ints spinning)
      in
      Some ("liveness: stuck — " ^ what)
  | Stuck _, Blocking -> None

let is_liveness_message msg =
  String.length msg >= 9 && String.sub msg 0 9 = "liveness:"
