(** Temporal properties for the model checker.

    Safety is a predicate on states — the scenario's completion check and
    per-step invariant carry it.  Liveness is a predicate on {e branches}:
    a schedule cut at the explorer's step bound is continued under a fair
    round-robin scheduler and the outcome classified as a {!divergence};
    {!violation_of} then judges it against the progress guarantee the
    algorithm under test claims. *)

type progress =
  | Lock_free
      (** some thread completes within finitely many steps under any
          scheduler — a livelock or a stuck thread is a violation *)
  | Obstruction_free
      (** isolated threads complete; mutual interference may livelock
          forever (the paper's CAS-simulated LL/SC does) but no thread may
          get irrecoverably stuck *)
  | Blocking
      (** waiting on other threads is part of the contract; only safety is
          checked *)

type divergence =
  | Benign_retry
      (** operations kept completing under the fair continuation — the
          branch is unbounded but productive *)
  | Livelock_witness of { writers : int list }
      (** no operation ever completes although [writers] keep writing
          shared state: the CAS-retry livelock shape *)
  | Stuck of { spinning : int list; parked : int list }
      (** no completions and no writes — every surviving thread re-reads
          state no one will change; a [parked] member is a lost wakeup *)

val progress_to_string : progress -> string
val progress_of_string : string -> progress option
val describe_divergence : divergence -> string

val violation_of : progress -> divergence -> string option
(** The liveness verdict: [Some message] iff this divergence contradicts
    the claimed progress guarantee.  Messages are prefixed ["liveness:"]
    (see {!is_liveness_message}). *)

val is_liveness_message : string -> bool
(** Distinguishes liveness counterexamples from safety ones in
    {!Sim.Violation} messages, for the repro line's [kind=] field. *)
