(* NBQ-FAULT-REPRO v2-mc: the model checker's counterexample line.

   Same family as the torture/fault lines (grep for NBQ-FAULT-REPRO to
   find every producer): one self-contained line that a later session can
   paste back to re-derive the failure.  For the model checker the payload
   is an (algorithm, scenario) spec key plus the explicit schedule — the
   per-step task choices Sim.run_schedule and Dpor.replay consume. *)

let marker = "NBQ-FAULT-REPRO"
let version = "v2-mc"

type t = {
  algorithm : string;
  scenario : string;
  kind : [ `Safety | `Liveness ];
  schedule : int list;
}

let of_violation ~algorithm ~scenario ~message schedule =
  {
    algorithm;
    scenario;
    kind = (if Props.is_liveness_message message then `Liveness else `Safety);
    schedule;
  }

let to_line t =
  Printf.sprintf "%s %s algorithm=%s scenario=%s kind=%s schedule=%s" marker
    version t.algorithm t.scenario
    (match t.kind with `Safety -> "safety" | `Liveness -> "liveness")
    (match t.schedule with
    | [] -> "-"
    | s -> String.concat "," (List.map string_of_int s))

(* Parse [to_line]'s output back; tolerant of surrounding text (a pasted
   log line) and of extra key=value fields from future versions. *)
let parse line =
  let ( let* ) = Option.bind in
  let* rest =
    let probe = marker ^ " " ^ version ^ " " in
    let plen = String.length probe in
    let llen = String.length line in
    let rec find i =
      if i + plen > llen then None
      else if String.sub line i plen = probe then
        Some (String.sub line (i + plen) (llen - i - plen))
      else find (i + 1)
    in
    find 0
  in
  let fields =
    String.split_on_char ' ' rest
    |> List.filter_map (fun tok ->
           match String.index_opt tok '=' with
           | None -> None
           | Some i ->
               Some
                 ( String.sub tok 0 i,
                   String.sub tok (i + 1) (String.length tok - i - 1) ))
  in
  let* algorithm = List.assoc_opt "algorithm" fields in
  let* scenario = List.assoc_opt "scenario" fields in
  let* kind =
    match List.assoc_opt "kind" fields with
    | Some "safety" -> Some `Safety
    | Some "liveness" -> Some `Liveness
    | _ -> None
  in
  let* schedule =
    match List.assoc_opt "schedule" fields with
    | Some "-" -> Some []
    | Some s -> (
        try Some (List.map int_of_string (String.split_on_char ',' s))
        with Failure _ -> None)
    | None -> None
  in
  Some { algorithm; scenario; kind; schedule }
