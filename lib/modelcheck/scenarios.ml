module H = Nbq_lincheck.History
module C = Nbq_lincheck.Checker
module E = Nbq_obs.Event

type op = Enq of int | Deq | Peek | Enq_batch of int list | Deq_batch of int

type scenario = unit -> (unit -> unit) array * (unit -> unit)

(* --- protocol-event sink for counterexample dumps ------------------------ *)

(* The simulated queues are built through the probed functor variants, so
   the same protocol events the real flight recorder captures (SC failures,
   helping, tag registry traffic, parks/wakes) are available under
   simulation.  During exploration the sink is [None] and every hook is a
   no-op; [dump_schedule] installs a sink to rebuild the merged timeline of
   a counterexample. *)
let trace_sink : (E.t -> unit) option ref = ref None

let emit ev = match !trace_sink with None -> () | Some f -> f ev

module Trace_probe : Nbq_primitives.Probe.S = struct
  let ll_reserve () = emit E.Ll_reserve
  let sc_fail () = emit E.Sc_fail
  let tail_help () = emit E.Tail_help
  let head_help () = emit E.Head_help
  let tag_register () = emit E.Tag_register
  let tag_reregister () = emit E.Tag_reregister
  let tag_deregister () = emit E.Tag_deregister
  let tag_recycle () = emit E.Tag_recycle
  let shard_steal () = emit E.Shard_steal
  let wait_park () = emit E.Wait_park
  let wait_wake () = emit E.Wait_wake
  let wait_cancel () = emit E.Wait_cancel
end

(* --- recording ----------------------------------------------------------- *)

let record recorder ~thread ~enq ~deq ?peek ?enq_batch ?deq_batch op =
  (match op with
  | Enq v ->
      ignore
        (H.record recorder ~thread (H.Enqueue v) (fun () ->
             if enq v then H.Accepted else H.Rejected))
  | Deq ->
      ignore
        (H.record recorder ~thread H.Dequeue (fun () ->
             match deq () with Some v -> H.Got v | None -> H.Observed_empty))
  | Peek -> (
      match peek with
      | None -> invalid_arg "Scenarios: this algorithm has no peek"
      | Some peek ->
          ignore
            (H.record recorder ~thread H.Peek (fun () ->
                 match peek () with
                 | Some v -> H.Got v
                 | None -> H.Observed_empty)))
  | Enq_batch vs -> (
      match enq_batch with
      | None -> invalid_arg "Scenarios: this algorithm has no batch enqueue"
      | Some enq_batch ->
          ignore
            (H.record_call recorder ~thread (fun () ->
                 let n = enq_batch (Array.of_list vs) in
                 (* record_call convention: accepted prefix, then one
                    Rejected for the first refused item. *)
                 List.concat
                   (List.mapi
                      (fun i v ->
                        if i < n then [ (H.Enqueue v, H.Accepted) ]
                        else if i = n then [ (H.Enqueue v, H.Rejected) ]
                        else [])
                      vs))))
  | Deq_batch k -> (
      match deq_batch with
      | None -> invalid_arg "Scenarios: this algorithm has no batch dequeue"
      | Some deq_batch ->
          ignore
            (H.record_call recorder ~thread (fun () ->
                 let xs = deq_batch k in
                 List.map (fun v -> (H.Dequeue, H.Got v)) xs
                 @
                 if List.length xs < k then [ (H.Dequeue, H.Observed_empty) ]
                 else []))));
  (* Feed the liveness layer: each recorded queue operation is one unit of
     progress (not a scheduling point). *)
  Sim.op_completed ()

let lin_check ~capacity recorder () =
  match C.check_linearizable ~capacity (H.events recorder) with
  | C.Ok -> ()
  | C.Violation msg -> failwith msg

(* Generic builder over any (enq, deq[, peek]) triple on fresh state. *)
let generic ~make_queue ~spec_capacity ~prefill threads () =
  let nthreads = List.length threads in
  let enq, deq, peek = make_queue () in
  let recorder = H.recorder ~threads:(nthreads + 1) in
  Sim.run_sequential (fun () ->
      List.iter
        (fun v ->
          record recorder ~thread:nthreads ~enq ~deq:(fun () -> None) (Enq v))
        prefill);
  let task i ops () =
    List.iter (record recorder ~thread:i ~enq ~deq ?peek) ops
  in
  ( Array.of_list (List.mapi task threads),
    lin_check ~capacity:spec_capacity recorder )

module SimCell = Nbq_primitives.Llsc.Make_probed (Sim.Atomic) (Trace_probe)
module SimQ1 = Nbq_core.Evequoz_llsc.Make_probed (SimCell) (Trace_probe)
module SimQ2 = Nbq_core.Evequoz_cas.Make_probed (Sim.Atomic) (Trace_probe)
module SimBW = Nbq_core.Evequoz_bw.Make_probed (Sim.Atomic) (Trace_probe)
module SimShann = Nbq_baselines.Shann.Make (Sim.Atomic)
module SimTz = Nbq_baselines.Tsigas_zhang.Make (Sim.Atomic)
module SimMs = Nbq_baselines.Michael_scott.Make (Sim.Atomic)
module SimHw = Nbq_baselines.Herlihy_wing.Make (Sim.Atomic)
module SimLms = Nbq_baselines.Ladan_mozes_shavit.Make (Sim.Atomic)
module SimValois = Nbq_baselines.Valois.Make (Sim.Atomic)

(* The segmented unbounded queue (PR 9) with ideal LL/SC cells inside each
   segment, so the explored state space is dominated by the chain protocol
   — append, retire, hazard hand-off, recycle — rather than by the cell
   backend already verified above. *)
module SimSegBackend = Nbq_primitives.Llsc_backend.Of_cell (SimCell)

module SimSeg =
  Nbq_segmented.Segmented.Make_backend (Sim.Atomic) (SimSegBackend)
    (Trace_probe)
    (Nbq_primitives.Fault.Noop)

(* Nikolaev's SCQ (PR 10): the FAA-ticketed ring, with and without the
   wCQ-style helping enqueue.  The no-threshold variant disables the
   retry-budget counter — the seeded livelock the checker must convict:
   without it an empty-side dequeuer's slot bumps and the enqueuer's
   fresh tickets can chase each other forever. *)
module SimScq = Nbq_scq.Scq.Make_probed (Sim.Atomic) (Trace_probe)
module SimScqW = Nbq_scq.Scq.Make_wcq_probed (Sim.Atomic) (Trace_probe)

module SimScqNothresh =
  Nbq_scq.Scq.Make_full
    (struct
      let threshold = false
      let helping = false
      let slow_after = 4
    end)
    (Sim.Atomic)
    (Trace_probe)
    (Nbq_primitives.Fault.Noop)

let algorithms =
  [
    "evequoz-llsc"; "evequoz-cas"; "evequoz-bw"; "evequoz-seg"; "shann";
    "tsigas-zhang"; "ms-gc"; "herlihy-wing"; "lms-optimistic"; "valois-dcas";
    "scq"; "scq-d"; "scq-wcq";
  ]

let build ~algorithm ~capacity ~prefill threads =
  match algorithm with
  | "evequoz-llsc" ->
      generic ~spec_capacity:capacity ~prefill threads ~make_queue:(fun () ->
          let q = SimQ1.create ~capacity in
          ( (fun v -> SimQ1.try_enqueue q v),
            (fun () -> SimQ1.try_dequeue q),
            Some (fun () -> SimQ1.try_peek q) ))
  | "evequoz-cas" ->
      (* Explicit handles: registration runs inside the explored schedule,
         once per simulated thread, like a fresh paper thread would. *)
      fun () ->
        let q = SimQ2.create ~capacity in
        let nthreads = List.length threads in
        let recorder = H.recorder ~threads:(nthreads + 1) in
        Sim.run_sequential (fun () ->
            let h = SimQ2.register q in
            List.iter
              (fun v ->
                record recorder ~thread:nthreads
                  ~enq:(fun v -> SimQ2.enqueue_with q h v)
                  ~deq:(fun () -> None)
                  (Enq v))
              prefill;
            SimQ2.deregister h);
        let task i ops () =
          let h = SimQ2.register q in
          List.iter
            (record recorder ~thread:i
               ~enq:(fun v -> SimQ2.enqueue_with q h v)
               ~deq:(fun () -> SimQ2.dequeue_with q h)
               ~peek:(fun () -> SimQ2.peek_with q h))
            ops;
          SimQ2.deregister h
        in
        ( Array.of_list (List.mapi task threads),
          lin_check ~capacity recorder )
  | "evequoz-bw" ->
      (* Same ring, Blelloch–Wei cells: handles are announcement slots, so
         registration runs inside the explored schedule like the tag
         protocol's — but per-operation reregistration is a no-op. *)
      fun () ->
        let q = SimBW.create ~capacity in
        let nthreads = List.length threads in
        let recorder = H.recorder ~threads:(nthreads + 1) in
        Sim.run_sequential (fun () ->
            let h = SimBW.register q in
            List.iter
              (fun v ->
                record recorder ~thread:nthreads
                  ~enq:(fun v -> SimBW.enqueue_with q h v)
                  ~deq:(fun () -> None)
                  (Enq v))
              prefill;
            SimBW.deregister h);
        let task i ops () =
          let h = SimBW.register q in
          List.iter
            (record recorder ~thread:i
               ~enq:(fun v -> SimBW.enqueue_with q h v)
               ~deq:(fun () -> SimBW.dequeue_with q h)
               ~peek:(fun () -> SimBW.peek_with q h))
            ops;
          SimBW.deregister h
        in
        ( Array.of_list (List.mapi task threads),
          lin_check ~capacity recorder )
  | "evequoz-seg" ->
      (* The segmented unbounded queue: [capacity] is the *segment*
         capacity, the queue itself never rejects, so the linearizability
         spec runs unbounded.  Explicit handles (one hazard record each)
         register inside the explored schedule. *)
      fun () ->
        let q = SimSeg.create ~retire_threshold:1 ~capacity () in
        let nthreads = List.length threads in
        let recorder = H.recorder ~threads:(nthreads + 1) in
        Sim.run_sequential (fun () ->
            let h = SimSeg.register q in
            List.iter
              (fun v ->
                record recorder ~thread:nthreads
                  ~enq:(fun v -> SimSeg.enqueue_with q h v)
                  ~deq:(fun () -> None)
                  (Enq v))
              prefill;
            SimSeg.deregister q h);
        let task i ops () =
          let h = SimSeg.register q in
          List.iter
            (record recorder ~thread:i
               ~enq:(fun v -> SimSeg.enqueue_with q h v)
               ~deq:(fun () -> SimSeg.dequeue_with q h))
            ops;
          SimSeg.deregister q h
        in
        ( Array.of_list (List.mapi task threads),
          lin_check ~capacity:max_int recorder )
  | "shann" ->
      generic ~spec_capacity:capacity ~prefill threads ~make_queue:(fun () ->
          let q = SimShann.create ~capacity in
          ( (fun v -> SimShann.try_enqueue q v),
            (fun () -> SimShann.try_dequeue q),
            None ))
  | "tsigas-zhang" ->
      generic ~spec_capacity:capacity ~prefill threads ~make_queue:(fun () ->
          let q = SimTz.create ~capacity in
          ( (fun v -> SimTz.try_enqueue q v),
            (fun () -> SimTz.try_dequeue q),
            None ))
  | "ms-gc" ->
      generic ~spec_capacity:max_int ~prefill threads ~make_queue:(fun () ->
          let q = SimMs.create () in
          ( (fun v ->
              SimMs.enqueue q v;
              true),
            (fun () -> SimMs.try_dequeue q),
            None ))
  | "herlihy-wing" ->
      generic ~spec_capacity:max_int ~prefill threads ~make_queue:(fun () ->
          let q = SimHw.create () in
          ( (fun v ->
              SimHw.enqueue q v;
              true),
            (fun () -> SimHw.try_dequeue q),
            None ))
  | "valois-dcas" ->
      generic ~spec_capacity:capacity ~prefill threads ~make_queue:(fun () ->
          let q = SimValois.create ~capacity in
          ( (fun v -> SimValois.try_enqueue q v),
            (fun () -> SimValois.try_dequeue q),
            None ))
  | "lms-optimistic" ->
      generic ~spec_capacity:max_int ~prefill threads ~make_queue:(fun () ->
          let q = SimLms.create () in
          ( (fun v ->
              SimLms.enqueue q v;
              true),
            (fun () -> SimLms.try_dequeue q),
            None ))
  | "scq" ->
      generic ~spec_capacity:capacity ~prefill threads ~make_queue:(fun () ->
          let q = SimScq.Scq.create ~capacity in
          ( (fun v -> SimScq.Scq.try_enqueue q v),
            (fun () -> SimScq.Scq.try_dequeue q),
            None ))
  | "scq-d" ->
      generic ~spec_capacity:capacity ~prefill threads ~make_queue:(fun () ->
          let q = SimScq.Scqd.create ~capacity in
          ( (fun v -> SimScq.Scqd.try_enqueue q v),
            (fun () -> SimScq.Scqd.try_dequeue q),
            None ))
  | "scq-wcq" ->
      generic ~spec_capacity:capacity ~prefill threads ~make_queue:(fun () ->
          let q = SimScqW.Scq.create ~capacity in
          ( (fun v -> SimScqW.Scq.try_enqueue q v),
            (fun () -> SimScqW.Scq.try_dequeue q),
            None ))
  | other ->
      invalid_arg
        (Printf.sprintf "Scenarios.build: unknown algorithm %S (know: %s)"
           other
           (String.concat ", " algorithms))

let standard_matrix =
  [
    ("enq|enq", 2, [], [ [ Enq 1 ]; [ Enq 2 ] ]);
    ("enq|deq empty", 2, [], [ [ Enq 1 ]; [ Deq ] ]);
    ("enq|deq nonempty", 2, [ 100 ], [ [ Enq 1 ]; [ Deq ] ]);
    ("deq|deq", 4, [ 100; 200 ], [ [ Deq ]; [ Deq ] ]);
    ("enq|deq at full", 2, [ 100; 200 ], [ [ Enq 1 ]; [ Deq ] ]);
    ("2 ops each", 2, [], [ [ Enq 1; Deq ]; [ Enq 2; Deq ] ]);
  ]

(* ========================================================================= *)
(* The spec catalog: scenarios as data, for the DPOR pass.                   *)
(* ========================================================================= *)

type spec = {
  algorithm : string;
  scenario : string;  (* slug, stable across sessions: the repro-line key *)
  descr : string;
  progress : Props.progress;
  expect : [ `Pass | `Violation ];
  build_instance : unit -> Dpor.instance;
}

let slug name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    name

(* The paper's progress claims, per algorithm.  Algorithm 2 simulates
   LL/SC with CAS + tags: a reservation can be stolen and retaken forever
   under mutual interference, so its guarantee is obstruction freedom, not
   lock freedom (DESIGN.md §12 — the exhaustive pass finds no livelock
   under the *fair* continuation, but the adversarial one is real).
   Herlihy–Wing's dequeue is total (waits for an enqueuer), hence
   blocking.  The Blelloch–Wei backend restores lock freedom from plain
   CAS: its SC fails only when a competing SC succeeded, so [evequoz-bw]
   falls under the default claim. *)
let progress_of_algorithm = function
  | "evequoz-cas" -> Props.Obstruction_free
  | "herlihy-wing" -> Props.Blocking
  (* SCQ's threshold counter bounds the dequeuers' retry budget, but an
     enqueuer's ticket can still be invalidated by each bump the budget
     pays for, so on the adversarial continuation we only claim progress
     in isolation; the exhaustive pass must come back clean under the
     step budget regardless (the conviction belongs to scq-nothreshold,
     which waives the counter and claims lock freedom). *)
  | "scq" | "scq-d" | "scq-wcq" -> Props.Obstruction_free
  | _ -> Props.Lock_free

(* Multiset of items that must still be in the queue when every recorded
   operation has responded: accepted enqueues minus dequeued gets. *)
let remaining_of_history events =
  let enq =
    List.filter_map
      (fun e ->
        match (e.H.op, e.H.outcome) with
        | H.Enqueue v, H.Accepted -> Some v
        | _ -> None)
      events
  in
  let got =
    List.filter_map
      (fun e ->
        match (e.H.op, e.H.outcome) with
        | H.Dequeue, H.Got v -> Some v
        | _ -> None)
      events
  in
  let remove_one x l =
    let rec go acc = function
      | [] ->
          failwith
            (Printf.sprintf "conservation: dequeued %d was never enqueued" x)
      | y :: tl -> if y = x then List.rev_append acc tl else go (y :: acc) tl
    in
    go [] l
  in
  List.sort compare (List.fold_left (fun l x -> remove_one x l) enq got)

let drain_all deq =
  let rec go acc =
    match deq () with Some v -> go (v :: acc) | None -> List.rev acc
  in
  go []

(* Conservation, checked by draining: what is left in the queue must be
   exactly what the history says is left.  (Order of the remainder can be
   ambiguous when concurrent enqueues raced, so multisets are compared;
   FIFO order itself is the linearizability check's job.) *)
let conservation_check recorder deq () =
  Sim.run_sequential (fun () ->
      let expected = remaining_of_history (H.events recorder) in
      let drained = List.sort compare (drain_all deq) in
      if drained <> expected then
        failwith
          (Printf.sprintf "conservation: drained [%s] but history left [%s]"
             (String.concat ";" (List.map string_of_int drained))
             (String.concat ";" (List.map string_of_int expected))))

(* --- strengthened per-algorithm instances -------------------------------- *)

(* Algorithm 1 (LL/SC), with conservation-by-drain and a per-step index
   invariant on top of the linearizability check. *)
let llsc_instance ~capacity ~prefill threads () =
  let nthreads = List.length threads in
  let q = SimQ1.create ~capacity in
  let cap = Nbq_core.Queue_intf.round_capacity capacity in
  let recorder = H.recorder ~threads:(nthreads + 1) in
  let enq v = SimQ1.try_enqueue q v in
  let deq () = SimQ1.try_dequeue q in
  let peek () = SimQ1.try_peek q in
  Sim.run_sequential (fun () ->
      List.iter
        (fun v ->
          record recorder ~thread:nthreads ~enq ~deq:(fun () -> None) (Enq v))
        prefill);
  let task i ops () = List.iter (record recorder ~thread:i ~enq ~deq ~peek) ops in
  {
    Dpor.tasks = Array.of_list (List.mapi task threads);
    check =
      (fun () ->
        lin_check ~capacity recorder ();
        conservation_check recorder deq ());
    invariant =
      Some
        (fun () ->
          Sim.run_sequential (fun () ->
              let l = SimQ1.tail_index q - SimQ1.head_index q in
              if l < 0 || l > cap then
                failwith
                  (Printf.sprintf "index invariant: tail-head = %d not in [0,%d]"
                     l cap)));
  }

(* Algorithm 2 (CAS-simulated LL/SC) with explicit handles; optionally
   exercising the batch-run paths.  On top of linearizability:
   conservation by drain, tag-registry hygiene at quiescence (owned
   reservations return to the post-registration baseline; the registry
   never outgrows the thread high-water mark), and the registry bound as a
   per-step invariant. *)
let cas_instance ~capacity ~prefill threads () =
  let nthreads = List.length threads in
  let q = SimQ2.create ~capacity in
  let recorder = H.recorder ~threads:(nthreads + 1) in
  let baseline_owned = ref 0 in
  Sim.run_sequential (fun () ->
      let h = SimQ2.register q in
      List.iter
        (fun v ->
          record recorder ~thread:nthreads
            ~enq:(fun v -> SimQ2.enqueue_with q h v)
            ~deq:(fun () -> None)
            (Enq v))
        prefill;
      SimQ2.deregister h;
      baseline_owned := SimQ2.owned_count q);
  let registry_cap () =
    (* Every simulated thread plus the prologue/drain handle; the registry
       tracks the high-water mark of concurrently registered threads
       (paper §5's space adaptivity), so it may never exceed this. *)
    nthreads + 1
  in
  let task i ops () =
    let h = SimQ2.register q in
    let enq v = SimQ2.enqueue_with q h v in
    let deq () = SimQ2.dequeue_with q h in
    let peek () = SimQ2.peek_with q h in
    List.iter
      (record recorder ~thread:i ~enq ~deq ~peek
         ~enq_batch:(fun a -> SimQ2.enqueue_batch_with q h a)
         ~deq_batch:(fun k -> SimQ2.dequeue_batch_with q h k))
      ops;
    SimQ2.deregister h
  in
  {
    Dpor.tasks = Array.of_list (List.mapi task threads);
    check =
      (fun () ->
        lin_check ~capacity recorder ();
        Sim.run_sequential (fun () ->
            let h = SimQ2.register q in
            let drained =
              List.sort compare
                (drain_all (fun () -> SimQ2.dequeue_with q h))
            in
            let expected = remaining_of_history (H.events recorder) in
            if drained <> expected then
              failwith
                (Printf.sprintf
                   "conservation: drained [%s] but history left [%s]"
                   (String.concat ";" (List.map string_of_int drained))
                   (String.concat ";" (List.map string_of_int expected)));
            SimQ2.deregister h;
            let owned = SimQ2.owned_count q in
            if owned > !baseline_owned then
              failwith
                (Printf.sprintf
                   "registry hygiene: %d tag vars still owned at quiescence \
                    (baseline %d)"
                   owned !baseline_owned);
            let size = SimQ2.registry_size q in
            if size > registry_cap () then
              failwith
                (Printf.sprintf
                   "registry hygiene: %d tag vars allocated for %d threads"
                   size (registry_cap ()))));
    invariant =
      Some
        (fun () ->
          Sim.run_sequential (fun () ->
              let size = SimQ2.registry_size q in
              if size > registry_cap () then
                failwith
                  (Printf.sprintf
                     "registry invariant: %d tag vars allocated for %d threads"
                     size (registry_cap ()))));
  }

(* The Blelloch–Wei backend under the same ring, with the hygiene checks
   reshaped for announcement-based reclamation: on top of linearizability
   and conservation by drain, no deregistered handle may leave a published
   announcement behind, every handle record recycles through [active]
   (the chain never outgrows the thread high-water mark), and the retired
   pile stays below the amortization threshold at quiescence — the
   bounded-space claim of the constant-time construction. *)
let bw_instance ~capacity ~prefill threads () =
  let nthreads = List.length threads in
  let q = SimBW.create ~capacity in
  let recorder = H.recorder ~threads:(nthreads + 1) in
  let baseline_owned = ref 0 in
  Sim.run_sequential (fun () ->
      let h = SimBW.register q in
      List.iter
        (fun v ->
          record recorder ~thread:nthreads
            ~enq:(fun v -> SimBW.enqueue_with q h v)
            ~deq:(fun () -> None)
            (Enq v))
        prefill;
      SimBW.deregister h;
      baseline_owned := SimBW.owned_count q);
  let registry_cap () = nthreads + 1 in
  let task i ops () =
    let h = SimBW.register q in
    let enq v = SimBW.enqueue_with q h v in
    let deq () = SimBW.dequeue_with q h in
    let peek () = SimBW.peek_with q h in
    List.iter
      (record recorder ~thread:i ~enq ~deq ~peek
         ~enq_batch:(fun a -> SimBW.enqueue_batch_with q h a)
         ~deq_batch:(fun k -> SimBW.dequeue_batch_with q h k))
      ops;
    SimBW.deregister h
  in
  {
    Dpor.tasks = Array.of_list (List.mapi task threads);
    check =
      (fun () ->
        lin_check ~capacity recorder ();
        Sim.run_sequential (fun () ->
            let h = SimBW.register q in
            let drained =
              List.sort compare
                (drain_all (fun () -> SimBW.dequeue_with q h))
            in
            let expected = remaining_of_history (H.events recorder) in
            if drained <> expected then
              failwith
                (Printf.sprintf
                   "conservation: drained [%s] but history left [%s]"
                   (String.concat ";" (List.map string_of_int drained))
                   (String.concat ";" (List.map string_of_int expected)));
            SimBW.deregister h;
            let owned = SimBW.owned_count q in
            if owned > !baseline_owned then
              failwith
                (Printf.sprintf
                   "handle hygiene: %d records still owned at quiescence \
                    (baseline %d)"
                   owned !baseline_owned);
            let size = SimBW.registry_size q in
            if size > registry_cap () then
              failwith
                (Printf.sprintf
                   "handle hygiene: %d records allocated for %d threads" size
                   (registry_cap ()));
            let sp = SimBW.space q in
            if sp.Nbq_primitives.Llsc_bw.announced <> 0 then
              failwith
                (Printf.sprintf
                   "announcement hygiene: %d slots still announced at \
                    quiescence"
                   sp.Nbq_primitives.Llsc_bw.announced)));
    invariant =
      Some
        (fun () ->
          Sim.run_sequential (fun () ->
              let size = SimBW.registry_size q in
              if size > registry_cap () then
                failwith
                  (Printf.sprintf
                     "handle invariant: %d records allocated for %d threads"
                     size (registry_cap ()))));
  }

(* The seeded Blelloch–Wei bug: reclamation that ignores the announcement
   scan (threshold 1, so every SC recycles immediately) hands a delayed
   enqueuer's reserved buffer back into the cell it came from.  Its SC
   then succeeds against the recycled pointer — the exact ABA the
   announcement exists to close — and an accepted item vanishes, which
   conservation-by-drain convicts. *)
module SimBWBug_backend =
  Nbq_primitives.Llsc_bw.Make_config
    (struct
      let scan_announcements = false
      let retire_threshold = 1
    end)
    (Sim.Atomic)
    (Trace_probe)
    (Nbq_primitives.Fault.Noop)

module SimBWBug =
  Nbq_core.Evequoz_ring.Make_injected (SimBWBug_backend) (Trace_probe)
    (Nbq_primitives.Fault.Noop)

let bw_noscan_instance () =
  let q = SimBWBug.create ~capacity:2 in
  let recorder = H.recorder ~threads:2 in
  let task i ops () =
    let h = SimBWBug.register q in
    List.iter
      (record recorder ~thread:i
         ~enq:(fun v -> SimBWBug.enqueue_with q h v)
         ~deq:(fun () -> SimBWBug.dequeue_with q h))
      ops;
    SimBWBug.deregister h
  in
  let tasks = Array.of_list (List.mapi task [ [ Enq 1 ]; [ Enq 2; Deq ] ]) in
  {
    Dpor.tasks = tasks;
    check =
      (fun () ->
        lin_check ~capacity:2 recorder ();
        Sim.run_sequential (fun () ->
            let h = SimBWBug.register q in
            let drained =
              List.sort compare
                (drain_all (fun () -> SimBWBug.dequeue_with q h))
            in
            SimBWBug.deregister h;
            let expected = remaining_of_history (H.events recorder) in
            if drained <> expected then
              failwith
                (Printf.sprintf
                   "conservation: drained [%s] but history left [%s]"
                   (String.concat ";" (List.map string_of_int drained))
                   (String.concat ";" (List.map string_of_int expected)))));
    invariant = None;
  }

(* The segmented unbounded queue: [capacity] is the segment capacity, the
   linearizability spec is unbounded, and [retire_threshold 1] makes every
   retire scan immediately so recycling happens inside the explored
   window.  [direct_free] is the seeded bug (evequoz-seg-noretire): the
   head-advance winner frees the drained segment without the hazard scan.

   Strengthened checks on top of linearizability:
   - conservation by drain, with reclamation hygiene at quiescence: after
     every record has been reacquired and released once, no retired
     segment may still be pending (nothing protects them anymore);
   - as a per-step invariant, the memory bound — segment k exists only
     after segments 0..k-1 each accepted a full complement, so the live
     chain never exceeds total_items/capacity + 1 — and the per-segment
     index windows lap_base <= head <= tail <= lap_base + capacity, the
     FIFO-across-segments witness. *)
let seg_instance ?(direct_free = false) ~capacity ~prefill threads () =
  let nthreads = List.length threads in
  let q = SimSeg.create ~direct_free ~retire_threshold:1 ~capacity () in
  let cap = Nbq_core.Queue_intf.round_capacity capacity in
  let total_items =
    List.length prefill
    + List.fold_left
        (List.fold_left (fun acc op ->
             match op with
             | Enq _ -> acc + 1
             | Enq_batch items -> acc + List.length items
             | Deq | Deq_batch _ | Peek -> acc))
        0 threads
  in
  let max_chain = (total_items / cap) + 1 in
  let recorder = H.recorder ~threads:(nthreads + 1) in
  Sim.run_sequential (fun () ->
      let h = SimSeg.register q in
      List.iter
        (fun v ->
          record recorder ~thread:nthreads
            ~enq:(fun v -> SimSeg.enqueue_with q h v)
            ~deq:(fun () -> None)
            (Enq v))
        prefill;
      SimSeg.deregister q h);
  let task i ops () =
    let h = SimSeg.register q in
    List.iter
      (record recorder ~thread:i
         ~enq:(fun v -> SimSeg.enqueue_with q h v)
         ~deq:(fun () -> SimSeg.dequeue_with q h))
      ops;
    SimSeg.deregister q h
  in
  {
    Dpor.tasks = Array.of_list (List.mapi task threads);
    check =
      (fun () ->
        lin_check ~capacity:max_int recorder ();
        Sim.run_sequential (fun () ->
            let h = SimSeg.register q in
            let drained =
              List.sort compare (drain_all (fun () -> SimSeg.dequeue_with q h))
            in
            let expected = remaining_of_history (H.events recorder) in
            if drained <> expected then
              failwith
                (Printf.sprintf
                   "conservation: drained [%s] but history left [%s]"
                   (String.concat ";" (List.map string_of_int drained))
                   (String.concat ";" (List.map string_of_int expected)));
            SimSeg.deregister q h;
            (* Acquire every hazard record at once, then release each:
               every release rescans its record's parked retirees, and
               with no hazard held anything still pending is a leak. *)
            let flush =
              List.init (nthreads + 2) (fun _ -> SimSeg.register q)
            in
            List.iter (fun h -> SimSeg.deregister q h) flush;
            let st = SimSeg.stats q in
            if st.Nbq_segmented.Segmented.retired_pending <> 0 then
              failwith
                (Printf.sprintf
                   "reclamation hygiene: %d segments still retired at \
                    quiescence"
                   st.Nbq_segmented.Segmented.retired_pending)));
    invariant =
      Some
        (fun () ->
          Sim.run_sequential (fun () ->
              let rec walk n seg =
                let r = seg.SimSeg.ring in
                let base = SimSeg.Ring.lap_base r in
                let hd = SimSeg.Ring.head_index r in
                let tl = SimSeg.Ring.tail_index r in
                if not (base <= hd && hd <= tl && tl <= base + cap) then
                  failwith
                    (Printf.sprintf
                       "index window: segment %d has base %d head %d tail %d \
                        (capacity %d)"
                       (SimSeg.seg_id seg) base hd tl cap);
                match Sim.Atomic.get seg.SimSeg.next with
                | SimSeg.Nil -> n
                | SimSeg.Next ns -> walk (n + 1) ns
              in
              let chain = walk 1 (Sim.Atomic.get q.SimSeg.head_seg) in
              if chain > max_chain then
                failwith
                  (Printf.sprintf
                     "segment bound: %d live segments for %d items of \
                      capacity %d (max %d)"
                     chain total_items cap max_chain)));
  }

(* SCQ family (PR 10): linearizability plus conservation-by-drain.  No
   per-step invariant: the credit ring hands a freed slot back *before*
   the size counter settles, so even length <= capacity is transiently
   false mid-step by design — only quiescent properties are sound, and
   the drain checks those. *)
let scq_instance ~make ~capacity ~prefill threads () =
  let nthreads = List.length threads in
  let enq, deq = make ~capacity in
  let recorder = H.recorder ~threads:(nthreads + 1) in
  Sim.run_sequential (fun () ->
      List.iter
        (fun v ->
          record recorder ~thread:nthreads ~enq ~deq:(fun () -> None) (Enq v))
        prefill);
  let task i ops () = List.iter (record recorder ~thread:i ~enq ~deq) ops in
  {
    Dpor.tasks = Array.of_list (List.mapi task threads);
    check =
      (fun () ->
        lin_check ~capacity recorder ();
        conservation_check recorder deq ());
    invariant = None;
  }

let scq_make ~capacity =
  let q = SimScq.Scq.create ~capacity in
  ((fun v -> SimScq.Scq.try_enqueue q v), fun () -> SimScq.Scq.try_dequeue q)

let scqd_make ~capacity =
  let q = SimScq.Scqd.create ~capacity in
  ((fun v -> SimScq.Scqd.try_enqueue q v), fun () -> SimScq.Scqd.try_dequeue q)

let scq_wcq_make ~capacity =
  let q = SimScqW.Scq.create ~capacity in
  ((fun v -> SimScqW.Scq.try_enqueue q v), fun () -> SimScqW.Scq.try_dequeue q)

(* Other algorithms: the linearizability check as before, no extra
   invariant (their internals are baselines, not the paper's claims). *)
let generic_instance ~algorithm ~capacity ~prefill threads () =
  let tasks, check = build ~algorithm ~capacity ~prefill threads () in
  { Dpor.tasks; check; invariant = None }

let matrix_instance ~algorithm ~capacity ~prefill threads =
  match algorithm with
  | "evequoz-llsc" -> llsc_instance ~capacity ~prefill threads
  | "evequoz-cas" -> cas_instance ~capacity ~prefill threads
  | "evequoz-bw" -> bw_instance ~capacity ~prefill threads
  | "evequoz-seg" -> seg_instance ~capacity ~prefill threads
  | "scq" -> scq_instance ~make:scq_make ~capacity ~prefill threads
  | "scq-d" -> scq_instance ~make:scqd_make ~capacity ~prefill threads
  | "scq-wcq" -> scq_instance ~make:scq_wcq_make ~capacity ~prefill threads
  | _ -> generic_instance ~algorithm ~capacity ~prefill threads

(* --- post-paper scenarios: sharded facade, batched runs ------------------ *)

module Sh = Nbq_scale.Sharded

(* 2 shards x capacity 2 over Algorithm 1, task affinity pinned so the
   steal-sweep window is open from the first step: shard 0 starts full, the
   enqueuer's home is shard 0 (must sweep to shard 1), the dequeuer's home
   is shard 1 (must steal from shard 0).  The facade is *not* linearizable
   against a single FIFO (per-shard FIFO only), so the check is
   conservation plus outcome sanity, not lincheck. *)
let sharded_instance () =
  let home () = match Sim.current_task () with -1 -> 0 | t -> t mod 2 in
  let f =
    Sh.create
      ~note_steal:(fun () -> emit E.Shard_steal)
      ~home ~shards:2
      (fun _ ->
        let q = SimQ1.create ~capacity:2 in
        Sh.ops_of_singles
          ~enq:(fun v -> SimQ1.try_enqueue q v)
          ~deq:(fun () -> SimQ1.try_dequeue q)
          ~len:(fun () -> SimQ1.length q))
  in
  Sim.run_sequential (fun () ->
      if not (Sh.try_enqueue f 100 && Sh.try_enqueue f 101) then
        failwith "sharded prefill failed");
  let enq_ok = ref false and got = ref None in
  let tasks =
    [|
      (fun () ->
        enq_ok := Sh.try_enqueue f 1;
        Sim.op_completed ());
      (fun () ->
        got := Sh.try_dequeue f;
        Sim.op_completed ());
    |]
  in
  let check () =
    Sim.run_sequential (fun () ->
        (* Shard 1 is only ever written by the enqueuer's sweep, so the
           sweep always finds room: the enqueue must succeed.  Shard 0
           holds >= 1 item until the single dequeuer takes one, so the
           dequeue must succeed too. *)
        if not !enq_ok then failwith "sharded: enqueue failed with free slots";
        let taken =
          match !got with
          | None -> failwith "sharded: dequeue failed with items present"
          | Some v -> v
        in
        let drained = List.sort compare (drain_all (fun () -> Sh.try_dequeue f)) in
        let expected =
          List.sort compare
            (List.filter (fun v -> v <> taken) [ 100; 101; 1 ])
        in
        if drained <> expected then
          failwith
            (Printf.sprintf "sharded conservation: drained [%s], expected [%s]"
               (String.concat ";" (List.map string_of_int drained))
               (String.concat ";" (List.map string_of_int expected))))
  in
  { Dpor.tasks; check; invariant = None }

(* --- seeded-bug scenarios: the liveness checker's own test dummies ------- *)

(* A "queue" whose dequeue spins on a flag nobody ever sets: blocking by
   construction, declared lock-free, so the checker must convict it
   (Stuck { spinning }). *)
let toy_blocking_instance () =
  let flag = Sim.Atomic.make false in
  let tasks =
    [|
      (fun () ->
        while not (Sim.Atomic.get flag) do () done;
        Sim.op_completed ());
      (fun () -> Sim.op_completed ());
    |]
  in
  { Dpor.tasks; check = (fun () -> ()); invariant = None }

(* --- wait-layer scenarios: the eventcount under simulation --------------- *)

module SimConc1 =
  Nbq_core.Queue_intf.Make (Nbq_core.Queue_intf.Capability.Bounded (SimQ1))

(* The production blocking wrapper (Queue_intf.Blocking_ec) over the
   production eventcount protocol (Eventcount_core), both running on
   simulated atomics and the cooperative parker.  A consumer blocks on an
   empty queue; a producer enqueues (which issues the wake).  Lock-free
   here means: no schedule may strand the parked consumer — the exhaustive
   no-lost-wakeup check. *)
let sim_wait_instance () =
  let module W = Sim_wait.Make () in
  let module BQ =
    Nbq_core.Queue_intf.Blocking_ec (W.EC) (Trace_probe)
      (Nbq_primitives.Fault.Noop)
      (SimConc1)
  in
  let bq = BQ.create ~capacity:2 in
  let got = ref None in
  let tasks =
    [|
      (fun () ->
        got := Some (BQ.dequeue bq);
        Sim.op_completed ());
      (fun () ->
        BQ.enqueue bq 42;
        Sim.op_completed ());
    |]
  in
  let check () =
    if !got <> Some 42 then failwith "sim-wait: consumer finished empty-handed"
  in
  { Dpor.tasks; check; invariant = None }

(* The same shape with the Dekker handshake deliberately broken: the
   consumer publishes its waiter and commits WITHOUT re-checking the
   condition.  The producer's wake_one can then hit the empty-stack fast
   path (condition made true before the waiter published) and skip both
   the seq bump and the signal — the consumer parks forever.  The checker
   must convict this as Stuck { parked } with a replayable schedule. *)
let lost_wakeup_instance () =
  let module W = Sim_wait.Make () in
  let q = SimQ1.create ~capacity:2 in
  let not_empty = W.EC.create () in
  let got = ref None in
  let tasks =
    [|
      (fun () ->
        let rec deq () =
          match SimQ1.try_dequeue q with
          | Some v ->
              got := Some v;
              Sim.op_completed ()
          | None -> (
              let w = W.EC.prepare_wait not_empty in
              (* BUG under test: no condition re-check between publish and
                 commit — the second half of the Dekker handshake is
                 missing. *)
              match W.EC.commit_wait not_empty w with
              | `Woken | `Timeout -> deq ())
        in
        deq ());
      (fun () ->
        ignore (SimQ1.try_enqueue q 42 : bool);
        ignore (W.EC.wake_one not_empty : bool);
        Sim.op_completed ());
    |]
  in
  let check () =
    if !got <> Some 42 then failwith "lost-wakeup: consumer finished empty"
  in
  { Dpor.tasks; check; invariant = None }

(* The seeded SCQ livelock ([Scq.CONFIG.threshold = false]): the miss
   path has no retry budget, so a dequeuer that lost the slot race goes
   again unconditionally — it bumps the slot cycle (invalidating the
   enqueuer's ticket), the enqueuer FAAs a fresh ticket, and the chase
   repeats; once the enqueuer is done the dequeuer keeps chasing its own
   bumps, never conceding emptiness.  The scenario runs one more dequeue
   than there are items ([Enq 1] | [Deq; Deq]) so the ring ends up drained
   with a dequeue still in flight: that dequeue bumps slots and drags tail
   via catchup forever — shared-state writes with no completion, which the
   fair-continuation probe classifies as a livelock witness, violating the
   claimed lock freedom.  (With one item per dequeue even the seeded
   variant quiesces under the fair probe: the enqueuer eventually installs
   and the chase consumes it — the adversarial mutual chase is real but no
   round-robin continuation sustains it.)  With the counter armed the
   budget expires and the same shape terminates, which the scq matrix
   above runs to exhaustion.  No conservation drain here: draining the
   seeded variant would itself never return on the emptied queue. *)
let scq_nothreshold_instance () =
  let q = SimScqNothresh.Scq.create ~capacity:1 in
  let recorder = H.recorder ~threads:2 in
  let enq v = SimScqNothresh.Scq.try_enqueue q v in
  let deq () = SimScqNothresh.Scq.try_dequeue q in
  let task i ops () = List.iter (record recorder ~thread:i ~enq ~deq) ops in
  let tasks = Array.of_list (List.mapi task [ [ Enq 1 ]; [ Deq; Deq ] ]) in
  {
    Dpor.tasks;
    check = lin_check ~capacity:2 recorder;
    invariant = None;
  }

(* --- the catalog --------------------------------------------------------- *)

let matrix_specs algorithm =
  List.map
    (fun (name, capacity, prefill, threads) ->
      {
        algorithm;
        scenario = slug name;
        descr =
          Printf.sprintf "%s, capacity %d, %d threads" name capacity
            (List.length threads);
        progress = progress_of_algorithm algorithm;
        expect = `Pass;
        build_instance = matrix_instance ~algorithm ~capacity ~prefill threads;
      })
    standard_matrix

let extra_specs =
  [
    {
      algorithm = "sharded-llsc";
      scenario = "steal-sweep-2x2";
      descr = "2 shards x capacity 2, forced steal-sweep race (PR 3 facade)";
      progress = Props.Lock_free;
      expect = `Pass;
      build_instance = sharded_instance;
    };
    {
      algorithm = "evequoz-cas";
      scenario = "batch-commit";
      descr = "batch-run enqueue commit vs concurrent dequeue";
      progress = Props.Obstruction_free;
      expect = `Pass;
      build_instance =
        cas_instance ~capacity:2 ~prefill:[] [ [ Enq_batch [ 1; 2 ] ]; [ Deq ] ];
    };
    {
      algorithm = "evequoz-cas";
      scenario = "batch-drain";
      descr = "batch-run dequeue vs concurrent enqueue at the full boundary";
      progress = Props.Obstruction_free;
      expect = `Pass;
      build_instance =
        cas_instance ~capacity:2 ~prefill:[ 7; 8 ] [ [ Deq_batch 2 ]; [ Enq 1 ] ];
    };
    {
      algorithm = "evequoz-bw";
      scenario = "batch-commit";
      descr = "batch-run enqueue commit vs concurrent dequeue (BW cells)";
      progress = Props.Lock_free;
      expect = `Pass;
      build_instance =
        bw_instance ~capacity:2 ~prefill:[] [ [ Enq_batch [ 1; 2 ] ]; [ Deq ] ];
    };
    {
      algorithm = "evequoz-bw";
      scenario = "batch-drain";
      descr =
        "batch-run dequeue vs concurrent enqueue at the full boundary (BW \
         cells)";
      progress = Props.Lock_free;
      expect = `Pass;
      build_instance =
        bw_instance ~capacity:2 ~prefill:[ 7; 8 ] [ [ Deq_batch 2 ]; [ Enq 1 ] ];
    };
    {
      algorithm = "evequoz-seg";
      scenario = "grow-during-drain";
      descr =
        "segmented: appends (pool reuse included) raced against the \
         drain-retire hand-off on capacity-2 segments";
      progress = Props.Lock_free;
      expect = `Pass;
      build_instance =
        seg_instance ~capacity:2 ~prefill:[ 1; 2 ]
          [ [ Deq; Deq; Deq ]; [ Enq 3; Enq 4 ] ];
    };
    {
      algorithm = "evequoz-seg-noretire";
      scenario = "recycled-segment-read";
      descr =
        "seeded bug: retire skips the hazard hand-off, so a stalled \
         dequeuer observes the drained segment's recycled state";
      progress = Props.Lock_free;
      expect = `Violation;
      build_instance =
        seg_instance ~direct_free:true ~capacity:2 ~prefill:[ 1; 2; 3; 4 ]
          [ [ Deq ]; [ Deq; Deq; Deq ] ];
    };
    {
      algorithm = "scq-nothreshold";
      scenario = "deq-chase-livelock";
      descr =
        "seeded bug: no threshold budget, so a missed dequeue retries \
         unconditionally — slot bumps chase fresh tickets forever";
      progress = Props.Lock_free;
      expect = `Violation;
      build_instance = scq_nothreshold_instance;
    };
    {
      algorithm = "evequoz-bw-noscan";
      scenario = "recycled-buffer-aba";
      descr =
        "seeded bug: reclamation without the announcement scan recycles a \
         reserved buffer (pointer ABA loses an item)";
      progress = Props.Lock_free;
      expect = `Violation;
      build_instance = bw_noscan_instance;
    };
    {
      algorithm = "sim-wait";
      scenario = "park-wake";
      descr = "Blocking_ec dequeue parks; enqueue wakes (no lost wakeup)";
      progress = Props.Lock_free;
      expect = `Pass;
      build_instance = sim_wait_instance;
    };
    {
      algorithm = "sim-wait";
      scenario = "lost-wakeup";
      descr = "seeded bug: commit without the Dekker re-check strands waiter";
      progress = Props.Lock_free;
      expect = `Violation;
      build_instance = lost_wakeup_instance;
    };
    {
      algorithm = "toy-blocking";
      scenario = "spin-on-dead-flag";
      descr = "seeded bug: spin on a flag nobody sets, claimed lock-free";
      progress = Props.Lock_free;
      expect = `Violation;
      build_instance = toy_blocking_instance;
    };
  ]

let specs () =
  List.concat_map matrix_specs algorithms @ extra_specs

let spec_algorithms =
  algorithms
  @ [
      "sharded-llsc"; "evequoz-bw-noscan"; "evequoz-seg-noretire";
      "scq-nothreshold"; "sim-wait"; "toy-blocking";
    ]

let find ~algorithm ~scenario =
  List.find_opt
    (fun s -> s.algorithm = algorithm && s.scenario = scenario)
    (specs ())

let scenario_of_spec s () =
  let i = s.build_instance () in
  (i.Dpor.tasks, i.Dpor.check)

(* --- counterexample dump ------------------------------------------------- *)

let describe_foot = function
  | Sim.Exec.Access { Sim.loc; kind } ->
      Printf.sprintf "%s loc#%d"
        (match kind with `Read -> "read " | `Write -> "write")
        loc
  | Sim.Exec.Pure -> "yield"
  | Sim.Exec.Unstarted -> "start"

(* Re-execute a (counterexample) schedule printing every step's task and
   access, then a short fair continuation so liveness counterexamples show
   the loop they are stuck in, then the merged timeline of protocol events
   (probe hooks) in Nbq_trace's flight-recorder rendering — task index as
   the "domain", step number as the timestamp. *)
let dump_schedule spec schedule oc =
  Sim.reset_locations ();
  let inst = spec.build_instance () in
  let ex = Sim.Exec.start inst.Dpor.tasks in
  let stepno = ref 0 and cur = ref (-1) in
  let events = ref [] in
  trace_sink :=
    Some
      (fun ev ->
        events :=
          ( !cur,
            {
              Nbq_trace.Ring.tag = Nbq_trace.Record.obs_tag ev;
              ts = !stepno;
              span = 0;
              arg = 0;
            } )
          :: !events);
  Fun.protect
    ~finally:(fun () -> trace_sink := None)
    (fun () ->
      let buf = Buffer.create 512 in
      let do_step c =
        cur := c;
        let foot = Sim.Exec.pending ex c in
        ignore (Sim.Exec.step ex c : Sim.Exec.step_info);
        Buffer.add_string buf
          (Printf.sprintf "  step %-4d task %d  %s\n" !stepno c
             (describe_foot foot));
        incr stepno
      in
      Printf.fprintf oc "interleaving for %s/%s (%d scheduled steps):\n"
        spec.algorithm spec.scenario (List.length schedule);
      List.iter
        (fun c -> if List.mem c (Sim.Exec.enabled ex) then do_step c)
        schedule;
      if Sim.Exec.enabled ex <> [] then begin
        Buffer.add_string buf "  --- fair continuation (first 48 steps) ---\n";
        let cursor = ref 0 in
        (try
           for _ = 1 to 48 do
             match Sim.Exec.enabled ex with
             | [] -> raise Exit
             | en ->
                 let t =
                   match List.find_opt (fun i -> i >= !cursor) en with
                   | Some t -> t
                   | None -> List.hd en
                 in
                 cursor := t + 1;
                 do_step t
           done
         with Exit -> ())
      end;
      output_string oc (Buffer.contents buf);
      match List.rev !events with
      | [] -> ()
      | evs ->
          output_string oc
            "  protocol events (task as dom, step as timestamp):\n";
          output_string oc (Nbq_trace.Export.timeline_of ~time_unit:"st" evs);
          flush oc)
