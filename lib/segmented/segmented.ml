(* Unbounded MPMC queue as a lock-free singly linked list of bounded
   Evequoz ring segments (ROADMAP item 1; the construction follows
   Aksenov et al., "Memory-Optimal Non-Blocking Queues", arXiv:2104.15003,
   with the paper's ring as the segment).

   Each segment is an [Evequoz_ring] run in single-lap mode: every slot
   carries at most one item per incarnation (Empty -> Item -> Consumed),
   so a segment that has accepted [capacity] items is *stickily* full — no
   Empty slot ever reappears — and a stale enqueuer can never slip an item
   into a drained segment.  Enqueuers finding the tail segment full
   CAS-append a fresh segment (one allocation amortized over the segment
   capacity; losers return theirs to a free pool); dequeuers that exhaust
   a segment swing the shared tail pointer first (head never passes tail),
   then the head pointer, and the winner hands the old segment to hazard-
   pointer reclamation so a stalled reader never observes a recycled ring.
   Freed segments are recycled (lap base advanced, slots wiped, [next]
   severed) and pooled for reuse, giving the memory bound: live segments
   <= ceil(items / capacity) + 1 plus what stalled readers pin plus the
   bounded pool.

   FIFO across segments: an item enters segment j only after segment j-1
   took its full complement (append happens only after the sticky-full
   observation), so every enqueue into j-1 precedes every enqueue into j;
   within a segment the ring's own counters give FIFO.  Dequeue's [None]
   is linearizable: a non-exhausted head segment with head = tail has no
   successor holding items (appending requires the predecessor full), and
   an exhausted head segment with [next = Nil] was the whole queue.

   The whole structure is a functor over the atomic seam and the PR-8
   [Llsc_backend.S] cell seam, so it instantiates against the
   tag-protocol CAS backend, the Blelloch-Wei backend, and the model
   checker's [Sim.Atomic] with ideal cells. *)

module Atomic_intf = Nbq_primitives.Atomic_intf
module Probe = Nbq_primitives.Probe
module Fault = Nbq_primitives.Fault
module Queue_intf = Nbq_core.Queue_intf

type stats = {
  segs_allocated : int;  (** segments ever created (including the first) *)
  segs_recycled : int;  (** reclamation hand-offs completed (pool refills) *)
  chain_length : int;  (** racy snapshot of live segments head..tail *)
  pool_size : int;  (** recycled segments awaiting reuse *)
  retired_pending : int;  (** retired segments still pinned by a reader *)
}

module Make_backend
    (A : Atomic_intf.ATOMIC)
    (B : Nbq_primitives.Llsc_backend.S)
    (P : Probe.S)
    (F : Fault.S) =
struct
  module Ring = Nbq_core.Evequoz_ring.Make_injected (B) (P) (F)
  module Hz = Nbq_reclaim.Hazard_cells.Make (A)

  type 'a seg = {
    ring : 'a Ring.t;
    id : int;
    (* Bumped on every recycle, under exclusive ownership; observable by
       tests pinning a segment to prove it was not reused under them. *)
    mutable incarnation : int;
    next : 'a link A.t;
  }

  and 'a link = Nil | Next of 'a seg

  (* Treiber free-list of recycled segments.  Cons cells are fresh
     allocations per push, so the pop CAS has no ABA to fear. *)
  type 'a pstack = Pnil | Pcons of 'a seg * 'a pstack

  type 'a t = {
    seg_capacity : int;
    head_seg : 'a seg A.t;
    tail_seg : 'a seg A.t;
    hz : 'a seg Hz.t;
    pool : 'a pstack A.t;
    free_seg : 'a seg -> unit;
    (* Seeded bug (evequoz-seg-noretire): the head-advance winner frees
       the drained segment immediately, bypassing the hazard scan — a
       stalled reader can then observe the segment's next lap. *)
    direct_free : bool;
    next_id : int A.t;
    segs_allocated : int A.t;
    segs_recycled : int A.t;
  }

  let rec pool_put pool seg =
    let cur = A.get pool in
    if not (A.compare_and_set pool cur (Pcons (seg, cur))) then
      pool_put pool seg

  let rec pool_take pool =
    match A.get pool with
    | Pnil -> None
    | Pcons (seg, rest) as cur ->
        if A.compare_and_set pool cur rest then Some seg else pool_take pool

  let pool_size pool =
    let rec go n = function Pnil -> n | Pcons (_, rest) -> go (n + 1) rest in
    go 0 (A.get pool)

  let create ?(direct_free = false) ?(retire_threshold = 2) ~capacity () =
    let seg_capacity = Queue_intf.round_capacity capacity in
    let pool = A.make Pnil in
    let segs_recycled = A.make 0 in
    (* Runs only under exclusive ownership (the hazard scan has proven no
       reader holds the segment, or — seeded bug — that proof was
       skipped).  Severing [next] before pooling matters: a reused
       segment must not drag its old chain suffix back in when it is
       re-appended. *)
    let free_seg seg =
      Ring.recycle seg.ring;
      seg.incarnation <- seg.incarnation + 1;
      A.set seg.next Nil;
      pool_put pool seg;
      ignore (A.fetch_and_add segs_recycled 1)
    in
    let hz = Hz.create ~threshold:retire_threshold ~free:free_seg () in
    let seg0 =
      {
        ring = Ring.create ~capacity:seg_capacity;
        id = 0;
        incarnation = 0;
        next = A.make Nil;
      }
    in
    {
      seg_capacity;
      head_seg = A.make seg0;
      tail_seg = A.make seg0;
      hz;
      pool;
      free_seg;
      direct_free;
      next_id = A.make 1;
      segs_allocated = A.make 1;
      segs_recycled;
    }

  let capacity t = t.seg_capacity

  let alloc_seg t =
    match pool_take t.pool with
    | Some seg -> seg
    | None ->
        ignore (A.fetch_and_add t.segs_allocated 1);
        {
          ring = Ring.create ~capacity:t.seg_capacity;
          id = A.fetch_and_add t.next_id 1;
          incarnation = 0;
          next = A.make Nil;
        }

  (* --- Handles ----------------------------------------------------------

     A handle is one hazard record plus a cached per-segment ring handle
     per side.  The ring registries are per-segment, so without the cache
     every operation would pay a full Register/Deregister on the tag
     backend; with it the steady state inside one segment is exactly the
     single ring's cost (one ReRegister per op).  A cached handle to a
     recycled ring stays valid — recycling never touches the registry —
     so the cache is keyed on segment identity alone. *)

  type 'a cached = {
    mutable cseg : 'a seg option;
    mutable ch : 'a Ring.handle option;
  }

  type 'a handle = {
    hrec : 'a seg Hz.record;
    (* Owner-local shadow of what [hrec]'s slot holds.  Only the owning
       thread writes the slot, so this plain field is always exact and
       the continuous-protection fast path needs no atomic read. *)
    mutable hseg : 'a seg option;
    enq : 'a cached;
    deq : 'a cached;
  }

  let register t =
    {
      hrec = Hz.acquire t.hz;
      hseg = None;
      enq = { cseg = None; ch = None };
      deq = { cseg = None; ch = None };
    }

  let drop_cache c =
    (match c.ch with Some rh -> Ring.deregister rh | None -> ());
    c.cseg <- None;
    c.ch <- None

  let deregister t h =
    drop_cache h.enq;
    drop_cache h.deq;
    h.hseg <- None;
    Hz.release t.hz h.hrec

  let ring_handle c seg =
    match (c.cseg, c.ch) with
    | Some s, Some rh when s == seg -> rh
    | _ ->
        (match c.ch with Some rh -> Ring.deregister rh | None -> ());
        let rh = Ring.register seg.ring in
        c.cseg <- Some seg;
        c.ch <- Some rh;
        rh

  (* --- Operations -------------------------------------------------------

     Both sides open with the standard hazard handshake: read the shared
     pointer, publish it in the hazard slot, re-read and retry if it
     moved.  A segment that re-validates cannot be freed under us; an
     ABA on the validate (freed, recycled, re-appended, and current
     again) is benign because the segment then legitimately *is* the
     current one, in its new incarnation.

     The handshake has a continuous-protection fast path: successful
     operations leave the hazard published, so when the next operation
     reads the same segment out of the shared pointer — the steady state
     while the chain sits in one segment — protection never lapsed and
     the publish store (a full fence) plus the revalidating re-read are
     both skipped.  [h.hseg] is the owner's plain shadow of the slot
     (only the owner writes it), so the fast path costs one physical
     comparison and no atomic access.  The slot then pins at most one
     live segment per idle handle, which reclamation already tolerates
     (that is what hazards are), and [deregister]/[release] clears
     it. *)

  let covered h ptr seg =
    (match h.hseg with Some s -> s == seg | None -> false)
    ||
    (Hz.protect h.hrec seg;
     h.hseg <- Some seg;
     A.get ptr == seg)

  let rec enqueue_with t h x =
    let seg = A.get t.tail_seg in
    if not (covered h t.tail_seg seg) then enqueue_with t h x
    else if Ring.fill_with seg.ring (ring_handle h.enq seg) x then true
    else begin
      (* Sticky full: this segment will never take another item.  Link a
         successor if none exists, swing the tail, retry there.  The
         hazard still covers [seg], so its [next] cannot be severed by a
         recycle while we touch it; and [next = Nil] implies the shared
         tail has not passed [seg] (it moves only along existing links),
         so a successful link CAS is never on a retired segment. *)
      F.hit Fault.Seg_append;
      P.tail_help ();
      (match A.get seg.next with
      | Nil ->
          let ns = alloc_seg t in
          if not (A.compare_and_set seg.next Nil (Next ns)) then
            (* Lost the append race; the fresh segment is untouched. *)
            pool_put t.pool ns
      | Next _ -> ());
      (match A.get seg.next with
      | Next ns -> ignore (A.compare_and_set t.tail_seg seg ns)
      | Nil -> ());
      enqueue_with t h x
    end

  let rec dequeue_with t h =
    let seg = A.get t.head_seg in
    if not (covered h t.head_seg seg) then dequeue_with t h
    else
      match Ring.take_with seg.ring (ring_handle h.deq seg) with
      | Some _ as r -> r
      | None ->
          if Ring.lap_exhausted seg.ring then (
            match A.get seg.next with
            | Nil ->
                (* Exhausted and last: at the instant [next] read [Nil]
                   every enqueued item had been consumed — empty. *)
                None
            | Next ns ->
                F.hit Fault.Seg_retire;
                P.head_help ();
                (* Tail first: head must never pass tail, or enqueuers
                   could be steered onto a retired segment. *)
                ignore (A.compare_and_set t.tail_seg seg ns);
                if A.compare_and_set t.head_seg seg ns then begin
                  (* We unlinked [seg]; hand it to reclamation.  Our own
                     hazard is cleared first so it cannot pin it. *)
                  Hz.clear h.hrec;
                  h.hseg <- None;
                  if t.direct_free then t.free_seg seg
                  else Hz.retire t.hz h.hrec seg
                end;
                dequeue_with t h)
          else
            (* Not exhausted: the ring's own head = tail read was the
               empty witness (no successor can hold items while this
               segment is unfilled). *)
            None

  (* Racy chain walk; exact when quiescent.  Termination: a freed
     segment's [next] is [Nil], and a momentary cycle cannot exist (a
     segment is severed before it can be re-appended). *)
  let length t =
    let rec go acc seg =
      let acc = acc + Ring.length seg.ring in
      match A.get seg.next with Nil -> acc | Next ns -> go acc ns
    in
    go 0 (A.get t.head_seg)

  let chain_length t =
    let rec go n seg =
      match A.get seg.next with Nil -> n | Next ns -> go (n + 1) ns
    in
    go 1 (A.get t.head_seg)

  let stats t =
    {
      segs_allocated = A.get t.segs_allocated;
      segs_recycled = A.get t.segs_recycled;
      chain_length = chain_length t;
      pool_size = pool_size t.pool;
      retired_pending = Hz.pending t.hz;
    }

  (* --- Test hooks ------------------------------------------------------- *)

  (* Pin the current head segment through the handle's hazard slot (the
     same protect/validate handshake the operations use) so a test can
     prove reclamation never recycles it while held. *)
  let rec pin_head t h =
    let seg = A.get t.head_seg in
    Hz.protect h.hrec seg;
    h.hseg <- Some seg;
    if A.get t.head_seg != seg then pin_head t h else seg

  let unpin h =
    Hz.clear h.hrec;
    h.hseg <- None
  let seg_incarnation seg = seg.incarnation
  let seg_id seg = seg.id
  let seg_protected t seg = Hz.protected t.hz seg
end

(* --- Backend conveniences ------------------------------------------------ *)

(* The paper's Fig. 5 tag-variable CAS protocol as the cell seam. *)
module Make_cas (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
  Make_backend (A) (Nbq_primitives.Llsc_cas.Backend_injected (A) (P) (F)) (P)
    (F)

(* Blelloch-Wei constant-time LL/SC as the cell seam. *)
module Make_bw (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
  Make_backend (A) (Nbq_primitives.Llsc_bw.Make_injected (A) (P) (F)) (P) (F)

module Make_probed_cas (A : Atomic_intf.ATOMIC) (P : Probe.S) =
  Make_cas (A) (P) (Fault.Noop)

module Make_probed_bw (A : Atomic_intf.ATOMIC) (P : Probe.S) =
  Make_bw (A) (P) (Fault.Noop)

(* --- The domain-local implicit-handle layer, over any core --------------- *)

module type CORE = sig
  type 'a t
  type 'a handle

  val create :
    ?direct_free:bool -> ?retire_threshold:int -> capacity:int -> unit -> 'a t

  val register : 'a t -> 'a handle
  val deregister : 'a t -> 'a handle -> unit
  val enqueue_with : 'a t -> 'a handle -> 'a -> bool
  val dequeue_with : 'a t -> 'a handle -> 'a option
  val length : 'a t -> int
end

(* Mirrors [Evequoz_cas.With_implicit_handles], which cannot be reused
   directly: its CORE contract demands the single ring's audit and
   head/tail indices, none of which a segment chain has.  The result
   satisfies [Queue_intf.CONC] structurally (unbounded: [try_enqueue]
   never returns [false]). *)
module Conc (N : sig
  val name : string
end)
(Core : CORE) =
struct
  let name = N.name
  (* Native batches: they amortize the DLS handle lookup over the run. *)
  let caps = Queue_intf.Caps.(with_batch unbounded)
  let bounded = false

  type 'a t = {
    core : 'a Core.t;
    implicit : 'a Core.handle option ref Domain.DLS.key;
  }

  let make ?direct_free ?retire_threshold ~capacity () =
    {
      core = Core.create ?direct_free ?retire_threshold ~capacity ();
      implicit = Domain.DLS.new_key (fun () -> ref None);
    }

  let create ~capacity = make ~capacity ()
  let core t = t.core

  let implicit_handle t =
    let cache = Domain.DLS.get t.implicit in
    match !cache with
    | Some h -> h
    | None ->
        let h = Core.register t.core in
        cache := Some h;
        h

  let deregister_domain t =
    let cache = Domain.DLS.get t.implicit in
    match !cache with
    | Some h ->
        Core.deregister t.core h;
        cache := None
    | None -> ()

  let try_enqueue t x = Core.enqueue_with t.core (implicit_handle t) x
  let try_dequeue t = Core.dequeue_with t.core (implicit_handle t)

  (* Batches resolve the DLS handle cache once; each item still runs the
     full single-item protocol, so linearization is that of a loop of
     singles. *)
  let try_enqueue_batch t items =
    let n = Array.length items in
    if n = 0 then 0
    else begin
      let h = implicit_handle t in
      let i = ref 0 in
      while
        !i < n && Core.enqueue_with t.core h (Array.unsafe_get items !i)
      do
        incr i
      done;
      !i
    end

  let try_dequeue_batch t k =
    if k <= 0 then []
    else begin
      let h = implicit_handle t in
      let rec go acc left =
        if left <= 0 then List.rev acc
        else
          match Core.dequeue_with t.core h with
          | Some x -> go (x :: acc) (left - 1)
          | None -> List.rev acc
      in
      go [] k
    end

  let length t = Core.length t.core
end

(* --- Default instantiations: real atomics, no probes --------------------- *)

module Cas_core = Make_cas (Atomic_intf.Real) (Probe.Noop) (Fault.Noop)

module Cas =
  Conc
    (struct
      let name = "evequoz-seg"
    end)
    (Cas_core)

module Bw_core = Make_bw (Atomic_intf.Real) (Probe.Noop) (Fault.Noop)

module Bw =
  Conc
    (struct
      let name = "evequoz-seg-bw"
    end)
    (Bw_core)
