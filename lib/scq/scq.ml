(** SCQ — Nikolaev's scalable circular queue family (arXiv:1908.04511),
    with an opt-in wCQ-style (arXiv:2201.02179) slow-path helping mode for
    the enqueue side.

    Where the paper's 2008 queues arbitrate every slot with LL/SC (real or
    CAS-simulated), SCQ hands out {e tickets} with fetch-and-add: a ticket
    [T] names slot [T mod 2n] on cycle [T / 2n], and a slot accepts an item
    only from a ticket of a strictly newer cycle than the one stored in the
    slot itself.  A dequeuer whose reserved slot turns out empty does not
    spin on it — it invalidates the slot for its own cycle (or marks a
    parked item {e unsafe}) and moves on.  Two devices make this
    livelock-free and linearizable at the full/empty boundary:

    - {b catchup}: a dequeuer that overran the tail drags [tail] up to
      [head] so enqueuers never fight a stale tail;
    - {b threshold}: an upper bound (3n-1 for a ring of 2n slots holding at
      most n items) on how many failed dequeue attempts can occur after the
      last enqueue before emptiness is {e genuine}.  Every successful
      enqueue resets it; every failed dequeue attempt decrements it; a
      negative threshold is a linearizable "empty".

    The ring always has [2n] slots for at most [n] items, so an enqueue
    that holds a {e credit} never fails.  Exact bounded capacity therefore
    comes from pairing rings, as in the paper's SCQD:

    - {!Make_full.Scq} ("scq" / "scq-wcq"): a boxed-entry ring carrying the
      values directly, plus a packed-int index ring used as a credit pool —
      "full" is linearized by the credit ring's own threshold.
    - {!Make_full.Scqd} ("scq-d"): the paper's SCQD — two packed-int index
      rings (free queue [fq] prefilled with [0..n-1], allocated queue [aq])
      around a plain data array, keeping the hot path allocation-free.

    Everything is functorized over {!Nbq_primitives.Atomic_intf.ATOMIC} x
    probe x fault like the Evequoz rings, so the identical code runs in
    production and under [Sim]/DPOR.  Probe mapping (no new hooks):
    [sc_fail] = a slot CAS lost a race, [tail_help] = a catchup iteration,
    [head_help] = a threshold reset on behalf of stalled dequeuers.  Fault
    windows: [Faa_cycle] (ticket taken, slot not yet read), [Threshold_reset]
    (item installed, threshold not yet restored), [Catchup] (inside the
    tail-repair loop). *)

module Probe = Nbq_primitives.Probe
module Fault = Nbq_primitives.Fault
module Atomic_intf = Nbq_primitives.Atomic_intf

(** Compile-time knobs.  [threshold = false] is the seeded modelcheck bug
    ("scq-nothreshold"): no retry budget at all, so the dequeuer's miss
    path treats every miss as a race it merely lost and goes again —
    never conceding emptiness.  An empty-side dequeuer then chases the
    enqueuer's fresh tickets, and once they stop, its own slot bumps,
    forever: the livelock shape the threshold counter exists to cut off,
    and the one the DPOR liveness layer must convict.  [helping = true]
    turns on the wCQ-style announcement table on the boxed ring's enqueue
    side; [slow_after] is how many fast-path tickets an enqueuer burns
    before announcing. *)
module type CONFIG = sig
  val threshold : bool
  val helping : bool
  val slow_after : int
end

module Default_config : CONFIG = struct
  let threshold = true
  let helping = false
  let slow_after = 4
end

module Helping_config : CONFIG = struct
  let threshold = true
  let helping = true
  let slow_after = 4
end

module Make_full
    (C : CONFIG)
    (A : Atomic_intf.ATOMIC)
    (P : Probe.S)
    (F : Fault.S) =
struct
  (* ----------------------------------------------------------------- *)
  (* Packed-int index ring: cycle | safe | index in one immediate int. *)
  (* ----------------------------------------------------------------- *)

  (** The SCQ ring specialized to small-int payloads (array indices), the
      shape the paper's SCQD uses for both [fq] and [aq].  A ring for
      capacity [n] (power of two) has [2n] slots; an entry packs
      [(cycle << (sbits+1)) | (safe << sbits) | index] with
      [sbits = log2 (2n)], and the reserved index [2n-1] is ⊥ (data
      indices are [< n], so they never collide with it). *)
  module Iring = struct
    type t = {
      entries : int A.t array;
      head : int A.t;
      tail : int A.t;
      threshold : int A.t;
      mask : int;  (** [2n - 1] *)
      sbits : int;  (** [log2 (2n)]: ticket bits below the cycle *)
      threshold_max : int;  (** [3n - 1] *)
    }

    let bot t = t.mask
    let pack t ~cycle ~safe ~index =
      (cycle lsl (t.sbits + 1)) lor ((if safe then 1 else 0) lsl t.sbits)
      lor index

    let ecycle t e = e lsr (t.sbits + 1)
    let esafe t e = (e lsr t.sbits) land 1 = 1
    let eindex t e = e land t.mask
    let cycle_of t tkt = tkt lsr t.sbits
    let pos_of t tkt = tkt land t.mask

    (* [prefill] installs indices [0..prefill-1] directly as cycle-1
       entries (head at cycle 1, tail past them), so [create] performs no
       CAS/FAA traffic and is safe to call outside a simulation run. *)
    let create ~n ~prefill =
      let m = 2 * n in
      let sbits =
        let rec go b = if 1 lsl b >= m then b else go (b + 1) in
        go 1
      in
      let t =
        {
          entries = [||];
          head = A.make m;
          tail = A.make (m + prefill);
          threshold =
            A.make (if prefill = 0 then -1 else (3 * n) - 1);
          mask = m - 1;
          sbits;
          threshold_max = (3 * n) - 1;
        }
      in
      let entries =
        Array.init m (fun j ->
            A.make
              (if j < prefill then pack t ~cycle:1 ~safe:true ~index:j
               else pack t ~cycle:0 ~safe:true ~index:t.mask))
      in
      { t with entries }

    (* Paper Fig. 5, catchup: drag [tail] up to [head] after a dequeuer
       overran it, so enqueuers never test fullness against a stale tail. *)
    let catchup t tl hd =
      let rec go tl =
        F.hit Fault.Catchup;
        if not (A.compare_and_set t.tail tl hd) then begin
          P.tail_help ();
          let tl = A.get t.tail in
          if tl < hd then go tl
        end
      in
      go tl

    let reset_threshold t =
      if C.threshold && A.get t.threshold <> t.threshold_max then begin
        F.hit Fault.Threshold_reset;
        P.head_help ();
        A.set t.threshold t.threshold_max
      end

    (** Insert [index].  Never fails: the ring has [2n] slots and the
        callers (credit pools, SCQD) keep at most [n] indices inside. *)
    let enqueue t index =
      let rec fresh () =
        let tkt = A.fetch_and_add t.tail 1 in
        F.hit Fault.Faa_cycle;
        with_ticket tkt (A.get t.entries.(pos_of t tkt))
      and with_ticket tkt e =
        let cyc = cycle_of t tkt and j = pos_of t tkt in
        if
          ecycle t e < cyc
          && eindex t e = bot t
          && (esafe t e || A.get t.head <= tkt)
        then
          if
            A.compare_and_set t.entries.(j) e
              (pack t ~cycle:cyc ~safe:true ~index)
          then reset_threshold t
          else begin
            P.sc_fail ();
            with_ticket tkt (A.get t.entries.(j))
          end
        else fresh ()
      in
      fresh ()

    (** Remove the oldest index, or [None] on a linearizable "empty". *)
    let dequeue t =
      if C.threshold && A.get t.threshold < 0 then None
      else begin
        let rec fresh () =
          let tkt = A.fetch_and_add t.head 1 in
          F.hit Fault.Faa_cycle;
          attempt tkt
        and attempt tkt =
          let j = pos_of t tkt and cyc = cycle_of t tkt in
          let e = A.get t.entries.(j) in
          if ecycle t e = cyc then consume tkt e
          else begin
            (* Not ours: bump an empty slot to our cycle (its enqueuer's
               ticket is dead) or mark a parked older-cycle item unsafe,
               then account the miss. *)
            let keep =
              if eindex t e = bot t then
                pack t ~cycle:cyc ~safe:(esafe t e) ~index:(bot t)
              else pack t ~cycle:(ecycle t e) ~safe:false ~index:(eindex t e)
            in
            if ecycle t e < cyc && not (A.compare_and_set t.entries.(j) e keep)
            then begin
              P.sc_fail ();
              attempt tkt
            end
            else miss tkt
          end
        and consume tkt e =
          (* The paper clears the index with a fetch-or; emulated with a
             CAS loop (only the safe bit can change under us: a newer-cycle
             dequeuer marking the parked item unsafe). *)
          let j = pos_of t tkt and cyc = cycle_of t tkt in
          if
            A.compare_and_set t.entries.(j) e
              (pack t ~cycle:cyc ~safe:(esafe t e) ~index:(bot t))
          then Some (eindex t e)
          else begin
            P.sc_fail ();
            consume tkt (A.get t.entries.(j))
          end
        and miss tkt =
          let tl = A.get t.tail in
          if tl <= tkt + 1 then begin
            catchup t tl (tkt + 1);
            if C.threshold then begin
              ignore (A.fetch_and_add t.threshold (-1) : int);
              None
            end
            else fresh () (* seeded: no budget, no empty verdict *)
          end
          else if C.threshold then
            if A.fetch_and_add t.threshold (-1) <= 0 then None else fresh ()
          else fresh ()
        in
        fresh ()
      end
  end

  (* ----------------------------------------------------------------- *)
  (* Boxed-entry ring: same protocol, entries carry values (and, in     *)
  (* helping mode, announced enqueue requests) behind one pointer CAS.  *)
  (* ----------------------------------------------------------------- *)

  module Bring = struct
    (* A slow-path enqueue request.  [state] is 0 while pending; the first
       CAS to [ticket + 1] decides which installed copy of the request is
       the real item (every other copy is retracted by whoever meets it). *)
    type 'a req = { value : 'a; state : int A.t }

    type 'a content = Vacant | Item of 'a | Req of 'a req

    type 'a entry = { cycle : int; safe : bool; c : 'a content }

    type 'a t = {
      entries : 'a entry A.t array;
      head : int A.t;
      tail : int A.t;
      threshold : int A.t;
      mask : int;
      sbits : int;
      threshold_max : int;
      announce : 'a req option A.t array;  (** empty unless [C.helping] *)
    }

    let cycle_of t tkt = tkt lsr t.sbits
    let pos_of t tkt = tkt land t.mask

    let announce_slots = 8

    let create ~n =
      let m = 2 * n in
      let sbits =
        let rec go b = if 1 lsl b >= m then b else go (b + 1) in
        go 1
      in
      {
        entries =
          Array.init m (fun _ ->
              A.make { cycle = 0; safe = true; c = Vacant });
        head = A.make m;
        tail = A.make m;
        threshold = A.make (-1);
        mask = m - 1;
        sbits;
        threshold_max = (3 * n) - 1;
        announce =
          (if C.helping then Array.init announce_slots (fun _ -> A.make None)
           else [||]);
      }

    let catchup t tl hd =
      let rec go tl =
        F.hit Fault.Catchup;
        if not (A.compare_and_set t.tail tl hd) then begin
          P.tail_help ();
          let tl = A.get t.tail in
          if tl < hd then go tl
        end
      in
      go tl

    let reset_threshold t =
      if C.threshold && A.get t.threshold <> t.threshold_max then begin
        F.hit Fault.Threshold_reset;
        P.head_help ();
        A.set t.threshold t.threshold_max
      end

    (* One install loop over fresh tickets: try to plant [content] in some
       slot, spending at most [budget] tickets ([max_int] = forever).
       Returns the winning ticket, or [None] if the budget ran out. *)
    let install t content ~budget =
      let rec fresh budget =
        if budget <= 0 then None
        else begin
          let tkt = A.fetch_and_add t.tail 1 in
          F.hit Fault.Faa_cycle;
          with_ticket budget tkt (A.get t.entries.(pos_of t tkt))
        end
      and with_ticket budget tkt e =
        let cyc = cycle_of t tkt and j = pos_of t tkt in
        if
          e.cycle < cyc && e.c = Vacant && (e.safe || A.get t.head <= tkt)
        then
          if
            A.compare_and_set t.entries.(j) e
              { cycle = cyc; safe = true; c = content }
          then begin
            reset_threshold t;
            Some tkt
          end
          else begin
            P.sc_fail ();
            with_ticket budget tkt (A.get t.entries.(j))
          end
        else fresh (if budget = max_int then budget else budget - 1)
      in
      fresh budget

    (* Remove a request copy we know lost (or that we planted and lost the
       state race for): swing its slot to consumed-Vacant at its own cycle
       so the ticket owner falls through cleanly. *)
    let rec retract t r ~tkt =
      let j = pos_of t tkt and cyc = cycle_of t tkt in
      let e = A.get t.entries.(j) in
      match e.c with
      | Req r' when r' == r && e.cycle = cyc ->
          if not (A.compare_and_set t.entries.(j) e { e with c = Vacant })
          then begin
            P.sc_fail ();
            retract t r ~tkt
          end
      | _ -> ()  (* someone else already resolved this copy *)

    (* Drive an announced request one ticket forward.  True once the
       request is settled (by us or anyone else). *)
    let push_req t r ~budget =
      if A.get r.state <> 0 then true
      else
        match install t (Req r) ~budget with
        | None -> A.get r.state <> 0
        | Some tkt ->
            if A.compare_and_set r.state 0 (tkt + 1) then true
            else begin
              (* Another copy won while ours was in flight: ours is junk. *)
              retract t r ~tkt;
              true
            end

    let help t =
      Array.iter
        (fun slot ->
          match A.get slot with
          | Some r when A.get r.state = 0 ->
              ignore (push_req t r ~budget:2 : bool)
          | _ -> ())
        t.announce

    let claim_announce t r =
      let rec scan i =
        if i >= Array.length t.announce then None
        else if
          A.get t.announce.(i) = None
          && A.compare_and_set t.announce.(i) None (Some r)
        then Some i
        else scan (i + 1)
      in
      scan 0

    (** Insert [v].  Never fails (capacity is enforced by the credit ring
        around this one).  In helping mode the caller first helps other
        announced enqueuers, then burns [C.slow_after] fast-path tickets
        before announcing its own request. *)
    let enqueue t v =
      if not C.helping then
        ignore (install t (Item v) ~budget:max_int : int option)
      else begin
        help t;
        match install t (Item v) ~budget:C.slow_after with
        | Some _ -> ()
        | None -> (
            let r = { value = v; state = A.make 0 } in
            match claim_announce t r with
            | None ->
                (* No free announcement slot: stay on the fast path. *)
                ignore (install t (Item v) ~budget:max_int : int option)
            | Some slot ->
                while not (push_req t r ~budget:1) do
                  ()
                done;
                A.set t.announce.(slot) None)
      end

    (** Remove the oldest value, or [None] on a linearizable "empty". *)
    let dequeue t =
      if C.threshold && A.get t.threshold < 0 then None
      else begin
        let rec fresh () =
          let tkt = A.fetch_and_add t.head 1 in
          F.hit Fault.Faa_cycle;
          attempt tkt
        and attempt tkt =
          let j = pos_of t tkt and cyc = cycle_of t tkt in
          let e = A.get t.entries.(j) in
          if e.cycle = cyc then
            match e.c with
            | Item v -> consume tkt e v
            | Vacant ->
                (* Our slot was burned by a retracted request copy: no item
                   travels on this ticket.  Crucially this miss must NOT
                   spend threshold budget — burned slots are outside the
                   3n-1 accounting, and charging them can declare "empty"
                   with items still parked (a real deadlock when every
                   producer is blocked on credits and nobody resets). *)
                miss_neutral tkt
            | Req r -> resolve tkt e r
          else begin
            let keep =
              match e.c with
              | Vacant -> { cycle = cyc; safe = e.safe; c = Vacant }
              | _ -> { e with safe = false }
            in
            if e.cycle < cyc && not (A.compare_and_set t.entries.(j) e keep)
            then begin
              P.sc_fail ();
              attempt tkt
            end
            else miss tkt
          end
        and consume tkt e v =
          let j = pos_of t tkt and cyc = cycle_of t tkt in
          if
            A.compare_and_set t.entries.(j) e
              { cycle = cyc; safe = e.safe; c = Vacant }
          then Some v
          else begin
            P.sc_fail ();
            let e = A.get t.entries.(j) in
            match e.c with
            | Item v -> consume tkt e v
            | _ -> attempt tkt
          end
        and resolve tkt e r =
          (* A request copy sits in our slot.  Claim it for our ticket if
             it is still pending; consume it if our ticket won; retract it
             (and fall through) if another copy won. *)
          let s = A.get r.state in
          if s = 0 then
            if A.compare_and_set r.state 0 (tkt + 1) then consume tkt e r.value
            else resolve tkt e r
          else if s = tkt + 1 then consume tkt e r.value
          else begin
            retract t r ~tkt;
            miss_neutral tkt
          end
        and miss tkt =
          let tl = A.get t.tail in
          if tl <= tkt + 1 then begin
            catchup t tl (tkt + 1);
            if C.threshold then begin
              ignore (A.fetch_and_add t.threshold (-1) : int);
              None
            end
            else fresh () (* seeded: no budget, no empty verdict *)
          end
          else if C.threshold then
            if A.fetch_and_add t.threshold (-1) <= 0 then None else fresh ()
          else fresh ()
        and miss_neutral tkt =
          (* Like [miss], but without the threshold decrement: used for
             request-retraction artifacts, which terminate via the
             tail-catchup exit rather than the threshold budget. *)
          let tl = A.get t.tail in
          if tl <= tkt + 1 then begin
            catchup t tl (tkt + 1);
            if C.threshold then
              ignore (A.fetch_and_add t.threshold (-1) : int);
            None
          end
          else fresh ()
        in
        fresh ()
      end
  end

  (* ----------------------------------------------------------------- *)
  (* The bounded queues: pairings with exact capacity semantics.       *)
  (* ----------------------------------------------------------------- *)

  (** "scq" (or "scq-wcq" in helping mode): values ride the boxed ring;
      boundedness comes from a packed-int credit ring seeded with [n]
      interchangeable credits, whose own threshold linearizes "full". *)
  module Scq = struct
    type 'a t = {
      fq : Iring.t;  (** credit pool: holds [tokens-left] many indices *)
      ring : 'a Bring.t;
      size : int A.t;
      cap : int;
    }

    let name = if C.helping then "scq-wcq" else "scq"

    let create ~capacity =
      let n = Nbq_core.Queue_intf.round_capacity capacity in
      {
        fq = Iring.create ~n ~prefill:n;
        ring = Bring.create ~n;
        size = A.make 0;
        cap = n;
      }

    let capacity t = t.cap

    let try_enqueue t v =
      match Iring.dequeue t.fq with
      | None -> false  (* the credit ring's threshold linearizes "full" *)
      | Some _credit ->
          Bring.enqueue t.ring v;
          ignore (A.fetch_and_add t.size 1 : int);
          true

    let try_dequeue t =
      match Bring.dequeue t.ring with
      | None -> None
      | Some v ->
          (* Credits are interchangeable: return a constant one only after
             the item left the ring, so the ring never holds more than
             [cap] items. *)
          Iring.enqueue t.fq 0;
          ignore (A.fetch_and_add t.size (-1) : int);
          Some v

    let length t = max 0 (A.get t.size)
  end

  (** "scq-d": the paper's SCQD — index rings around a plain data array.
      [fq] starts holding every index; an enqueue moves an index from [fq]
      through the data array into [aq], a dequeue moves it back.  Slot [i]
      of [data] is always owned by exactly one side (the index is in
      transit between the rings), so the plain accesses are race-free. *)
  module Scqd = struct
    type 'a t = {
      fq : Iring.t;
      aq : Iring.t;
      data : 'a option array;
      size : int A.t;
      cap : int;
    }

    let name = "scq-d"

    let create ~capacity =
      let n = Nbq_core.Queue_intf.round_capacity capacity in
      {
        fq = Iring.create ~n ~prefill:n;
        aq = Iring.create ~n ~prefill:0;
        data = Array.make n None;
        size = A.make 0;
        cap = n;
      }

    let capacity t = t.cap

    let try_enqueue t v =
      match Iring.dequeue t.fq with
      | None -> false
      | Some i ->
          t.data.(i) <- Some v;
          Iring.enqueue t.aq i;
          ignore (A.fetch_and_add t.size 1 : int);
          true

    let try_dequeue t =
      match Iring.dequeue t.aq with
      | None -> None
      | Some i -> (
          match t.data.(i) with
          | Some v ->
              t.data.(i) <- None;
              Iring.enqueue t.fq i;
              ignore (A.fetch_and_add t.size (-1) : int);
              Some v
          | None -> failwith "scq-d: index ring handed out an empty slot")

    let length t = max 0 (A.get t.size)
  end
end

module Make_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
  Make_full (Default_config) (A) (P) (F)

module Make_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) =
  Make_injected (A) (P) (Fault.Noop)

module Make (A : Atomic_intf.ATOMIC) = Make_probed (A) (Probe.Noop)

(** The wCQ-style helping instantiations, same cascade. *)
module Make_wcq_injected (A : Atomic_intf.ATOMIC) (P : Probe.S) (F : Fault.S) =
  Make_full (Helping_config) (A) (P) (F)

module Make_wcq_probed (A : Atomic_intf.ATOMIC) (P : Probe.S) =
  Make_wcq_injected (A) (P) (Fault.Noop)

module Make_wcq (A : Atomic_intf.ATOMIC) = Make_wcq_probed (A) (Probe.Noop)
