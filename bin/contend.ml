(* Contention profile: sweep the thread count on one queue with the
   observability hub attached and report how the internal friction —
   SC failures, Tail/Head helping, tag re-registrations — scales alongside
   throughput.  This is the mechanism behind the Figure 6 slowdowns made
   visible: as preemption and interleaving grow, SC failures and helping
   rise, and the per-op cost follows. *)

open Cmdliner
open Nbq_harness
open Nbq_obs

type row = {
  threads : int;
  mops : float;  (* successful enqueue+dequeue pairs per second, millions *)
  sc_fail_per_kop : float;
  rereg_per_kop : float;
  helps_per_kop : float;  (* tail_help + head_help *)
  steals_per_kop : float; (* sharded front-ends: foreign-shard completions *)
  p99_enq_ns : float;
  snapshot : Metrics.snapshot;
  mean_seconds : float;
  measurement : Runner.measurement;
}

let sweep ~queue ~threads_list ~runs ~workload =
  List.map
    (fun threads ->
      let metrics = Metrics.create () in
      let cfg = { Runner.threads; runs; workload; capacity = None } in
      let m = Runner.measure ~metrics (Registry.find queue) cfg in
      let s = Option.value ~default:Metrics.empty_snapshot m.Runner.metrics in
      let ops_per_run =
        (* enqueue_batch + dequeue_batch operations per iteration, all of
           which eventually succeed (the workload spins on full/empty). *)
        float_of_int
          (threads * workload.Workload.iterations
          * (workload.Workload.enqueue_batch + workload.Workload.dequeue_batch))
      in
      let total_ops = ops_per_run *. float_of_int runs in
      let per_kop c = 1000.0 *. float_of_int c /. total_ops in
      let mean = m.Runner.summary.Stats.mean in
      {
        threads;
        mops = (if mean > 0.0 then ops_per_run /. mean /. 1e6 else nan);
        sc_fail_per_kop = per_kop (Metrics.get s Event.Sc_fail);
        rereg_per_kop = per_kop (Metrics.get s Event.Tag_reregister);
        helps_per_kop =
          per_kop (Metrics.get s Event.Tail_help + Metrics.get s Event.Head_help);
        steals_per_kop = per_kop (Metrics.get s Event.Shard_steal);
        p99_enq_ns = Histogram.percentile_ns s.Metrics.enq 0.99;
        snapshot = s;
        mean_seconds = mean;
        measurement = m;
      })
    threads_list

let run_queue queue ~threads_list ~runs ~workload ~csv ~with_plot ~with_trace =
  Printf.eprintf "# contend: %s over threads [%s], %d runs\n%!" queue
    (String.concat "; " (List.map string_of_int threads_list))
    runs;
  let rows = sweep ~queue ~threads_list ~runs ~workload in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Contention profile: %s [%d iterations/thread, %d runs]" queue
           workload.Workload.iterations runs)
      ~columns:
        [
          "threads"; "Mops/s"; "sc-fail/kop"; "rereg/kop"; "helps/kop";
          "steals/kop"; "p99-enq-ns";
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          string_of_int r.threads;
          Table.cell_float r.mops;
          Table.cell_float r.sc_fail_per_kop;
          Table.cell_float r.rereg_per_kop;
          Table.cell_float r.helps_per_kop;
          Table.cell_float r.steals_per_kop;
          (if Float.is_nan r.p99_enq_ns then "-"
           else Printf.sprintf "%.0f" r.p99_enq_ns);
        ])
    rows;
  Fig_common.emit ~csv t;
  if with_plot then begin
    let series label f =
      {
        Ascii_plot.label;
        points = List.map (fun r -> (float_of_int r.threads, f r)) rows;
      }
    in
    print_string
      (Ascii_plot.render ~title:(queue ^ ": throughput vs threads")
         ~x_label:"threads" ~y_label:"Mops/s"
         [ series "Mops/s" (fun r -> r.mops) ]);
    print_newline ();
    print_string
      (Ascii_plot.render ~title:(queue ^ ": contention events vs threads")
         ~x_label:"threads" ~y_label:"events/kop"
         [
           series "sc-fail" (fun r -> r.sc_fail_per_kop);
           series "rereg" (fun r -> r.rereg_per_kop);
           series "helps" (fun r -> r.helps_per_kop);
         ]);
    print_newline ()
  end;
  let sink = Sink.open_jsonl (Sink.default_path ~prefix:"contend" ()) in
  List.iter
    (fun r ->
      Sink.write_snapshot sink
        ~meta:
          [
            ("queue", Sink.String queue);
            ("threads", Sink.Int r.threads);
            ("iterations", Sink.Int workload.Workload.iterations);
            ("runs", Sink.Int runs);
            ("mean_seconds", Sink.Float r.mean_seconds);
            ("mops", Sink.Float r.mops);
          ]
        r.snapshot)
    rows;
  (match Sink.path sink with
  | Some p -> Printf.printf "metrics written to %s\n" p
  | None -> ());
  Sink.close sink;
  Fig_common.write_summary
    (List.map
       (fun r ->
         Bench_summary.row_of_measurement ~bench:"contend" r.measurement)
       rows);
  if with_trace then
    let threads =
      List.fold_left max 1 (List.map (fun r -> r.threads) rows)
    in
    Fig_common.trace_pass ~prefix:"contend"
      ~impls:[ Registry.find queue ]
      ~threads ~runs ~workload

(* The sweep accepts several queues so one invocation can profile a gap —
   e.g. [-q evequoz-cas,scq] shows where the 2008 ring's friction
   (sc-fail = failed cell swaps / SCQ slot misses, helps = helping and
   catchup) diverges from SCQ's on the same load. *)
let run queues_csv threads_csv runs scale csv max_threads with_plot with_trace
    =
  let workload = Fig_common.workload_of_scale scale in
  let parse_thread s =
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ ->
        Printf.eprintf
          "contend: invalid --threads %S (expected comma-separated positive \
           integers, e.g. 1,2,4,8)\n%!"
          threads_csv;
        exit 2
  in
  let threads_list =
    Fig_common.clamp_threads max_threads
      (List.map parse_thread (String.split_on_char ',' threads_csv))
  in
  let queues =
    List.filter
      (fun q -> q <> "")
      (List.map String.trim (String.split_on_char ',' queues_csv))
  in
  if queues = [] then begin
    Printf.eprintf "contend: no queue given\n%!";
    exit 2
  end;
  List.iter
    (fun queue ->
      run_queue queue ~threads_list ~runs ~workload ~csv ~with_plot
        ~with_trace)
    queues

let queue_term =
  let doc =
    "Queue(s) to profile, comma-separated (see `fig6 --help` for names)."
  in
  Arg.(value & opt string "evequoz-cas" & info [ "queue"; "q" ] ~docv:"NAMES" ~doc)

let threads_term =
  let doc = "Comma-separated thread counts to sweep." in
  Arg.(value & opt string "1,2,4,8" & info [ "threads"; "t" ] ~docv:"LIST" ~doc)

let plot_term =
  let doc = "Also render terminal line charts of the sweep." in
  Arg.(value & flag & info [ "plot" ] ~doc)

let cmd =
  let doc =
    "Contention profile: SC-failure / helping / re-registration rates vs \
     throughput as the thread count grows"
  in
  Cmd.v (Cmd.info "contend" ~doc)
    Term.(
      const run $ queue_term $ threads_term $ Fig_common.runs_term
      $ Fig_common.scale_term $ Fig_common.csv_term
      $ Fig_common.max_threads_term $ plot_term $ Fig_common.trace_term)

let () = exit (Cmd.eval cmd)
