(* Experiment E6: the paper's head-to-head between its CAS-based array
   queue and Shann et al.'s double-word-CAS queue.

   The paper reports its queue "roughly only 5% slower" although it issues
   three 32-bit CAS + two FetchAndAdd per operation against Shann's one
   32-bit + one 64-bit CAS — because a 64-bit CAS cost ~4.5x a 32-bit one
   on that AMD.  In OCaml both queues' atomics are single-word, so the
   4.5x price asymmetry does not exist; this binary reports the measured
   ratio and per-thread breakdown so EXPERIMENTS.md can discuss the
   divergence. *)

open Cmdliner
open Nbq_harness

let run runs scale csv max_threads =
  let workload = Fig_common.workload_of_scale scale in
  let threads =
    Fig_common.clamp_threads max_threads [ 1; 2; 4; 8; 12; 16 ]
  in
  let series = [ "shann"; "evequoz-cas" ] in
  let results = Fig_common.measure_series ~series ~threads ~runs ~workload in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Shann (simulated CAS64) vs our CAS queue  [%d iterations/thread, \
            mean of %d runs]"
           workload.Workload.iterations runs)
      ~columns:[ "threads"; "shann [s]"; "evequoz-cas [s]"; "cas/shann" ]
  in
  List.iter
    (fun (r : Fig_common.sweep_result) ->
      match r.cells with
      | [ (_, shann); (_, cas) ] ->
          let s = shann.Runner.summary.Stats.mean in
          let c = cas.Runner.summary.Stats.mean in
          Table.add_row t
            [
              string_of_int r.threads;
              Table.cell_float s;
              Table.cell_float c;
              Table.cell_float (c /. s);
            ]
      | _ -> assert false)
    results;
  Fig_common.emit ~csv t;
  Fig_common.write_summary
    (List.concat_map
       (fun (r : Fig_common.sweep_result) ->
         List.map
           (fun (_, m) ->
             Bench_summary.row_of_measurement ~bench:"shann_vs_cas" m)
           r.cells)
       results)

let cmd =
  let doc = "Reproduce the paper's Shann-vs-CAS-queue comparison" in
  Cmd.v (Cmd.info "shann_vs_cas" ~doc)
    Term.(const run $ Fig_common.runs_term $ Fig_common.scale_term
          $ Fig_common.csv_term $ Fig_common.max_threads_term)

let () = exit (Cmd.eval cmd)
