(* Shared sweep-and-print logic for the experiment binaries. *)

open Nbq_harness

type sweep_result = {
  threads : int;
  (* (impl name, measurement) in series order *)
  cells : (string * Runner.measurement) list;
}

let measure_series ~series ~threads ~runs ~workload =
  List.map
    (fun threads ->
      let cells =
        List.map
          (fun name ->
            let impl = Registry.find name in
            let cfg = { Runner.threads; runs; workload; capacity = None } in
            (name, Runner.measure impl cfg))
          series
      in
      { threads; cells })
    threads

let actual_table ~title ~series results =
  let t = Table.create ~title ~columns:("threads" :: series) in
  List.iter
    (fun r ->
      Table.add_row t
        (string_of_int r.threads
        :: List.map
             (fun (_, (m : Runner.measurement)) ->
               Table.cell_float m.Runner.summary.Stats.mean)
             r.cells))
    results;
  t

(* Normalized by the named base series (Figure 6 c/d: base is the paper's
   CAS-based array queue). *)
let normalized_table ~title ~series ~base results =
  let t = Table.create ~title ~columns:("threads" :: series) in
  List.iter
    (fun r ->
      let base_mean =
        match List.assoc_opt base r.cells with
        | Some m -> m.Runner.summary.Stats.mean
        | None -> invalid_arg ("normalization base not in series: " ^ base)
      in
      Table.add_row t
        (string_of_int r.threads
        :: List.map
             (fun (_, (m : Runner.measurement)) ->
               Table.cell_float
                 (Stats.normalize ~base:base_mean m.Runner.summary.Stats.mean))
             r.cells))
    results;
  t

let emit ~csv table =
  print_string (if csv then Table.render_csv table else Table.render table);
  print_newline ()

(* Render the same sweep as a terminal line chart (one curve per series). *)
let plot ~title ~series ?(base = None) results =
  let curve name =
    {
      Ascii_plot.label = name;
      points =
        List.map
          (fun r ->
            let mean (m : Runner.measurement) = m.Runner.summary.Stats.mean in
            let y =
              let v = mean (List.assoc name r.cells) in
              match base with
              | None -> v
              | Some b -> Stats.normalize ~base:(mean (List.assoc b r.cells)) v
            in
            (float_of_int r.threads, y))
          results;
    }
  in
  print_string
    (Ascii_plot.render ~title ~x_label:"threads"
       ~y_label:(match base with None -> "seconds" | Some b -> "time / " ^ b)
       (List.map curve series));
  print_newline ()

(* Measure [series] once more with the metrics hub attached and report
   events + sampled latency; one JSON line per queue goes to
   results/metrics-<prefix>-*.jsonl. *)
let metrics_pass ~prefix ~series ~threads ~runs ~workload =
  let open Nbq_obs in
  let sink = Sink.open_jsonl (Sink.default_path ~prefix ()) in
  List.iter
    (fun name ->
      let metrics = Metrics.create () in
      let impl = Registry.find name in
      let cfg = { Runner.threads; runs; workload; capacity = None } in
      let m = Runner.measure ~metrics impl cfg in
      let snap =
        Option.value ~default:Metrics.empty_snapshot m.Runner.metrics
      in
      Printf.printf "\n== metrics: %s @ %d threads ==\n%s\n" name threads
        (Metrics_report.render snap);
      Sink.write_snapshot sink
        ~meta:
          [
            ("queue", Sink.String name);
            ("threads", Sink.Int threads);
            ("iterations", Sink.Int workload.Workload.iterations);
            ("runs", Sink.Int runs);
            ("mean_seconds", Sink.Float m.Runner.summary.Stats.mean);
          ]
        snap)
    series;
  (match Sink.path sink with
  | Some p -> Printf.printf "\nmetrics written to %s\n" p
  | None -> ());
  Sink.close sink

(* Re-run each impl with the flight recorder attached and write one Chrome
   trace-event JSON per queue (one Perfetto track per domain).  A fresh
   recorder per queue keeps the files single-subject; validation failures
   are fatal so --trace doubles as a smoke test of the export path. *)
let trace_pass ~prefix ~impls ~threads ~runs ~workload =
  List.iter
    (fun (impl : Registry.impl) ->
      let tracer = Nbq_trace.Recorder.create () in
      let cfg = { Runner.threads; runs; workload; capacity = None } in
      Nbq_trace.Recorder.arm tracer;
      ignore (Runner.measure ~tracer impl cfg : Runner.measurement);
      Nbq_trace.Recorder.disarm tracer;
      let path =
        Printf.sprintf "results/trace-%s-%s.json" prefix impl.Registry.name
      in
      Nbq_trace.Export.write_chrome
        ~process_name:(prefix ^ ":" ^ impl.Registry.name)
        ~path tracer;
      match Nbq_trace.Export.validate_chrome_file path with
      | Ok s ->
          Printf.printf
            "trace written to %s (%d domain tracks, %d spans, %d instants; \
             open in ui.perfetto.dev)\n"
            path s.Nbq_trace.Export.tracks s.Nbq_trace.Export.spans
            s.Nbq_trace.Export.instants
      | Error e ->
          Printf.eprintf "trace validation failed: %s\n%!" e;
          exit 1)
    impls

let write_summary rows =
  if rows <> [] then begin
    let n = Bench_summary.write rows in
    Printf.printf "bench summary: %s (%d rows)\n" Bench_summary.default_path n
  end

(* Common cmdliner terms. *)
open Cmdliner

let trace_term =
  let doc =
    "Re-run with the flight recorder armed (sampled operation spans plus \
     in-algorithm events) and write results/trace-<bench>-<queue>.json: \
     Chrome trace-event JSON loadable in Perfetto (ui.perfetto.dev), one \
     track per domain."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let metrics_term =
  let doc =
    "After the figures, re-run the Evequoz queues with the observability \
     hub attached and print event counts, helping/SC-failure rates and \
     sampled latency percentiles; also write results/metrics-*.jsonl."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let runs_term =
  let doc = "Independent runs per configuration (paper: 50)." in
  Arg.(value & opt int 3 & info [ "runs" ] ~docv:"N" ~doc)

let scale_term =
  let doc =
    "Workload scale: fraction of the paper's 100000 iterations per thread \
     (1.0 reproduces the paper's full load)."
  in
  Arg.(value & opt float 0.02 & info [ "scale" ] ~docv:"S" ~doc)

let csv_term =
  let doc = "Emit CSV instead of an aligned table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let max_threads_term =
  let doc =
    "Clamp the thread sweep to at most this many domains (default: no \
     clamp; note OCaml supports ~128 domains, and oversubscribing cores is \
     part of the experiment)."
  in
  Arg.(value & opt (some int) None & info [ "max-threads" ] ~docv:"N" ~doc)

let clamp_threads max_threads threads =
  match max_threads with
  | None -> threads
  | Some m -> List.filter (fun t -> t <= m) threads

let workload_of_scale scale = Workload.scaled_config ~scale
