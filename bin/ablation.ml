(* Experiment E8: ablations over the design knobs DESIGN.md calls out.

   a) weak LL/SC: spurious SC failure rate vs throughput (the §5 caveat);
   b) hazard-pointer retire threshold (paper fixed it at 4x threads);
   c) epoch-based reclamation batch size;
   d) array capacity vs contention for the CAS queue;
   e) the reclamation axis at a glance: GC vs HP vs EBR vs simulated-LL/SC
      reclamation on the same MS queue;
   f) the LL/SC backend axis: one ring functor, three cell contracts
      (tag-protocol singles vs amortized batch runs vs Blelloch-Wei);
   g) the synchronization-recipe axis: the 2008 ring vs Nikolaev's SCQ
      family (FAA cycles + threshold counter, arXiv:1908.04511).  *)

open Cmdliner
open Nbq_harness

let custom_impl ~name ~family create_instance =
  Registry.custom ~name ~family create_instance

(* Every measurement lands in results/bench_summary.json (bench =
   "ablation"; [variant] carries the knob setting) so check.sh's
   bench_compare gate and later sessions can diff ablation runs. *)
let summary_rows : Bench_summary.row list ref = ref []

let measure ?variant ?batched impl threads runs workload capacity =
  let cfg = { Runner.threads; runs; workload; capacity } in
  let m = Runner.measure ?batched impl cfg in
  summary_rows :=
    Bench_summary.row_of_measurement ~bench:"ablation" ?variant m
    :: !summary_rows;
  m

let mean (m : Runner.measurement) = m.Runner.summary.Stats.mean

let weak_llsc_ablation ~threads ~runs ~workload ~csv =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation (a): spurious SC failure rate, evequoz-llsc-weak, %d \
            threads" threads)
      ~columns:[ "failure-rate"; "seconds"; "slowdown" ]
  in
  let base = ref nan in
  List.iter
    (fun rate ->
      Atomic.set Nbq_core.Evequoz_llsc.On_weak_cells.failure_rate rate;
      let impl = Registry.find "evequoz-llsc-weak" in
      let s =
        mean
          (measure
             ~variant:(Printf.sprintf "weak-llsc:rate=%.2f" rate)
             impl threads runs workload None)
      in
      if Float.is_nan !base then base := s;
      Table.add_row t
        [
          Printf.sprintf "%.2f" rate;
          Table.cell_float s;
          Printf.sprintf "%.2fx" (s /. !base);
        ])
    [ 0.0; 0.01; 0.05; 0.1; 0.2; 0.4 ];
  Atomic.set Nbq_core.Evequoz_llsc.On_weak_cells.failure_rate 0.05;
  Fig_common.emit ~csv t

let hp_threshold_ablation ~threads ~runs ~workload ~csv =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation (b): hazard-pointer retire threshold factor, %d threads \
            (paper: 4)" threads)
      ~columns:[ "factor"; "seconds"; "scans"; "freed" ]
  in
  List.iter
    (fun factor ->
      let manager_probe = ref None in
      let impl =
        custom_impl
          ~name:(Printf.sprintf "ms-hp-f%d" factor)
          ~family:Registry.Link_based
          (fun ~capacity:_ ->
            let q = Nbq_baselines.Ms_hazard.create ~retire_factor:factor () in
            manager_probe := Some (Nbq_baselines.Ms_hazard.hp_manager q);
            Registry.basic_instance
              ~enqueue:(fun p -> Nbq_baselines.Ms_hazard.enqueue q p; true)
              ~dequeue:(fun () -> Nbq_baselines.Ms_hazard.try_dequeue q)
              ~length:(fun () -> Nbq_baselines.Ms_hazard.length q)
              ())
      in
      let s =
        mean (measure ~variant:"hp-threshold" impl threads runs workload None)
      in
      let scans, freed =
        match !manager_probe with
        | Some mgr ->
            ( Nbq_reclaim.Hazard_pointer.total_scans mgr,
              Nbq_reclaim.Hazard_pointer.total_freed mgr )
        | None -> (0, 0)
      in
      Table.add_row t
        [
          string_of_int factor;
          Table.cell_float s;
          string_of_int scans;
          string_of_int freed;
        ])
    [ 1; 2; 4; 8; 16; 64 ];
  Fig_common.emit ~csv t

let ebr_batch_ablation ~threads ~runs ~workload ~csv =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Ablation (c): EBR batch size, ms-ebr, %d threads"
           threads)
      ~columns:[ "batch"; "seconds"; "freed"; "pending" ]
  in
  List.iter
    (fun batch ->
      let probe = ref None in
      let impl =
        custom_impl
          ~name:(Printf.sprintf "ms-ebr-b%d" batch)
          ~family:Registry.Link_based
          (fun ~capacity:_ ->
            let q = Nbq_baselines.Ms_epoch.create ~batch_size:batch () in
            probe := Some (Nbq_baselines.Ms_epoch.epoch_manager q);
            Registry.basic_instance
              ~enqueue:(fun p -> Nbq_baselines.Ms_epoch.enqueue q p; true)
              ~dequeue:(fun () -> Nbq_baselines.Ms_epoch.try_dequeue q)
              ~length:(fun () -> Nbq_baselines.Ms_epoch.length q)
              ())
      in
      let s =
        mean (measure ~variant:"ebr-batch" impl threads runs workload None)
      in
      let freed, pending =
        match !probe with
        | Some mgr ->
            (Nbq_reclaim.Epoch.total_freed mgr, Nbq_reclaim.Epoch.pending mgr)
        | None -> (0, 0)
      in
      Table.add_row t
        [
          string_of_int batch;
          Table.cell_float s;
          string_of_int freed;
          string_of_int pending;
        ])
    [ 8; 32; 64; 256; 1024 ];
  Fig_common.emit ~csv t

let capacity_ablation ~threads ~runs ~workload ~csv =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation (d): ring capacity, evequoz-cas, %d threads (min = 2 x \
            in-flight)" threads)
      ~columns:[ "capacity"; "seconds" ]
  in
  let min_cap = Workload.min_capacity workload ~threads in
  List.iter
    (fun mult ->
      let cap = min_cap * mult in
      let impl = Registry.find "evequoz-cas" in
      let s =
        mean
          (measure
             ~variant:(Printf.sprintf "capacity:cap=%d" cap)
             impl threads runs workload (Some cap))
      in
      Table.add_row t [ string_of_int cap; Table.cell_float s ])
    [ 1; 2; 8; 64 ];
  Fig_common.emit ~csv t

let reclamation_axis ~runs ~workload ~csv ~max_threads =
  let series = [ "ms-gc"; "ms-hp-sorted"; "ms-ebr"; "ms-doherty" ] in
  let threads = Fig_common.clamp_threads max_threads [ 1; 2; 4; 8; 16 ] in
  let results = Fig_common.measure_series ~series ~threads ~runs ~workload in
  List.iter
    (fun r ->
      List.iter
        (fun (_, m) ->
          summary_rows :=
            Bench_summary.row_of_measurement ~bench:"ablation"
              ~variant:"reclamation" m
            :: !summary_rows)
        r.Fig_common.cells)
    results;
  let table =
    Fig_common.actual_table
      ~title:
        "Ablation (e): reclamation schemes on the same MS queue [seconds]"
      ~series results
  in
  Fig_common.emit ~csv table

(* Ablation (f): the tentpole's three cell contracts behind the one ring
   functor (Evequoz_ring), same workload:
   - cas-singles: the paper's tag-variable protocol, one ReRegister CAS
     per operation ("evequoz-cas" as registered);
   - cas-batched: the same queue through the amortized batch runs (one
     ReRegister and one counter CAS per run), driven by the runner's
     batched demand loop;
   - evequoz-bw: the Blelloch-Wei constant-time backend, whose
     ReRegister is a literal no-op (zero hot-path registry traffic). *)
let backends_ablation ~runs ~workload ~csv ~max_threads =
  let module Cas_batched_conc =
    Nbq_core.Queue_intf.Make
      (Nbq_core.Queue_intf.Capability.Bounded_batch
         (Nbq_core.Evequoz_cas.Batched))
  in
  let batched_impl =
    Registry.of_conc ~name:"evequoz-cas-batched" ~family:Registry.Array_based
      (module Cas_batched_conc)
  in
  let threads_list = Fig_common.clamp_threads max_threads [ 1; 2; 4; 8 ] in
  let t =
    Table.create
      ~title:
        "Ablation (f): LL/SC backend under the unified ring functor \
         [seconds] (singles = tag protocol; batched = amortized runs; bw = \
         Blelloch-Wei, no-op ReRegister)"
      ~columns:
        [ "threads"; "cas-singles"; "cas-batched"; "evequoz-bw"; "bw/singles" ]
  in
  List.iter
    (fun threads ->
      let singles =
        mean
          (measure ~variant:"backends"
             (Registry.find "evequoz-cas")
             threads runs workload None)
      in
      let batched =
        mean
          (measure ~variant:"backends" ~batched:true batched_impl threads runs
             workload None)
      in
      let bw =
        mean
          (measure ~variant:"backends"
             (Registry.find "evequoz-bw")
             threads runs workload None)
      in
      Table.add_row t
        [
          string_of_int threads;
          Table.cell_float singles;
          Table.cell_float batched;
          Table.cell_float bw;
          Printf.sprintf "%.2fx" (bw /. singles);
        ])
    threads_list;
  Fig_common.emit ~csv t

(* Ablation (g): the 2008-vs-SCQ gap (ROADMAP item 1).  Same ring shape,
   different synchronization recipe: the tag-variable LL/SC simulation
   against SCQ's FAA'd cycle indices + threshold counter, plus the SCQD
   pairing and the wCQ-style helping enqueue.  Rows land in the trajectory
   under variant "scq" so check.sh's bench_compare gate keeps the family
   covered. *)
let scq_gap_ablation ~runs ~workload ~csv ~max_threads =
  let threads_list = Fig_common.clamp_threads max_threads [ 1; 2; 4; 8 ] in
  let t =
    Table.create
      ~title:
        "Ablation (g): 2008 tag-protocol ring vs the SCQ family [seconds] \
         (scq = FAA cycles + threshold; scq-d = data/index pairing; scq-wcq \
         = helping enqueue)"
      ~columns:
        [ "threads"; "evequoz-cas"; "scq"; "scq-d"; "scq-wcq"; "scq/cas" ]
  in
  List.iter
    (fun threads ->
      let time name =
        mean
          (measure ~variant:"scq" (Registry.find name) threads runs workload
             None)
      in
      let cas = time "evequoz-cas" in
      let scq = time "scq" in
      let scqd = time "scq-d" in
      let wcq = time "scq-wcq" in
      Table.add_row t
        [
          string_of_int threads;
          Table.cell_float cas;
          Table.cell_float scq;
          Table.cell_float scqd;
          Table.cell_float wcq;
          Printf.sprintf "%.2fx" (scq /. cas);
        ])
    threads_list;
  Fig_common.emit ~csv t

let run which threads runs scale csv max_threads =
  let workload = Fig_common.workload_of_scale scale in
  let all =
    [
      ("weak-llsc", fun () -> weak_llsc_ablation ~threads ~runs ~workload ~csv);
      ("hp-threshold", fun () -> hp_threshold_ablation ~threads ~runs ~workload ~csv);
      ("ebr-batch", fun () -> ebr_batch_ablation ~threads ~runs ~workload ~csv);
      ("capacity", fun () -> capacity_ablation ~threads ~runs ~workload ~csv);
      ("reclamation", fun () -> reclamation_axis ~runs ~workload ~csv ~max_threads);
      ("backends", fun () -> backends_ablation ~runs ~workload ~csv ~max_threads);
      ("scq", fun () -> scq_gap_ablation ~runs ~workload ~csv ~max_threads);
    ]
  in
  (match which with
  | None -> List.iter (fun (_, f) -> f ()) all
  | Some name -> (
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
          prerr_endline
            ("unknown ablation; valid: "
            ^ String.concat ", " (List.map fst all));
          exit 2));
  Fig_common.write_summary (List.rev !summary_rows)

let which_term =
  let doc = "Run a single ablation (weak-llsc | hp-threshold | ebr-batch | \
             capacity | reclamation | backends | scq); default: all." in
  Arg.(value & opt (some string) None & info [ "only" ] ~docv:"NAME" ~doc)

let threads_term =
  let doc = "Thread count for the single-configuration ablations." in
  Arg.(value & opt int 8 & info [ "threads"; "t" ] ~docv:"N" ~doc)

let cmd =
  let doc = "Ablation benchmarks over the repository's design knobs" in
  Cmd.v (Cmd.info "ablation" ~doc)
    Term.(const run $ which_term $ threads_term $ Fig_common.runs_term
          $ Fig_common.scale_term $ Fig_common.csv_term
          $ Fig_common.max_threads_term)

let () = exit (Cmd.eval cmd)
