(* Measures what the observability hub costs: the same paper workload on
   the same queue, once through the plain registry path and once through
   create_probed (deep probes + sampled latency), at 4 domains.  The
   acceptance bar is instrumented/uninstrumented <= 1.10.

   The comparison uses the best (minimum) run of each variant: on an
   oversubscribed box the mean is dominated by one-sided scheduler noise
   (a run can only be made slower, never faster), so min-vs-min isolates
   the actual instrumentation cost. *)

open Cmdliner
open Nbq_harness

let run queue threads runs scale =
  let workload = Fig_common.workload_of_scale scale in
  let impl = Registry.find queue in
  let cfg = { Runner.threads; runs; workload; capacity = None } in
  (* Interleave plain/probed in short blocks so drift (thermal, scheduler
     mood) hits both variants of a block equally, compare best runs
     within each block, and take the median block ratio: a single block
     where the oversubscribed scheduler parks one variant unluckily then
     cannot drive the verdict. *)
  let blocks = 6 in
  let ratios =
    List.init blocks (fun _ ->
        let plain = (Runner.measure impl cfg).Runner.summary.Stats.min in
        let metrics = Nbq_obs.Metrics.create () in
        let probed =
          (Runner.measure ~metrics impl cfg).Runner.summary.Stats.min
        in
        probed /. plain)
  in
  let ratio = (Nbq_harness.Stats.summarize ratios).Nbq_harness.Stats.median in
  Printf.printf
    "obs overhead: %s @ %d threads, %d runs x %d blocks, %d \
     iterations/thread\n"
    queue threads runs blocks workload.Workload.iterations;
  Printf.printf "  block ratios: %s\n"
    (String.concat " "
       (List.map (fun r -> Printf.sprintf "%.3f" r) ratios));
  Printf.printf "  median ratio: %.3fx (%+.1f%%)  [target <= 1.10x]  %s\n" ratio
    ((ratio -. 1.0) *. 100.0)
    (if ratio <= 1.10 then "PASS" else "WARN");
  if ratio > 1.10 then exit 1

let queue_term =
  let doc = "Queue to measure." in
  Arg.(value & opt string "evequoz-cas" & info [ "queue"; "q" ] ~docv:"NAME" ~doc)

let threads_term =
  let doc = "Domains." in
  Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"N" ~doc)

let cmd =
  let doc = "Measure the throughput cost of the observability instrumentation" in
  Cmd.v (Cmd.info "obs_overhead" ~doc)
    Term.(
      const run $ queue_term $ threads_term $ Fig_common.runs_term
      $ Fig_common.scale_term)

let () = exit (Cmd.eval cmd)
