#!/bin/sh
# Tier-1 gate: everything must build and the full test suite must pass.
# Formatting is advisory (the repo does not pin an ocamlformat version).
set -e
cd "$(dirname "$0")/.."
dune build @all
dune runtest
# Fast deterministic fault gate: stall one domain inside every injection
# point of both Evequoz queues; fixed seed, reduced op target (<30s).
dune exec bin/torture.exe -- --queue evequoz-cas --seed 42 --ops 2000 > /dev/null
dune exec bin/torture.exe -- --queue evequoz-llsc --seed 42 --ops 2000 > /dev/null
# Blelloch-Wei backend: same stall matrix over its LL/announce/SC windows
# (Tag_reregister deliberately absent -- its ReRegister is a no-op).
dune exec bin/torture.exe -- --queue evequoz-bw --seed 42 --ops 2000 > /dev/null
# Sharded front-end gate: the same matrix over the 4-shard composition
# additionally stalls victims inside the shard-steal sweep and the
# between-operations gap (shard-steal / op-gap points), the windows the
# single-ring rows cannot reach.
dune exec bin/torture.exe -- --queue evequoz-cas-shard4 --seed 42 --ops 2000 > /dev/null
# Segmented-queue gate: the same stall matrix plus the two windows only
# the segment chain has -- a victim frozen mid-append (seg-append) and
# mid-retire (seg-retire) must leave the queue conserving and live.
dune exec bin/torture.exe -- --queue evequoz-seg --seed 42 --ops 2000 > /dev/null
# SCQ gate: the FAA-cycle matrix (faa-cycle / threshold-reset / catchup
# windows) under stalls and crashes for the base row, stalls for the
# wCQ-helping variant.  The harness clamps scq capacity to 2 so the
# catchup and threshold windows actually open (see lib/fault/torture.ml).
dune exec bin/torture.exe -- --queue scq --seed 42 --ops 2000 --crash > /dev/null
dune exec bin/torture.exe -- --queue scq-wcq --seed 42 --ops 2000 > /dev/null
# Wait-layer torture: stall/crash a waker inside the wake-lost window and
# a waiter inside the park window; every live parked domain must still
# complete (no lost-wakeup strand).
dune exec bin/torture.exe -- --wait > /dev/null
# Oversubscription gate: 16 parked domains on one core-starved queue,
# requiring item conservation and per-domain progress.
dune exec bin/park_sweep.exe -- --gate --seconds 2 > /dev/null
# Model-checking gate: exhaustive DPOR over the capacity-2 / 2-thread
# scenario catalog.  The fast line covers Algorithm 1 plus the simulated
# eventcount (park/wake must have no lost wakeup; the two seeded-bug
# entries must still be convicted) and proves >= 5x reduction vs plain
# DFS; the second line runs Algorithm 2's larger trees (batch commit and
# drain races included) to exhaustion.
dune exec bin/modelcheck_run.exe -- -a evequoz-llsc -a sim-wait -a toy-blocking \
  --min-reduction 5 --require-exhaustive > /dev/null
dune exec bin/modelcheck_run.exe -- -a evequoz-cas -a sharded-llsc \
  --require-exhaustive > /dev/null
# Blelloch-Wei model-checking gate: the full scenario matrix plus the
# batch races to exhaustion, and the no-scan seeded bug (a recycled
# reserved buffer losing an item to pointer ABA) must be convicted.
dune exec bin/modelcheck_run.exe -- -a evequoz-bw -a evequoz-bw-noscan \
  --require-exhaustive > /dev/null
# Segmented-queue model-checking gate: the scenario matrix (append and
# retire/recycle races included) to exhaustion, and the no-retire seeded
# bug (a pinned reader observing a recycled segment's next lap) must be
# convicted.
dune exec bin/modelcheck_run.exe -- -a evequoz-seg -a evequoz-seg-noretire \
  --require-exhaustive > /dev/null
# SCQ model-checking gate: the scenario matrix for scq / scq-d / scq-wcq
# to exhaustion, and the no-threshold seeded bug (a missed dequeue
# retrying with no budget, so on a drained queue its own slot bumps chase
# fresh tickets forever) must be convicted of livelock by the fair-probe
# continuation.
dune exec bin/modelcheck_run.exe -- -a scq -a scq-d -a scq-wcq -a scq-nothreshold \
  --require-exhaustive > /dev/null
# Burst-absorption gate: under a 10x offered-load burst the fixed ring
# must shed via Timeout while the segmented queue absorbs everything,
# and elasticity may cost at most 1.25x the fixed ring's steady-state
# per-item cost.
dune exec bin/burst_sweep.exe -- --gate > /dev/null
# Flight-recorder overhead gate: an armed recorder (default 1/64 span
# sampling) must cost <= 10% vs the plain path (median of interleaved
# blocks, best-of-6-runs per block).  Single-threaded on purpose: on a
# core-starved box multi-domain runs measure the scheduler, not the
# recorder.
dune exec bin/trace_overhead.exe -- -t 1 --runs 6 --scale 1.0 --blocks 10 > /dev/null
# Perfetto export smoke: a tiny traced fig6 run must produce Chrome
# trace-event JSON that our own validator accepts (trace_pass exits
# non-zero on validation failure), and must emit the bench-summary
# trajectory; bench_compare must round-trip it with zero regressions.
# Every bench smoke below also mirrors its freshly measured rows into a
# scratch file (NBQ_BENCH_FRESH): the trajectory file merges, so only the
# mirror can prove each family was actually re-measured this run rather
# than carried forward from yesterday.
NBQ_BENCH_FRESH=results/.bench_fresh.json
export NBQ_BENCH_FRESH
rm -f "$NBQ_BENCH_FRESH"
dune exec bin/fig6.exe -- -f a --runs 1 --scale 0.002 --max-threads 4 --trace > /dev/null 2>&1
test -s results/bench_summary.json
dune exec bin/bench_compare.exe -- results/bench_summary.json results/bench_summary.json > /dev/null
# Bench-ablation gate: the tiny three-backend grid (tag-protocol singles
# vs amortized batch runs vs Blelloch-Wei), the 2008-vs-SCQ grid, and the
# fig6 scq suite must run end to end; the merged trajectory must still
# cover every configuration the *committed* summary has, with sane
# throughputs (--gate ignores machine-dependent slowdowns; falls back to
# self-compare when HEAD has no summary yet), and --fresh fails any
# family the committed summary lists for these sweeps that produced zero
# rows just now.
dune exec bin/ablation.exe -- --only backends --runs 1 --scale 0.002 --max-threads 4 > /dev/null
dune exec bin/ablation.exe -- --only scq --runs 1 --scale 0.002 --max-threads 4 > /dev/null
dune exec bin/fig6.exe -- -f s --runs 1 --scale 0.002 --max-threads 4 > /dev/null
grep -q '"scq"' "$NBQ_BENCH_FRESH"
if git show HEAD:results/bench_summary.json > results/.bench_summary.base.json 2>/dev/null; then
  dune exec bin/bench_compare.exe -- results/.bench_summary.base.json results/bench_summary.json --gate --fresh "$NBQ_BENCH_FRESH" > /dev/null
  rm -f results/.bench_summary.base.json
else
  dune exec bin/bench_compare.exe -- results/bench_summary.json results/bench_summary.json --gate --fresh "$NBQ_BENCH_FRESH" > /dev/null
fi
rm -f "$NBQ_BENCH_FRESH"
unset NBQ_BENCH_FRESH
dune build @fmt 2>/dev/null || true
echo "check: OK"
