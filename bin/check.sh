#!/bin/sh
# Tier-1 gate: everything must build and the full test suite must pass.
# Formatting is advisory (the repo does not pin an ocamlformat version).
set -e
cd "$(dirname "$0")/.."
dune build @all
dune runtest
dune build @fmt 2>/dev/null || true
echo "check: OK"
