(* Experiments E1-E4: reproduce Figure 6 (a)-(d) of the paper.

   (a)/(c): the paper's PowerPC suite — the LL/SC machine, so the series
   include the LL/SC array queue but not Shann (which needs CAS64 there).
   (b)/(d): the AMD suite — CAS machine: Shann replaces the LL/SC queue.
   (c)/(d) are (a)/(b) normalized by the CAS-based array queue ("FIFO
   Array Simulated CAS"), exactly as in the paper.  (s) is an off-paper
   fifth panel: the 2008 ring vs the SCQ family at 1-8 domains. *)

open Cmdliner

(* Series orders follow the paper's legends. *)
let series_a =
  [ "ms-doherty"; "evequoz-cas"; "ms-hp-unsorted"; "ms-hp-sorted"; "evequoz-llsc" ]

let series_b =
  [ "ms-doherty"; "ms-hp-unsorted"; "ms-hp-sorted"; "evequoz-cas"; "shann" ]

(* (s) is ours, not the paper's: the 2008 tag-protocol ring against
   Nikolaev's SCQ family (arXiv:1908.04511) on the same workload, so the
   "how far is the 2008 design from peak?" gap is a committed number
   (results/bench_summary.json, variant "scq-suite"). *)
let series_s = [ "evequoz-cas"; "scq"; "scq-d"; "scq-wcq" ]

let threads_a = [ 1; 2; 4; 8; 12; 16; 20; 24; 28; 32 ]
let threads_b = [ 1; 4; 8; 12; 16; 20; 24; 28; 32; 40; 48; 56; 64 ]
let threads_s = [ 1; 2; 4; 8 ]

let base = "evequoz-cas"

let run_figure figure runs scale csv max_threads with_plot with_metrics
    with_trace =
  let workload = Fig_common.workload_of_scale scale in
  let summary_rows = ref [] in
  let print_one fig =
    let series, threads, normalized, paper_name =
      match fig with
      | `A -> (series_a, threads_a, false, "Figure 6(a): actual time, LL/SC suite")
      | `B -> (series_b, threads_b, false, "Figure 6(b): actual time, CAS suite")
      | `C ->
          (series_a, threads_a, true, "Figure 6(c): normalized time, LL/SC suite")
      | `D ->
          (series_b, threads_b, true, "Figure 6(d): normalized time, CAS suite")
      | `S ->
          ( series_s,
            threads_s,
            false,
            "Figure 6(s): 2008 ring vs SCQ family (beyond the paper)" )
    in
    let threads = Fig_common.clamp_threads max_threads threads in
    Printf.eprintf "# measuring %s (%d thread counts x %d series x %d runs)\n%!"
      paper_name (List.length threads) (List.length series) runs;
    let results = Fig_common.measure_series ~series ~threads ~runs ~workload in
    let variant =
      match fig with
      | `A | `C -> "llsc-suite"
      | `B | `D -> "cas-suite"
      | `S -> "scq-suite"
    in
    List.iter
      (fun (r : Fig_common.sweep_result) ->
        List.iter
          (fun (_, m) ->
            summary_rows :=
              Nbq_harness.Bench_summary.row_of_measurement ~bench:"fig6"
                ~variant m
              :: !summary_rows)
          r.Fig_common.cells)
      results;
    let title =
      Printf.sprintf "%s  [%d iterations/thread, mean of %d runs, seconds]"
        paper_name workload.Nbq_harness.Workload.iterations runs
    in
    let table =
      if normalized then Fig_common.normalized_table ~title ~series ~base results
      else Fig_common.actual_table ~title ~series results
    in
    Fig_common.emit ~csv table;
    if with_plot then
      Fig_common.plot ~title ~series
        ~base:(if normalized then Some base else None)
        results
  in
  (match figure with
  | Some f -> print_one f
  | None -> List.iter print_one [ `A; `B; `C; `D; `S ]);
  Fig_common.write_summary (List.rev !summary_rows);
  let aux_threads =
    match Fig_common.clamp_threads max_threads [ 4 ] with
    | [] -> 1
    | t :: _ -> t
  in
  if with_metrics then
    Fig_common.metrics_pass ~prefix:"fig6"
      ~series:[ "evequoz-cas"; "evequoz-llsc" ]
      ~threads:aux_threads ~runs ~workload;
  if with_trace then
    Fig_common.trace_pass ~prefix:"fig6"
      ~impls:
        (List.map Nbq_harness.Registry.find [ "evequoz-cas"; "evequoz-llsc" ])
      ~threads:aux_threads ~runs ~workload

let figure_term =
  let fig_conv =
    Arg.enum [ ("a", `A); ("b", `B); ("c", `C); ("d", `D); ("s", `S) ]
  in
  let doc =
    "Which sub-figure to reproduce (a, b, c or d; s adds the off-paper \
     SCQ-vs-2008 suite); default: all."
  in
  Arg.(value & opt (some fig_conv) None & info [ "figure"; "f" ] ~docv:"FIG" ~doc)

let plot_term =
  let doc = "Also render each sub-figure as a terminal line chart." in
  Arg.(value & flag & info [ "plot" ] ~doc)

let cmd =
  let doc = "Reproduce the paper's Figure 6: running time vs thread count" in
  let info = Cmd.info "fig6" ~doc in
  Cmd.v info
    Term.(
      const run_figure $ figure_term $ Fig_common.runs_term
      $ Fig_common.scale_term $ Fig_common.csv_term
      $ Fig_common.max_threads_term $ plot_term $ Fig_common.metrics_term
      $ Fig_common.trace_term)

let () = exit (Cmd.eval cmd)
