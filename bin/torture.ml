(* Stall/crash torture matrix: for every queue in the registry and every
   injection point it supports, freeze (and optionally kill) one domain
   inside the point while the others run, and report whether the paper's
   robustness claims held — survivor progress, item conservation, bounded
   tag registry, post-fault recovery.  Deterministic for a given --seed. *)

open Cmdliner
module Fault = Nbq_primitives.Fault
module Injector = Nbq_fault.Injector
module Torture = Nbq_fault.Torture

(* --wait mode: torture the parking layer itself instead of the queue
   protocols.  Every cell of {park-window, wake-lost} x {stall, crash}
   must complete all its rounds — one stranded parked domain is a
   lost-wakeup bug. *)
let run_wait_matrix iterations csv =
  let module WT = Nbq_fault.Wait_torture in
  let table =
    Nbq_harness.Table.create
      ~title:
        (Printf.sprintf "Wait-layer torture [%d rounds/cell]" iterations)
      ~columns:
        [ "point"; "action"; "fired"; "completed"; "max-wait-ms"; "verdict" ]
  in
  let failures = ref 0 and rounds = ref 0 in
  List.iter
    (fun point ->
      List.iter
        (fun action ->
          incr rounds;
          let o = WT.run ~iterations ~point ~action () in
          let ok =
            o.WT.triggered = iterations && o.WT.completed = iterations
          in
          if not ok then incr failures;
          Nbq_harness.Table.add_row table
            [
              Fault.to_string o.WT.point;
              Injector.action_to_string o.WT.action;
              Printf.sprintf "%d/%d" o.WT.triggered o.WT.iterations;
              Printf.sprintf "%d/%d" o.WT.completed o.WT.iterations;
              Printf.sprintf "%.2f" (o.WT.max_wait *. 1e3);
              (if ok then "pass" else "FAIL");
            ])
        [ Injector.Stall; Injector.Crash ])
    WT.points;
  print_string
    (if csv then Nbq_harness.Table.render_csv table
     else Nbq_harness.Table.render table);
  Printf.printf "\n%d/%d cells passed\n" (!rounds - !failures) !rounds;
  if !failures > 0 then exit 1

let run_queue_matrix queue_filter seconds seed workers ops with_crash csv
    with_trace =
  let prng = Nbq_primitives.Prng.create ~seed in
  let targets =
    match queue_filter with
    | "all" -> Torture.targets ()
    | name -> (
        match Torture.find name with
        | Some t -> [ t ]
        | None ->
            Printf.eprintf "torture: unknown queue %S\n%!" name;
            exit 2)
  in
  let actions =
    if with_crash then [ Injector.Stall; Injector.Crash ]
    else [ Injector.Stall ]
  in
  let table =
    Nbq_harness.Table.create
      ~title:
        (Printf.sprintf
           "Torture matrix [%d workers, %d survivor ops, %.1fs/round, seed \
            %d]"
           workers ops seconds seed)
      ~columns:
        [
          "queue"; "point"; "action"; "fired"; "min-survivor-ops"; "balance";
          "conserved"; "registry"; "recovered"; "verdict";
        ]
  in
  let failures = ref 0 and rounds = ref 0 in
  List.iter
    (fun t ->
      List.iter
        (fun point ->
          List.iter
            (fun action ->
              incr rounds;
              (* Vary the triggering hit with the seed so different runs
                 freeze the victim at different protocol occupancies, while
                 any single seed stays reproducible. *)
              let trigger_after =
                10 + Nbq_primitives.Prng.int prng 200
              in
              (* Every round carries a full-rate (unsampled) flight
                 recorder: a fresh one per round, because each round spawns
                 fresh domains and their rings would otherwise pile up.
                 Recording is a handful of plain stores per hook, cheap
                 enough for a correctness harness. *)
              let tracer = Nbq_trace.Recorder.create ~sample:1 () in
              let o =
                Torture.run ~workers ~target_ops:ops ~trigger_after
                  ~timeout:seconds ~tracer t ~point ~action
              in
              let ok =
                o.Torture.triggered
                && o.Torture.min_survivor_ops >= ops
                && o.Torture.conserved && o.Torture.recovered
              in
              if not ok then begin
                incr failures;
                (* One machine-grepable line to reproduce the round, then
                   the per-domain flight-recorder tail: what each domain
                   was doing (operation spans, protocol events, the fault
                   window) when the property broke. *)
                Printf.printf
                  "NBQ-FAULT-REPRO v1-torture queue=%s point=%s action=%s \
                   workers=%d ops=%d trigger=%d seed=%d\n"
                  o.Torture.target
                  (Fault.to_string o.Torture.point)
                  (Injector.action_to_string o.Torture.action)
                  workers ops trigger_after seed;
                Nbq_trace.Export.dump tracer stdout
              end;
              if with_trace then begin
                let path =
                  Printf.sprintf "results/trace-torture-%s-%s-%s.json"
                    o.Torture.target
                    (Fault.to_string o.Torture.point)
                    (Injector.action_to_string o.Torture.action)
                in
                Nbq_trace.Export.write_chrome
                  ~process_name:("torture:" ^ o.Torture.target)
                  ~path tracer;
                match Nbq_trace.Export.validate_chrome_file path with
                | Ok _ -> Printf.eprintf "# trace written to %s\n%!" path
                | Error e ->
                    Printf.eprintf "trace validation failed: %s\n%!" e;
                    exit 1
              end;
              Nbq_harness.Table.add_row table
                [
                  o.Torture.target;
                  Fault.to_string o.Torture.point;
                  Injector.action_to_string o.Torture.action;
                  (if o.Torture.triggered then "yes" else "NO");
                  string_of_int o.Torture.min_survivor_ops;
                  string_of_int o.Torture.balance;
                  (if o.Torture.conserved then "yes" else "NO");
                  (match o.Torture.audit with
                  | Some a ->
                      Printf.sprintf "%d/%d"
                        a.Nbq_primitives.Llsc_cas.owned
                        a.Nbq_primitives.Llsc_cas.registered
                  | None -> "-");
                  (if o.Torture.recovered then "yes" else "NO");
                  (if ok then "pass" else "FAIL");
                ])
            actions)
        (Torture.points t))
    targets;
  print_string
    (if csv then Nbq_harness.Table.render_csv table
     else Nbq_harness.Table.render table);
  Printf.printf "\n%d/%d rounds passed\n"
    (!rounds - !failures) !rounds;
  if !failures > 0 then exit 1

(* --replay: re-derive a failure from its NBQ-FAULT-REPRO line.

   v2-mc lines (the model checker's) deterministically re-execute the
   violating schedule through Dpor.replay and print the interleaving dump;
   v1-torture lines re-run the single named torture round.  Exit 0 iff the
   recorded failure reproduces. *)
let replay_mc line (r : Nbq_modelcheck.Repro.t) =
  let module MC = Nbq_modelcheck in
  match MC.Scenarios.find ~algorithm:r.algorithm ~scenario:r.scenario with
  | None ->
      Printf.eprintf
        "unknown spec %s/%s (this repro line is from another revision?)\n"
        r.algorithm r.scenario;
      exit 2
  | Some spec -> (
      Printf.printf "replaying %s\n" line;
      match
        MC.Dpor.replay ~progress:spec.progress spec.build_instance r.schedule
      with
      | outcome ->
          (match outcome.status with
          | `Completed -> print_endline "schedule ran to completion"
          | `Fair_completed ->
              print_endline "schedule completed under the fair continuation"
          | `Diverged dv ->
              Printf.printf "schedule diverges: %s\n"
                (MC.Props.describe_divergence dv));
          (match outcome.violation with
          | Some msg -> Printf.printf "violation reproduced: %s\n" msg
          | None -> print_endline "NO violation on this schedule");
          MC.Scenarios.dump_schedule spec r.schedule stdout;
          exit (if outcome.violation <> None then 0 else 1)
      | exception Invalid_argument msg ->
          Printf.eprintf "replay failed: %s\n" msg;
          exit 2)

let replay_torture line =
  let fields =
    String.split_on_char ' ' (String.trim line)
    |> List.filter_map (fun tok ->
           match String.index_opt tok '=' with
           | None -> None
           | Some i ->
               Some
                 ( String.sub tok 0 i,
                   String.sub tok (i + 1) (String.length tok - i - 1) ))
  in
  let need k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None ->
        Printf.eprintf "v1-torture line is missing %s=\n" k;
        exit 2
  in
  let target =
    match Torture.find (need "queue") with
    | Some t -> t
    | None ->
        Printf.eprintf "unknown queue %s\n" (need "queue");
        exit 2
  in
  let point =
    match Fault.of_string (need "point") with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown injection point %s\n" (need "point");
        exit 2
  in
  let action =
    match need "action" with
    | "stall" -> Injector.Stall
    | "crash" -> Injector.Crash
    | a ->
        Printf.eprintf "unknown action %s\n" a;
        exit 2
  in
  let int_of k = try int_of_string (need k) with Failure _ ->
    Printf.eprintf "malformed %s=\n" k; exit 2
  in
  let workers = int_of "workers" and ops = int_of "ops" in
  let trigger_after = int_of "trigger" in
  Printf.printf "replaying %s\n" line;
  let tracer = Nbq_trace.Recorder.create ~sample:1 () in
  let o =
    Torture.run ~workers ~target_ops:ops ~trigger_after ~tracer target ~point
      ~action
  in
  let ok =
    o.Torture.triggered
    && o.Torture.min_survivor_ops >= ops
    && o.Torture.conserved && o.Torture.recovered
  in
  if ok then print_endline "round passed: failure did NOT reproduce"
  else begin
    print_endline "failure reproduced:";
    Nbq_trace.Export.dump tracer stdout
  end;
  exit (if ok then 1 else 0)

let run_replay line =
  match Nbq_modelcheck.Repro.parse line with
  | Some r -> replay_mc line r
  | None ->
      let contains_sub s sub =
        let n = String.length sub and m = String.length s in
        let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      if contains_sub line "v1-torture" then replay_torture line
      else begin
        Printf.eprintf
          "not a recognizable NBQ-FAULT-REPRO line (know v1-torture and \
           v2-mc)\n";
        exit 2
      end

let run_matrix replay queue_filter seconds seed workers ops with_crash csv wait
    wait_iters with_trace =
  match replay with
  | Some line -> run_replay line
  | None ->
      if wait then run_wait_matrix wait_iters csv
      else
        run_queue_matrix queue_filter seconds seed workers ops with_crash csv
          with_trace

let replay_term =
  let doc =
    "Replay an NBQ-FAULT-REPRO line instead of running the matrix: a \
     $(b,v2-mc) line (from bin/modelcheck_run.exe) deterministically \
     re-executes its schedule through the model checker and prints the \
     interleaving; a $(b,v1-torture) line re-runs that single round.  \
     Exits 0 iff the recorded failure reproduces."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"LINE" ~doc)

let queue_term =
  let doc = "Queue to torture, or $(b,all) for the whole registry." in
  Arg.(value & opt string "all" & info [ "queue"; "q" ] ~docv:"NAME" ~doc)

let seconds_term =
  let doc = "Wall-clock budget per torture round." in
  Arg.(value & opt float 30.0 & info [ "seconds" ] ~docv:"S" ~doc)

let seed_term =
  let doc =
    "PRNG seed: varies which hit of the point freezes the victim.  Equal \
     seeds give equal matrices."
  in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let workers_term =
  let doc = "Worker domains per round (including the victim)." in
  Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)

let ops_term =
  let doc =
    "Operations every survivor must complete while the victim is frozen."
  in
  Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N" ~doc)

let crash_term =
  let doc =
    "Also run crash rounds (victim dies mid-protocol, abandoning its \
     reservations and tag variables) in addition to stalls."
  in
  Arg.(value & flag & info [ "crash" ] ~doc)

let csv_term =
  let doc = "Emit CSV instead of the aligned table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let wait_term =
  let doc =
    "Torture the parking layer ($(b,Nbq_wait)) instead of the queue \
     protocols: stall/crash a waker inside the wake-lost window and a \
     waiter inside the park window, and require every live parked domain \
     to complete anyway.  Ignores the queue/worker options."
  in
  Arg.(value & flag & info [ "wait" ] ~doc)

let wait_iters_term =
  let doc = "Rounds per cell of the $(b,--wait) matrix." in
  Arg.(value & opt int 300 & info [ "wait-iters" ] ~docv:"N" ~doc)

let trace_term =
  let doc =
    "Also write each round's flight-recorder contents as Chrome \
     trace-event JSON under results/trace-torture-*.json (Perfetto \
     loadable; one track per domain).  Failing rounds always dump their \
     per-domain record tail to stdout regardless of this flag."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let cmd =
  let doc =
    "Stall/crash torture across all registry queues: freeze one domain \
     inside each injection point and verify the others keep completing \
     operations"
  in
  Cmd.v (Cmd.info "torture" ~doc)
    Term.(
      const run_matrix $ replay_term $ queue_term $ seconds_term $ seed_term
      $ workers_term $ ops_term $ crash_term $ csv_term $ wait_term
      $ wait_iters_term $ trace_term)

let () = exit (Cmd.eval cmd)
