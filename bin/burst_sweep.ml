(* Burst absorption: elastic segmented queue vs fixed-capacity ring.

   Two phases per queue:

   - The *burst* phase is a deterministic single-domain lockstep: each
     tick the producer offers [mult] items (10x the drain rate) for
     [capacity] ticks, then stops offering while the consumer keeps
     draining 1 item per tick until empty, repeated for [bursts] cycles.
     Offered load integrates to exactly the sustained drain rate, but
     arrives 10x compressed.  Offers go through [enqueue_until] with an
     already-expired deadline — one attempt, no park — so a full fixed
     ring sheds the item via `Timeout` exactly as a deadline-bound
     front-end would, while the segmented queue grows its chain and
     absorbs the whole burst (zero sheds).

   - The *steady* phase times an enqueue/dequeue pair loop on one
     domain: the sustainable regime, where the queue hovers near empty
     and the segmented chain sits in a single segment.  A saturating
     producer would be the wrong baseline here — a spinning enqueuer on
     a *full* tag-protocol ring keeps invalidating the consumer's
     reservations, so the fixed ring would measure its own full-queue
     pathology (~1000x slowdown), not per-item cost.  The acceptance
     ratio is segmented cost per item over fixed-ring cost per item:
     elasticity may cost at most [--max-cost-ratio] (default 1.25x)
     when no burst is in flight.

   The sweep writes results/burst_sweep.csv and merges rows (variant
   "burst" and "steady") into the bench-summary trajectory; --gate
   re-runs both phases and fails unless the fixed ring sheds, the
   segmented queue doesn't, and the steady-state cost ratio holds.
   Wired into bin/check.sh. *)

open Cmdliner
module Registry = Nbq_harness.Registry
module Table = Nbq_harness.Table
module Summary = Nbq_harness.Bench_summary

type burst_result = {
  queue : string;
  offered : int;
  delivered : int;
  shed : int;
  consumed : int;
  max_len : int;
  seconds : float;
}

(* One expired deadline reused for every offer: [enqueue_until] still
   makes exactly one attempt but can never park, so a full ring answers
   `Timeout` immediately and the lockstep stays untimed. *)
let run_burst ~queue ~capacity ~mult ~bursts () =
  let impl = Registry.find queue in
  let inst = impl.Registry.create ~capacity in
  let expired = Unix.gettimeofday () -. 1.0 in
  let offered = ref 0
  and delivered = ref 0
  and shed = ref 0
  and consumed = ref 0
  and max_len = ref 0 in
  let t0 = Unix.gettimeofday () in
  let observe_len () =
    let l = inst.Registry.length () in
    if l > !max_len then max_len := l
  in
  let consume_one () =
    match inst.Registry.dequeue () with
    | Some _ -> incr consumed
    | None -> ()
  in
  for burst = 1 to bursts do
    for tick = 1 to capacity do
      for _ = 1 to mult do
        incr offered;
        if inst.Registry.enqueue_until ~deadline:expired { Registry.tag = tick }
        then incr delivered
        else incr shed
      done;
      observe_len ();
      consume_one ()
    done;
    (* Inter-burst gap: drain at the sustained rate.  The backlog is at
       most [capacity * (mult - 1)] items, so the bound only trips if the
       queue miscounts. *)
    let gap = ref 0 in
    while inst.Registry.length () > 0 do
      incr gap;
      if !gap > capacity * mult * 2 then begin
        Printf.eprintf "burst_sweep: %s failed to drain after burst %d\n%!"
          queue burst;
        exit 1
      end;
      consume_one ()
    done
  done;
  let seconds = Unix.gettimeofday () -. t0 in
  {
    queue;
    offered = !offered;
    delivered = !delivered;
    shed = !shed;
    consumed = !consumed;
    max_len = !max_len;
    seconds;
  }

type steady_result = {
  s_queue : string;
  s_consumed : int;
  s_seconds : float;
  s_conserved : bool;
}

let run_steady ~queue ~capacity ~seconds () =
  let impl = Registry.find queue in
  let inst = impl.Registry.create ~capacity in
  let item = { Registry.tag = 1 } in
  (* Check the clock once per block, not per pair: a gettimeofday per
     item would dominate the very cost being measured. *)
  let block = 10_000 in
  let produced = ref 0 and consumed = ref 0 in
  let t0 = Unix.gettimeofday () in
  let fin = t0 +. seconds in
  let running = ref true in
  while !running do
    for _ = 1 to block do
      if inst.Registry.enqueue item then incr produced;
      match inst.Registry.dequeue () with
      | Some _ -> incr consumed
      | None -> ()
    done;
    if Unix.gettimeofday () >= fin then running := false
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let leftover = ref 0 in
  let draining = ref true in
  while !draining do
    match inst.Registry.dequeue () with
    | Some _ -> incr leftover
    | None -> draining := false
  done;
  {
    s_queue = queue;
    s_consumed = !consumed;
    s_seconds = elapsed;
    s_conserved = !produced = !consumed + !leftover;
  }

let mops s = float_of_int s.s_consumed /. s.s_seconds /. 1e6

let summary_rows fixed_b seg_b fixed_s seg_s =
  let burst_row (b : burst_result) =
    {
      Summary.bench = "burst_sweep";
      queue = b.queue;
      variant = "burst";
      domains = 1;
      runs = 1;
      items = b.delivered;
      mitems_per_s = float_of_int b.delivered /. b.seconds /. 1e6;
      p50_ns = Float.nan;
      p99_ns = Float.nan;
      p999_ns = Float.nan;
    }
  and steady_row (s : steady_result) =
    {
      Summary.bench = "burst_sweep";
      queue = s.s_queue;
      variant = "steady";
      domains = 1;
      runs = 1;
      items = s.s_consumed;
      mitems_per_s = mops s;
      p50_ns = Float.nan;
      p99_ns = Float.nan;
      p999_ns = Float.nan;
    }
  in
  [ burst_row fixed_b; burst_row seg_b; steady_row fixed_s; steady_row seg_s ]

let check_verdicts ~max_ratio fixed_b seg_b fixed_s seg_s =
  let ratio = mops fixed_s /. mops seg_s in
  let checks =
    [
      ( Printf.sprintf "fixed ring sheds under a 10x burst (%d shed)"
          fixed_b.shed,
        fixed_b.shed > 0 );
      ( Printf.sprintf "segmented absorbs the whole burst (%d shed)" seg_b.shed,
        seg_b.shed = 0 && seg_b.delivered = seg_b.offered );
      ( "burst conservation (fixed)",
        fixed_b.consumed = fixed_b.delivered );
      ("burst conservation (segmented)", seg_b.consumed = seg_b.delivered);
      ("steady conservation (fixed)", fixed_s.s_conserved);
      ("steady conservation (segmented)", seg_s.s_conserved);
      ( Printf.sprintf "steady-state cost ratio %.3f <= %.2f" ratio max_ratio,
        Float.is_finite ratio && ratio <= max_ratio );
    ]
  in
  List.iter
    (fun (what, ok) ->
      Printf.printf "  %-55s %s\n" what (if ok then "ok" else "FAIL"))
    checks;
  List.for_all snd checks

let run queue_fixed queue_seg capacity mult bursts seconds max_ratio gate out
    summary_path =
  Printf.printf
    "# burst_sweep: %s (fixed, capacity %d) vs %s (segmented, segment \
     capacity %d), %dx bursts x%d, steady %.1fs\n%!"
    queue_fixed capacity queue_seg capacity mult bursts seconds;
  let fixed_b = run_burst ~queue:queue_fixed ~capacity ~mult ~bursts () in
  let seg_b = run_burst ~queue:queue_seg ~capacity ~mult ~bursts () in
  let fixed_s = run_steady ~queue:queue_fixed ~capacity ~seconds () in
  let seg_s = run_steady ~queue:queue_seg ~capacity ~seconds () in
  let ratio = mops fixed_s /. mops seg_s in
  let t =
    Table.create ~title:"10x burst absorption: segmented vs fixed ring"
      ~columns:
        [
          "queue"; "phase"; "offered"; "delivered"; "shed"; "consumed";
          "max_len"; "seconds"; "mitems_per_sec"; "cost_ratio_vs_fixed";
        ]
  in
  List.iter
    (fun (b : burst_result) ->
      Table.add_row t
        [
          b.queue; "burst";
          string_of_int b.offered;
          string_of_int b.delivered;
          string_of_int b.shed;
          string_of_int b.consumed;
          string_of_int b.max_len;
          Printf.sprintf "%.4f" b.seconds;
          "-"; "-";
        ])
    [ fixed_b; seg_b ];
  List.iter
    (fun (s : steady_result) ->
      Table.add_row t
        [
          s.s_queue; "steady"; "-";
          string_of_int s.s_consumed;
          "0";
          string_of_int s.s_consumed;
          "-";
          Printf.sprintf "%.3f" s.s_seconds;
          Printf.sprintf "%.4f" (mops s);
          (if s.s_queue = queue_seg then Printf.sprintf "%.3f" ratio else "1.000");
        ])
    [ fixed_s; seg_s ];
  print_string (Table.render t);
  let ok = check_verdicts ~max_ratio fixed_b seg_b fixed_s seg_s in
  if gate then begin
    if ok then print_endline "burst_sweep gate: OK"
    else begin
      print_endline "burst_sweep gate: FAIL";
      exit 1
    end
  end
  else begin
    let csv = Table.render_csv t in
    (match Filename.dirname out with
    | "" | "." -> ()
    | dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
    let oc = open_out out in
    output_string oc csv;
    close_out oc;
    Printf.printf "csv written to %s\n" out;
    let n =
      Summary.write ~path:summary_path
        (summary_rows fixed_b seg_b fixed_s seg_s)
    in
    Printf.printf "bench summary: %d rows in %s\n" n summary_path;
    if not ok then exit 1
  end

let queue_fixed_term =
  let doc = "Fixed-capacity registry row (the shedding baseline)." in
  Arg.(value & opt string "evequoz-cas" & info [ "fixed" ] ~docv:"QUEUE" ~doc)

let queue_seg_term =
  let doc = "Segmented (unbounded) registry row." in
  Arg.(value & opt string "evequoz-seg" & info [ "seg" ] ~docv:"QUEUE" ~doc)

let capacity_term =
  let doc =
    "Ring capacity; the segmented queue uses it as its segment capacity."
  in
  Arg.(value & opt int 64 & info [ "capacity"; "c" ] ~docv:"N" ~doc)

let mult_term =
  let doc = "Burst intensity: items offered per drain tick." in
  Arg.(value & opt int 10 & info [ "mult" ] ~docv:"N" ~doc)

let bursts_term =
  let doc = "Number of burst/drain cycles." in
  Arg.(value & opt int 3 & info [ "bursts" ] ~docv:"N" ~doc)

let seconds_term =
  let doc = "Wall-clock duration of each steady-state cell." in
  Arg.(value & opt float 1.0 & info [ "seconds" ] ~docv:"S" ~doc)

let max_ratio_term =
  let doc =
    "Largest acceptable segmented-over-fixed steady-state cost ratio."
  in
  Arg.(value & opt float 1.25 & info [ "max-cost-ratio" ] ~docv:"R" ~doc)

let gate_term =
  let doc =
    "CI mode: run both phases and fail unless the fixed ring sheds, the \
     segmented queue absorbs everything, and the cost ratio holds; writes \
     no files."
  in
  Arg.(value & flag & info [ "gate" ] ~doc)

let out_term =
  Arg.(value & opt string "results/burst_sweep.csv"
       & info [ "out"; "o" ] ~docv:"PATH" ~doc:"CSV output path.")

let summary_term =
  Arg.(value & opt string Summary.default_path
       & info [ "summary" ] ~docv:"PATH" ~doc:"Bench-summary trajectory path.")

let cmd =
  let doc = "Burst absorption of the segmented queue vs a fixed ring" in
  Cmd.v (Cmd.info "burst_sweep" ~doc)
    Term.(const run $ queue_fixed_term $ queue_seg_term $ capacity_term
          $ mult_term $ bursts_term $ seconds_term $ max_ratio_term
          $ gate_term $ out_term $ summary_term)

let () = exit (Cmd.eval cmd)
