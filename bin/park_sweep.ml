(* Oversubscription benchmark for the parking layer: producer/consumer
   pairs over one registry row, at domain counts of 1x / 2x / 4x the
   core count, once with spinning retries (the repo's only blocking
   strategy before [Nbq_wait]) and once parked on eventcounts via the
   instance's [enqueue_until]/[dequeue_until].

   The point of the artifact: with more domains than cores, a spinning
   retry burns the whole OS timeslice that the counterpart domain needs
   to make the condition true, so throughput collapses as
   oversubscription grows; a parked waiter frees the core within ~1ms
   and throughput holds.  Each cell also checks item conservation
   (produced = consumed + drained leftover).

   --gate runs the oversubscription stress gate instead of the sweep:
   16 parked domains on one row, requiring conservation and per-domain
   progress (no stranded parked domain).  Wired into bin/check.sh. *)

open Cmdliner
module Registry = Nbq_harness.Registry
module Table = Nbq_harness.Table

type mode = Spin | Park

let mode_to_string = function Spin -> "spin" | Park -> "park"

type cell = {
  queue : string;
  domains : int;
  mode : mode;
  seconds : float;      (* measured wall-clock for the cell *)
  produced : int;
  consumed : int;
  leftover : int;       (* drained from the queue after the workers stop *)
  min_domain_ops : int; (* slowest worker's completed operations *)
}

let conserved c = c.produced = c.consumed + c.leftover
let mops c = float_of_int c.consumed /. c.seconds /. 1e6

(* Deadline slice for parked workers: long enough that a blocked worker
   really parks (many ticks), short enough that the stop flag is honoured
   promptly once the cell ends. *)
let slice = 0.05

let producer_loop ~mode ~stop (inst : Registry.instance) =
  let item = { Registry.tag = 1 } in
  let count = ref 0 in
  (match mode with
  | Park ->
      while not (Atomic.get stop) do
        let deadline = Unix.gettimeofday () +. slice in
        if inst.Registry.enqueue_until ~deadline item then incr count
      done
  | Spin ->
      while not (Atomic.get stop) do
        if inst.Registry.enqueue item then incr count
        else Domain.cpu_relax ()
      done);
  !count

let consumer_loop ~mode ~stop (inst : Registry.instance) =
  let count = ref 0 in
  let deq () =
    match mode with
    | Park ->
        let deadline = Unix.gettimeofday () +. slice in
        inst.Registry.dequeue_until ~deadline
    | Spin -> inst.Registry.dequeue ()
  in
  let running = ref true in
  while !running do
    match deq () with
    | Some _ -> incr count
    | None ->
        if Atomic.get stop then running := false
        else if mode = Spin then Domain.cpu_relax ()
  done;
  !count

let run_cell ?tracer ~queue ~domains ~mode ~seconds ~capacity () =
  let impl = Registry.find queue in
  let inst =
    match tracer with
    | None -> impl.Registry.create ~capacity
    | Some tr -> impl.Registry.create_traced ~metrics:None ~tracer:tr ~capacity
  in
  let stop = Atomic.make false in
  let t0 = Unix.gettimeofday () in
  let result =
    if domains < 2 then begin
      (* Degenerate single-domain cell: alternate the two roles; nothing
         ever blocks, so the mode only exercises the fast paths. *)
      let produced = ref 0 and consumed = ref 0 in
      let item = { Registry.tag = 1 } in
      let fin = t0 +. seconds in
      while Unix.gettimeofday () < fin do
        if inst.Registry.enqueue item then incr produced;
        match inst.Registry.dequeue () with
        | Some _ -> incr consumed
        | None -> ()
      done;
      (!produced, !consumed, min !produced !consumed)
    end
    else begin
      let producers = domains / 2 and consumers = domains - (domains / 2) in
      let ps =
        Array.init producers (fun _ ->
            Domain.spawn (fun () -> producer_loop ~mode ~stop inst))
      in
      let cs =
        Array.init consumers (fun _ ->
            Domain.spawn (fun () -> consumer_loop ~mode ~stop inst))
      in
      Unix.sleepf seconds;
      Atomic.set stop true;
      let produced_per = Array.map Domain.join ps in
      let consumed_per = Array.map Domain.join cs in
      let sum = Array.fold_left ( + ) 0 in
      let min_ops =
        Array.fold_left min max_int (Array.append produced_per consumed_per)
      in
      (sum produced_per, sum consumed_per, min_ops)
    end
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  let produced, consumed, min_domain_ops = result in
  let leftover = ref 0 in
  let draining = ref true in
  while !draining do
    match inst.Registry.dequeue () with
    | Some _ -> incr leftover
    | None -> draining := false
  done;
  {
    queue;
    domains;
    mode;
    seconds = elapsed;
    produced;
    consumed;
    leftover = !leftover;
    min_domain_ops;
  }

(* Same re-exec idiom as shard_sweep: the minor-heap arena is reserved at
   startup, so a too-small reservation means one exec of ourselves with
   OCAMLRUNPARAM extended.  Oversubscribed cells otherwise measure the
   stop-the-world minor-GC rendezvous, not the waiting strategy. *)
let ensure_minor_heap words =
  if words > 0 && (Gc.get ()).Gc.minor_heap_size < words then begin
    let cur = try Sys.getenv "OCAMLRUNPARAM" with Not_found -> "" in
    let param = Printf.sprintf "s=%d" words in
    Unix.putenv "OCAMLRUNPARAM"
      (if cur = "" then param else cur ^ "," ^ param);
    Unix.execv Sys.executable_name Sys.argv
  end

let parse_int_list flag s =
  List.map
    (fun part ->
      match int_of_string_opt (String.trim part) with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf
            "park_sweep: invalid %s %S (expected comma-separated positive \
             integers)\n%!"
            flag s;
          exit 2)
    (String.split_on_char ',' s)

let default_domains () =
  let cores = Domain.recommended_domain_count () in
  Printf.sprintf "%d,%d,%d" cores (2 * cores) (4 * cores)

let run_gate ?tracer ~queue ~seconds ~capacity ~min_ops () =
  let domains = 16 in
  Printf.printf
    "park_sweep gate: %d parked domains on %s for %.1fs (capacity %d)\n%!"
    domains queue seconds capacity;
  let c = run_cell ?tracer ~queue ~domains ~mode:Park ~seconds ~capacity () in
  let ok_conserved = conserved c in
  let ok_progress = c.min_domain_ops >= min_ops in
  Printf.printf
    "  produced=%d consumed=%d leftover=%d min-domain-ops=%d (need >= %d)\n\
     \  conservation: %s   progress: %s\n"
    c.produced c.consumed c.leftover c.min_domain_ops min_ops
    (if ok_conserved then "ok" else "FAIL")
    (if ok_progress then "ok" else "FAIL");
  if ok_conserved && ok_progress then print_endline "park_sweep gate: OK"
  else begin
    print_endline "park_sweep gate: FAIL";
    exit 1
  end

let write_trace tracer =
  match tracer with
  | None -> ()
  | Some tr ->
      Nbq_trace.Recorder.disarm tr;
      let path = "results/trace-park_sweep.json" in
      Nbq_trace.Export.write_chrome ~process_name:"park_sweep" ~path tr;
      (match Nbq_trace.Export.validate_chrome_file path with
      | Ok s ->
          Printf.printf
            "trace written to %s (%d domain tracks, %d spans, %d instants; \
             open in ui.perfetto.dev)\n"
            path s.Nbq_trace.Export.tracks s.Nbq_trace.Export.spans
            s.Nbq_trace.Export.instants
      | Error e ->
          Printf.eprintf "trace validation failed: %s\n%!" e;
          exit 1)

let run queues_csv domains_csv seconds capacity minor_heap gate min_ops out
    with_trace =
  ensure_minor_heap minor_heap;
  let tracer =
    if with_trace then begin
      let tr = Nbq_trace.Recorder.create () in
      Nbq_trace.Recorder.arm tr;
      Some tr
    end
    else None
  in
  if gate then begin
    run_gate ?tracer
      ~queue:(List.hd (String.split_on_char ',' queues_csv))
      ~seconds ~capacity ~min_ops ();
    write_trace tracer
  end
  else begin
    let queues = String.split_on_char ',' queues_csv in
    let domains_list =
      parse_int_list "--domains"
        (if domains_csv = "" then default_domains () else domains_csv)
    in
    Printf.eprintf
      "# park_sweep: queues [%s] x domains [%s] x {spin,park}, %.1fs/cell, \
       capacity %d\n%!"
      queues_csv
      (String.concat ";" (List.map string_of_int domains_list))
      seconds capacity;
    (* All spin cells run before the first park cell, because the first
       real park starts the wait layer's ~1ms ticker domain for the rest
       of the process — and its periodic wakeups preempt spinners, which
       inflates later spin cells ~3x.  The spin baseline is the
       pre-[Nbq_wait] repo, which had no ticker. *)
    let grid mode =
      List.concat_map
        (fun queue ->
          List.map
            (fun domains ->
              let c =
                run_cell ?tracer ~queue ~domains ~mode ~seconds ~capacity ()
              in
              Printf.eprintf "#   %s domains=%-3d %s: %.4f Mitems/s%s\n%!"
                queue domains (mode_to_string mode) (mops c)
                (if conserved c then "" else "  CONSERVATION VIOLATED");
              c)
            domains_list)
        queues
    in
    let spin_cells = grid Spin in
    let park_cells = grid Park in
    (* Interleave for the table: spin and park side by side per config. *)
    let cells =
      List.concat_map
        (fun s ->
          s
          :: List.filter
               (fun p -> p.queue = s.queue && p.domains = s.domains)
               park_cells)
        spin_cells
    in
    (* Parked speedup over the spin cell of the same queue and domain
       count — the acceptance column. *)
    let spin_baseline c =
      List.find_opt
        (fun b -> b.mode = Spin && b.queue = c.queue && b.domains = c.domains)
        cells
    in
    let t =
      Table.create ~title:"parked vs spinning under oversubscription"
        ~columns:
          [
            "queue"; "domains"; "mode"; "seconds"; "produced"; "consumed";
            "mitems_per_sec"; "conserved"; "park_speedup_vs_spin";
          ]
    in
    List.iter
      (fun c ->
        let speedup =
          match (c.mode, spin_baseline c) with
          | Park, Some b when mops b > 0.0 ->
              Printf.sprintf "%.2f" (mops c /. mops b)
          | _ -> "-"
        in
        Table.add_row t
          [
            c.queue;
            string_of_int c.domains;
            mode_to_string c.mode;
            Printf.sprintf "%.3f" c.seconds;
            string_of_int c.produced;
            string_of_int c.consumed;
            Printf.sprintf "%.4f" (mops c);
            (if conserved c then "yes" else "NO");
            speedup;
          ])
      cells;
    print_string (Table.render t);
    let csv = Table.render_csv t in
    (match Filename.dirname out with
    | "" | "." -> ()
    | dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
    let oc = open_out out in
    output_string oc csv;
    close_out oc;
    Printf.printf "\ncsv written to %s\n" out;
    write_trace tracer;
    if List.exists (fun c -> not (conserved c)) cells then exit 1
  end

let queues_term =
  let doc = "Comma-separated registry rows to sweep." in
  Arg.(value & opt string "evequoz-cas" & info [ "queue"; "q" ] ~docv:"LIST" ~doc)

let domains_term =
  let doc =
    "Comma-separated total domain counts (split into producer/consumer \
     halves).  Default: 1x, 2x and 4x the recommended domain count."
  in
  Arg.(value & opt string "" & info [ "domains"; "d" ] ~docv:"LIST" ~doc)

let seconds_term =
  let doc = "Wall-clock duration of each cell." in
  Arg.(value & opt float 1.0 & info [ "seconds" ] ~docv:"S" ~doc)

let capacity_term =
  let doc =
    "Queue capacity; small on purpose so both sides block under bursts."
  in
  Arg.(value & opt int 64 & info [ "capacity"; "c" ] ~docv:"N" ~doc)

let minor_heap_term =
  let doc =
    "Per-domain minor heap size in words (0 = runtime default); see \
     shard_sweep."
  in
  Arg.(value & opt int 8_388_608 & info [ "minor-heap" ] ~docv:"WORDS" ~doc)

let gate_term =
  let doc =
    "Run the oversubscription stress gate instead of the sweep: 16 parked \
     domains on the first --queue row, requiring conservation and \
     per-domain progress."
  in
  Arg.(value & flag & info [ "gate" ] ~doc)

let min_ops_term =
  let doc = "Per-domain operation floor for the $(b,--gate) verdict." in
  Arg.(value & opt int 100 & info [ "min-ops" ] ~docv:"N" ~doc)

let out_term =
  Arg.(value & opt string "results/park_sweep.csv"
       & info [ "out"; "o" ] ~docv:"PATH" ~doc:"CSV output path.")

let cmd =
  let doc =
    "Parked vs spinning blocking throughput under domain oversubscription"
  in
  Cmd.v (Cmd.info "park_sweep" ~doc)
    Term.(const run $ queues_term $ domains_term $ seconds_term
          $ capacity_term $ minor_heap_term $ gate_term $ min_ops_term
          $ out_term $ Fig_common.trace_term)

let () = exit (Cmd.eval cmd)
