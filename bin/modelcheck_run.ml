(* Exhaustive small-scope verification from the command line: run the
   model-checking spec catalog (Scenarios.specs) through the DPOR explorer,
   check safety on every completed schedule and the declared progress
   guarantee on every divergent one, and fail loudly — with an
   NBQ-FAULT-REPRO v2-mc line and the full interleaving dump — on any
   violation an (algorithm, scenario) was not seeded to produce.

     dune exec bin/modelcheck_run.exe -- -a evequoz-llsc --min-reduction 5
     dune exec bin/modelcheck_run.exe -- --json --max-steps 60

   --no-dpor switches the same engine to plain (optionally
   preemption-bounded) DFS — the baseline DPOR's reduction factor is
   measured against. *)

open Cmdliner
module MC = Nbq_modelcheck
module Sink = Nbq_obs.Sink

type row = {
  spec : MC.Scenarios.spec;
  stats : MC.Dpor.stats option;  (* None: violation ended exploration *)
  violation : (int list * string) option;
  baseline : (int * bool) option;  (* DFS schedules, DFS budget exhausted *)
  seconds : float;
}

let explore_spec ~dpor ~preemption_bound ~max_steps ~max_schedules
    (spec : MC.Scenarios.spec) =
  let t0 = Unix.gettimeofday () in
  let stats, violation =
    match
      MC.Dpor.explore ~dpor ~preemption_bound ~max_steps ~max_schedules
        ~progress:spec.progress spec.build_instance
    with
    | stats -> (Some stats, None)
    | exception MC.Sim.Violation { schedule; message } ->
        (None, Some (schedule, message))
  in
  (stats, violation, Unix.gettimeofday () -. t0)

(* The unreduced-DFS cost of a spec, for the reduction-factor column.  The
   budget is capped relative to the DPOR count: once DFS has spent
   [min_reduction] times DPOR's schedules the factor is established, so
   exploring further buys nothing.  A violation found by the baseline is
   fine (it explores a superset ordering); treat its schedule count at the
   point of discovery as a lower bound. *)
let baseline_of ~max_steps ~max_schedules ~min_reduction spec dpor_schedules =
  let budget = min max_schedules ((min_reduction * dpor_schedules) + 1) in
  match
    explore_spec ~dpor:false ~preemption_bound:None ~max_steps
      ~max_schedules:budget spec
  with
  | Some st, _, _ -> (st.schedules, not st.exhaustive)
  | None, _, _ -> (budget, true)

let print_violation (spec : MC.Scenarios.spec) schedule message =
  let repro =
    MC.Repro.of_violation ~algorithm:spec.algorithm ~scenario:spec.scenario
      ~message schedule
  in
  Printf.printf "  %s\n  %s\n" message (MC.Repro.to_line repro);
  MC.Scenarios.dump_schedule spec schedule stdout

let json_of_row r =
  let s = r.spec in
  Sink.Obj
    ([
       ("algorithm", Sink.String s.algorithm);
       ("scenario", Sink.String s.scenario);
       ("progress", Sink.String (MC.Props.progress_to_string s.progress));
       ( "expect",
         Sink.String
           (match s.expect with `Pass -> "pass" | `Violation -> "violation")
       );
       ("seconds", Sink.Float r.seconds);
     ]
    @ (match r.stats with
      | Some st ->
          [
            ("schedules", Sink.Int st.schedules);
            ("completed", Sink.Int st.completed);
            ("resolved", Sink.Int st.resolved);
            ("diverged", Sink.Int (MC.Dpor.diverged st));
            ("livelock_witnesses", Sink.Int st.livelock);
            ("exhaustive", Sink.Bool st.exhaustive);
          ]
      | None -> [])
    @ (match r.violation with
      | Some (schedule, message) ->
          [
            ("violation", Sink.String message);
            ( "repro",
              Sink.String
                (MC.Repro.to_line
                   (MC.Repro.of_violation ~algorithm:s.algorithm
                      ~scenario:s.scenario ~message schedule)) );
            ("schedule", Sink.List (List.map (fun c -> Sink.Int c) schedule));
          ]
      | None -> [])
    @
    match r.baseline with
    | Some (n, capped) ->
        [
          ("dfs_schedules", Sink.Int n);
          ("dfs_budget_exhausted", Sink.Bool capped);
        ]
    | None -> [])

let run algorithms scenarios dpor preemption_bound max_steps max_schedules
    min_reduction require_exhaustive json_path =
  let specs =
    MC.Scenarios.specs ()
    |> List.filter (fun (s : MC.Scenarios.spec) ->
           (algorithms = [] || List.mem s.algorithm algorithms)
           && (scenarios = [] || List.mem s.scenario scenarios))
  in
  (match
     List.filter
       (fun a -> not (List.mem a MC.Scenarios.spec_algorithms))
       algorithms
   with
  | [] -> ()
  | unknown ->
      Printf.eprintf "unknown algorithm(s): %s (know: %s)\n"
        (String.concat ", " unknown)
        (String.concat ", " MC.Scenarios.spec_algorithms);
      exit 2);
  if specs = [] then begin
    Printf.eprintf "no scenario matches the selection\n";
    exit 2
  end;
  let failures = ref 0 in
  Printf.printf "%-14s %-20s %10s %10s %8s %5s %9s %7s\n" "algorithm"
    "scenario" "schedules" "completed" "diverged" "full?" "reduction" "verdict";
  let rows =
    List.map
      (fun (spec : MC.Scenarios.spec) ->
        let stats, violation, seconds =
          explore_spec ~dpor ~preemption_bound ~max_steps ~max_schedules spec
        in
        let baseline =
          match (min_reduction, stats) with
          | Some r, Some st when dpor && violation = None ->
              Some (baseline_of ~max_steps ~max_schedules ~min_reduction:r spec
                      st.schedules)
          | _ -> None
        in
        let observed = match violation with None -> `Pass | Some _ -> `Violation in
        let ok = observed = spec.expect in
        if not ok then incr failures;
        let reduction_cell =
          match (baseline, stats) with
          | Some (n, capped), Some st when st.schedules > 0 ->
              Printf.sprintf "%s%.1fx"
                (if capped then ">=" else "")
                (float_of_int n /. float_of_int st.schedules)
          | _ -> "-"
        in
        (match (stats, violation) with
        | Some st, None ->
            Printf.printf "%-14s %-20s %10d %10d %8d %5s %9s %7s\n%!"
              spec.algorithm spec.scenario st.schedules st.completed
              (MC.Dpor.diverged st)
              (if st.exhaustive then "yes" else "NO")
              reduction_cell
              (if ok then "pass" else "FAIL")
        | _, Some (schedule, message) ->
            Printf.printf "%-14s %-20s %59s %7s\n%!" spec.algorithm
              spec.scenario "VIOLATION"
              (if ok then "seeded" else "FAIL");
            if ok then
              (* A seeded bug convicted as designed: print the repro line
                 (tests and docs reference it) but skip the full dump. *)
              Printf.printf "  %s\n  %s\n" message
                (MC.Repro.to_line
                   (MC.Repro.of_violation ~algorithm:spec.algorithm
                      ~scenario:spec.scenario ~message schedule))
            else print_violation spec schedule message
        | None, None -> assert false);
        (match (stats, spec.expect) with
        | Some st, `Pass when require_exhaustive && not st.exhaustive ->
            incr failures;
            Printf.printf "  FAIL: exploration not exhaustive (budget %d)\n"
              max_schedules
        | _ -> ());
        (match (min_reduction, baseline, stats) with
        | Some r, Some (n, capped), Some st when st.schedules > 0 ->
            let factor = float_of_int n /. float_of_int st.schedules in
            if (not capped) && factor < float_of_int r then begin
              incr failures;
              Printf.printf "  FAIL: reduction %.1fx < required %dx\n" factor r
            end
        | _ -> ());
        { spec; stats; violation; baseline; seconds })
      specs
  in
  (match json_path with
  | None -> ()
  | Some path ->
      let dir = Filename.dirname path in
      if dir <> "" && dir <> "." && not (Sys.file_exists dir) then
        Unix.mkdir dir 0o755;
      let oc = open_out path in
      output_string oc
        (Sink.json_to_string
           (Sink.Obj
              [
                ( "config",
                  Sink.Obj
                    [
                      ("dpor", Sink.Bool dpor);
                      ("max_steps", Sink.Int max_steps);
                      ("max_schedules", Sink.Int max_schedules);
                      ( "preemption_bound",
                        match preemption_bound with
                        | None -> Sink.Null
                        | Some b -> Sink.Int b );
                    ] );
                ("rows", Sink.List (List.map json_of_row rows));
                ("failures", Sink.Int !failures);
              ]));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path);
  if !failures > 0 then exit 1

(* --- CLI ------------------------------------------------------------------ *)

let algorithms_term =
  let doc =
    "Algorithm to check (repeatable; default: the whole catalog).  Besides \
     the queue algorithms this includes the catalog-only entries \
     sharded-llsc, sim-wait and toy-blocking."
  in
  Arg.(
    value
    & opt_all string []
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let scenarios_term =
  let doc = "Scenario slug to check (repeatable; default: all)." in
  Arg.(value & opt_all string [] & info [ "s"; "scenario" ] ~docv:"SLUG" ~doc)

let dpor_term =
  let doc = "Sleep-set + persistent-set DPOR (default).  $(b,--no-dpor) \
             switches to plain DFS over the same choice tree." in
  Arg.(value & opt ~vopt:true bool true & info [ "dpor" ] ~docv:"BOOL" ~doc)

let no_dpor_term =
  let doc = "Plain DFS (no partial-order reduction)." in
  Arg.(value & flag & info [ "no-dpor" ] ~doc)

let bound_term =
  let doc =
    "Preemption bound for $(b,--no-dpor) mode (CHESS-style); DFS coverage \
     is then complete for schedules with at most $(docv) preemptions.  \
     Ignored under DPOR, which needs the full tree to stay sound."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "preemption-bound"; "b" ] ~docv:"N" ~doc)

let max_steps_term =
  let doc =
    "Per-schedule step bound; cut schedules are finished under a fair \
     scheduler and classified by the liveness layer.  60 keeps every \
     catalog scenario exhaustive in seconds; raising it grows the tree \
     steeply (the two-ops-each scenarios pass 2M schedules by 150)."
  in
  Arg.(value & opt int 60 & info [ "max-steps" ] ~docv:"N" ~doc)

let max_schedules_term =
  let doc = "Schedule budget per scenario." in
  Arg.(value & opt int 2_000_000 & info [ "max-schedules" ] ~docv:"N" ~doc)

let min_reduction_term =
  let doc =
    "Also run the plain-DFS baseline (budget-capped at $(docv) times the \
     DPOR count) and fail any pass-expected scenario whose DPOR reduction \
     factor lands below $(docv)."
  in
  Arg.(value & opt (some int) None & info [ "min-reduction" ] ~docv:"N" ~doc)

let require_exhaustive_term =
  let doc = "Fail if any pass-expected scenario exhausts its schedule \
             budget instead of completing the tree." in
  Arg.(value & flag & info [ "require-exhaustive" ] ~doc)

let json_term =
  let doc = "Write a machine-readable summary to $(docv)." in
  Arg.(
    value
    & opt ~vopt:(Some "results/modelcheck.json") (some string) None
    & info [ "json" ] ~docv:"PATH" ~doc)

let cmd =
  let doc = "Exhaustively model-check the queues on small scenarios" in
  let combine algorithms scenarios dpor no_dpor bound max_steps max_schedules
      min_reduction require_exhaustive json_path =
    run algorithms scenarios (dpor && not no_dpor) bound max_steps
      max_schedules min_reduction require_exhaustive json_path
  in
  Cmd.v (Cmd.info "modelcheck_run" ~doc)
    Term.(
      const combine $ algorithms_term $ scenarios_term $ dpor_term
      $ no_dpor_term $ bound_term $ max_steps_term $ max_schedules_term
      $ min_reduction_term $ require_exhaustive_term $ json_term)

let () = exit (Cmd.eval cmd)
