(* Measures what an armed flight recorder costs: the same paper workload
   on the same queue, once through the plain registry path and once with
   the tracer attached and armed (sampled operation spans, default 1/64,
   plus in-algorithm events inside sampled spans).  The acceptance bar is
   traced/untraced <= 1.10.

   Same interleaved-block / min-run / median-ratio discipline as
   obs_overhead: a single block where the oversubscribed scheduler parks
   one variant unluckily cannot drive the verdict. *)

open Cmdliner
open Nbq_harness

let run queue threads runs scale sample blocks =
  let workload = Fig_common.workload_of_scale scale in
  let impl = Registry.find queue in
  let cfg = { Runner.threads; runs; workload; capacity = None } in
  let ratios =
    List.init blocks (fun _ ->
        let plain = (Runner.measure impl cfg).Runner.summary.Stats.min in
        let tracer = Nbq_trace.Recorder.create ~sample () in
        Nbq_trace.Recorder.arm tracer;
        let traced =
          (Runner.measure ~tracer impl cfg).Runner.summary.Stats.min
        in
        Nbq_trace.Recorder.disarm tracer;
        traced /. plain)
  in
  let ratio = (Stats.summarize ratios).Stats.median in
  Printf.printf
    "trace overhead: %s @ %d threads, %d runs x %d blocks, %d \
     iterations/thread, 1/%d span sampling\n"
    queue threads runs blocks workload.Workload.iterations (max 1 sample);
  Printf.printf "  block ratios: %s\n"
    (String.concat " " (List.map (fun r -> Printf.sprintf "%.3f" r) ratios));
  Printf.printf "  median ratio: %.3fx (%+.1f%%)  [target <= 1.10x]  %s\n" ratio
    ((ratio -. 1.0) *. 100.0)
    (if ratio <= 1.10 then "PASS" else "WARN");
  if ratio > 1.10 then exit 1

let queue_term =
  let doc = "Queue to measure." in
  Arg.(value & opt string "evequoz-cas" & info [ "queue"; "q" ] ~docv:"NAME" ~doc)

let threads_term =
  let doc = "Domains." in
  Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"N" ~doc)

let sample_term =
  let doc = "Span sampling period (1 = trace every operation)." in
  Arg.(value & opt int 64 & info [ "sample" ] ~docv:"N" ~doc)

let blocks_term =
  let doc =
    "Interleaved plain/traced measurement blocks; the verdict is the \
     median block ratio, so more blocks buy robustness against scheduler \
     noise on oversubscribed boxes."
  in
  Arg.(value & opt int 6 & info [ "blocks" ] ~docv:"N" ~doc)

let cmd =
  let doc = "Measure the throughput cost of an armed flight recorder" in
  Cmd.v (Cmd.info "trace_overhead" ~doc)
    Term.(
      const run $ queue_term $ threads_term $ Fig_common.runs_term
      $ Fig_common.scale_term $ sample_term $ blocks_term)

let () = exit (Cmd.eval cmd)
