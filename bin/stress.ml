(* Long-running correctness soak: hammer queues from many domains and
   check the scalable FIFO properties on the resulting histories.  Exits
   non-zero on the first violation.  Used for overnight confidence runs;
   `dune runtest` covers the same ground at a smaller scale. *)

open Cmdliner
open Nbq_harness

(* Deadline slice for --parked operations: long enough to park (several
   wait-layer ticks), short enough that a timed-out attempt still maps
   onto the checker's full/empty semantics plausibly. *)
let parked_slice = 0.005

(* Drive the instance's native batch entry points (sharded queues override
   them) as well as the single operations.  With [parked], the single
   operations go through the instance's blocking [*_until] path instead of
   a bare attempt, so the soak also exercises park/wake under the checker:
   a lost wakeup shows up as a hung run, a mis-delivered item as a history
   violation. *)
let stress_ops ~parked (q : Registry.instance) =
  let enq p =
    if parked then
      q.Registry.enqueue_until ~deadline:(Unix.gettimeofday () +. parked_slice) p
    else q.Registry.enqueue p
  and deq () =
    if parked then
      q.Registry.dequeue_until ~deadline:(Unix.gettimeofday () +. parked_slice)
    else q.Registry.dequeue ()
  in
  {
    Nbq_lincheck.Stress.enqueue = (fun v -> enq { Registry.tag = v });
    dequeue = (fun () -> Option.map (fun p -> p.Registry.tag) (deq ()));
    enqueue_batch =
      (fun vs ->
        q.Registry.enqueue_batch
          (Array.map (fun v -> { Registry.tag = v }) vs));
    dequeue_batch =
      (fun k ->
        List.map (fun p -> p.Registry.tag) (q.Registry.dequeue_batch k));
  }

let soak_impl (impl : Registry.impl) ~threads ~ops ~seed ~parked =
  let q = impl.Registry.create ~capacity:4096 in
  let ops_for _thread = stress_ops ~parked q in
  Nbq_lincheck.Stress.check_big_run ~with_batches:true
    ~relaxed_order:impl.Registry.relaxed_fifo ~threads ~ops_per_thread:ops
    ~seed
    ~final_length:(fun () -> q.Registry.length ())
    ops_for

let exact_impl (impl : Registry.impl) ~rounds ~seed ~parked =
  let make_round () =
    let q = impl.Registry.create ~capacity:64 in
    fun _thread -> stress_ops ~parked q
  in
  Nbq_lincheck.Stress.check_small_rounds ~with_batches:true ~rounds ~threads:3
    ~ops_per_thread:5 ~seed make_round

let run names threads ops rounds seed parked =
  let impls =
    match names with
    | [] -> Registry.concurrent
    | names -> List.map Registry.find names
  in
  let failures = ref 0 in
  List.iter
    (fun (impl : Registry.impl) ->
      Printf.printf "%-18s big run (%d domains x %d ops)... %!"
        impl.Registry.name threads ops;
      (match soak_impl impl ~threads ~ops ~seed ~parked with
      | Nbq_lincheck.Checker.Ok -> print_endline "ok"
      | Nbq_lincheck.Checker.Violation msg ->
          incr failures;
          Printf.printf "VIOLATION: %s\n" msg);
      if impl.Registry.relaxed_fifo then
        (* Sharded queues report false-empty and reorder across shards;
           the exact FIFO spec does not apply to them. *)
        Printf.printf "%-18s exact check skipped (relaxed FIFO)\n"
          impl.Registry.name
      else begin
        Printf.printf "%-18s exact check (%d rounds)... %!"
          impl.Registry.name rounds;
        match exact_impl impl ~rounds ~seed ~parked with
        | Nbq_lincheck.Checker.Ok -> print_endline "ok"
        | Nbq_lincheck.Checker.Violation msg ->
            incr failures;
            Printf.printf "VIOLATION: %s\n" msg
      end)
    impls;
  if !failures > 0 then begin
    Printf.printf "%d violation(s)\n" !failures;
    exit 1
  end
  else print_endline "all clear"

let names_term =
  let doc = "Queues to stress (default: every concurrent implementation)." in
  Arg.(value & pos_all string [] & info [] ~docv:"QUEUE" ~doc)

let threads_term =
  Arg.(value & opt int 4 & info [ "threads"; "t" ] ~docv:"N"
         ~doc:"Domains per big run.")

let ops_term =
  Arg.(value & opt int 50_000 & info [ "ops" ] ~docv:"N"
         ~doc:"Operations per domain in the big run.")

let rounds_term =
  Arg.(value & opt int 300 & info [ "rounds" ] ~docv:"N"
         ~doc:"Episodes for the exact linearizability check.")

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"PRNG seed.")

let parked_term =
  let doc =
    "Run the single operations through the blocking parked path \
     (5ms-deadline $(b,enqueue_until)/$(b,dequeue_until)) instead of bare \
     attempts, soaking the wait layer under the history checker."
  in
  Arg.(value & flag & info [ "parked" ] ~doc)

let cmd =
  let doc = "Correctness soak across all queue implementations" in
  Cmd.v (Cmd.info "stress" ~doc)
    Term.(const run $ names_term $ threads_term $ ops_term $ rounds_term
          $ seed_term $ parked_term)

let () = exit (Cmd.eval cmd)
