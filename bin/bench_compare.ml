(* Diffs two bench-summary trajectory files (results/bench_summary.json
   as written by fig6/contend/shard_sweep/ablation) and flags throughput
   regressions beyond a threshold.  Rows are joined on their identity key
   (bench, queue, variant, domains); rows present on only one side are
   listed but never fail the run.  Exit 1 iff any joined row regressed.

   --gate flips the failure condition for CI use (check.sh): absolute
   throughput varies too much across machines to gate on, so instead the
   run fails iff the current file is missing a configuration the
   committed baseline has (coverage regression) or a joined row's
   throughput is non-finite/non-positive (a sweep silently produced
   garbage).  Slowdowns are still printed, but only as information.

   The trajectory file MERGES (stale rows survive a sweep that measured
   nothing), so CURRENT alone cannot prove a family was actually
   re-measured.  --fresh FILE closes that hole: FILE holds only the rows
   the current run emitted (Bench_summary.fresh_env mirror), and for
   every (bench, variant) sweep present in it, each queue the baseline
   has under that sweep must have produced at least one fresh row —
   a family with zero fresh rows fails the gate instead of hiding
   behind yesterday's merged numbers. *)

open Cmdliner
open Nbq_harness

let fmt_f v = if Float.is_nan v then "-" else Printf.sprintf "%.3f" v
let fmt_ns v = if Float.is_nan v then "-" else Printf.sprintf "%.0f" v

let label (r : Bench_summary.row) =
  Printf.sprintf "%s/%s%s@%d" r.Bench_summary.bench r.Bench_summary.queue
    (if r.Bench_summary.variant = "" then ""
     else "[" ^ r.Bench_summary.variant ^ "]")
    r.Bench_summary.domains

(* Families the baseline expects under each (bench, variant) sweep the
   fresh run touched, minus those the fresh rows actually cover. *)
let dark_families ~base ~fresh =
  let sweep (r : Bench_summary.row) =
    (r.Bench_summary.bench, r.Bench_summary.variant)
  in
  let sweeps =
    List.sort_uniq compare (List.map sweep fresh)
  in
  List.concat_map
    (fun sw ->
      let queues_of rows =
        List.sort_uniq compare
          (List.filter_map
             (fun r ->
               if sweep r = sw then Some r.Bench_summary.queue else None)
             rows)
      in
      let covered = queues_of fresh in
      List.filter_map
        (fun q ->
          if List.mem q covered then None
          else
            let bench, variant = sw in
            Some
              (Printf.sprintf "%s/%s%s" bench q
                 (if variant = "" then "" else "[" ^ variant ^ "]")))
        (queues_of base))
    sweeps

let run baseline current threshold gate fresh =
  let load path =
    match Bench_summary.read path with
    | Ok rows -> rows
    | Error e ->
        Printf.eprintf "bench_compare: %s\n%!" e;
        exit 2
  in
  let base = load baseline and cur = load current in
  let find rows r =
    List.find_opt
      (fun r' -> Bench_summary.key r' = Bench_summary.key r)
      rows
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "bench trajectory: %s -> %s  [flag < %.0f%%]" baseline
           current
           ((1.0 -. threshold) *. 100.0))
      ~columns:
        [ "config"; "base-Mi/s"; "cur-Mi/s"; "ratio"; "p99-base"; "p99-cur";
          "verdict" ]
  in
  let regressions = ref 0 in
  let invalid = ref 0 in
  List.iter
    (fun (c : Bench_summary.row) ->
      let tp = c.Bench_summary.mitems_per_s in
      if gate && (not (Float.is_finite tp) || tp <= 0.0) then incr invalid;
      match find base c with
      | None ->
          Table.add_row t
            [ label c; "-"; fmt_f c.Bench_summary.mitems_per_s; "-"; "-";
              fmt_ns c.Bench_summary.p99_ns; "new" ]
      | Some b ->
          let ratio =
            c.Bench_summary.mitems_per_s /. b.Bench_summary.mitems_per_s
          in
          let verdict =
            if Float.is_nan ratio then "n/a"
            else if ratio < 1.0 -. threshold then begin
              incr regressions;
              "REGRESSION"
            end
            else if ratio > 1.0 +. threshold then "improved"
            else "ok"
          in
          Table.add_row t
            [ label c;
              fmt_f b.Bench_summary.mitems_per_s;
              fmt_f c.Bench_summary.mitems_per_s;
              fmt_f ratio;
              fmt_ns b.Bench_summary.p99_ns;
              fmt_ns c.Bench_summary.p99_ns;
              verdict ])
    cur;
  let dropped = ref 0 in
  List.iter
    (fun (b : Bench_summary.row) ->
      if find cur b = None then begin
        incr dropped;
        Table.add_row t
          [ label b; fmt_f b.Bench_summary.mitems_per_s; "-"; "-";
            fmt_ns b.Bench_summary.p99_ns; "-"; "dropped" ]
      end)
    base;
  print_string (Table.render t);
  print_newline ();
  if gate then begin
    if !regressions > 0 then
      Printf.printf
        "gate: %d slowdown(s) beyond %.0f%% (informational on this machine)\n"
        !regressions (threshold *. 100.0);
    let dark =
      match fresh with
      | None -> []
      | Some path -> dark_families ~base ~fresh:(load path)
    in
    List.iter
      (fun f -> Printf.printf "gate: family %s produced no fresh rows\n" f)
      dark;
    if !dropped > 0 || !invalid > 0 || dark <> [] then begin
      Printf.printf
        "gate FAILED: %d configuration(s) missing vs baseline, %d row(s) \
         with invalid throughput, %d baseline family(ies) dark in the \
         fresh run\n"
        !dropped !invalid (List.length dark);
      exit 1
    end
    else
      Printf.printf
        "gate ok: every baseline configuration present, all throughputs \
         sane\n"
  end
  else if !regressions > 0 then begin
    Printf.printf "%d regression(s) beyond %.0f%%\n" !regressions
      (threshold *. 100.0);
    exit 1
  end
  else Printf.printf "no throughput regressions beyond %.0f%%\n"
      (threshold *. 100.0)

let baseline_term =
  let doc = "Baseline bench_summary.json." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc)

let current_term =
  let doc = "Current bench_summary.json." in
  Arg.(required & pos 1 (some file) None & info [] ~docv:"CURRENT" ~doc)

let threshold_term =
  let doc = "Relative throughput drop that counts as a regression." in
  Arg.(value & opt float 0.10 & info [ "threshold" ] ~docv:"FRAC" ~doc)

let gate_term =
  let doc =
    "CI mode: fail on coverage loss (baseline configurations missing from \
     CURRENT) or invalid throughput, not on machine-dependent slowdowns."
  in
  Arg.(value & flag & info [ "gate" ] ~doc)

let fresh_term =
  let doc =
    "File holding only the rows the current run emitted (the \
     NBQ_BENCH_FRESH mirror).  With --gate, every queue the BASELINE \
     lists under a (bench, variant) sweep present in this file must have \
     at least one fresh row — the merged CURRENT file cannot show this, \
     since stale rows survive the merge."
  in
  Arg.(value & opt (some file) None & info [ "fresh" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "Compare two bench-summary files and flag throughput regressions" in
  Cmd.v (Cmd.info "bench_compare" ~doc)
    Term.(const run $ baseline_term $ current_term $ threshold_term
          $ gate_term $ fresh_term)

let () = exit (Cmd.eval cmd)
