(* Shard-count sweep: throughput of the sharded evequoz-cas front-end as
   a grid over shards x domains, in single-op and batched modes, written
   as a CSV under results/.  This is the scaling artifact for the
   multi-ring front-end: with shards >= domains each domain owns a
   private ring, so the CAS contention (SC failures, helping, retry
   storms under preemption) that flattens the single ring disappears.

   `shards = 1` rows use the plain single-ring evequoz-cas registry row —
   the baseline the speedup column is computed against. *)

open Cmdliner
open Nbq_harness

type row = {
  shards : int;
  domains : int;
  batch : int;         (* workload batch size (items per batch op) *)
  batched : bool;
  items : int;         (* moved per direction, summed over runs/threads *)
  mean_seconds : float;
  mops : float;        (* items / mean_seconds, millions *)
  measurement : Runner.measurement;
}

let impl_for ~shards =
  if shards = 1 then Registry.find "evequoz-cas"
  else Registry.sharded_evequoz_cas ~shards

let measure ~shards ~domains ~batch ~batched ~runs ~workload =
  let workload =
    { workload with Workload.enqueue_batch = batch; dequeue_batch = batch }
  in
  let impl = impl_for ~shards in
  let cfg = { Runner.threads = domains; runs; workload; capacity = None } in
  let m = Runner.measure ~batched impl cfg in
  let mean = m.Runner.summary.Stats.mean in
  let per_run_items =
    float_of_int m.Runner.items /. float_of_int (max 1 runs)
  in
  {
    shards;
    domains;
    batch;
    batched;
    items = m.Runner.items;
    mean_seconds = mean;
    mops = (if mean > 0.0 then per_run_items /. mean /. 1e6 else nan);
    measurement = m;
  }

let parse_int_list flag s =
  List.map
    (fun part ->
      match int_of_string_opt (String.trim part) with
      | Some n when n > 0 -> n
      | _ ->
          Printf.eprintf
            "shard_sweep: invalid %s %S (expected comma-separated positive \
             integers)\n%!"
            flag s;
          exit 2)
    (String.split_on_char ',' s)

(* Pin the per-domain minor heap for the whole process (every row, every
   mode) so the measurement reflects queue cost rather than the
   stop-the-world minor-GC rendezvous frequency — with many domains on few
   cores each collection must schedule every domain through the core,
   which otherwise dominates and flattens all configurations equally.  The
   runtime reserves the minor-heap arena at startup (a late [Gc.set] does
   not grow it), so when the current reservation is too small we re-exec
   ourselves once with OCAMLRUNPARAM extended. *)
let ensure_minor_heap words =
  if words > 0 && (Gc.get ()).Gc.minor_heap_size < words then begin
    let cur = try Sys.getenv "OCAMLRUNPARAM" with Not_found -> "" in
    let param = Printf.sprintf "s=%d" words in
    Unix.putenv "OCAMLRUNPARAM"
      (if cur = "" then param else cur ^ "," ^ param);
    Unix.execv Sys.executable_name Sys.argv
  end

let run shards_csv domains_csv batch_csv runs scale minor_heap out with_trace =
  ensure_minor_heap minor_heap;
  let workload = Workload.scaled_config ~scale in
  let shards_list = parse_int_list "--shards" shards_csv in
  let domains_list = parse_int_list "--domains" domains_csv in
  let batch_list = parse_int_list "--batch" batch_csv in
  Printf.eprintf
    "# shard_sweep: shards [%s] x domains [%s] x batch [%s], %d runs, %d \
     iterations, minor-heap %d words/domain\n%!"
    (String.concat ";" (List.map string_of_int shards_list))
    (String.concat ";" (List.map string_of_int domains_list))
    (String.concat ";" (List.map string_of_int batch_list))
    runs workload.Workload.iterations
    (Gc.get ()).Gc.minor_heap_size;
  let rows =
    List.concat_map
      (fun shards ->
        List.concat_map
          (fun domains ->
            List.concat_map
              (fun batch ->
                List.map
                  (fun batched ->
                    let r =
                      measure ~shards ~domains ~batch ~batched ~runs ~workload
                    in
                    Printf.eprintf
                      "#   shards=%d domains=%d batch=%-3d %s: %.3f Mitems/s\n%!"
                      shards domains batch
                      (if batched then "batched" else "single ")
                      r.mops;
                    r)
                  [ false; true ])
              batch_list)
          domains_list)
      shards_list
  in
  (* Speedup vs the single-ring row at the same domain count, batch size
     and mode. *)
  let baseline r =
    List.find_opt
      (fun b ->
        b.shards = 1 && b.domains = r.domains && b.batch = r.batch
        && b.batched = r.batched)
      rows
  in
  let t =
    Table.create ~title:"sharded evequoz-cas throughput"
      ~columns:
        [
          "shards"; "domains"; "batch"; "mode"; "items"; "mean_seconds";
          "mitems_per_sec"; "speedup_vs_1shard";
        ]
  in
  List.iter
    (fun r ->
      let speedup =
        match baseline r with
        | Some b when b.mops > 0.0 -> Printf.sprintf "%.2f" (r.mops /. b.mops)
        | _ -> "-"
      in
      Table.add_row t
        [
          string_of_int r.shards;
          string_of_int r.domains;
          string_of_int r.batch;
          (if r.batched then "batched" else "single");
          string_of_int r.items;
          Printf.sprintf "%.6f" r.mean_seconds;
          Printf.sprintf "%.4f" r.mops;
          speedup;
        ])
    rows;
  print_string (Table.render t);
  let csv = Table.render_csv t in
  (match Filename.dirname out with
  | "" | "." -> ()
  | dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
  let oc = open_out out in
  output_string oc csv;
  close_out oc;
  Printf.printf "\ncsv written to %s\n" out;
  Fig_common.write_summary
    (List.map
       (fun r ->
         let variant =
           Printf.sprintf "shards=%d,batch=%d,%s" r.shards r.batch
             (if r.batched then "batched" else "single")
         in
         Bench_summary.row_of_measurement ~bench:"shard_sweep" ~variant
           r.measurement)
       rows);
  if with_trace then
    let domains = List.fold_left max 1 domains_list in
    Fig_common.trace_pass ~prefix:"shard_sweep"
      ~impls:(List.map (fun shards -> impl_for ~shards) shards_list)
      ~threads:domains ~runs ~workload

let shards_term =
  let doc = "Comma-separated shard counts (1 = the plain single ring)." in
  Arg.(value & opt string "1,2,4,8" & info [ "shards"; "s" ] ~docv:"LIST" ~doc)

let domains_term =
  let doc = "Comma-separated domain counts to sweep." in
  Arg.(value & opt string "1,2,4,8" & info [ "domains"; "d" ] ~docv:"LIST" ~doc)

let batch_term =
  let doc =
    "Comma-separated workload batch sizes (items per batch operation; the \
     paper's workload uses 5).  Larger batches are where the ring's \
     amortized batch runs pay off."
  in
  Arg.(value & opt string "5,64" & info [ "batch"; "b" ] ~docv:"LIST" ~doc)

let runs_term =
  Arg.(value & opt int 3 & info [ "runs"; "r" ] ~docv:"N"
         ~doc:"Measurement repetitions per cell.")

let scale_term =
  Arg.(value & opt float 0.01
       & info [ "scale" ] ~docv:"F"
           ~doc:"Fraction of the paper's 100k iterations per thread.")

let minor_heap_term =
  let doc =
    "Per-domain minor heap size in words for the whole sweep process (0 = \
     leave the runtime default).  Applied identically to every row: with \
     many domains per core, minor collections are stop-the-world \
     rendezvous whose scheduling cost otherwise swamps the queues under \
     measurement."
  in
  Arg.(value & opt int 8_388_608 & info [ "minor-heap" ] ~docv:"WORDS" ~doc)

let out_term =
  Arg.(value & opt string "results/shard_sweep.csv"
       & info [ "out"; "o" ] ~docv:"PATH" ~doc:"CSV output path.")

let cmd =
  let doc = "Throughput grid: sharded evequoz-cas over shards x domains" in
  Cmd.v (Cmd.info "shard_sweep" ~doc)
    Term.(const run $ shards_term $ domains_term $ batch_term $ runs_term
          $ scale_term $ minor_heap_term $ out_term $ Fig_common.trace_term)

let () = exit (Cmd.eval cmd)
