(* Resource management (one of the paper's motivating uses): a fixed pool
   of expensive resources — think database connections — handed out and
   returned through a bounded lock-free FIFO.

   The FIFO does double duty: it is the free-list AND the fairness
   mechanism (least-recently-returned connection is reused first, which
   spreads load and keeps idle-timeout behaviour predictable).

   Clients that find the pool empty used to spin on [try_dequeue]; with
   8 clients per core that burned the very timeslices the holders needed
   to finish and release.  [Queue_intf.Blocking] parks them on an
   eventcount instead: acquire is one blocking [dequeue], release one
   blocking [enqueue], and a release wakes exactly one parked client.

   Run with:  dune exec examples/resource_pool.exe *)

module Intf = Nbq_core.Queue_intf
module Conc = Intf.Make (Intf.Capability.Bounded (Nbq_core.Evequoz_cas))
module Pool = Intf.Blocking (Conc)

type connection = {
  id : int;
  mutable uses : int; (* mutated only while checked out: single owner *)
}

let () =
  let pool_size = 4 in
  let clients = 8 in
  let requests_per_client = 2_000 in

  let pool : connection Pool.t = Pool.create ~capacity:pool_size in
  for id = 1 to pool_size do
    assert (Conc.try_enqueue (Pool.queue pool) { id; uses = 0 })
  done;

  (* All connections checked out -> parks until a release wakes us. *)
  let acquire () = Pool.dequeue pool in
  (* The pool is sized to the resources, so this blocks only transiently
     (a dequeuer mid-operation); never permanently. *)
  let release conn = Pool.enqueue pool conn in

  let workers =
    List.init clients (fun _client ->
        Domain.spawn (fun () ->
            for _ = 1 to requests_per_client do
              let conn = acquire () in
              (* Exclusive access while checked out. *)
              conn.uses <- conn.uses + 1;
              release conn
            done))
  in
  List.iter Domain.join workers;

  (* Accounting: every request used exactly one connection. *)
  let raw = Pool.queue pool in
  let drained = List.init pool_size (fun _ -> Option.get (Conc.try_dequeue raw)) in
  assert (Conc.try_dequeue raw = None);
  let total = List.fold_left (fun acc c -> acc + c.uses) 0 drained in
  List.iter
    (fun c -> Printf.printf "connection %d served %6d requests\n" c.id c.uses)
    (List.sort (fun a b -> compare a.id b.id) drained);
  Printf.printf "total %d (expected %d)\n" total (clients * requests_per_client);
  assert (total = clients * requests_per_client);
  print_endline "resource_pool: ok"
