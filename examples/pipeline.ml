(* Message buffering (one of the paper's motivating uses): a three-stage
   parallel pipeline connected by bounded lock-free queues.

     parse (2 domains) --> enrich (2 domains) --> sink (1 domain)

   The bounded capacity provides backpressure: a fast stage blocks when
   its downstream queue is full — parking its domain via the eventcount
   layer (Nbq_wait) rather than spinning, so a stalled pipeline costs no
   CPU — and memory stays bounded no matter how lopsided the stage speeds
   are.

   Run with:  dune exec examples/pipeline.exe *)

module Intf = Nbq_core.Queue_intf
module Conc = Intf.Make (Intf.Capability.Bounded (Nbq_core.Evequoz_llsc))
module Blocking = Intf.Blocking (Conc)

type raw = { line : int; text : string }
type parsed = { src : int; words : int }
type enriched = { origin : int; words' : int; shout : string }

(* End-of-stream markers let each stage shut down cleanly: every upstream
   worker sends one marker per downstream worker. *)
type 'a msg = Item of 'a | Eos

let () =
  let lines = 10_000 in
  let parse_workers = 2 and enrich_workers = 2 in

  let raw_q : raw msg Blocking.t = Blocking.create ~capacity:64 in
  let parsed_q : parsed msg Blocking.t = Blocking.create ~capacity:64 in
  let enriched_q : enriched msg Blocking.t = Blocking.create ~capacity:64 in

  (* Stage 0: source. *)
  let source =
    Domain.spawn (fun () ->
        for line = 1 to lines do
          Blocking.enqueue raw_q
            (Item { line; text = String.make (1 + (line mod 7)) 'x' })
        done;
        for _ = 1 to parse_workers do
          Blocking.enqueue raw_q Eos
        done)
  in

  (* Stage 1: parse. *)
  let parsers =
    List.init parse_workers (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Blocking.dequeue raw_q with
              | Eos -> ()
              | Item r ->
                  Blocking.enqueue parsed_q
                    (Item { src = r.line; words = String.length r.text });
                  loop ()
            in
            loop ();
            (* Each parser forwards its share of end markers. *)
            Blocking.enqueue parsed_q Eos))
  in

  (* Stage 2: enrich. *)
  let enrichers =
    List.init enrich_workers (fun _ ->
        Domain.spawn (fun () ->
            let rec loop eos_seen =
              if eos_seen >= 1 then ()
              else
                match Blocking.dequeue parsed_q with
                | Eos -> loop (eos_seen + 1)
                | Item p ->
                    Blocking.enqueue enriched_q
                      (Item
                         {
                           origin = p.src;
                           words' = p.words * 2;
                           shout = string_of_int p.words;
                         });
                    loop eos_seen
            in
            loop 0;
            Blocking.enqueue enriched_q Eos))
  in

  (* Stage 3: sink (this domain). *)
  let items = ref 0 and checksum = ref 0 and eos = ref 0 in
  while !eos < enrich_workers do
    match Blocking.dequeue enriched_q with
    | Eos -> incr eos
    | Item e ->
        incr items;
        checksum := !checksum + e.words' + String.length e.shout;
        ignore e.origin
  done;

  Domain.join source;
  List.iter Domain.join parsers;
  List.iter Domain.join enrichers;
  Printf.printf "pipeline: %d items through 3 stages, checksum %d\n" !items
    !checksum;
  assert (!items = lines);
  print_endline "pipeline: ok"
