(* Baseline-specific tests: behaviours beyond the shared conformance
   battery — statistics counters, reclamation plumbing, algorithm-specific
   cost/space characteristics. *)

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* --- Herlihy–Wing --- *)

module Hw = Nbq_baselines.Herlihy_wing

let hw_ticket_counter () =
  let q = Hw.create () in
  Alcotest.(check int) "fresh" 0 (Hw.completed_enqueues q);
  for i = 1 to 10 do
    Hw.enqueue q i
  done;
  Alcotest.(check int) "ten tickets" 10 (Hw.completed_enqueues q);
  for _ = 1 to 10 do
    ignore (Hw.try_dequeue q)
  done;
  (* Dequeues never release tickets: the array only grows (the §2 point). *)
  Alcotest.(check int) "tickets persist" 10 (Hw.completed_enqueues q)

let hw_crosses_chunk_boundary () =
  (* The chunked "infinite array" must be seamless across chunk edges
     (chunk size 256) and table growth (initial table covers 4 chunks). *)
  let q = Hw.create () in
  let n = 5_000 in
  for i = 1 to n do
    Hw.enqueue q i
  done;
  Alcotest.(check int) "length" n (Hw.length q);
  for i = 1 to n do
    Alcotest.(check (option int)) "fifo across chunks" (Some i)
      (Hw.try_dequeue q)
  done;
  Alcotest.(check (option int)) "empty" None (Hw.try_dequeue q)

let hw_scan_cost_grows () =
  (* Not a timing test (too flaky for CI): count scan *steps* indirectly by
     verifying the dequeue still works after a long history — the cost
     property itself is measured by bin/space.exe. *)
  let q = Hw.create () in
  for i = 1 to 20_000 do
    Hw.enqueue q i;
    ignore (Hw.try_dequeue q)
  done;
  Hw.enqueue q 42;
  Alcotest.(check (option int)) "works after 20k history" (Some 42)
    (Hw.try_dequeue q)

(* --- Ladan-Mozes–Shavit --- *)

module Lms = Nbq_baselines.Ladan_mozes_shavit

let lms_fix_counter_starts_zero () =
  let q = Lms.create () in
  for i = 1 to 100 do
    Lms.enqueue q i
  done;
  for i = 1 to 100 do
    Alcotest.(check (option int)) "fifo" (Some i) (Lms.try_dequeue q)
  done;
  (* Sequential use never breaks the optimism. *)
  Alcotest.(check int) "no fixups sequentially" 0 (Lms.fix_list_runs q)

let lms_survives_fix_path () =
  (* Force the repair path deterministically: enqueue via the functor on
     sim atomics is overkill here; instead exercise heavy interleaving and
     only assert integrity (the model checker covers the fix path
     exhaustively). *)
  let q = Lms.create () in
  let n = 20_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Lms.enqueue q i
        done)
  in
  let got = ref 0 and last = ref 0 and ordered = ref true in
  while !got < n do
    match Lms.try_dequeue q with
    | Some v ->
        if v <= !last then ordered := false;
        last := v;
        incr got
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check bool) "strictly increasing" true !ordered;
  Alcotest.(check int) "drained" 0 (Lms.length q)

(* --- MS-Doherty --- *)

let doherty_registry_bounded () =
  let q = Nbq_baselines.Ms_doherty.create () in
  let domains = 3 and per_domain = 1_000 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Nbq_baselines.Ms_doherty.enqueue q ((d * per_domain) + i);
              ignore (Nbq_baselines.Ms_doherty.try_dequeue q)
            done))
  in
  List.iter Domain.join workers;
  (* Two handles per domain; recycling may add a few under contention but
     the bound must track concurrency, not the 6k operations. *)
  let size = Nbq_baselines.Ms_doherty.registry_size q in
  Alcotest.(check bool)
    (Printf.sprintf "registry %d stays near 2 x domains" size)
    true
    (size >= 2 && size <= 6 * domains)

(* --- MS-HP reclamation plumbing --- *)

let ms_hp_recycles_nodes () =
  let q = Nbq_baselines.Ms_hazard.create () in
  let ops = 10_000 in
  for i = 1 to ops do
    Nbq_baselines.Ms_hazard.enqueue q i;
    ignore (Nbq_baselines.Ms_hazard.try_dequeue q)
  done;
  let allocated =
    Nbq_baselines.Ms_node.allocated (Nbq_baselines.Ms_hazard.allocator q)
  in
  let mgr = Nbq_baselines.Ms_hazard.hp_manager q in
  Alcotest.(check bool)
    (Printf.sprintf "allocated %d nodes for %d ops (reuse works)" allocated ops)
    true (allocated < ops / 10);
  Alcotest.(check bool) "scans happened" true
    (Nbq_reclaim.Hazard_pointer.total_scans mgr > 0);
  Alcotest.(check bool) "frees happened" true
    (Nbq_reclaim.Hazard_pointer.total_freed mgr > 0)

let ms_hp_retire_factor_controls_scans () =
  let run factor =
    let q = Nbq_baselines.Ms_hazard.create ~retire_factor:factor () in
    for i = 1 to 2_000 do
      Nbq_baselines.Ms_hazard.enqueue q i;
      ignore (Nbq_baselines.Ms_hazard.try_dequeue q)
    done;
    Nbq_reclaim.Hazard_pointer.total_scans
      (Nbq_baselines.Ms_hazard.hp_manager q)
  in
  let frequent = run 1 and rare = run 64 in
  Alcotest.(check bool)
    (Printf.sprintf "factor 1 scans (%d) > factor 64 scans (%d)" frequent rare)
    true (frequent > rare)

(* --- MS-EBR plumbing --- *)

let ms_ebr_reclaims () =
  let q = Nbq_baselines.Ms_epoch.create ~batch_size:8 () in
  for i = 1 to 5_000 do
    Nbq_baselines.Ms_epoch.enqueue q i;
    ignore (Nbq_baselines.Ms_epoch.try_dequeue q)
  done;
  let mgr = Nbq_baselines.Ms_epoch.epoch_manager q in
  Alcotest.(check bool) "epoch advanced" true
    (Nbq_reclaim.Epoch.global_epoch mgr > 2);
  Alcotest.(check bool) "nodes freed" true
    (Nbq_reclaim.Epoch.total_freed mgr > 0);
  let allocated =
    Nbq_baselines.Ms_node.allocated (Nbq_baselines.Ms_epoch.allocator q)
  in
  Alcotest.(check bool)
    (Printf.sprintf "allocated only %d nodes" allocated)
    true (allocated < 500)

(* --- Tsigas–Zhang counters --- *)

let tz_indices_lag_bounded () =
  let module Tz = Nbq_baselines.Tsigas_zhang in
  let q = Tz.create ~capacity:8 in
  for i = 1 to 100 do
    ignore (Tz.try_enqueue q i);
    ignore (Tz.try_dequeue q)
  done;
  (* Lazy updates: the counters lag but stay within a ring of the truth. *)
  let hd = Tz.head_index q and tl = Tz.tail_index q in
  Alcotest.(check bool)
    (Printf.sprintf "head %d and tail %d within lag bound of 100" hd tl)
    true
    (hd <= 100 && tl <= 100 && 100 - hd <= 8 && 100 - tl <= 8);
  Alcotest.(check int) "length exact when quiescent" 0 (Tz.length q)

(* --- Shann indices --- *)

let shann_indices_track () =
  let module S = Nbq_baselines.Shann in
  let q = S.create ~capacity:4 in
  for i = 1 to 50 do
    ignore (S.try_enqueue q i);
    ignore (S.try_dequeue q)
  done;
  Alcotest.(check int) "tail counts enqueues" 50 (S.tail_index q);
  Alcotest.(check int) "head counts dequeues" 50 (S.head_index q)

let () =
  Alcotest.run "baselines"
    [
      ( "herlihy-wing",
        [
          quick "ticket counter" hw_ticket_counter;
          quick "crosses chunk boundaries" hw_crosses_chunk_boundary;
          slow "works after long history" hw_scan_cost_grows;
        ] );
      ( "lms-optimistic",
        [
          quick "no fixups sequentially" lms_fix_counter_starts_zero;
          slow "concurrent integrity" lms_survives_fix_path;
        ] );
      ( "ms-doherty",
        [ slow "registry bounded by concurrency" doherty_registry_bounded ] );
      ( "ms-hp",
        [
          quick "recycles nodes" ms_hp_recycles_nodes;
          quick "retire factor controls scans" ms_hp_retire_factor_controls_scans;
        ] );
      ( "ms-ebr", [ quick "reclaims through epochs" ms_ebr_reclaims ] );
      ( "tsigas-zhang", [ quick "index lag bounded" tz_indices_lag_bounded ] );
      ( "shann", [ quick "indices track ops" shann_indices_track ] );
    ]
