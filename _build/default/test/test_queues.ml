(* The conformance battery instantiated for every registered queue. *)

let () =
  let suites =
    List.map
      (fun (impl : Nbq_harness.Registry.impl) ->
        (impl.Nbq_harness.Registry.name, Battery.cases impl))
      Nbq_harness.Registry.all
  in
  Alcotest.run "queue-conformance" suites
