(* Experiment E7: scripted replays of the paper's failure scenarios.

   The paper's §3 argues that a circular-array queue faces three distinct
   ABA problems (index-ABA, data-ABA, null-ABA) and that its algorithms
   close all three.  A scenario can only be scripted if every step is
   explicit, so this file builds small *scriptable* rings whose steps can
   be interleaved by hand: a deliberately naive one per scenario that
   reproduces the corruption exactly as the paper's figures describe, and
   the repaired one (monotonic counters / LL-SC reservations, the paper's
   fixes) that provably defeats the same interleaving. *)

module Llsc = Nbq_primitives.Llsc

let quick name f = Alcotest.test_case name `Quick f

(* ---------------------------------------------------------------------- *)
(* Figure 1: index-ABA.  A 4-slot ring whose Tail wraps modulo the array
   size.  T1 inserts at Q[0] and stalls before its Tail increment; T2
   completes 3 insertions and T3 three removals, leaving Tail = 0 again
   (wrapped); T1 resumes and its stale increment *succeeds*, pointing the
   next insertion at the still-occupied Q[1]. *)

module Naive_wrapping = struct
  let size = 4

  type t = {
    slots : int Atomic.t array;  (* 0 = empty; int CAS compares by value *)
    tail : int Atomic.t;         (* wraps modulo size - the flaw *)
    head : int Atomic.t;
  }

  let create () =
    {
      slots = Array.init size (fun _ -> Atomic.make 0);
      tail = Atomic.make 0;
      head = Atomic.make 0;
    }

  (* One enqueue, split into its two steps so a test can stall between
     them. *)
  let insert_step q v =
    let t = Atomic.get q.tail in
    Atomic.set q.slots.(t) v;
    t (* the observed tail, needed for the increment step *)

  let increment_step q t = Atomic.compare_and_set q.tail t ((t + 1) mod size)

  let enqueue q v =
    let t = insert_step q v in
    ignore (increment_step q t)

  let dequeue q =
    let h = Atomic.get q.head in
    let v = Atomic.get q.slots.(h) in
    Atomic.set q.slots.(h) 0;
    Atomic.set q.head ((h + 1) mod size);
    v
end

let fig1_naive_corrupts () =
  let open Naive_wrapping in
  let q = create () in
  (* T1 inserts A (=1) into Q[0] and is preempted before the increment. *)
  let t1_observed = insert_step q 1 in
  (* T2 adjusts Tail on T1's behalf and inserts B, C, D (=2,3,4). *)
  ignore (increment_step q t1_observed);
  enqueue q 2;
  enqueue q 3;
  enqueue q 4;
  Alcotest.(check int) "tail wrapped to 0" 0 (Atomic.get q.tail);
  (* T3 dequeues A, B, C. *)
  Alcotest.(check int) "A" 1 (dequeue q);
  Alcotest.(check int) "B" 2 (dequeue q);
  Alcotest.(check int) "C" 3 (dequeue q);
  (* T1 resumes: its stale CAS(Tail, 0, 1) SUCCEEDS — the ABA. *)
  Alcotest.(check bool) "stale increment wrongly succeeds" true
    (increment_step q t1_observed);
  (* The next insertion now lands on Q[1] even though the oldest queued
     item D sits at Q[3]: order is corrupted. *)
  let t = Atomic.get q.tail in
  Alcotest.(check int) "next insertion would target Q[1]" 1 t

module Naive_monotonic = struct
  (* Same ring, but counters occupy a whole word and only increase; slots
     are addressed modulo the size (the paper's index-ABA fix). *)
  let size = 4

  type t = {
    slots : int Atomic.t array;
    tail : int Atomic.t;
    head : int Atomic.t;
  }

  let create () =
    {
      slots = Array.init size (fun _ -> Atomic.make 0);
      tail = Atomic.make 0;
      head = Atomic.make 0;
    }

  let insert_step q v =
    let t = Atomic.get q.tail in
    Atomic.set q.slots.(t mod size) v;
    t

  let increment_step q t = Atomic.compare_and_set q.tail t (t + 1)

  let enqueue q v =
    let t = insert_step q v in
    ignore (increment_step q t)

  let dequeue q =
    let h = Atomic.get q.head in
    let v = Atomic.get q.slots.(h mod size) in
    Atomic.set q.slots.(h mod size) 0;
    Atomic.set q.head (h + 1);
    v
end

let fig1_monotonic_defeats () =
  let open Naive_monotonic in
  let q = create () in
  let t1_observed = insert_step q 1 in
  ignore (increment_step q t1_observed);
  enqueue q 2;
  enqueue q 3;
  enqueue q 4;
  Alcotest.(check int) "tail did not wrap" 4 (Atomic.get q.tail);
  Alcotest.(check int) "A" 1 (dequeue q);
  Alcotest.(check int) "B" 2 (dequeue q);
  Alcotest.(check int) "C" 3 (dequeue q);
  (* T1's stale CAS(Tail, 0, 1) now FAILS: 0 can never come back. *)
  Alcotest.(check bool) "stale increment fails" false
    (increment_step q t1_observed)

(* ---------------------------------------------------------------------- *)
(* §3 data-ABA, the 2-slot example.  A dequeuer reads item A, stalls;
   meanwhile A is dequeued and items B then A are enqueued (the array is
   full again, A now the *newest* item).  A CAS that compares values
   succeeds and wrongly removes the new A instead of B. *)

let data_aba_value_cas_corrupts () =
  (* The slot, as a naive value-compared atomic (ints compare by value). *)
  let slot0 = Atomic.make 1 (* A *) in
  let slot1 = Atomic.make 0 in
  (* Dequeuer reads A and stalls. *)
  let seen = Atomic.get slot0 in
  (* Interference: A dequeued; B (=2) and A (=1) enqueued. *)
  Atomic.set slot0 0;
  Atomic.set slot0 2;
  ignore (Atomic.compare_and_set slot1 0 1);
  (* array: [B; A], oldest is B *)
  (* Wait - B landed in slot0, A in slot1; the stalled dequeuer targets
     slot0 where it saw A... its CAS must fail (slot0 now holds B): value
     CAS *does* catch this one.  The paper's scenario needs A back in the
     same slot: *)
  Atomic.set slot0 0;
  Atomic.set slot0 1;
  (* A re-enqueued into slot 0 after wrapping *)
  (* The stalled dequeuer resumes: CAS succeeds although *this* A is the
     newest item, not the oldest. *)
  Alcotest.(check bool) "value CAS cannot tell the two As apart" true
    (Atomic.compare_and_set slot0 seen 0)

let data_aba_llsc_defeats () =
  let slot0 = Llsc.make 1 in
  let link = Llsc.ll slot0 in
  (* same interference: A out, B in, B out, A in *)
  Llsc.set slot0 0;
  Llsc.set slot0 2;
  Llsc.set slot0 0;
  Llsc.set slot0 1;
  Alcotest.(check bool) "LL/SC reservation detects the writes" false
    (Llsc.sc slot0 link 0)

(* ---------------------------------------------------------------------- *)
(* §3 null-ABA.  An enqueuer reads "slot is empty" in the never-used
   region, stalls; the whole queue drains past that slot, so the slot is
   now empty *in the dequeued region* (in front of Head).  The naive
   enqueuer inserts anyway — the item is stranded behind Head and lost. *)

let null_aba_naive_corrupts () =
  let open Naive_monotonic in
  let q = create () in
  (* Enqueuer E observes slot (tail=0) empty and stalls before inserting. *)
  let t_observed = Atomic.get q.tail in
  let slot_was_empty = Atomic.get q.slots.(t_observed mod size) = 0 in
  Alcotest.(check bool) "saw empty" true slot_was_empty;
  (* Interference: another thread enqueues X (=9) and dequeues it, plus
     three more cycles, sweeping Head and Tail past slot 0. *)
  for v = 9 to 12 do
    enqueue q v;
    Alcotest.(check int) "drain" v (dequeue q)
  done;
  Alcotest.(check int) "head swept past" 4 (Atomic.get q.head);
  (* E resumes and blindly inserts at its stale position 0. *)
  Atomic.set q.slots.(t_observed mod size) 7;
  ignore (increment_step q t_observed);
  (* increment fails, value 7 sits in slot 0 = position 4's slot... *)
  (* The queue believes it is empty: the item is lost. *)
  Alcotest.(check int) "queue believes itself empty"
    (Atomic.get q.head) (Atomic.get q.tail);
  Alcotest.(check bool) "item stranded in the array" true
    (Array.exists (fun s -> Atomic.get s = 7) q.slots)

let null_aba_evequoz_defeats () =
  (* The real Algorithm 1 under the same timeline: because the insertion
     is an SC against a reservation taken at the stale tail, the
     interference (four writes to that slot) invalidates it. *)
  let module Q = Nbq_core.Evequoz_llsc in
  let q = Q.create ~capacity:4 in
  (* There is no way to pause the real enqueue mid-flight from the public
     API, so replay the stale-insert attempt at the cell level exactly as
     line E9/E15 would perform it — on a fresh queue the slot cells are
     reachable only internally, hence this test drives the public API and
     asserts the *observable* outcome instead: after the interference the
     late enqueue lands at the correct CURRENT tail, never the stale one. *)
  for v = 9 to 12 do
    Alcotest.(check bool) "enq" true (Q.try_enqueue q v);
    Alcotest.(check (option int)) "deq" (Some v) (Q.try_dequeue q)
  done;
  Alcotest.(check bool) "late enqueue accepted" true (Q.try_enqueue q 7);
  Alcotest.(check int) "tail advanced exactly once more" 5 (Q.tail_index q);
  Alcotest.(check (option int)) "item is dequeuable (not stranded)" (Some 7)
    (Q.try_dequeue q)

(* ---------------------------------------------------------------------- *)
(* Figure 4: a dequeuer's Head observation goes stale while the ring
   wraps.  The repaired algorithm revalidates (line D10) and never removes
   a non-oldest item; demonstrated on the naive ring where the stale
   dequeue DOES remove the wrong item. *)

let fig4_naive_corrupts () =
  let open Naive_monotonic in
  let q = create () in
  (* Queue: A(1) at 0? Follow the figure: Head=1, Tail=3 with A,B queued at
     slots 1,2.  Build it: *)
  enqueue q 99;
  ignore (dequeue q);
  (* advance both to 1 *)
  enqueue q 1;
  enqueue q 2;
  (* Dequeuer D reads Head=1 and stalls (it would read slot 1 = A next). *)
  let stale_h = Atomic.get q.head in
  (* Interference: dequeue A,B; enqueue C,D,E; dequeue C... wrapping the
     ring so that slot 1 now holds item F of a later position. *)
  ignore (dequeue q);
  ignore (dequeue q);
  enqueue q 3;
  enqueue q 4;
  enqueue q 5;
  (* positions 3,4,5 -> slots 3,0,1 *)
  (* D resumes, reads slot (stale_h mod size) and removes it blindly. *)
  let v = Atomic.get q.slots.(stale_h mod size) in
  Atomic.set q.slots.(stale_h mod size) 0;
  Alcotest.(check int) "naive dequeuer stole the NEWEST item" 5 v

let fig4_evequoz_defeats () =
  (* Same timeline against Algorithm 1 through the public API: the D10
     revalidation forces the late dequeuer to re-read Head, so the items
     always come out oldest-first. *)
  let module Q = Nbq_core.Evequoz_llsc in
  let q = Q.create ~capacity:4 in
  ignore (Q.try_enqueue q 99);
  ignore (Q.try_dequeue q);
  ignore (Q.try_enqueue q 1);
  ignore (Q.try_enqueue q 2);
  ignore (Q.try_dequeue q);
  ignore (Q.try_dequeue q);
  ignore (Q.try_enqueue q 3);
  ignore (Q.try_enqueue q 4);
  ignore (Q.try_enqueue q 5);
  Alcotest.(check (option int)) "oldest first" (Some 3) (Q.try_dequeue q);
  Alcotest.(check (option int)) "then 4" (Some 4) (Q.try_dequeue q);
  Alcotest.(check (option int)) "then 5" (Some 5) (Q.try_dequeue q)

let () =
  Alcotest.run "scenarios"
    [
      ( "fig1-index-aba",
        [
          quick "naive wrapping ring corrupts" fig1_naive_corrupts;
          quick "monotonic counters defeat it" fig1_monotonic_defeats;
        ] );
      ( "s3-data-aba",
        [
          quick "value CAS corrupts" data_aba_value_cas_corrupts;
          quick "LL/SC defeats it" data_aba_llsc_defeats;
        ] );
      ( "s3-null-aba",
        [
          quick "naive insert strands the item" null_aba_naive_corrupts;
          quick "algorithm 1 keeps the item reachable" null_aba_evequoz_defeats;
        ] );
      ( "fig4-stale-head",
        [
          quick "naive stale dequeue steals newest" fig4_naive_corrupts;
          quick "algorithm 1 dequeues oldest-first" fig4_evequoz_defeats;
        ] );
    ]
