test/test_reclaim.ml: Alcotest Atomic Domain Gen List Mutex Nbq_reclaim Printf QCheck QCheck_alcotest
