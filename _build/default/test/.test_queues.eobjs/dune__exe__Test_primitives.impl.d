test/test_primitives.ml: Alcotest Array Atomic Domain List Nbq_primitives Printf QCheck QCheck_alcotest String
