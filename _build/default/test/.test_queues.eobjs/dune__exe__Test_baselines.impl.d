test/test_baselines.ml: Alcotest Domain List Nbq_baselines Nbq_reclaim Printf
