test/battery.ml: Alcotest Array Atomic Domain Hashtbl List Nbq_harness Nbq_lincheck Nbq_primitives Option Printf QCheck QCheck_alcotest Registry Test Workload
