test/test_modelcheck.ml: Alcotest Array List Nbq_core Nbq_lincheck Nbq_modelcheck Nbq_primitives Printf String
