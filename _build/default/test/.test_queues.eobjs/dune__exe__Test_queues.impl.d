test/test_queues.ml: Alcotest Battery List Nbq_harness
