test/test_core.ml: Alcotest Atomic Domain List Nbq_core Printf
