test/test_primitives.mli:
