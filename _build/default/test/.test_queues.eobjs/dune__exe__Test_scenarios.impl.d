test/test_scenarios.ml: Alcotest Array Atomic Nbq_core Nbq_primitives
