test/test_lincheck.ml: Alcotest Domain Gen List Nbq_lincheck QCheck QCheck_alcotest Queue
