test/test_harness.ml: Alcotest Ascii_plot Float Gen Latency List Nbq_harness Printf QCheck QCheck_alcotest Registry Runner Stats String Table Workload
