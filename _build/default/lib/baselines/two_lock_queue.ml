let name = "two-lock"

type 'a node = {
  value : 'a option;
  (* Atomic: written by an enqueuer under the tail lock, read by a
     dequeuer under the head lock — the two never hold a common lock, so
     the release/acquire pair must come from the link itself. *)
  next : 'a node option Atomic.t;
}

type 'a t = {
  head_lock : Mutex.t;
  tail_lock : Mutex.t;
  mutable head : 'a node;  (* guarded by head_lock *)
  mutable tail : 'a node;  (* guarded by tail_lock *)
}

let create () =
  let dummy = { value = None; next = Atomic.make None } in
  {
    head_lock = Mutex.create ();
    tail_lock = Mutex.create ();
    head = dummy;
    tail = dummy;
  }

let enqueue t x =
  let node = { value = Some x; next = Atomic.make None } in
  Mutex.lock t.tail_lock;
  Atomic.set t.tail.next (Some node);
  t.tail <- node;
  Mutex.unlock t.tail_lock

let try_dequeue t =
  Mutex.lock t.head_lock;
  let result =
    match Atomic.get t.head.next with
    | None -> None
    | Some n ->
        t.head <- n;
        n.value
  in
  Mutex.unlock t.head_lock;
  result

let length t =
  Mutex.lock t.head_lock;
  let rec count n node =
    match Atomic.get node.next with
    | None -> n
    | Some next -> count (n + 1) next
  in
  let result = count 0 t.head in
  Mutex.unlock t.head_lock;
  result
