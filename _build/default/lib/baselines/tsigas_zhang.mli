(** A Tsigas–Zhang-style circular-array queue (SPAA 2001) — the first
    practical single-word-CAS array queue, discussed at length in the
    paper's §2–§3 and implemented here as an extension baseline.

    Signature features reproduced from the original:
    - {b lagging indices}: [Head]/[Tail] are only advanced every other
      operation; operations linearly re-scan forward from the stale index
      to find the real boundary (cheaper index maintenance, dearer scans);
    - {b single-word slots}: a slot is one word holding either a node
      pointer or an empty marker;
    - mutual helping on stale counters and the [h == HEAD] commit
      revalidation.

    {b Round-tag widening (deliberate deviation).}  The original
    distinguishes "emptied this round" from "emptied last round" with two
    null values — a 1-bit round tag — and therefore {e assumes no
    operation is delayed across two ring wraps} (the §3 criticism the
    paper's own algorithms remove; we reproduced the resulting
    loss/reorder failures experimentally on this single-core box, where
    the OS routinely preempts a thread for thousands of operations — see
    DESIGN.md §7a).  This port widens the empty marker's round tag to a
    full word ([Empty of round]), eliminating the assumption exactly the
    way monotonic indices eliminate index-ABA.  The slot is still a
    single word: on real hardware the round tag would occupy the spare
    bits of an aligned null pointer. *)

(** The algorithm over any atomics (for the model checker). *)
module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val create : capacity:int -> 'a t
  val capacity : 'a t -> int
  val try_enqueue : 'a t -> 'a -> bool
  val try_dequeue : 'a t -> 'a option
  val length : 'a t -> int
  val head_index : 'a t -> int
  val tail_index : 'a t -> int
end

include Nbq_core.Queue_intf.BOUNDED

val head_index : 'a t -> int
val tail_index : 'a t -> int
