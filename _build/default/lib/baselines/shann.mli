(** The Shann–Huang–Chen circular-array queue (ICPADS 2000) — the paper's
    "Shann et al. (CAS64)" baseline.

    Each slot packs the item together with a version counter and is updated
    with a double-width CAS; monotonic [Head]/[Tail] counters are advanced
    with single-word CAS, with mutual helping for lagging counters.  The
    version counter defeats the data-/null-ABA problems; the paper's point
    is that this needs a 2-word atomic, which 64-bit machines lack for
    pointer payloads.

    {b Substitution} (DESIGN.md §2): OCaml cannot express a hardware DWCAS,
    so a slot is an [Atomic.t] holding an immutable boxed
    [(item, version)] pair and the CAS compares the identity of the pair
    that was read.  Every write installs a fresh pair, so "same block" ≡
    "unchanged since read" — at least as strong as the version-counter
    check, with the same single-atomic-instruction structure.  The version
    field is still carried and incremented to keep the data layout and
    write-path work faithful. *)

(** The algorithm over any atomics (for the model checker). *)
module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val create : capacity:int -> 'a t
  val capacity : 'a t -> int
  val try_enqueue : 'a t -> 'a -> bool
  val try_dequeue : 'a t -> 'a option
  val length : 'a t -> int
  val head_index : 'a t -> int
  val tail_index : 'a t -> int
end

include Nbq_core.Queue_intf.BOUNDED

val head_index : 'a t -> int
val tail_index : 'a t -> int
