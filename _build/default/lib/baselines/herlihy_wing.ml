let name = "herlihy-wing"

module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) = struct

let chunk_bits = 8
let chunk_size = 1 lsl chunk_bits

type 'a slot = Free | Item of 'a | Taken

type 'a t = {
  (* Chunk table: grows by doubling; each entry is a lazily-installed
     chunk of slots.  The table itself is swapped wholesale under CAS when
     it must grow (old entries are shared, so growth is O(table)). *)
  chunks : 'a slot A.t array option A.t array A.t;
  back : int A.t; (* ticket counter: next free position *)
  taken : int A.t; (* consumed tickets, for exact emptiness *)
}

let create () =
  {
    chunks = A.make (Array.init 4 (fun _ -> A.make None));
    back = A.make 0;
    taken = A.make 0;
  }

let completed_enqueues t = A.get t.back

(* Get (installing if necessary) the chunk holding position [pos]. *)
let rec chunk_for t pos =
  let index = pos lsr chunk_bits in
  let table = A.get t.chunks in
  if index >= Array.length table then begin
    (* Double the table; keep existing chunk cells (shared state lives in
       the cells, so racing growers agree on content). *)
    let bigger =
      Array.init (max (2 * Array.length table) (index + 1)) (fun i ->
          if i < Array.length table then table.(i) else A.make None)
    in
    ignore (A.compare_and_set t.chunks table bigger);
    chunk_for t pos
  end
  else
    let cell = table.(index) in
    match A.get cell with
    | Some chunk -> chunk
    | None ->
        let fresh = Array.init chunk_size (fun _ -> A.make Free) in
        if A.compare_and_set cell None (Some fresh) then fresh
        else chunk_for t pos

let enqueue t x =
  (* HW's two steps: take a ticket, then fill the slot. *)
  let pos = A.fetch_and_add t.back 1 in
  let chunk = chunk_for t pos in
  A.set chunk.(pos land (chunk_size - 1)) (Item x)

(* Scan the whole used prefix, swapping the first item out.  A slot may
   still be Free if its enqueuer took its ticket but has not stored yet —
   HW's dequeue loops until something turns up, so a stalled enqueuer can
   make dequeuers wait (the original is a *total* queue; this is faithful).

   Emptiness, however, must be linearizable, and "one scan saw nothing" is
   not (a value can land behind the cursor while another is consumed ahead
   of it, leaving no empty instant).  The [taken] counter gives an exact
   test: reading [taken >= back] (in that order, both monotonic) proves
   that at the moment [taken] was read, every issued ticket had already
   been consumed — an empty instant inside the dequeue's interval. *)
let rec try_dequeue t =
  (* Order matters (and OCaml's operator-argument order is unspecified):
     [taken] must be read BEFORE [back] for the monotonicity argument. *)
  let tk = A.get t.taken in
  let bk = A.get t.back in
  if tk >= bk then None
  else begin
    let back = A.get t.back in
    let rec scan pos =
      if pos >= back then try_dequeue t (* rescan or conclude empty *)
      else begin
        let chunk = chunk_for t pos in
        let cell = chunk.(pos land (chunk_size - 1)) in
        match A.get cell with
        | Item x as seen ->
            if A.compare_and_set cell seen Taken then begin
              ignore (A.fetch_and_add t.taken 1);
              Some x
            end
            else scan pos
        | Free | Taken -> scan (pos + 1)
      end
    in
    scan 0
  end

let length t =
  let back = A.get t.back in
  let rec count pos n =
    if pos >= back then n
    else
      let chunk = chunk_for t pos in
      match A.get chunk.(pos land (chunk_size - 1)) with
      | Item _ -> count (pos + 1) (n + 1)
      | Free | Taken -> count (pos + 1) n
  in
  count 0 0

end

include Make (Nbq_primitives.Atomic_intf.Real)
