(** Michael–Scott queue over CAS-simulated LL/SC links — the stand-in for
    the paper's "MS-Doherty et al." baseline (DESIGN.md §2).

    [Head], [Tail] and every node's [next] link are
    {!Nbq_primitives.Llsc_cas} cells; each pointer read takes a simulated
    load-linked reservation and each update is a store-conditional, so the
    queue needs no hazard pointers and no counted pointers even though nodes
    are recycled through a free pool: a reservation can only be committed if
    the link was untouched since it was read, which subsumes the ABA
    protection (this is exactly the property Doherty et al.'s PODC'04
    construction provides to 64-bit MS queues).  The price is 4–6 successful
    CAS plus several fetch-and-adds per queue operation — the paper's
    "unquestionably the slowest" series, reproduced by cost class rather
    than by re-deriving the original construction.

    The divergence from the real Doherty et al. algorithm is deliberate and
    documented; the figure-level claim it supports is "CAS-only
    population-oblivious MS is much more expensive than hazard pointers or
    arrays", which depends only on the cost class. *)

type 'a t

val create : unit -> 'a t
val enqueue : 'a t -> 'a -> unit
val try_dequeue : 'a t -> 'a option
val length : 'a t -> int

val registry_size : 'a t -> int
(** Tag variables ever allocated (space-adaptivity metric). *)

module Conc : Nbq_core.Queue_intf.UNBOUNDED
