let name = "shann"

module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) = struct
type 'a pair = { item : 'a option; version : int }

type 'a t = {
  mask : int;
  slots : 'a pair A.t array;
  head : int A.t;
  tail : int A.t;
}

let create ~capacity =
  let capacity = Nbq_core.Queue_intf.round_capacity capacity in
  {
    mask = capacity - 1;
    slots = Array.init capacity (fun _ -> A.make { item = None; version = 0 });
    head = A.make 0;
    tail = A.make 0;
  }

let capacity t = t.mask + 1
let head_index t = A.get t.head
let tail_index t = A.get t.tail

let rec try_enqueue t x =
  let tl = A.get t.tail in
  if tl = A.get t.head + t.mask + 1 then false
  else begin
    let cell = t.slots.(tl land t.mask) in
    let p = A.get cell in
    if A.get t.tail = tl then
      match p.item with
      | Some _ ->
          (* Slot filled but Tail lagging: help. *)
          ignore (A.compare_and_set t.tail tl (tl + 1));
          try_enqueue t x
      | None ->
          if A.compare_and_set cell p { item = Some x; version = p.version + 1 }
          then begin
            ignore (A.compare_and_set t.tail tl (tl + 1));
            true
          end
          else try_enqueue t x
    else try_enqueue t x
  end

let rec try_dequeue t =
  let hd = A.get t.head in
  if hd = A.get t.tail then None
  else begin
    let cell = t.slots.(hd land t.mask) in
    let p = A.get cell in
    if A.get t.head = hd then
      match p.item with
      | None ->
          ignore (A.compare_and_set t.head hd (hd + 1));
          try_dequeue t
      | Some x ->
          if A.compare_and_set cell p { item = None; version = p.version + 1 }
          then begin
            ignore (A.compare_and_set t.head hd (hd + 1));
            Some x
          end
          else try_dequeue t
    else try_dequeue t
  end

let length t =
  let n = A.get t.tail - A.get t.head in
  if n < 0 then 0 else if n > t.mask + 1 then t.mask + 1 else n
end

include Make (Nbq_primitives.Atomic_intf.Real)
