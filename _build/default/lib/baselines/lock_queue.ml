let name = "lock-ring"

type 'a t = {
  lock : Mutex.t;
  buffer : 'a option array;
  mask : int;
  mutable head : int;
  mutable tail : int;
}

let create ~capacity =
  let capacity = Nbq_core.Queue_intf.round_capacity capacity in
  {
    lock = Mutex.create ();
    buffer = Array.make capacity None;
    mask = capacity - 1;
    head = 0;
    tail = 0;
  }

let capacity t = t.mask + 1

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | result ->
      Mutex.unlock t.lock;
      result
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let try_enqueue t x =
  with_lock t (fun () ->
      if t.tail - t.head > t.mask then false
      else begin
        t.buffer.(t.tail land t.mask) <- Some x;
        t.tail <- t.tail + 1;
        true
      end)

let try_dequeue t =
  with_lock t (fun () ->
      if t.head = t.tail then None
      else begin
        let i = t.head land t.mask in
        let x = t.buffer.(i) in
        t.buffer.(i) <- None;
        t.head <- t.head + 1;
        x
      end)

let length t = with_lock t (fun () -> t.tail - t.head)
