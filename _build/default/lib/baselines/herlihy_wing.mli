(** The Herlihy–Wing queue ([3], with Wing & Gong's finite-memory variant
    [16]) — the classic linearizable array queue the paper's §2 opens with.

    Enqueue is wait-free: fetch-and-add a ticket on the tail counter and
    store the item in that slot ("the infinite array").  Dequeue scans the
    prefix [0, tail) swapping each slot with empty until it finds an item;
    its running time is proportional to the number of {e completed enqueue
    operations since the creation of the queue} — the §2 criticism this
    module exists to demonstrate (the E8-adjacent
    [bin/space.exe --scan-cost] experiment measures the quadratic blow-up).

    The "infinite array" is simulated with lock-free chunked growth: a
    table of fixed-size chunks, allocated on demand and installed with CAS
    (losers drop their chunk).  Slots are written at most twice (item, then
    back to empty forever), so a plain atomic swap implements the dequeue
    scan faithfully.

    Unbounded; relies on the GC (the original predates reclamation
    concerns). *)

(** The algorithm over any atomics (for the model checker). *)
module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val create : unit -> 'a t
  val enqueue : 'a t -> 'a -> unit
  val try_dequeue : 'a t -> 'a option
  val length : 'a t -> int
  val completed_enqueues : 'a t -> int
end

include Nbq_core.Queue_intf.UNBOUNDED

val completed_enqueues : 'a t -> int
(** The ticket counter — the quantity dequeue cost grows with. *)
