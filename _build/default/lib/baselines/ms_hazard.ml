module Hp = Nbq_reclaim.Hazard_pointer

type 'a t = {
  head : 'a Ms_node.t Atomic.t;
  tail : 'a Ms_node.t Atomic.t;
  alloc : 'a Ms_node.allocator;
  hp : 'a Ms_node.t Hp.manager;
}

let create ?(sorted_scan = true) ?(retire_factor = 4) () =
  let alloc = Ms_node.allocator () in
  let dummy = Ms_node.dummy alloc in
  {
    head = Atomic.make dummy;
    tail = Atomic.make dummy;
    alloc;
    hp =
      Hp.create ~hazards_per_thread:2 ~sorted_scan
        ~threshold:(fun ~participants -> retire_factor * participants)
        ~node_id:Ms_node.id
        ~free:(fun n -> Ms_node.recycle alloc n)
        ();
  }

let hp_manager t = t.hp
let allocator t = t.alloc

let enqueue t x =
  let node = Ms_node.alloc t.alloc x in
  let r = Hp.get_record t.hp in
  let rec loop () =
    let tl = Atomic.get t.tail in
    Hp.protect r 0 tl;
    (* Validate: tl cannot have been recycled while protected. *)
    if tl != Atomic.get t.tail then loop ()
    else
      match Atomic.get tl.Ms_node.next with
      | Some n ->
          ignore (Atomic.compare_and_set t.tail tl n);
          loop ()
      | None ->
          if Atomic.compare_and_set tl.Ms_node.next None (Some node) then
            ignore (Atomic.compare_and_set t.tail tl node)
          else loop ()
  in
  loop ();
  Hp.clear r 0

let try_dequeue t =
  let r = Hp.get_record t.hp in
  let rec loop () =
    let hd = Atomic.get t.head in
    Hp.protect r 0 hd;
    if hd != Atomic.get t.head then loop ()
    else begin
      let tl = Atomic.get t.tail in
      match Atomic.get hd.Ms_node.next with
      | None ->
          (* hd is protected, hence not recycled: next = None really means
             hd is the last node, i.e. the queue is empty. *)
          None
      | Some n ->
          Hp.protect r 1 n;
          if hd != Atomic.get t.head then loop ()
          else if hd == tl then begin
            ignore (Atomic.compare_and_set t.tail tl n);
            loop ()
          end
          else begin
            (* n is protected and hd was validated: n.value is stable. *)
            let v = n.Ms_node.value in
            if Atomic.compare_and_set t.head hd n then begin
              Hp.retire t.hp r hd;
              v
            end
            else loop ()
          end
    end
  in
  let result = loop () in
  Hp.clear_all r;
  result

let length t =
  let rec count n (node : 'a Ms_node.t) =
    match Atomic.get node.Ms_node.next with
    | None -> n
    | Some next -> count (n + 1) next
  in
  count 0 (Atomic.get t.head)

module Sorted = struct
  type nonrec 'a t = 'a t

  let name = "ms-hp-sorted"
  let create () = create ~sorted_scan:true ()
  let enqueue = enqueue
  let try_dequeue = try_dequeue
  let length = length
end

module Unsorted = struct
  type nonrec 'a t = 'a t

  let name = "ms-hp-unsorted"
  let create () = create ~sorted_scan:false ()
  let enqueue = enqueue
  let try_dequeue = try_dequeue
  let length = length
end
