(** The Michael–Scott {e two-lock} queue (the blocking algorithm from the
    same 1998 paper as the lock-free MS queue).

    One mutex serializes enqueuers, an independent one serializes
    dequeuers; a permanent dummy node keeps the two ends from interfering.
    The head-to-tail handoff happens through an atomic [next] link, which
    is what makes the algorithm linearizable without ever holding both
    locks.  Included as the "good blocking algorithm" baseline between the
    single-lock ring and the non-blocking queues. *)

include Nbq_core.Queue_intf.UNBOUNDED
