let name = "lms-optimistic"

module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) = struct

(* List orientation: [next] points from Tail towards Head (the direction a
   value travels), [prev] points from Head towards Tail.  Head is a dummy;
   the node at [Head.prev] holds the front value. *)
type 'a node = {
  value : 'a option;
  next : 'a node option A.t;
  prev : 'a node option A.t;
}

type 'a t = {
  head : 'a node A.t;
  tail : 'a node A.t;
  fixes : int A.t;
}

let create () =
  let dummy =
    { value = None; next = A.make None; prev = A.make None }
  in
  { head = A.make dummy; tail = A.make dummy; fixes = A.make 0 }

let fix_list_runs t = A.get t.fixes

let enqueue t x =
  let node =
    { value = Some x; next = A.make None; prev = A.make None }
  in
  let rec loop () =
    let tl = A.get t.tail in
    A.set node.next (Some tl);
    if A.compare_and_set t.tail tl node then
      (* The optimistic store: if we are preempted right here, dequeuers
         repair the chain via fix_list. *)
      A.set tl.prev (Some node)
    else loop ()
  in
  loop ()

(* Rebuild prev pointers by walking next from Tail until reaching [h].
   Stops early if Head moves (our repair is then obsolete). *)
let fix_list t tl h =
  ignore (A.fetch_and_add t.fixes 1);
  let rec walk cur =
    if A.get t.head == h && cur != h then
      match A.get cur.next with
      | Some nxt ->
          A.set nxt.prev (Some cur);
          walk nxt
      | None -> () (* chain mutated under us; a retry will re-fix *)
  in
  walk tl

let rec try_dequeue t =
  let h = A.get t.head in
  let tl = A.get t.tail in
  let first = A.get h.prev in
  if h != A.get t.head then try_dequeue t
  else if h == tl then None
  else
    match first with
    | None ->
        (* Optimism failed somewhere between h and tl: repair, retry. *)
        fix_list t tl h;
        try_dequeue t
    | Some f ->
        if A.compare_and_set t.head h f then f.value else try_dequeue t

let length t =
  (* Walk the authoritative next chain from Tail to Head. *)
  let h = A.get t.head in
  let rec count cur n =
    if cur == h then n
    else
      match A.get cur.next with
      | Some nxt -> count nxt (n + 1)
      | None -> n
  in
  count (A.get t.tail) 0

end

include Make (Nbq_primitives.Atomic_intf.Real)
