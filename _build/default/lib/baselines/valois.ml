let name = "valois-dcas"

module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) = struct
  module M = Nbq_primitives.Mcas.Make (A)

  (* MCAS cells are homogeneous; one word type covers both the counters
     and the slots. *)
  type 'a word =
    | Count of int
    | Slot of 'a option

  type 'a t = {
    mask : int;
    slots : 'a word M.cell array;
    head : 'a word M.cell;
    tail : 'a word M.cell;
  }

  let create ~capacity =
    let capacity = Nbq_core.Queue_intf.round_capacity capacity in
    {
      mask = capacity - 1;
      slots = Array.init capacity (fun _ -> M.make (Slot None));
      head = M.make (Count 0);
      tail = M.make (Count 0);
    }

  let capacity t = t.mask + 1

  let count snapshot =
    match M.value snapshot with
    | Count c -> c
    | Slot _ -> assert false

  let head_index t = count (M.read t.head)
  let tail_index t = count (M.read t.tail)

  let rec try_enqueue t x =
    let ts = M.read t.tail in
    let tc = count ts in
    if tc = count (M.read t.head) + t.mask + 1 then false
    else begin
      let slot_cell = t.slots.(tc land t.mask) in
      let ss = M.read slot_cell in
      match M.value ss with
      | Slot None ->
          (* The DCAS: index and slot move together, so neither can lag
             and no helping paths exist. *)
          if
            M.mcas
              [ (t.tail, ts, Count (tc + 1)); (slot_cell, ss, Slot (Some x)) ]
          then true
          else try_enqueue t x
      | Slot (Some _) ->
          (* Stale snapshot (the invariant says the tail slot is free);
             retry with fresh reads. *)
          try_enqueue t x
      | Count _ -> assert false
    end

  let rec try_dequeue t =
    let hs = M.read t.head in
    let hc = count hs in
    if hc = count (M.read t.tail) then None
    else begin
      let slot_cell = t.slots.(hc land t.mask) in
      let ss = M.read slot_cell in
      match M.value ss with
      | Slot (Some x) ->
          if
            M.mcas [ (t.head, hs, Count (hc + 1)); (slot_cell, ss, Slot None) ]
          then Some x
          else try_dequeue t
      | Slot None -> try_dequeue t (* stale snapshot *)
      | Count _ -> assert false
    end

  let length t =
    let n = tail_index t - head_index t in
    if n < 0 then 0 else if n > t.mask + 1 then t.mask + 1 else n
end

include Make (Nbq_primitives.Atomic_intf.Real)
