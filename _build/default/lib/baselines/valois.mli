(** A Valois-style circular-array queue over double-word CAS (paper §2,
    [15]).

    Valois's design updates the index and the slot {e in one atomic step},
    which makes the algorithm almost trivially correct — no lagging
    counters, no helping, no ABA gymnastics: enqueue is a single DCAS of
    [(Tail, slot)] and dequeue of [(Head, slot)].  The paper's §2 dismisses
    it because hardware offers no such primitive; running it over the
    software {!Nbq_primitives.Mcas} substrate quantifies exactly what that
    convenience costs (≈7 single-word CAS per operation on the uncontended
    path — visible in the op-cost benchmark next to the paper's
    3-CAS/2-FAA Algorithm 2). *)

(** The algorithm over any atomics (for the model checker). *)
module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val create : capacity:int -> 'a t
  val capacity : 'a t -> int
  val try_enqueue : 'a t -> 'a -> bool
  val try_dequeue : 'a t -> 'a option
  val length : 'a t -> int
  val head_index : 'a t -> int
  val tail_index : 'a t -> int
end

include Nbq_core.Queue_intf.BOUNDED

val head_index : 'a t -> int
val tail_index : 'a t -> int
