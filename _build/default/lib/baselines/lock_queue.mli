(** A mutex-protected circular-array FIFO — the blocking yardstick.

    The paper's opening argument is that critical sections degrade under
    preemption and contention; this is the queue that argument is about.
    One global mutex guards a plain ring buffer.  [try_enqueue] /
    [try_dequeue] never block on state (full/empty return immediately) but
    do block on the lock. *)

include Nbq_core.Queue_intf.BOUNDED
