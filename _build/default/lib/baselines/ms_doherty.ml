module L = Nbq_primitives.Llsc_cas

(* Node links are LL/SC cells over [node option]; Head/Tail always hold
   [Some _] but share the cell type (and hence the tag-variable registry)
   with the links. *)
type 'a node = {
  mutable value : 'a option;
  next : 'a node option L.t;
}

type 'a t = {
  head : 'a node option L.t;
  tail : 'a node option L.t;
  registry : 'a node option L.registry;
  pool : 'a node Nbq_reclaim.Free_pool.t;
  (* Two handles per domain: operations take nested reservations
     (outer pointer + node link). *)
  handles : ('a handles option ref) Domain.DLS.key;
}

and 'a handles = {
  outer : 'a node option L.handle;
  inner : 'a node option L.handle;
}

let create () =
  let registry = L.create_registry () in
  let dummy = { value = None; next = L.make None } in
  {
    head = L.make (Some dummy);
    tail = L.make (Some dummy);
    registry;
    pool = Nbq_reclaim.Free_pool.create ();
    handles = Domain.DLS.new_key (fun () -> ref None);
  }

let registry_size t = L.registered_count t.registry

let get_handles t =
  let cache = Domain.DLS.get t.handles in
  match !cache with
  | Some hs ->
      (* Paper-mandated re-registration between operations. *)
      L.reregister hs.outer;
      L.reregister hs.inner;
      hs
  | None ->
      let hs = { outer = L.register t.registry; inner = L.register t.registry } in
      cache := Some hs;
      hs

let alloc t v =
  match Nbq_reclaim.Free_pool.take t.pool with
  | Some n ->
      n.value <- Some v;
      (* Destroys any straggler's stale reservation on the recycled link;
         their store-conditional will fail and they will re-validate. *)
      L.unsafe_set n.next None;
      n
  | None -> { value = Some v; next = L.make None }

let recycle t n =
  n.value <- None;
  Nbq_reclaim.Free_pool.put t.pool n

let node_of = function
  | Some n -> n
  | None -> assert false (* Head/Tail cells always hold a node *)

let enqueue t x =
  let hs = get_handles t in
  let node = alloc t x in
  let rec loop () =
    let tl = L.ll t.tail hs.outer in
    let tn = node_of tl in
    match L.ll tn.next hs.inner with
    | None ->
        if L.sc tn.next hs.inner (Some node) then
          (* Linked: [tn.next] was None continuously since the reservation,
             so [tn] was the last node throughout.  Swing Tail (helped by
             others if our reservation was stolen). *)
          ignore (L.sc t.tail hs.outer (Some node))
        else begin
          ignore (L.sc t.tail hs.outer tl);
          loop ()
        end
    | Some n as next ->
        (* Tail lagging: restore the link reservation, help advance. *)
        ignore (L.sc tn.next hs.inner next);
        ignore (L.sc t.tail hs.outer (Some n));
        loop ()
  in
  loop ()

let try_dequeue t =
  let hs = get_handles t in
  let rec loop () =
    let hd = L.ll t.head hs.outer in
    let hn = node_of hd in
    match L.ll hn.next hs.inner with
    | None ->
        ignore (L.sc hn.next hs.inner None);
        (* Rolling Head back doubles as validation: success means Head was
           [hn] for the whole window containing the instant where
           [hn.next = None] was reserved — the queue was empty then. *)
        if L.sc t.head hs.outer hd then None else loop ()
    | Some n as next ->
        ignore (L.sc hn.next hs.inner next);
        (* Reliable tail check (a heuristic peek could let Head overtake a
           lagging Tail, leaving Tail on a recycled node). *)
        let tl = L.ll t.tail hs.inner in
        ignore (L.sc t.tail hs.inner tl);
        if node_of tl == hn then begin
          ignore (L.sc t.head hs.outer hd);
          (* Help swing Tail to hn's successor, then retry. *)
          let tl2 = L.ll t.tail hs.outer in
          if node_of tl2 == hn then ignore (L.sc t.tail hs.outer (Some n))
          else ignore (L.sc t.tail hs.outer tl2);
          loop ()
        end
        else begin
          let v = n.value in
          if L.sc t.head hs.outer (Some n) then begin
            recycle t hn;
            v
          end
          else loop ()
        end
  in
  loop ()

let length t =
  let rec count n (node : 'a node) =
    match L.peek node.next with
    | None -> n
    | Some next -> count (n + 1) next
  in
  count 0 (node_of (L.peek t.head))

module Conc = struct
  type nonrec 'a t = 'a t

  let name = "ms-doherty"
  let create = create
  let enqueue = enqueue
  let try_dequeue = try_dequeue
  let length = length
end
