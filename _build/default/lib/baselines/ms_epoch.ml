module Ebr = Nbq_reclaim.Epoch

type 'a t = {
  head : 'a Ms_node.t Atomic.t;
  tail : 'a Ms_node.t Atomic.t;
  alloc : 'a Ms_node.allocator;
  ebr : 'a Ms_node.t Ebr.manager;
}

let create ?(batch_size = 64) () =
  let alloc = Ms_node.allocator () in
  let dummy = Ms_node.dummy alloc in
  {
    head = Atomic.make dummy;
    tail = Atomic.make dummy;
    alloc;
    ebr = Ebr.create ~batch_size ~free:(fun n -> Ms_node.recycle alloc n) ();
  }

let epoch_manager t = t.ebr
let allocator t = t.alloc

let enqueue t x =
  let node = Ms_node.alloc t.alloc x in
  let r = Ebr.get_record t.ebr in
  Ebr.enter t.ebr r;
  let rec loop () =
    let tl = Atomic.get t.tail in
    (* Inside the region tl cannot be recycled, so no re-validation is
       needed: a stale tl only makes the CAS below fail. *)
    match Atomic.get tl.Ms_node.next with
    | Some n ->
        ignore (Atomic.compare_and_set t.tail tl n);
        loop ()
    | None ->
        if Atomic.compare_and_set tl.Ms_node.next None (Some node) then
          ignore (Atomic.compare_and_set t.tail tl node)
        else loop ()
  in
  loop ();
  Ebr.exit r

let try_dequeue t =
  let r = Ebr.get_record t.ebr in
  Ebr.enter t.ebr r;
  let rec loop () =
    let hd = Atomic.get t.head in
    let tl = Atomic.get t.tail in
    match Atomic.get hd.Ms_node.next with
    | None -> if hd == Atomic.get t.head then None else loop ()
    | Some n ->
        if hd == tl then begin
          ignore (Atomic.compare_and_set t.tail tl n);
          loop ()
        end
        else begin
          let v = n.Ms_node.value in
          if Atomic.compare_and_set t.head hd n then begin
            Ebr.retire t.ebr r hd;
            v
          end
          else loop ()
        end
  in
  let result = loop () in
  Ebr.exit r;
  result

let length t =
  let rec count n (node : 'a Ms_node.t) =
    match Atomic.get node.Ms_node.next with
    | None -> n
    | Some next -> count (n + 1) next
  in
  count 0 (Atomic.get t.head)

module Conc = struct
  type nonrec 'a t = 'a t

  let name = "ms-ebr"
  let create () = create ()
  let enqueue = enqueue
  let try_dequeue = try_dequeue
  let length = length
end
