let name = "tsigas-zhang"

module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) = struct
  (* A slot is one word: an item, or an empty marker tagged with the wrap
     round it is ready to be filled in.  The original uses a 1-bit round
     tag (null0/null1), which only tolerates operations delayed less than
     two wraps; widening the tag to a full word removes that assumption the
     same way the paper's monotonic indices remove index-ABA (on real
     hardware the round tag would live in the spare bits of an aligned
     null pointer, so this is still a single-word scheme).  See the .mli
     and DESIGN.md §7a. *)
  type 'a content =
    | Empty of int  (* ready to be filled in this round *)
    | Node of 'a

  type 'a t = {
    mask : int;
    shift : int;  (* log2 capacity: position -> round *)
    slots : 'a content A.t array;
    head : int A.t;  (* monotonic, may lag (lazy updates) *)
    tail : int A.t;
  }

  let log2 n =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
    go 0 n

  let create ~capacity =
    let capacity = Nbq_core.Queue_intf.round_capacity capacity in
    {
      mask = capacity - 1;
      shift = log2 capacity;
      slots = Array.init capacity (fun _ -> A.make (Empty 0));
      head = A.make 0;
      tail = A.make 0;
    }

  let capacity t = t.mask + 1
  let head_index t = A.get t.head
  let tail_index t = A.get t.tail

  let round t p = p lsr t.shift

  (* Lagging-index update: only every other operation commits the counter
     (the Tsigas-Zhang optimization); scans recover the real boundary. *)
  let lazy_advance counter seen target =
    if target land 1 = 0 then ignore (A.compare_and_set counter seen target)

  let rec try_enqueue t x =
    let te = A.get t.tail in
    let limit = A.get t.head + t.mask + 1 in
    (* Scan forward from the (possibly stale) tail for the first free slot.
       The bound [head + capacity] also keeps the scan from ever touching a
       slot whose previous-round occupant is still queued. *)
    let rec scan p =
      if p >= limit then begin
        (* No free slot before the capacity boundary.  The boundary came
           from a possibly-lagging Head: re-read it, and if the slot it
           points to is already drained, help advance it before concluding
           "full". *)
        let h = A.get t.head in
        if h + t.mask + 1 > limit then try_enqueue t x
        else
          match A.get t.slots.(h land t.mask) with
          | Node _ -> false (* capacity slots genuinely occupied *)
          | Empty r ->
              if r = round t h then
                (* Head slot empty this round: the queue cannot be full;
                   inconsistent snapshot, retry. *)
                try_enqueue t x
              else begin
                ignore (A.compare_and_set t.head h (h + 1));
                try_enqueue t x
              end
      end
      else begin
        let cell = t.slots.(p land t.mask) in
        match A.get cell with
        | Node _ -> scan (p + 1)
        | Empty r as marker ->
            if r = round t p then begin
              (* CAS on the marker block we read: a stale enqueuer's block
                 is long gone, so delayed operations fail cleanly no matter
                 how many wraps they slept through. *)
              if A.compare_and_set cell marker (Node x) then begin
                lazy_advance t.tail te (p + 1);
                true
              end
              else scan p
            end
            else if r > round t p then begin
              (* Drained ahead of us: the counters are far behind. *)
              ignore (A.compare_and_set t.tail te (p + 1));
              try_enqueue t x
            end
            else (* r < round: stale snapshot of head/tail *) try_enqueue t x
      end
    in
    scan te

  let rec try_dequeue t =
    let hd = A.get t.head in
    (* The emptiness boundary comes from the slot markers themselves (the
       first this-round marker), not from the lagging Tail; the scan is
       self-terminating within one ring revolution, the bound is a safety
       net against a badly stale [hd]. *)
    let limit = hd + t.mask + 2 in
    let rec scan p =
      if p >= limit then try_dequeue t
      else begin
        let cell = t.slots.(p land t.mask) in
        match A.get cell with
        | Node x as seen ->
            (* Round validation: a slot can only be refilled for position
               [p + capacity] after Head has advanced past [p] (the enqueue
               full-bound), so "Head unchanged since the scan started"
               proves the node we read really is position [p]'s occupant. *)
            if A.get t.head <> hd then try_dequeue t
            else if A.compare_and_set cell seen (Empty (round t p + 1))
            then begin
              lazy_advance t.head hd (p + 1);
              Some x
            end
            else scan p
        | Empty r ->
            if r = round t p then
              (* Never filled this round: nothing at or before p. *)
              if A.get t.head = hd then None else try_dequeue t
            else if r > round t p then (* drained already; head lagging *)
              scan (p + 1)
            else (* stale *) try_dequeue t
      end
    in
    scan hd

  let length t =
    (* The counters lag by design; derive the boundaries from the slot
       markers instead (exact when quiescent, a snapshot under
       concurrency). *)
    let cap = t.mask + 1 in
    let start = A.get t.head in
    let rec find_head p =
      if p >= start + cap then p
      else
        match A.get t.slots.(p land t.mask) with
        | Empty r when r > round t p -> find_head (p + 1)
        | Empty _ | Node _ -> p
    in
    let hd = find_head start in
    let rec count p n =
      if p >= hd + cap then n
      else
        match A.get t.slots.(p land t.mask) with
        | Node _ -> count (p + 1) (n + 1)
        | Empty _ -> n
    in
    count hd 0
end

include Make (Nbq_primitives.Atomic_intf.Real)
