(** The Ladan-Mozes & Shavit optimistic queue (DISC 2004, the paper's [6]).

    A doubly-linked list where enqueue needs only {e one} successful CAS
    (on Tail): the backward [next] pointer is set before publication, and
    the forward [prev] pointer is written {e optimistically} with a plain
    store afterwards.  A dequeuer that finds the prev chain broken (an
    enqueuer was preempted between its CAS and its prev store) repairs it
    by walking the [next] chain from Tail ("fixList").  The paper's §2
    cites this as consistently faster than Michael–Scott because the
    second CAS of MS's enqueue becomes a plain store.

    This is the GC-reclaimed variant (fresh nodes per enqueue, so
    physical-equality CAS is ABA-free and no version tags are needed; the
    original uses tagged pointers). *)

(** The algorithm over any atomics (for the model checker). *)
module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val create : unit -> 'a t
  val enqueue : 'a t -> 'a -> unit
  val try_dequeue : 'a t -> 'a option
  val length : 'a t -> int
  val fix_list_runs : 'a t -> int
end

include Nbq_core.Queue_intf.UNBOUNDED

val fix_list_runs : 'a t -> int
(** How many times dequeuers had to repair the prev chain — the measure of
    how often the optimism failed (statistics for the ablation). *)
