(** An unsynchronized single-threaded ring buffer.

    The baseline for the paper's §6 single-thread overhead experiment
    ("our LL/SC and CAS-based implementations are respectively 12% and 50%
    slower" than an array FIFO with no synchronization).  Using it from
    more than one domain is meaningless; the conformance battery only runs
    its sequential parts against it. *)

include Nbq_core.Queue_intf.BOUNDED
