(** Michael–Scott queue with hazard-pointer reclamation — the paper's
    "MS-Hazard Pointers" baselines (sorted / not-sorted scan variants).

    Dequeued dummies are retired through {!Nbq_reclaim.Hazard_pointer} and,
    once proven unreachable by a scan, recycled through a free pool; enqueues
    reuse pooled nodes.  Because nodes genuinely come back with the same
    identity, the protect–validate discipline is functionally necessary —
    removing it loses items under contention (a test demonstrates the
    recycling actually happens).

    [create ~sorted_scan] picks the scan flavour; the paper's retire
    threshold (4 × number of participating threads) is the default.
    {!Sorted} and {!Unsorted} are the two ready-made
    {!Nbq_core.Queue_intf.UNBOUNDED} instantiations used by the harness. *)

type 'a t

(** [create ?sorted_scan ?retire_factor ()] — [retire_factor] (default 4,
    the paper's setting) sets the scan trigger to
    [retire_factor * participating threads] buffered retirements. *)
val create : ?sorted_scan:bool -> ?retire_factor:int -> unit -> 'a t
val enqueue : 'a t -> 'a -> unit
val try_dequeue : 'a t -> 'a option
val length : 'a t -> int

val hp_manager : 'a t -> 'a Ms_node.t Nbq_reclaim.Hazard_pointer.manager
(** The reclamation manager, exposed for stats and tests. *)

val allocator : 'a t -> 'a Ms_node.allocator

module Sorted : Nbq_core.Queue_intf.UNBOUNDED
module Unsorted : Nbq_core.Queue_intf.UNBOUNDED
