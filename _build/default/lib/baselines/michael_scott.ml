let name = "ms-gc"

module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) = struct
type 'a node = { value : 'a option; next : 'a node option A.t }

type 'a t = { head : 'a node A.t; tail : 'a node A.t }

let create () =
  let dummy = { value = None; next = A.make None } in
  { head = A.make dummy; tail = A.make dummy }

let enqueue t x =
  let node = { value = Some x; next = A.make None } in
  let rec loop () =
    let tl = A.get t.tail in
    let next = A.get tl.next in
    if tl == A.get t.tail then
      match next with
      | None ->
          if A.compare_and_set tl.next None (Some node) then
            (* Linearized; swinging Tail may be helped by anyone. *)
            ignore (A.compare_and_set t.tail tl node)
          else loop ()
      | Some n ->
          (* Tail lagging: help, then retry. *)
          ignore (A.compare_and_set t.tail tl n);
          loop ()
    else loop ()
  in
  loop ()

let rec try_dequeue t =
  let hd = A.get t.head in
  let tl = A.get t.tail in
  let next = A.get hd.next in
  if hd == A.get t.head then
    match next with
    | None -> None
    | Some n ->
        if hd == tl then begin
          ignore (A.compare_and_set t.tail tl n);
          try_dequeue t
        end
        else if A.compare_and_set t.head hd n then n.value
        else try_dequeue t
  else try_dequeue t

let length t =
  let rec count n node =
    match A.get node.next with
    | None -> n
    | Some next -> count (n + 1) next
  in
  count 0 (A.get t.head)
end

include Make (Nbq_primitives.Atomic_intf.Real)
