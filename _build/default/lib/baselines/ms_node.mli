(** Reusable Michael–Scott queue nodes, shared by the MS variants that
    recycle memory through {!Nbq_reclaim.Free_pool} (MS-HP, MS-EBR).

    Nodes carry a unique integer [id] (hazard-pointer scans need a stable,
    sortable identity; OCaml has no stable addresses) and mutable fields so
    that a popped node can be reinitialized before republication.  The value
    field is cleared on retirement to avoid dragging payloads around in the
    pool. *)

type 'a t = {
  id : int;
  mutable value : 'a option;
  next : 'a t option Atomic.t;
}

type 'a allocator
(** A free pool plus the id counter. *)

val allocator : unit -> 'a allocator

val alloc : 'a allocator -> 'a -> 'a t
(** Pop a recycled node (resetting [value] and [next]) or make a fresh one. *)

val dummy : 'a allocator -> 'a t
(** A fresh node with no payload — the initial sentinel of an MS queue. *)

val recycle : 'a allocator -> 'a t -> unit
(** Clear the payload and return the node to the pool.  The caller is
    responsible for having proven the node unreachable (hazard-pointer scan,
    epoch grace period, ...). *)

val id : 'a t -> int

val pool_size : 'a allocator -> int
val allocated : 'a allocator -> int
(** Fresh allocations so far (pool misses). *)
