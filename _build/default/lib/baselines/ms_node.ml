type 'a t = {
  id : int;
  mutable value : 'a option;
  next : 'a t option Atomic.t;
}

type 'a allocator = {
  pool : 'a t Nbq_reclaim.Free_pool.t;
  counter : int Atomic.t;
}

let allocator () =
  { pool = Nbq_reclaim.Free_pool.create (); counter = Atomic.make 0 }

let alloc a v =
  match Nbq_reclaim.Free_pool.take a.pool with
  | Some n ->
      n.value <- Some v;
      Atomic.set n.next None;
      n
  | None ->
      {
        id = Atomic.fetch_and_add a.counter 1;
        value = Some v;
        next = Atomic.make None;
      }

let dummy a =
  { id = Atomic.fetch_and_add a.counter 1; value = None; next = Atomic.make None }

let recycle a n =
  n.value <- None;
  Nbq_reclaim.Free_pool.put a.pool n

let id n = n.id

let pool_size a = Nbq_reclaim.Free_pool.size a.pool
let allocated a = Atomic.get a.counter
