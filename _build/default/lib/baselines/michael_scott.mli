(** The Michael–Scott lock-free queue [9], relying on OCaml's garbage
    collector for reclamation.

    This is the natural way to write MS in OCaml: nodes are immutable-valued
    and never reused, so compare-and-set on freshly allocated blocks is
    ABA-free by construction and no reclamation scheme is needed.  The paper
    could not use this variant (C has no GC); we include it as the
    "reclamation is free" reference point that the MS-HP / MS-Doherty /
    MS-EBR series are measured against (DESIGN.md S9). *)

(** The algorithm over any atomics (for the model checker). *)
module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t

  val create : unit -> 'a t
  val enqueue : 'a t -> 'a -> unit
  val try_dequeue : 'a t -> 'a option
  val length : 'a t -> int
end

include Nbq_core.Queue_intf.UNBOUNDED
