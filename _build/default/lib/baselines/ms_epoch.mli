(** Michael–Scott queue with epoch-based reclamation — an extension baseline
    (DESIGN.md S6/E8), the third point on the reclamation axis next to
    hazard pointers and the GC.

    Every operation runs inside an epoch critical region; dequeued dummies
    are retired into limbo bags and recycled through the shared free pool
    after a two-epoch grace period.  Per-operation cost is two atomic stores
    (pin/unpin) instead of per-pointer protect/validate, but a stalled
    thread blocks all reclamation — the ablation benchmark shows both
    effects. *)

type 'a t

val create : ?batch_size:int -> unit -> 'a t
val enqueue : 'a t -> 'a -> unit
val try_dequeue : 'a t -> 'a option
val length : 'a t -> int

val epoch_manager : 'a t -> 'a Ms_node.t Nbq_reclaim.Epoch.manager
val allocator : 'a t -> 'a Ms_node.allocator

module Conc : Nbq_core.Queue_intf.UNBOUNDED
