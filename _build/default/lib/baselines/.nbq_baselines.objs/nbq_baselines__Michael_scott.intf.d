lib/baselines/michael_scott.mli: Nbq_core Nbq_primitives
