lib/baselines/ms_epoch.mli: Ms_node Nbq_core Nbq_reclaim
