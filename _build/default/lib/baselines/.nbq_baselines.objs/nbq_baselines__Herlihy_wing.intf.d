lib/baselines/herlihy_wing.mli: Nbq_core Nbq_primitives
