lib/baselines/shann.ml: Array Nbq_core Nbq_primitives
