lib/baselines/valois.mli: Nbq_core Nbq_primitives
