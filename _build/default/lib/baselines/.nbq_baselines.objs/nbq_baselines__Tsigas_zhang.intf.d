lib/baselines/tsigas_zhang.mli: Nbq_core Nbq_primitives
