lib/baselines/ms_hazard.ml: Atomic Ms_node Nbq_reclaim
