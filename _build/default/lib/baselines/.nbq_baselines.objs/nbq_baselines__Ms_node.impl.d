lib/baselines/ms_node.ml: Atomic Nbq_reclaim
