lib/baselines/ms_doherty.ml: Domain Nbq_primitives Nbq_reclaim
