lib/baselines/seq_ring.ml: Array Nbq_core
