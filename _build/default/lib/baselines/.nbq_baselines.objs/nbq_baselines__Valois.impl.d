lib/baselines/valois.ml: Array Nbq_core Nbq_primitives
