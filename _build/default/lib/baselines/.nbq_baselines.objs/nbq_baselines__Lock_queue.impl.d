lib/baselines/lock_queue.ml: Array Mutex Nbq_core
