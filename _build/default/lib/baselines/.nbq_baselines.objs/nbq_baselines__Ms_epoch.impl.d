lib/baselines/ms_epoch.ml: Atomic Ms_node Nbq_reclaim
