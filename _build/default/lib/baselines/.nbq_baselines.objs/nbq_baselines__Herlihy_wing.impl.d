lib/baselines/herlihy_wing.ml: Array Nbq_primitives
