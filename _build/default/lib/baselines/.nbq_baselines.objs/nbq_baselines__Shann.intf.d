lib/baselines/shann.mli: Nbq_core Nbq_primitives
