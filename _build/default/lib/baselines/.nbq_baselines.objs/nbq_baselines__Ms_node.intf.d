lib/baselines/ms_node.mli: Atomic
