lib/baselines/tsigas_zhang.ml: Array Nbq_core Nbq_primitives
