lib/baselines/seq_ring.mli: Nbq_core
