lib/baselines/ms_doherty.mli: Nbq_core
