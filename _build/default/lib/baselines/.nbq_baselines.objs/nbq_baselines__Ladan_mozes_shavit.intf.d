lib/baselines/ladan_mozes_shavit.mli: Nbq_core Nbq_primitives
