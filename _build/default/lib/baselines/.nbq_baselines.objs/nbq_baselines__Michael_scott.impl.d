lib/baselines/michael_scott.ml: Nbq_primitives
