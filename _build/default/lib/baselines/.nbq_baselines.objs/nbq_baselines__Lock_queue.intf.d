lib/baselines/lock_queue.mli: Nbq_core
