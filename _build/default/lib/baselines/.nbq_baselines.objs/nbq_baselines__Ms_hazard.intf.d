lib/baselines/ms_hazard.mli: Ms_node Nbq_core Nbq_reclaim
