lib/baselines/ladan_mozes_shavit.ml: Nbq_primitives
