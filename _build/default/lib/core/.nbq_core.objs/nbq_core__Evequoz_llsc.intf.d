lib/core/evequoz_llsc.mli: Atomic Nbq_primitives Queue_intf
