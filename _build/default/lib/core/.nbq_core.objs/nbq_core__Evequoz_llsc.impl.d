lib/core/evequoz_llsc.ml: Array Atomic Nbq_primitives Queue_intf
