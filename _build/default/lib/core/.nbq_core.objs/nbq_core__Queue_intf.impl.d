lib/core/queue_intf.ml: Nbq_primitives
