lib/core/evequoz_cas.mli: Nbq_primitives Queue_intf
