lib/core/evequoz_cas.ml: Array Domain Nbq_primitives Queue_intf
