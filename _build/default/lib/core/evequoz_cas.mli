(** Algorithm 2: the pointer-wide-CAS non-blocking circular-array FIFO
    (paper, Fig. 5).

    Array slots are {!Nbq_primitives.Llsc_cas} cells — single atomic words
    holding either an item, the empty marker, or a reserving thread's tag —
    while [Head] and [Tail] are plain monotonic atomic counters advanced with
    CAS.  Each operation (paper): read the counter, simulated-LL the slot it
    designates, revalidate the counter, then either store-conditional the new
    content and advance the counter, or roll the reservation back and help
    the lagging counter.

    The queue is population-oblivious; space consumption is
    O(capacity + maximum number of threads that ever accessed the queue
    simultaneously) — the tag-variable registry grows to the high-water mark
    of concurrency and is recycled, never freed.

    Two ways to use it:
    - {b implicit handles} — the plain {!Queue_intf.BOUNDED} interface;
      each domain's tag handle is created on first use and cached
      domain-locally.  A domain that stops using the queue without
      {!deregister_domain} keeps its tag variable owned (the paper accepts
      the same leak when a thread dies before [Deregister]).
    - {b explicit handles} — {!register} / {!enqueue} / {!dequeue} /
      {!deregister}, mirroring the paper's signatures; useful when a domain
      multiplexes many logical threads.

    Both entry points perform the paper-mandated [ReRegister] at the start of
    every operation. *)

(** The algorithm core, parameterized over the atomics (for the model
    checker).  Only the explicit-handle API: the domain-local convenience
    layer lives in the default instantiation below. *)
module Make (A : Nbq_primitives.Atomic_intf.ATOMIC) : sig
  type 'a t
  type 'a handle

  val create : capacity:int -> 'a t
  val capacity : 'a t -> int
  val register : 'a t -> 'a handle
  val deregister : 'a handle -> unit
  val enqueue_with : 'a t -> 'a handle -> 'a -> bool
  val dequeue_with : 'a t -> 'a handle -> 'a option
  val peek_with : 'a t -> 'a handle -> 'a option
  val length : 'a t -> int
  val registry_size : 'a t -> int
  val head_index : 'a t -> int
  val tail_index : 'a t -> int
end

include Queue_intf.BOUNDED

type 'a handle
(** A registered tag variable for one logical thread (paper's [LLSCvar *]). *)

val register : 'a t -> 'a handle
(** Acquire a handle: recycle a free tag variable or extend the registry. *)

val deregister : 'a handle -> unit
(** Return the handle's tag variable to the registry.  The handle must not
    be used afterwards. *)

val enqueue_with : 'a t -> 'a handle -> 'a -> bool
(** [try_enqueue] through an explicit handle. *)

val dequeue_with : 'a t -> 'a handle -> 'a option
(** [try_dequeue] through an explicit handle. *)

val try_peek : 'a t -> 'a option
(** Observe the front item without removing it ([None] when empty).
    Linearizable; an extension beyond the paper's API. *)

val peek_with : 'a t -> 'a handle -> 'a option
(** [try_peek] through an explicit handle. *)

val deregister_domain : 'a t -> unit
(** Release the calling domain's implicit handle, if any was created. *)

val registry_size : 'a t -> int
(** Number of tag variables ever allocated for this queue — the space
    adaptivity metric of the paper (tracks the high-water mark of concurrent
    threads, not operation count). *)

val head_index : 'a t -> int
val tail_index : 'a t -> int
(** Raw monotonic counters, for tests and scenario replays. *)
