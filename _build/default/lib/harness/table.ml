type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns"
         (List.length cells) (List.length t.columns));
  t.rows <- cells :: t.rows

let rows t = List.rev t.rows

let render t =
  let all = t.columns :: rows t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let pad i c = c ^ String.make (widths.(i) - String.length c) ' ' in
  let render_row row =
    Buffer.add_string buf (String.concat "  " (List.mapi pad row));
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  Buffer.add_string buf
    (String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  Buffer.add_char buf '\n';
  List.iter render_row (rows t);
  Buffer.contents buf

let quote_csv c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let render_csv t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map quote_csv row));
      Buffer.add_char buf '\n')
    (t.columns :: rows t);
  Buffer.contents buf

let cell_float f = Printf.sprintf "%.4f" f
