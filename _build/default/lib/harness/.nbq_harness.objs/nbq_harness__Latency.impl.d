lib/harness/latency.ml: Array Float Format List Unix
