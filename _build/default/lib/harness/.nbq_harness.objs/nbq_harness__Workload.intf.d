lib/harness/workload.mli: Registry
