lib/harness/registry.mli: Nbq_core
