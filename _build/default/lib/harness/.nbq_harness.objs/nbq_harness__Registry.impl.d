lib/harness/registry.ml: List Nbq_baselines Nbq_core Printf String
