lib/harness/latency.mli: Format
