lib/harness/runner.ml: Domain List Nbq_primitives Registry Stats Workload
