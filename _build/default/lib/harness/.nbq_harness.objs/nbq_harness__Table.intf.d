lib/harness/table.mli:
