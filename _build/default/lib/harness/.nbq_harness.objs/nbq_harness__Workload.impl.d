lib/harness/workload.ml: Domain Nbq_core Registry Unix
