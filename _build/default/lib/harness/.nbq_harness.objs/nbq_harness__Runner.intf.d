lib/harness/runner.mli: Registry Stats Workload
