(** Plain-text and CSV rendering of experiment results.

    The figure binaries print one table per figure: a row per thread count,
    a column per algorithm series — the same rows/series the paper plots. *)

type t

val create : title:string -> columns:string list -> t
(** [columns] includes the row-label column first,
    e.g. ["threads"; "ms-doherty"; ...]. *)

val add_row : t -> string list -> unit
(** Cells must match the column count; raises [Invalid_argument] otherwise. *)

val render : t -> string
(** Aligned plain text with the title, a header rule, and all rows. *)

val render_csv : t -> string

val cell_float : float -> string
(** Canonical numeric formatting used across the binaries (4 significant
    decimals). *)
