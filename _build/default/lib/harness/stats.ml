type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
      let n = List.length xs in
      let m = mean xs in
      let var =
        if n < 2 then 0.0
        else
          List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
          /. float_of_int (n - 1)
      in
      let sorted = List.sort compare xs in
      let median =
        let a = Array.of_list sorted in
        if n mod 2 = 1 then a.(n / 2)
        else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
      in
      {
        n;
        mean = m;
        stddev = sqrt var;
        min = List.nth sorted 0;
        max = List.nth sorted (n - 1);
        median;
      }

let normalize ~base x =
  if base = 0.0 then nan else x /. base

let pp_summary fmt s =
  Format.fprintf fmt "mean=%.6f sd=%.6f min=%.6f med=%.6f max=%.6f (n=%d)"
    s.mean s.stddev s.min s.median s.max s.n
