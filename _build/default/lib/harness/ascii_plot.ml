type series = {
  label : string;
  points : (float * float) list;
}

let markers = [| '*'; '+'; 'o'; 'x'; '#'; '%'; '@'; '~' |]

let render ?(width = 72) ?(height = 20) ~title ~x_label ~y_label series =
  if width < 16 || height < 5 then
    invalid_arg "Ascii_plot.render: chart too small";
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then
    Printf.sprintf "%s\n  (no data)\n" title
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let fmin = List.fold_left Float.min infinity in
    let fmax = List.fold_left Float.max neg_infinity in
    let x_min = fmin xs and x_max = fmax xs in
    let y_min = Float.min 0.0 (fmin ys) and y_max = fmax ys in
    let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
    let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    let plot_col x =
      int_of_float
        (Float.round ((x -. x_min) /. x_span *. float_of_int (width - 1)))
    in
    let plot_row y =
      (* row 0 is the top of the chart *)
      (height - 1)
      - int_of_float
          (Float.round ((y -. y_min) /. y_span *. float_of_int (height - 1)))
    in
    List.iteri
      (fun i s ->
        let marker = markers.(i mod Array.length markers) in
        List.iter
          (fun (x, y) ->
            let c = plot_col x and r = plot_row y in
            if r >= 0 && r < height && c >= 0 && c < width then
              grid.(r).(c) <- marker)
          s.points)
      series;
    let buf = Buffer.create ((width + 16) * (height + 6)) in
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    let y_tick r =
      y_min +. (y_span *. float_of_int (height - 1 - r) /. float_of_int (height - 1))
    in
    Array.iteri
      (fun r row ->
        (* A y-axis tick every few rows keeps the margin readable. *)
        if r mod 4 = 0 || r = height - 1 then
          Buffer.add_string buf (Printf.sprintf "%10.4f |" (y_tick r))
        else Buffer.add_string buf (String.make 10 ' ' ^ " |");
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%11s%-10.4g%*s%10.4g\n" "" x_min
         (width - 10) "" x_max);
    Buffer.add_string buf
      (Printf.sprintf "%11sx: %s   y: %s\n" "" x_label y_label);
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "%11s%c %s\n" ""
             markers.(i mod Array.length markers)
             s.label))
      series;
    Buffer.contents buf
  end
