(** Per-operation latency capture and percentile summaries.

    The paper reports completion times only; under preemptive
    multithreading the {e tail} of the per-operation latency distribution
    is where blocking and non-blocking queues differ most (a preempted
    lock holder stalls every blocked thread for a scheduling quantum,
    while lock-free threads keep finishing).  `bin/latency.exe` measures
    exactly that; this module is the capture substrate.

    Each worker records into its own pre-sized buffer (no allocation or
    synchronization on the hot path beyond reading the clock); buffers are
    merged and summarized after the run. *)

type recorder
(** One worker's latency buffer.  Single-owner. *)

val recorder : capacity:int -> recorder
(** Pre-size for [capacity] samples; extra samples are dropped (counted). *)

val record : recorder -> float -> unit
(** Add one latency sample (seconds). *)

val time : recorder -> (unit -> 'a) -> 'a
(** Run a thunk, recording its wall-clock duration. *)

val dropped : recorder -> int

type summary = {
  samples : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max : float;
}

val summarize : recorder list -> summary
(** Merge and summarize (nearest-rank percentiles).  Raises
    [Invalid_argument] if no samples were recorded. *)

val percentile : float array -> float -> float
(** [percentile sorted q] — nearest-rank percentile [q ∈ \[0,1\]] of a
    sorted array; exposed for tests. *)

val pp_summary : Format.formatter -> summary -> unit
