(** Terminal line charts for the figure binaries.

    The paper's Figure 6 is four line charts (time vs thread count, one
    curve per algorithm); [render] draws the same shape in plain text so
    the crossovers are visible at a glance without leaving the terminal.
    Each series gets a marker character; colliding points show the marker
    of the later series in the list. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y); need not be sorted *)
}

val render :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  string
(** [render ~title ~x_label ~y_label series] draws an axis-annotated chart
    of [width] × [height] characters (defaults 72 × 20) followed by a
    marker legend.  Empty series lists or all-empty series render a
    placeholder note instead.  Raises [Invalid_argument] if [width] or
    [height] is smaller than 16 × 5. *)

val markers : char array
(** The marker alphabet, in series order (cycled if exhausted). *)
