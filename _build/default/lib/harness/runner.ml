module Barrier = Nbq_primitives.Barrier

type run_config = {
  threads : int;
  runs : int;
  workload : Workload.config;
  capacity : int option;
}

type measurement = {
  impl_name : string;
  threads_used : int;
  per_run_seconds : float list;
  summary : Stats.summary;
  full_retries : int;
  empty_retries : int;
}

let default_config ?(threads = 4) ?(runs = 5) workload =
  { threads; runs; workload; capacity = None }

let available_domains () = Domain.recommended_domain_count ()

let one_run (impl : Registry.impl) cfg =
  let capacity =
    match cfg.capacity with
    | Some c -> c
    | None -> Workload.min_capacity cfg.workload ~threads:cfg.threads
  in
  let q = impl.Registry.create ~capacity in
  let barrier = Barrier.create ~parties:cfg.threads in
  let domains =
    List.init cfg.threads (fun thread ->
        Domain.spawn (fun () ->
            Barrier.await barrier;
            Workload.run_thread cfg.workload ~thread q))
  in
  List.map Domain.join domains

let measure impl cfg =
  if cfg.threads < 1 then invalid_arg "Runner.measure: threads < 1";
  let full = ref 0 and empty = ref 0 in
  let per_run =
    List.init cfg.runs (fun _ ->
        let results = one_run impl cfg in
        List.iter
          (fun (r : Workload.thread_result) ->
            full := !full + r.full_retries;
            empty := !empty + r.empty_retries)
          results;
        Stats.mean
          (List.map (fun (r : Workload.thread_result) -> r.seconds) results))
  in
  {
    impl_name = impl.Registry.name;
    threads_used = cfg.threads;
    per_run_seconds = per_run;
    summary = Stats.summarize per_run;
    full_retries = !full;
    empty_retries = !empty;
  }
