type config = {
  iterations : int;
  enqueue_batch : int;
  dequeue_batch : int;
}

let paper_config = { iterations = 100_000; enqueue_batch = 5; dequeue_batch = 5 }

let scaled_config ~scale =
  {
    paper_config with
    iterations = max 1 (int_of_float (float_of_int paper_config.iterations *. scale));
  }

type thread_result = {
  seconds : float;
  full_retries : int;
  empty_retries : int;
}

(* Deadlock-freedom of the spin loops: threads alternate batches, so a
   thread blocked on dequeue has completed its current enqueue batch.  If
   all threads were blocked on an empty queue, summing
   (enqueued_by_t - dequeued_by_t) over threads gives queue length = 0,
   yet each term is >= 1 (a thread never dequeues more than it has
   enqueued before its current blocked batch finishes) — contradiction.
   Symmetrically for full-queue blocking with adequate capacity. *)
let run_thread config ~thread (q : Registry.instance) =
  let full_retries = ref 0 in
  let empty_retries = ref 0 in
  let tag_base = thread lsl 40 in
  let tag = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to config.iterations do
    for _ = 1 to config.enqueue_batch do
      (* Fresh allocation per enqueue, as in the paper. *)
      let payload = { Registry.tag = tag_base lor !tag } in
      incr tag;
      while not (q.Registry.enqueue payload) do
        incr full_retries;
        Domain.cpu_relax ()
      done
    done;
    for _ = 1 to config.dequeue_batch do
      let rec drain () =
        match q.Registry.dequeue () with
        | Some _ -> () (* "freed": dropped, collected by the GC / pool *)
        | None ->
            incr empty_retries;
            Domain.cpu_relax ();
            drain ()
      in
      drain ()
    done
  done;
  let t1 = Unix.gettimeofday () in
  { seconds = t1 -. t0; full_retries = !full_retries; empty_retries = !empty_retries }

let min_capacity config ~threads =
  (* At most [threads * enqueue_batch] items are in flight; double it and
     round up so array queues never report full in the steady state. *)
  Nbq_core.Queue_intf.round_capacity (2 * threads * config.enqueue_batch)
