(** A lock-free pool of recycled nodes (Treiber stack).

    OCaml's GC would silently absorb the node-lifecycle cost that the paper's
    evaluation measures, so "freeing" a node in this repository means pushing
    it here and "allocating" means popping (falling back to real allocation
    when empty).  Crucially, popping returns the {e same block} that was
    pushed, so pointer reuse — and therefore the ABA hazard that hazard
    pointers exist to prevent — actually happens (DESIGN.md §2).

    The stack's own cells are freshly allocated on every push, so the pool
    itself is ABA-free under physical-equality CAS. *)

type 'a t

val create : unit -> 'a t

val put : 'a t -> 'a -> unit
(** Push a retired node.  Lock-free. *)

val take : 'a t -> 'a option
(** Pop a recycled node, LIFO.  Lock-free. *)

val size : 'a t -> int
(** Approximate number of pooled nodes (racy; for tests and stats). *)

val stats_puts : 'a t -> int
val stats_takes : 'a t -> int
(** Cumulative traffic counters (exact). *)
