(** Hazard pointers (Michael, IEEE TPDS 15(6), 2004) — the safe-reclamation
    scheme behind the paper's "MS-Hazard Pointers" baselines.

    A thread publishes the node it is about to dereference in a per-thread
    {e hazard slot}, re-validates its source pointer, and only then uses the
    node.  A retiring thread buffers removed nodes privately; once the buffer
    reaches a threshold (the paper's experiment: 4 × number of threads) it
    {e scans} every thread's published hazards and frees exactly the retired
    nodes that nobody protects.  The scan can first {b sort} the collected
    hazards (binary-search membership, the paper's "Sorted" series) or leave
    them unsorted (linear membership, the "Not Sorted" series) — the
    crossover between the two as the thread count grows is one of the
    paper's observations.

    The manager is generic over the node type; it needs [node_id] (a unique,
    stable integer identity per node — OCaml has no stable addresses) and
    [free] (what "freeing" means, typically {!Free_pool.put}). *)

type 'a manager

type 'a record
(** One thread's hazard slots plus its private retire buffer.  Never shared
    between domains. *)

val create :
  ?hazards_per_thread:int ->
  ?sorted_scan:bool ->
  ?threshold:(participants:int -> int) ->
  node_id:('a -> int) ->
  free:('a -> unit) ->
  unit ->
  'a manager
(** [create ~node_id ~free ()] builds a manager.
    [hazards_per_thread] defaults to 2 (what the MS queue needs);
    [sorted_scan] defaults to [true];
    [threshold] defaults to [fun ~participants -> 4 * participants]
    (the paper's setting). *)

val get_record : 'a manager -> 'a record
(** The calling domain's record, registering it on first use (recycles a
    released record when one exists, else appends — population-oblivious,
    same shape as the paper's tag-variable registry). *)

val protect : 'a record -> int -> 'a -> unit
(** [protect r i node] publishes [node] in hazard slot [i].  The caller must
    re-validate its source pointer afterwards, before dereferencing. *)

val clear : 'a record -> int -> unit
(** Empty hazard slot [i]. *)

val clear_all : 'a record -> unit

val retire : 'a manager -> 'a record -> 'a -> unit
(** Buffer a removed node; triggers a scan when the buffer reaches the
    threshold. *)

val scan : 'a manager -> 'a record -> unit
(** Force a scan now (tests, shutdown). *)

val release_record : 'a manager -> unit
(** Mark the calling domain's record reusable by other domains.  Pending
    retired nodes stay buffered in the record and are handled by its next
    owner's scans. *)

val participants : 'a manager -> int
(** Number of records ever created (high-water mark of concurrency). *)

(** Cumulative statistics, for the reclamation-cost experiments. *)

val total_scans : 'a manager -> int
val total_freed : 'a manager -> int
val total_retired : 'a manager -> int
val pending : 'a manager -> int
(** Retired-but-not-yet-freed nodes across all records (racy snapshot). *)
