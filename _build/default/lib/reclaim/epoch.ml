type 'a record = {
  pinned : bool Atomic.t;
  local_epoch : int Atomic.t;
  (* Three limbo bags indexed by epoch mod 3; private to the owner except
     for the racy [pending] statistic. *)
  limbo : 'a list array;
  mutable limbo_len : int array;
  mutable since_collect : int;
  mutable next : 'a record option;
}

type 'a manager = {
  epoch : int Atomic.t;
  head : 'a record option Atomic.t;
  batch_size : int;
  free : 'a -> unit;
  freed : int Atomic.t;
  dls : 'a record option ref Domain.DLS.key;
}

let create ?(batch_size = 64) ~free () =
  {
    epoch = Atomic.make 0;
    head = Atomic.make None;
    batch_size;
    free;
    freed = Atomic.make 0;
    dls = Domain.DLS.new_key (fun () -> ref None);
  }

let new_record () =
  {
    pinned = Atomic.make false;
    local_epoch = Atomic.make 0;
    limbo = [| []; []; [] |];
    limbo_len = [| 0; 0; 0 |];
    since_collect = 0;
    next = None;
  }

let get_record mgr =
  let cache = Domain.DLS.get mgr.dls in
  match !cache with
  | Some r -> r
  | None ->
      let r = new_record () in
      let rec push () =
        let cur = Atomic.get mgr.head in
        r.next <- cur;
        if not (Atomic.compare_and_set mgr.head cur (Some r)) then push ()
      in
      push ();
      cache := Some r;
      r

let enter mgr r =
  Atomic.set r.pinned true;
  (* The sequentially-consistent store above is visible before this read's
     result is published, so a collector that sees us unpinned either
     happened fully before or will see our epoch. *)
  Atomic.set r.local_epoch (Atomic.get mgr.epoch)

let exit r = Atomic.set r.pinned false

let all_observed mgr e =
  let rec go = function
    | None -> true
    | Some r ->
        ((not (Atomic.get r.pinned)) || Atomic.get r.local_epoch = e) && go r.next
  in
  go (Atomic.get mgr.head)

(* Free the bag of epoch [e - 2] (safe once the global epoch reached [e]). *)
let collect_bag mgr r e =
  let idx = (e + 1) mod 3 in
  (* (e + 1) mod 3 = (e - 2) mod 3 *)
  let bag = r.limbo.(idx) in
  if bag <> [] then begin
    let n = List.length bag in
    List.iter mgr.free bag;
    r.limbo.(idx) <- [];
    r.limbo_len.(idx) <- 0;
    ignore (Atomic.fetch_and_add mgr.freed n)
  end

let try_collect mgr r =
  let e = Atomic.get mgr.epoch in
  if all_observed mgr e then begin
    (* Only one advancer wins; either way epoch >= e + 1 afterwards. *)
    ignore (Atomic.compare_and_set mgr.epoch e (e + 1));
    Atomic.set r.local_epoch (Atomic.get mgr.epoch)
  end;
  collect_bag mgr r (Atomic.get mgr.epoch)

let retire mgr r node =
  (* Bag by the *global* epoch: a node bagged while the global epoch is [g]
     can only still be referenced by threads pinned at [g-1] or [g], both of
     which block the advance past [g+1]; freeing the bag at [g+2] is safe. *)
  let e = Atomic.get mgr.epoch in
  let idx = e mod 3 in
  r.limbo.(idx) <- node :: r.limbo.(idx);
  r.limbo_len.(idx) <- r.limbo_len.(idx) + 1;
  r.since_collect <- r.since_collect + 1;
  if r.since_collect >= mgr.batch_size then begin
    r.since_collect <- 0;
    try_collect mgr r
  end

let global_epoch mgr = Atomic.get mgr.epoch

let total_freed mgr = Atomic.get mgr.freed

let pending mgr =
  let rec go n = function
    | None -> n
    | Some r -> go (n + r.limbo_len.(0) + r.limbo_len.(1) + r.limbo_len.(2)) r.next
  in
  go 0 (Atomic.get mgr.head)
