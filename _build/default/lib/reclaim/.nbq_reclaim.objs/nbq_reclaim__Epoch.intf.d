lib/reclaim/epoch.mli:
