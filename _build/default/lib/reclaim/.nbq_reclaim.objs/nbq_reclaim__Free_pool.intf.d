lib/reclaim/free_pool.mli:
