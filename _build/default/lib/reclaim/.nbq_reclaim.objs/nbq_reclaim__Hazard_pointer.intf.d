lib/reclaim/hazard_pointer.mli:
