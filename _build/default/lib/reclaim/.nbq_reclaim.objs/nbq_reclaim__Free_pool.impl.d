lib/reclaim/free_pool.ml: Atomic
