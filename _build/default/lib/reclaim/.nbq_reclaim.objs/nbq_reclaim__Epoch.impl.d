lib/reclaim/epoch.ml: Array Atomic Domain List
