lib/reclaim/hazard_pointer.ml: Array Atomic Domain List
