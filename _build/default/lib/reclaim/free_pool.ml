type 'a cell = Nil | Cons of 'a * 'a cell

type 'a t = {
  top : 'a cell Atomic.t;
  puts : int Atomic.t;
  takes : int Atomic.t;
}

let create () =
  { top = Atomic.make Nil; puts = Atomic.make 0; takes = Atomic.make 0 }

let rec push t x =
  let cur = Atomic.get t.top in
  if not (Atomic.compare_and_set t.top cur (Cons (x, cur))) then push t x

let put t x =
  push t x;
  ignore (Atomic.fetch_and_add t.puts 1)

let rec pop t =
  match Atomic.get t.top with
  | Nil -> None
  | Cons (x, rest) as cur ->
      if Atomic.compare_and_set t.top cur rest then Some x else pop t

let take t =
  match pop t with
  | Some _ as r ->
      ignore (Atomic.fetch_and_add t.takes 1);
      r
  | None -> None

let size t =
  let rec count n = function Nil -> n | Cons (_, rest) -> count (n + 1) rest in
  count 0 (Atomic.get t.top)

let stats_puts t = Atomic.get t.puts
let stats_takes t = Atomic.get t.takes
