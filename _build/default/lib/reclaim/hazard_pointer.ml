type 'a record = {
  hazards : 'a option Atomic.t array;
  active : bool Atomic.t;
  (* Private to the owning domain: *)
  mutable retired : 'a list;
  mutable retired_len : int;
  (* Registry chain; write-once before publication. *)
  mutable next : 'a record option;
}

type 'a manager = {
  head : 'a record option Atomic.t;
  hazards_per_thread : int;
  sorted_scan : bool;
  threshold : participants:int -> int;
  node_id : 'a -> int;
  free : 'a -> unit;
  participant_count : int Atomic.t;
  scans : int Atomic.t;
  freed : int Atomic.t;
  retired_total : int Atomic.t;
  dls : 'a record option ref Domain.DLS.key;
}

let create ?(hazards_per_thread = 2) ?(sorted_scan = true)
    ?(threshold = fun ~participants -> 4 * participants) ~node_id ~free () =
  {
    head = Atomic.make None;
    hazards_per_thread;
    sorted_scan;
    threshold;
    node_id;
    free;
    participant_count = Atomic.make 0;
    scans = Atomic.make 0;
    freed = Atomic.make 0;
    retired_total = Atomic.make 0;
    dls = Domain.DLS.new_key (fun () -> ref None);
  }

let rec find_inactive = function
  | None -> None
  | Some r ->
      if (not (Atomic.get r.active)) && Atomic.compare_and_set r.active false true
      then Some r
      else find_inactive r.next

let acquire_record mgr =
  match find_inactive (Atomic.get mgr.head) with
  | Some r -> r
  | None ->
      let r =
        {
          hazards = Array.init mgr.hazards_per_thread (fun _ -> Atomic.make None);
          active = Atomic.make true;
          retired = [];
          retired_len = 0;
          next = None;
        }
      in
      let rec push () =
        let cur = Atomic.get mgr.head in
        r.next <- cur;
        if not (Atomic.compare_and_set mgr.head cur (Some r)) then push ()
      in
      push ();
      ignore (Atomic.fetch_and_add mgr.participant_count 1);
      r

let get_record mgr =
  let cache = Domain.DLS.get mgr.dls in
  match !cache with
  | Some r -> r
  | None ->
      let r = acquire_record mgr in
      cache := Some r;
      r

let protect r i node = Atomic.set r.hazards.(i) (Some node)

let clear r i = Atomic.set r.hazards.(i) None

let clear_all r =
  for i = 0 to Array.length r.hazards - 1 do
    clear r i
  done

let release_record mgr =
  let cache = Domain.DLS.get mgr.dls in
  match !cache with
  | Some r ->
      clear_all r;
      Atomic.set r.active false;
      cache := None
  | None -> ()

let participants mgr = Atomic.get mgr.participant_count

(* Collect every published hazard id into an array. *)
let collect_hazards mgr =
  let acc = ref [] in
  let rec go = function
    | None -> ()
    | Some r ->
        Array.iter
          (fun h ->
            match Atomic.get h with
            | Some node -> acc := mgr.node_id node :: !acc
            | None -> ())
          r.hazards;
        go r.next
  in
  go (Atomic.get mgr.head);
  Array.of_list !acc

let array_mem_linear a x =
  let n = Array.length a in
  let rec go i = i < n && (a.(i) = x || go (i + 1)) in
  go 0

let array_mem_sorted a x =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true else if a.(mid) < x then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let scan mgr r =
  ignore (Atomic.fetch_and_add mgr.scans 1);
  let hazards = collect_hazards mgr in
  let mem =
    if mgr.sorted_scan then begin
      Array.sort compare hazards;
      array_mem_sorted hazards
    end
    else array_mem_linear hazards
  in
  let kept = ref [] in
  let kept_len = ref 0 in
  let freed = ref 0 in
  List.iter
    (fun node ->
      if mem (mgr.node_id node) then begin
        kept := node :: !kept;
        incr kept_len
      end
      else begin
        mgr.free node;
        incr freed
      end)
    r.retired;
  r.retired <- !kept;
  r.retired_len <- !kept_len;
  ignore (Atomic.fetch_and_add mgr.freed !freed)

let retire mgr r node =
  r.retired <- node :: r.retired;
  r.retired_len <- r.retired_len + 1;
  ignore (Atomic.fetch_and_add mgr.retired_total 1);
  let participants = Atomic.get mgr.participant_count in
  if r.retired_len >= mgr.threshold ~participants then scan mgr r

let total_scans mgr = Atomic.get mgr.scans
let total_freed mgr = Atomic.get mgr.freed
let total_retired mgr = Atomic.get mgr.retired_total

let pending mgr =
  let rec go n = function
    | None -> n
    | Some r -> go (n + r.retired_len) r.next
  in
  go 0 (Atomic.get mgr.head)
