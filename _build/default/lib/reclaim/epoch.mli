(** Epoch-based reclamation (Fraser 2004) — an extension baseline.

    Not part of the paper's evaluation, but the natural third point on the
    reclamation axis next to hazard pointers and the free pool, and used by
    the MS-EBR extension series in the ablation benchmarks.

    A thread wraps every structure operation in [enter]/[exit] ("pinning"
    the current global epoch).  Retired nodes go into the limbo bag of the
    epoch in which they were retired.  The global epoch can advance from [e]
    to [e+1] once every pinned thread has observed [e]; nodes retired two
    epochs ago can then be handed to [free] — no thread can still hold a
    reference from inside a critical region.  Cheap per-operation cost, but
    a single stalled thread blocks reclamation (the classic trade-off vs
    hazard pointers — visible in the ablation results). *)

type 'a manager

type 'a record
(** Per-domain participation state.  Never shared between domains. *)

val create :
  ?batch_size:int -> free:('a -> unit) -> unit -> 'a manager
(** [batch_size] (default 64) is how many retirements a thread buffers
    before it attempts to advance the epoch and collect. *)

val get_record : 'a manager -> 'a record
(** The calling domain's record, registered on first use. *)

val enter : 'a manager -> 'a record -> unit
(** Begin a critical region: pin the current epoch.  Must not nest. *)

val exit : 'a record -> unit
(** End the critical region. *)

val retire : 'a manager -> 'a record -> 'a -> unit
(** Add a node to the current epoch's limbo bag (must be called between
    [enter] and [exit]). *)

val try_collect : 'a manager -> 'a record -> unit
(** Attempt one epoch advance + collection now (tests, shutdown). *)

val global_epoch : 'a manager -> int

val total_freed : 'a manager -> int
val pending : 'a manager -> int
(** Limbo-bag population (racy snapshot). *)
