(** Recording concurrent queue histories.

    Linearizability (Herlihy & Wing [3], the correctness condition the paper
    claims) is a property of {e histories}: sequences of operation
    invocations and responses.  This module timestamps both ends of every
    operation with a shared atomic tick counter, giving the real-time
    precedence order the checker must respect: operation [a] precedes [b]
    iff [a] responded before [b] was invoked. *)

type op =
  | Enqueue of int
  | Dequeue
  | Peek  (** observe the front without removing (extension feature) *)

type outcome =
  | Accepted      (** enqueue returned [true] *)
  | Rejected      (** enqueue returned [false] — queue full *)
  | Got of int    (** dequeue returned an item *)
  | Observed_empty  (** dequeue returned [None] *)

type event = {
  thread : int;
  op : op;
  outcome : outcome;
  invoked : int;  (** tick at invocation *)
  returned : int; (** tick at response *)
}

type t = event list
(** A complete history (all operations responded). *)

type recorder
(** Shared timestamp source plus per-thread event sinks. *)

val recorder : threads:int -> recorder

val record :
  recorder -> thread:int -> op -> (unit -> outcome) -> outcome
(** [record r ~thread op run] stamps the invocation, runs [run] (which
    performs the real queue operation), stamps the response, logs the event
    in [thread]'s sink and returns the outcome.  [thread] sinks are
    single-owner: each thread id must be used by one domain only. *)

val events : recorder -> t
(** Merge all sinks (call after every worker has joined). *)

val precedes : event -> event -> bool
(** Real-time order: [a] responded before [b] was invoked. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
