module Prng = Nbq_primitives.Prng
module Barrier = Nbq_primitives.Barrier

type ops = {
  enqueue : int -> bool;
  dequeue : unit -> int option;
}

let value ~thread ~seq = (thread lsl 20) lor seq

let worker_loop ~recorder ~thread ~ops_per_thread ~rng (ops : ops) =
  (* Track own backlog to bias toward enqueues early and drain late, so
     histories exercise both empty and populated regimes. *)
  let seq = ref 0 in
  for _ = 1 to ops_per_thread do
    let do_enqueue = Prng.int rng 10 < 6 in
    if do_enqueue then begin
      let v = value ~thread ~seq:!seq in
      incr seq;
      ignore
        (History.record recorder ~thread (History.Enqueue v) (fun () ->
             if ops.enqueue v then History.Accepted else History.Rejected))
    end
    else
      ignore
        (History.record recorder ~thread History.Dequeue (fun () ->
             match ops.dequeue () with
             | Some v -> History.Got v
             | None -> History.Observed_empty))
  done

let run_once ~threads ~ops_per_thread ~seed make_ops =
  let recorder = History.recorder ~threads in
  let barrier = Barrier.create ~parties:threads in
  let domains =
    List.init threads (fun thread ->
        let ops = make_ops thread in
        Domain.spawn (fun () ->
            let rng = Prng.create ~seed:(seed + (thread * 7919)) in
            Barrier.await barrier;
            worker_loop ~recorder ~thread ~ops_per_thread ~rng ops))
  in
  List.iter Domain.join domains;
  History.events recorder

let check_small_rounds ?(rounds = 100) ?(threads = 3) ?(ops_per_thread = 4)
    ?capacity ?(seed = 42) make_round =
  let rec go round =
    if round >= rounds then Checker.Ok
    else begin
      let make_ops = make_round () in
      let history =
        run_once ~threads ~ops_per_thread ~seed:(seed + (round * 131)) make_ops
      in
      match Checker.check_linearizable ?capacity history with
      | Checker.Ok -> go (round + 1)
      | Checker.Violation msg ->
          Checker.Violation (Printf.sprintf "round %d: %s" round msg)
    end
  in
  go 0

let check_big_run ?(threads = 4) ?(ops_per_thread = 20_000) ?(seed = 42)
    ~final_length make_ops =
  let history = run_once ~threads ~ops_per_thread ~seed make_ops in
  Checker.check_fifo_properties ~expected_final_length:(final_length ())
    history
