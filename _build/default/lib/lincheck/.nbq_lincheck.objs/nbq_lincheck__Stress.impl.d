lib/lincheck/stress.ml: Checker Domain History List Nbq_primitives Printf
