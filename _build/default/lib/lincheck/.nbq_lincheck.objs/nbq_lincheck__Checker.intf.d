lib/lincheck/checker.mli: History
