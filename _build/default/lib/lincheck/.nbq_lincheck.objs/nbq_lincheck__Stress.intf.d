lib/lincheck/stress.mli: Checker History
