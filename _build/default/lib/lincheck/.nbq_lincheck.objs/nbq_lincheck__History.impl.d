lib/lincheck/history.ml: Array Atomic Format List
