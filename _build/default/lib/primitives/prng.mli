(** Small, fast, splittable pseudo-random number generator (SplitMix64).

    Used by the failure-injecting LL/SC variant, the benchmark workload
    generator and the randomized tests.  Each generator is a single mutable
    cell and is {e not} thread-safe; create one per domain (see
    {!domain_local}) or per test. *)

type t
(** A SplitMix64 generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds give equal
    streams. *)

val split : t -> t
(** [split g] returns a new generator whose stream is independent from the
    remainder of [g]'s stream.  Advances [g]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val domain_local : unit -> t
(** A generator private to the calling domain, seeded from the domain id.
    Successive calls from the same domain return the same generator. *)
