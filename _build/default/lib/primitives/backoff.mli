(** Truncated exponential backoff for contended retry loops.

    Every lock-free retry loop in this repository may optionally spin through
    one of these between attempts.  The paper's algorithms do not prescribe a
    contention manager; backoff is an orthogonal knob that the ablation
    benchmark ({!section-"E8"} in DESIGN.md) switches on and off. *)

type t
(** Mutable per-call-site backoff state.  Not thread-safe; allocate one per
    domain and per loop (they are two words, this is cheap). *)

val create : ?min_wait:int -> ?max_wait:int -> unit -> t
(** [create ~min_wait ~max_wait ()] bounds the spin count between
    [min_wait] (default 1) and [max_wait] (default 4096) iterations of
    [Domain.cpu_relax].  Raises [Invalid_argument] if
    [min_wait < 1 || max_wait < min_wait]. *)

val once : t -> unit
(** Spin for the current wait amount, then double it (saturating at
    [max_wait]). *)

val reset : t -> unit
(** Forget accumulated contention; the next {!once} waits [min_wait]. *)

val current : t -> int
(** Current spin count; exposed for tests. *)
