(** A sense-reversing spinning barrier.

    The paper's methodology synchronizes all worker threads so that "none
    can begin its iterations before all others finished their
    initialization phase" (§6); every multi-threaded run in this repository
    starts behind one of these.  Reusable across rounds (the sense flips
    each time all parties arrive). *)

type t

val create : parties:int -> t
(** [parties] must be >= 1. *)

val await : t -> unit
(** Block (spinning with [Domain.cpu_relax]) until all [parties] domains
    have called [await] for the current round. *)

val parties : t -> int
