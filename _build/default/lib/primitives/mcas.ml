module type S = sig
  type 'a cell
  type 'a snapshot

  val make : 'a -> 'a cell
  val read : 'a cell -> 'a snapshot
  val value : 'a snapshot -> 'a
  val mcas : ('a cell * 'a snapshot * 'a) list -> bool
  val cas : 'a cell -> 'a snapshot -> 'a -> bool
end

module Make (A : Atomic_intf.ATOMIC) = struct
  type status = Undecided | Succeeded | Failed

  type 'a content =
    | Val of 'a
    | Rdcss of 'a rdcss_desc
    | Mcas_d of 'a mcas_desc

  and 'a rdcss_desc = {
    target : 'a cell;
    expected : 'a content; (* always a Val block *)
    mdesc : 'a mcas_desc;
  }

  and 'a mcas_desc = {
    status : status A.t;
    entries : 'a entry array; (* sorted by cell id: global helping order *)
  }

  and 'a entry = { cell : 'a cell; exp : 'a content; nv : 'a content }

  and 'a cell = { id : int; data : 'a content A.t }

  type 'a snapshot = 'a content (* a Val block *)

  (* Ids only order the entries (lock-freedom needs a global acquisition
     order); they are not part of the simulated memory, so a real atomic
     counter is fine even under the model checker. *)
  let id_counter = Stdlib.Atomic.make 0

  let make v =
    { id = Stdlib.Atomic.fetch_and_add id_counter 1; data = A.make (Val v) }

  let value = function
    | Val v -> v
    | Rdcss _ | Mcas_d _ -> assert false

  (* CAS helpers that match the *descriptor inside* the current content
     block: the wrapper blocks ([Rdcss _] / [Mcas_d _]) are allocated
     fresh at each installation, so only the block actually read can serve
     as the physical CAS witness. *)

  (* Replace the cell's content iff it currently wraps exactly [rd]. *)
  let swap_out_rdcss (rd : 'a rdcss_desc) replacement =
    match A.get rd.target.data with
    | Rdcss rd' as cur when rd' == rd ->
        ignore (A.compare_and_set rd.target.data cur replacement)
    | Rdcss _ | Val _ | Mcas_d _ -> ()

  (* Replace the cell's content iff it currently wraps exactly [d]. *)
  let swap_out_mcas cell (d : 'a mcas_desc) replacement =
    match A.get cell.data with
    | Mcas_d d' as cur when d' == d ->
        ignore (A.compare_and_set cell.data cur replacement)
    | Mcas_d _ | Val _ | Rdcss _ -> ()

  (* RDCSS: install [Mcas_d rd.mdesc] into rd.target iff the target still
     holds rd.expected and the descriptor is still Undecided; otherwise
     restore/leave.  Returns the content that decided the outcome. *)
  let rec rdcss (rd : 'a rdcss_desc) : 'a content =
    let cur = A.get rd.target.data in
    match cur with
    | Rdcss other ->
        complete other;
        rdcss rd
    | Val _ | Mcas_d _ ->
        if cur != rd.expected then cur
        else if A.compare_and_set rd.target.data cur (Rdcss rd) then begin
          complete rd;
          rd.expected
        end
        else rdcss rd

  and complete (rd : 'a rdcss_desc) =
    if A.get rd.mdesc.status = Undecided then
      swap_out_rdcss rd (Mcas_d rd.mdesc)
    else swap_out_rdcss rd rd.expected

  (* Drive a descriptor to completion (phase 1: install everywhere or
     fail; decide; phase 2: replace descriptors with outcomes). *)
  and help (d : 'a mcas_desc) : bool =
    let exception Break of status in
    (try
       Array.iter
         (fun e ->
           let rec install () =
             if A.get d.status <> Undecided then raise (Break (A.get d.status));
             let seen = rdcss { target = e.cell; expected = e.exp; mdesc = d } in
             if seen == e.exp then () (* installed (or re-installed) *)
             else
               match seen with
               | Mcas_d d' when d' == d -> () (* a helper beat us here *)
               | Mcas_d d' ->
                   ignore (help d');
                   install ()
               | Val _ -> raise (Break Failed)
               | Rdcss _ -> assert false (* rdcss never returns these *)
           in
           install ())
         d.entries;
       ignore (A.compare_and_set d.status Undecided Succeeded)
     with Break s -> ignore (A.compare_and_set d.status Undecided s));
    let final = A.get d.status in
    Array.iter
      (fun e ->
        let replacement = if final = Succeeded then e.nv else e.exp in
        swap_out_mcas e.cell d replacement)
      d.entries;
    final = Succeeded

  let rec read cell =
    match A.get cell.data with
    | Val _ as v -> v
    | Rdcss rd ->
        complete rd;
        read cell
    | Mcas_d d ->
        ignore (help d);
        read cell

  let mcas specs =
    if specs = [] then invalid_arg "Mcas.mcas: empty";
    let entries =
      specs
      |> List.map (fun (cell, snapshot, nv) ->
             { cell; exp = snapshot; nv = Val nv })
      |> List.sort (fun a b -> compare a.cell.id b.cell.id)
      |> Array.of_list
    in
    Array.iteri
      (fun i e ->
        if i > 0 && entries.(i - 1).cell.id = e.cell.id then
          invalid_arg "Mcas.mcas: duplicate cell")
      entries;
    help { status = A.make Undecided; entries }

  let cas cell snapshot v = A.compare_and_set cell.data snapshot (Val v)
end

include Make (Atomic_intf.Real)
