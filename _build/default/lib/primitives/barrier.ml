type t = {
  parties : int;
  remaining : int Atomic.t;
  sense : bool Atomic.t;
}

let create ~parties =
  if parties < 1 then invalid_arg "Barrier.create: parties < 1";
  { parties; remaining = Atomic.make parties; sense = Atomic.make false }

let await t =
  let my_sense = not (Atomic.get t.sense) in
  if Atomic.fetch_and_add t.remaining (-1) = 1 then begin
    (* Last arrival: reset the count, then release everyone. *)
    Atomic.set t.remaining t.parties;
    Atomic.set t.sense my_sense
  end
  else
    while Atomic.get t.sense <> my_sense do
      Domain.cpu_relax ()
    done

let parties t = t.parties
