lib/primitives/barrier.mli:
