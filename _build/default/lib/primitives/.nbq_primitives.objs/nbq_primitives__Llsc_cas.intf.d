lib/primitives/llsc_cas.mli: Atomic_intf
