lib/primitives/prng.ml: Domain Int64
