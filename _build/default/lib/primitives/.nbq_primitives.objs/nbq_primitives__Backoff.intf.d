lib/primitives/backoff.mli:
