lib/primitives/llsc.ml: Atomic_intf Float Prng
