lib/primitives/mcas.mli: Atomic_intf
