lib/primitives/prng.mli:
