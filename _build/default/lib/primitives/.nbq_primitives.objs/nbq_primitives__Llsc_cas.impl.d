lib/primitives/llsc_cas.ml: Atomic_intf
