lib/primitives/llsc.mli: Atomic_intf
