lib/primitives/atomic_intf.ml: Stdlib
