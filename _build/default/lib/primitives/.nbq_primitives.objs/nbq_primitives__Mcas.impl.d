lib/primitives/mcas.ml: Array Atomic_intf List Stdlib
