lib/primitives/barrier.ml: Atomic Domain
