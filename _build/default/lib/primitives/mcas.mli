(** Software multi-word compare-and-swap (descriptor-based, after Harris,
    Fraser & Pratt, DISC 2002).

    The paper's §2 dismisses Valois's circular-array queue because it
    "requires that two array locations … be simultaneously updated with a
    CAS primitive — unfortunately this primitive is not available on
    modern processors".  This module supplies that missing primitive in
    software so the repository can include the Valois design point
    ({!Nbq_baselines.Valois}) and measure what the convenience costs: an
    MCAS over k words issues roughly 3k+1 single-word CAS on the
    uncontended path.

    A cell is read through {!read}, which returns a {e snapshot} (value +
    identity witness, like {!Llsc}'s link); {!mcas} atomically replaces a
    set of cells' contents given their snapshots — all updates apply, or
    none.  Readers and competing MCAS operations help in-flight
    descriptors to completion, so the construction is lock-free.  Because
    every write installs a fresh value block, snapshot identity doubles as
    ABA protection.

    Functorized over the atomics for the model checker. *)

module type S = sig
  type 'a cell
  type 'a snapshot

  val make : 'a -> 'a cell
  val read : 'a cell -> 'a snapshot
  (** Current logical value, helping any in-flight MCAS first. *)

  val value : 'a snapshot -> 'a

  val mcas : ('a cell * 'a snapshot * 'a) list -> bool
  (** [mcas [(c1, s1, n1); ...]] writes every [ni] into [ci] iff every
      [ci] still holds the content witnessed by [si] — atomically, with
      helping.  Returns whether the update happened.  Raises
      [Invalid_argument] on an empty list or duplicate cells. *)

  val cas : 'a cell -> 'a snapshot -> 'a -> bool
  (** One-word convenience ([mcas] with a single entry, minus descriptor
      traffic). *)
end

module Make (A : Atomic_intf.ATOMIC) : S

include S
