(** The atomic-memory interface the lock-free algorithms are written
    against.

    Production code instantiates the algorithm functors with {!Real}
    (OCaml's [Stdlib.Atomic]); the model checker instantiates them with
    instrumented atomics whose every access is a scheduling point, so that
    small scenarios can be explored over {e all} interleavings
    (see [Nbq_modelcheck.Sim]). *)

module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  val compare_and_set : 'a t -> 'a -> 'a -> bool
  (** Same comparison semantics as [Stdlib.Atomic.compare_and_set]:
      physical equality, which is value equality for immediates. *)

  val fetch_and_add : int t -> int -> int
end

(** The real thing. *)
module Real : ATOMIC with type 'a t = 'a Stdlib.Atomic.t = struct
  type 'a t = 'a Stdlib.Atomic.t

  let make = Stdlib.Atomic.make
  let get = Stdlib.Atomic.get
  let set = Stdlib.Atomic.set
  let compare_and_set = Stdlib.Atomic.compare_and_set
  let fetch_and_add = Stdlib.Atomic.fetch_and_add
end
