type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = { state = next_int64 g }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (next_int64 g) land max_int in
  r mod bound

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g =
  (* 53 high-quality bits into the mantissa. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 g) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let key : t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let id = (Domain.self () :> int) in
      create ~seed:(0x6A09E667 + (id * 0x9E3779B1)))

let domain_local () = Domain.DLS.get key
