lib/modelcheck/sim.mli: Nbq_primitives
