lib/modelcheck/scenarios.ml: Array List Nbq_baselines Nbq_core Nbq_lincheck Nbq_primitives Printf Sim String
