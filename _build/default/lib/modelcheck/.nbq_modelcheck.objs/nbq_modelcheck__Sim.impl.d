lib/modelcheck/sim.ml: Array Effect Fun List Nbq_primitives Printexc
