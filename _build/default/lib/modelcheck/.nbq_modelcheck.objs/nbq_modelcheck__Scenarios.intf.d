lib/modelcheck/scenarios.mli:
