module H = Nbq_lincheck.History
module C = Nbq_lincheck.Checker

type op = Enq of int | Deq | Peek

type scenario = unit -> (unit -> unit) array * (unit -> unit)

let record recorder ~thread ~enq ~deq ?peek op =
  match op with
  | Enq v ->
      ignore
        (H.record recorder ~thread (H.Enqueue v) (fun () ->
             if enq v then H.Accepted else H.Rejected))
  | Deq ->
      ignore
        (H.record recorder ~thread H.Dequeue (fun () ->
             match deq () with Some v -> H.Got v | None -> H.Observed_empty))
  | Peek -> (
      match peek with
      | None -> invalid_arg "Scenarios: this algorithm has no peek"
      | Some peek ->
          ignore
            (H.record recorder ~thread H.Peek (fun () ->
                 match peek () with
                 | Some v -> H.Got v
                 | None -> H.Observed_empty)))

let lin_check ~capacity recorder () =
  match C.check_linearizable ~capacity (H.events recorder) with
  | C.Ok -> ()
  | C.Violation msg -> failwith msg

(* Generic builder over any (enq, deq[, peek]) triple on fresh state. *)
let generic ~make_queue ~spec_capacity ~prefill threads () =
  let nthreads = List.length threads in
  let enq, deq, peek = make_queue () in
  let recorder = H.recorder ~threads:(nthreads + 1) in
  Sim.run_sequential (fun () ->
      List.iter
        (fun v ->
          record recorder ~thread:nthreads ~enq ~deq:(fun () -> None) (Enq v))
        prefill);
  let task i ops () =
    List.iter (record recorder ~thread:i ~enq ~deq ?peek) ops
  in
  ( Array.of_list (List.mapi task threads),
    lin_check ~capacity:spec_capacity recorder )

module SimCell = Nbq_primitives.Llsc.Make (Sim.Atomic)
module SimQ1 = Nbq_core.Evequoz_llsc.Make (SimCell)
module SimQ2 = Nbq_core.Evequoz_cas.Make (Sim.Atomic)
module SimShann = Nbq_baselines.Shann.Make (Sim.Atomic)
module SimTz = Nbq_baselines.Tsigas_zhang.Make (Sim.Atomic)
module SimMs = Nbq_baselines.Michael_scott.Make (Sim.Atomic)
module SimHw = Nbq_baselines.Herlihy_wing.Make (Sim.Atomic)
module SimLms = Nbq_baselines.Ladan_mozes_shavit.Make (Sim.Atomic)
module SimValois = Nbq_baselines.Valois.Make (Sim.Atomic)

let algorithms =
  [
    "evequoz-llsc"; "evequoz-cas"; "shann"; "tsigas-zhang"; "ms-gc";
    "herlihy-wing"; "lms-optimistic"; "valois-dcas";
  ]

let build ~algorithm ~capacity ~prefill threads =
  match algorithm with
  | "evequoz-llsc" ->
      generic ~spec_capacity:capacity ~prefill threads ~make_queue:(fun () ->
          let q = SimQ1.create ~capacity in
          ( (fun v -> SimQ1.try_enqueue q v),
            (fun () -> SimQ1.try_dequeue q),
            Some (fun () -> SimQ1.try_peek q) ))
  | "evequoz-cas" ->
      (* Explicit handles: registration runs inside the explored schedule,
         once per simulated thread, like a fresh paper thread would. *)
      fun () ->
        let q = SimQ2.create ~capacity in
        let nthreads = List.length threads in
        let recorder = H.recorder ~threads:(nthreads + 1) in
        Sim.run_sequential (fun () ->
            let h = SimQ2.register q in
            List.iter
              (fun v ->
                record recorder ~thread:nthreads
                  ~enq:(fun v -> SimQ2.enqueue_with q h v)
                  ~deq:(fun () -> None)
                  (Enq v))
              prefill;
            SimQ2.deregister h);
        let task i ops () =
          let h = SimQ2.register q in
          List.iter
            (record recorder ~thread:i
               ~enq:(fun v -> SimQ2.enqueue_with q h v)
               ~deq:(fun () -> SimQ2.dequeue_with q h)
               ~peek:(fun () -> SimQ2.peek_with q h))
            ops;
          SimQ2.deregister h
        in
        ( Array.of_list (List.mapi task threads),
          lin_check ~capacity recorder )
  | "shann" ->
      generic ~spec_capacity:capacity ~prefill threads ~make_queue:(fun () ->
          let q = SimShann.create ~capacity in
          ( (fun v -> SimShann.try_enqueue q v),
            (fun () -> SimShann.try_dequeue q),
            None ))
  | "tsigas-zhang" ->
      generic ~spec_capacity:capacity ~prefill threads ~make_queue:(fun () ->
          let q = SimTz.create ~capacity in
          ( (fun v -> SimTz.try_enqueue q v),
            (fun () -> SimTz.try_dequeue q),
            None ))
  | "ms-gc" ->
      generic ~spec_capacity:max_int ~prefill threads ~make_queue:(fun () ->
          let q = SimMs.create () in
          ( (fun v ->
              SimMs.enqueue q v;
              true),
            (fun () -> SimMs.try_dequeue q),
            None ))
  | "herlihy-wing" ->
      generic ~spec_capacity:max_int ~prefill threads ~make_queue:(fun () ->
          let q = SimHw.create () in
          ( (fun v ->
              SimHw.enqueue q v;
              true),
            (fun () -> SimHw.try_dequeue q),
            None ))
  | "valois-dcas" ->
      generic ~spec_capacity:capacity ~prefill threads ~make_queue:(fun () ->
          let q = SimValois.create ~capacity in
          ( (fun v -> SimValois.try_enqueue q v),
            (fun () -> SimValois.try_dequeue q),
            None ))
  | "lms-optimistic" ->
      generic ~spec_capacity:max_int ~prefill threads ~make_queue:(fun () ->
          let q = SimLms.create () in
          ( (fun v ->
              SimLms.enqueue q v;
              true),
            (fun () -> SimLms.try_dequeue q),
            None ))
  | other ->
      invalid_arg
        (Printf.sprintf "Scenarios.build: unknown algorithm %S (know: %s)"
           other
           (String.concat ", " algorithms))

let standard_matrix =
  [
    ("enq|enq", 2, [], [ [ Enq 1 ]; [ Enq 2 ] ]);
    ("enq|deq empty", 2, [], [ [ Enq 1 ]; [ Deq ] ]);
    ("enq|deq nonempty", 2, [ 100 ], [ [ Enq 1 ]; [ Deq ] ]);
    ("deq|deq", 4, [ 100; 200 ], [ [ Deq ]; [ Deq ] ]);
    ("enq|deq at full", 2, [ 100; 200 ], [ [ Enq 1 ]; [ Deq ] ]);
    ("2 ops each", 2, [], [ [ Enq 1; Deq ]; [ Enq 2; Deq ] ]);
  ]
