(** Ready-made model-checking scenarios for the repository's queues.

    A scenario interleaves a few threads' worth of queue operations on a
    simulated-atomics instantiation of an algorithm and checks every
    completed schedule's history for linearizability against the bounded
    FIFO specification.  Used by the test suite and by
    [bin/modelcheck_run.exe]. *)

type op = Enq of int | Deq | Peek

type scenario = unit -> (unit -> unit) array * (unit -> unit)
(** What {!Sim.explore} consumes. *)

val build :
  algorithm:string ->
  capacity:int ->
  prefill:int list ->
  op list list ->
  scenario
(** [build ~algorithm ~capacity ~prefill threads] — [algorithm] is one of
    {!algorithms}; [threads] is one op-list per simulated thread; the
    prefilled items are folded into the checked history as a prologue.
    Raises [Invalid_argument] on an unknown algorithm name. *)

val algorithms : string list
(** The functorized implementations that can run on simulated atomics:
    both of the paper's algorithms plus Shann, Tsigas–Zhang, Michael–Scott,
    Herlihy–Wing and Ladan-Mozes–Shavit. *)

val standard_matrix : (string * int * int list * op list list) list
(** The (name, capacity, prefill, threads) tuples every algorithm is
    checked against: concurrent enqueues, enqueue/dequeue races on empty
    and non-empty queues, competing dequeues, the full boundary, and a
    two-ops-each crossing. *)
