(* Extension experiment: per-operation latency percentiles under
   preemptive multithreading.

   The paper's charts aggregate whole-run completion times; the per-op
   tail is where the non-blocking property becomes visible on a
   single-core box — when the OS preempts a lock *holder*, every other
   thread of a blocking queue stalls for a full scheduling quantum
   (milliseconds), while lock-free threads still complete in microseconds
   unless they themselves are descheduled.  Expect the lock queues' p99.9
   to blow up with thread count while the array queues' stays flat-ish. *)

open Cmdliner
open Nbq_harness

let run_impl (impl : Registry.impl) ~threads ~ops =
  let capacity = max 64 (threads * 16) in
  let q = impl.Registry.create ~capacity in
  let barrier = Nbq_primitives.Barrier.create ~parties:threads in
  let recorders = List.init threads (fun _ -> Latency.recorder ~capacity:ops) in
  let domains =
    List.mapi
      (fun worker r ->
        Domain.spawn (fun () ->
            Nbq_primitives.Barrier.await barrier;
            let tag_base = worker lsl 40 in
            for i = 1 to ops / 2 do
              Latency.time r (fun () ->
                  while not (q.Registry.enqueue { Registry.tag = tag_base lor i })
                  do
                    Domain.cpu_relax ()
                  done);
              Latency.time r (fun () ->
                  let rec drain () =
                    match q.Registry.dequeue () with
                    | Some _ -> ()
                    | None ->
                        Domain.cpu_relax ();
                        drain ()
                  in
                  drain ())
            done))
      recorders
  in
  List.iter Domain.join domains;
  Latency.summarize recorders

let run names threads ops =
  let impls =
    match names with
    | [] ->
        List.map Registry.find
          [ "evequoz-llsc"; "evequoz-cas"; "ms-hp-sorted"; "two-lock"; "lock-ring" ]
    | names -> List.map Registry.find names
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Per-operation latency, %d threads x %d ops (microseconds)"
           threads ops)
      ~columns:[ "queue"; "mean"; "p50"; "p99"; "p99.9"; "max" ]
  in
  List.iter
    (fun (impl : Registry.impl) ->
      let s = run_impl impl ~threads ~ops in
      let us x = Printf.sprintf "%.2f" (x *. 1e6) in
      Table.add_row t
        [
          impl.Registry.name;
          us s.Latency.mean;
          us s.Latency.p50;
          us s.Latency.p99;
          us s.Latency.p999;
          us s.Latency.max;
        ])
    impls;
  print_string (Table.render t);
  print_newline ()

let names_term =
  Arg.(value & pos_all string [] & info [] ~docv:"QUEUE"
         ~doc:"Queues to measure (default: a representative five).")

let threads_term =
  Arg.(value & opt int 8 & info [ "threads"; "t" ] ~docv:"N" ~doc:"Domains.")

let ops_term =
  Arg.(value & opt int 20_000 & info [ "ops" ] ~docv:"N"
         ~doc:"Operations per domain.")

let cmd =
  let doc = "Per-operation latency percentiles under preemption" in
  Cmd.v (Cmd.info "latency" ~doc) Term.(const run $ names_term $ threads_term $ ops_term)

let () = exit (Cmd.eval cmd)
