(* Space-consumption experiments backing the paper's adaptivity claims
   (§1/§4/§5): Algorithm 2's tag-variable registry and the MS queues'
   auxiliary structures must track the *high-water mark of simultaneous
   threads*, not operation counts; and Herlihy–Wing's dequeue cost grows
   with completed enqueues (§2's criticism), unlike the circular arrays. *)

open Cmdliner
module Q2 = Nbq_core.Evequoz_cas
module Hw = Nbq_baselines.Herlihy_wing
module Table = Nbq_harness.Table

let run_wave ~threads ~ops f =
  let barrier = Nbq_primitives.Barrier.create ~parties:threads in
  let domains =
    List.init threads (fun d ->
        Domain.spawn (fun () ->
            Nbq_primitives.Barrier.await barrier;
            f ~domain:d ~ops))
  in
  List.iter Domain.join domains

let adaptivity_table ~ops =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Space adaptivity: auxiliary structures after %d ops/thread \
            (bound must track threads, not ops)"
           ops)
      ~columns:[ "threads"; "evequoz-cas tagvars"; "ms-hp records"; "ms-hp nodes"; "lms fixups" ]
  in
  List.iter
    (fun threads ->
      (* Algorithm 2: tag variables ever created. *)
      let q2 = Q2.create ~capacity:(max 16 (threads * 4)) in
      run_wave ~threads ~ops (fun ~domain:_ ~ops ->
          for i = 1 to ops do
            ignore (Q2.try_enqueue q2 i);
            ignore (Q2.try_dequeue q2)
          done;
          Q2.deregister_domain q2);
      (* MS-HP: hazard records and distinct nodes allocated. *)
      let mshp = Nbq_baselines.Ms_hazard.create () in
      run_wave ~threads ~ops (fun ~domain:_ ~ops ->
          for i = 1 to ops do
            Nbq_baselines.Ms_hazard.enqueue mshp i;
            ignore (Nbq_baselines.Ms_hazard.try_dequeue mshp)
          done);
      let hp_records =
        Nbq_reclaim.Hazard_pointer.participants
          (Nbq_baselines.Ms_hazard.hp_manager mshp)
      in
      let hp_nodes =
        Nbq_baselines.Ms_node.allocated (Nbq_baselines.Ms_hazard.allocator mshp)
      in
      (* LMS: how often the optimism failed. *)
      let lms = Nbq_baselines.Ladan_mozes_shavit.create () in
      run_wave ~threads ~ops (fun ~domain:_ ~ops ->
          for i = 1 to ops do
            Nbq_baselines.Ladan_mozes_shavit.enqueue lms i;
            ignore (Nbq_baselines.Ladan_mozes_shavit.try_dequeue lms)
          done);
      Table.add_row t
        [
          string_of_int threads;
          string_of_int (Q2.registry_size q2);
          string_of_int hp_records;
          string_of_int hp_nodes;
          string_of_int (Nbq_baselines.Ladan_mozes_shavit.fix_list_runs lms);
        ])
    [ 1; 2; 4; 8 ];
  print_string (Table.render t);
  print_newline ()

let scan_cost_table () =
  let t =
    Table.create
      ~title:
        "Herlihy-Wing dequeue cost grows with completed enqueues (paper §2) \
         — vs the flat circular array"
      ~columns:
        [ "completed enqueues"; "hw us/op-pair"; "evequoz-cas us/op-pair" ]
  in
  let pairs = 2_000 in
  List.iter
    (fun history ->
      (* Herlihy–Wing with [history] prior completed enqueues. *)
      let hw = Hw.create () in
      for i = 1 to history do
        Hw.enqueue hw i;
        ignore (Hw.try_dequeue hw)
      done;
      let t0 = Unix.gettimeofday () in
      for i = 1 to pairs do
        Hw.enqueue hw i;
        ignore (Hw.try_dequeue hw)
      done;
      let hw_us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int pairs in
      (* The circular array is oblivious to history. *)
      let q2 = Q2.create ~capacity:16 in
      for i = 1 to history do
        ignore (Q2.try_enqueue q2 i);
        ignore (Q2.try_dequeue q2)
      done;
      let t0 = Unix.gettimeofday () in
      for i = 1 to pairs do
        ignore (Q2.try_enqueue q2 i);
        ignore (Q2.try_dequeue q2)
      done;
      let q2_us = (Unix.gettimeofday () -. t0) *. 1e6 /. float_of_int pairs in
      Table.add_row t
        [
          string_of_int history;
          Printf.sprintf "%.3f" hw_us;
          Printf.sprintf "%.3f" q2_us;
        ])
    [ 0; 1_000; 4_000; 16_000; 64_000 ];
  print_string (Table.render t);
  print_newline ()

let run ops =
  adaptivity_table ~ops;
  scan_cost_table ()

let ops_term =
  Arg.(value & opt int 5_000 & info [ "ops" ] ~docv:"N"
         ~doc:"Operations per thread in the adaptivity waves.")

let cmd =
  let doc = "Space-adaptivity and scan-cost experiments" in
  Cmd.v (Cmd.info "space" ~doc) Term.(const run $ ops_term)

let () = exit (Cmd.eval cmd)
