(* Exhaustive small-scope verification from the command line: explore all
   preemption-bounded interleavings of the standard scenario matrix for
   every simulatable algorithm, print the exploration sizes, and fail
   loudly (with a reproducing schedule) on any linearizability violation.

   `dune exec bin/modelcheck_run.exe -- --bound 5` *)

open Cmdliner
module Sim = Nbq_modelcheck.Sim
module Scenarios = Nbq_modelcheck.Scenarios

let run algorithms bound max_schedules =
  let algorithms =
    match algorithms with [] -> Scenarios.algorithms | names -> names
  in
  let failures = ref 0 in
  Printf.printf "%-14s %-18s %10s %10s %9s %6s\n" "algorithm" "scenario"
    "schedules" "completed" "diverged" "full?";
  List.iter
    (fun algorithm ->
      List.iter
        (fun (name, capacity, prefill, threads) ->
          let scenario =
            Scenarios.build ~algorithm ~capacity ~prefill threads
          in
          match
            (* The step cap prices in blocking algorithms (Herlihy–Wing's
               dequeue waits on a pending store): their divergent spin
               tails are choice-free, so capping them keeps the tree
               finite while every terminating schedule is still checked. *)
            Sim.explore ~preemption_bound:(Some bound) ~max_steps:200
              ~max_schedules scenario
          with
          | stats ->
              Printf.printf "%-14s %-18s %10d %10d %9d %6s\n%!" algorithm name
                stats.Sim.schedules stats.Sim.completed stats.Sim.diverged
                (if stats.Sim.exhaustive then "yes" else "NO")
          | exception Sim.Violation { schedule; message } ->
              incr failures;
              Printf.printf
                "%-14s %-18s VIOLATION\n  schedule: [%s]\n  %s\n%!" algorithm
                name
                (String.concat ";" (List.map string_of_int schedule))
                message)
        Scenarios.standard_matrix)
    algorithms;
  if !failures > 0 then exit 1

let algorithms_term =
  let doc = "Algorithms to check (default: all simulatable ones)." in
  Arg.(value & pos_all string [] & info [] ~docv:"ALGO" ~doc)

let bound_term =
  let doc = "Preemption bound (CHESS-style); coverage is complete for all \
             schedules with at most this many preemptions." in
  Arg.(value & opt int 4 & info [ "bound"; "b" ] ~docv:"N" ~doc)

let max_schedules_term =
  let doc = "Schedule budget per scenario." in
  Arg.(value & opt int 2_000_000 & info [ "max-schedules" ] ~docv:"N" ~doc)

let cmd =
  let doc = "Exhaustively model-check the queues on small scenarios" in
  Cmd.v (Cmd.info "modelcheck_run" ~doc)
    Term.(const run $ algorithms_term $ bound_term $ max_schedules_term)

let () = exit (Cmd.eval cmd)
