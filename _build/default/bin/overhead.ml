(* Experiment E5: the paper's §6 single-thread overhead measurement.

   One thread, no contention, paper workload; every queue is compared to
   the unsynchronized ring ("without any synchronization").  The paper
   reports: LL/SC array +12%, CAS array +50% (PowerPC) / +90% (AMD). *)

open Cmdliner
open Nbq_harness

let run runs scale csv =
  let workload = Fig_common.workload_of_scale scale in
  let cfg = { Runner.threads = 1; runs; workload; capacity = Some 64 } in
  let impls =
    [
      "seq-ring"; "evequoz-llsc"; "evequoz-cas"; "shann"; "tsigas-zhang";
      "ms-gc"; "ms-hp-sorted"; "ms-hp-unsorted"; "ms-ebr"; "ms-doherty";
      "two-lock"; "lock-ring";
    ]
  in
  let base_mean = ref nan in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Single-thread overhead vs unsynchronized ring  [%d iterations, \
            mean of %d runs]"
           workload.Workload.iterations runs)
      ~columns:[ "queue"; "seconds"; "overhead" ]
  in
  List.iter
    (fun name ->
      let m = Runner.measure (Registry.find name) cfg in
      let mean = m.Runner.summary.Stats.mean in
      if name = "seq-ring" then base_mean := mean;
      let overhead =
        if name = "seq-ring" then "(base)"
        else Printf.sprintf "+%.0f%%" (((mean /. !base_mean) -. 1.0) *. 100.0)
      in
      Table.add_row t [ name; Table.cell_float mean; overhead ])
    impls;
  Fig_common.emit ~csv t

let cmd =
  let doc = "Reproduce the paper's single-thread overhead experiment" in
  Cmd.v (Cmd.info "overhead" ~doc)
    Term.(const run $ Fig_common.runs_term $ Fig_common.scale_term
          $ Fig_common.csv_term)

let () = exit (Cmd.eval cmd)
