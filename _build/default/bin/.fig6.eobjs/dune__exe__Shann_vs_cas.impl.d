bin/shann_vs_cas.ml: Cmd Cmdliner Fig_common List Nbq_harness Printf Runner Stats Table Term Workload
