bin/modelcheck_run.ml: Arg Cmd Cmdliner List Nbq_modelcheck Printf String Term
