bin/modelcheck_run.mli:
