bin/ablation.mli:
