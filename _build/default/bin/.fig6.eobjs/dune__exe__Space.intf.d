bin/space.mli:
