bin/stress.ml: Arg Cmd Cmdliner List Nbq_harness Nbq_lincheck Option Printf Registry Term
