bin/shann_vs_cas.mli:
