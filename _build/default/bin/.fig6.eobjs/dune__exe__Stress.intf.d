bin/stress.mli:
