bin/ablation.ml: Arg Atomic Cmd Cmdliner Fig_common Float List Nbq_baselines Nbq_core Nbq_harness Nbq_reclaim Printf Registry Runner Stats String Table Term Workload
