bin/overhead.ml: Cmd Cmdliner Fig_common List Nbq_harness Printf Registry Runner Stats Table Term Workload
