bin/latency.mli:
