bin/latency.ml: Arg Cmd Cmdliner Domain Latency List Nbq_harness Nbq_primitives Printf Registry Table Term
