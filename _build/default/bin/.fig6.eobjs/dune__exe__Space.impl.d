bin/space.ml: Arg Cmd Cmdliner Domain List Nbq_baselines Nbq_core Nbq_harness Nbq_primitives Nbq_reclaim Printf Term Unix
