bin/fig6.ml: Arg Cmd Cmdliner Fig_common List Nbq_harness Printf Term
