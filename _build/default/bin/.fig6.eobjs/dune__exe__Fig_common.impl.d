bin/fig_common.ml: Arg Ascii_plot Cmdliner List Nbq_harness Registry Runner Stats Table Workload
