bin/fig6.mli:
