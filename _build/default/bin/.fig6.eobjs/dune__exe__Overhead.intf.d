bin/overhead.mli:
