(* Resource management (one of the paper's motivating uses): a fixed pool
   of expensive resources — think database connections — handed out and
   returned through a bounded lock-free FIFO.

   The FIFO does double duty: it is the free-list AND the fairness
   mechanism (least-recently-returned connection is reused first, which
   spreads load and keeps idle-timeout behaviour predictable).

   Run with:  dune exec examples/resource_pool.exe *)

module Q = Nbq_core.Evequoz_cas

type connection = {
  id : int;
  mutable uses : int; (* mutated only while checked out: single owner *)
}

let () =
  let pool_size = 4 in
  let clients = 8 in
  let requests_per_client = 2_000 in

  let pool : connection Q.t = Q.create ~capacity:pool_size in
  for id = 1 to pool_size do
    assert (Q.try_enqueue pool { id; uses = 0 })
  done;

  let acquire () =
    let rec go () =
      match Q.try_dequeue pool with
      | Some conn -> conn
      | None ->
          (* All connections checked out: wait for a release. *)
          Domain.cpu_relax ();
          go ()
    in
    go ()
  in
  let release conn =
    (* The pool is sized to the resources, so this can only fail
       transiently (a dequeuer mid-operation); never permanently. *)
    while not (Q.try_enqueue pool conn) do
      Domain.cpu_relax ()
    done
  in

  let workers =
    List.init clients (fun _client ->
        Domain.spawn (fun () ->
            for _ = 1 to requests_per_client do
              let conn = acquire () in
              (* Exclusive access while checked out. *)
              conn.uses <- conn.uses + 1;
              release conn
            done))
  in
  List.iter Domain.join workers;

  (* Accounting: every request used exactly one connection. *)
  let drained = List.init pool_size (fun _ -> Option.get (Q.try_dequeue pool)) in
  assert (Q.try_dequeue pool = None);
  let total = List.fold_left (fun acc c -> acc + c.uses) 0 drained in
  List.iter
    (fun c -> Printf.printf "connection %d served %6d requests\n" c.id c.uses)
    (List.sort (fun a b -> compare a.id b.id) drained);
  Printf.printf "total %d (expected %d)\n" total (clients * requests_per_client);
  assert (total = clients * requests_per_client);
  print_endline "resource_pool: ok"
