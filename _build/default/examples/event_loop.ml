(* Event handling (one of the paper's motivating uses): multiple event
   sources feed one dispatcher through a bounded MPSC-style use of the
   MPMC queue.  Bursty producers are absorbed by the buffer; when it
   fills, sources shed lowest-priority events instead of blocking — a
   policy easy to build on the non-blocking try_enqueue.

   Run with:  dune exec examples/event_loop.exe *)

module Q = Nbq_core.Evequoz_llsc

type event =
  | Key of char
  | Tick of int
  | Io of { fd : int; bytes : int }

let () =
  let q : event Q.t = Q.create ~capacity:32 in
  let shed = Atomic.make 0 in
  let producers_done = Atomic.make 0 in

  let send ev =
    if not (Q.try_enqueue q ev) then
      (* Queue full: drop ticks (they are periodic anyway), retry others. *)
      match ev with
      | Tick _ -> ignore (Atomic.fetch_and_add shed 1)
      | Key _ | Io _ ->
          while not (Q.try_enqueue q ev) do
            Domain.cpu_relax ()
          done
  in
  let finished () = ignore (Atomic.fetch_and_add producers_done 1) in

  let keyboard =
    Domain.spawn (fun () ->
        String.iter (fun c -> send (Key c)) "hello queue!";
        finished ())
  in
  let timer =
    Domain.spawn (fun () ->
        for i = 1 to 5_000 do
          send (Tick i)
        done;
        finished ())
  in
  let network =
    Domain.spawn (fun () ->
        for fd = 1 to 500 do
          send (Io { fd; bytes = fd * 3 })
        done;
        finished ())
  in

  (* Dispatcher: single consumer; runs until every source has finished and
     the buffer is drained. *)
  let keys = Buffer.create 16 in
  let ticks = ref 0 and io_bytes = ref 0 in
  let rec dispatch () =
    match Q.try_dequeue q with
    | Some (Key c) ->
        Buffer.add_char keys c;
        dispatch ()
    | Some (Tick _) ->
        incr ticks;
        dispatch ()
    | Some (Io { bytes; _ }) ->
        io_bytes := !io_bytes + bytes;
        dispatch ()
    | None ->
        if Atomic.get producers_done < 3 then begin
          Domain.cpu_relax ();
          dispatch ()
        end
  in
  dispatch ();
  Domain.join keyboard;
  Domain.join timer;
  Domain.join network;

  Printf.printf "keys: %S\n" (Buffer.contents keys);
  Printf.printf "ticks handled: %d, shed under burst: %d (sum %d)\n" !ticks
    (Atomic.get shed)
    (!ticks + Atomic.get shed);
  Printf.printf "io bytes: %d\n" !io_bytes;
  assert (Buffer.contents keys = "hello queue!");
  assert (!ticks + Atomic.get shed = 5_000);
  assert (!io_bytes = 500 * 501 / 2 * 3);
  print_endline "event_loop: ok"
