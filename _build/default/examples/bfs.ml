(* Parallel breadth-first search with the lock-free queue as the shared
   frontier: a small "real algorithm" built on the public API.

   Workers pull vertices from the current frontier queue, mark neighbours
   atomically, and push newly discovered vertices to the next frontier.
   Two queues swap roles level by level — the bounded capacity caps the
   frontier memory and the non-blocking operations keep workers busy
   without a lock around the frontier.

   Run with:  dune exec examples/bfs.exe *)

module Q = Nbq_core.Evequoz_cas

let () =
  (* A deterministic pseudo-random sparse digraph. *)
  let vertices = 20_000 and degree = 4 in
  let neighbour v k = (v * 31 + k * 97 + 17) mod vertices in

  let distance = Array.init vertices (fun _ -> Atomic.make (-1)) in
  let workers = 4 in
  let frontier_cap = vertices in

  let current : int Q.t ref = ref (Q.create ~capacity:frontier_cap) in
  let next : int Q.t ref = ref (Q.create ~capacity:frontier_cap) in

  (* Level-synchronous BFS from vertex 0. *)
  Atomic.set distance.(0) 0;
  assert (Q.try_enqueue !current 0);
  let level = ref 0 and reached = ref 1 in
  let continue_bfs = ref true in
  while !continue_bfs do
    let cur = !current and nxt = !next in
    let found = Atomic.make 0 in
    let domains =
      List.init workers (fun _ ->
          Domain.spawn (fun () ->
              let rec pull () =
                match Q.try_dequeue cur with
                | None -> () (* frontier exhausted for this level *)
                | Some v ->
                    for k = 0 to degree - 1 do
                      let w = neighbour v k in
                      (* Atomically claim w for this level. *)
                      if Atomic.compare_and_set distance.(w) (-1) (!level + 1)
                      then begin
                        ignore (Atomic.fetch_and_add found 1);
                        while not (Q.try_enqueue nxt w) do
                          Domain.cpu_relax ()
                        done
                      end
                    done;
                    pull ()
              in
              pull ()))
    in
    List.iter Domain.join domains;
    reached := !reached + Atomic.get found;
    incr level;
    if Atomic.get found = 0 then continue_bfs := false
    else begin
      (* Swap frontiers; [cur] is empty now. *)
      current := nxt;
      next := cur
    end
  done;

  Printf.printf "bfs: reached %d of %d vertices in %d levels\n" !reached
    vertices !level;
  (* Sanity: every reached vertex has a valid level; level-0 is vertex 0. *)
  let unreached = ref 0 in
  Array.iter (fun d -> if Atomic.get d = -1 then incr unreached) distance;
  Printf.printf "unreached: %d\n" !unreached;
  assert (!reached + !unreached = vertices);
  assert (Atomic.get distance.(0) = 0);
  (* Triangle check: a neighbour's distance is at most one more. *)
  for v = 0 to vertices - 1 do
    let dv = Atomic.get distance.(v) in
    if dv >= 0 then
      for k = 0 to degree - 1 do
        let dw = Atomic.get distance.(neighbour v k) in
        assert (dw >= 0 && dw <= dv + 1)
      done
  done;
  print_endline "bfs: ok"
