examples/quickstart.mli:
