examples/handles.mli:
