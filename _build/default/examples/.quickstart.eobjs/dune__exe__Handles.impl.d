examples/handles.ml: List Nbq_core Printf
