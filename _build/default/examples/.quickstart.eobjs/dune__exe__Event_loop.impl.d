examples/event_loop.ml: Atomic Buffer Domain Nbq_core Printf String
