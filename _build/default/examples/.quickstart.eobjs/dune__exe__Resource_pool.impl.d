examples/resource_pool.ml: Domain List Nbq_core Option Printf
