examples/pipeline.mli:
