examples/bfs.ml: Array Atomic Domain List Nbq_core Printf
