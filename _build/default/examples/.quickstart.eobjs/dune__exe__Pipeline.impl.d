examples/pipeline.ml: Domain List Nbq_core Printf String
