examples/quickstart.ml: Domain List Nbq_core Printf
