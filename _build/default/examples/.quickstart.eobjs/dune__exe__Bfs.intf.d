examples/bfs.mli:
