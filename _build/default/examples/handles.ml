(* The paper's explicit registration API (Algorithm 2): when a domain
   multiplexes many logical threads — a scheduler, an effect-based runtime,
   green threads — each logical thread registers its own tag-variable
   handle, exactly like the paper's Register/Deregister protocol, and the
   registry adapts to the number of *simultaneously registered* logical
   threads, not to the operation count.

   Run with:  dune exec examples/handles.exe *)

module Q = Nbq_core.Evequoz_cas

type fiber = {
  id : int;
  handle : int Q.handle;
  mutable produced : int;
  mutable consumed : int;
}

let () =
  let q : int Q.t = Q.create ~capacity:32 in

  (* A toy round-robin scheduler running 6 logical fibers on this single
     domain; odd fibers produce, even fibers consume. *)
  let fibers =
    List.init 6 (fun id ->
        { id; handle = Q.register q; produced = 0; consumed = 0 })
  in
  Printf.printf "registry after registering 6 fibers: %d tag variables\n"
    (Q.registry_size q);

  let steps = 6_000 in
  for step = 0 to steps - 1 do
    let fiber = List.nth fibers (step mod 6) in
    if fiber.id mod 2 = 1 then begin
      (* producer fiber *)
      if Q.enqueue_with q fiber.handle ((fiber.id * 100_000) + step) then
        fiber.produced <- fiber.produced + 1
    end
    else
      match Q.dequeue_with q fiber.handle with
      | Some _ -> fiber.consumed <- fiber.consumed + 1
      | None -> ()
  done;

  (* Drain what's left with the first fiber's handle. *)
  let f0 = List.hd fibers in
  let rec drain n =
    match Q.dequeue_with q f0.handle with
    | Some _ -> drain (n + 1)
    | None -> n
  in
  let leftover = drain 0 in

  let produced = List.fold_left (fun a f -> a + f.produced) 0 fibers in
  let consumed = List.fold_left (fun a f -> a + f.consumed) 0 fibers in
  List.iter
    (fun f ->
      Printf.printf "fiber %d: produced %4d consumed %4d\n" f.id f.produced
        f.consumed)
    fibers;
  Printf.printf "conservation: produced %d = consumed %d + drained %d\n"
    produced consumed leftover;
  assert (produced = consumed + leftover);

  (* Deregistration returns the tag variables for reuse: a second batch of
     fibers must not grow the registry. *)
  let before = Q.registry_size q in
  List.iter (fun f -> Q.deregister f.handle) fibers;
  let second_batch = List.init 6 (fun _ -> Q.register q) in
  Printf.printf "registry after recycling into a second batch: %d (was %d)\n"
    (Q.registry_size q) before;
  assert (Q.registry_size q = before);
  List.iter Q.deregister second_batch;
  print_endline "handles: ok"
