(* Quickstart: the paper's CAS-based bounded FIFO shared by a producer and
   a consumer domain.

   Run with:  dune exec examples/quickstart.exe *)

module Queue = Nbq_core.Evequoz_cas

let () =
  (* A bounded, lock-free, multi-producer multi-consumer FIFO.  The
     capacity is rounded up to a power of two (here: 8). *)
  let q : string Queue.t = Queue.create ~capacity:8 in

  let producer =
    Domain.spawn (fun () ->
        List.iter
          (fun msg ->
            (* try_enqueue returns false when the queue is full; spin until
               the consumer makes room. *)
            while not (Queue.try_enqueue q msg) do
              Domain.cpu_relax ()
            done)
          [ "the"; "queue"; "preserves"; "fifo"; "order"; "###" ])
  in

  let rec consume () =
    match Queue.try_dequeue q with
    | Some "###" -> ()
    | Some word ->
        Printf.printf "%s " word;
        consume ()
    | None ->
        Domain.cpu_relax ();
        consume ()
  in
  consume ();
  Domain.join producer;
  print_newline ();

  (* Queues are polymorphic; payloads are any OCaml value. *)
  let ints : int Queue.t = Queue.create ~capacity:4 in
  assert (Queue.try_enqueue ints 1);
  assert (Queue.try_enqueue ints 2);
  assert (Queue.try_dequeue ints = Some 1);
  assert (Queue.try_dequeue ints = Some 2);
  assert (Queue.try_dequeue ints = None);
  print_endline "quickstart: ok"
