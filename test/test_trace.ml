(* Tests for the flight-recorder layer (nbq_trace) and its satellites:
   ring wraparound and publish ordering, recorder sampling/full modes,
   span lifecycle across disarm, Chrome trace-event export + validation,
   dump-on-fault through a real torture round, the bench-summary JSON
   trajectory, and the histogram batch-attribution path it reports from. *)

module Ring = Nbq_trace.Ring
module Record = Nbq_trace.Record
module Recorder = Nbq_trace.Recorder
module Export = Nbq_trace.Export
module Histogram = Nbq_obs.Histogram
module Registry = Nbq_harness.Registry
module Runner = Nbq_harness.Runner
module Workload = Nbq_harness.Workload
module Bench_summary = Nbq_harness.Bench_summary
module Stats = Nbq_harness.Stats

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* --- Histogram.record_n: batched attribution ---------------------------- *)

let test_histogram_record_n () =
  let h = Histogram.create () in
  Histogram.record_n h 100 5;
  Histogram.record_n h 100 0;
  Histogram.record_n h 100 (-3);
  let s = Histogram.snapshot h in
  Alcotest.(check int) "five samples, non-positive n ignored" 5
    (Histogram.total s);
  let b = Histogram.bucket_of_ns 100 in
  let in_bucket =
    List.fold_left
      (fun acc (lo, hi, n) ->
        if lo <= 100 && 100 <= hi then acc + n
        else (
          ignore lo;
          ignore hi;
          acc))
      0 (Histogram.nonempty s)
  in
  ignore b;
  Alcotest.(check int) "all five land in the bucket of 100ns" 5 in_bucket

let test_histogram_snapshot_under_concurrent_record () =
  let h = Histogram.create () in
  let per_domain = 20_000 in
  let writers =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Histogram.record h (((d * per_domain) + i) land 1023)
            done))
  in
  (* Reader races the writers: totals observed mid-flight only grow. *)
  let last = ref 0 in
  for _ = 1 to 50 do
    let t = Histogram.total (Histogram.snapshot h) in
    if t < !last then Alcotest.fail "snapshot total went backwards";
    last := t
  done;
  List.iter Domain.join writers;
  Alcotest.(check int) "no lost samples" (3 * per_domain)
    (Histogram.total (Histogram.snapshot h))

(* --- Ring wraparound ---------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Ring.create ~dom:7 ~bits:2 in
  Alcotest.(check int) "capacity" 4 (Ring.capacity r);
  for i = 1 to 10 do
    Ring.write r ~tag:(Record.span_begin_tag Record.Enq) ~ts:i ~span:i ~arg:i
  done;
  Alcotest.(check int) "written counts every record" 10 (Ring.written r);
  let snap = Ring.snapshot r in
  Alcotest.(check int) "retains only capacity" 4 (Array.length snap);
  Array.iteri
    (fun i (rec_ : Ring.record) ->
      Alcotest.(check int)
        (Printf.sprintf "oldest-first slot %d" i)
        (7 + i) rec_.Ring.ts)
    snap;
  let tail = Ring.snapshot ~last:2 r in
  Alcotest.(check int) "last=2 truncates" 2 (Array.length tail);
  Alcotest.(check int) "last=2 keeps the newest" 10 tail.(1).Ring.ts

(* --- Recorder sampling -------------------------------------------------- *)

let count_kind pred tr =
  List.fold_left
    (fun acc ring ->
      Array.fold_left
        (fun acc (r : Ring.record) ->
          match Record.kind_of_tag r.Ring.tag with
          | Some k when pred k -> acc + 1
          | _ -> acc)
        acc (Ring.snapshot ring))
    0 (Recorder.rings tr)

let is_begin = function Record.Span_begin _ -> true | _ -> false
let is_end = function Record.Span_end _ -> true | _ -> false

let test_recorder_full_mode_records_every_span () =
  let tr = Recorder.create ~sample:1 () in
  Recorder.arm tr;
  for i = 1 to 100 do
    Recorder.span_begin tr Record.Enq ~arg:i;
    Recorder.event tr Nbq_obs.Event.Sc_fail;
    Recorder.span_end tr Record.Enq ~arg:1
  done;
  Recorder.disarm tr;
  Alcotest.(check int) "100 begins" 100 (count_kind is_begin tr);
  Alcotest.(check int) "100 ends" 100 (count_kind is_end tr);
  Alcotest.(check int) "events recorded in full mode" 100
    (count_kind (function Record.Obs _ -> true | _ -> false) tr)

let test_recorder_sampling_thins_spans () =
  let tr = Recorder.create ~sample:8 () in
  Recorder.arm tr;
  for _ = 1 to 800 do
    Recorder.span_begin tr Record.Deq ~arg:0;
    Recorder.span_end tr Record.Deq ~arg:1
  done;
  Recorder.disarm tr;
  let begins = count_kind is_begin tr in
  Alcotest.(check int) "1-in-8 sampling" 100 begins;
  Alcotest.(check int) "ends pair with begins" begins (count_kind is_end tr)

let test_recorder_disarmed_records_nothing () =
  let tr = Recorder.create ~sample:1 () in
  Recorder.span_begin tr Record.Enq ~arg:0;
  Recorder.event tr Nbq_obs.Event.Sc_fail;
  Recorder.span_end tr Record.Enq ~arg:1;
  Alcotest.(check int) "no records while disarmed" 0
    (List.fold_left
       (fun acc r -> acc + Ring.written r)
       0 (Recorder.rings tr))

let test_recorder_span_closes_across_disarm () =
  let tr = Recorder.create ~sample:1 () in
  Recorder.arm tr;
  Recorder.span_begin tr Record.Enq ~arg:0;
  Recorder.disarm tr;
  (* The operation finishes after disarm: its end must still be written so
     the exporter can pair the span. *)
  Recorder.span_end tr Record.Enq ~arg:1;
  Alcotest.(check int) "begin recorded" 1 (count_kind is_begin tr);
  Alcotest.(check int) "end recorded post-disarm" 1 (count_kind is_end tr)

(* --- Chrome export + validation ---------------------------------------- *)

let test_export_chrome_validates () =
  let tr = Recorder.create ~sample:1 () in
  let impl = Registry.find "evequoz-cas" in
  let workload = Workload.scaled_config ~scale:0.002 in
  let cfg = { Runner.threads = 2; runs = 1; workload; capacity = None } in
  Recorder.arm tr;
  ignore (Runner.measure ~tracer:tr impl cfg : Runner.measurement);
  Recorder.disarm tr;
  let path = tmp "nbq_test_trace.json" in
  Export.write_chrome ~process_name:"test" ~path tr;
  (match Export.validate_chrome_file path with
  | Error e -> Alcotest.fail ("validation rejected our own export: " ^ e)
  | Ok s ->
      Alcotest.(check bool)
        "one track per worker domain" true
        (s.Export.tracks >= 2);
      Alcotest.(check bool) "has spans" true (s.Export.spans > 0));
  Sys.remove path

let test_export_validation_rejects_garbage () =
  let path = tmp "nbq_test_trace_bad.json" in
  let oc = open_out path in
  output_string oc "{\"traceEvents\": 42}";
  close_out oc;
  (match Export.validate_chrome_file path with
  | Ok _ -> Alcotest.fail "validator accepted garbage"
  | Error _ -> ());
  Sys.remove path

(* --- Dump on fault ------------------------------------------------------ *)

let test_dump_on_fault () =
  let t =
    match Nbq_fault.Torture.find "evequoz-cas" with
    | Some t -> t
    | None -> Alcotest.fail "torture target evequoz-cas missing"
  in
  let tracer = Recorder.create ~sample:1 () in
  let o =
    Nbq_fault.Torture.run ~workers:2 ~target_ops:200 ~trigger_after:20
      ~timeout:20.0 ~tracer t ~point:Nbq_primitives.Fault.Sc_attempt
      ~action:Nbq_fault.Injector.Stall
  in
  Alcotest.(check bool) "round triggered" true o.Nbq_fault.Torture.triggered;
  let path = tmp "nbq_test_dump.txt" in
  let oc = open_out path in
  Export.dump tracer oc;
  close_out oc;
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "dump has per-domain sections" true
    (contains "--- trace: domain");
  Alcotest.(check bool) "dump shows the armed fault window" true
    (contains "sc-attempt")

(* --- Bench summary ------------------------------------------------------ *)

let row ~queue ~domains ~mops =
  {
    Bench_summary.bench = "test";
    queue;
    variant = "v";
    domains;
    runs = 1;
    items = 1000;
    mitems_per_s = mops;
    p50_ns = 10.0;
    p99_ns = 20.0;
    p999_ns = nan;
  }

let test_bench_summary_roundtrip () =
  let path = tmp "nbq_test_summary.json" in
  if Sys.file_exists path then Sys.remove path;
  let n = Bench_summary.write ~path [ row ~queue:"a" ~domains:1 ~mops:1.5 ] in
  Alcotest.(check int) "one row" 1 n;
  let n =
    Bench_summary.write ~path
      [ row ~queue:"a" ~domains:1 ~mops:2.5; row ~queue:"b" ~domains:4 ~mops:3.0 ]
  in
  Alcotest.(check int) "merge supersedes same key" 2 n;
  (match Bench_summary.read path with
  | Error e -> Alcotest.fail e
  | Ok rows ->
      Alcotest.(check int) "read back both" 2 (List.length rows);
      let a =
        List.find (fun r -> r.Bench_summary.queue = "a") rows
      in
      Alcotest.(check (float 1e-9)) "newest wins" 2.5
        a.Bench_summary.mitems_per_s;
      Alcotest.(check bool) "nan survives as nan" true
        (Float.is_nan a.Bench_summary.p999_ns));
  Sys.remove path

let test_bench_summary_within_batch_dedup () =
  let path = tmp "nbq_test_summary2.json" in
  if Sys.file_exists path then Sys.remove path;
  let n =
    Bench_summary.write ~path
      [ row ~queue:"a" ~domains:1 ~mops:1.0; row ~queue:"a" ~domains:1 ~mops:9.0 ]
  in
  Alcotest.(check int) "same-key rows collapse" 1 n;
  (match Bench_summary.read path with
  | Error e -> Alcotest.fail e
  | Ok [ r ] ->
      Alcotest.(check (float 1e-9)) "last row of the batch wins" 9.0
        r.Bench_summary.mitems_per_s
  | Ok _ -> Alcotest.fail "expected exactly one row");
  Sys.remove path

(* --- Stats p999 --------------------------------------------------------- *)

let test_stats_p999 () =
  let xs = List.init 1000 (fun i -> float_of_int (i + 1)) in
  let s = Stats.summarize xs in
  Alcotest.(check bool) "p999 at the tail" true (s.Stats.p999 >= s.Stats.p99);
  Alcotest.(check bool) "p999 below max" true (s.Stats.p999 <= 1000.0);
  Alcotest.(check bool) "p999 near the 999th sample" true
    (s.Stats.p999 >= 998.0)

let () =
  Alcotest.run "trace"
    [
      ( "histogram",
        [
          Alcotest.test_case "record_n attribution" `Quick
            test_histogram_record_n;
          Alcotest.test_case "snapshot under concurrent record" `Quick
            test_histogram_snapshot_under_concurrent_record;
        ] );
      ( "ring",
        [ Alcotest.test_case "wraparound" `Quick test_ring_wraparound ] );
      ( "recorder",
        [
          Alcotest.test_case "full mode records every span" `Quick
            test_recorder_full_mode_records_every_span;
          Alcotest.test_case "sampling thins spans" `Quick
            test_recorder_sampling_thins_spans;
          Alcotest.test_case "disarmed records nothing" `Quick
            test_recorder_disarmed_records_nothing;
          Alcotest.test_case "span closes across disarm" `Quick
            test_recorder_span_closes_across_disarm;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json validates" `Quick
            test_export_chrome_validates;
          Alcotest.test_case "validator rejects garbage" `Quick
            test_export_validation_rejects_garbage;
        ] );
      ( "fault",
        [ Alcotest.test_case "dump on fault" `Quick test_dump_on_fault ] );
      ( "bench-summary",
        [
          Alcotest.test_case "json roundtrip + merge" `Quick
            test_bench_summary_roundtrip;
          Alcotest.test_case "within-batch dedup" `Quick
            test_bench_summary_within_batch_dedup;
        ] );
      ( "stats",
        [ Alcotest.test_case "p999" `Quick test_stats_p999 ] );
    ]
