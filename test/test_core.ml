(* Tests specific to the paper's two algorithms: monotonic indices, the
   explicit handle API, space adaptivity of the tag-variable registry, and
   the weak-cell variant's configuration. *)

module Q1 = Nbq_core.Evequoz_llsc
module Q2 = Nbq_core.Evequoz_cas
module Q3 = Nbq_core.Evequoz_bw
module Intf = Nbq_core.Queue_intf

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* --- Indices (Algorithm 1) --- *)

let llsc_indices_monotonic () =
  let q = Q1.create ~capacity:4 in
  Alcotest.(check int) "head 0" 0 (Q1.head_index q);
  Alcotest.(check int) "tail 0" 0 (Q1.tail_index q);
  for i = 1 to 10 do
    ignore (Q1.try_enqueue q i);
    ignore (Q1.try_dequeue q)
  done;
  (* Counters never wrap back even though the 4-slot ring cycled 2.5×
     (this is precisely the index-ABA defence of paper Fig. 1). *)
  Alcotest.(check int) "tail counted every enqueue" 10 (Q1.tail_index q);
  Alcotest.(check int) "head counted every dequeue" 10 (Q1.head_index q)

let llsc_indices_stop_on_rejection () =
  let q = Q1.create ~capacity:2 in
  ignore (Q1.try_enqueue q 1);
  ignore (Q1.try_enqueue q 2);
  ignore (Q1.try_enqueue q 3);
  (* rejected *)
  Alcotest.(check int) "rejected enqueue leaves tail" 2 (Q1.tail_index q);
  ignore (Q1.try_dequeue q);
  ignore (Q1.try_dequeue q);
  ignore (Q1.try_dequeue q);
  (* empty *)
  Alcotest.(check int) "empty dequeue leaves head" 2 (Q1.head_index q)

let cas_indices_monotonic () =
  let q = Q2.create ~capacity:4 in
  for i = 1 to 12 do
    ignore (Q2.try_enqueue q i);
    ignore (Q2.try_dequeue q)
  done;
  Alcotest.(check int) "tail" 12 (Q2.tail_index q);
  Alcotest.(check int) "head" 12 (Q2.head_index q)

(* --- Capacity rounding --- *)

let capacity_rounding () =
  List.iter
    (fun (requested, expect) ->
      let q = Q1.create ~capacity:requested in
      Alcotest.(check int)
        (Printf.sprintf "llsc cap %d -> %d" requested expect)
        expect (Q1.capacity q);
      let q2 = Q2.create ~capacity:requested in
      Alcotest.(check int)
        (Printf.sprintf "cas cap %d -> %d" requested expect)
        expect (Q2.capacity q2))
    [ (1, 2); (2, 2); (3, 4); (4, 4); (5, 8); (100, 128) ]

let capacity_invalid () =
  match Q1.create ~capacity:0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- Explicit handles (Algorithm 2) --- *)

let cas_explicit_handles () =
  let q = Q2.create ~capacity:8 in
  let h = Q2.register q in
  Alcotest.(check bool) "enqueue via handle" true (Q2.enqueue_with q h 1);
  Alcotest.(check bool) "another" true (Q2.enqueue_with q h 2);
  Alcotest.(check (option int)) "dequeue via handle" (Some 1) (Q2.dequeue_with q h);
  Alcotest.(check (option int)) "order kept" (Some 2) (Q2.dequeue_with q h);
  Alcotest.(check (option int)) "empty" None (Q2.dequeue_with q h);
  Q2.deregister h

let cas_handle_recycling () =
  let q = Q2.create ~capacity:8 in
  let h1 = Q2.register q in
  ignore (Q2.enqueue_with q h1 1);
  Q2.deregister h1;
  let before = Q2.registry_size q in
  (* Sequential register/deregister cycles must reuse the same variable. *)
  for _ = 1 to 50 do
    let h = Q2.register q in
    ignore (Q2.enqueue_with q h 2);
    ignore (Q2.dequeue_with q h);
    Q2.deregister h
  done;
  Alcotest.(check int) "registry did not grow" before (Q2.registry_size q)

let cas_registry_space_adaptive () =
  (* The registry grows to the high-water mark of simultaneous threads,
     not with the number of operations (paper's space-adaptivity claim). *)
  let q = Q2.create ~capacity:64 in
  let domains = 4 and per_domain = 2_000 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              ignore (Q2.try_enqueue q ((d * per_domain) + i));
              ignore (Q2.try_dequeue q)
            done;
            Q2.deregister_domain q))
  in
  List.iter Domain.join workers;
  let size = Q2.registry_size q in
  Alcotest.(check bool)
    (Printf.sprintf "registry size %d bounded by concurrency" size)
    true
    (size >= 1 && size <= domains);
  (* A second wave of domains must reuse the released variables. *)
  let wave2 =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            ignore (Q2.try_enqueue q 1);
            ignore (Q2.try_dequeue q);
            Q2.deregister_domain q))
  in
  List.iter Domain.join wave2;
  Alcotest.(check bool) "no growth on second wave" true
    (Q2.registry_size q <= size + domains)

let cas_deregister_domain_idempotent () =
  let q = Q2.create ~capacity:8 in
  ignore (Q2.try_enqueue q 1);
  Q2.deregister_domain q;
  Q2.deregister_domain q;
  (* no-op *)
  Alcotest.(check (option int)) "still usable" (Some 1) (Q2.try_dequeue q)

let cas_interleaved_handles_one_thread () =
  (* Two logical threads multiplexed on one domain via explicit handles. *)
  let q = Q2.create ~capacity:8 in
  let ha = Q2.register q and hb = Q2.register q in
  ignore (Q2.enqueue_with q ha 1);
  ignore (Q2.enqueue_with q hb 2);
  Alcotest.(check (option int)) "a sees 1" (Some 1) (Q2.dequeue_with q hb);
  Alcotest.(check (option int)) "b sees 2" (Some 2) (Q2.dequeue_with q ha);
  Q2.deregister ha;
  Q2.deregister hb

(* --- Peek (extension feature) --- *)

let peek_sequential_llsc () =
  let q = Q1.create ~capacity:4 in
  Alcotest.(check (option int)) "empty peek" None (Q1.try_peek q);
  ignore (Q1.try_enqueue q 1);
  ignore (Q1.try_enqueue q 2);
  Alcotest.(check (option int)) "front" (Some 1) (Q1.try_peek q);
  Alcotest.(check (option int)) "peek does not remove" (Some 1) (Q1.try_peek q);
  Alcotest.(check int) "length untouched" 2 (Q1.length q);
  Alcotest.(check (option int)) "dequeue still 1" (Some 1) (Q1.try_dequeue q);
  Alcotest.(check (option int)) "front now 2" (Some 2) (Q1.try_peek q);
  ignore (Q1.try_dequeue q);
  Alcotest.(check (option int)) "empty again" None (Q1.try_peek q)

let peek_sequential_cas () =
  let q = Q2.create ~capacity:4 in
  Alcotest.(check (option int)) "empty peek" None (Q2.try_peek q);
  ignore (Q2.try_enqueue q 1);
  ignore (Q2.try_enqueue q 2);
  Alcotest.(check (option int)) "front" (Some 1) (Q2.try_peek q);
  Alcotest.(check (option int)) "peek does not remove" (Some 1) (Q2.try_peek q);
  Alcotest.(check (option int)) "dequeue still 1" (Some 1) (Q2.try_dequeue q);
  let h = Q2.register q in
  Alcotest.(check (option int)) "peek via handle" (Some 2) (Q2.peek_with q h);
  Q2.deregister h;
  Alcotest.(check (option int)) "peek left the item" (Some 2) (Q2.try_dequeue q)

let peek_concurrent_monotone () =
  (* One producer of an ascending sequence, one peeker: peeked values must
     be non-decreasing (the front only moves forward). *)
  let q = Q1.create ~capacity:8 in
  let stop = Atomic.make false in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to 5_000 do
          while not (Q1.try_enqueue q i) do
            ignore (Q1.try_dequeue q)
          done
        done;
        Atomic.set stop true)
  in
  let last = ref 0 in
  let ok = ref true in
  while not (Atomic.get stop) do
    match Q1.try_peek q with
    | Some v ->
        if v < !last then ok := false;
        last := v
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check bool) "peeks non-decreasing" true !ok

(* --- Functor / weak cells --- *)

let weak_queue_correct_under_failures () =
  Atomic.set Q1.On_weak_cells.failure_rate 0.3;
  let q = Q1.On_weak_cells.create ~capacity:8 in
  for round = 0 to 99 do
    Alcotest.(check bool) "enq" true (Q1.On_weak_cells.try_enqueue q round);
    Alcotest.(check (option int)) "deq" (Some round)
      (Q1.On_weak_cells.try_dequeue q)
  done;
  Atomic.set Q1.On_weak_cells.failure_rate 0.05

let weak_queue_concurrent () =
  Atomic.set Q1.On_weak_cells.failure_rate 0.2;
  let q = Q1.On_weak_cells.create ~capacity:64 in
  let domains = 4 and per_domain = 1_000 in
  let consumed = Atomic.make 0 in
  let workers =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              while not (Q1.On_weak_cells.try_enqueue q ((d * per_domain) + i)) do
                Domain.cpu_relax ()
              done;
              let rec drain () =
                match Q1.On_weak_cells.try_dequeue q with
                | Some _ -> ignore (Atomic.fetch_and_add consumed 1)
                | None ->
                    Domain.cpu_relax ();
                    drain ()
              in
              drain ()
            done))
  in
  List.iter Domain.join workers;
  Atomic.set Q1.On_weak_cells.failure_rate 0.05;
  Alcotest.(check int) "all transferred" (domains * per_domain)
    (Atomic.get consumed);
  Alcotest.(check int) "drained" 0 (Q1.On_weak_cells.length q)

(* --- Blocking wrapper --- *)

module Q1_conc = Intf.Make (Intf.Capability.Bounded (Q1))
module Q1_blocking = Intf.Blocking (Q1_conc)

let blocking_wrapper_ping_pong () =
  let q = Q1_blocking.create ~capacity:2 in
  let n = 2_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Q1_blocking.enqueue q i
        done)
  in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Q1_blocking.dequeue q
  done;
  Domain.join producer;
  Alcotest.(check int) "all items through a 2-slot ring" (n * (n + 1) / 2) !sum

let round_capacity_unit () =
  Alcotest.(check int) "1 -> 2" 2 (Intf.round_capacity 1);
  Alcotest.(check int) "7 -> 8" 8 (Intf.round_capacity 7);
  Alcotest.(check int) "8 -> 8" 8 (Intf.round_capacity 8);
  Alcotest.(check int) "9 -> 16" 16 (Intf.round_capacity 9);
  match Intf.round_capacity 0 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* Regression: capacities above the largest representable power of two used
   to make the doubling loop overflow into negatives and spin forever. *)
let round_capacity_clamp () =
  Alcotest.(check int) "max power of two accepted" Intf.max_capacity
    (Intf.round_capacity Intf.max_capacity);
  Alcotest.(check int) "rounds up to the max" Intf.max_capacity
    (Intf.round_capacity (Intf.max_capacity - 1));
  (match Intf.round_capacity (Intf.max_capacity + 1) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  match Intf.round_capacity max_int with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- Graceful degradation: deadlines and retry budgets --- *)

(* A full 2-slot blocking queue: the raw queue is pre-filled through the
   [queue] view, so the blocking operations below must actually wait. *)
let full_blocking_pair () =
  let q = Q1_blocking.create ~capacity:2 in
  ignore (Q1_conc.try_enqueue (Q1_blocking.queue q) 1);
  ignore (Q1_conc.try_enqueue (Q1_blocking.queue q) 2);
  q

let blocking_deadline_timeout () =
  let q = full_blocking_pair () in
  (match
     Q1_blocking.enqueue_until q ~deadline:(Unix.gettimeofday () +. 0.05) 3
   with
  | `Timeout -> ()
  | `Ok -> Alcotest.fail "full queue must time out");
  let empty = Q1_blocking.create ~capacity:2 in
  match
    Q1_blocking.dequeue_until empty ~deadline:(Unix.gettimeofday () +. 0.05)
  with
  | `Timeout -> ()
  | `Ok _ -> Alcotest.fail "empty queue must time out"

let blocking_deadline_past_still_tries () =
  (* A deadline already in the past still makes one attempt (and never
     parks), so an uncontended operation never spuriously times out. *)
  let q = Q1_blocking.create ~capacity:2 in
  (match Q1_blocking.enqueue_until q ~deadline:0.0 7 with
  | `Ok -> ()
  | `Timeout -> Alcotest.fail "uncontended enqueue must succeed");
  match Q1_blocking.dequeue_until q ~deadline:0.0 with
  | `Ok 7 -> ()
  | `Ok _ | `Timeout -> Alcotest.fail "the item must come back"

let blocking_budget () =
  let q = full_blocking_pair () in
  (match Q1_blocking.enqueue_budget q ~retries:3 9 with
  | `Timeout -> ()
  | `Ok -> Alcotest.fail "full queue must exhaust its budget");
  (match Q1_blocking.dequeue_budget q ~retries:0 with
  | `Ok 1 -> ()
  | `Ok _ | `Timeout -> Alcotest.fail "first attempt must dequeue 1");
  (match Q1_blocking.enqueue_budget q ~retries:0 9 with
  | `Ok -> ()
  | `Timeout -> Alcotest.fail "freed slot must accept without retries");
  let empty = Q1_blocking.create ~capacity:2 in
  match Q1_blocking.dequeue_budget empty ~retries:2 with
  | `Timeout -> ()
  | `Ok _ -> Alcotest.fail "empty queue must exhaust its budget"

let blocking_deadline_cross_domain () =
  let q = full_blocking_pair () in
  let consumer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.01;
        Q1_blocking.dequeue q)
  in
  (match
     Q1_blocking.enqueue_until q ~deadline:(Unix.gettimeofday () +. 10.0) 3
   with
  | `Ok -> ()
  | `Timeout -> Alcotest.fail "slot was freed well before the deadline");
  ignore (Domain.join consumer)

(* --- Amortized batch runs (Evequoz_cas.Batched, DESIGN.md §8) ---------
   The default rows keep loop-of-singles batches; these tests pin the
   opt-in fast runs directly: FIFO through whole runs, wraparound,
   partial accept at capacity, mixing with single ops, and conservation
   plus per-producer order under concurrency. *)

module QB = Q2.Batched

let batch_fifo_roundtrip () =
  let q : int QB.t = Q2.create ~capacity:16 in
  let n = QB.try_enqueue_batch q (Array.init 10 (fun i -> i)) in
  Alcotest.(check int) "all accepted" 10 n;
  Alcotest.(check (list int)) "run in order" [ 0; 1; 2; 3; 4 ]
    (QB.try_dequeue_batch q 5);
  Alcotest.(check (list int)) "remainder in order" [ 5; 6; 7; 8; 9 ]
    (QB.try_dequeue_batch q 99);
  Alcotest.(check (list int)) "empty run" [] (QB.try_dequeue_batch q 4)

let batch_wraparound () =
  let q : int QB.t = Q2.create ~capacity:8 in
  let next = ref 0 in
  (* 25 revolutions of runs sized 5 against capacity 8: every run crosses
     the index wrap repeatedly and the published counters stay ahead of
     the slots they cover. *)
  for _ = 1 to 40 do
    let sent = QB.try_enqueue_batch q (Array.init 5 (fun i -> !next + i)) in
    Alcotest.(check int) "batch fits" 5 sent;
    next := !next + 5;
    let got = QB.try_dequeue_batch q 5 in
    Alcotest.(check (list int)) "drained in order"
      (List.init 5 (fun i -> !next - 5 + i))
      got
  done

let batch_partial_accept () =
  let q : int QB.t = Q2.create ~capacity:8 in
  Alcotest.(check int) "prefix accepted" 8
    (QB.try_enqueue_batch q (Array.init 12 (fun i -> i)));
  Alcotest.(check int) "full rejects rest" 0
    (QB.try_enqueue_batch q [| 99 |]);
  Alcotest.(check (list int)) "accepted prefix only, in order"
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (QB.try_dequeue_batch q 12);
  (* Short queue: a dequeue run returns what is there. *)
  Alcotest.(check int) "three more" 3 (QB.try_enqueue_batch q [| 20; 21; 22 |]);
  Alcotest.(check (list int)) "short run" [ 20; 21; 22 ]
    (QB.try_dequeue_batch q 12)

let batch_mixed_with_singles () =
  let q : int QB.t = Q2.create ~capacity:16 in
  assert (Q2.try_enqueue q 0);
  Alcotest.(check int) "run after single" 3
    (QB.try_enqueue_batch q [| 1; 2; 3 |]);
  assert (Q2.try_enqueue q 4);
  Alcotest.(check (option int)) "single sees run items" (Some 0)
    (Q2.try_dequeue q);
  Alcotest.(check (list int)) "run sees single items" [ 1; 2; 3; 4 ]
    (QB.try_dequeue_batch q 4);
  Alcotest.(check (option int)) "drained" None (Q2.try_dequeue q)

let batch_concurrent_conservation () =
  let producers = 2 and consumers = 2 in
  let per_producer = 3_000 in
  let q : int QB.t = Q2.create ~capacity:64 in
  let consumed = Array.make consumers [] in
  let prods =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            let sent = ref 0 in
            while !sent < per_producer do
              let base = (p * 1_000_000) + !sent in
              let k = min 7 (per_producer - !sent) in
              let n =
                QB.try_enqueue_batch q (Array.init k (fun i -> base + i))
              in
              sent := !sent + n;
              if n < k then Domain.cpu_relax ()
            done))
  in
  let total = producers * per_producer in
  let taken = Atomic.make 0 in
  let cons =
    List.init consumers (fun c ->
        Domain.spawn (fun () ->
            let mine = ref [] in
            let continue = ref true in
            while !continue do
              match QB.try_dequeue_batch q 7 with
              | [] ->
                  if Atomic.get taken >= total then continue := false
                  else Domain.cpu_relax ()
              | xs ->
                  ignore (Atomic.fetch_and_add taken (List.length xs));
                  mine := List.rev_append xs !mine
            done;
            consumed.(c) <- List.rev !mine))
  in
  List.iter Domain.join prods;
  List.iter Domain.join cons;
  let all = Array.to_list consumed |> List.concat in
  Alcotest.(check int) "conserved" total (List.length all);
  Alcotest.(check int) "no duplicates" total
    (List.length (List.sort_uniq compare all));
  (* Per-producer order: within one consumer's stream, each producer's
     items must arrive in increasing order (single FIFO, so this also
     holds across batch boundaries). *)
  Array.iter
    (fun stream ->
      let last = Array.make producers (-1) in
      List.iter
        (fun v ->
          let p = v / 1_000_000 in
          Alcotest.(check bool) "per-producer order in stream" true
            (v > last.(p));
          last.(p) <- v)
        stream)
    consumed

(* --- Blelloch–Wei backend (constant-time LL/SC over the same ring) ----
   The behavioural surface mirrors Evequoz_cas; what is new and pinned
   here is the hot-path contract: zero per-operation registry traffic
   (the tag_reregister probe NEVER fires), handle records recycling
   through the amortized-only registration, and the bounded buffer
   pools. *)

let bw_indices_monotonic () =
  let q = Q3.create ~capacity:4 in
  for i = 1 to 12 do
    ignore (Q3.try_enqueue q i);
    ignore (Q3.try_dequeue q)
  done;
  Alcotest.(check int) "tail" 12 (Q3.tail_index q);
  Alcotest.(check int) "head" 12 (Q3.head_index q)

let bw_peek_sequential () =
  let q = Q3.create ~capacity:4 in
  Alcotest.(check (option int)) "empty peek" None (Q3.try_peek q);
  ignore (Q3.try_enqueue q 1);
  ignore (Q3.try_enqueue q 2);
  Alcotest.(check (option int)) "front" (Some 1) (Q3.try_peek q);
  Alcotest.(check (option int)) "peek does not remove" (Some 1) (Q3.try_peek q);
  Alcotest.(check (option int)) "dequeue still 1" (Some 1) (Q3.try_dequeue q);
  let h = Q3.register q in
  Alcotest.(check (option int)) "peek via handle" (Some 2) (Q3.peek_with q h);
  Q3.deregister h;
  Alcotest.(check (option int)) "peek left the item" (Some 2) (Q3.try_dequeue q)

let bw_handle_recycling () =
  let q = Q3.create ~capacity:8 in
  let h1 = Q3.register q in
  ignore (Q3.enqueue_with q h1 1);
  Q3.deregister h1;
  let before = Q3.registry_size q in
  for _ = 1 to 50 do
    let h = Q3.register q in
    ignore (Q3.enqueue_with q h 2);
    ignore (Q3.dequeue_with q h);
    Q3.deregister h
  done;
  Alcotest.(check int) "registry did not grow" before (Q3.registry_size q)

(* The tentpole acceptance criterion, pinned by a counting probe: across
   thousands of operations on one registered handle, the LL path is hot
   (ll_reserve fires per operation) while the registry stays silent —
   tag_register fires once, tag_reregister exactly zero times. *)
let bw_reregisters = ref 0
let bw_registers = ref 0
let bw_ll_reserves = ref 0

module BwCountProbe = struct
  let ll_reserve () = incr bw_ll_reserves
  let sc_fail () = ()
  let tail_help () = ()
  let head_help () = ()
  let tag_register () = incr bw_registers
  let tag_reregister () = incr bw_reregisters
  let tag_deregister () = ()
  let tag_recycle () = ()
  let shard_steal () = ()
  let wait_park () = ()
  let wait_wake () = ()
  let wait_cancel () = ()
end

module Q3P =
  Nbq_core.Evequoz_bw.Make_probed (Nbq_primitives.Atomic_intf.Real)
    (BwCountProbe)

let bw_zero_hot_path_registry_traffic () =
  bw_reregisters := 0;
  bw_registers := 0;
  bw_ll_reserves := 0;
  let q = Q3P.create ~capacity:8 in
  let h = Q3P.register q in
  let ops = 5_000 in
  for i = 1 to ops do
    ignore (Q3P.enqueue_with q h i);
    ignore (Q3P.dequeue_with q h);
    ignore (Q3P.peek_with q h)
  done;
  Q3P.deregister h;
  Alcotest.(check int) "one registration" 1 !bw_registers;
  Alcotest.(check bool)
    (Printf.sprintf "LL path hot (%d reservations)" !bw_ll_reserves)
    true
    (!bw_ll_reserves >= 2 * ops);
  Alcotest.(check int) "zero reregister traffic" 0 !bw_reregisters

let bw_space_bounded () =
  (* One thread hammering the ring: the buffer pools must stay at the
     amortization bound (retired < threshold after a scan, free at most
     what one scan recycles), not grow with the operation count. *)
  let module C = Q3.Core in
  let q = C.create ~capacity:8 in
  let h = C.register q in
  for i = 1 to 10_000 do
    ignore (C.enqueue_with q h i);
    ignore (C.dequeue_with q h)
  done;
  let sp = C.space q in
  Alcotest.(check int) "one handle record" 1
    sp.Nbq_primitives.Llsc_bw.handles;
  Alcotest.(check bool)
    (Printf.sprintf "pools bounded (%d free + %d retired)"
       sp.Nbq_primitives.Llsc_bw.free_bufs
       sp.Nbq_primitives.Llsc_bw.retired_bufs)
    true
    (sp.Nbq_primitives.Llsc_bw.free_bufs
     + sp.Nbq_primitives.Llsc_bw.retired_bufs
    <= 16);
  C.deregister h;
  let sp = C.space q in
  Alcotest.(check int) "no dangling announcement" 0
    sp.Nbq_primitives.Llsc_bw.announced;
  Alcotest.(check int) "record released" 0
    sp.Nbq_primitives.Llsc_bw.owned_handles

let bw_batch_roundtrip () =
  let module QB3 = Q3.Batched in
  let q : int QB3.t = Q3.create ~capacity:16 in
  let n = QB3.try_enqueue_batch q (Array.init 10 (fun i -> i)) in
  Alcotest.(check int) "all accepted" 10 n;
  Alcotest.(check (list int)) "run in order" [ 0; 1; 2; 3; 4 ]
    (QB3.try_dequeue_batch q 5);
  Alcotest.(check (list int)) "remainder in order" [ 5; 6; 7; 8; 9 ]
    (QB3.try_dequeue_batch q 99);
  Alcotest.(check (list int)) "empty run" [] (QB3.try_dequeue_batch q 4)

(* --- SCQ (PR 10): the FAA-ticketed ring family --- *)

module Scq = Nbq_scq.Scq.Make (Nbq_primitives.Atomic_intf.Real)
module Scq_wcq = Nbq_scq.Scq.Make_wcq (Nbq_primitives.Atomic_intf.Real)

let scq_fifo_and_capacity () =
  let q = Scq.Scq.create ~capacity:3 in
  Alcotest.(check int) "capacity rounded" 4 (Scq.Scq.capacity q);
  for i = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "enqueue %d accepted" i)
      true
      (Scq.Scq.try_enqueue q i)
  done;
  (* The credit ring linearizes "full": the 5th item must bounce without
     spinning even though the backing ring has 2n = 8 slots. *)
  Alcotest.(check bool) "5th rejected" false (Scq.Scq.try_enqueue q 5);
  Alcotest.(check int) "length at cap" 4 (Scq.Scq.length q);
  for i = 1 to 4 do
    Alcotest.(check (option int))
      (Printf.sprintf "dequeue %d in order" i)
      (Some i) (Scq.Scq.try_dequeue q)
  done;
  Alcotest.(check (option int)) "then empty" None (Scq.Scq.try_dequeue q);
  Alcotest.(check int) "length drained" 0 (Scq.Scq.length q)

let scq_empty_fast_path_rearms () =
  (* Failed dequeues burn the threshold down to its negative fast path;
     any later enqueue must re-arm it (reset_threshold) so the queue
     never reports a false empty afterwards. *)
  let q = Scq.Scq.create ~capacity:2 in
  for _ = 1 to 50 do
    Alcotest.(check (option int)) "empty" None (Scq.Scq.try_dequeue q)
  done;
  Alcotest.(check bool) "enqueue after the burn" true (Scq.Scq.try_enqueue q 7);
  Alcotest.(check (option int)) "comes back" (Some 7) (Scq.Scq.try_dequeue q);
  Alcotest.(check (option int)) "empty again" None (Scq.Scq.try_dequeue q)

let scq_wraparound () =
  (* 100 laps of a 2-slot ring: cycle indices must keep slots unambiguous
     far past the first revolution. *)
  let q = Scq.Scq.create ~capacity:2 in
  for i = 1 to 200 do
    Alcotest.(check bool) "accepted" true (Scq.Scq.try_enqueue q i);
    Alcotest.(check (option int)) "round-trips" (Some i) (Scq.Scq.try_dequeue q)
  done;
  Alcotest.(check int) "length settled" 0 (Scq.Scq.length q)

let scqd_pairing () =
  (* SCQD: index rings around a plain data array.  Same observable
     contract — FIFO, capacity bound, emptiness — via the fq/aq pair. *)
  let q = Scq.Scqd.create ~capacity:2 in
  Alcotest.(check bool) "enq 1" true (Scq.Scqd.try_enqueue q 10);
  Alcotest.(check bool) "enq 2" true (Scq.Scqd.try_enqueue q 20);
  Alcotest.(check bool) "full" false (Scq.Scqd.try_enqueue q 30);
  Alcotest.(check (option int)) "fifo 1" (Some 10) (Scq.Scqd.try_dequeue q);
  Alcotest.(check (option int)) "fifo 2" (Some 20) (Scq.Scqd.try_dequeue q);
  Alcotest.(check (option int)) "empty" None (Scq.Scqd.try_dequeue q);
  for i = 1 to 100 do
    Alcotest.(check bool) "lap enq" true (Scq.Scqd.try_enqueue q i);
    Alcotest.(check (option int)) "lap deq" (Some i) (Scq.Scqd.try_dequeue q)
  done

let scq_wcq_helping_roundtrip () =
  (* The helping variant changes the enqueue slow path, not the
     contract: same FIFO and capacity behaviour, including far past
     [slow_after] tickets' worth of traffic. *)
  let q = Scq_wcq.Scq.create ~capacity:4 in
  for lap = 0 to 49 do
    for i = 1 to 4 do
      Alcotest.(check bool) "accepted" true
        (Scq_wcq.Scq.try_enqueue q ((lap * 4) + i))
    done;
    Alcotest.(check bool) "full" false (Scq_wcq.Scq.try_enqueue q 0);
    for i = 1 to 4 do
      Alcotest.(check (option int)) "in order"
        (Some ((lap * 4) + i))
        (Scq_wcq.Scq.try_dequeue q)
    done;
    Alcotest.(check (option int)) "empty" None (Scq_wcq.Scq.try_dequeue q)
  done

let scq_concurrent_conservation () =
  (* 2 producers + 2 consumers over a 4-slot scq: every accepted item
     comes out exactly once, per-producer order preserved. *)
  let q = Scq.Scq.create ~capacity:4 in
  let per = 3_000 in
  let accepted = Array.make 2 [] and got = Array.make 2 [] in
  let producers =
    Array.init 2 (fun p ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              let v = (p * per) + i in
              let rec go n =
                if n > 0 && not (Scq.Scq.try_enqueue q v) then begin
                  Unix.sleepf 1e-4;
                  go (n - 1)
                end
                else if n > 0 then accepted.(p) <- v :: accepted.(p)
              in
              go 200
            done))
  in
  let stop = Atomic.make 0 in
  let consumers =
    Array.init 2 (fun c ->
        Domain.spawn (fun () ->
            let rec drain idle =
              match Scq.Scq.try_dequeue q with
              | Some v ->
                  got.(c) <- v :: got.(c);
                  drain 0
              | None ->
                  if Atomic.get stop < 2 then begin
                    Unix.sleepf 1e-4;
                    drain idle
                  end
                  else if idle < 3 then drain (idle + 1)
            in
            drain 0))
  in
  Array.iter
    (fun d ->
      Domain.join d;
      Atomic.incr stop)
    producers;
  Array.iter Domain.join consumers;
  let all_in = List.sort compare (accepted.(0) @ accepted.(1)) in
  let all_out = List.sort compare (got.(0) @ got.(1)) in
  let rec leftover () =
    match Scq.Scq.try_dequeue q with
    | Some v -> v :: leftover ()
    | None -> []
  in
  let all_out = List.sort compare (all_out @ leftover ()) in
  Alcotest.(check int) "conservation" (List.length all_in)
    (List.length all_out);
  Alcotest.(check bool) "same multiset" true (all_in = all_out)

let () =
  Alcotest.run "core"
    [
      ( "indices",
        [
          quick "llsc monotonic across wraps" llsc_indices_monotonic;
          quick "llsc indices on rejection" llsc_indices_stop_on_rejection;
          quick "cas monotonic across wraps" cas_indices_monotonic;
        ] );
      ( "capacity",
        [
          quick "rounding" capacity_rounding;
          quick "invalid" capacity_invalid;
          quick "round_capacity unit" round_capacity_unit;
          quick "round_capacity overflow clamp" round_capacity_clamp;
        ] );
      ( "handles",
        [
          quick "explicit handles" cas_explicit_handles;
          quick "handle recycling" cas_handle_recycling;
          slow "registry space adaptivity" cas_registry_space_adaptive;
          quick "deregister_domain idempotent" cas_deregister_domain_idempotent;
          quick "interleaved handles, one thread"
            cas_interleaved_handles_one_thread;
        ] );
      ( "peek",
        [
          quick "sequential, llsc queue" peek_sequential_llsc;
          quick "sequential, cas queue" peek_sequential_cas;
          slow "concurrent peeks monotone" peek_concurrent_monotone;
        ] );
      ( "weak-cells",
        [
          quick "sequential under 30% failures" weak_queue_correct_under_failures;
          slow "concurrent under 20% failures" weak_queue_concurrent;
        ] );
      ( "batch-runs",
        [
          quick "fifo roundtrip" batch_fifo_roundtrip;
          quick "wraparound x25 revolutions" batch_wraparound;
          quick "partial accept at capacity" batch_partial_accept;
          quick "mixed with single ops" batch_mixed_with_singles;
          slow "concurrent conservation + order" batch_concurrent_conservation;
        ] );
      ( "blelloch-wei",
        [
          quick "indices monotonic across wraps" bw_indices_monotonic;
          quick "peek parity" bw_peek_sequential;
          quick "handle recycling" bw_handle_recycling;
          quick "zero hot-path registry traffic"
            bw_zero_hot_path_registry_traffic;
          quick "buffer pools bounded" bw_space_bounded;
          quick "batch runs roundtrip" bw_batch_roundtrip;
        ] );
      ( "scq",
        [
          quick "fifo + credit-bounded capacity" scq_fifo_and_capacity;
          quick "empty fast path re-arms" scq_empty_fast_path_rearms;
          quick "wraparound x100 laps" scq_wraparound;
          quick "scqd index/data pairing" scqd_pairing;
          quick "wcq helping contract parity" scq_wcq_helping_roundtrip;
          slow "concurrent conservation" scq_concurrent_conservation;
        ] );
      ( "blocking",
        [
          slow "ping-pong through 2-slot ring" blocking_wrapper_ping_pong;
          quick "deadline times out" blocking_deadline_timeout;
          quick "past deadline still tries once"
            blocking_deadline_past_still_tries;
          quick "retry budgets" blocking_budget;
          slow "deadline met across domains" blocking_deadline_cross_domain;
        ] );
    ]
