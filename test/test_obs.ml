(* Tests for the observability layer (nbq_obs): sharded counters under
   real domains, histogram bucket geometry and percentiles, the metrics
   hub + probe plumbing, instrumentation transparency (the full
   conformance battery over an instrumented queue), peek rollback hygiene
   in the tag registry, and the JSON sink. *)

open Nbq_obs
module Registry = Nbq_harness.Registry
module Runner = Nbq_harness.Runner
module Workload = Nbq_harness.Workload

(* --- Padding --- *)

let test_padding_preserves_atomic () =
  let a = Padding.atomic 41 in
  ignore (Atomic.fetch_and_add a 1);
  Alcotest.(check int) "padded atomic still works" 42 (Atomic.get a);
  Alcotest.(check int) "immediates pass through" 7 (Padding.copy_padded 7)

(* --- Sharded counters --- *)

let test_counter_single_domain () =
  let c = Sharded_counter.create () in
  for _ = 1 to 100 do
    Sharded_counter.incr c
  done;
  Sharded_counter.add c 23;
  Sharded_counter.add c 0;
  Alcotest.(check int) "read sums shards" 123 (Sharded_counter.read c);
  Sharded_counter.reset c;
  Alcotest.(check int) "reset zeroes" 0 (Sharded_counter.read c)

let test_counter_across_domains () =
  let c = Sharded_counter.create () in
  let per_domain = 25_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Sharded_counter.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int)
    "no lost increments across domains" (4 * per_domain)
    (Sharded_counter.read c)

(* --- Histogram geometry --- *)

let test_histogram_buckets_exact_below_8 () =
  for v = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "bucket of %d" v)
      v
      (Histogram.bucket_of_ns v)
  done;
  Alcotest.(check int) "negative clamps to 0" 0 (Histogram.bucket_of_ns (-5))

let test_histogram_bucket_roundtrip () =
  for i = 0 to Histogram.bucket_count - 1 do
    let lo = Histogram.bucket_lower_ns i in
    Alcotest.(check int)
      (Printf.sprintf "lower bound of bucket %d maps back" i)
      i
      (Histogram.bucket_of_ns lo);
    let hi = Histogram.bucket_upper_ns i in
    Alcotest.(check int)
      (Printf.sprintf "upper bound of bucket %d maps back" i)
      i
      (Histogram.bucket_of_ns hi);
    if i < Histogram.bucket_count - 1 then
      Alcotest.(check int)
        (Printf.sprintf "buckets %d/%d contiguous" i (i + 1))
        (hi + 1)
        (Histogram.bucket_lower_ns (i + 1))
  done;
  Alcotest.(check int) "max_int lands in the last bucket"
    (Histogram.bucket_count - 1)
    (Histogram.bucket_of_ns max_int)

let test_histogram_relative_width () =
  (* From bucket 8 on, width/lower <= 1/8: the percentile error bound. *)
  for i = 8 to Histogram.bucket_count - 2 do
    let lo = float_of_int (Histogram.bucket_lower_ns i) in
    let width =
      float_of_int (Histogram.bucket_upper_ns i - Histogram.bucket_lower_ns i + 1)
    in
    if width /. lo > 0.125 +. 1e-9 then
      Alcotest.failf "bucket %d too wide: %f/%f" i width lo
  done

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for _ = 1 to 900 do Histogram.record h 100 done;
  for _ = 1 to 90 do Histogram.record h 1000 done;
  for _ = 1 to 10 do Histogram.record h 10_000 done;
  let s = Histogram.snapshot h in
  Alcotest.(check int) "total" 1000 (Histogram.total s);
  Alcotest.(check (float 1e-9)) "mean exact (sums are exact)" 280.0
    (Histogram.mean_ns s);
  let within q lo =
    let v = Histogram.percentile_ns s q in
    if v < float_of_int lo || v > float_of_int lo *. 1.125 then
      Alcotest.failf "p%g = %f outside [%d, %f]" (q *. 100.0) v lo
        (float_of_int lo *. 1.125)
  in
  within 0.5 100;
  within 0.9 100;
  within 0.95 1000;
  within 0.999 10_000;
  Alcotest.(check bool) "max covers the top bucket" true
    (Histogram.max_ns s >= 10_000.0);
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan (Histogram.percentile_ns Histogram.empty 0.5))

let test_histogram_across_domains () =
  let h = Histogram.create () in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Histogram.record h (100 * (d + 1))
            done))
  in
  List.iter Domain.join domains;
  let s = Histogram.snapshot h in
  Alcotest.(check int) "all samples counted" 4000 (Histogram.total s);
  Alcotest.(check int) "sum aggregated" (1000 * (100 + 200 + 300 + 400)) s.sum

(* --- Events and the metrics hub --- *)

let test_event_roundtrip () =
  Alcotest.(check int) "taxonomy size" Event.count (List.length Event.all);
  List.iteri
    (fun i ev ->
      Alcotest.(check int) "index matches position" i (Event.index ev);
      (match Event.of_string (Event.to_string ev) with
      | Some ev' when ev' = ev -> ()
      | _ -> Alcotest.failf "of_string/to_string mismatch for %s" (Event.to_string ev));
      Alcotest.(check bool) "described" true (String.length (Event.describe ev) > 0))
    Event.all;
  Alcotest.(check (option reject)) "unknown name" None (Event.of_string "nope")

let test_metrics_probe () =
  let m = Metrics.create () in
  let module P = (val Metrics.probe m) in
  P.sc_fail ();
  P.sc_fail ();
  P.tail_help ();
  (* ll_reserve / tag_reregister are sampled 1-in-64 with weight 64 off a
     shared tick that only ll_reserve advances: 128 paired calls cross
     exactly two sampling windows, so both count 128. *)
  for _ = 1 to 128 do
    P.ll_reserve ();
    P.tag_reregister ()
  done;
  Metrics.add m Event.Empty_retry 5;
  let s = Metrics.snapshot m in
  Alcotest.(check int) "sc_fail" 2 (Metrics.get s Event.Sc_fail);
  Alcotest.(check int) "tail_help" 1 (Metrics.get s Event.Tail_help);
  Alcotest.(check int) "ll_reserve" 128 (Metrics.get s Event.Ll_reserve);
  Alcotest.(check int) "tag_reregister" 128 (Metrics.get s Event.Tag_reregister);
  Alcotest.(check int) "empty_retry" 5 (Metrics.get s Event.Empty_retry);
  Alcotest.(check int) "untouched" 0 (Metrics.get s Event.Head_help);
  let merged = Metrics.merge s s in
  Alcotest.(check int) "merge doubles" 4 (Metrics.get merged Event.Sc_fail)

(* --- Instrumentation transparency: full battery on an instrumented queue --- *)

let instrumented_impl =
  let base = Registry.find "evequoz-cas" in
  let metrics = Metrics.create () in
  {
    base with
    Registry.name = "evequoz-cas-obs";
    create = (fun ~capacity -> base.Registry.create_probed ~metrics ~capacity);
  }

(* --- Instrumented run produces believable counts --- *)

let test_instrumented_run_counts () =
  let m = Metrics.create () in
  let workload = { Workload.iterations = 200; enqueue_batch = 5; dequeue_batch = 5 } in
  let cfg = { Runner.threads = 4; runs = 1; workload; capacity = None } in
  let meas = Runner.measure ~metrics:m (Registry.find "evequoz-cas") cfg in
  let s =
    match meas.Runner.metrics with
    | Some s -> s
    | None -> Alcotest.fail "measurement carries no snapshot"
  in
  let ops = 4 * 200 * 10 in
  (* ll_reserve / tag_reregister fire once per operation but are sampled
     1-in-64 (weight 64) on racy shared ticks, so the counts are
     statistical: well above half the operations, not far above all of
     them. *)
  let sampled_sane count =
    count > ops / 2 && count <= (ops * 3 / 2) + (64 * 5)
  in
  Alcotest.(check bool) "operations reserve cells (sampled count sane)" true
    (sampled_sane (Metrics.get s Event.Ll_reserve));
  Alcotest.(check bool) "each domain registered a handle" true
    (Metrics.get s Event.Tag_register >= 4);
  Alcotest.(check bool) "operations re-register tags (sampled count sane)"
    true
    (sampled_sane (Metrics.get s Event.Tag_reregister));
  Alcotest.(check int) "full retries mirrored from snapshot"
    (Metrics.get s Event.Full_retry)
    meas.Runner.full_retries;
  Alcotest.(check int) "empty retries mirrored from snapshot"
    (Metrics.get s Event.Empty_retry)
    meas.Runner.empty_retries;
  (* Latency sampling: 1 in 64 of ~8000 successful ops per kind. *)
  Alcotest.(check bool) "enqueue latency sampled" true
    (Histogram.total s.Metrics.enq > 0);
  Alcotest.(check bool) "dequeue latency sampled" true
    (Histogram.total s.Metrics.deq > 0)

(* --- peek rollback leaves the tag registry at its baseline --- *)

let test_peek_rollback_registry () =
  let module Q = Nbq_core.Evequoz_cas in
  let q = Q.create ~capacity:8 in
  Alcotest.(check bool) "enqueue" true (Q.try_enqueue q 1);
  Alcotest.(check bool) "enqueue" true (Q.try_enqueue q 2);
  (* The implicit handle now exists: exactly one owned tag variable. *)
  let baseline_owned = Q.owned_count q in
  let baseline_size = Q.registry_size q in
  Alcotest.(check int) "one live handle after ops" 1 baseline_owned;
  for _ = 1 to 100 do
    Alcotest.(check (option int)) "peek sees the front" (Some 1) (Q.try_peek q)
  done;
  Alcotest.(check int) "peek rollback: owned refcounts at baseline"
    baseline_owned (Q.owned_count q);
  Alcotest.(check int) "peek allocates no tag variables" baseline_size
    (Q.registry_size q);
  (* After a peek, the slot must hold a plain value again (the reservation
     was rolled back), so a dequeue through a fresh handle succeeds. *)
  let h = Q.register q in
  Alcotest.(check (option int)) "dequeue after rollback" (Some 1)
    (Q.dequeue_with q h);
  Q.deregister h;
  Alcotest.(check int) "explicit handle released" baseline_owned
    (Q.owned_count q);
  Q.deregister_domain q;
  Alcotest.(check int) "implicit handle released" 0 (Q.owned_count q)

(* --- Sink --- *)

let test_sink_json_escaping () =
  Alcotest.(check string) "escaping"
    {|{"a\"b":"x\ny","n":null}|}
    (Sink.json_to_string
       (Sink.Obj [ ("a\"b", Sink.String "x\ny"); ("n", Sink.Null) ]));
  Alcotest.(check string) "nan is null" "null" (Sink.json_to_string (Sink.Float nan));
  Alcotest.(check string) "infinity is null" "null"
    (Sink.json_to_string (Sink.Float infinity));
  Alcotest.(check string) "list" "[1,2.5,true]"
    (Sink.json_to_string (Sink.List [ Sink.Int 1; Sink.Float 2.5; Sink.Bool true ]))

let test_sink_jsonl_writes () =
  let m = Metrics.create () in
  Metrics.emit m Event.Sc_fail;
  Metrics.record_enq_ns m 500;
  let path = Filename.temp_file "nbq-metrics" ".jsonl" in
  let sink = Sink.open_jsonl path in
  Sink.write_snapshot sink ~meta:[ ("queue", Sink.String "test") ]
    (Metrics.snapshot m);
  Sink.close sink;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  let has needle =
    let rec go i =
      i + String.length needle <= String.length line
      && (String.sub line i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "object line" true
    (String.length line > 2 && line.[0] = '{' && line.[String.length line - 1] = '}');
  Alcotest.(check bool) "meta present" true (has {|"queue":"test"|});
  Alcotest.(check bool) "event count serialized" true (has {|"sc_fail":1|});
  Alcotest.(check bool) "latency serialized" true (has {|"enq_latency"|})

let () =
  Alcotest.run "nbq-obs"
    [
      ( "padding-counters",
        [
          Alcotest.test_case "padding preserves atomics" `Quick
            test_padding_preserves_atomic;
          Alcotest.test_case "counter single domain" `Quick
            test_counter_single_domain;
          Alcotest.test_case "counter across domains" `Quick
            test_counter_across_domains;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact buckets below 8" `Quick
            test_histogram_buckets_exact_below_8;
          Alcotest.test_case "bucket bounds round-trip" `Quick
            test_histogram_bucket_roundtrip;
          Alcotest.test_case "relative width bound" `Quick
            test_histogram_relative_width;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "across domains" `Quick
            test_histogram_across_domains;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "event round-trip" `Quick test_event_roundtrip;
          Alcotest.test_case "probe feeds counters" `Quick test_metrics_probe;
          Alcotest.test_case "instrumented run counts" `Quick
            test_instrumented_run_counts;
          Alcotest.test_case "peek rollback registry hygiene" `Quick
            test_peek_rollback_registry;
        ] );
      ("instrumented-battery", Battery.cases instrumented_impl);
      ( "sink",
        [
          Alcotest.test_case "json escaping" `Quick test_sink_json_escaping;
          Alcotest.test_case "jsonl writes" `Quick test_sink_jsonl_writes;
        ] );
    ]
