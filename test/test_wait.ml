(* Tests for the parking/wakeup layer (nbq_wait): eventcount protocol
   bookkeeping (prepare/cancel hygiene, wake claiming and the cancel
   pass-on, seq fast paths), deadline semantics (a past deadline must
   never park), park-window cancellation leaving no dangling waiter, the
   parker's notify/tick behaviour, and cross-domain park/wake through
   [await]. *)

module EC = Nbq_wait.Eventcount
module Parker = Nbq_wait.Parker

let now = Unix.gettimeofday

(* --- Deadline semantics --- *)

(* A deadline already in the past: one attempt, an immediate [`Timeout],
   and — the satellite requirement — no park. *)
let test_past_deadline_no_park () =
  let parks = ref 0 in
  let ec = EC.create ~on_park:(fun () -> incr parks) () in
  let r = EC.await ~deadline:(now () -. 1.0) ec (fun () -> None) in
  Alcotest.(check bool) "timed out" true (r = `Timeout);
  Alcotest.(check int) "never parked" 0 !parks;
  let w, c = EC.audit ec in
  Alcotest.(check int) "no waiter left behind" 0 w;
  Alcotest.(check int) "any prepared waiter was cancelled, not leaked" c c

(* A past deadline still succeeds when the condition already holds. *)
let test_past_deadline_still_tries () =
  let ec = EC.create () in
  let r = EC.await ~deadline:(now () -. 1.0) ec (fun () -> Some 7) in
  Alcotest.(check bool) "one attempt made" true (r = `Ok 7)

(* --- Protocol bookkeeping --- *)

let test_wake_empty_fast_path () =
  let ec = EC.create () in
  let s0 = EC.seq ec in
  Alcotest.(check bool) "no waiter to wake" false (EC.wake_one ec);
  Alcotest.(check int) "empty wake skips the seq bump" s0 (EC.seq ec);
  Alcotest.(check int) "wake_all on empty wakes zero" 0 (EC.wake_all ec)

let test_prepare_cancel_hygiene () =
  let cancels = ref 0 in
  let ec = EC.create ~on_cancel:(fun () -> incr cancels) () in
  let w = EC.prepare_wait ec in
  Alcotest.(check int) "published" 1 (fst (EC.audit ec));
  EC.cancel_wait ec w;
  Alcotest.(check int) "cancel hook fired" 1 !cancels;
  Alcotest.(check int) "no waiting node" 0 (fst (EC.audit ec));
  (* The withdrawn node must not swallow a later wake. *)
  Alcotest.(check bool) "nothing left to wake" false (EC.wake_one ec)

let test_wake_claims_and_cancel_passes_on () =
  let wakes = ref 0 in
  let ec = EC.create ~on_wake:(fun () -> incr wakes) () in
  (* Two published waiters (same domain: bookkeeping only, nobody parks). *)
  let w1 = EC.prepare_wait ec in
  let w2 = EC.prepare_wait ec in
  Alcotest.(check int) "two published" 2 (fst (EC.audit ec));
  (* The wake claims one waiter (LIFO: w2).  Cancelling the claimed
     waiter must pass the wake on to w1 rather than drop it. *)
  Alcotest.(check bool) "wake claims a waiter" true (EC.wake_one ec);
  EC.cancel_wait ec w2;
  Alcotest.(check int) "wake passed on, not lost" 2 !wakes;
  Alcotest.(check int) "no waiting node remains" 0 (fst (EC.audit ec));
  EC.cancel_wait ec w1;
  Parker.drain (Parker.current ())

let test_wake_all_counts () =
  let ec = EC.create () in
  let ws = List.init 3 (fun _ -> EC.prepare_wait ec) in
  Alcotest.(check int) "wake_all signals every waiter" 3 (EC.wake_all ec);
  List.iter (fun w -> EC.cancel_wait ec w) ws;
  Parker.drain (Parker.current ())

(* --- Park-window cancellation hygiene (satellite d) --- *)

(* A fault stalls the waiter inside the park window long enough for its
   deadline to pass.  The timed wait must withdraw its own node: audit
   shows no dangling (claimable) waiter afterwards. *)
let test_cancel_during_park_window_fault () =
  let cancels = ref 0 in
  let ec =
    EC.create
      ~on_cancel:(fun () -> incr cancels)
      ~park_window:(fun () -> Unix.sleepf 0.03)
      ()
  in
  let r = EC.await ~deadline:(now () +. 0.005) ec (fun () -> None) in
  Alcotest.(check bool) "timed out" true (r = `Timeout);
  Alcotest.(check int) "the node was withdrawn (cancelled)" 1 !cancels;
  let w, c = EC.audit ec in
  Alcotest.(check int) "no dangling waiter after the fault" 0 w;
  (* pop_if_head unlinks the freshly cancelled head immediately, so the
     stack holds no cancelled corpse either. *)
  Alcotest.(check int) "no cancelled corpse linked" 0 c;
  (* A subsequent wake finds a clean stack. *)
  Alcotest.(check bool) "wake after fault finds nothing" false (EC.wake_one ec)

(* Crash (not just stall) inside the park window, via the fault injector:
   the waiter dies mid-protocol and its node stays claimable — but a
   later waiter must still be wakeable past the corpse. *)
let test_crash_in_park_window_not_stranding () =
  let inj = Nbq_fault.Injector.create () in
  Nbq_fault.Injector.arm inj ~point:Nbq_primitives.Fault.Park_window
    ~action:Nbq_fault.Injector.Crash ~after:1;
  let ec =
    EC.create
      ~park_window:(fun () ->
        Nbq_fault.Injector.hit inj Nbq_primitives.Fault.Park_window)
      ()
  in
  let slot = Atomic.make 0 in
  let cond () = if Atomic.get slot = 1 then Some 1 else None in
  let victim =
    Domain.spawn (fun () ->
        match EC.await ~deadline:(now () +. 2.0) ec cond with
        | (_ : [ `Ok of int | `Timeout ]) -> false
        | exception Nbq_fault.Injector.Crashed -> true)
  in
  Alcotest.(check bool) "victim crashed mid-park" true (Domain.join victim);
  Alcotest.(check int) "corpse node left on the stack" 1 (fst (EC.audit ec));
  (* A live waiter behind the corpse still completes. *)
  let live =
    Domain.spawn (fun () -> EC.await ~deadline:(now () +. 2.0) ec cond)
  in
  Unix.sleepf 0.01;
  Atomic.set slot 1;
  ignore (EC.wake_one ec);
  ignore (EC.wake_one ec);
  Alcotest.(check bool) "live waiter not stranded" true
    (Domain.join live = `Ok 1)

(* --- Parker --- *)

let test_parker_notify_then_park () =
  let p = Parker.current () in
  Parker.drain p;
  Parker.notify p;
  Alcotest.(check bool) "pending notification consumed without sleeping" true
    (Parker.park p = `Notified);
  (* Notification is one-shot: the next park has nothing pending and
     returns on a ticker broadcast instead. *)
  Alcotest.(check bool) "unnotified park wakes on a tick" true
    (Parker.park p = `Tick)

let test_parker_cross_domain_notify () =
  let p = Parker.current () in
  Parker.drain p;
  let d = Domain.spawn (fun () -> Unix.sleepf 0.002; Parker.notify p) in
  (* Either we sleep and are notified, or (rarely) a tick lands first and
     the notification is left pending; both are liveness-safe.  What may
     not happen is a hang. *)
  let r = Parker.park p in
  Domain.join d;
  Parker.drain p;
  Alcotest.(check bool) "woke up" true (r = `Notified || r = `Tick)

(* --- Cross-domain await/wake --- *)

let test_await_cross_domain () =
  let ec = EC.create () in
  let slot = Atomic.make 0 in
  let cond () = let v = Atomic.get slot in if v > 0 then Some v else None in
  let waiter =
    Domain.spawn (fun () -> EC.await ~deadline:(now () +. 5.0) ec cond)
  in
  (* Let the waiter reach the parked state (past its spin phase). *)
  Unix.sleepf 0.01;
  Atomic.set slot 9;
  ignore (EC.wake_one ec);
  Alcotest.(check bool) "woken with the value" true (Domain.join waiter = `Ok 9)

let test_max_park_backstop () =
  (* No producer ever wakes us, the condition comes true silently: the
     bounded-park backstop must notice within ~max_park ticks. *)
  let ec = EC.create () in
  let slot = Atomic.make 0 in
  let cond () = if Atomic.get slot = 1 then Some 1 else None in
  let waiter =
    Domain.spawn (fun () ->
        EC.await ~deadline:(now () +. 10.0) ~max_park:3 ec cond)
  in
  Unix.sleepf 0.02;
  (* Make the condition true WITHOUT any wake: a wake lost entirely
     outside the wait layer. *)
  Atomic.set slot 1;
  Alcotest.(check bool) "backstop rescued the silent wake" true
    (Domain.join waiter = `Ok 1)

(* --- Blocking wrapper over an unbounded (segmented) queue ---

   The contract the segmented tentpole adds to the wait layer: an
   unbounded queue has no "full", so a blocking enqueue must never park —
   only an empty dequeue waits.  Counted through the wrapper's probe seam
   (one hit per actual park). *)

let parks = Atomic.make 0

module Park_probe : Nbq_primitives.Probe.S = struct
  include Nbq_primitives.Probe.Noop

  let wait_park () = Atomic.incr parks
end

module Seg_blocking =
  Nbq_core.Queue_intf.Blocking_hooked (Park_probe) (Nbq_primitives.Fault.Noop)
    (Nbq_segmented.Segmented.Cas)

let test_unbounded_enqueue_never_parks () =
  Atomic.set parks 0;
  (* Tiny segments: 500 enqueues churn through ~250 appends, every one of
     which would hit the "full" path on a fixed ring. *)
  let q = Seg_blocking.create ~capacity:2 in
  for i = 1 to 500 do
    Seg_blocking.enqueue q i
  done;
  Alcotest.(check int) "no enqueue ever parked" 0 (Atomic.get parks);
  (* Deadline variant on a full-looking tail: still no park. *)
  (match Seg_blocking.enqueue_until q ~deadline:(now () +. 5.0) 501 with
  | `Ok -> ()
  | `Timeout -> Alcotest.fail "unbounded enqueue timed out");
  Alcotest.(check int) "enqueue_until did not park" 0 (Atomic.get parks);
  for i = 1 to 501 do
    Alcotest.(check int) "fifo" i (Seg_blocking.dequeue q)
  done

let test_empty_dequeue_parks () =
  Atomic.set parks 0;
  let q = Seg_blocking.create ~capacity:2 in
  let consumer = Domain.spawn (fun () -> Seg_blocking.dequeue q) in
  (* Let the consumer exhaust its spin phase and actually park. *)
  let rec wait_for_park deadline =
    if Atomic.get parks = 0 && now () < deadline then begin
      Domain.cpu_relax ();
      wait_for_park deadline
    end
  in
  wait_for_park (now () +. 5.0);
  Alcotest.(check bool) "empty dequeue parked" true (Atomic.get parks > 0);
  Seg_blocking.enqueue q 42;
  Alcotest.(check int) "woken with the item" 42 (Domain.join consumer)

let () =
  Alcotest.run "nbq_wait"
    [
      ( "deadline",
        [
          Alcotest.test_case "past deadline never parks" `Quick
            test_past_deadline_no_park;
          Alcotest.test_case "past deadline still tries once" `Quick
            test_past_deadline_still_tries;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "empty wake fast path" `Quick
            test_wake_empty_fast_path;
          Alcotest.test_case "prepare/cancel hygiene" `Quick
            test_prepare_cancel_hygiene;
          Alcotest.test_case "cancel passes a claimed wake on" `Quick
            test_wake_claims_and_cancel_passes_on;
          Alcotest.test_case "wake_all counts waiters" `Quick
            test_wake_all_counts;
        ] );
      ( "faults",
        [
          Alcotest.test_case "deadline during park-window stall" `Quick
            test_cancel_during_park_window_fault;
          Alcotest.test_case "crash in park window strands nobody" `Quick
            test_crash_in_park_window_not_stranding;
        ] );
      ( "parker",
        [
          Alcotest.test_case "notify then park" `Quick
            test_parker_notify_then_park;
          Alcotest.test_case "cross-domain notify" `Quick
            test_parker_cross_domain_notify;
        ] );
      ( "await",
        [
          Alcotest.test_case "cross-domain park and wake" `Quick
            test_await_cross_domain;
          Alcotest.test_case "max_park backstop" `Quick test_max_park_backstop;
        ] );
      ( "unbounded-blocking",
        [
          Alcotest.test_case "unbounded enqueue never parks" `Quick
            test_unbounded_enqueue_never_parks;
          Alcotest.test_case "empty dequeue parks" `Quick
            test_empty_dequeue_parks;
        ] );
    ]
