(* The conformance battery instantiated for every registered queue. *)

module Registry = Nbq_harness.Registry

(* The segmented queue behind the parked blocking wrapper, as one extra
   battery row: the plain ops go through [Blocking.enqueue] (which never
   parks on an unbounded queue — every attempt succeeds) and a single
   budgeted dequeue attempt, so every battery case exercises the
   wake-on-success plumbing; the [*_until] closures are the wrapper's own
   parked deadline variants rather than the registry's generic pair. *)
let seg_blocking_impl =
  Registry.custom ~name:"evequoz-seg-blocking" ~family:Registry.Link_based
    (fun ~capacity ->
      let module B = Nbq_core.Queue_intf.Blocking (Nbq_segmented.Segmented.Cas) in
      let q = B.create ~capacity in
      let enqueue p =
        B.enqueue q p;
        true
      in
      let dequeue () =
        match B.dequeue_budget q ~retries:0 with
        | `Ok x -> Some x
        | `Timeout -> None
      in
      {
        Registry.enqueue;
        dequeue;
        enqueue_batch =
          (fun items ->
            Array.iter (fun p -> B.enqueue q p) items;
            Array.length items);
        dequeue_batch =
          (fun k ->
            let rec go acc left =
              if left <= 0 then List.rev acc
              else
                match dequeue () with
                | Some x -> go (x :: acc) (left - 1)
                | None -> List.rev acc
            in
            go [] k);
        length = (fun () -> Nbq_segmented.Segmented.Cas.length (B.queue q));
        enqueue_until =
          (fun ~deadline p ->
            match B.enqueue_until q ~deadline p with
            | `Ok -> true
            | `Timeout -> false);
        dequeue_until =
          (fun ~deadline ->
            match B.dequeue_until q ~deadline with
            | `Ok x -> Some x
            | `Timeout -> None);
      })

let () =
  let suites =
    List.map
      (fun (impl : Registry.impl) -> (impl.Registry.name, Battery.cases impl))
      (Registry.all @ [ seg_blocking_impl ])
  in
  Alcotest.run "queue-conformance" suites
