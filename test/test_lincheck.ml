(* Tests for the linearizability checker itself: it must accept genuinely
   linearizable histories (including ones needing non-obvious orderings)
   and reject each violation class. *)

module H = Nbq_lincheck.History
module C = Nbq_lincheck.Checker

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(* Handy event builder. *)
let ev thread op outcome invoked returned =
  { H.thread; op; outcome; invoked; returned; call = invoked; rank = 0 }

let enq thread v ~inv ~ret = ev thread (H.Enqueue v) H.Accepted inv ret
let enq_full thread v ~inv ~ret = ev thread (H.Enqueue v) H.Rejected inv ret
let deq thread v ~inv ~ret = ev thread H.Dequeue (H.Got v) inv ret
let deq_empty thread ~inv ~ret = ev thread H.Dequeue H.Observed_empty inv ret
let peek thread v ~inv ~ret = ev thread H.Peek (H.Got v) inv ret
let peek_empty thread ~inv ~ret = ev thread H.Peek H.Observed_empty inv ret

let check_ok name h =
  match C.check_linearizable h with
  | C.Ok -> ()
  | C.Violation msg -> Alcotest.fail (name ^ ": " ^ msg)

let check_ok_cap name cap h =
  match C.check_linearizable ~capacity:cap h with
  | C.Ok -> ()
  | C.Violation msg -> Alcotest.fail (name ^ ": " ^ msg)

let check_bad name ?capacity h =
  match C.check_linearizable ?capacity h with
  | C.Ok -> Alcotest.fail (name ^ ": accepted a non-linearizable history")
  | C.Violation _ -> ()

(* --- accepting --- *)

let sequential_fifo () =
  check_ok "seq"
    [
      enq 0 1 ~inv:0 ~ret:1;
      enq 0 2 ~inv:2 ~ret:3;
      deq 0 1 ~inv:4 ~ret:5;
      deq 0 2 ~inv:6 ~ret:7;
      deq_empty 0 ~inv:8 ~ret:9;
    ]

let empty_history () = check_ok "empty" []

let overlapping_enqueues_either_order () =
  (* Two concurrent enqueues; dequeues see them in "wrong" program order —
     fine because the enqueues overlap. *)
  check_ok "overlap"
    [
      enq 0 1 ~inv:0 ~ret:5;
      enq 1 2 ~inv:1 ~ret:4;
      deq 0 2 ~inv:6 ~ret:7;
      deq 0 1 ~inv:8 ~ret:9;
    ]

let dequeue_overlapping_enqueue () =
  (* A dequeue that overlaps the enqueue may see its value. *)
  check_ok "deq overlaps enq"
    [ enq 0 9 ~inv:0 ~ret:10; deq 1 9 ~inv:2 ~ret:3 ]

let empty_observed_mid_stream () =
  (* Dequeue observing empty while an overlapping enqueue is in flight. *)
  check_ok "empty mid-stream"
    [ enq 0 1 ~inv:0 ~ret:6; deq_empty 1 ~inv:1 ~ret:2; deq 1 1 ~inv:7 ~ret:8 ]

let rejected_enqueue_at_capacity () =
  check_ok_cap "full" 1
    [
      enq 0 1 ~inv:0 ~ret:1;
      enq_full 0 2 ~inv:2 ~ret:3;
      deq 0 1 ~inv:4 ~ret:5;
    ]

let tricky_linearization_needed () =
  (* T0: enq 1, enq 2.  T1 concurrently dequeues 1 — must linearize between
     the two enqueues for the trailing empty-observation to work out. *)
  check_ok "tricky"
    [
      enq 0 1 ~inv:0 ~ret:1;
      deq 1 1 ~inv:2 ~ret:9;
      deq_empty 1 ~inv:10 ~ret:11;
      enq 0 2 ~inv:12 ~ret:13;
      deq 0 2 ~inv:14 ~ret:15;
    ]

let peek_semantics () =
  check_ok "peek"
    [
      peek_empty 0 ~inv:0 ~ret:1;
      enq 0 1 ~inv:2 ~ret:3;
      peek 0 1 ~inv:4 ~ret:5;
      peek 0 1 ~inv:6 ~ret:7;
      (* non-destructive *)
      deq 0 1 ~inv:8 ~ret:9;
      peek_empty 0 ~inv:10 ~ret:11;
    ]

let peek_overlapping_dequeue () =
  (* Peek overlapping the dequeue of the same front item may see it or
     miss it. *)
  check_ok "peek sees item"
    [ enq 0 1 ~inv:0 ~ret:1; deq 1 1 ~inv:2 ~ret:9; peek 0 1 ~inv:3 ~ret:4 ];
  check_ok "peek misses item"
    [ enq 0 1 ~inv:0 ~ret:1; deq 1 1 ~inv:2 ~ret:9; peek_empty 0 ~inv:3 ~ret:8 ]

(* --- batch calls (ranked sub-events sharing one window) --- *)

(* One batch call: every (op, outcome) shares the [inv..ret] window and is
   ranked in list order, exactly as History.record_call logs it. *)
let batch thread specs ~inv ~ret =
  List.mapi
    (fun rank (op, outcome) ->
      { H.thread; op; outcome; invoked = inv; returned = ret; call = inv; rank })
    specs

let batch_enqueue_in_order () =
  check_ok "batch enq, items delivered in batch order"
    (batch 0
       [ (H.Enqueue 1, H.Accepted); (H.Enqueue 2, H.Accepted) ]
       ~inv:0 ~ret:1
    @ [ deq 1 1 ~inv:2 ~ret:3; deq 1 2 ~inv:4 ~ret:5 ])

let batch_rejects_reordered_items () =
  (* The two batch items share one tick window, so without rank ordering
     the checker would be free to linearize them either way; the rank
     extension must force batch order. *)
  check_bad "batch items delivered out of batch order"
    (batch 0
       [ (H.Enqueue 1, H.Accepted); (H.Enqueue 2, H.Accepted) ]
       ~inv:0 ~ret:1
    @ [ deq 1 2 ~inv:2 ~ret:3; deq 1 1 ~inv:4 ~ret:5 ])

let batch_interleaves_with_other_threads () =
  (* A concurrent single enqueue overlapping the batch window may land
     between the batch's items. *)
  check_ok "foreign op lands inside the batch window"
    (batch 0
       [ (H.Enqueue 1, H.Accepted); (H.Enqueue 3, H.Accepted) ]
       ~inv:0 ~ret:5
    @ [
        enq 1 2 ~inv:1 ~ret:4;
        deq 1 1 ~inv:6 ~ret:7;
        deq 1 2 ~inv:8 ~ret:9;
        deq 1 3 ~inv:10 ~ret:11;
      ])

let batch_short_enqueue_at_capacity () =
  (* Accepted prefix then one Rejected marker, per the short-batch
     convention. *)
  check_ok_cap "short batch enqueue" 2
    (batch 0
       [
         (H.Enqueue 1, H.Accepted);
         (H.Enqueue 2, H.Accepted);
         (H.Enqueue 3, H.Rejected);
       ]
       ~inv:0 ~ret:1
    @ [ deq 0 1 ~inv:2 ~ret:3; deq 0 2 ~inv:4 ~ret:5 ])

let batch_dequeue_with_empty_cut () =
  check_ok "short batch dequeue ends on empty"
    ([ enq 0 1 ~inv:0 ~ret:1; enq 0 2 ~inv:2 ~ret:3 ]
    @ batch 0
        [
          (H.Dequeue, H.Got 1);
          (H.Dequeue, H.Got 2);
          (H.Dequeue, H.Observed_empty);
        ]
        ~inv:4 ~ret:5)

let batch_rejects_false_empty_cut () =
  (* The empty marker linearizes after Got 1, when item 2 is still
     queued — impossible. *)
  check_bad "batch dequeue claims empty with items queued"
    ([
       enq 0 1 ~inv:0 ~ret:1;
       enq 0 2 ~inv:2 ~ret:3;
     ]
    @ batch 0
        [ (H.Dequeue, H.Got 1); (H.Dequeue, H.Observed_empty) ]
        ~inv:4 ~ret:5
    @ [ deq 0 2 ~inv:6 ~ret:7 ])

let precedes_orders_ranks_within_call () =
  match
    batch 0 [ (H.Enqueue 1, H.Accepted); (H.Enqueue 2, H.Accepted) ] ~inv:0
      ~ret:1
  with
  | [ a; b ] ->
      Alcotest.(check bool) "rank 0 precedes rank 1" true (H.precedes a b);
      Alcotest.(check bool) "rank 1 does not precede rank 0" false
        (H.precedes b a)
  | _ -> Alcotest.fail "expected two events"

(* --- rejecting --- *)

let rejects_destructive_peek () =
  (* If peek removed the item, the later dequeue would fail — the spec
     must refuse a history where peek is followed by empty with no
     dequeue. *)
  check_bad "peek then impossible empty deq"
    [
      enq 0 1 ~inv:0 ~ret:1;
      peek 0 1 ~inv:2 ~ret:3;
      deq_empty 0 ~inv:4 ~ret:5;
    ]

let rejects_peek_of_non_front () =
  check_bad "peek must see the front"
    [
      enq 0 1 ~inv:0 ~ret:1;
      enq 0 2 ~inv:2 ~ret:3;
      peek 0 2 ~inv:4 ~ret:5;
    ]

let rejects_peek_of_unknown_value () =
  check_bad "peek of never-enqueued value" [ peek 0 7 ~inv:0 ~ret:1 ]

let rejects_invented_value () =
  check_bad "invented" [ enq 0 1 ~inv:0 ~ret:1; deq 0 2 ~inv:2 ~ret:3 ]

let rejects_reordered_fifo () =
  check_bad "reorder"
    [
      enq 0 1 ~inv:0 ~ret:1;
      enq 0 2 ~inv:2 ~ret:3;
      deq 0 2 ~inv:4 ~ret:5;
      deq 0 1 ~inv:6 ~ret:7;
    ]

let rejects_duplicate_delivery () =
  check_bad "dup"
    [ enq 0 1 ~inv:0 ~ret:1; deq 0 1 ~inv:2 ~ret:3; deq 1 1 ~inv:4 ~ret:5 ]

let rejects_impossible_empty () =
  check_bad "empty with queued item"
    [ enq 0 1 ~inv:0 ~ret:1; deq_empty 0 ~inv:2 ~ret:3; deq 0 1 ~inv:4 ~ret:5 ]

let rejects_value_from_the_future () =
  check_bad "future value"
    [ deq 0 1 ~inv:0 ~ret:1; enq 0 1 ~inv:2 ~ret:3 ]

let rejects_bogus_full () =
  check_bad "bogus full" ~capacity:4
    [ enq 0 1 ~inv:0 ~ret:1; enq_full 0 2 ~inv:2 ~ret:3 ]

let rejects_full_on_unbounded_spec () =
  check_bad "reject without bound" [ enq_full 0 1 ~inv:0 ~ret:1 ]

let rejects_oversize_history () =
  let h =
    List.init 63 (fun i -> enq 0 i ~inv:(2 * i) ~ret:((2 * i) + 1))
  in
  Alcotest.check_raises "63 events rejected"
    (Invalid_argument "check_linearizable: history longer than 62 events")
    (fun () -> ignore (C.check_linearizable h))

(* --- scalable property checks --- *)

let props_ok name ?expected_final_length h =
  match C.check_fifo_properties ?expected_final_length h with
  | C.Ok -> ()
  | C.Violation msg -> Alcotest.fail (name ^ ": " ^ msg)

let props_bad name ?expected_final_length h =
  match C.check_fifo_properties ?expected_final_length h with
  | C.Ok -> Alcotest.fail (name ^ ": accepted")
  | C.Violation _ -> ()

let props_accepts_valid () =
  props_ok "valid" ~expected_final_length:0
    [
      enq 0 1 ~inv:0 ~ret:1;
      enq 1 2 ~inv:2 ~ret:3;
      deq 0 1 ~inv:4 ~ret:5;
      deq 1 2 ~inv:6 ~ret:7;
    ]

let props_rejects_loss () =
  props_bad "loss" ~expected_final_length:0
    [ enq 0 1 ~inv:0 ~ret:1; deq_empty 0 ~inv:2 ~ret:3 ]

let props_rejects_duplication () =
  props_bad "dup"
    [ enq 0 1 ~inv:0 ~ret:1; deq 0 1 ~inv:2 ~ret:3; deq 1 1 ~inv:4 ~ret:5 ]

let props_rejects_invention () =
  props_bad "invented" [ deq 0 5 ~inv:0 ~ret:1 ]

let props_rejects_inversion () =
  (* enq 1 wholly before enq 2, deq 2 wholly before deq 1. *)
  props_bad "inversion"
    [
      enq 0 1 ~inv:0 ~ret:1;
      enq 0 2 ~inv:2 ~ret:3;
      deq 1 2 ~inv:4 ~ret:5;
      deq 1 1 ~inv:6 ~ret:7;
    ]

let props_allows_overlapping_inversion () =
  (* enqueues overlap: either dequeue order is linearizable. *)
  props_ok "overlap inversion ok"
    [
      enq 0 1 ~inv:0 ~ret:5;
      enq 1 2 ~inv:1 ~ret:4;
      deq 0 2 ~inv:6 ~ret:7;
      deq 1 1 ~inv:8 ~ret:9;
    ]

let props_rejects_wrong_final_length () =
  props_bad "final length" ~expected_final_length:5
    [ enq 0 1 ~inv:0 ~ret:1; deq 0 1 ~inv:2 ~ret:3 ]

let props_rejects_double_enqueue_of_value () =
  props_bad "double enqueue"
    [ enq 0 1 ~inv:0 ~ret:1; enq 1 1 ~inv:2 ~ret:3 ]

(* --- randomized checker properties --- *)

(* Random *sequential* histories are linearizable by construction: replay
   random ops against a reference queue, record truthful outcomes with
   consecutive ticks, and the checker must accept. *)
let qcheck_accepts_sequential =
  QCheck.Test.make ~count:200 ~name:"accepts truthful sequential histories"
    QCheck.(list_of_size (Gen.int_range 1 20) (pair bool (int_bound 5)))
    (fun ops ->
      let capacity = 3 in
      let q = Queue.create () in
      let tick = ref 0 in
      let next () =
        let t = !tick in
        incr tick;
        t
      in
      let history =
        List.map
          (fun (is_enq, v) ->
            let inv = next () in
            let op, outcome =
              if is_enq then
                if Queue.length q < capacity then begin
                  Queue.add v q;
                  (H.Enqueue v, H.Accepted)
                end
                else (H.Enqueue v, H.Rejected)
              else if Queue.is_empty q then (H.Dequeue, H.Observed_empty)
              else (H.Dequeue, H.Got (Queue.pop q))
            in
            {
              H.thread = 0;
              op;
              outcome;
              invoked = inv;
              returned = next ();
              call = inv;
              rank = 0;
            })
          ops
      in
      C.check_linearizable ~capacity history = C.Ok)

(* Corrupting one Got value in a nonempty truthful history must be caught
   (values are made distinct so the corruption cannot collide). *)
let qcheck_rejects_corrupted =
  QCheck.Test.make ~count:200 ~name:"rejects corrupted dequeue values"
    QCheck.(list_of_size (Gen.int_range 2 14) bool)
    (fun flips ->
      let q = Queue.create () in
      let tick = ref 0 in
      let next () =
        let t = !tick in
        incr tick;
        t
      in
      let counter = ref 0 in
      let history =
        List.map
          (fun is_enq ->
            let inv = next () in
            let op, outcome =
              if is_enq then begin
                incr counter;
                Queue.add !counter q;
                (H.Enqueue !counter, H.Accepted)
              end
              else if Queue.is_empty q then (H.Dequeue, H.Observed_empty)
              else (H.Dequeue, H.Got (Queue.pop q))
            in
            {
              H.thread = 0;
              op;
              outcome;
              invoked = inv;
              returned = next ();
              call = inv;
              rank = 0;
            })
          flips
      in
      let gots =
        List.exists
          (fun (e : H.event) ->
            match e.H.outcome with H.Got _ -> true | _ -> false)
          history
      in
      QCheck.assume gots;
      (* Corrupt the first Got by shifting its value out of range. *)
      let corrupted = ref false in
      let bad =
        List.map
          (fun (e : H.event) ->
            match e.H.outcome with
            | H.Got v when not !corrupted ->
                corrupted := true;
                { e with H.outcome = H.Got (v + 1_000) }
            | _ -> e)
          history
      in
      C.check_linearizable bad <> C.Ok)

(* --- the segmented queue under concurrent stress --- *)

module Seg = Nbq_segmented.Segmented

(* Tiny segments (capacity 2) so every episode crosses segment
   boundaries: grow (append), drain-retire and pool reuse all happen
   inside the checked window.  The queue is unbounded, so the histories
   run against the unbounded spec (no [~capacity]). *)
let seg_verdict name v =
  match v with
  | C.Ok -> ()
  | C.Violation msg -> Alcotest.fail (name ^ ": " ^ msg)

let seg_ops q =
  Nbq_lincheck.Stress.ops_of_singles
    ~enqueue:(fun v -> Seg.Cas.try_enqueue q v)
    ~dequeue:(fun () -> Seg.Cas.try_dequeue q)

let seg_small_rounds () =
  seg_verdict "segmented small rounds"
    (Nbq_lincheck.Stress.check_small_rounds ~rounds:60 ~threads:3
       ~ops_per_thread:4 ~seed:7 (fun () ->
         let q = Seg.Cas.create ~capacity:2 in
         fun _ -> seg_ops q))

let seg_small_rounds_deq_heavy () =
  (* Longer episodes drain whole segments, so the retire hand-off and the
     recycled-segment reuse run under contention, not just the appends. *)
  seg_verdict "segmented drain-heavy"
    (Nbq_lincheck.Stress.check_small_rounds ~rounds:40 ~threads:4
       ~ops_per_thread:6 ~seed:13 (fun () ->
         let q = Seg.Cas.create ~capacity:2 in
         fun _ -> seg_ops q))

let seg_small_rounds_batched () =
  (* Mixed batched producers: the segmented batch calls resolve the
     handle once and then run the single-item protocol per item, so each
     batch must linearize as its items in order within one call window. *)
  seg_verdict "segmented batched"
    (Nbq_lincheck.Stress.check_small_rounds ~rounds:60 ~threads:3
       ~ops_per_thread:4 ~seed:11 ~with_batches:true (fun () ->
         let q = Seg.Cas.create ~capacity:2 in
         fun _ ->
           {
             Nbq_lincheck.Stress.enqueue = (fun v -> Seg.Cas.try_enqueue q v);
             dequeue = (fun () -> Seg.Cas.try_dequeue q);
             enqueue_batch = (fun a -> Seg.Cas.try_enqueue_batch q a);
             dequeue_batch = (fun k -> Seg.Cas.try_dequeue_batch q k);
           }))

let seg_bw_small_rounds () =
  (* The same chain protocol over the Blelloch–Wei cell backend. *)
  seg_verdict "segmented-bw small rounds"
    (Nbq_lincheck.Stress.check_small_rounds ~rounds:40 ~threads:3
       ~ops_per_thread:4 ~seed:17 (fun () ->
         let q = Seg.Bw.create ~capacity:2 in
         fun _ ->
           Nbq_lincheck.Stress.ops_of_singles
             ~enqueue:(fun v -> Seg.Bw.try_enqueue q v)
             ~dequeue:(fun () -> Seg.Bw.try_dequeue q)))

(* --- the SCQ family under concurrent stress --- *)

module Scq = Nbq_scq.Scq.Make (Nbq_primitives.Atomic_intf.Real)
module Scq_wcq = Nbq_scq.Scq.Make_wcq (Nbq_primitives.Atomic_intf.Real)

(* Capacity 2 keeps every episode at the full/empty boundaries, where the
   FAA-ticket protocol earns its keep: slot bumps, unsafe marks, catchup
   and threshold resets all run inside the checked window.  The exact
   checker runs the bounded spec ([~capacity]) so rejected enqueues must
   linearize as "full". *)
let scq_small_rounds () =
  seg_verdict "scq small rounds"
    (Nbq_lincheck.Stress.check_small_rounds ~rounds:60 ~threads:3
       ~ops_per_thread:4 ~capacity:2 ~seed:19 (fun () ->
         let q = Scq.Scq.create ~capacity:2 in
         fun _ ->
           Nbq_lincheck.Stress.ops_of_singles
             ~enqueue:(fun v -> Scq.Scq.try_enqueue q v)
             ~dequeue:(fun () -> Scq.Scq.try_dequeue q)))

let scqd_small_rounds () =
  seg_verdict "scq-d small rounds"
    (Nbq_lincheck.Stress.check_small_rounds ~rounds:60 ~threads:3
       ~ops_per_thread:4 ~capacity:2 ~seed:23 (fun () ->
         let q = Scq.Scqd.create ~capacity:2 in
         fun _ ->
           Nbq_lincheck.Stress.ops_of_singles
             ~enqueue:(fun v -> Scq.Scqd.try_enqueue q v)
             ~dequeue:(fun () -> Scq.Scqd.try_dequeue q)))

let scq_wcq_small_rounds () =
  seg_verdict "scq-wcq small rounds"
    (Nbq_lincheck.Stress.check_small_rounds ~rounds:40 ~threads:4
       ~ops_per_thread:6 ~capacity:2 ~seed:29 (fun () ->
         let q = Scq_wcq.Scq.create ~capacity:2 in
         fun _ ->
           Nbq_lincheck.Stress.ops_of_singles
             ~enqueue:(fun v -> Scq_wcq.Scq.try_enqueue q v)
             ~dequeue:(fun () -> Scq_wcq.Scq.try_dequeue q)))

(* --- recorder --- *)

let recorder_orders_events () =
  let r = H.recorder ~threads:2 in
  ignore (H.record r ~thread:0 (H.Enqueue 1) (fun () -> H.Accepted));
  ignore (H.record r ~thread:1 H.Dequeue (fun () -> H.Got 1));
  let events = H.events r in
  Alcotest.(check int) "two events" 2 (List.length events);
  (match events with
  | [ a; b ] ->
      Alcotest.(check bool) "real-time order" true (H.precedes a b);
      Alcotest.(check bool) "tick sanity" true (a.H.invoked < a.H.returned)
  | _ -> Alcotest.fail "expected two events");
  check_ok "recorded history linearizable" events

let recorder_concurrent_ticks_unique () =
  let threads = 4 and per = 500 in
  let r = H.recorder ~threads in
  let workers =
    List.init threads (fun t ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              ignore
                (H.record r ~thread:t (H.Enqueue ((t * per) + i)) (fun () ->
                     H.Accepted))
            done))
  in
  List.iter Domain.join workers;
  let events = H.events r in
  let ticks =
    List.concat_map (fun (e : H.event) -> [ e.H.invoked; e.H.returned ]) events
  in
  Alcotest.(check int) "all ticks distinct"
    (List.length ticks)
    (List.length (List.sort_uniq compare ticks))

let () =
  Alcotest.run "lincheck"
    [
      ( "checker-accepts",
        [
          quick "sequential fifo" sequential_fifo;
          quick "empty history" empty_history;
          quick "overlapping enqueues" overlapping_enqueues_either_order;
          quick "dequeue overlapping enqueue" dequeue_overlapping_enqueue;
          quick "empty observed mid-stream" empty_observed_mid_stream;
          quick "rejected enqueue at capacity" rejected_enqueue_at_capacity;
          quick "tricky linearization" tricky_linearization_needed;
          quick "peek semantics" peek_semantics;
          quick "peek overlapping dequeue" peek_overlapping_dequeue;
        ] );
      ( "checker-batches",
        [
          quick "batch enqueue in order" batch_enqueue_in_order;
          quick "rejects reordered batch items" batch_rejects_reordered_items;
          quick "foreign op inside batch window"
            batch_interleaves_with_other_threads;
          quick "short batch enqueue at capacity"
            batch_short_enqueue_at_capacity;
          quick "batch dequeue ends on empty" batch_dequeue_with_empty_cut;
          quick "rejects false empty cut" batch_rejects_false_empty_cut;
          quick "precedes orders ranks" precedes_orders_ranks_within_call;
        ] );
      ( "checker-rejects",
        [
          quick "invented value" rejects_invented_value;
          quick "FIFO reorder" rejects_reordered_fifo;
          quick "duplicate delivery" rejects_duplicate_delivery;
          quick "impossible empty" rejects_impossible_empty;
          quick "value from the future" rejects_value_from_the_future;
          quick "bogus full" rejects_bogus_full;
          quick "full on unbounded spec" rejects_full_on_unbounded_spec;
          quick "oversize history" rejects_oversize_history;
          quick "destructive peek" rejects_destructive_peek;
          quick "peek of non-front" rejects_peek_of_non_front;
          quick "peek of unknown value" rejects_peek_of_unknown_value;
        ] );
      ( "fifo-properties",
        [
          quick "accepts valid" props_accepts_valid;
          quick "rejects loss" props_rejects_loss;
          quick "rejects duplication" props_rejects_duplication;
          quick "rejects invention" props_rejects_invention;
          quick "rejects real-time inversion" props_rejects_inversion;
          quick "allows overlapping inversion" props_allows_overlapping_inversion;
          quick "rejects wrong final length" props_rejects_wrong_final_length;
          quick "rejects double enqueue" props_rejects_double_enqueue_of_value;
        ] );
      ( "checker-qcheck",
        [
          QCheck_alcotest.to_alcotest qcheck_accepts_sequential;
          QCheck_alcotest.to_alcotest qcheck_rejects_corrupted;
        ] );
      ( "segmented-stress",
        [
          quick "small rounds" seg_small_rounds;
          quick "drain-heavy rounds" seg_small_rounds_deq_heavy;
          quick "mixed batched producers" seg_small_rounds_batched;
          quick "bw backend small rounds" seg_bw_small_rounds;
        ] );
      ( "scq-stress",
        [
          quick "scq small rounds" scq_small_rounds;
          quick "scq-d small rounds" scqd_small_rounds;
          slow "scq-wcq small rounds" scq_wcq_small_rounds;
        ] );
      ( "recorder",
        [
          quick "orders events" recorder_orders_events;
          slow "concurrent ticks unique" recorder_concurrent_ticks_unique;
        ] );
    ]
